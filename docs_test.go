// Documentation gates, run as ordinary tests so CI and local `go test`
// both enforce them:
//
//   - TestGodocCoverage: every exported identifier in the audited packages
//     (internal/service, internal/trace, internal/cluster) carries a doc
//     comment — types, funcs, methods, consts/vars (group docs count),
//     struct fields and interface methods (inline comments count).
//   - TestDocsLinksResolve: every intra-repo markdown link in README and
//     docs/ points at a file that exists.
package hadoop2perf

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// godocAuditPackages are the directories whose exported surface must be
// fully documented.
var godocAuditPackages = []string{
	"internal/service",
	"internal/trace",
	"internal/cluster",
	"internal/workflow",
}

func TestGodocCoverage(t *testing.T) {
	fset := token.NewFileSet()
	for _, dir := range godocAuditPackages {
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			for name, file := range pkg.Files {
				for _, miss := range undocumented(file) {
					t.Errorf("%s: %s: exported %s lacks a doc comment",
						name, fset.Position(miss.pos), miss.what)
				}
			}
		}
	}
}

// missing identifies one undocumented exported identifier.
type missing struct {
	what string
	pos  token.Pos
}

// undocumented walks one file's top-level declarations and reports exported
// identifiers without documentation.
func undocumented(file *ast.File) []missing {
	var out []missing
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !receiverExported(d) {
				continue
			}
			if d.Doc == nil {
				out = append(out, missing{"func " + d.Name.Name, d.Pos()})
			}
		case *ast.GenDecl:
			groupDoc := d.Doc != nil
			for _, spec := range d.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					if !sp.Name.IsExported() {
						continue
					}
					if !groupDoc && sp.Doc == nil && sp.Comment == nil {
						out = append(out, missing{"type " + sp.Name.Name, sp.Pos()})
					}
					out = append(out, undocumentedMembers(sp)...)
				case *ast.ValueSpec:
					// A doc comment on the group covers its members (the
					// standard pattern for enums and related constants).
					if groupDoc || sp.Doc != nil || sp.Comment != nil {
						continue
					}
					for _, n := range sp.Names {
						if n.IsExported() {
							out = append(out, missing{"const/var " + n.Name, n.Pos()})
						}
					}
				}
			}
		}
	}
	return out
}

// undocumentedMembers audits an exported type's struct fields and interface
// methods: each exported member needs a doc or inline comment, except
// embedded fields (documented on their own type).
func undocumentedMembers(sp *ast.TypeSpec) []missing {
	var fields *ast.FieldList
	var kind string
	switch tt := sp.Type.(type) {
	case *ast.StructType:
		fields, kind = tt.Fields, "field"
	case *ast.InterfaceType:
		fields, kind = tt.Methods, "method"
	default:
		return nil
	}
	var out []missing
	for _, f := range fields.List {
		if f.Doc != nil || f.Comment != nil || len(f.Names) == 0 {
			continue
		}
		for _, n := range f.Names {
			if n.IsExported() {
				out = append(out, missing{
					fmt.Sprintf("%s %s.%s", kind, sp.Name.Name, n.Name), n.Pos(),
				})
			}
		}
	}
	return out
}

// receiverExported reports whether a method's receiver base type is
// exported (methods on unexported types are not public API).
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

// mdLink matches markdown links and images; group 1 is the target.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func TestDocsLinksResolve(t *testing.T) {
	files := []string{"README.md", "PERFORMANCE.md", "ROADMAP.md", "CHANGES.md", "PAPER.md"}
	docs, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, docs...)
	checked := 0
	for _, f := range files {
		raw, err := os.ReadFile(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(raw), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external
			}
			target, _, _ = strings.Cut(target, "#")
			if target == "" {
				continue // same-file anchor
			}
			if _, err := os.Stat(filepath.Join(filepath.Dir(f), target)); err != nil {
				t.Errorf("%s: broken intra-repo link %q", f, m[1])
			}
			checked++
		}
	}
	if checked == 0 {
		t.Error("no intra-repo links found; the checker is miswired")
	}
}
