package yarn

import (
	"fmt"
	"sort"
	"strings"

	"hadoop2perf/internal/cluster"
	"hadoop2perf/internal/hdfs"
)

// RequestRow is one line of a ResourceRequest table (paper Table 1): a group
// of identical container requests.
type RequestRow struct {
	NumContainers int
	Priority      int
	Size          cluster.Resource
	// Locality is the host constraint: "n<i>" for a node, "*" for any.
	Locality string
	Type     TaskType
}

func (r RequestRow) String() string {
	return fmt.Sprintf("%d\t%d\t%s\t%s\t%s",
		r.NumContainers, r.Priority, r.Size, r.Locality, r.Type)
}

// BuildRequestTable reproduces the ResourceRequest object the MapReduce AM
// would send for a job with the given placed input file and reducer count:
// map containers grouped by the primary replica's node at priority 20,
// reduce containers with the "*" wildcard at priority 10 (paper Table 1).
func BuildRequestTable(file *hdfs.File, numReduces int, spec cluster.Spec) []RequestRow {
	perNode := map[int]int{}
	for _, b := range file.Blocks {
		if len(b.Replicas) > 0 {
			perNode[b.Replicas[0]]++
		}
	}
	nodes := make([]int, 0, len(perNode))
	for n := range perNode {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	rows := make([]RequestRow, 0, len(nodes)+1)
	for _, n := range nodes {
		rows = append(rows, RequestRow{
			NumContainers: perNode[n],
			Priority:      PriorityMap,
			Size:          spec.MapContainer,
			Locality:      fmt.Sprintf("n%d", n+1),
			Type:          TypeMap,
		})
	}
	if numReduces > 0 {
		rows = append(rows, RequestRow{
			NumContainers: numReduces,
			Priority:      PriorityReduce,
			Size:          spec.ReduceContainer,
			Locality:      "*",
			Type:          TypeReduce,
		})
	}
	return rows
}

// FormatRequestTable renders rows with the paper's column headers.
func FormatRequestTable(rows []RequestRow) string {
	var b strings.Builder
	b.WriteString("Number of containers\tPriority\tSize\tLocality constraints\tTask type\n")
	for _, r := range rows {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}
