// Package yarn models the Hadoop 2.x resource-management layer the paper
// analyzes in §3: a global ResourceManager with a single-queue Capacity
// scheduler (FIFO across applications), per-node resource accounting, and
// per-application container requests (ResourceRequest objects) with the
// MapReduce priorities — 20 for map containers, 10 for reduce containers —
// and node-locality preferences for maps.
//
// Container requests move through the lifecycle of Figures 2 and 3:
//
//	pending -> scheduled -> assigned -> completed
//
// pending requests have not been sent to the RM, scheduled requests are at
// the RM awaiting allocation, assigned requests hold a container, and
// completed requests have finished execution.
package yarn

import (
	"errors"
	"fmt"
	"sort"

	"hadoop2perf/internal/cluster"
	"hadoop2perf/internal/simevent"
)

// MapReduce AM container priorities (package org.apache.hadoop.mapreduce.
// v2.app.rm, RMContainerAllocator): higher priority requests are served
// first within an application.
const (
	PriorityMap    = 20
	PriorityReduce = 10
)

// TaskType labels what a container request is for.
type TaskType int

// Task types used by the MapReduce ApplicationMaster.
const (
	TypeMap TaskType = iota
	TypeReduce
)

func (t TaskType) String() string {
	if t == TypeMap {
		return "map"
	}
	return "reduce"
}

// State is a container-request lifecycle state (paper Figures 2 and 3).
type State int

// Lifecycle states.
const (
	StatePending State = iota
	StateScheduled
	StateAssigned
	StateCompleted
)

func (s State) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateScheduled:
		return "scheduled"
	case StateAssigned:
		return "assigned"
	default:
		return "completed"
	}
}

// AnyNode is the locality wildcard ("*" in a ResourceRequest).
const AnyNode = -1

// Request is one ResourceRequest: a number of identical containers at a
// priority with a locality preference (Table 1 of the paper).
type Request struct {
	Priority  int
	Count     int
	Size      cluster.Resource
	Type      TaskType
	Preferred []int // preferred node IDs; empty means any node
	state     State
	app       *App
	allocated int
}

// State returns the request's lifecycle state: pending until submitted,
// scheduled while waiting at the RM, assigned once every container has been
// granted, completed after Complete.
func (r *Request) State() State { return r.state }

// Remaining returns how many containers are still to be allocated.
func (r *Request) Remaining() int { return r.Count - r.allocated }

// Container is an allocated logical bundle of resources bound to a node.
type Container struct {
	ID       int
	Node     int
	Size     cluster.Resource
	Priority int
	Type     TaskType
	// Local reports whether the allocation honored a node-locality preference.
	Local bool
	app   *App
	epoch int // node epoch at grant time (stale after a node loss)
}

// App is a registered YARN application (one MapReduce job's AM view of the
// RM). Allocations are delivered through the OnAllocate callback.
type App struct {
	ID int
	// OnAllocate is invoked (in event context) for each granted container.
	OnAllocate func(*Container)
	rm         *RM
	requests   []*Request
	done       bool
}

// nodeState tracks per-node available resources. down marks a lost node
// (failure injection): it receives no allocations until NodeUp. epoch counts
// failures so that containers granted before a loss cannot corrupt the
// node's accounting when released after it rejoined.
type nodeState struct {
	id        int
	available cluster.Resource
	capacity  cluster.Resource
	down      bool
	epoch     int
}

// occupancy returns the fraction of memory in use (the paper's "occupancy
// rate" used to pick the least-loaded node).
func (n *nodeState) occupancy() float64 {
	used := n.capacity.MemoryMB - n.available.MemoryMB
	return float64(used) / float64(n.capacity.MemoryMB)
}

// Policy selects how the single root queue orders applications.
type Policy int

// Scheduling policies for the root queue.
const (
	// PolicyFIFO serves applications strictly in submission order (the
	// Capacity scheduler's default FIFO ordering, paper §4.2.2).
	PolicyFIFO Policy = iota
	// PolicyFair hands out containers round-robin across applications (the
	// Capacity scheduler's fair ordering policy within a queue) so that
	// concurrent jobs progress together — the regime of the paper's
	// multi-job measurements.
	PolicyFair
)

func (p Policy) String() string {
	if p == PolicyFair {
		return "fair"
	}
	return "fifo"
}

// ParsePolicy is the inverse of String. It accepts the canonical names and
// the empty string (which maps to the FIFO default), so wire formats and
// cache keys share one stable spelling per policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "fifo":
		return PolicyFIFO, nil
	case "fair":
		return PolicyFair, nil
	}
	return 0, fmt.Errorf("yarn: unknown scheduling policy %q (want \"fifo\" or \"fair\")", s)
}

// MarshalText makes Policy serialize by its stable name rather than its
// numeric value (JSON wire format, canonical cache keys).
func (p Policy) MarshalText() ([]byte, error) {
	switch p {
	case PolicyFIFO, PolicyFair:
		return []byte(p.String()), nil
	}
	return nil, fmt.Errorf("yarn: invalid policy %d", int(p))
}

// UnmarshalText parses the stable policy name.
func (p *Policy) UnmarshalText(b []byte) error {
	pol, err := ParsePolicy(string(b))
	if err != nil {
		return err
	}
	*p = pol
	return nil
}

// RM is the global ResourceManager with a single root queue: applications
// are ordered by the configured Policy, and within an application,
// higher-priority requests are served first.
type RM struct {
	eng           *simevent.Engine
	spec          cluster.Spec
	nodes         []*nodeState
	apps          []*App
	nextContainer int
	// Policy orders applications within the root queue.
	Policy Policy
	// HeartbeatDelay models the NM/AM heartbeat granularity: allocations are
	// delivered this long after the scheduling decision.
	HeartbeatDelay float64
	scheduling     bool
	schedulePosted bool
	rrCursor       int
}

// NewRM creates a ResourceManager over the cluster. Node capacities come
// from the spec's class table: heterogeneous clusters register one
// NodeManager per node at its class's capacity, laid out class by class; a
// flat spec degenerates to NumNodes identical registrations. The
// least-loaded pick stays deterministic — occupancy is a capacity-relative
// fraction, so mixed node sizes compare on equal footing, with the node-ID
// tiebreak unchanged.
func NewRM(eng *simevent.Engine, spec cluster.Spec) (*RM, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rm := &RM{eng: eng, spec: spec, HeartbeatDelay: 0.25}
	id := 0
	for _, class := range spec.ClassView() {
		for i := 0; i < class.Count; i++ {
			rm.nodes = append(rm.nodes, &nodeState{
				id:        id,
				available: class.Capacity,
				capacity:  class.Capacity,
			})
			id++
		}
	}
	return rm, nil
}

// Register adds an application to the FIFO queue.
func (rm *RM) Register(app *App) error {
	if app == nil || app.OnAllocate == nil {
		return errors.New("yarn: app must have an OnAllocate callback")
	}
	app.rm = rm
	rm.apps = append(rm.apps, app)
	return nil
}

// Unregister marks the application finished; its pending requests are
// dropped.
func (rm *RM) Unregister(app *App) {
	app.done = true
	app.requests = nil
}

// Submit sends a ResourceRequest to the RM (pending -> scheduled) and kicks
// the scheduler.
func (rm *RM) Submit(app *App, req *Request) error {
	if app.rm != rm {
		return errors.New("yarn: app not registered with this RM")
	}
	if req.Count <= 0 {
		return fmt.Errorf("yarn: request count must be positive (got %d)", req.Count)
	}
	if req.Size.IsZeroOrNegative() {
		return errors.New("yarn: request size must be positive")
	}
	req.app = app
	req.state = StateScheduled
	app.requests = append(app.requests, req)
	rm.requestSchedule()
	return nil
}

// Release returns a container's resources to its node and requests a
// scheduling pass (container completed). Containers on a down node, or
// granted before the node's last failure, are dropped without touching the
// accounting: the loss already forfeited their resources.
func (rm *RM) Release(c *Container) {
	n := rm.nodes[c.Node]
	if n.down || c.epoch != n.epoch {
		return
	}
	n.available = n.available.Add(c.Size)
	rm.requestSchedule()
}

// NodeDown marks a node lost: it stops receiving allocations and its free
// resources are zeroed. Grants already in flight (scheduled before the
// failure, delivered after the heartbeat) still arrive — the AM must check
// node health on delivery and release unusable containers.
func (rm *RM) NodeDown(node int) {
	n := rm.nodes[node]
	if n.down {
		return
	}
	n.down = true
	n.epoch++
	n.available = cluster.Resource{}
}

// NodeUp rejoins a previously lost node with full capacity and kicks the
// scheduler so queued requests can land on it.
func (rm *RM) NodeUp(node int) {
	n := rm.nodes[node]
	if !n.down {
		return
	}
	n.down = false
	n.available = n.capacity
	rm.requestSchedule()
}

// NodeIsUp reports whether the node is schedulable.
func (rm *RM) NodeIsUp(node int) bool { return !rm.nodes[node].down }

// requestSchedule coalesces scheduling into a single deferred event so that
// all requests arriving at the same instant are considered together — the
// way real YARN accumulates asks between NM heartbeats. Without this, a
// lower-priority request submitted first would win simply by arriving one
// call earlier.
func (rm *RM) requestSchedule() {
	if rm.schedulePosted {
		return
	}
	rm.schedulePosted = true
	rm.eng.After(0, func() {
		rm.schedulePosted = false
		rm.Schedule()
	})
}

// AvailableOn returns the free resources of a node (for tests/inspection).
func (rm *RM) AvailableOn(node int) cluster.Resource { return rm.nodes[node].available }

// Schedule runs one allocation pass under the configured policy, priority
// descending within an application, preferring node-local placements and
// otherwise the node with the lowest occupancy rate. Deliveries are deferred
// by HeartbeatDelay.
func (rm *RM) Schedule() {
	if rm.scheduling {
		return // guard against re-entrant scheduling from callbacks
	}
	rm.scheduling = true
	defer func() { rm.scheduling = false }()

	switch rm.Policy {
	case PolicyFair:
		rm.scheduleFair()
	default:
		rm.scheduleFIFO()
	}
	for _, app := range rm.apps {
		rm.compact(app)
	}
}

func (rm *RM) scheduleFIFO() {
	for _, app := range rm.apps {
		if app.done {
			continue
		}
		for _, req := range sortedRequests(app) {
			for req.Remaining() > 0 {
				if !rm.allocateOne(app, req) {
					break
				}
			}
		}
	}
}

// scheduleFair hands one container per application per round until a full
// round makes no progress.
func (rm *RM) scheduleFair() {
	n := len(rm.apps)
	if n == 0 {
		return
	}
	for {
		progress := false
		for i := 0; i < n; i++ {
			app := rm.apps[(rm.rrCursor+i)%n]
			if app.done {
				continue
			}
			for _, req := range sortedRequests(app) {
				if req.Remaining() > 0 && rm.allocateOne(app, req) {
					progress = true
					break
				}
			}
		}
		rm.rrCursor = (rm.rrCursor + 1) % n
		if !progress {
			return
		}
	}
}

func sortedRequests(app *App) []*Request {
	reqs := append([]*Request(nil), app.requests...)
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].Priority > reqs[j].Priority })
	return reqs
}

func (rm *RM) compact(app *App) {
	var live []*Request
	for _, r := range app.requests {
		if r.Remaining() > 0 {
			live = append(live, r)
		}
	}
	app.requests = live
}

// allocateOne grants a single container for req; it reports false when no
// node fits.
func (rm *RM) allocateOne(app *App, req *Request) bool {
	node, local := rm.pickNode(req)
	if node < 0 {
		return false
	}
	rm.grant(app, req, node, local)
	return true
}

func (rm *RM) grant(app *App, req *Request, node int, local bool) {
	rm.nodes[node].available = rm.nodes[node].available.Sub(req.Size)
	c := &Container{
		ID:       rm.nextContainer,
		Node:     node,
		Size:     req.Size,
		Priority: req.Priority,
		Type:     req.Type,
		Local:    local,
		app:      app,
		epoch:    rm.nodes[node].epoch,
	}
	rm.nextContainer++
	req.allocated++
	if req.Remaining() == 0 {
		req.state = StateAssigned
	}
	cb := app.OnAllocate
	rm.eng.After(rm.HeartbeatDelay, func() { cb(c) })
}

// pickNode chooses a node for the request: first a preferred node with
// capacity (node-local), then rack/any fallback — the node with the lowest
// occupancy rate that fits. Returns (-1, false) when nothing fits.
func (rm *RM) pickNode(req *Request) (node int, local bool) {
	for _, p := range req.Preferred {
		if p >= 0 && p < len(rm.nodes) && !rm.nodes[p].down && rm.nodes[p].available.Fits(req.Size) {
			return p, true
		}
	}
	best := -1
	bestOcc := 2.0
	for _, n := range rm.nodes {
		if n.down || !n.available.Fits(req.Size) {
			continue
		}
		if occ := n.occupancy(); occ < bestOcc {
			bestOcc = occ
			best = n.id
		}
	}
	return best, false
}

// Complete marks a request's lifecycle finished (assigned -> completed).
func (r *Request) Complete() { r.state = StateCompleted }
