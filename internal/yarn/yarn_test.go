package yarn

import (
	"strings"
	"testing"

	"hadoop2perf/internal/cluster"
	"hadoop2perf/internal/hdfs"
	"hadoop2perf/internal/simevent"
)

func testSpec(nodes int) cluster.Spec {
	return cluster.Spec{
		NumNodes:        nodes,
		NodeCapacity:    cluster.Resource{MemoryMB: 8192, VCores: 8},
		MapContainer:    cluster.Resource{MemoryMB: 4096, VCores: 2},
		ReduceContainer: cluster.Resource{MemoryMB: 4096, VCores: 2},
		CPUPerNode:      4, DiskPerNode: 1, DiskMBps: 100, NetworkMBps: 100,
	}
}

// drain runs the engine to completion.
func drain(t *testing.T, eng *simevent.Engine) {
	t.Helper()
	if _, err := eng.Run(100000); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterRequiresCallback(t *testing.T) {
	eng := simevent.NewEngine()
	rm, err := NewRM(eng, testSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := rm.Register(&App{ID: 1}); err == nil {
		t.Error("expected error for missing callback")
	}
}

func TestSubmitValidation(t *testing.T) {
	eng := simevent.NewEngine()
	rm, _ := NewRM(eng, testSpec(2))
	app := &App{ID: 1, OnAllocate: func(*Container) {}}
	if err := rm.Register(app); err != nil {
		t.Fatal(err)
	}
	if err := rm.Submit(app, &Request{Count: 0, Size: cluster.Resource{MemoryMB: 1, VCores: 1}}); err == nil {
		t.Error("zero count accepted")
	}
	if err := rm.Submit(app, &Request{Count: 1}); err == nil {
		t.Error("zero size accepted")
	}
	other := &App{ID: 2, OnAllocate: func(*Container) {}}
	if err := rm.Submit(other, &Request{Count: 1, Size: cluster.Resource{MemoryMB: 1, VCores: 1}}); err == nil {
		t.Error("unregistered app accepted")
	}
}

func TestBasicAllocation(t *testing.T) {
	eng := simevent.NewEngine()
	rm, _ := NewRM(eng, testSpec(2))
	var got []*Container
	app := &App{ID: 1, OnAllocate: func(c *Container) { got = append(got, c) }}
	if err := rm.Register(app); err != nil {
		t.Fatal(err)
	}
	req := &Request{Priority: PriorityMap, Count: 3, Size: testSpec(2).MapContainer, Type: TypeMap}
	if err := rm.Submit(app, req); err != nil {
		t.Fatal(err)
	}
	drain(t, eng)
	if len(got) != 3 {
		t.Fatalf("allocated %d containers, want 3", len(got))
	}
	if req.State() != StateAssigned {
		t.Errorf("request state = %v, want assigned", req.State())
	}
	// Containers spread over both nodes (2 per node max by vcores... memory).
	nodes := map[int]int{}
	for _, c := range got {
		nodes[c.Node]++
	}
	if len(nodes) < 2 {
		t.Errorf("containers not spread: %v", nodes)
	}
}

func TestCapacityLimitsAndRelease(t *testing.T) {
	eng := simevent.NewEngine()
	spec := testSpec(1) // one node: 2 map containers max (memory)
	rm, _ := NewRM(eng, spec)
	var got []*Container
	app := &App{ID: 1, OnAllocate: func(c *Container) { got = append(got, c) }}
	_ = rm.Register(app)
	req := &Request{Priority: PriorityMap, Count: 3, Size: spec.MapContainer, Type: TypeMap}
	_ = rm.Submit(app, req)
	drain(t, eng)
	if len(got) != 2 {
		t.Fatalf("allocated %d, want 2 (capacity)", len(got))
	}
	if req.Remaining() != 1 {
		t.Fatalf("remaining = %d", req.Remaining())
	}
	// Releasing one container lets the third in.
	rm.Release(got[0])
	drain(t, eng)
	if len(got) != 3 {
		t.Fatalf("after release: %d, want 3", len(got))
	}
}

func TestPriorityMapsBeforeReduces(t *testing.T) {
	eng := simevent.NewEngine()
	spec := testSpec(1)
	rm, _ := NewRM(eng, spec)
	var order []TaskType
	app := &App{ID: 1, OnAllocate: func(c *Container) { order = append(order, c.Type) }}
	_ = rm.Register(app)
	// Submit the reduce request FIRST; maps must still win by priority.
	_ = rm.Submit(app, &Request{Priority: PriorityReduce, Count: 1, Size: spec.ReduceContainer, Type: TypeReduce})
	_ = rm.Submit(app, &Request{Priority: PriorityMap, Count: 2, Size: spec.MapContainer, Type: TypeMap})
	drain(t, eng)
	if len(order) < 2 {
		t.Fatalf("got %d allocations", len(order))
	}
	if order[0] != TypeMap || order[1] != TypeMap {
		t.Errorf("allocation order = %v, maps must come first", order)
	}
}

func TestLocalityPreference(t *testing.T) {
	eng := simevent.NewEngine()
	spec := testSpec(3)
	rm, _ := NewRM(eng, spec)
	var got []*Container
	app := &App{ID: 1, OnAllocate: func(c *Container) { got = append(got, c) }}
	_ = rm.Register(app)
	_ = rm.Submit(app, &Request{
		Priority: PriorityMap, Count: 1, Size: spec.MapContainer,
		Type: TypeMap, Preferred: []int{2},
	})
	drain(t, eng)
	if len(got) != 1 || got[0].Node != 2 || !got[0].Local {
		t.Errorf("allocation = %+v, want local on node 2", got[0])
	}
}

func TestLocalityFallback(t *testing.T) {
	eng := simevent.NewEngine()
	spec := testSpec(2)
	rm, _ := NewRM(eng, spec)
	var got []*Container
	app := &App{ID: 1, OnAllocate: func(c *Container) { got = append(got, c) }}
	_ = rm.Register(app)
	// Fill node 0 entirely.
	_ = rm.Submit(app, &Request{Priority: PriorityMap, Count: 2, Size: spec.MapContainer, Type: TypeMap, Preferred: []int{0}})
	drain(t, eng)
	// Prefer node 0 (full) -> falls back to node 1, marked non-local.
	_ = rm.Submit(app, &Request{Priority: PriorityMap, Count: 1, Size: spec.MapContainer, Type: TypeMap, Preferred: []int{0}})
	drain(t, eng)
	last := got[len(got)-1]
	if last.Node != 1 || last.Local {
		t.Errorf("fallback allocation = %+v, want non-local node 1", last)
	}
}

func TestFIFOPolicyOrdersApps(t *testing.T) {
	eng := simevent.NewEngine()
	spec := testSpec(1) // capacity 2 map containers
	rm, _ := NewRM(eng, spec)
	var owners []int
	app1 := &App{ID: 1, OnAllocate: func(c *Container) { owners = append(owners, 1) }}
	app2 := &App{ID: 2, OnAllocate: func(c *Container) { owners = append(owners, 2) }}
	_ = rm.Register(app1)
	_ = rm.Register(app2)
	_ = rm.Submit(app2, &Request{Priority: PriorityMap, Count: 2, Size: spec.MapContainer, Type: TypeMap})
	_ = rm.Submit(app1, &Request{Priority: PriorityMap, Count: 2, Size: spec.MapContainer, Type: TypeMap})
	drain(t, eng)
	// FIFO: app1 registered first gets both containers even though app2
	// submitted first.
	if len(owners) != 2 || owners[0] != 1 || owners[1] != 1 {
		t.Errorf("owners = %v, want app1 first under FIFO", owners)
	}
}

func TestFairPolicyInterleavesApps(t *testing.T) {
	eng := simevent.NewEngine()
	spec := testSpec(1)
	rm, _ := NewRM(eng, spec)
	rm.Policy = PolicyFair
	count := map[int]int{}
	app1 := &App{ID: 1, OnAllocate: func(c *Container) { count[1]++ }}
	app2 := &App{ID: 2, OnAllocate: func(c *Container) { count[2]++ }}
	_ = rm.Register(app1)
	_ = rm.Register(app2)
	_ = rm.Submit(app1, &Request{Priority: PriorityMap, Count: 2, Size: spec.MapContainer, Type: TypeMap})
	_ = rm.Submit(app2, &Request{Priority: PriorityMap, Count: 2, Size: spec.MapContainer, Type: TypeMap})
	drain(t, eng)
	if count[1] != 1 || count[2] != 1 {
		t.Errorf("fair split = %v, want 1 each", count)
	}
}

func TestUnregisterDropsRequests(t *testing.T) {
	eng := simevent.NewEngine()
	spec := testSpec(1)
	rm, _ := NewRM(eng, spec)
	var got int
	app := &App{ID: 1, OnAllocate: func(*Container) { got++ }}
	_ = rm.Register(app)
	_ = rm.Submit(app, &Request{Priority: PriorityMap, Count: 2, Size: spec.MapContainer, Type: TypeMap})
	drain(t, eng)
	rm.Unregister(app)
	// Free capacity; the app must not receive more containers.
	rm.Release(&Container{Node: 0, Size: spec.MapContainer})
	drain(t, eng)
	if got != 2 {
		t.Errorf("allocations after unregister = %d, want 2", got)
	}
}

func TestAvailableAccounting(t *testing.T) {
	eng := simevent.NewEngine()
	spec := testSpec(1)
	rm, _ := NewRM(eng, spec)
	var got []*Container
	app := &App{ID: 1, OnAllocate: func(c *Container) { got = append(got, c) }}
	_ = rm.Register(app)
	_ = rm.Submit(app, &Request{Priority: PriorityMap, Count: 1, Size: spec.MapContainer, Type: TypeMap})
	drain(t, eng)
	avail := rm.AvailableOn(0)
	want := spec.NodeCapacity.Sub(spec.MapContainer)
	if avail != want {
		t.Errorf("available = %v, want %v", avail, want)
	}
	rm.Release(got[0])
	if rm.AvailableOn(0) != spec.NodeCapacity {
		t.Errorf("after release: %v", rm.AvailableOn(0))
	}
}

func TestLifecycleStates(t *testing.T) {
	req := &Request{Count: 2, Size: cluster.Resource{MemoryMB: 1, VCores: 1}}
	if req.State() != StatePending {
		t.Errorf("initial state = %v", req.State())
	}
	for s, want := range map[State]string{
		StatePending: "pending", StateScheduled: "scheduled",
		StateAssigned: "assigned", StateCompleted: "completed",
	} {
		if s.String() != want {
			t.Errorf("State(%d) = %q", s, s.String())
		}
	}
	req.Complete()
	if req.State() != StateCompleted {
		t.Errorf("after Complete: %v", req.State())
	}
}

func TestRequestTableRunningExample(t *testing.T) {
	// Paper running example: n=3 nodes, m=4 maps, r=1 reduce (Table 1).
	spec := cluster.Default(3)
	file, err := hdfs.Place("in", 4*128, 128, 3, hdfs.DefaultReplication)
	if err != nil {
		t.Fatal(err)
	}
	rows := BuildRequestTable(file, 1, spec)
	var mapContainers, reduceContainers int
	for _, r := range rows {
		switch r.Type {
		case TypeMap:
			if r.Priority != PriorityMap {
				t.Errorf("map row priority = %d", r.Priority)
			}
			if r.Locality == "*" {
				t.Error("map rows must carry node locality")
			}
			mapContainers += r.NumContainers
		case TypeReduce:
			if r.Priority != PriorityReduce {
				t.Errorf("reduce row priority = %d", r.Priority)
			}
			if r.Locality != "*" {
				t.Errorf("reduce locality = %q, want *", r.Locality)
			}
			reduceContainers += r.NumContainers
		}
	}
	if mapContainers != 4 {
		t.Errorf("map containers = %d, want 4", mapContainers)
	}
	if reduceContainers != 1 {
		t.Errorf("reduce containers = %d, want 1", reduceContainers)
	}
	out := FormatRequestTable(rows)
	if !strings.Contains(out, "Priority") || !strings.Contains(out, "reduce") {
		t.Errorf("formatted table missing headers:\n%s", out)
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyFIFO.String() != "fifo" || PolicyFair.String() != "fair" {
		t.Error("policy strings wrong")
	}
}

func TestTaskTypeString(t *testing.T) {
	if TypeMap.String() != "map" || TypeReduce.String() != "reduce" {
		t.Error("task type strings wrong")
	}
}

// TestRMHeterogeneousCapacities checks the RM builds per-node capacities
// from the class table: big nodes absorb more containers, and allocation
// stops exactly at the summed class capacity.
func TestRMHeterogeneousCapacities(t *testing.T) {
	eng := simevent.NewEngine()
	spec := cluster.Spec{
		MapContainer:    cluster.Resource{MemoryMB: 1024, VCores: 1},
		ReduceContainer: cluster.Resource{MemoryMB: 1024, VCores: 1},
		Classes: []cluster.NodeClass{
			{Name: "big", Count: 1, Capacity: cluster.Resource{MemoryMB: 4096, VCores: 8},
				CPUs: 4, Disks: 1, DiskMBps: 100, NetworkMBps: 100},
			{Name: "small", Count: 2, Capacity: cluster.Resource{MemoryMB: 1024, VCores: 2},
				CPUs: 2, Disks: 1, DiskMBps: 100, NetworkMBps: 100},
		},
	}
	rm, err := NewRM(eng, spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := rm.AvailableOn(0); got != spec.Classes[0].Capacity {
		t.Errorf("node 0 capacity = %v, want big class %v", got, spec.Classes[0].Capacity)
	}
	if got := rm.AvailableOn(2); got != spec.Classes[1].Capacity {
		t.Errorf("node 2 capacity = %v, want small class %v", got, spec.Classes[1].Capacity)
	}

	var got []*Container
	app := &App{ID: 1, OnAllocate: func(c *Container) { got = append(got, c) }}
	if err := rm.Register(app); err != nil {
		t.Fatal(err)
	}
	// Ask for more containers than the cluster holds: 4 (big) + 1 + 1 (small).
	if err := rm.Submit(app, &Request{Priority: PriorityMap, Count: 10,
		Size: cluster.Resource{MemoryMB: 1024, VCores: 1}, Type: TypeMap}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(1000); err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("allocated %d containers, want 6 (cluster capacity)", len(got))
	}
	perNode := map[int]int{}
	for _, c := range got {
		perNode[c.Node]++
	}
	if perNode[0] != 4 || perNode[1] != 1 || perNode[2] != 1 {
		t.Errorf("per-node allocation = %v, want map[0:4 1:1 2:1]", perNode)
	}
}
