// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§5) against the simulator substrate and
// formats the rows the paper reports. cmd/experiments and the root
// bench_test.go are thin wrappers over this package.
package bench

import (
	"fmt"
	"sort"
	"strings"

	"hadoop2perf/internal/cluster"
	"hadoop2perf/internal/core"
	"hadoop2perf/internal/hdfs"
	"hadoop2perf/internal/mrsim"
	"hadoop2perf/internal/ptree"
	"hadoop2perf/internal/stats"
	"hadoop2perf/internal/timeline"
	"hadoop2perf/internal/workload"
	"hadoop2perf/internal/yarn"
)

// Reps is the number of seeded simulator repetitions per point (the paper
// repeats each experiment 5 times and takes the median).
const Reps = 5

// BaseSeed keeps every experiment reproducible.
const BaseSeed = 1

// GB in MB.
const GB = 1024

// Point is one x-position of a figure: a simulated measurement and the two
// model estimates.
type Point struct {
	// X is the swept parameter (number of nodes, or number of jobs).
	X int
	// Sim is the median measured mean job response time (seconds).
	Sim float64
	// ForkJoin and Tripathi are the model estimates (seconds).
	ForkJoin float64
	Tripathi float64
}

// FJErr returns the signed relative error of the fork/join estimate.
func (p Point) FJErr() float64 { return stats.SignedRelError(p.ForkJoin, p.Sim) }

// TPErr returns the signed relative error of the Tripathi estimate.
func (p Point) TPErr() float64 { return stats.SignedRelError(p.Tripathi, p.Sim) }

// Figure is one reproduced evaluation figure.
type Figure struct {
	ID    string // e.g. "fig10"
	Title string // e.g. "Input: 1GB; #jobs: 1"
	XName string // "nodes" or "jobs"
	// Config
	InputMB     float64
	BlockSizeMB float64
	NumJobs     int
	Points      []Point
}

// Spec describes one figure to run.
type Spec struct {
	ID, Title   string
	XName       string
	InputMB     float64
	BlockSizeMB float64
	// Sweep: either Nodes varies (Jobs fixed) or Jobs varies (Nodes fixed).
	Nodes []int
	Jobs  []int
	FixedNodes,
	FixedJobs int
}

// FigureSpecs enumerates every response-time figure of the paper (§5.2).
func FigureSpecs() []Spec {
	nodes := []int{4, 6, 8}
	return []Spec{
		{ID: "fig10", Title: "Input: 1GB; #jobs: 1", XName: "nodes", InputMB: 1 * GB, BlockSizeMB: 128, Nodes: nodes, FixedJobs: 1},
		{ID: "fig11", Title: "Input: 1GB; #jobs: 4", XName: "nodes", InputMB: 1 * GB, BlockSizeMB: 128, Nodes: nodes, FixedJobs: 4},
		{ID: "fig12", Title: "Input: 5GB; #jobs: 1", XName: "nodes", InputMB: 5 * GB, BlockSizeMB: 128, Nodes: nodes, FixedJobs: 1},
		{ID: "fig13", Title: "Input: 5GB; #jobs: 4", XName: "nodes", InputMB: 5 * GB, BlockSizeMB: 128, Nodes: nodes, FixedJobs: 4},
		{ID: "fig14", Title: "#Nodes: 4; Input: 5GB", XName: "jobs", InputMB: 5 * GB, BlockSizeMB: 128, Jobs: []int{1, 2, 3, 4}, FixedNodes: 4},
		{ID: "fig15", Title: "Block: 64MB; Input: 5GB; #jobs: 1", XName: "nodes", InputMB: 5 * GB, BlockSizeMB: 64, Nodes: nodes, FixedJobs: 1},
	}
}

// JobFor builds the evaluation job for a given cluster size: WordCount with
// one reducer per node (reducer count scaled to the cluster, the common
// Hadoop sizing rule).
func JobFor(inputMB, blockSizeMB float64, numNodes int) (workload.Job, error) {
	return workload.NewJob(0, inputMB, blockSizeMB, numNodes, workload.WordCount())
}

// RunPoint produces one figure point: median-of-Reps simulation plus both
// model estimates.
func RunPoint(numNodes, numJobs int, inputMB, blockSizeMB float64) (Point, error) {
	spec := cluster.Default(numNodes)
	job, err := JobFor(inputMB, blockSizeMB, numNodes)
	if err != nil {
		return Point{}, err
	}
	jobs := make([]workload.Job, numJobs)
	for i := range jobs {
		j := job
		j.ID = i
		jobs[i] = j
	}
	pol := yarn.PolicyFIFO
	if numJobs > 1 {
		pol = yarn.PolicyFair
	}
	res, err := mrsim.RunMedianOfSeeds(mrsim.Config{
		Spec: spec, Jobs: jobs, Seed: BaseSeed, Scheduler: pol,
	}, Reps)
	if err != nil {
		return Point{}, err
	}
	fj, err := core.Predict(core.Config{Spec: spec, Job: job, NumJobs: numJobs, Estimator: core.EstimatorForkJoin})
	if err != nil {
		return Point{}, err
	}
	tp, err := core.Predict(core.Config{Spec: spec, Job: job, NumJobs: numJobs, Estimator: core.EstimatorTripathi})
	if err != nil {
		return Point{}, err
	}
	return Point{Sim: res.MeanResponse(), ForkJoin: fj.ResponseTime, Tripathi: tp.ResponseTime}, nil
}

// RunFigure executes one figure spec.
func RunFigure(s Spec) (Figure, error) {
	fig := Figure{
		ID: s.ID, Title: s.Title, XName: s.XName,
		InputMB: s.InputMB, BlockSizeMB: s.BlockSizeMB, NumJobs: s.FixedJobs,
	}
	switch {
	case len(s.Nodes) > 0:
		for _, n := range s.Nodes {
			p, err := RunPoint(n, s.FixedJobs, s.InputMB, s.BlockSizeMB)
			if err != nil {
				return Figure{}, fmt.Errorf("%s nodes=%d: %w", s.ID, n, err)
			}
			p.X = n
			fig.Points = append(fig.Points, p)
		}
	case len(s.Jobs) > 0:
		for _, nj := range s.Jobs {
			p, err := RunPoint(s.FixedNodes, nj, s.InputMB, s.BlockSizeMB)
			if err != nil {
				return Figure{}, fmt.Errorf("%s jobs=%d: %w", s.ID, nj, err)
			}
			p.X = nj
			fig.Points = append(fig.Points, p)
		}
	default:
		return Figure{}, fmt.Errorf("bench: figure %s sweeps nothing", s.ID)
	}
	return fig, nil
}

// Format renders a figure as a markdown table matching the paper's series:
// HadoopSetup (the simulator), Fork/join, Tripathi.
func (f Figure) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", strings.ToUpper(f.ID[:1])+f.ID[1:], f.Title)
	fmt.Fprintf(&b, "| %s | HadoopSetup (sim, s) | Fork/join (s) | err | Tripathi (s) | err |\n", f.XName)
	b.WriteString("|---|---|---|---|---|---|\n")
	for _, p := range f.Points {
		fmt.Fprintf(&b, "| %d | %.1f | %.1f | %+.1f%% | %.1f | %+.1f%% |\n",
			p.X, p.Sim, p.ForkJoin, 100*p.FJErr(), p.Tripathi, 100*p.TPErr())
	}
	return b.String()
}

// ErrorBands aggregates the absolute error range of each estimator over a
// set of figures (the paper's §5.2 headline numbers).
type ErrorBands struct {
	FJMin, FJMax float64
	TPMin, TPMax float64
	// Overestimates counts points where each estimator exceeds the
	// measurement; Total is the number of points.
	FJOver, TPOver, Total int
}

// Bands computes error bands across figures.
func Bands(figs []Figure) ErrorBands {
	b := ErrorBands{FJMin: 1e9, TPMin: 1e9}
	for _, f := range figs {
		for _, p := range f.Points {
			fe, te := p.FJErr(), p.TPErr()
			afe, ate := abs(fe), abs(te)
			if afe < b.FJMin {
				b.FJMin = afe
			}
			if afe > b.FJMax {
				b.FJMax = afe
			}
			if ate < b.TPMin {
				b.TPMin = ate
			}
			if ate > b.TPMax {
				b.TPMax = ate
			}
			if fe > 0 {
				b.FJOver++
			}
			if te > 0 {
				b.TPOver++
			}
			b.Total++
		}
	}
	return b
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Table1 reproduces the ResourceRequest table of the paper's running example
// (n=3 nodes, m=4 maps, r=1 reduce).
func Table1() (string, error) {
	spec := cluster.Default(3)
	file, err := hdfs.Place("running-example", 4*128, 128, 3, hdfs.DefaultReplication)
	if err != nil {
		return "", err
	}
	rows := yarn.BuildRequestTable(file, 1, spec)
	return yarn.FormatRequestTable(rows), nil
}

// RunningExample reproduces Figures 6 and 7: the timeline and precedence
// tree for the n=3, m=4, r=1 example with slow start.
func RunningExample() (*timeline.Timeline, *ptree.Node, error) {
	in := timeline.Input{
		NumNodes:           3,
		MapSlotsPerNode:    1,
		ReduceSlotsPerNode: 1,
		SlowStart:          true,
	}
	for i := 0; i < 4; i++ {
		in.Maps = append(in.Maps, timeline.MapTask{ID: i, Duration: 10, ShuffleDuration: 2})
	}
	in.Reduces = append(in.Reduces, timeline.ReduceTask{ID: 0, ShuffleSortBase: 6, MergeDuration: 5})
	tl, err := timeline.Build(in)
	if err != nil {
		return nil, nil, err
	}
	tree, err := ptree.Build(tl)
	if err != nil {
		return nil, nil, err
	}
	return tl, tree, nil
}

// FormatTimeline renders a timeline as per-node lanes for display.
func FormatTimeline(tl *timeline.Timeline) string {
	byNode := map[int][]timeline.Placed{}
	for _, t := range tl.Tasks {
		byNode[t.Node] = append(byNode[t.Node], t)
	}
	nodes := make([]int, 0, len(byNode))
	for n := range byNode {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	var b strings.Builder
	for _, n := range nodes {
		fmt.Fprintf(&b, "node %d:", n+1)
		tasks := byNode[n]
		sort.Slice(tasks, func(i, j int) bool { return tasks[i].Start < tasks[j].Start })
		for _, t := range tasks {
			fmt.Fprintf(&b, "  %s%d[%.1f,%.1f]", shortClass(t.Class), t.ID, t.Start, t.End)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "border=%.1f lastMapEnd=%.1f makespan=%.1f\n", tl.Border, tl.LastMapEnd, tl.Makespan)
	return b.String()
}

func shortClass(c timeline.Class) string {
	switch c {
	case timeline.ClassMap:
		return "m"
	case timeline.ClassShuffleSort:
		return "s"
	default:
		return "g"
	}
}
