package bench

import (
	"strings"
	"testing"
)

func TestTable1(t *testing.T) {
	out, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "map") || !strings.Contains(out, "reduce") {
		t.Errorf("table missing rows:\n%s", out)
	}
	if !strings.Contains(out, "20") || !strings.Contains(out, "10") {
		t.Errorf("table missing priorities:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Errorf("table missing wildcard locality:\n%s", out)
	}
}

func TestRunningExample(t *testing.T) {
	tl, tree, err := RunningExample()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tl.Tasks); got != 6 {
		t.Fatalf("placed %d tasks", got)
	}
	// Paper Figure 7 shape.
	if got := tree.String(); got != "S(S(P(m0,P(m1,m2)),P(m3,s0)),g0)" {
		t.Errorf("tree = %s", got)
	}
	out := FormatTimeline(tl)
	if !strings.Contains(out, "node 1:") || !strings.Contains(out, "border=") {
		t.Errorf("formatted timeline missing pieces:\n%s", out)
	}
}

func TestFigureSpecsCoverPaper(t *testing.T) {
	specs := FigureSpecs()
	want := map[string]bool{
		"fig10": false, "fig11": false, "fig12": false,
		"fig13": false, "fig14": false, "fig15": false,
	}
	for _, s := range specs {
		if _, ok := want[s.ID]; !ok {
			t.Errorf("unexpected figure %s", s.ID)
		}
		want[s.ID] = true
		if s.InputMB <= 0 || s.BlockSizeMB <= 0 {
			t.Errorf("%s has zero config", s.ID)
		}
		if len(s.Nodes) == 0 && len(s.Jobs) == 0 {
			t.Errorf("%s sweeps nothing", s.ID)
		}
	}
	for id, seen := range want {
		if !seen {
			t.Errorf("figure %s missing", id)
		}
	}
}

func TestRunPointSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed point in -short mode")
	}
	p, err := RunPoint(2, 1, 512, 128)
	if err != nil {
		t.Fatal(err)
	}
	if p.Sim <= 0 || p.ForkJoin <= 0 || p.Tripathi <= 0 {
		t.Errorf("point = %+v", p)
	}
	if p.ForkJoin >= p.Tripathi {
		t.Errorf("estimator ordering violated: fj %v >= tp %v", p.ForkJoin, p.Tripathi)
	}
}

// TestErrorBands is the calibration guard: the reproduction's headline
// claims. Fork/join must track the simulator more closely than Tripathi,
// both must overestimate in (almost) every configuration, and the error
// bands must stay near the paper's (11–13.5% / 19–23%). The guard bounds
// are deliberately wider than the paper's point estimates — the substrate
// is a simulator, not the authors' testbed (see DESIGN.md §4).
func TestErrorBands(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure suite in -short mode")
	}
	singleJob := []Spec{}
	for _, s := range FigureSpecs() {
		if s.FixedJobs == 1 && s.XName == "nodes" {
			singleJob = append(singleJob, s)
		}
	}
	var figs []Figure
	for _, s := range singleJob {
		fig, err := RunFigure(s)
		if err != nil {
			t.Fatal(err)
		}
		figs = append(figs, fig)
	}
	b := Bands(figs)
	if b.Total == 0 {
		t.Fatal("no points")
	}
	// Overestimation dominates (the paper: "with both approaches we
	// overestimate the execution time"). The model's deterministic wave
	// structure underestimates stochastic backfill contention at a minority
	// of points (see EXPERIMENTS.md), so the guard requires a clear majority
	// plus positive mean error rather than unanimity.
	if 3*b.FJOver < 2*b.Total {
		t.Errorf("fork/join overestimates only %d/%d points", b.FJOver, b.Total)
	}
	if 3*b.TPOver < 2*b.Total {
		t.Errorf("tripathi overestimates only %d/%d points", b.TPOver, b.Total)
	}
	var fjMean, tpMean float64
	ranked := 0
	for _, f := range figs {
		for _, p := range f.Points {
			fjMean += p.FJErr()
			tpMean += p.TPErr()
			if p.FJErr() < -0.18 || p.FJErr() > 0.30 {
				t.Errorf("%s x=%d: fork/join error %+.1f%% outside guard [-18%%, +30%%]",
					f.ID, p.X, 100*p.FJErr())
			}
			if p.TPErr() < -0.18 || p.TPErr() > 0.45 {
				t.Errorf("%s x=%d: tripathi error %+.1f%% outside guard [-18%%, +45%%]",
					f.ID, p.X, 100*p.TPErr())
			}
			if p.FJErr() < p.TPErr() {
				ranked++
			}
		}
	}
	fjMean /= float64(b.Total)
	tpMean /= float64(b.Total)
	if fjMean <= 0 {
		t.Errorf("fork/join mean error %.1f%% not an overestimate", 100*fjMean)
	}
	if tpMean <= fjMean {
		t.Errorf("tripathi mean error %.1f%% not above fork/join %.1f%% (paper ranking)",
			100*tpMean, 100*fjMean)
	}
	// Ranking: the Tripathi estimate sits above fork/join at (almost) every
	// point, as in the paper.
	if 4*ranked < 3*b.Total {
		t.Errorf("tripathi above fork/join at only %d/%d points", ranked, b.Total)
	}
}

func TestMultiJobShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed sweep in -short mode")
	}
	// Figure 14 shape: simulated response grows monotonically with the
	// number of concurrent jobs and the model tracks the growth from above.
	prevSim := 0.0
	for n := 1; n <= 3; n++ {
		p, err := RunPoint(4, n, 1*GB, 128)
		if err != nil {
			t.Fatal(err)
		}
		if p.Sim <= prevSim {
			t.Errorf("sim response not growing at %d jobs: %v <= %v", n, p.Sim, prevSim)
		}
		prevSim = p.Sim
		if p.FJErr() < -0.05 {
			t.Errorf("%d jobs: fork/join underestimates by %.1f%%", n, 100*p.FJErr())
		}
	}
}
