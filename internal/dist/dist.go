// Package dist implements the moment algebra behind the Tripathi tree
// estimator (paper §4.2.4, citing Tripathi et al. [12]): task and subtree
// response times are fitted as phase-type distributions by their first two
// moments (mean, coefficient of variation), and S/P tree operators compose
// them — S nodes sum independent children, P nodes take their maximum.
//
// Fitting follows the classical two-moment recipe:
//
//   - cv² < 1  → mixture of Erlang(k-1) and Erlang(k) with a common rate,
//     where 1/k ≤ cv² ≤ 1/(k-1) (matches both moments exactly);
//   - cv² = 1  → exponential (the degenerate case of both branches);
//   - cv² > 1  → two-phase hyperexponential H₂ with balanced means.
//
// Sum moments are analytic (means and variances add for independent terms).
// Max moments have no closed form for general phase-type inputs, so they are
// integrated numerically from E[maxⁿ] = ∫ n·xⁿ⁻¹·(1-∏ᵢFᵢ(x)) dx.
package dist

import (
	"errors"
	"fmt"
	"math"
)

// Distribution is a nonnegative random variable known through its CDF and
// first two moments.
type Distribution interface {
	Mean() float64
	Variance() float64
	// CV is the coefficient of variation (stddev / mean).
	CV() float64
	// CDF evaluates P(X <= x).
	CDF(x float64) float64
}

// maxErlangStages bounds the Erlang stage count of a fit. A requested cv
// below 1/sqrt(maxErlangStages) is clamped (the fitted cv is then slightly
// larger than requested); the model's leaf CVs (≥ 0.05 in practice) never
// reach the clamp.
const maxErlangStages = 400

// Fit returns a phase-type distribution matching the given mean and
// coefficient of variation.
func Fit(mean, cv float64) (Distribution, error) {
	switch {
	case math.IsNaN(mean) || math.IsInf(mean, 0) || mean <= 0:
		return nil, fmt.Errorf("dist: mean must be positive and finite, got %v", mean)
	case math.IsNaN(cv) || math.IsInf(cv, 0) || cv <= 0:
		return nil, fmt.Errorf("dist: cv must be positive and finite, got %v", cv)
	}
	cv2 := cv * cv
	if cv2 >= 1 {
		// Balanced-means H₂ (Morse): p₁/λ₁ = p₂/λ₂.
		p1 := 0.5 * (1 + math.Sqrt((cv2-1)/(cv2+1)))
		return hyperExp2{
			p1: p1,
			l1: 2 * p1 / mean,
			l2: 2 * (1 - p1) / mean,
		}, nil
	}
	k := int(math.Ceil(1 / cv2))
	if k > maxErlangStages {
		k = maxErlangStages
		cv2 = 1 / float64(k)
	}
	if k < 2 {
		k = 2 // cv2 in (1/2, 1): mixture of Erlang-1 (exponential) and Erlang-2
	}
	// Mixed Erlang(k-1)/Erlang(k), common rate mu, probability p of the
	// shorter branch (Tijms, "Stochastic Models", §A.2).
	fk := float64(k)
	p := (fk*cv2 - math.Sqrt(fk*(1+cv2)-fk*fk*cv2)) / (1 + cv2)
	if p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	mu := (fk - p) / mean
	return mixedErlang{k: k, p: p, mu: mu}, nil
}

// MustFit is Fit for statically-known parameters; it panics on error.
func MustFit(mean, cv float64) Distribution {
	d, err := Fit(mean, cv)
	if err != nil {
		panic(err)
	}
	return d
}

// mixedErlang draws Erlang(k-1, mu) with probability p, else Erlang(k, mu).
type mixedErlang struct {
	k  int
	p  float64
	mu float64
}

func (d mixedErlang) Mean() float64 {
	return (d.p*float64(d.k-1) + (1-d.p)*float64(d.k)) / d.mu
}

func (d mixedErlang) Variance() float64 {
	// E[X²] of Erlang(n, mu) is n(n+1)/mu².
	k := float64(d.k)
	m2 := (d.p*(k-1)*k + (1-d.p)*k*(k+1)) / (d.mu * d.mu)
	m := d.Mean()
	return m2 - m*m
}

func (d mixedErlang) CV() float64 {
	m := d.Mean()
	return math.Sqrt(d.Variance()) / m
}

func (d mixedErlang) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Erlang(n, mu) CDF is the regularized lower incomplete gamma P(n, mu·x).
	return d.p*gammP(float64(d.k-1), d.mu*x) + (1-d.p)*gammP(float64(d.k), d.mu*x)
}

// hyperExp2 is a two-phase hyperexponential: exp(l1) w.p. p1, exp(l2) w.p.
// 1-p1.
type hyperExp2 struct {
	p1, l1, l2 float64
}

func (d hyperExp2) Mean() float64 { return d.p1/d.l1 + (1-d.p1)/d.l2 }

func (d hyperExp2) Variance() float64 {
	m2 := 2*d.p1/(d.l1*d.l1) + 2*(1-d.p1)/(d.l2*d.l2)
	m := d.Mean()
	return m2 - m*m
}

func (d hyperExp2) CV() float64 { return math.Sqrt(d.Variance()) / d.Mean() }

func (d hyperExp2) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 - d.p1*math.Exp(-d.l1*x) - (1-d.p1)*math.Exp(-d.l2*x)
}

// SumMoments returns the mean and cv of the sum of independent variables.
func SumMoments(ds []Distribution) (mean, cv float64, err error) {
	if len(ds) == 0 {
		return 0, 0, errors.New("dist: SumMoments of no distributions")
	}
	var m, v float64
	for _, d := range ds {
		m += d.Mean()
		v += d.Variance()
	}
	if m <= 0 {
		return 0, 0, errors.New("dist: sum has nonpositive mean")
	}
	return m, math.Sqrt(v) / m, nil
}

// MaxMoments returns the mean and cv of the maximum of independent
// variables, by numeric integration of the tail of the product CDF.
func MaxMoments(ds []Distribution) (mean, cv float64, err error) {
	if len(ds) == 0 {
		return 0, 0, errors.New("dist: MaxMoments of no distributions")
	}
	// Upper integration bound: past the largest mean + 12 sigma the joint
	// tail is negligible; extend it while the tail is still visible.
	upper := 0.0
	for _, d := range ds {
		if u := d.Mean() + 12*math.Sqrt(d.Variance()); u > upper {
			upper = u
		}
	}
	tail := func(x float64) float64 {
		prod := 1.0
		for _, d := range ds {
			prod *= d.CDF(x)
			if prod == 0 {
				break
			}
		}
		return 1 - prod
	}
	for i := 0; i < 30 && tail(upper) > 1e-10; i++ {
		upper *= 2
	}

	// Simpson integration of E[max] = ∫ tail and E[max²] = ∫ 2x·tail.
	const steps = 2048 // even
	h := upper / steps
	var m1, m2 float64
	for i := 0; i <= steps; i++ {
		x := float64(i) * h
		w := 2.0
		switch {
		case i == 0 || i == steps:
			w = 1
		case i%2 == 1:
			w = 4
		}
		t := tail(x)
		m1 += w * t
		m2 += w * 2 * x * t
	}
	m1 *= h / 3
	m2 *= h / 3
	if m1 <= 0 {
		return 0, 0, errors.New("dist: max has nonpositive mean")
	}
	v := m2 - m1*m1
	if v < 0 {
		v = 0 // numeric jitter for near-deterministic inputs
	}
	return m1, math.Sqrt(v) / m1, nil
}

// gammP is the regularized lower incomplete gamma function P(a, x),
// following the series / continued-fraction split of Numerical Recipes.
func gammP(a, x float64) float64 {
	if a <= 0 {
		// Erlang with zero stages is a point mass at 0.
		return 1
	}
	if x <= 0 {
		return 0
	}
	if x < a+1 {
		return gammPSeries(a, x)
	}
	return 1 - gammQContinued(a, x)
}

func gammPSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-14 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammQContinued(a, x float64) float64 {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-14 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}
