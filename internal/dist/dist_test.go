package dist

import (
	"math"
	"testing"
)

func almost(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol*math.Abs(want) {
		t.Errorf("%s = %v, want %v (tol %v)", what, got, want, tol)
	}
}

func TestFitRecoversMoments(t *testing.T) {
	for _, tc := range []struct{ mean, cv float64 }{
		{30, 0.15},  // low-cv Erlang mixture
		{30, 0.5},   // mid-cv Erlang mixture
		{30, 0.95},  // near-exponential from below
		{30, 1.0},   // exponential
		{30, 1.8},   // hyperexponential
		{0.5, 0.3},  // sub-second mean
		{1e4, 0.12}, // large mean, default leaf CV
	} {
		d, err := Fit(tc.mean, tc.cv)
		if err != nil {
			t.Fatalf("Fit(%v, %v): %v", tc.mean, tc.cv, err)
		}
		almost(t, d.Mean(), tc.mean, 1e-9, "mean")
		almost(t, d.CV(), tc.cv, 1e-9, "cv")
	}
}

func TestFitCDFShape(t *testing.T) {
	d := MustFit(10, 0.4)
	if d.CDF(-1) != 0 || d.CDF(0) != 0 {
		t.Error("CDF must vanish at and below zero")
	}
	prev := 0.0
	for x := 0.5; x < 100; x += 0.5 {
		c := d.CDF(x)
		if c < prev-1e-12 {
			t.Fatalf("CDF not monotone at %v: %v < %v", x, c, prev)
		}
		prev = c
	}
	if got := d.CDF(1000); math.Abs(got-1) > 1e-9 {
		t.Errorf("CDF(1000) = %v, want ~1", got)
	}
	// Median of the fitted distribution brackets the mean region.
	if d.CDF(10) < 0.3 || d.CDF(10) > 0.8 {
		t.Errorf("CDF(mean) = %v, implausible", d.CDF(10))
	}
}

func TestFitRejectsBadInput(t *testing.T) {
	for _, tc := range []struct{ mean, cv float64 }{
		{0, 0.5}, {-1, 0.5}, {math.NaN(), 0.5}, {math.Inf(1), 0.5},
		{10, 0}, {10, -0.1}, {10, math.NaN()}, {10, math.Inf(1)},
	} {
		if _, err := Fit(tc.mean, tc.cv); err == nil {
			t.Errorf("Fit(%v, %v): expected error", tc.mean, tc.cv)
		}
	}
}

func TestMustFitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustFit(0, 0) did not panic")
		}
	}()
	MustFit(0, 0)
}

func TestSumMoments(t *testing.T) {
	a := MustFit(10, 0.3)
	b := MustFit(20, 0.6)
	m, cv, err := SumMoments([]Distribution{a, b})
	if err != nil {
		t.Fatal(err)
	}
	almost(t, m, 30, 1e-9, "sum mean")
	wantVar := a.Variance() + b.Variance()
	almost(t, cv, math.Sqrt(wantVar)/30, 1e-9, "sum cv")

	if _, _, err := SumMoments(nil); err == nil {
		t.Error("empty sum accepted")
	}
}

// TestMaxMomentsExponential checks the numeric integration against the
// closed form for two independent exponentials:
// E[max] = 1/l1 + 1/l2 - 1/(l1+l2).
func TestMaxMomentsExponential(t *testing.T) {
	l1, l2 := 1.0/30, 1.0/20
	a := MustFit(30, 1)
	b := MustFit(20, 1)
	m, cv, err := MaxMoments([]Distribution{a, b})
	if err != nil {
		t.Fatal(err)
	}
	want := 1/l1 + 1/l2 - 1/(l1+l2)
	almost(t, m, want, 1e-3, "max mean")
	// E[max²] = 2/l1² + 2/l2² - 2/(l1+l2)².
	m2 := 2/(l1*l1) + 2/(l2*l2) - 2/((l1+l2)*(l1+l2))
	wantCV := math.Sqrt(m2-want*want) / want
	almost(t, cv, wantCV, 1e-2, "max cv")
}

func TestMaxMomentsDominance(t *testing.T) {
	// Max of near-deterministic variables is near the largest mean.
	a := MustFit(10, 0.05)
	b := MustFit(40, 0.05)
	m, _, err := MaxMoments([]Distribution{a, b})
	if err != nil {
		t.Fatal(err)
	}
	almost(t, m, 40, 0.02, "dominant max mean")

	if _, _, err := MaxMoments(nil); err == nil {
		t.Error("empty max accepted")
	}
}

func TestGammPIsAProbability(t *testing.T) {
	for _, a := range []float64{1, 2, 45, 399} {
		for _, x := range []float64{0.01, a / 2, a, 2 * a, 10 * a} {
			p := gammP(a, x)
			if p < 0 || p > 1+1e-12 {
				t.Errorf("gammP(%v, %v) = %v out of [0,1]", a, x, p)
			}
		}
	}
	if gammP(3, 0) != 0 {
		t.Error("gammP(a, 0) != 0")
	}
}
