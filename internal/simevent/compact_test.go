package simevent

import "testing"

// Cancelled timers must not accumulate in the calendar: the engine sweeps
// dead entries once they exceed half the calendar, so queue growth stays
// bounded by ~2x the live event count no matter how many timers are
// cancelled (the reschedule-heavy PSResource pattern cancels one timer per
// state change).
func TestCancelledTimersCompacted(t *testing.T) {
	eng := NewEngine()
	// One long-lived live event so the calendar is never trivially empty.
	eng.At(1e9, func() {})
	const churn = 100_000
	maxLen := 0
	for i := 0; i < churn; i++ {
		tm := eng.At(1e6+float64(i), func() {})
		tm.Cancel()
		if eng.Len() > maxLen {
			maxLen = eng.Len()
		}
	}
	if maxLen > 2*compactMinLen {
		t.Errorf("calendar grew to %d entries under cancel churn (want <= %d)", maxLen, 2*compactMinLen)
	}
	if got := eng.Pending(); got != 1 {
		t.Errorf("pending = %d, want 1", got)
	}
	if _, err := eng.Run(10); err != nil {
		t.Fatal(err)
	}
}

// Compaction must preserve event ordering and never drop live events.
func TestCompactionPreservesLiveEvents(t *testing.T) {
	eng := NewEngine()
	var order []int
	var timers []Timer
	// Interleave live and to-be-cancelled events.
	for i := 0; i < 500; i++ {
		i := i
		if i%2 == 0 {
			eng.At(float64(i), func() { order = append(order, i) })
		} else {
			timers = append(timers, eng.At(float64(i), func() { t.Error("cancelled event fired") }))
		}
	}
	for _, tm := range timers {
		tm.Cancel()
	}
	if _, err := eng.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if len(order) != 250 {
		t.Fatalf("fired %d live events, want 250", len(order))
	}
	for i := 1; i < len(order); i++ {
		if order[i] <= order[i-1] {
			t.Fatalf("events out of order: %d after %d", order[i], order[i-1])
		}
	}
}

func TestEngineReset(t *testing.T) {
	eng := NewEngine()
	fired := 0
	eng.At(5, func() { fired++ })
	stale := eng.At(7, func() { fired++ })
	if _, err := eng.Run(100); err != nil {
		t.Fatal(err)
	}
	if fired != 2 || eng.Now() != 7 {
		t.Fatalf("fired=%d now=%v", fired, eng.Now())
	}

	eng.Reset()
	if eng.Now() != 0 || eng.Len() != 0 || eng.Pending() != 0 {
		t.Fatalf("reset engine: now=%v len=%d pending=%d", eng.Now(), eng.Len(), eng.Pending())
	}
	// A stale Timer from before the reset must not cancel a new event that
	// happens to reuse its slot.
	ran := false
	eng.At(1, func() { ran = true })
	stale.Cancel()
	if _, err := eng.Run(100); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("stale pre-reset Timer cancelled a post-reset event")
	}
	// The engine is fully usable after reset: ordering still holds.
	var order []float64
	eng.Reset()
	eng.At(3, func() { order = append(order, 3) })
	eng.At(1, func() { order = append(order, 1) })
	eng.At(2, func() { order = append(order, 2) })
	if _, err := eng.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order after reset = %v", order)
	}
}

func TestZeroTimerCancelNoop(t *testing.T) {
	var tm Timer
	tm.Cancel() // must not panic
}
