package simevent

import (
	"math"
	"testing"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestEngineOrdersEvents(t *testing.T) {
	eng := NewEngine()
	var order []int
	eng.At(3, func() { order = append(order, 3) })
	eng.At(1, func() { order = append(order, 1) })
	eng.At(2, func() { order = append(order, 2) })
	if _, err := eng.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if eng.Now() != 3 {
		t.Errorf("clock = %v", eng.Now())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	eng := NewEngine()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		eng.At(1, func() { order = append(order, i) })
	}
	if _, err := eng.Run(100); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	eng := NewEngine()
	var hits []float64
	eng.At(1, func() {
		hits = append(hits, eng.Now())
		eng.After(2, func() { hits = append(hits, eng.Now()) })
	})
	if _, err := eng.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 || hits[0] != 1 || hits[1] != 3 {
		t.Errorf("hits = %v", hits)
	}
}

func TestEngineCancel(t *testing.T) {
	eng := NewEngine()
	fired := false
	tm := eng.At(1, func() { fired = true })
	tm.Cancel()
	if _, err := eng.Run(100); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("cancelled event fired")
	}
	// Cancel after firing is a no-op.
	tm2 := eng.At(2, func() {})
	if _, err := eng.Run(100); err != nil {
		t.Fatal(err)
	}
	tm2.Cancel()
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	eng := NewEngine()
	eng.At(5, func() {})
	if _, err := eng.Run(100); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic scheduling in the past")
		}
	}()
	eng.At(1, func() {})
}

func TestEngineEventBudget(t *testing.T) {
	eng := NewEngine()
	var rearm func()
	rearm = func() { eng.After(1, rearm) }
	eng.After(1, rearm)
	if _, err := eng.Run(10); err == nil {
		t.Error("expected budget error")
	}
}

func TestPSSingleTaskRunsAtFullRate(t *testing.T) {
	eng := NewEngine()
	r := NewPSResource(eng, "cpu", 4)
	var done float64 = -1
	r.Submit(10, func() { done = eng.Now() })
	if _, err := eng.Run(1000); err != nil {
		t.Fatal(err)
	}
	if !almostEq(done, 10, 1e-9) {
		t.Errorf("single task finished at %v, want 10", done)
	}
}

func TestPSTwoTasksShareSingleServer(t *testing.T) {
	eng := NewEngine()
	r := NewPSResource(eng, "disk", 1)
	var d1, d2 float64 = -1, -1
	r.Submit(10, func() { d1 = eng.Now() })
	r.Submit(10, func() { d2 = eng.Now() })
	if _, err := eng.Run(1000); err != nil {
		t.Fatal(err)
	}
	// Both share rate 1/2 -> both finish at 20.
	if !almostEq(d1, 20, 1e-6) || !almostEq(d2, 20, 1e-6) {
		t.Errorf("completions = %v, %v; want 20, 20", d1, d2)
	}
}

func TestPSTwoTasksUnderCapacityNoSlowdown(t *testing.T) {
	eng := NewEngine()
	r := NewPSResource(eng, "cpu", 2)
	var d1, d2 float64 = -1, -1
	r.Submit(10, func() { d1 = eng.Now() })
	r.Submit(5, func() { d2 = eng.Now() })
	if _, err := eng.Run(1000); err != nil {
		t.Fatal(err)
	}
	if !almostEq(d1, 10, 1e-6) || !almostEq(d2, 5, 1e-6) {
		t.Errorf("completions = %v, %v; want 10, 5", d1, d2)
	}
}

func TestPSDynamicRateChange(t *testing.T) {
	eng := NewEngine()
	r := NewPSResource(eng, "disk", 1)
	var d1, d2 float64 = -1, -1
	r.Submit(10, func() { d1 = eng.Now() })
	// Second task arrives at t=5: first has 5 remaining, now shared.
	eng.At(5, func() { r.Submit(10, func() { d2 = eng.Now() }) })
	if _, err := eng.Run(1000); err != nil {
		t.Fatal(err)
	}
	// t=5..15: both at rate 1/2; first finishes its remaining 5 at t=15.
	if !almostEq(d1, 15, 1e-6) {
		t.Errorf("d1 = %v, want 15", d1)
	}
	// Second then has 5 remaining alone: finishes at 20.
	if !almostEq(d2, 20, 1e-6) {
		t.Errorf("d2 = %v, want 20", d2)
	}
}

func TestPSZeroWorkCompletesImmediately(t *testing.T) {
	eng := NewEngine()
	r := NewPSResource(eng, "cpu", 1)
	done := false
	r.Submit(0, func() { done = true })
	if _, err := eng.Run(10); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Error("zero work never completed")
	}
	if eng.Now() != 0 {
		t.Errorf("clock advanced to %v", eng.Now())
	}
}

func TestPSBusyTime(t *testing.T) {
	eng := NewEngine()
	r := NewPSResource(eng, "cpu", 2)
	r.Submit(10, func() {})
	r.Submit(10, func() {})
	if _, err := eng.Run(1000); err != nil {
		t.Fatal(err)
	}
	if got := r.BusyTime(); !almostEq(got, 20, 1e-6) {
		t.Errorf("busy time = %v, want 20 work-seconds", got)
	}
}

func TestPSInvalidCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewPSResource(NewEngine(), "x", 0)
}

func TestFCFSSerializes(t *testing.T) {
	eng := NewEngine()
	r := NewFCFSResource(eng, "link")
	var d1, d2, d3 float64 = -1, -1, -1
	r.Submit(5, func() { d1 = eng.Now() })
	r.Submit(3, func() { d2 = eng.Now() })
	r.Submit(2, func() { d3 = eng.Now() })
	if _, err := eng.Run(1000); err != nil {
		t.Fatal(err)
	}
	if !almostEq(d1, 5, 1e-9) || !almostEq(d2, 8, 1e-9) || !almostEq(d3, 10, 1e-9) {
		t.Errorf("completions = %v %v %v; want 5 8 10", d1, d2, d3)
	}
	if got := r.BusyTime(); !almostEq(got, 10, 1e-9) {
		t.Errorf("busy = %v", got)
	}
}

func TestFCFSQueueLen(t *testing.T) {
	eng := NewEngine()
	r := NewFCFSResource(eng, "link")
	r.Submit(5, func() {})
	r.Submit(5, func() {})
	if got := r.QueueLen(); got != 2 {
		t.Errorf("queue len = %d, want 2", got)
	}
	if _, err := eng.Run(100); err != nil {
		t.Fatal(err)
	}
	if got := r.QueueLen(); got != 0 {
		t.Errorf("drained queue len = %d", got)
	}
}

func TestFCFSZeroWork(t *testing.T) {
	eng := NewEngine()
	r := NewFCFSResource(eng, "link")
	done := false
	r.Submit(-1, func() { done = true })
	if _, err := eng.Run(10); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Error("non-positive work never completed")
	}
}

// Conservation property: with capacity c and n equal tasks submitted
// together, each finishes at work*max(1, n/c).
func TestPSConservationProperty(t *testing.T) {
	for _, tc := range []struct {
		capacity float64
		n        int
		work     float64
	}{
		{1, 1, 7}, {1, 4, 3}, {2, 4, 5}, {4, 3, 9}, {8, 16, 2},
	} {
		eng := NewEngine()
		r := NewPSResource(eng, "x", tc.capacity)
		finish := make([]float64, tc.n)
		for i := 0; i < tc.n; i++ {
			i := i
			r.Submit(tc.work, func() { finish[i] = eng.Now() })
		}
		if _, err := eng.Run(100000); err != nil {
			t.Fatal(err)
		}
		slow := float64(tc.n) / tc.capacity
		if slow < 1 {
			slow = 1
		}
		want := tc.work * slow
		for i, f := range finish {
			if !almostEq(f, want, 1e-6) {
				t.Errorf("cap=%v n=%d: task %d finished at %v, want %v",
					tc.capacity, tc.n, i, f, want)
			}
		}
	}
}
