// Package simevent is a small discrete-event simulation engine with
// contention-aware resources. It provides the substrate on which the YARN
// cluster simulator (internal/mrsim) executes: an event calendar plus
// processor-sharing and FCFS resources that convert "seconds of work" into
// elapsed time under concurrency.
package simevent

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback.
type event struct {
	time float64
	seq  uint64 // FIFO tie-break for simultaneous events
	fn   func()
	dead bool
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator clock and calendar.
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now   float64
	queue eventQueue
	seq   uint64
}

// NewEngine returns an engine with the clock at 0.
func NewEngine() *Engine {
	e := &Engine{}
	heap.Init(&e.queue)
	return e
}

// Now returns the current simulation time.
func (e *Engine) Now() float64 { return e.now }

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct{ ev *event }

// Cancel prevents the event from firing; safe to call after it fired.
func (t Timer) Cancel() {
	if t.ev != nil {
		t.ev.dead = true
	}
}

// At schedules fn at absolute time t (>= Now). Scheduling in the past panics:
// that is always a simulator bug.
func (e *Engine) At(t float64, fn func()) Timer {
	if t < e.now {
		panic(fmt.Sprintf("simevent: scheduling at %v before now %v", t, e.now))
	}
	ev := &event{time: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return Timer{ev: ev}
}

// After schedules fn after delay d (>= 0).
func (e *Engine) After(d float64, fn func()) Timer { return e.At(e.now+d, fn) }

// Run processes events until the calendar is empty or maxEvents events have
// fired. It returns the number of events processed and an error if the event
// budget was exhausted (guarding against runaway simulations).
func (e *Engine) Run(maxEvents int) (int, error) {
	n := 0
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.dead {
			continue
		}
		e.now = ev.time
		n++
		if n > maxEvents {
			return n, fmt.Errorf("simevent: exceeded event budget of %d", maxEvents)
		}
		ev.fn()
	}
	return n, nil
}
