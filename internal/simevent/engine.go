// Package simevent is a small discrete-event simulation engine with
// contention-aware resources. It provides the substrate on which the YARN
// cluster simulator (internal/mrsim) executes: an event calendar plus
// processor-sharing and FCFS resources that convert "seconds of work" into
// elapsed time under concurrency.
//
// The calendar is engineered for the simulator hot path: scheduled events
// live in a value slice managed by a free list (one arena slot per pending
// event, no per-event heap allocation), the binary heap orders lightweight
// index entries, and cancelled events are compacted away once they exceed
// half the calendar instead of lingering until popped. Engines are reusable
// via Reset, so callers running many simulations (median-of-seeds, planner
// sweeps) can pool them.
package simevent

import (
	"context"
	"fmt"
)

// entry is one calendar position: the scheduled time, a FIFO tie-break
// sequence, and the arena slot holding the callback. Entries move inside the
// heap; slots do not, so Timer handles stay valid.
type entry struct {
	time float64
	seq  uint64
	slot int32
}

// slot is one arena cell. gen guards Timer handles against slot reuse: a
// slot is freed (and its generation bumped) only when its calendar entry is
// removed, so every pending event owns exactly one slot.
type slot struct {
	fn   func()
	gen  uint32
	live bool
}

// compactMinLen is the calendar size below which dead entries are left for
// Run to skip: compaction of tiny calendars costs more than it saves.
const compactMinLen = 64

// Engine is a single-threaded discrete-event simulator clock and calendar.
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now   float64
	seq   uint64
	cal   []entry // binary min-heap by (time, seq)
	slots []slot
	free  []int32
	dead  int // cancelled entries still occupying calendar positions
}

// NewEngine returns an engine with the clock at 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() float64 { return e.now }

// Len returns the number of calendar entries, including cancelled ones not
// yet compacted or popped.
func (e *Engine) Len() int { return len(e.cal) }

// Pending returns the number of live (non-cancelled) scheduled events.
func (e *Engine) Pending() int { return len(e.cal) - e.dead }

// Reset returns the engine to its initial state (clock at 0, empty
// calendar) while keeping its allocated capacity, so one engine can serve
// many simulation runs. Outstanding Timer handles are invalidated.
func (e *Engine) Reset() {
	e.now, e.seq, e.dead = 0, 0, 0
	e.cal = e.cal[:0]
	e.free = e.free[:0]
	for i := range e.slots {
		e.slots[i].fn = nil
		e.slots[i].live = false
		e.slots[i].gen++ // stale Timers from the previous run must not cancel
		e.free = append(e.free, int32(i))
	}
}

// Timer is a handle to a scheduled event that can be cancelled. The zero
// value is a valid no-op handle.
type Timer struct {
	eng  *Engine
	slot int32
	gen  uint32
}

// Cancel prevents the event from firing; safe to call after it fired. The
// calendar entry is reclaimed lazily: either skipped on pop or swept out in
// bulk once dead entries exceed half the calendar.
func (t Timer) Cancel() {
	e := t.eng
	if e == nil {
		return
	}
	s := &e.slots[t.slot]
	if s.gen != t.gen || !s.live {
		return // already fired, cancelled, or the slot was recycled
	}
	s.live = false
	s.fn = nil
	e.dead++
	if e.dead*2 > len(e.cal) && len(e.cal) >= compactMinLen {
		e.compact()
	}
}

// At schedules fn at absolute time t (>= Now). Scheduling in the past panics:
// that is always a simulator bug.
func (e *Engine) At(t float64, fn func()) Timer {
	if t < e.now {
		panic(fmt.Sprintf("simevent: scheduling at %v before now %v", t, e.now))
	}
	var idx int32
	if n := len(e.free); n > 0 {
		idx = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.slots = append(e.slots, slot{})
		idx = int32(len(e.slots) - 1)
	}
	s := &e.slots[idx]
	s.fn = fn
	s.live = true
	e.cal = append(e.cal, entry{time: t, seq: e.seq, slot: idx})
	e.seq++
	e.siftUp(len(e.cal) - 1)
	return Timer{eng: e, slot: idx, gen: s.gen}
}

// After schedules fn after delay d (>= 0).
func (e *Engine) After(d float64, fn func()) Timer { return e.At(e.now+d, fn) }

// Run processes events until the calendar is empty or maxEvents events have
// fired. It returns the number of events processed and an error if the event
// budget was exhausted (guarding against runaway simulations). Cancelled
// events are skipped without counting against the budget.
func (e *Engine) Run(maxEvents int) (int, error) { return e.run(nil, maxEvents) }

// RunContext is Run with cooperative cancellation: every 64k fired events it
// polls ctx and aborts with ctx.Err() once the context is done, so a
// canceled caller gets its goroutine back promptly instead of waiting out
// the whole event budget.
func (e *Engine) RunContext(ctx context.Context, maxEvents int) (int, error) {
	return e.run(ctx, maxEvents)
}

func (e *Engine) run(ctx context.Context, maxEvents int) (int, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return 0, err // already canceled: don't start at all
		}
	}
	n := 0
	for len(e.cal) > 0 {
		top := e.cal[0]
		last := len(e.cal) - 1
		e.cal[0] = e.cal[last]
		e.cal = e.cal[:last]
		if last > 0 {
			e.siftDown(0)
		}
		s := &e.slots[top.slot]
		fn := s.fn
		wasLive := s.live
		s.fn = nil
		s.live = false
		s.gen++
		e.free = append(e.free, top.slot)
		if !wasLive {
			e.dead--
			continue
		}
		e.now = top.time
		n++
		if n > maxEvents {
			return n, fmt.Errorf("simevent: exceeded event budget of %d", maxEvents)
		}
		if ctx != nil && n&0xFFFF == 0 {
			if err := ctx.Err(); err != nil {
				return n, err
			}
		}
		fn()
	}
	return n, nil
}

// compact sweeps cancelled entries out of the calendar in one pass and
// restores the heap property, bounding calendar growth to 2x the live event
// count regardless of how many timers are cancelled.
func (e *Engine) compact() {
	w := 0
	for _, en := range e.cal {
		s := &e.slots[en.slot]
		if s.live {
			e.cal[w] = en
			w++
			continue
		}
		s.fn = nil
		s.gen++
		e.free = append(e.free, en.slot)
	}
	e.cal = e.cal[:w]
	e.dead = 0
	// Bottom-up heapify: O(n), cheaper than n sift-ups.
	for i := w/2 - 1; i >= 0; i-- {
		e.siftDown(i)
	}
}

func (e *Engine) less(i, j int) bool {
	a, b := e.cal[i], e.cal[j]
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

func (e *Engine) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			return
		}
		e.cal[i], e.cal[parent] = e.cal[parent], e.cal[i]
		i = parent
	}
}

func (e *Engine) siftDown(i int) {
	n := len(e.cal)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && e.less(l, min) {
			min = l
		}
		if r < n && e.less(r, min) {
			min = r
		}
		if min == i {
			return
		}
		e.cal[i], e.cal[min] = e.cal[min], e.cal[i]
		i = min
	}
}
