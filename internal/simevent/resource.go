package simevent

import "fmt"

// PSResource is a processor-sharing resource with a fixed capacity measured
// in "work units per second" (e.g. a node CPU with capacity c executes up to
// c seconds of task work per second, evenly shared when more than c tasks are
// active; a single disk has capacity 1).
//
// It models the shared service centers of the paper's queueing network: the
// response time of a task's work inflates when concurrent tasks contend.
// Active tasks live in a value slice kept in submission order, so service
// and completion are deterministic and the per-task bookkeeping allocates
// nothing beyond the slice itself.
type PSResource struct {
	eng      *Engine
	name     string
	capacity float64
	active   []psTask // submission order
	fired    []func() // scratch for complete(), reused across events
	lastUpd  float64
	pending  Timer
	// busyIntegral accumulates utilization*time for reporting.
	busyIntegral float64
}

type psTask struct {
	remaining float64
	done      func()
}

// NewPSResource creates a processor-sharing resource with the given capacity
// (> 0) attached to the engine.
func NewPSResource(eng *Engine, name string, capacity float64) *PSResource {
	if capacity <= 0 {
		panic(fmt.Sprintf("simevent: PS resource %q needs positive capacity", name))
	}
	return &PSResource{eng: eng, name: name, capacity: capacity}
}

// Submit enqueues work seconds of demand; done fires when the work
// completes under sharing. Zero or negative work completes immediately at the
// current time (via an immediate event, preserving event ordering).
func (r *PSResource) Submit(work float64, done func()) {
	if work <= 0 {
		r.eng.After(0, done)
		return
	}
	r.advance()
	r.active = append(r.active, psTask{remaining: work, done: done})
	r.reschedule()
}

// InService returns the number of tasks currently sharing the resource.
func (r *PSResource) InService() int { return len(r.active) }

// Clear drops every active task without firing its completion callback and
// cancels the pending completion event — node-crash semantics: work in
// progress is lost and nothing downstream of it runs. Service delivered so
// far stays in the utilization integral (BusyTime); the resource itself
// remains usable (a repaired node restarts empty).
func (r *PSResource) Clear() {
	r.advance()
	for i := range r.active {
		r.active[i].done = nil
	}
	r.active = r.active[:0]
	r.pending.Cancel()
	r.pending = Timer{}
}

// BusyTime returns the accumulated utilization integral (work-seconds
// completed); BusyTime/elapsed gives average utilization in work units.
func (r *PSResource) BusyTime() float64 {
	r.advance()
	r.reschedule()
	return r.busyIntegral
}

// rate returns the per-task service rate under processor sharing.
func (r *PSResource) rate() float64 {
	n := len(r.active)
	if n == 0 {
		return 0
	}
	rate := r.capacity / float64(n)
	if rate > 1 {
		rate = 1 // a single task cannot run faster than real time
	}
	return rate
}

// advance applies elapsed service since lastUpd to all active tasks.
func (r *PSResource) advance() {
	now := r.eng.Now()
	dt := now - r.lastUpd
	r.lastUpd = now
	if dt <= 0 || len(r.active) == 0 {
		return
	}
	rt := r.rate()
	served := rt * dt
	r.busyIntegral += served * float64(len(r.active))
	for i := range r.active {
		r.active[i].remaining -= served
		if r.active[i].remaining < 0 {
			r.active[i].remaining = 0
		}
	}
}

// reschedule cancels the pending completion event and schedules the next one.
func (r *PSResource) reschedule() {
	r.pending.Cancel()
	if len(r.active) == 0 {
		return
	}
	rt := r.rate()
	minRem := -1.0
	for i := range r.active {
		if minRem < 0 || r.active[i].remaining < minRem {
			minRem = r.active[i].remaining
		}
	}
	eta := minRem / rt
	r.pending = r.eng.After(eta, r.complete)
}

// complete fires the callbacks of every task that has (numerically) finished,
// in submission order.
func (r *PSResource) complete() {
	r.advance()
	const eps = 1e-9
	r.fired = r.fired[:0]
	w := 0
	for i := range r.active {
		if r.active[i].remaining <= eps {
			r.fired = append(r.fired, r.active[i].done)
			continue
		}
		r.active[w] = r.active[i]
		w++
	}
	for i := w; i < len(r.active); i++ {
		r.active[i].done = nil // release completed closures
	}
	r.active = r.active[:w]
	r.reschedule()
	for _, fn := range r.fired {
		fn()
	}
}

// FCFSResource is a single-server first-come-first-served queue (e.g. a
// network link serialized at a fixed bandwidth).
type FCFSResource struct {
	eng   *Engine
	name  string
	queue []fcfsItem
	busy  bool
	// busyIntegral accumulates service time for utilization reporting.
	busyIntegral float64
}

type fcfsItem struct {
	work float64
	done func()
}

// NewFCFSResource creates an empty FCFS queue attached to the engine.
func NewFCFSResource(eng *Engine, name string) *FCFSResource {
	return &FCFSResource{eng: eng, name: name}
}

// Submit enqueues work seconds of service; done fires when service completes.
func (r *FCFSResource) Submit(work float64, done func()) {
	if work <= 0 {
		r.eng.After(0, done)
		return
	}
	r.queue = append(r.queue, fcfsItem{work: work, done: done})
	if !r.busy {
		r.serveNext()
	}
}

// QueueLen returns the number of waiting plus in-service items.
func (r *FCFSResource) QueueLen() int {
	n := len(r.queue)
	if r.busy {
		n++
	}
	return n
}

// BusyTime returns total service time delivered so far.
func (r *FCFSResource) BusyTime() float64 { return r.busyIntegral }

func (r *FCFSResource) serveNext() {
	if len(r.queue) == 0 {
		r.busy = false
		return
	}
	item := r.queue[0]
	r.queue = r.queue[1:]
	r.busy = true
	r.busyIntegral += item.work
	r.eng.After(item.work, func() {
		item.done()
		r.serveNext()
	})
}
