package timeline

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// runningExample is the paper's n=3, m=4, r=1 scenario.
func runningExample(slowStart bool) Input {
	in := Input{
		NumNodes:           3,
		MapSlotsPerNode:    1,
		ReduceSlotsPerNode: 1,
		SlowStart:          slowStart,
	}
	for i := 0; i < 4; i++ {
		in.Maps = append(in.Maps, MapTask{ID: i, Duration: 10, ShuffleDuration: 3})
	}
	in.Reduces = append(in.Reduces, ReduceTask{ID: 0, ShuffleSortBase: 4, MergeDuration: 5})
	return in
}

func TestValidateRejections(t *testing.T) {
	base := runningExample(true)
	tests := []struct {
		name   string
		mutate func(*Input)
	}{
		{"zero nodes", func(in *Input) { in.NumNodes = 0 }},
		{"zero map slots", func(in *Input) { in.MapSlotsPerNode = 0 }},
		{"zero reduce slots", func(in *Input) { in.ReduceSlotsPerNode = 0 }},
		{"no maps", func(in *Input) { in.Maps = nil }},
		{"bad map duration", func(in *Input) { in.Maps[0].Duration = 0 }},
		{"negative shuffle", func(in *Input) { in.Maps[0].ShuffleDuration = -1 }},
		{"negative reduce", func(in *Input) { in.Reduces[0].MergeDuration = -1 }},
		{"zero reduce total", func(in *Input) {
			in.Reduces[0].ShuffleSortBase = 0
			in.Reduces[0].MergeDuration = 0
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			in := runningExample(true)
			tt.mutate(&in)
			if _, err := Build(in); err == nil {
				t.Error("expected error")
			}
		})
	}
	if _, err := Build(base); err != nil {
		t.Fatalf("valid input rejected: %v", err)
	}
}

func TestRunningExamplePlacement(t *testing.T) {
	tl, err := Build(runningExample(true))
	if err != nil {
		t.Fatal(err)
	}
	// 4 maps + 1 shuffle-sort + 1 merge = 6 placed tasks.
	if len(tl.Tasks) != 6 {
		t.Fatalf("placed %d tasks, want 6", len(tl.Tasks))
	}
	maps := tl.ByClass(ClassMap)
	if len(maps) != 4 {
		t.Fatalf("%d maps", len(maps))
	}
	// First wave: m0,m1,m2 on the three nodes at t=0; m4 queued on node 0.
	for i := 0; i < 3; i++ {
		if maps[i].Start != 0 || maps[i].End != 10 {
			t.Errorf("map %d = [%v,%v], want [0,10]", i, maps[i].Start, maps[i].End)
		}
	}
	if maps[3].Start != 10 || maps[3].End != 20 {
		t.Errorf("map 3 = [%v,%v], want [10,20]", maps[3].Start, maps[3].End)
	}
	// Slow start: border at the end of the first map.
	if tl.Border != 10 {
		t.Errorf("border = %v, want 10", tl.Border)
	}
	if tl.LastMapEnd != 20 {
		t.Errorf("lastMapEnd = %v", tl.LastMapEnd)
	}
	// The reduce's shuffle starts at the border.
	ss := tl.ByClass(ClassShuffleSort)[0]
	if ss.Start != 10 {
		t.Errorf("shuffle start = %v, want 10 (border)", ss.Start)
	}
	// Shuffle cannot end before the last map.
	if ss.End < 20 {
		t.Errorf("shuffle end = %v before last map end", ss.End)
	}
	mg := tl.ByClass(ClassMerge)[0]
	if mg.Start != ss.End {
		t.Errorf("merge start %v != shuffle end %v", mg.Start, ss.End)
	}
	if !almostEq(mg.End-mg.Start, 5, 1e-9) {
		t.Errorf("merge duration = %v", mg.End-mg.Start)
	}
	if tl.Makespan != mg.End {
		t.Errorf("makespan = %v, want %v", tl.Makespan, mg.End)
	}
}

func TestNoSlowStartBorder(t *testing.T) {
	tl, err := Build(runningExample(false))
	if err != nil {
		t.Fatal(err)
	}
	if tl.Border != tl.LastMapEnd {
		t.Errorf("border = %v, want lastMapEnd %v", tl.Border, tl.LastMapEnd)
	}
	ss := tl.ByClass(ClassShuffleSort)[0]
	if ss.Start != 20 {
		t.Errorf("shuffle start = %v, want 20", ss.Start)
	}
}

func TestRemoteShuffleInflation(t *testing.T) {
	// The reduce lands on the least-occupied node; maps on other nodes add
	// sd/|R| each to the shuffle duration (Algorithm 1 lines 14-18).
	in := runningExample(false)
	tl, err := Build(in)
	if err != nil {
		t.Fatal(err)
	}
	ss := tl.ByClass(ClassShuffleSort)[0]
	// The reduce is on node 1 or 2 (node 0 has 2 maps). 3 maps are remote
	// (the 4th shares the reducer's node): duration = 4 + 3*3/1 = 13.
	remote := 0
	for _, m := range tl.ByClass(ClassMap) {
		if m.Node != ss.Node {
			remote++
		}
	}
	want := 4.0 + float64(remote)*3.0
	if !almostEq(ss.Duration(), want, 1e-9) {
		t.Errorf("shuffle duration = %v, want %v (%d remote maps)", ss.Duration(), want, remote)
	}
}

func TestSlotSerialization(t *testing.T) {
	// One node, one slot: everything serializes.
	in := Input{
		NumNodes: 1, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1, SlowStart: true,
		Maps:    []MapTask{{ID: 0, Duration: 5}, {ID: 1, Duration: 5}},
		Reduces: []ReduceTask{{ID: 0, ShuffleSortBase: 2, MergeDuration: 3}},
	}
	tl, err := Build(in)
	if err != nil {
		t.Fatal(err)
	}
	maps := tl.ByClass(ClassMap)
	if maps[0].End != 5 || maps[1].Start != 5 || maps[1].End != 10 {
		t.Errorf("maps = %+v", maps)
	}
}

func TestOverlap(t *testing.T) {
	a := Placed{Start: 0, End: 10}
	tests := []struct {
		name string
		b    Placed
		want float64
	}{
		{"contained", Placed{Start: 2, End: 8}, 6},
		{"partial", Placed{Start: 5, End: 15}, 5},
		{"touching", Placed{Start: 10, End: 20}, 0},
		{"disjoint", Placed{Start: 11, End: 20}, 0},
		{"identical", Placed{Start: 0, End: 10}, 10},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Overlap(a, tt.b); got != tt.want {
				t.Errorf("Overlap = %v, want %v", got, tt.want)
			}
			if got := Overlap(tt.b, a); got != tt.want {
				t.Errorf("Overlap not symmetric: %v", got)
			}
		})
	}
}

func TestPhasesPartitionTimeline(t *testing.T) {
	tl, err := Build(runningExample(true))
	if err != nil {
		t.Fatal(err)
	}
	phases := tl.Phases()
	if len(phases) == 0 {
		t.Fatal("no phases")
	}
	// Phases are contiguous and cover [0, makespan].
	if phases[0].Start != 0 {
		t.Errorf("first phase starts at %v", phases[0].Start)
	}
	for i := 1; i < len(phases); i++ {
		if !almostEq(phases[i].Start, phases[i-1].End, 1e-9) {
			t.Errorf("gap between phases %d and %d", i-1, i)
		}
	}
	if !almostEq(phases[len(phases)-1].End, tl.Makespan, 1e-9) {
		t.Errorf("last phase ends at %v, makespan %v", phases[len(phases)-1].End, tl.Makespan)
	}
	// Every active set is constant within a phase: each listed task spans it.
	for _, p := range phases {
		for _, idx := range p.Active {
			task := tl.Tasks[idx]
			if task.Start > p.Start+1e-9 || task.End < p.End-1e-9 {
				t.Errorf("task %d does not span phase [%v,%v]", idx, p.Start, p.End)
			}
		}
	}
}

func TestClassString(t *testing.T) {
	if ClassMap.String() != "map" || ClassShuffleSort.String() != "shuffle-sort" || ClassMerge.String() != "merge" {
		t.Error("class strings wrong")
	}
}

// Property: no two tasks placed on the same (node, lane, class-pool) overlap,
// and every map is placed exactly once.
func TestNoLaneOverlapProperty(t *testing.T) {
	f := func(nMapsQ, nRedQ, nodesQ, slotsQ uint8, slow bool) bool {
		nMaps := int(nMapsQ)%24 + 1
		nRed := int(nRedQ) % 6
		nodes := int(nodesQ)%6 + 1
		slots := int(slotsQ)%3 + 1
		in := Input{
			NumNodes: nodes, MapSlotsPerNode: slots, ReduceSlotsPerNode: slots,
			SlowStart: slow,
		}
		for i := 0; i < nMaps; i++ {
			in.Maps = append(in.Maps, MapTask{ID: i, Duration: 5 + float64(i%3), ShuffleDuration: 1})
		}
		for i := 0; i < nRed; i++ {
			in.Reduces = append(in.Reduces, ReduceTask{ID: i, ShuffleSortBase: 3, MergeDuration: 2})
		}
		tl, err := Build(in)
		if err != nil {
			return false
		}
		if len(tl.ByClass(ClassMap)) != nMaps {
			return false
		}
		if len(tl.ByClass(ClassShuffleSort)) != nRed || len(tl.ByClass(ClassMerge)) != nRed {
			return false
		}
		// Map lanes must not overlap; reduce subtasks share the reduce lane.
		type lane struct{ node, slot int }
		mapLanes := map[lane][]Placed{}
		redLanes := map[lane][]Placed{}
		for _, task := range tl.Tasks {
			l := lane{task.Node, task.Slot}
			if task.Class == ClassMap {
				mapLanes[l] = append(mapLanes[l], task)
			} else {
				redLanes[l] = append(redLanes[l], task)
			}
		}
		for _, group := range []map[lane][]Placed{mapLanes, redLanes} {
			for _, tasks := range group {
				for i := 0; i < len(tasks); i++ {
					for j := i + 1; j < len(tasks); j++ {
						if Overlap(tasks[i], tasks[j]) > 1e-9 {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the makespan equals the max task end and all tasks start >= 0.
func TestMakespanProperty(t *testing.T) {
	f := func(nMapsQ, nodesQ uint8) bool {
		nMaps := int(nMapsQ)%30 + 1
		nodes := int(nodesQ)%8 + 1
		in := Input{
			NumNodes: nodes, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1, SlowStart: true,
			Reduces: []ReduceTask{{ID: 0, ShuffleSortBase: 2, MergeDuration: 4}},
		}
		for i := 0; i < nMaps; i++ {
			in.Maps = append(in.Maps, MapTask{ID: i, Duration: 7, ShuffleDuration: 0.5})
		}
		tl, err := Build(in)
		if err != nil {
			return false
		}
		maxEnd := 0.0
		for _, task := range tl.Tasks {
			if task.Start < 0 || task.End < task.Start {
				return false
			}
			if task.End > maxEnd {
				maxEnd = task.End
			}
		}
		return almostEq(tl.Makespan, maxEnd, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Regression: non-positive slot configuration must be rejected up front —
// a zero or negative count would silently build an empty (or starved) lane
// pool and Build would hang or misprice the placement.
func TestValidateRejectsNonPositiveSlots(t *testing.T) {
	base := func() Input {
		return Input{
			NumNodes:           2,
			MapSlotsPerNode:    2,
			ReduceSlotsPerNode: 1,
			Maps:               []MapTask{{ID: 0, Duration: 1}},
			Reduces:            []ReduceTask{{ID: 0, ShuffleSortBase: 1, MergeDuration: 1}},
		}
	}
	tests := []struct {
		name   string
		mutate func(*Input)
	}{
		{"negative map slots", func(in *Input) { in.MapSlotsPerNode = -1 }},
		{"zero map slots", func(in *Input) { in.MapSlotsPerNode = 0 }},
		{"negative reduce slots", func(in *Input) { in.ReduceSlotsPerNode = -3 }},
		{"zero reduce slots", func(in *Input) { in.ReduceSlotsPerNode = 0 }},
		{"zero entry in map vector", func(in *Input) { in.MapSlotsByNode = []int{2, 0} }},
		{"negative entry in reduce vector", func(in *Input) { in.ReduceSlotsByNode = []int{1, -1} }},
		{"short map vector", func(in *Input) { in.MapSlotsByNode = []int{2} }},
		{"long reduce vector", func(in *Input) { in.ReduceSlotsByNode = []int{1, 1, 1} }},
		{"zero map scale", func(in *Input) { in.MapDurationScaleByNode = []float64{1, 0} }},
		{"negative reduce scale", func(in *Input) { in.ReduceDurationScaleByNode = []float64{-1, 1} }},
		{"NaN map scale", func(in *Input) { in.MapDurationScaleByNode = []float64{1, math.NaN()} }},
		{"short scale vector", func(in *Input) { in.MapDurationScaleByNode = []float64{1} }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			in := base()
			tt.mutate(&in)
			if err := in.Validate(); err == nil {
				t.Error("expected validation error")
			}
			if _, err := Build(in); err == nil {
				t.Error("Build accepted the invalid input")
			}
		})
	}
	// The valid base still builds.
	if _, err := Build(base()); err != nil {
		t.Fatalf("valid base rejected: %v", err)
	}
}

// A uniform per-node slot vector must reproduce the scalar layout exactly —
// the heterogeneous path degenerates to the homogeneous one.
func TestPerNodeSlotsUniformEquivalence(t *testing.T) {
	mk := func(byNode bool) *Timeline {
		in := Input{
			NumNodes: 3, SlowStart: true,
			Maps:    []MapTask{{0, 10, 1}, {1, 10, 1}, {2, 10, 1}, {3, 10, 1}, {4, 10, 1}, {5, 10, 1}, {6, 10, 1}},
			Reduces: []ReduceTask{{0, 5, 8}, {1, 5, 8}},
		}
		if byNode {
			in.MapSlotsByNode = []int{2, 2, 2}
			in.ReduceSlotsByNode = []int{1, 1, 1}
			in.MapDurationScaleByNode = []float64{1, 1, 1}
			in.ReduceDurationScaleByNode = []float64{1, 1, 1}
		} else {
			in.MapSlotsPerNode = 2
			in.ReduceSlotsPerNode = 1
		}
		tl, err := Build(in)
		if err != nil {
			t.Fatal(err)
		}
		return tl
	}
	scalar, vector := mk(false), mk(true)
	if len(scalar.Tasks) != len(vector.Tasks) {
		t.Fatalf("task counts differ: %d vs %d", len(scalar.Tasks), len(vector.Tasks))
	}
	for i := range scalar.Tasks {
		if scalar.Tasks[i] != vector.Tasks[i] {
			t.Errorf("task %d differs: %+v vs %+v", i, scalar.Tasks[i], vector.Tasks[i])
		}
	}
	if scalar.Makespan != vector.Makespan || scalar.Border != vector.Border {
		t.Errorf("envelope differs: makespan %v/%v border %v/%v",
			scalar.Makespan, vector.Makespan, scalar.Border, vector.Border)
	}
}

// Heterogeneous placement: nodes with more lanes host more maps, and
// duration scaling shifts load toward fast nodes while slowing the tasks
// that do land on slow ones.
func TestPerNodeSlotsAndScalesSkewPlacement(t *testing.T) {
	maps := make([]MapTask, 12)
	for i := range maps {
		maps[i] = MapTask{ID: i, Duration: 10}
	}
	in := Input{
		NumNodes:          2,
		MapSlotsByNode:    []int{3, 1}, // node 0 is thrice as wide
		ReduceSlotsByNode: []int{1, 1},
		Maps:              maps,
		Reduces:           []ReduceTask{{0, 5, 8}},
		SlowStart:         true,
	}
	tl, err := Build(in)
	if err != nil {
		t.Fatal(err)
	}
	perNode := map[int]int{}
	for _, task := range tl.Tasks {
		if task.Class == ClassMap {
			perNode[task.Node]++
		}
	}
	if perNode[0] != 9 || perNode[1] != 3 {
		t.Errorf("lane-proportional split = %v, want 9/3", perNode)
	}

	// Now scale node 1 to be 4x slower: it should receive fewer maps, and
	// each of its maps should run 4x longer.
	in.MapDurationScaleByNode = []float64{1, 4}
	in.ReduceDurationScaleByNode = []float64{1, 4}
	tl, err = Build(in)
	if err != nil {
		t.Fatal(err)
	}
	slowMaps := 0
	for _, task := range tl.Tasks {
		if task.Class != ClassMap {
			continue
		}
		if task.Node == 1 {
			slowMaps++
			if task.Duration() != 40 {
				t.Errorf("slow-node map duration = %v, want 40", task.Duration())
			}
		} else if task.Duration() != 10 {
			t.Errorf("fast-node map duration = %v, want 10", task.Duration())
		}
	}
	if slowMaps >= perNode[1] {
		t.Errorf("slow node still hosts %d maps (unscaled run: %d); want fewer", slowMaps, perNode[1])
	}
}
