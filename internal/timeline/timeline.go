// Package timeline implements the paper's timeline-construction procedure
// (Algorithm 1, §4.2.2): given per-task durations and the container capacity
// of the cluster, it places map tasks and the two reduce subtasks
// (shuffle-sort, merge) onto node/slot lanes, honoring
//
//   - map-before-reduce container priority,
//   - lowest-occupancy node selection,
//   - slow start (the shuffle of a reduce task may begin at the end of the
//     first map task) vs. late start (after the last map),
//   - remote-shuffle inflation: a reduce task's shuffle grows by sd/|R| for
//     every map on a different node, and
//   - the physical constraint that a shuffle cannot end before the last map
//     output exists.
//
// The resulting Timeline is the input for precedence-tree construction and
// for the overlap factors of the MVA step.
package timeline

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Class is a model task class (C = 3 in the paper, §4.1).
type Class int

// The three task classes, plus ClassStage for cross-job composition.
const (
	ClassMap Class = iota
	ClassShuffleSort
	ClassMerge
	// ClassStage labels a whole job stage as one placed interval in a
	// workflow-level timeline: the cross-job generalization where a leaf is
	// an entire job rather than one of its tasks (internal/workflow).
	ClassStage
)

func (c Class) String() string {
	switch c {
	case ClassMap:
		return "map"
	case ClassShuffleSort:
		return "shuffle-sort"
	case ClassStage:
		return "stage"
	default:
		return "merge"
	}
}

// MapTask is a map task to place.
type MapTask struct {
	ID int
	// Duration is the task's current response-time estimate.
	Duration float64
	// ShuffleDuration (sd in Algorithm 1) is the time to move this map's
	// output to the reducers; it inflates remote reducers' shuffles.
	ShuffleDuration float64
}

// ReduceTask is a reduce task to place; the timeline splits it into a
// shuffle-sort and a merge subtask.
type ReduceTask struct {
	ID int
	// ShuffleSortBase is the node-local part of the shuffle-sort subtask
	// (CPU + disk + already-local copies); remote map shares are added by
	// Algorithm 1.
	ShuffleSortBase float64
	// MergeDuration is the final-sort + reduce + write subtask.
	MergeDuration float64
}

// Input configures one timeline construction.
type Input struct {
	NumNodes           int
	MapSlotsPerNode    int // pMaxMapsPerNode (uniform clusters)
	ReduceSlotsPerNode int // pMaxReducePerNode (uniform clusters)
	// MapSlotsByNode / ReduceSlotsByNode give per-node lane counts for
	// heterogeneous clusters. When non-nil they override the scalar fields
	// and must hold one positive entry per node.
	MapSlotsByNode    []int
	ReduceSlotsByNode []int
	// MapDurationScaleByNode / ReduceDurationScaleByNode scale task
	// durations by the hosting node's relative slowness (heterogeneous
	// clusters): a map placed on node n occupies its lane for
	// Duration×MapDurationScaleByNode[n], so faster nodes free their
	// containers sooner and greedily absorb more tasks — the placement
	// feedback a real YARN cluster exhibits. Remote-shuffle contributions
	// travel the shared network and are not scaled. nil means uniform
	// hardware (scale 1 everywhere).
	MapDurationScaleByNode    []float64
	ReduceDurationScaleByNode []float64
	Maps                      []MapTask
	Reduces                   []ReduceTask
	// SlowStart selects the border rule: true = shuffles may start at the end
	// of the first map; false = after the last map.
	SlowStart bool
}

// validateSlots checks one container pool's configuration: a positive
// uniform per-node count, or a full per-node vector of positive counts. A
// non-positive count would silently build an empty (or short) lane pool, and
// placement over a starved pool hangs or misprices the timeline — so it is
// rejected here rather than tolerated downstream.
func validateSlots(pool string, nodes, perNode int, byNode []int) error {
	if byNode == nil {
		if perNode <= 0 {
			return fmt.Errorf("timeline: %sSlotsPerNode must be positive", pool)
		}
		return nil
	}
	if len(byNode) != nodes {
		return fmt.Errorf("timeline: %sSlotsByNode has %d entries, want %d (one per node)", pool, len(byNode), nodes)
	}
	for n, c := range byNode {
		if c <= 0 {
			return fmt.Errorf("timeline: %sSlotsByNode[%d] must be positive (got %d)", pool, n, c)
		}
	}
	return nil
}

// validateScales checks a per-node duration-scale vector: nil, or one
// positive finite factor per node.
func validateScales(pool string, nodes int, scales []float64) error {
	if scales == nil {
		return nil
	}
	if len(scales) != nodes {
		return fmt.Errorf("timeline: %sDurationScaleByNode has %d entries, want %d (one per node)", pool, len(scales), nodes)
	}
	for n, s := range scales {
		if !(s > 0) || math.IsInf(s, 1) {
			return fmt.Errorf("timeline: %sDurationScaleByNode[%d] must be positive and finite (got %g)", pool, n, s)
		}
	}
	return nil
}

// Validate reports configuration errors.
func (in Input) Validate() error {
	if in.NumNodes <= 0 {
		return errors.New("timeline: NumNodes must be positive")
	}
	if err := validateSlots("Map", in.NumNodes, in.MapSlotsPerNode, in.MapSlotsByNode); err != nil {
		return err
	}
	if err := validateSlots("Reduce", in.NumNodes, in.ReduceSlotsPerNode, in.ReduceSlotsByNode); err != nil {
		return err
	}
	if err := validateScales("Map", in.NumNodes, in.MapDurationScaleByNode); err != nil {
		return err
	}
	if err := validateScales("Reduce", in.NumNodes, in.ReduceDurationScaleByNode); err != nil {
		return err
	}
	if len(in.Maps) == 0 {
		return errors.New("timeline: need at least one map task")
	}
	for _, m := range in.Maps {
		if m.Duration <= 0 {
			return fmt.Errorf("timeline: map %d has non-positive duration", m.ID)
		}
		if m.ShuffleDuration < 0 {
			return fmt.Errorf("timeline: map %d has negative shuffle duration", m.ID)
		}
	}
	for _, r := range in.Reduces {
		if r.ShuffleSortBase < 0 || r.MergeDuration < 0 {
			return fmt.Errorf("timeline: reduce %d has negative durations", r.ID)
		}
		if r.ShuffleSortBase+r.MergeDuration <= 0 {
			return fmt.Errorf("timeline: reduce %d has zero total duration", r.ID)
		}
	}
	return nil
}

// Placed is one task laid onto the timeline.
type Placed struct {
	Class Class
	ID    int
	Node  int
	Slot  int // lane within the node's map or reduce container pool
	Start float64
	End   float64
}

// Duration returns End-Start.
func (p Placed) Duration() float64 { return p.End - p.Start }

// Overlap returns the length of the intersection of two placed tasks'
// execution intervals.
func Overlap(a, b Placed) float64 {
	lo := math.Max(a.Start, b.Start)
	hi := math.Min(a.End, b.End)
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// Timeline is the constructed placement.
type Timeline struct {
	Tasks    []Placed
	Makespan float64
	// Border is the reduce-schedulability border chosen by the slow-start rule.
	Border float64
	// LastMapEnd is the completion time of the final map task.
	LastMapEnd float64
}

// ByClass returns the placed tasks of one class, in placement order.
func (tl *Timeline) ByClass(c Class) []Placed {
	var out []Placed
	for _, t := range tl.Tasks {
		if t.Class == c {
			out = append(out, t)
		}
	}
	return out
}

// slot is one container lane on a node.
type slot struct {
	node, lane int
	free       float64
}

// slotPool tracks lanes plus per-node occupancy for the paper's
// lowest-occupancy-rate placement rule.
type slotPool struct {
	slots    []*slot
	assigned []int // per node
}

// Build runs Algorithm 1 and splits each reduce into its shuffle-sort and
// merge subtasks.
func Build(in Input) (*Timeline, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	tl := &Timeline{}

	// Map container lanes (priority 20: placed first).
	mapSlots := makeSlots(in.NumNodes, in.MapSlotsPerNode, in.MapSlotsByNode)
	nodeOfMap := make(map[int]int, len(in.Maps))
	firstMapEnd := math.Inf(1)
	scaleOn := func(scales []float64, node int) float64 {
		if scales == nil {
			return 1
		}
		return scales[node]
	}
	for _, m := range in.Maps {
		s := mapSlots.earliest()
		start := s.free
		end := start + m.Duration*scaleOn(in.MapDurationScaleByNode, s.node)
		s.free = end
		nodeOfMap[m.ID] = s.node
		tl.Tasks = append(tl.Tasks, Placed{
			Class: ClassMap, ID: m.ID, Node: s.node, Slot: s.lane, Start: start, End: end,
		})
		if end < firstMapEnd {
			firstMapEnd = end
		}
		if end > tl.LastMapEnd {
			tl.LastMapEnd = end
		}
	}

	// Border (lines 7-11): slow start = end of the first map; otherwise the
	// end of the last map.
	if in.SlowStart {
		tl.Border = firstMapEnd
	} else {
		tl.Border = tl.LastMapEnd
	}

	// Reduce container lanes (priority 10: placed after all maps).
	redSlots := makeSlots(in.NumNodes, in.ReduceSlotsPerNode, in.ReduceSlotsByNode)
	nR := len(in.Reduces)
	for _, r := range in.Reduces {
		s := redSlots.earliest()
		start := math.Max(s.free, tl.Border)
		redScale := scaleOn(in.ReduceDurationScaleByNode, s.node)
		// Remote-shuffle inflation (lines 14-18): every map on a different
		// node contributes sd/|R|. The node-local base scales with the
		// hosting node; the remote shares ride the shared network and do not.
		ssDur := r.ShuffleSortBase * redScale
		for _, m := range in.Maps {
			if nodeOfMap[m.ID] != s.node {
				ssDur += m.ShuffleDuration / float64(nR)
			}
		}
		ssEnd := start + ssDur
		// A shuffle cannot complete before the last map output exists.
		if ssEnd < tl.LastMapEnd {
			ssEnd = tl.LastMapEnd
		}
		mergeEnd := ssEnd + r.MergeDuration*redScale
		s.free = mergeEnd
		tl.Tasks = append(tl.Tasks, Placed{
			Class: ClassShuffleSort, ID: r.ID, Node: s.node, Slot: s.lane, Start: start, End: ssEnd,
		})
		tl.Tasks = append(tl.Tasks, Placed{
			Class: ClassMerge, ID: r.ID, Node: s.node, Slot: s.lane, Start: ssEnd, End: mergeEnd,
		})
	}

	for _, t := range tl.Tasks {
		if t.End > tl.Makespan {
			tl.Makespan = t.End
		}
	}
	sort.Slice(tl.Tasks, func(i, j int) bool {
		a, b := tl.Tasks[i], tl.Tasks[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		return a.ID < b.ID
	})
	return tl, nil
}

// makeSlots builds the lane pool: perNode lanes on every node, or byNode[n]
// lanes on node n when a per-node vector is given. Lanes are interleaved
// lane-major (lane 0 of every node, then lane 1, ...) so that for a uniform
// vector the pool is identical to the homogeneous layout — placement, and
// therefore predictions, stay bit-for-bit reproducible.
func makeSlots(nodes, perNode int, byNode []int) *slotPool {
	p := &slotPool{assigned: make([]int, nodes)}
	maxLanes := perNode
	if byNode != nil {
		maxLanes = 0
		for _, c := range byNode {
			if c > maxLanes {
				maxLanes = c
			}
		}
	}
	for lane := 0; lane < maxLanes; lane++ {
		for n := 0; n < nodes; n++ {
			lanes := perNode
			if byNode != nil {
				lanes = byNode[n]
			}
			if lane < lanes {
				p.slots = append(p.slots, &slot{node: n, lane: lane})
			}
		}
	}
	return p
}

// earliest picks the slot that frees first; ties go to the node with the
// lowest occupancy (the paper's "assign containers to the nodes with the
// lowest occupancy rate"), then the lower node ID.
func (p *slotPool) earliest() *slot {
	const eps = 1e-12
	best := p.slots[0]
	for _, s := range p.slots[1:] {
		switch {
		case s.free < best.free-eps:
			best = s
		case math.Abs(s.free-best.free) <= eps:
			if p.assigned[s.node] < p.assigned[best.node] ||
				(p.assigned[s.node] == p.assigned[best.node] && s.node < best.node) {
				best = s
			}
		}
	}
	p.assigned[best.node]++
	return best
}

// Phase is a maximal interval during which the set of running tasks is
// constant (§4.2.2: "each start or end of a task indicates the start of a new
// phase").
type Phase struct {
	Start, End float64
	// Active holds indices into Timeline.Tasks.
	Active []int
}

// Phases splits the timeline at every task start/end.
func (tl *Timeline) Phases() []Phase {
	type edge struct{ t float64 }
	var cuts []float64
	for _, t := range tl.Tasks {
		cuts = append(cuts, t.Start, t.End)
	}
	sort.Float64s(cuts)
	uniq := cuts[:0]
	for _, c := range cuts {
		if len(uniq) == 0 || c > uniq[len(uniq)-1]+1e-12 {
			uniq = append(uniq, c)
		}
	}
	var phases []Phase
	for i := 0; i+1 < len(uniq); i++ {
		p := Phase{Start: uniq[i], End: uniq[i+1]}
		mid := (p.Start + p.End) / 2
		for idx, t := range tl.Tasks {
			if t.Start <= mid && mid < t.End {
				p.Active = append(p.Active, idx)
			}
		}
		if len(p.Active) > 0 {
			phases = append(phases, p)
		}
	}
	return phases
}
