package fault

import (
	"math"
	"testing"

	"hadoop2perf/internal/cluster"
)

func spotSpec(rate float64) cluster.Spec {
	return cluster.Spec{
		MapContainer:    cluster.Resource{MemoryMB: 4096, VCores: 2},
		ReduceContainer: cluster.Resource{MemoryMB: 4096, VCores: 4},
		Classes: []cluster.NodeClass{
			{Name: "reliable", Count: 2, Capacity: cluster.Resource{MemoryMB: 32768, VCores: 32},
				CPUs: 6, Disks: 1, DiskMBps: 240, NetworkMBps: 110},
			{Name: "spot", Count: 2, Capacity: cluster.Resource{MemoryMB: 32768, VCores: 32},
				CPUs: 6, Disks: 1, DiskMBps: 240, NetworkMBps: 110,
				Preemptible: true, RevocationRate: rate, Price: 0.3},
		},
	}
}

func TestEnabledAndActive(t *testing.T) {
	var nilPlan *Plan
	if nilPlan.Enabled() {
		t.Error("nil plan enabled")
	}
	if (&Plan{}).Enabled() {
		t.Error("zero plan enabled")
	}
	for _, p := range []*Plan{
		{NodeMTTFSec: 100},
		{StragglerProb: 0.1},
		{Speculation: true},
	} {
		if !p.Enabled() {
			t.Errorf("plan %+v not enabled", p)
		}
	}
	flat := cluster.Default(4)
	if Active(nil, flat) {
		t.Error("nil plan over flat spec active")
	}
	if !Active(nil, spotSpec(60)) {
		t.Error("revocation hazard not active under nil plan")
	}
	if Active(nil, spotSpec(0)) {
		t.Error("zero revocation rate active")
	}
}

func TestValidate(t *testing.T) {
	valid := []*Plan{
		nil,
		{},
		{NodeMTTFSec: 300, RepairDelaySec: 60, MaxNodeFailures: 3},
		{StragglerProb: 1, StragglerAlpha: 1.5, Speculation: true, SpeculationLateness: 2},
	}
	for _, p := range valid {
		if err := p.Validate(); err != nil {
			t.Errorf("valid plan %+v rejected: %v", p, err)
		}
	}
	invalid := []*Plan{
		{NodeMTTFSec: -1},
		{NodeMTTFSec: math.NaN()},
		{RepairDelaySec: math.Inf(1)},
		{StragglerProb: 1.01},
		{StragglerAlpha: 1},
		{SpeculationLateness: 0.99},
		{MaxNodeFailures: -1},
	}
	for _, p := range invalid {
		if err := p.Validate(); err == nil {
			t.Errorf("invalid plan %+v accepted", p)
		}
	}
}

func TestNodeHazard(t *testing.T) {
	spot := cluster.NodeClass{Preemptible: true, RevocationRate: 3600}
	if h := NodeHazard(nil, spot); h != 1 {
		t.Errorf("3600/hour revocation hazard = %v, want 1/s", h)
	}
	plan := &Plan{NodeMTTFSec: 2}
	if h := NodeHazard(plan, cluster.NodeClass{}); h != 0.5 {
		t.Errorf("MTTF 2s hazard = %v, want 0.5", h)
	}
	if h := NodeHazard(plan, spot); h != 1.5 {
		t.Errorf("combined hazard = %v, want 1.5", h)
	}
	// Mean over 2 reliable + 2 spot nodes at 60/hour: (2*0 + 2*(60/3600))/4.
	want := (2 * (60.0 / 3600)) / 4
	if h := MeanHazard(nil, spotSpec(60)); math.Abs(h-want) > 1e-15 {
		t.Errorf("mean hazard = %v, want %v", h, want)
	}
}

func TestInflateIdentity(t *testing.T) {
	exp := Exposure{Map: 20, Reduce: 50, Horizon: 100}
	if got := Inflate(nil, cluster.Default(4), exp); got != None() {
		t.Errorf("inactive scenario inflation = %+v, want identity", got)
	}
	if got := Inflate(&Plan{}, cluster.Default(4), exp); got != None() {
		t.Errorf("zero plan inflation = %+v, want identity", got)
	}
}

func TestInflateMonotoneInHazard(t *testing.T) {
	exp := Exposure{Map: 20, Reduce: 50, Horizon: 100}
	spec := cluster.Default(4)
	prevMap, prevSS := 1.0, 1.0
	for _, mttf := range []float64{1200, 600, 300, 150} {
		inf := Inflate(&Plan{NodeMTTFSec: mttf, RepairDelaySec: 45}, spec, exp)
		if inf.Map <= prevMap || inf.ShuffleSort <= prevSS {
			t.Errorf("MTTF %v: inflation %+v not above previous (%v, %v)", mttf, inf, prevMap, prevSS)
		}
		if inf.FactorCV != 0 {
			t.Errorf("MTTF-only plan has straggler CV %v", inf.FactorCV)
		}
		prevMap, prevSS = inf.Map, inf.ShuffleSort
	}
}

func TestInflateStragglers(t *testing.T) {
	exp := Exposure{Map: 20, Reduce: 50, Horizon: 100}
	spec := cluster.Default(4)
	plain := Inflate(&Plan{StragglerProb: 0.2, StragglerAlpha: 2.5}, spec, exp)
	// Mean Pareto(2.5) factor is 5/3; mixture mean 1 + 0.2*(2/3).
	want := 1 + 0.2*(2.5/1.5-1)
	if math.Abs(plain.Map-want) > 1e-12 {
		t.Errorf("straggler map factor %v, want %v", plain.Map, want)
	}
	if plain.FactorCV <= 0 {
		t.Error("straggler mixture must widen CVs")
	}
	spec5 := Inflate(&Plan{StragglerProb: 0.2, StragglerAlpha: 2.5, Speculation: true}, spec, exp)
	if spec5.Map >= plain.Map {
		t.Errorf("speculation must shrink the map factor: %v >= %v", spec5.Map, plain.Map)
	}
	if spec5.ShuffleSort != plain.ShuffleSort {
		t.Errorf("speculation altered the reduce-side factor: %v != %v", spec5.ShuffleSort, plain.ShuffleSort)
	}
}

func TestInflateRevocations(t *testing.T) {
	exp := Exposure{Map: 20, Reduce: 50, Horizon: 100}
	inf := Inflate(nil, spotSpec(60), exp)
	if inf.Map <= 1 || inf.ShuffleSort <= 1 || inf.Merge <= 1 {
		t.Errorf("revocation hazard produced no inflation: %+v", inf)
	}
	hotter := Inflate(nil, spotSpec(240), exp)
	if hotter.Map <= inf.Map {
		t.Errorf("4x revocation rate did not raise inflation: %v <= %v", hotter.Map, inf.Map)
	}
}
