// Package fault describes fault-injection scenarios shared by the
// discrete-event simulator and the analytic model. The simulator
// (internal/mrsim) *injects* a Plan — seeded node failures, heavy-tailed
// straggler jitter, speculative re-execution — while the model
// (internal/core) *corrects* for the same Plan analytically, inflating
// per-class effective demands by the expected rework so the fast fixed-point
// path keeps tracking failure-mode response times.
//
// Keeping the scenario description in one dependency-light package
// guarantees both paths interpret a request's `faults` block identically.
package fault

import (
	"errors"
	"fmt"
	"math"

	"hadoop2perf/internal/cluster"
)

// Plan is a seeded fault-injection scenario. The zero value (and nil) means
// "no injected faults": simulations and predictions are then bit-identical
// to fault-free runs. Preemptible node classes with a revocation rate are
// revoked even under a nil Plan — that hazard belongs to the cluster spec.
type Plan struct {
	// NodeMTTFSec is the per-node mean time to failure in seconds
	// (exponential hazard); 0 disables MTTF-driven failures.
	NodeMTTFSec float64 `json:"nodeMTTFSec,omitempty"`
	// RepairDelaySec rejoins a failed node (empty, full capacity) after this
	// many seconds; 0 means failed nodes stay down for the rest of the run.
	RepairDelaySec float64 `json:"repairDelaySec,omitempty"`
	// MaxNodeFailures caps the total number of injected node losses
	// (including revocations); 0 means unlimited.
	MaxNodeFailures int `json:"maxNodeFailures,omitempty"`
	// StragglerProb is the per-attempt probability of drawing a Pareto-tail
	// slowdown on top of the profile's lognormal jitter; 0 disables.
	StragglerProb float64 `json:"stragglerProb,omitempty"`
	// StragglerAlpha is the Pareto shape of the straggler multiplier
	// (minimum 1×); must be > 1 so the mean exists. 0 selects the default.
	StragglerAlpha float64 `json:"stragglerAlpha,omitempty"`
	// Speculation enables Hadoop-style speculative re-execution of late map
	// attempts: a backup copy of the slowest late task, first finisher wins,
	// the loser is killed with its resource demand still charged.
	Speculation bool `json:"speculation,omitempty"`
	// SpeculationLateness is the multiple of the running mean map duration
	// past which an attempt is considered late; must be >= 1. 0 selects the
	// default.
	SpeculationLateness float64 `json:"speculationLateness,omitempty"`
}

// Defaults for the optional knobs.
const (
	DefaultStragglerAlpha      = 2.5
	DefaultSpeculationLateness = 1.5
)

// Enabled reports whether the plan injects anything at all.
func (p *Plan) Enabled() bool {
	if p == nil {
		return false
	}
	return p.NodeMTTFSec > 0 || p.StragglerProb > 0 || p.Speculation
}

// Alpha returns the Pareto shape, defaulted.
func (p *Plan) Alpha() float64 {
	if p == nil || p.StragglerAlpha == 0 {
		return DefaultStragglerAlpha
	}
	return p.StragglerAlpha
}

// Lateness returns the speculation lateness threshold, defaulted.
func (p *Plan) Lateness() float64 {
	if p == nil || p.SpeculationLateness == 0 {
		return DefaultSpeculationLateness
	}
	return p.SpeculationLateness
}

// Validate rejects non-finite or out-of-range knobs. A nil plan is valid.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"nodeMTTFSec", p.NodeMTTFSec},
		{"repairDelaySec", p.RepairDelaySec},
		{"stragglerProb", p.StragglerProb},
		{"stragglerAlpha", p.StragglerAlpha},
		{"speculationLateness", p.SpeculationLateness},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) || f.v < 0 {
			return fmt.Errorf("fault: %s must be finite and non-negative (got %v)", f.name, f.v)
		}
	}
	if p.StragglerProb > 1 {
		return fmt.Errorf("fault: stragglerProb must be in [0,1] (got %v)", p.StragglerProb)
	}
	if p.StragglerAlpha != 0 && p.StragglerAlpha <= 1 {
		return fmt.Errorf("fault: stragglerAlpha must be > 1 so the straggler mean exists (got %v)", p.StragglerAlpha)
	}
	if p.SpeculationLateness != 0 && p.SpeculationLateness < 1 {
		return fmt.Errorf("fault: speculationLateness must be >= 1 (got %v)", p.SpeculationLateness)
	}
	if p.MaxNodeFailures < 0 {
		return errors.New("fault: maxNodeFailures must be >= 0")
	}
	return nil
}

// Active reports whether the scenario does anything for the given cluster:
// either the plan injects faults, or the spec contains preemptible classes
// with a revocation hazard.
func Active(p *Plan, spec cluster.Spec) bool {
	return p.Enabled() || spec.HasRevocations()
}

// NodeHazard returns the per-second failure hazard of one node of the given
// class under the plan: the plan's MTTF hazard plus the class's revocation
// hazard (RevocationRate is per node-hour).
func NodeHazard(p *Plan, class cluster.NodeClass) float64 {
	h := 0.0
	if p != nil && p.NodeMTTFSec > 0 {
		h += 1 / p.NodeMTTFSec
	}
	if class.Preemptible && class.RevocationRate > 0 {
		h += class.RevocationRate / 3600
	}
	return h
}

// MeanHazard returns the count-weighted mean per-node hazard across the
// cluster (per second).
func MeanHazard(p *Plan, spec cluster.Spec) float64 {
	total := 0
	sum := 0.0
	for _, class := range spec.ClassView() {
		sum += NodeHazard(p, class) * float64(class.Count)
		total += class.Count
	}
	if total == 0 {
		return 0
	}
	return sum / float64(total)
}

// Exposure carries the model's rough uncontended task-duration estimates
// used to size the rework expectation (all in seconds).
type Exposure struct {
	// Map is the mean uncontended duration of one map attempt.
	Map float64
	// Reduce is the mean uncontended duration of one whole reduce task
	// (shuffle-sort plus merge): a reducer lost mid-flight redoes both.
	Reduce float64
	// Horizon is a rough job-duration estimate, used to amortize the
	// capacity lost to permanently failed (unrepaired) nodes.
	Horizon float64
}

// Inflation is the analytic effective-demand correction: multiplicative
// factors (>= 1) applied to each task class's service demands, plus the
// coefficient of variation of the per-attempt straggler multiplier (0 when
// stragglers are off) so the model can widen its class CVs to match.
type Inflation struct {
	Map         float64
	ShuffleSort float64
	Merge       float64
	FactorCV    float64
}

// None is the identity correction.
func None() Inflation { return Inflation{Map: 1, ShuffleSort: 1, Merge: 1} }

// contentionStretch converts uncontended demand into wall-clock exposure to
// node failures: a task occupies its node roughly this multiple of its raw
// demand once queueing and sharing are accounted for. Calibrated against the
// simulator on the pinned grid in internal/core (fault calibration test).
const contentionStretch = 0.75

// maxRetryExponent caps the renewal exponent so absurd hazards saturate
// instead of overflowing.
const maxRetryExponent = 4.0

// capacityAttenuation discounts the steady-state unavailability before it
// becomes demand: lost node-seconds are partly absorbed by scheduling slack
// (the simulator reruns killed work on idle peers), so the median run pays
// only a fraction of the nominal capacity loss. Calibrated with
// contentionStretch.
const capacityAttenuation = 0.3

// factorCVAttenuation scales the straggler mixture's dispersion before the
// model folds it into class CVs: the response is set by per-wave maxima the
// fork/join P rule already compounds level by level, so passing the raw
// per-attempt CV through double-counts the tail. Calibrated with the two
// constants above.
const factorCVAttenuation = 0.25

// Inflate computes the effective-demand correction for a plan over a
// cluster. The three terms mirror the injection mechanics:
//
//   - retry rework: a task exposed to hazard λ for d seconds is re-run until
//     it completes, inflating its expected total work by (e^{λd}-1)/(λd)
//     (the renewal expectation for restarts under an exponential hazard);
//   - capacity loss: node-seconds spent down are amortized into demand —
//     unavailability repair/(MTTF+repair) for repairing nodes, and the mean
//     dead fraction over the job horizon for permanent losses;
//   - stragglers: the Pareto mixture raises the mean attempt multiplier to
//     1+p(α/(α-1)-1); with speculation the response-effective tail is
//     truncated at the backup-rescue point (lateness+1 mean durations) while
//     the killed loser's demand is still charged as overhead.
func Inflate(p *Plan, spec cluster.Spec, exp Exposure) Inflation {
	if !Active(p, spec) {
		return None()
	}
	lambda := MeanHazard(p, spec)

	// Weight the retry and capacity terms by the probability that the job
	// sees any node failure at all: a short job under a mild hazard usually
	// dodges every failure, and its p50 pays nothing (the steady-state terms
	// describe the long-run average, not the median of a brief exposure).
	hitProb := 1.0
	if lambda > 0 && exp.Horizon > 0 {
		hitProb = 1 - math.Exp(-float64(spec.TotalNodes())*lambda*exp.Horizon)
	}

	retry := func(d float64) float64 {
		x := lambda * d * contentionStretch
		if x <= 0 {
			return 1
		}
		if x > maxRetryExponent {
			x = maxRetryExponent
		}
		return (math.Exp(x) - 1) / x
	}

	capacity := 1.0
	if lambda > 0 {
		var u float64 // expected fraction of node-time lost
		if p != nil && p.RepairDelaySec > 0 {
			u = lambda * p.RepairDelaySec / (1 + lambda*p.RepairDelaySec)
		} else if exp.Horizon > 0 {
			lt := lambda * exp.Horizon
			u = 1 - (1-math.Exp(-lt))/lt
		}
		u *= capacityAttenuation
		if u > 0.5 {
			u = 0.5
		}
		capacity = 1 / (1 - u)
	}

	stragMean := 1.0 // straggler mean factor without speculation
	stragMap := 1.0  // map factor (speculation rescues the map tail)
	factorCV := 0.0
	if p != nil && p.StragglerProb > 0 {
		prob, alpha := p.StragglerProb, p.Alpha()
		meanF := alpha / (alpha - 1) // E[Pareto(α, xm=1)]
		stragMean = 1 + prob*(meanF-1)
		stragMap = stragMean
		if p.Speculation {
			// Backup launched at lateness×mean and running ~1 mean rescues
			// stragglers beyond c = lateness+1: E[min(F,c)] for Pareto. The
			// killed loser's duplicate demand is charged by the simulator but
			// drains in otherwise-idle sharing capacity, so it does not enter
			// the response-effective factor.
			c := p.Lateness() + 1
			truncMean := (alpha - math.Pow(c, 1-alpha)) / (alpha - 1)
			stragMap = 1 + prob*(truncMean-1)
		}
		// Second moment of the mixture multiplier (α clamped so it exists);
		// the model folds this into its class CVs.
		a2 := alpha
		if a2 <= 2 {
			a2 = 2.05
		}
		m2 := 1 - prob + prob*a2/(a2-2)
		if cv2 := m2/(stragMean*stragMean) - 1; cv2 > 0 {
			factorCV = math.Sqrt(cv2) * factorCVAttenuation
		}
	}

	// rework composes retry and capacity, gated by the hit probability.
	rework := func(d float64) float64 {
		return 1 + (retry(d)*capacity-1)*hitProb
	}

	return Inflation{
		Map:         rework(exp.Map) * stragMap,
		ShuffleSort: rework(exp.Reduce) * stragMean,
		Merge:       rework(exp.Reduce) * stragMean,
		FactorCV:    factorCV,
	}
}
