// Package hdfs models the pieces of HDFS that matter to the performance
// model: splitting an input file into block-sized input splits and placing
// block replicas on nodes, so that map-task locality can be resolved.
package hdfs

import (
	"errors"
	"fmt"
)

// DefaultBlockSizeMB is the Hadoop 2.x default block size (128 MB). The
// paper's Figure 15 experiment reduces it to 64 MB.
const DefaultBlockSizeMB = 128

// DefaultReplication is the HDFS default replication factor.
const DefaultReplication = 3

// Block is one input split / HDFS block.
type Block struct {
	// Index is the block's ordinal within the file.
	Index int
	// SizeMB is the block length; the final block may be short.
	SizeMB float64
	// Replicas are the node IDs (0-based) holding a replica.
	Replicas []int
}

// HasReplicaOn reports whether node holds a replica of b.
func (b Block) HasReplicaOn(node int) bool {
	for _, r := range b.Replicas {
		if r == node {
			return true
		}
	}
	return false
}

// File is a placed HDFS file: its blocks with replica locations.
type File struct {
	Name        string
	SizeMB      float64
	BlockSizeMB float64
	Blocks      []Block
}

// NumSplits returns the number of input splits (= map tasks for the job).
func (f *File) NumSplits() int { return len(f.Blocks) }

// Place splits a file of sizeMB into blockSizeMB blocks and places
// replication replicas of each block across numNodes nodes using the
// round-robin-with-offset policy: replica r of block i goes to node
// (i + r*stride) mod numNodes. This spreads primaries evenly (default HDFS
// balancer behaviour on an idle cluster) and gives every block `replication`
// distinct homes when numNodes >= replication.
func Place(name string, sizeMB, blockSizeMB float64, numNodes, replication int) (*File, error) {
	switch {
	case sizeMB <= 0:
		return nil, fmt.Errorf("hdfs: file size must be positive (got %g MB)", sizeMB)
	case blockSizeMB <= 0:
		return nil, fmt.Errorf("hdfs: block size must be positive (got %g MB)", blockSizeMB)
	case numNodes <= 0:
		return nil, errors.New("hdfs: numNodes must be positive")
	case replication <= 0:
		return nil, errors.New("hdfs: replication must be positive")
	}
	if replication > numNodes {
		replication = numNodes
	}
	n := int(sizeMB / blockSizeMB)
	rem := sizeMB - float64(n)*blockSizeMB
	blocks := make([]Block, 0, n+1)
	stride := 1
	if numNodes > 2 {
		stride = numNodes/replication + 1
	}
	appendBlock := func(idx int, size float64) {
		reps := make([]int, 0, replication)
		for r := 0; r < replication; r++ {
			node := (idx + r*stride) % numNodes
			// Avoid duplicate homes when stride wraps onto an existing one.
			dup := false
			for _, existing := range reps {
				if existing == node {
					dup = true
					break
				}
			}
			if dup {
				node = (node + 1) % numNodes
			}
			reps = append(reps, node)
		}
		blocks = append(blocks, Block{Index: idx, SizeMB: size, Replicas: reps})
	}
	for i := 0; i < n; i++ {
		appendBlock(i, blockSizeMB)
	}
	if rem > 1e-9 {
		appendBlock(n, rem)
	}
	return &File{Name: name, SizeMB: sizeMB, BlockSizeMB: blockSizeMB, Blocks: blocks}, nil
}

// SplitsFor returns the number of map tasks Hadoop would create for a file of
// sizeMB with the given block size (ceil division).
func SplitsFor(sizeMB, blockSizeMB float64) int {
	if sizeMB <= 0 || blockSizeMB <= 0 {
		return 0
	}
	n := int(sizeMB / blockSizeMB)
	if sizeMB-float64(n)*blockSizeMB > 1e-9 {
		n++
	}
	return n
}
