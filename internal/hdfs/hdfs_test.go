package hdfs

import (
	"testing"
	"testing/quick"
)

func TestSplitsFor(t *testing.T) {
	tests := []struct {
		name        string
		size, block float64
		want        int
	}{
		{"exact multiple", 1024, 128, 8},
		{"remainder", 1000, 128, 8},
		{"single partial", 100, 128, 1},
		{"one block", 128, 128, 1},
		{"tiny", 1, 128, 1},
		{"zero size", 0, 128, 0},
		{"zero block", 128, 0, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := SplitsFor(tt.size, tt.block); got != tt.want {
				t.Errorf("SplitsFor(%v,%v) = %d, want %d", tt.size, tt.block, got, tt.want)
			}
		})
	}
}

func TestPlaceErrors(t *testing.T) {
	tests := []struct {
		name               string
		size, block        float64
		nodes, replication int
	}{
		{"zero size", 0, 128, 4, 3},
		{"zero block", 128, 0, 4, 3},
		{"zero nodes", 128, 128, 0, 3},
		{"zero replication", 128, 128, 4, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Place("f", tt.size, tt.block, tt.nodes, tt.replication); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestPlaceBasics(t *testing.T) {
	f, err := Place("input", 1024, 128, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumSplits() != 8 {
		t.Fatalf("splits = %d, want 8", f.NumSplits())
	}
	for _, b := range f.Blocks {
		if len(b.Replicas) != 3 {
			t.Errorf("block %d has %d replicas", b.Index, len(b.Replicas))
		}
		seen := map[int]bool{}
		for _, r := range b.Replicas {
			if r < 0 || r >= 4 {
				t.Errorf("block %d replica on invalid node %d", b.Index, r)
			}
			if seen[r] {
				t.Errorf("block %d has duplicate replica on node %d", b.Index, r)
			}
			seen[r] = true
		}
		if b.SizeMB != 128 {
			t.Errorf("block %d size %v", b.Index, b.SizeMB)
		}
	}
}

func TestPlacePartialLastBlock(t *testing.T) {
	f, err := Place("input", 300, 128, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumSplits() != 3 {
		t.Fatalf("splits = %d, want 3", f.NumSplits())
	}
	last := f.Blocks[2]
	if got := last.SizeMB; got != 300-256 {
		t.Errorf("last block size = %v, want 44", got)
	}
}

func TestPlaceReplicationCappedByNodes(t *testing.T) {
	f, err := Place("input", 256, 128, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range f.Blocks {
		if len(b.Replicas) != 2 {
			t.Errorf("block %d: %d replicas, want 2 (capped)", b.Index, len(b.Replicas))
		}
	}
}

func TestHasReplicaOn(t *testing.T) {
	b := Block{Replicas: []int{0, 2}}
	if !b.HasReplicaOn(0) || !b.HasReplicaOn(2) {
		t.Error("expected replicas on 0 and 2")
	}
	if b.HasReplicaOn(1) {
		t.Error("unexpected replica on 1")
	}
}

func TestPrimariesSpread(t *testing.T) {
	// Round-robin primaries: 8 blocks over 4 nodes -> exactly 2 primaries each.
	f, err := Place("input", 1024, 128, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, b := range f.Blocks {
		counts[b.Replicas[0]]++
	}
	for n := 0; n < 4; n++ {
		if counts[n] != 2 {
			t.Errorf("node %d has %d primaries, want 2", n, counts[n])
		}
	}
}

// Property: placements always produce ceil(size/block) blocks whose sizes sum
// to the file size, each with min(replication, nodes) distinct replicas on
// valid nodes.
func TestPlaceInvariantsProperty(t *testing.T) {
	f := func(sizeQ, blockQ uint8, nodesQ, replQ uint8) bool {
		size := float64(sizeQ)*16 + 1
		block := float64(blockQ%64)*8 + 8
		nodes := int(nodesQ)%12 + 1
		repl := int(replQ)%4 + 1
		file, err := Place("f", size, block, nodes, repl)
		if err != nil {
			return false
		}
		if file.NumSplits() != SplitsFor(size, block) {
			return false
		}
		var total float64
		wantRepl := repl
		if wantRepl > nodes {
			wantRepl = nodes
		}
		for _, b := range file.Blocks {
			total += b.SizeMB
			if len(b.Replicas) != wantRepl {
				return false
			}
			seen := map[int]bool{}
			for _, r := range b.Replicas {
				if r < 0 || r >= nodes || seen[r] {
					return false
				}
				seen[r] = true
			}
		}
		return total > size-1e-6 && total < size+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
