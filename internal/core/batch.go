package core

import (
	"context"
	"fmt"
	"math"

	"hadoop2perf/internal/mva"
	"hadoop2perf/internal/ptree"
	"hadoop2perf/internal/timeline"
)

// This file runs batches of ColdStart configurations through a rolling
// lane pipeline: up to mva.BatchLanes predictions are in flight at once,
// each at its own outer round, and every tick solves all live lanes' inner
// MVA fixed points in one lane-packed mva.BatchOverlapSolver call. The
// sweeps — the dominant cost of a contended prediction — are where the
// lanes share: one packed pass over the fused weight matrices advances
// four fixed points.
//
// Correctness contract: each lane follows exactly the scalar cold path's
// trajectory (the packed kernel is bit-identical to scalar Steps, and the
// outer fold is the same roundFold the scalar loop uses), so batch cold
// results are bit-identical to per-config Predict. Warm (non-ColdStart)
// entries never enter the pipeline — they chain sequentially through
// predictWarm, which the A/B benchmarks show beats lane-locking in the
// warm regime (see PredictBatch).

// batchLane is one configuration's in-flight outer state.
type batchLane struct {
	idx     int        // position in the caller's slice
	cfg     Config     // defaults applied
	pp      *Predictor // lane-private scratch (timeline, overlap, estimate)
	classes map[timeline.Class]*classData
	tl      *timeline.Timeline
	tree    *ptree.Node
	n, nc   int // inner fixed-point shape (tasks × centers)

	iter      int // lane-private outer round counter
	prevTotal float64
	acc       outerAccel
	pred      Prediction

	done bool
}

// finish seals a lane: class responses and final round artifacts.
func (l *batchLane) finish() {
	for cls, cd := range l.classes {
		l.pred.ClassResponse[cls] = cd.response
	}
	l.pred.Timeline = l.tl
	l.pred.Tree = l.tree
	l.done = true
}

// PredictBatch evaluates a batch of configurations through the paths the
// interleaved A/B benchmarks show are fastest for each regime:
//
//   - Warm entries chain sequentially through PredictWarm: each solve
//     seeds the pool the next one warm-starts from.
//   - ColdStart entries run sequential cold predictions, bit-identical to
//     per-config Predict.
//
// Both regimes deliberately avoid the lane-packed kernel. The packed
// kernel wins when its lanes stay aligned (BenchmarkMVABatch: ~1.2× over
// four scalar Steps of the same input), but end-to-end batches skew: warm
// rounds converge in a handful of inner sweeps whose counts diverge
// lane-to-lane (~28% slower lane-locked than chained on the contended
// 16-point sweep), and cold rounds lose ~2× because the scalar kernel's
// dirty-row skip makes late sweeps nearly free while the packed kernel
// pays full four-wide cost until the slowest lane drains (PERFORMANCE.md
// §2). PredictBatchLockstep keeps the lane pipeline runnable so those
// measurements stay reproducible.
//
// Results match per-config Predict calls within the warm-start tolerance
// (1e-6 relative, property-tested); ColdStart entries are bit-identical.
// The first failing config aborts the batch with its index wrapped in the
// error. Cold entries are processed after the warm ones (they neither read
// nor feed the warm pool, so the reordering is unobservable in results).
func (p *Predictor) PredictBatch(cfgs []Config) ([]Prediction, error) {
	return p.PredictBatchContext(context.Background(), cfgs)
}

// PredictBatchContext is PredictBatch honoring ctx between outer rounds
// (see PredictContext).
func (p *Predictor) PredictBatchContext(ctx context.Context, cfgs []Config) ([]Prediction, error) {
	out := make([]Prediction, len(cfgs))
	var cold []int
	for i := range cfgs {
		if cfgs[i].ColdStart {
			cold = append(cold, i)
			continue
		}
		// Warm entries chain sequentially (see the routing rationale above).
		pred, err := p.predictWarm(ctx, cfgs[i])
		if err != nil {
			return nil, fmt.Errorf("core: batch config %d: %w", i, err)
		}
		out[i] = pred
	}
	for _, i := range cold {
		pred, err := p.predict(ctx, cfgs[i], nil, false)
		if err != nil {
			return nil, fmt.Errorf("core: batch config %d: %w", i, err)
		}
		out[i] = pred
	}
	return out, nil
}

// PredictBatchLockstep evaluates every config cold through the rolling
// lane pipeline, solving up to mva.BatchLanes inner fixed points per tick
// with the lane-packed kernel. Results are bit-identical to per-config
// Predict with ColdStart semantics (the warm pool is neither read nor
// fed). This is the measurement path behind the routing decision in
// PredictBatch — it loses to sequential cold evaluation on skewed batches
// and is kept so the A/B stays reproducible — and the fast path for
// batches whose lanes genuinely align (identical or near-identical inner
// trajectories).
func (p *Predictor) PredictBatchLockstep(ctx context.Context, cfgs []Config) ([]Prediction, error) {
	out := make([]Prediction, len(cfgs))
	all := make([]int, len(cfgs))
	for i := range all {
		all[i] = i
	}
	if err := p.runColdPipeline(ctx, cfgs, all, out); err != nil {
		return nil, err
	}
	return out, nil
}

// runColdPipeline drives the queued ColdStart configs through a rolling
// lane pipeline: up to mva.BatchLanes lanes are in flight, each at its own
// outer round, and every tick packs the live lanes' inner solves into
// shared mva.BatchOverlapSolver calls. When a lane converges (or exhausts
// its budget) its result is sealed and the next queued config takes the
// slot on the following tick — lanes never idle waiting for a slow
// sibling's outer loop, only within a single packed solve. Cold lanes
// replicate the sequential cold loop exactly: no seed, no inner chaining,
// no acceleration, no warm-pool traffic.
func (p *Predictor) runColdPipeline(ctx context.Context, cfgs []Config, queue []int, out []Prediction) error {
	lanes := make([]*batchLane, 0, mva.BatchLanes)
	next := 0
	admit := func() error {
		for len(lanes) < mva.BatchLanes && next < len(queue) {
			idx := queue[next]
			next++
			l := &batchLane{idx: idx, cfg: cfgs[idx]}
			if n := len(p.laneFree); n > 0 {
				l.pp = p.laneFree[n-1]
				p.laneFree = p.laneFree[:n-1]
			} else {
				l.pp = NewPredictor()
			}
			cfg, classes, err := l.pp.beginPredict(l.cfg)
			if err != nil {
				return fmt.Errorf("core: batch config %d: %w", idx, err)
			}
			l.cfg, l.classes = cfg, classes
			l.prevTotal = math.Inf(1)
			l.pred = Prediction{ClassResponse: map[timeline.Class]float64{}}
			lanes = append(lanes, l)
		}
		return nil
	}
	if err := admit(); err != nil {
		return err
	}

	ins := make([]mva.OverlapInput, 0, mva.BatchLanes)
	pend := make([]*batchLane, 0, mva.BatchLanes)
	for len(lanes) > 0 {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		// A2–A4 per live lane at its own round, then the shared A5 solve.
		ins, pend = ins[:0], pend[:0]
		for _, l := range lanes {
			l.iter++
			tl, tree, in, err := l.pp.roundArtifacts(l.cfg, l.classes, nil, false)
			if err != nil {
				return fmt.Errorf("core: batch config %d: %w", l.idx, err)
			}
			l.tl, l.tree = tl, tree
			l.n, l.nc = len(tl.Tasks), l.pp.hw.nc
			ins = append(ins, in)
			pend = append(pend, l)
		}
		// Solve same-shape runs together: results alias the shared solver's
		// scratch, so each run folds before the next Solve invalidates it.
		for lo := 0; lo < len(pend); {
			hi := lo + 1
			for hi < len(pend) && pend[hi].n == pend[lo].n && pend[hi].nc == pend[lo].nc {
				hi++
			}
			results, errs := p.bsolver.Solve(ins[lo:hi])
			for g, l := range pend[lo:hi] {
				if errs[g] != nil {
					return fmt.Errorf("core: batch config %d: %w", l.idx, errs[g])
				}
				res := results[g]
				l.pred.InnerIterations += res.Iterations
				done, err := l.pp.roundFold(l.cfg, l.classes, l.tl, l.tree, res.Response, l.iter, &l.prevTotal, &l.acc, &l.pred)
				if err != nil {
					return fmt.Errorf("core: batch config %d: %w", l.idx, err)
				}
				if done || l.iter >= l.cfg.MaxIterations {
					l.finish()
					out[l.idx] = l.pred
					p.laneFree = append(p.laneFree, l.pp)
				}
			}
			lo = hi
		}
		// Compact finished lanes and refill from the queue.
		live := lanes[:0]
		for _, l := range lanes {
			if !l.done {
				live = append(live, l)
			}
		}
		lanes = live
		if err := admit(); err != nil {
			return err
		}
	}
	return nil
}
