package core

import (
	"testing"

	"hadoop2perf/internal/cluster"
	"hadoop2perf/internal/timeline"
)

func TestEstimateResourcesBasics(t *testing.T) {
	spec := cluster.Default(4)
	j := job(t, 1024, 4)
	est, pred, err := EstimateResources(Config{Spec: spec, Job: j})
	if err != nil {
		t.Fatal(err)
	}
	if pred.ResponseTime <= 0 {
		t.Fatal("no prediction")
	}
	for _, cls := range []timeline.Class{timeline.ClassMap, timeline.ClassShuffleSort, timeline.ClassMerge} {
		u, ok := est.PerClass[cls]
		if !ok {
			t.Fatalf("missing class %s", cls)
		}
		if u.CPUSeconds <= 0 {
			t.Errorf("%s: no CPU use", cls)
		}
	}
	// Only the shuffle-sort class moves data over the network.
	if est.PerClass[timeline.ClassMap].NetworkSeconds != 0 {
		t.Error("maps should not use the network")
	}
	if est.PerClass[timeline.ClassShuffleSort].NetworkSeconds <= 0 {
		t.Error("shuffle should use the network")
	}
	// Total is the sum of classes.
	var sum ResourceUse
	for _, u := range est.PerClass {
		sum.CPUSeconds += u.CPUSeconds
		sum.DiskSeconds += u.DiskSeconds
		sum.NetworkSeconds += u.NetworkSeconds
	}
	const tol = 1e-9
	if diff := sum.CPUSeconds - est.Total.CPUSeconds; diff > tol || diff < -tol {
		t.Errorf("total CPU %v != class sum %v", est.Total.CPUSeconds, sum.CPUSeconds)
	}
	if diff := sum.DiskSeconds - est.Total.DiskSeconds; diff > tol || diff < -tol {
		t.Errorf("total disk %v != class sum %v", est.Total.DiskSeconds, sum.DiskSeconds)
	}
	if diff := sum.NetworkSeconds - est.Total.NetworkSeconds; diff > tol || diff < -tol {
		t.Errorf("total net %v != class sum %v", est.Total.NetworkSeconds, sum.NetworkSeconds)
	}
	// Utilizations must be feasible.
	for name, u := range map[string]float64{
		"cpu": est.CPUUtilization, "disk": est.DiskUtilization, "net": est.NetworkUtilization,
	} {
		if u <= 0 || u > 1 {
			t.Errorf("%s utilization = %v outside (0,1]", name, u)
		}
	}
}

func TestEstimateResourcesScaleWithInput(t *testing.T) {
	spec := cluster.Default(4)
	small, _, err := EstimateResources(Config{Spec: spec, Job: job(t, 1024, 4)})
	if err != nil {
		t.Fatal(err)
	}
	big, _, err := EstimateResources(Config{Spec: spec, Job: job(t, 5*1024, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if big.Total.CPUSeconds <= small.Total.CPUSeconds {
		t.Error("CPU consumption should grow with input size")
	}
	// 5x input ~ 5x CPU work (same per-MB profile, modulo startup constants).
	ratio := big.Total.CPUSeconds / small.Total.CPUSeconds
	if ratio < 3.5 || ratio > 6.5 {
		t.Errorf("CPU scaling ratio = %v, want ~5", ratio)
	}
}

func TestEstimateResourcesConsistentAcrossEstimators(t *testing.T) {
	// Consumption depends on demands and task counts, not on the tree
	// estimator choice.
	spec := cluster.Default(4)
	j := job(t, 1024, 4)
	a, _, err := EstimateResources(Config{Spec: spec, Job: j, Estimator: EstimatorForkJoin})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := EstimateResources(Config{Spec: spec, Job: j, Estimator: EstimatorTripathi})
	if err != nil {
		t.Fatal(err)
	}
	if a.Total != b.Total {
		t.Errorf("totals differ across estimators: %+v vs %+v", a.Total, b.Total)
	}
	// Utilization differs (different predicted response) but stays feasible.
	if b.CPUUtilization >= a.CPUUtilization {
		t.Error("tripathi's longer response should give lower utilization")
	}
}

func TestEstimateResourcesValidation(t *testing.T) {
	if _, _, err := EstimateResources(Config{}); err == nil {
		t.Error("invalid config accepted")
	}
}
