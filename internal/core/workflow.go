package core

import (
	"context"
	"fmt"

	"hadoop2perf/internal/cluster"
	"hadoop2perf/internal/ptree"
	"hadoop2perf/internal/timeline"
	"hadoop2perf/internal/workflow"
)

// This file evaluates DAG workflows of dependent jobs analytically: stages
// are solved in topological order with per-stage warm-start chaining on one
// Predictor, stages sharing a wave and a cluster are priced as a closed
// multi-job population (the paper's N-concurrent-jobs methodology applied
// per wave), and the stage durations compose into a critical-path response
// via internal/workflow's CPM schedule. The per-stage precedence trees stay
// intra-job; the cross-job structure surfaces as a stage-level S/P tree
// (timeline.ClassStage leaves) built by ptree.FromIntervals.

// WorkflowStageResult is one stage's evaluation inside a workflow
// prediction.
type WorkflowStageResult struct {
	// Name is the stage's DAG name.
	Name string
	// ResponseTime is the stage's predicted duration: its single-job
	// response, or its per-job response inside the wave's closed multi-job
	// population when the stage shares its wave and cluster with others.
	ResponseTime float64
	// Start, Finish and Slack are the stage's critical-path schedule times
	// (earliest start, earliest finish, total float).
	Start  float64
	Finish float64 // see Start
	Slack  float64 // see Start
	// Critical reports zero slack: the stage sits on a longest path.
	Critical bool
	// Concurrency is the closed-network population the stage was evaluated
	// at (1 + co-scheduled same-cluster stages of its wave).
	Concurrency int
	// Iterations, InnerIterations, Converged and WarmStarted mirror the
	// stage's Prediction bookkeeping.
	Iterations      int
	InnerIterations int  // see Iterations
	Converged       bool // see Iterations
	WarmStarted     bool // see Iterations
}

// WorkflowPrediction is the analytic evaluation of a workflow DAG.
type WorkflowPrediction struct {
	// ResponseTime is the workflow's critical-path makespan.
	ResponseTime float64
	// Stages reports every stage in DAG declaration order.
	Stages []WorkflowStageResult
	// CriticalPath is one longest source-to-sink chain, by stage name.
	CriticalPath []string
	// Iterations and InnerIterations total the outer and inner fixed-point
	// rounds across all stage evaluations; Converged requires every stage
	// to have converged.
	Iterations      int
	InnerIterations int  // see Iterations
	Converged       bool // see Iterations
	// Tree is the cross-job precedence tree: each leaf is a whole stage
	// (timeline.ClassStage, ID = stage index) placed at its scheduled
	// interval, composed with the paper's S/P operators.
	Tree *ptree.Node
}

// specSig hashes the cluster fields that decide whether two stages contend
// for the same hardware (the wave-population grouping key).
func specSig(s *cluster.Spec) uint64 {
	h := newSigHasher()
	h.i(s.NumNodes)
	h.i(s.NodeCapacity.MemoryMB)
	h.i(s.NodeCapacity.VCores)
	h.i(s.MapContainer.MemoryMB)
	h.i(s.MapContainer.VCores)
	h.i(s.ReduceContainer.MemoryMB)
	h.i(s.ReduceContainer.VCores)
	h.i(s.CPUPerNode)
	h.i(s.DiskPerNode)
	h.f64(s.DiskMBps)
	h.f64(s.NetworkMBps)
	h.i(len(s.Classes))
	for _, c := range s.Classes {
		h.str(c.Name)
		h.i(c.Count)
		h.i(c.Capacity.MemoryMB)
		h.i(c.Capacity.VCores)
		h.i(c.CPUs)
		h.i(c.Disks)
		h.f64(c.DiskMBps)
		h.f64(c.NetworkMBps)
		h.f64(c.Speed)
		h.b(c.Preemptible)
		h.f64(c.RevocationRate)
		h.f64(c.Price)
	}
	return h.sum
}

// WorkflowConcurrency returns each stage's effective closed-network
// population: stages sharing a wave contend only when they run on the same
// cluster (equal specs), so a stage with stage-local sizing keeps
// population 1 unless a wave sibling uses identical hardware.
func WorkflowConcurrency(dag *workflow.DAG, cfgs []Config) ([]int, error) {
	waves, err := dag.Waves()
	if err != nil {
		return nil, err
	}
	sigs := make([]uint64, len(cfgs))
	for i := range cfgs {
		sigs[i] = specSig(&cfgs[i].Spec)
	}
	return workflow.Concurrency(waves, func(i, j int) bool { return sigs[i] == sigs[j] }), nil
}

// PredictWorkflow evaluates a workflow DAG with a fresh Predictor (see
// Predictor.PredictWorkflowContext).
func PredictWorkflow(dag *workflow.DAG, cfgs []Config) (WorkflowPrediction, error) {
	return NewPredictor().PredictWorkflowContext(context.Background(), dag, cfgs)
}

// PredictWorkflowContext is PredictWorkflow honoring ctx between stage
// evaluations and outer iterations.
func PredictWorkflowContext(ctx context.Context, dag *workflow.DAG, cfgs []Config) (WorkflowPrediction, error) {
	return NewPredictor().PredictWorkflowContext(ctx, dag, cfgs)
}

// PredictWorkflowContext evaluates every stage of the DAG in deterministic
// topological order on this Predictor — warm-start chaining each stage's
// fixed point from its solved neighbors — and composes the critical-path
// response. cfgs holds one model Config per stage, in DAG declaration
// order; each stage's NumJobs is raised to its wave population when lower
// (stages co-scheduled on the same cluster contend as a closed multi-job
// network). A single-stage workflow takes the bit-exact cold path, so a
// trivial DAG predicts exactly what Predict does; multi-stage chains stay
// within the warm-start contract (1e-6 relative per stage) of composing
// cold predictions.
func (p *Predictor) PredictWorkflowContext(ctx context.Context, dag *workflow.DAG, cfgs []Config) (WorkflowPrediction, error) {
	if err := dag.Validate(); err != nil {
		return WorkflowPrediction{}, err
	}
	if len(cfgs) != dag.NumStages() {
		return WorkflowPrediction{}, fmt.Errorf("core: %d stage configs for %d stages", len(cfgs), dag.NumStages())
	}
	order, err := dag.TopoOrder()
	if err != nil {
		return WorkflowPrediction{}, err
	}
	conc, err := WorkflowConcurrency(dag, cfgs)
	if err != nil {
		return WorkflowPrediction{}, err
	}

	out := WorkflowPrediction{
		Stages:    make([]WorkflowStageResult, dag.NumStages()),
		Converged: true,
	}
	durations := make([]float64, dag.NumStages())
	for _, i := range order {
		cfg := cfgs[i]
		if cfg.NumJobs < conc[i] {
			cfg.NumJobs = conc[i]
		}
		var pred Prediction
		var err error
		if dag.NumStages() == 1 {
			pred, err = p.PredictContext(ctx, cfg)
		} else {
			pred, err = p.PredictWarmContext(ctx, cfg)
		}
		if err != nil {
			return WorkflowPrediction{}, fmt.Errorf("core: stage %q: %w", dag.Stages[i], err)
		}
		durations[i] = pred.ResponseTime
		out.Stages[i] = WorkflowStageResult{
			Name:            dag.Stages[i],
			ResponseTime:    pred.ResponseTime,
			Concurrency:     cfg.NumJobs,
			Iterations:      pred.Iterations,
			InnerIterations: pred.InnerIterations,
			Converged:       pred.Converged,
			WarmStarted:     pred.WarmStarted,
		}
		out.Iterations += pred.Iterations
		out.InnerIterations += pred.InnerIterations
		out.Converged = out.Converged && pred.Converged
	}

	sched, err := dag.ComputeSchedule(durations)
	if err != nil {
		return WorkflowPrediction{}, err
	}
	out.ResponseTime = sched.Makespan
	intervals := make([]timeline.Placed, dag.NumStages())
	for i := range out.Stages {
		st := &out.Stages[i]
		st.Start = sched.Start[i]
		st.Finish = sched.Finish[i]
		st.Slack = sched.Slack[i]
		st.Critical = sched.Critical[i]
		intervals[i] = timeline.Placed{
			Class: timeline.ClassStage, ID: i, Start: st.Start, End: st.Finish,
		}
	}
	for _, i := range sched.CriticalPath {
		out.CriticalPath = append(out.CriticalPath, dag.Stages[i])
	}
	if tree, err := ptree.FromIntervals(intervals); err == nil {
		out.Tree = tree
	}
	return out, nil
}
