package core

import (
	"math"
	"testing"

	"hadoop2perf/internal/cluster"
	"hadoop2perf/internal/mrsim"
	"hadoop2perf/internal/timeline"
	"hadoop2perf/internal/workload"
	"hadoop2perf/internal/yarn"
)

// classForm rewrites a flat spec as a single-class heterogeneous spec with
// the flat per-node fields zeroed — consumers must read the class table, not
// the legacy fields.
func classForm(s cluster.Spec) cluster.Spec {
	s.Classes = []cluster.NodeClass{{
		Name:        "gen1",
		Count:       s.NumNodes,
		Capacity:    s.NodeCapacity,
		CPUs:        s.CPUPerNode,
		Disks:       s.DiskPerNode,
		DiskMBps:    s.DiskMBps,
		NetworkMBps: s.NetworkMBps,
	}}
	s.NumNodes = 0
	s.NodeCapacity = cluster.Resource{}
	s.CPUPerNode, s.DiskPerNode = 0, 0
	s.DiskMBps, s.NetworkMBps = 0, 0
	return s
}

// TestPredictHomogeneousEquivalence pins the refactored (class-aware) model
// to bit-identical outputs of the pre-refactor homogeneous implementation:
// the golden values below are hex-exact response times captured from the
// code before node classes existed. Both the flat spec and its single-class
// rewrite must reproduce them to the last bit.
func TestPredictHomogeneousEquivalence(t *testing.T) {
	cases := []struct {
		nodes, reduces, numJobs int
		est                     Estimator
		inputMB                 float64
		want                    float64 // pre-refactor golden, bit-exact
	}{
		{4, 1, 1, EstimatorForkJoin, 1024, 0x1.234a00b4c9901p+07},
		{4, 4, 1, EstimatorForkJoin, 1024, 0x1.0d9d703cfd597p+06},
		{8, 4, 3, EstimatorForkJoin, 2048, 0x1.866b43e01b0bdp+06},
		{4, 4, 1, EstimatorTripathi, 1024, 0x1.24bcd3b1bcaeap+06},
		{6, 2, 2, EstimatorPaperLiteral, 512, 0x1.c34a3f681c25ep+06},
	}
	for _, tc := range cases {
		flat := cluster.Default(tc.nodes)
		job, err := workload.NewJob(0, tc.inputMB, 128, tc.reduces, workload.WordCount())
		if err != nil {
			t.Fatal(err)
		}
		for name, spec := range map[string]cluster.Spec{"flat": flat, "single-class": classForm(flat)} {
			pred, err := Predict(Config{Spec: spec, Job: job, NumJobs: tc.numJobs, Estimator: tc.est})
			if err != nil {
				t.Fatalf("%s n=%d r=%d: %v", name, tc.nodes, tc.reduces, err)
			}
			if pred.ResponseTime != tc.want {
				t.Errorf("%s n=%d r=%d j=%d est=%v: response %x, want golden %x",
					name, tc.nodes, tc.reduces, tc.numJobs, tc.est, pred.ResponseTime, tc.want)
			}
		}
	}
}

// twoClassSpec is the 2-class evaluation cluster of the heterogeneous tests:
// fast nodes of the calibrated generation plus an older, slower generation
// with fewer cores and a slower disk.
func twoClassSpec(fast, slow int) cluster.Spec {
	spec := cluster.Default(0)
	spec.Classes = []cluster.NodeClass{
		{
			Name:        "fast",
			Count:       fast,
			Capacity:    cluster.Resource{MemoryMB: 32768, VCores: 32},
			CPUs:        6,
			Disks:       1,
			DiskMBps:    240,
			NetworkMBps: 110,
			Speed:       1,
		},
		{
			Name:        "slow",
			Count:       slow,
			Capacity:    cluster.Resource{MemoryMB: 16384, VCores: 16},
			CPUs:        4,
			Disks:       1,
			DiskMBps:    140,
			NetworkMBps: 110,
			Speed:       0.6,
		},
	}
	return spec
}

// TestPredictTwoClassAgreement validates the heterogeneous model against the
// discrete-event simulator on a 2-class cluster, at the same relative-error
// tolerance the homogeneous configuration meets in the same test. This is
// the paper's §5 validation loop opened onto the new scenario axis.
func TestPredictTwoClassAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed agreement in -short mode")
	}
	const tol = 0.35
	job, err := workload.NewJob(0, 1024, 128, 4, workload.WordCount())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		spec cluster.Spec
	}{
		{"homogeneous-4", cluster.Default(4)},
		{"two-class-2+2", twoClassSpec(2, 2)},
		{"two-class-3+1", twoClassSpec(3, 1)},
	} {
		pred, err := Predict(Config{Spec: tc.spec, Job: job, NumJobs: 1})
		if err != nil {
			t.Fatalf("%s: predict: %v", tc.name, err)
		}
		res, err := mrsim.RunMedianOfSeeds(mrsim.Config{
			Spec: tc.spec, Jobs: []workload.Job{job}, Seed: 7, Scheduler: yarn.PolicyFIFO,
		}, 3)
		if err != nil {
			t.Fatalf("%s: simulate: %v", tc.name, err)
		}
		sim := res.MeanResponse()
		relErr := math.Abs(pred.ResponseTime-sim) / sim
		t.Logf("%s: model %.1fs vs sim %.1fs (err %.1f%%)", tc.name, pred.ResponseTime, sim, 100*relErr)
		if relErr > tol {
			t.Errorf("%s: model %v vs sim %v: relative error %.2f exceeds %.2f",
				tc.name, pred.ResponseTime, sim, relErr, tol)
		}
	}
}

// TestPredictHeterogeneousSanity checks directional behavior of the 2-class
// model: upgrading part of the cluster must not slow the job down, and a mix
// must land between its all-slow and all-fast bookends.
// TestPartialHistoryKeepsClassScaling: a calibrated profile covering only
// some classes must not disable heterogeneous per-node scaling and class
// pricing for the classes it does not cover. The reduce side of a map-only
// history stays class-aware: the prediction must keep responding to the
// slow class's reduce-side hardware, exactly as it does with no history.
func TestPartialHistoryKeepsClassScaling(t *testing.T) {
	j, err := workload.NewJob(0, 2048, 128, 4, workload.WordCount())
	if err != nil {
		t.Fatal(err)
	}
	spec := twoClassSpec(4, 4)
	md := j.MapDemands(j.BlockSizeMB, spec.MeanDiskMBps())
	mapOnly := map[timeline.Class]ClassStats{
		timeline.ClassMap: {MeanCPU: md.CPU, MeanDisk: md.Disk, MeanResponse: md.Total()},
	}

	// Degrading the slow class's disk must slow the reduce-side class
	// responses of a map-only-history prediction (class pricing still active
	// for the uncovered classes), while the history-pinned map class stays
	// put.
	degraded := twoClassSpec(4, 4)
	degraded.Classes[1].DiskMBps = 40
	base := predict(t, Config{Spec: spec, Job: j, History: mapOnly})
	slow := predict(t, Config{Spec: degraded, Job: j, History: mapOnly})
	for _, cls := range []timeline.Class{timeline.ClassShuffleSort, timeline.ClassMerge} {
		if slow.ClassResponse[cls] <= base.ClassResponse[cls] {
			t.Errorf("map-only history froze %s class pricing: degraded %v <= base %v",
				cls, slow.ClassResponse[cls], base.ClassResponse[cls])
		}
	}
	if slow.ClassResponse[timeline.ClassMap] != base.ClassResponse[timeline.ClassMap] {
		t.Errorf("history-pinned map class moved with disk bandwidth: %v vs %v",
			slow.ClassResponse[timeline.ClassMap], base.ClassResponse[timeline.ClassMap])
	}

	// A full history pins every class to its measured demands: the same
	// hardware degradation must leave the whole prediction untouched.
	full := map[timeline.Class]ClassStats{
		timeline.ClassMap:         mapOnly[timeline.ClassMap],
		timeline.ClassShuffleSort: {MeanCPU: 4, MeanDisk: 1, MeanNetwork: 2, MeanResponse: 7},
		timeline.ClassMerge:       {MeanCPU: 6, MeanDisk: 1, MeanResponse: 7},
	}
	fullBase := predict(t, Config{Spec: spec, Job: j, History: full})
	fullSlow := predict(t, Config{Spec: degraded, Job: j, History: full})
	if fullSlow.ResponseTime != fullBase.ResponseTime {
		t.Errorf("full history should be insensitive to bandwidth changes: %v vs %v",
			fullSlow.ResponseTime, fullBase.ResponseTime)
	}
}

func TestPredictHeterogeneousSanity(t *testing.T) {
	job, err := workload.NewJob(0, 2048, 128, 1, workload.WordCount())
	if err != nil {
		t.Fatal(err)
	}
	predict := func(spec cluster.Spec) float64 {
		p, err := Predict(Config{Spec: spec, Job: job, NumJobs: 1})
		if err != nil {
			t.Fatal(err)
		}
		return p.ResponseTime
	}

	allSlow := twoClassSpec(1, 3) // minimal fast share
	mixed := twoClassSpec(2, 2)
	mostlyFast := twoClassSpec(3, 1)
	rtSlow, rtMix, rtFast := predict(allSlow), predict(mixed), predict(mostlyFast)
	if !(rtFast <= rtMix && rtMix <= rtSlow) {
		t.Errorf("upgrading nodes should not slow the job: 3+1=%v, 2+2=%v, 1+3=%v", rtFast, rtMix, rtSlow)
	}

	// A speed-doubled single class must beat the baseline class.
	base := classForm(cluster.Default(4))
	boosted := base
	boosted.Classes = []cluster.NodeClass{base.Classes[0]}
	boosted.Classes[0].Speed = 2
	if rb, r := predict(boosted), predict(base); rb >= r {
		t.Errorf("speed-2 class predicted %v, want < baseline %v", rb, r)
	}
}
