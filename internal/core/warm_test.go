package core

import (
	"math"
	"math/rand"
	"testing"

	"hadoop2perf/internal/cluster"
	"hadoop2perf/internal/timeline"
	"hadoop2perf/internal/workload"
)

// warmTol is the warm-start correctness contract: a warm-started prediction
// matches its cold-started twin within this relative tolerance.
const warmTol = 1e-6

// randomJob draws a random job over the built-in profiles.
func randomJob(t *testing.T, rng *rand.Rand) workload.Job {
	t.Helper()
	profiles := []workload.Profile{workload.WordCount(), workload.Grep(), workload.TeraSort()}
	inputMB := float64(256 * (1 + rng.Intn(12)))
	block := []float64{64, 128, 256}[rng.Intn(3)]
	reduces := 1 + rng.Intn(6)
	job, err := workload.NewJob(0, inputMB, block, reduces, profiles[rng.Intn(len(profiles))])
	if err != nil {
		t.Fatal(err)
	}
	return job
}

// randomTwoClassSpec draws a 2-class cluster: a calibrated-generation class
// plus a randomized older one.
func randomTwoClassSpec(rng *rand.Rand, fast, slow int) cluster.Spec {
	spec := cluster.Default(0)
	spec.Classes = []cluster.NodeClass{
		{
			Name:     "fast",
			Count:    fast,
			Capacity: cluster.Resource{MemoryMB: 32768, VCores: 32},
			CPUs:     6, Disks: 1, DiskMBps: 240, NetworkMBps: 110, Speed: 1,
		},
		{
			Name:     "slow",
			Count:    slow,
			Capacity: cluster.Resource{MemoryMB: 16384, VCores: 16},
			CPUs:     4, Disks: 1,
			DiskMBps:    100 + 80*rng.Float64(),
			NetworkMBps: 110,
			Speed:       0.4 + 0.4*rng.Float64(),
		},
	}
	return spec
}

// TestPredictWarmMatchesColdProperty is the tentpole's correctness
// contract: on randomized specs — flat and heterogeneous (K=2) — a
// prediction warm-started from a solved neighbor matches the cold-started
// one within 1e-6 relative, for the response time and every class response.
func TestPredictWarmMatchesColdProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	trials := 40
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		job := randomJob(t, rng)
		numJobs := 1 + rng.Intn(3)
		est := []Estimator{EstimatorForkJoin, EstimatorTripathi, EstimatorPaperLiteral}[rng.Intn(3)]

		var neighbor, target Config
		if trial%2 == 0 {
			nodes := 2 + rng.Intn(12)
			delta := 1 + rng.Intn(3)
			neighbor = Config{Spec: cluster.Default(nodes), Job: job, NumJobs: numJobs, Estimator: est}
			target = Config{Spec: cluster.Default(nodes + delta), Job: job, NumJobs: numJobs, Estimator: est}
		} else {
			fast, slow := 2+rng.Intn(5), 1+rng.Intn(4)
			spec := randomTwoClassSpec(rng, fast, slow)
			grown := spec
			grown.Classes = append([]cluster.NodeClass(nil), spec.Classes...)
			grown.Classes[rng.Intn(2)].Count += 1 + rng.Intn(2)
			neighbor = Config{Spec: spec, Job: job, NumJobs: numJobs, Estimator: est}
			target = Config{Spec: grown, Job: job, NumJobs: numJobs, Estimator: est}
		}

		cold, err := Predict(target)
		if err != nil {
			t.Fatalf("trial %d: cold: %v", trial, err)
		}
		p := NewPredictor()
		if _, err := p.PredictWarm(neighbor); err != nil {
			t.Fatalf("trial %d: neighbor: %v", trial, err)
		}
		warm, err := p.PredictWarm(target)
		if err != nil {
			t.Fatalf("trial %d: warm: %v", trial, err)
		}
		if !warm.WarmStarted {
			t.Errorf("trial %d: second prediction was not warm-started", trial)
		}
		// The contract covers the *result* (the job response time). The
		// per-class responses are internal outer-loop state that the ε-test
		// on the total deliberately leaves under-determined — cold runs with
		// different damping disagree on them too — so they are not compared.
		if rel := math.Abs(warm.ResponseTime-cold.ResponseTime) / cold.ResponseTime; rel > warmTol {
			t.Errorf("trial %d: warm %v vs cold %v (rel %.2e) job=%+v", trial,
				warm.ResponseTime, cold.ResponseTime, rel, target.Job)
		}
		if !warm.Converged {
			t.Errorf("trial %d: warm prediction did not converge", trial)
		}
	}
}

// A warm sweep over a node axis must spend materially fewer inner MVA
// sweeps than the same sweep cold in the contended regime — multi-job,
// multi-reducer predictions, where each of the cold outer loop's dozens of
// rounds re-solves the overlap fixed point from scratch. With the
// AccelerateOuter opt-in, the outer rounds themselves must at least halve.
// This is the tentpole's performance premise; the numbers on the 16-point
// sweep are recorded by BenchmarkPredictBatch. (Uncontended configs
// converge in the 2-round minimum cold, so there is nothing to save there —
// warm start is about the expensive regime.)
func TestPredictWarmSavesIterations(t *testing.T) {
	job, err := workload.NewJob(0, 5*1024, 128, 4, workload.WordCount())
	if err != nil {
		t.Fatal(err)
	}
	coldOuter, accOuter, coldInner, warmInner := 0, 0, 0, 0
	p := NewPredictor()
	pa := NewPredictor()
	for n := 2; n <= 17; n++ {
		cfg := Config{Spec: cluster.Default(n), Job: job, NumJobs: 4}
		cold, err := Predict(cfg)
		if err != nil {
			t.Fatal(err)
		}
		warm, err := p.PredictWarm(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(warm.ResponseTime-cold.ResponseTime) / cold.ResponseTime; rel > warmTol {
			t.Errorf("n=%d: warm %v vs cold %v (rel %.2e)", n, warm.ResponseTime, cold.ResponseTime, rel)
		}
		acfg := cfg
		acfg.AccelerateOuter = true
		acc, err := pa.PredictWarm(acfg)
		if err != nil {
			t.Fatal(err)
		}
		coldOuter += cold.Iterations
		accOuter += acc.Iterations
		coldInner += cold.InnerIterations
		warmInner += warm.InnerIterations
	}
	t.Logf("16-point contended sweep: outer %d cold / %d accelerated, inner %d cold / %d warm",
		coldOuter, accOuter, coldInner, warmInner)
	if warmInner*2 > coldInner {
		t.Errorf("warm sweep used %d inner sweeps, want <= half of cold's %d", warmInner, coldInner)
	}
	if accOuter*2 > coldOuter {
		t.Errorf("accelerated sweep used %d outer iterations, want <= half of cold's %d", accOuter, coldOuter)
	}
}

// The AccelerateOuter opt-in trades the ε-test's plateau determinism for
// outer-round savings: its answers agree with the plain path to the
// ε-resolution (~1e-5 relative on slow tails), well inside the model's
// accuracy but looser than the warm default's 1e-6 contract.
func TestAccelerateOuterStaysNearPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	trials := 20
	if testing.Short() {
		trials = 6
	}
	for trial := 0; trial < trials; trial++ {
		job := randomJob(t, rng)
		cfg := Config{
			Spec:    cluster.Default(2 + rng.Intn(12)),
			Job:     job,
			NumJobs: 1 + rng.Intn(4),
		}
		plain, err := Predict(cfg)
		if err != nil {
			t.Fatal(err)
		}
		acfg := cfg
		acfg.AccelerateOuter = true
		acc, err := Predict(acfg)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(acc.ResponseTime-plain.ResponseTime) / plain.ResponseTime; rel > 1e-4 {
			t.Errorf("trial %d: accelerated %v vs plain %v (rel %.2e)",
				trial, acc.ResponseTime, plain.ResponseTime, rel)
		}
	}
}

// Converged and maxed-out predictions must be distinguishable from their
// iteration stats alone, and both loops' counters must be populated.
func TestIterationAccounting(t *testing.T) {
	job, err := workload.NewJob(0, 4096, 128, 4, workload.WordCount())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Spec: cluster.Default(4), Job: job, NumJobs: 4}

	ok, err := Predict(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !ok.Converged {
		t.Fatal("reference prediction did not converge")
	}
	if ok.Iterations <= 0 || ok.Iterations >= DefaultMaxIterations {
		t.Errorf("converged Iterations = %d", ok.Iterations)
	}
	if ok.InnerIterations < ok.Iterations {
		t.Errorf("InnerIterations %d < outer %d: inner sweeps unaccounted", ok.InnerIterations, ok.Iterations)
	}

	// Starve the outer loop: the result must be marked unconverged with the
	// cap as its iteration count — distinguishable from the converged run.
	capped := cfg
	capped.MaxIterations = 2
	starved, err := Predict(capped)
	if err != nil {
		t.Fatal(err)
	}
	if starved.Converged {
		t.Error("2-iteration cap reported convergence")
	}
	if starved.Iterations != 2 {
		t.Errorf("starved Iterations = %d, want 2", starved.Iterations)
	}
	if starved.InnerIterations <= 0 {
		t.Error("starved run reported no inner sweeps")
	}

	// Warm accounting: a warm repeat of the same config reports WarmStarted
	// and materially fewer inner MVA sweeps than the cold run.
	p := NewPredictor()
	if _, err := p.PredictWarm(cfg); err != nil {
		t.Fatal(err)
	}
	rerun, err := p.PredictWarm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rerun.WarmStarted || rerun.InnerIterations >= ok.InnerIterations {
		t.Errorf("warm rerun: WarmStarted=%v InnerIterations=%d (cold %d)",
			rerun.WarmStarted, rerun.InnerIterations, ok.InnerIterations)
	}
}

// The warm pool is keyed on the full job/hardware/history signature:
// predictions of a *different* job must never seed from it.
func TestPredictWarmSignatureIsolation(t *testing.T) {
	jobA, err := workload.NewJob(0, 1024, 128, 2, workload.WordCount())
	if err != nil {
		t.Fatal(err)
	}
	jobB, err := workload.NewJob(0, 1024, 128, 2, workload.TeraSort())
	if err != nil {
		t.Fatal(err)
	}
	p := NewPredictor()
	if _, err := p.PredictWarm(Config{Spec: cluster.Default(4), Job: jobA}); err != nil {
		t.Fatal(err)
	}
	pred, err := p.PredictWarm(Config{Spec: cluster.Default(4), Job: jobB})
	if err != nil {
		t.Fatal(err)
	}
	if pred.WarmStarted {
		t.Error("terasort prediction warm-started from a wordcount solution")
	}

	// A history-seeded config must not share entries with the static one.
	hist := map[timeline.Class]ClassStats{
		timeline.ClassMap: {MeanCPU: 10, MeanDisk: 2, MeanResponse: 13},
	}
	withHist, err := p.PredictWarm(Config{Spec: cluster.Default(4), Job: jobA, History: hist})
	if err != nil {
		t.Fatal(err)
	}
	if withHist.WarmStarted {
		t.Error("history-seeded prediction warm-started from the static solution")
	}
}

// Convergence-knob validation: damping outside (0,1] and negative epsilon
// are rejected on every path; valid overrides are honored.
func TestConfigTuningValidation(t *testing.T) {
	job, err := workload.NewJob(0, 2048, 128, 4, workload.WordCount())
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Spec: cluster.Default(2), Job: job, NumJobs: 3}

	for _, bad := range []Config{
		func() Config { c := base; c.Damping = -0.1; return c }(),
		func() Config { c := base; c.Damping = 1.5; return c }(),
		func() Config { c := base; c.Epsilon = -1e-9; return c }(),
	} {
		if _, err := Predict(bad); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
		p := NewPredictor()
		if _, err := p.PredictWarm(bad); err == nil {
			t.Errorf("warm config accepted bad tuning")
		}
	}

	// A custom damping converges to the same fixed point (within the outer
	// tolerance scaled to the response), and a looser epsilon stops earlier.
	def, err := Predict(base)
	if err != nil {
		t.Fatal(err)
	}
	light := base
	light.Damping = 0.25
	lp, err := Predict(light)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(lp.ResponseTime-def.ResponseTime) / def.ResponseTime; rel > 1e-4 {
		t.Errorf("damping 0.25 moved the fixed point: %v vs %v (rel %.2e)", lp.ResponseTime, def.ResponseTime, rel)
	}
	loose := base
	loose.Epsilon = 1e-2
	lo, err := Predict(loose)
	if err != nil {
		t.Fatal(err)
	}
	if lo.Iterations >= def.Iterations {
		t.Errorf("epsilon 1e-2 used %d iterations, default %d", lo.Iterations, def.Iterations)
	}
}
