package core

import (
	"testing"

	"hadoop2perf/internal/cluster"
	"hadoop2perf/internal/timeline"
	"hadoop2perf/internal/workload"
)

func job(t *testing.T, inputMB float64, reduces int) workload.Job {
	t.Helper()
	j, err := workload.NewJob(0, inputMB, 128, reduces, workload.WordCount())
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func predict(t *testing.T, cfg Config) Prediction {
	t.Helper()
	p, err := Predict(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPredictValidation(t *testing.T) {
	if _, err := Predict(Config{Spec: cluster.Spec{}, Job: job(t, 1024, 4)}); err == nil {
		t.Error("invalid spec accepted")
	}
	if _, err := Predict(Config{Spec: cluster.Default(4), Job: workload.Job{}}); err == nil {
		t.Error("invalid job accepted")
	}
}

func TestPredictConvergesAndIsPositive(t *testing.T) {
	for _, est := range []Estimator{EstimatorForkJoin, EstimatorTripathi, EstimatorPaperLiteral} {
		p := predict(t, Config{Spec: cluster.Default(4), Job: job(t, 1024, 4), Estimator: est})
		if !p.Converged {
			t.Errorf("%s did not converge in %d iterations", est, p.Iterations)
		}
		if p.ResponseTime <= 0 {
			t.Errorf("%s response = %v", est, p.ResponseTime)
		}
		if p.Timeline == nil || p.Tree == nil {
			t.Errorf("%s missing artifacts", est)
		}
		if err := p.Tree.Validate(); err != nil {
			t.Errorf("%s tree invalid: %v", est, err)
		}
	}
}

func TestPredictAboveUncontendedLowerBound(t *testing.T) {
	// The prediction can never be below the critical path lower bound:
	// one map wave + merge (the shuffle may fully overlap maps).
	spec := cluster.Default(4)
	j := job(t, 1024, 4)
	md := j.MapDemands(j.BlockSizeMB, spec.DiskMBps).Total()
	mg := j.MergeDemands(spec.DiskMBps).Total()
	lower := j.Profile.AMStartup + md + mg
	p := predict(t, Config{Spec: spec, Job: j})
	if p.ResponseTime < lower {
		t.Errorf("response %v below uncontended bound %v", p.ResponseTime, lower)
	}
}

func TestPredictMonotoneInInputSize(t *testing.T) {
	spec := cluster.Default(4)
	prev := 0.0
	for _, mb := range []float64{512, 1024, 2048, 5120} {
		p := predict(t, Config{Spec: spec, Job: job(t, mb, 4)})
		if p.ResponseTime <= prev {
			t.Fatalf("response not increasing at %v MB: %v <= %v", mb, p.ResponseTime, prev)
		}
		prev = p.ResponseTime
	}
}

func TestPredictDecreasesWithNodes(t *testing.T) {
	// Fig 10/12 shape: more nodes, faster jobs (reducers scale with nodes).
	prev := 1e18
	for _, n := range []int{4, 6, 8} {
		p := predict(t, Config{Spec: cluster.Default(n), Job: job(t, 5*1024, n)})
		if p.ResponseTime >= prev {
			t.Fatalf("response not decreasing at %d nodes: %v >= %v", n, p.ResponseTime, prev)
		}
		prev = p.ResponseTime
	}
}

func TestPredictGrowsWithConcurrentJobs(t *testing.T) {
	// Fig 14 shape: more concurrent jobs, slower each job.
	spec := cluster.Default(4)
	j := job(t, 5*1024, 4)
	prev := 0.0
	for n := 1; n <= 4; n++ {
		p := predict(t, Config{Spec: spec, Job: j, NumJobs: n})
		if p.ResponseTime <= prev {
			t.Fatalf("response not increasing at %d jobs: %v <= %v", n, p.ResponseTime, prev)
		}
		prev = p.ResponseTime
	}
}

func TestEstimatorOrdering(t *testing.T) {
	// In the calibrated configuration the Tripathi estimator always
	// overestimates more than fork/join (the paper's ranking), and the
	// literal 3/2 rule dominates both.
	for _, mb := range []float64{1024, 5120} {
		for _, nodes := range []int{4, 8} {
			spec := cluster.Default(nodes)
			j := job(t, mb, nodes)
			fj := predict(t, Config{Spec: spec, Job: j, Estimator: EstimatorForkJoin})
			tp := predict(t, Config{Spec: spec, Job: j, Estimator: EstimatorTripathi})
			lit := predict(t, Config{Spec: spec, Job: j, Estimator: EstimatorPaperLiteral})
			if fj.ResponseTime >= tp.ResponseTime {
				t.Errorf("%vMB/%dn: fork/join %v >= tripathi %v", mb, nodes, fj.ResponseTime, tp.ResponseTime)
			}
			if lit.ResponseTime <= fj.ResponseTime {
				t.Errorf("%vMB/%dn: literal %v <= fork/join %v", mb, nodes, lit.ResponseTime, fj.ResponseTime)
			}
		}
	}
}

func TestHistoryOverridesInitialization(t *testing.T) {
	spec := cluster.Default(4)
	j := job(t, 1024, 4)
	base := predict(t, Config{Spec: spec, Job: j})
	// Doubling the map demand through history must slow the prediction.
	md := j.MapDemands(j.BlockSizeMB, spec.DiskMBps)
	hist := map[timeline.Class]ClassStats{
		timeline.ClassMap: {MeanCPU: md.CPU * 2, MeanDisk: md.Disk * 2, MeanResponse: md.Total() * 2},
	}
	slow := predict(t, Config{Spec: spec, Job: j, History: hist})
	if slow.ResponseTime <= base.ResponseTime {
		t.Errorf("history with doubled map demand: %v <= base %v", slow.ResponseTime, base.ResponseTime)
	}
	// Raising the leaf CV raises the fork/join estimate.
	loCV := predict(t, Config{Spec: spec, Job: j, History: map[timeline.Class]ClassStats{
		timeline.ClassMap:         {CV: 0.02},
		timeline.ClassShuffleSort: {CV: 0.02},
		timeline.ClassMerge:       {CV: 0.02},
	}})
	hiCV := predict(t, Config{Spec: spec, Job: j, History: map[timeline.Class]ClassStats{
		timeline.ClassMap:         {CV: 0.4},
		timeline.ClassShuffleSort: {CV: 0.4},
		timeline.ClassMerge:       {CV: 0.4},
	}})
	if hiCV.ResponseTime <= loCV.ResponseTime {
		t.Errorf("higher leaf CV did not raise the estimate: %v <= %v", hiCV.ResponseTime, loCV.ResponseTime)
	}
}

func TestClassResponsesPopulated(t *testing.T) {
	p := predict(t, Config{Spec: cluster.Default(4), Job: job(t, 1024, 4)})
	for _, cls := range []timeline.Class{timeline.ClassMap, timeline.ClassShuffleSort, timeline.ClassMerge} {
		if p.ClassResponse[cls] <= 0 {
			t.Errorf("class %s response = %v", cls, p.ClassResponse[cls])
		}
	}
	// Map class response can't be below the uncontended map demand.
	spec := cluster.Default(4)
	j := job(t, 1024, 4)
	if p.ClassResponse[timeline.ClassMap] < j.MapDemands(j.BlockSizeMB, spec.DiskMBps).Total()-1e-6 {
		t.Error("map class response below demand")
	}
}

func TestSlowStartShortensJob(t *testing.T) {
	spec := cluster.Default(4)
	withSS := job(t, 5*1024, 4)
	noSS := withSS
	noSS.SlowStart = false
	a := predict(t, Config{Spec: spec, Job: withSS})
	b := predict(t, Config{Spec: spec, Job: noSS})
	if a.ResponseTime > b.ResponseTime+1e-9 {
		t.Errorf("slow start (%v) slower than no slow start (%v)", a.ResponseTime, b.ResponseTime)
	}
}

func TestEpsilonAndIterationDefaults(t *testing.T) {
	cfg := Config{}
	cfg.applyDefaults()
	if cfg.Epsilon != DefaultEpsilon || cfg.MaxIterations != DefaultMaxIterations {
		t.Errorf("defaults = %+v", cfg)
	}
	if cfg.NumJobs != 1 || cfg.TripathiCVFloor != DefaultTripathiCVFloor || cfg.PAttenuation != DefaultPAttenuation {
		t.Errorf("defaults = %+v", cfg)
	}
}

func TestEstimatorString(t *testing.T) {
	if EstimatorForkJoin.String() != "fork/join" ||
		EstimatorTripathi.String() != "tripathi" ||
		EstimatorPaperLiteral.String() != "paper-literal" {
		t.Error("estimator strings wrong")
	}
}

func TestTinyJobSingleMap(t *testing.T) {
	// 100 MB -> a single (short) map task; the model must handle m=1, r=1.
	j, err := workload.NewJob(0, 100, 128, 1, workload.WordCount())
	if err != nil {
		t.Fatal(err)
	}
	p := predict(t, Config{Spec: cluster.Default(2), Job: j})
	if p.ResponseTime <= 0 || !p.Converged {
		t.Errorf("tiny job: %+v", p)
	}
	if p.Tree.NumLeaves() != 3 { // 1 map + shuffle-sort + merge
		t.Errorf("leaves = %d", p.Tree.NumLeaves())
	}
}

func TestManyJobsSlotDivision(t *testing.T) {
	// With more jobs than per-node slots the per-job share floors at one
	// lane per node; the prediction must still converge.
	p := predict(t, Config{Spec: cluster.Default(2), Job: job(t, 1024, 2), NumJobs: 32})
	if p.ResponseTime <= 0 {
		t.Errorf("response = %v", p.ResponseTime)
	}
}
