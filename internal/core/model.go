// Package core implements the paper's MapReduce performance model for
// Hadoop 2.x: the modified Mean Value Analysis algorithm of §4.2 (activities
// A1–A6).
//
// Given a cluster specification, a job description and the number of
// concurrent jobs, the model iterates:
//
//	A1  initialize task residence and response times (history trace or the
//	    Herodotou static model);
//	A2  build the timeline (Algorithm 1) from current response times;
//	A3  build the precedence tree from the timeline;
//	A4  compute intra-job (α) and inter-job (β) overlap factors;
//	A5  run the overlap-weighted MVA step to re-estimate task response
//	    times under queueing at the CPU&Memory and Network centers;
//	A6  estimate the job response time from the tree (Tripathi-based or
//	    fork/join-based) and test convergence (ε = 1e-7).
package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"hadoop2perf/internal/cluster"
	"hadoop2perf/internal/dist"
	"hadoop2perf/internal/fault"
	"hadoop2perf/internal/mva"
	"hadoop2perf/internal/ptree"
	"hadoop2perf/internal/timeline"
	"hadoop2perf/internal/workload"
)

// Estimator selects the job-level response-time estimation over the
// precedence tree (§4.2.4).
type Estimator int

// Estimators.
const (
	// EstimatorForkJoin is the paper's fork/join-based approach with the H₂
	// inflation attenuated by the node's coefficient of variation (see
	// DESIGN.md): R_P = max(T_l,T_r)·(1+(H₂−1)·cv). For exponential children
	// (cv=1) this equals the paper's literal 3/2·max rule.
	EstimatorForkJoin Estimator = iota
	// EstimatorTripathi fits Erlang/Hyperexponential distributions per child
	// and propagates max/sum moments numerically.
	EstimatorTripathi
	// EstimatorPaperLiteral applies R_P = 3/2·max(T_l,T_r) verbatim.
	EstimatorPaperLiteral
)

func (e Estimator) String() string {
	switch e {
	case EstimatorForkJoin:
		return "fork/join"
	case EstimatorTripathi:
		return "tripathi"
	default:
		return "paper-literal"
	}
}

// ParseEstimator is the inverse of String. The empty string selects the
// fork/join default; "forkjoin" is accepted as a URL-friendly alias.
func ParseEstimator(s string) (Estimator, error) {
	switch s {
	case "", "fork/join", "forkjoin":
		return EstimatorForkJoin, nil
	case "tripathi":
		return EstimatorTripathi, nil
	case "paper-literal":
		return EstimatorPaperLiteral, nil
	}
	return 0, fmt.Errorf("core: unknown estimator %q (want \"fork/join\", \"tripathi\" or \"paper-literal\")", s)
}

// MarshalText serializes the estimator by its stable name (JSON wire
// format, canonical cache keys).
func (e Estimator) MarshalText() ([]byte, error) {
	switch e {
	case EstimatorForkJoin, EstimatorTripathi, EstimatorPaperLiteral:
		return []byte(e.String()), nil
	}
	return nil, fmt.Errorf("core: invalid estimator %d", int(e))
}

// UnmarshalText parses the stable estimator name.
func (e *Estimator) UnmarshalText(b []byte) error {
	est, err := ParseEstimator(string(b))
	if err != nil {
		return err
	}
	*e = est
	return nil
}

// Defaults for Config fields left zero.
const (
	DefaultEpsilon         = 1e-7
	DefaultMaxIterations   = 200
	DefaultTripathiCVFloor = 0.15
	// DefaultPAttenuation: see Config.PAttenuation.
	DefaultPAttenuation = 0.85
	// DefaultLeafCV is used when no history trace supplies per-class CVs; it
	// reflects task-time dispersion of a lightly-jittered Hadoop task.
	DefaultLeafCV = 0.12
	// DefaultDamping blends successive class-response estimates to stabilize
	// the outer fixed point: next = Damping·prev + (1−Damping)·new.
	DefaultDamping = 0.5
)

// ClassStats carries per-class initialization data.
type ClassStats struct {
	// MeanCPU, MeanDisk and MeanNetwork are service demands at the centers.
	MeanCPU     float64
	MeanDisk    float64
	MeanNetwork float64
	// MeanResponse seeds the iteration (0 = derive from demands).
	MeanResponse float64
	// CV is the leaf coefficient of variation (0 = DefaultLeafCV).
	CV float64
}

// Config drives one prediction.
type Config struct {
	Spec cluster.Spec
	Job  workload.Job
	// NumJobs is the number of statistically identical jobs executing
	// concurrently (N of the closed network). Minimum 1.
	NumJobs int
	// Estimator selects the tree estimator; default fork/join.
	Estimator Estimator
	// Epsilon is the convergence threshold on the job response time
	// (default 1e-7, the paper's recommended value). Zero selects the
	// default; negative values are rejected.
	Epsilon float64
	// MaxIterations bounds the outer loop (default 200).
	MaxIterations int
	// Damping is the weight of the *previous* iterate in the outer
	// class-response update (next = Damping·prev + (1−Damping)·new). Zero
	// selects DefaultDamping (0.5); values outside (0, 1] are rejected, so
	// acceleration experiments can sweep it without recompiling.
	Damping float64
	// ColdStart forces the cold A1 initialization even on the warm-start
	// paths (PredictWarm, PredictBatch): with it set, every evaluation is
	// bit-identical to a plain Predict call.
	ColdStart bool
	// AccelerateOuter enables safeguarded Aitken Δ² extrapolation of the
	// outer damped class-response iteration (on any path, cold or warm) —
	// the contended regime's dozens of outer rounds collapse to a handful.
	// The accelerated trajectory converges to the same fixed point but may
	// stop within ~1e-5 relative of the plain path's answer (the ε-test's
	// own resolution on slow tails), which is why it is an explicit opt-in
	// rather than part of the 1e-6-contracted warm default.
	AccelerateOuter bool
	// TripathiCVFloor floors leaf CVs for the Tripathi estimator, which
	// assumes exponential-family task times (default 0.15).
	TripathiCVFloor float64
	// PAttenuation is the per-level CV attenuation of the fork/join P rule:
	// the max of two variables disperses less than its inputs, so each
	// synchronization level carries cv*PAttenuation upward. 1 means no
	// attenuation (error grows linearly with P-depth); values below 1 bound
	// the compounding. Default 0.85.
	PAttenuation float64
	// History optionally initializes per-class demands, responses and CVs
	// from a parsed job-history trace (§4.2.1, first approach). When nil, the
	// Herodotou static model provides initialization (second approach).
	History map[timeline.Class]ClassStats
	// Faults optionally applies the analytic effective-demand correction for
	// a fault scenario (internal/fault): per-class demands inflate by the
	// expected rework, lost capacity and straggler factors, and class CVs
	// widen by the straggler mixture's dispersion — calibrated against the
	// fault-injecting simulator (fault_test.go). Nil, and an all-zero plan
	// over a spec without revocation hazards, leave every prediction
	// bit-identical to the fault-free model.
	Faults *fault.Plan
}

func (c *Config) applyDefaults() {
	if c.NumJobs <= 0 {
		c.NumJobs = 1
	}
	if c.Epsilon <= 0 {
		c.Epsilon = DefaultEpsilon
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = DefaultMaxIterations
	}
	if c.TripathiCVFloor <= 0 {
		c.TripathiCVFloor = DefaultTripathiCVFloor
	}
	if c.PAttenuation <= 0 {
		c.PAttenuation = DefaultPAttenuation
	}
	if c.Damping <= 0 {
		c.Damping = DefaultDamping
	}
}

// validateTuning rejects out-of-range convergence knobs before the zero
// values are replaced by defaults.
func (c *Config) validateTuning() error {
	if c.Damping < 0 || c.Damping > 1 {
		return fmt.Errorf("core: damping %v outside (0, 1]", c.Damping)
	}
	if c.Epsilon < 0 {
		return fmt.Errorf("core: epsilon %v must be positive", c.Epsilon)
	}
	return nil
}

// Prediction is the model output.
type Prediction struct {
	// ResponseTime is the estimated average job response time (seconds),
	// including ApplicationMaster startup.
	ResponseTime float64
	// Iterations used by the outer loop; Converged reports whether the
	// ε-test passed before MaxIterations.
	Iterations int
	Converged  bool
	// InnerIterations is the total number of MVA fixed-point sweeps across
	// all outer iterations — with Iterations, the observable cost of the
	// prediction (surfaced by the service's /v1/metrics).
	InnerIterations int
	// WarmStarted reports whether this prediction was seeded from a
	// previously converged neighbor (PredictWarm) instead of the cold A1
	// initialization.
	WarmStarted bool
	// ClassResponse is the final per-class mean task response time.
	ClassResponse map[timeline.Class]float64
	// Timeline and Tree are the final iteration's artifacts (inspection,
	// visualization, tests).
	Timeline *timeline.Timeline
	Tree     *ptree.Node
}

// classData is the per-class working state of the iteration.
type classData struct {
	demCPU     float64
	demDisk    float64
	demNetwork float64
	response   float64
	cv         float64
}

func (c *classData) demandTotal() float64 { return c.demCPU + c.demDisk + c.demNetwork }

// Predictor is a reusable, allocation-lean model evaluator: the O(T²)
// overlap matrices, the MVA solver scratch, the timeline inputs and the
// per-iteration lookup tables live on the Predictor and are recycled across
// iterations and across predictions, so evaluating many configurations —
// the planner's node-axis sweeps, batched figure reproduction — stops
// churning the garbage collector.
//
// A Predictor is not safe for concurrent use; pool Predictors (one per
// worker) to serve parallel predictions. Results are bit-identical to the
// one-shot Predict.
type Predictor struct {
	solver mva.OverlapSolver

	// hw is the hardware-class view of the current prediction's cluster.
	hw hwView

	// Overlap-factor matrices: 2 (alpha, beta) × numCenters layers of n×n,
	// views over one flat backing array, rebuilt only when the task count or
	// the center count changes.
	ovFlat      []float64
	alpha, beta [][][]float64
	ovN, ovC    int

	// Per-task MVA demands, flat-backed with a numCenters stride.
	demands []mva.TaskDemand
	demFlat []float64
	demC    int

	// Algorithm-1 inputs (timeline.Build copies them; safe to reuse).
	maps       []timeline.MapTask
	reduces    []timeline.ReduceTask
	mapSlotsBy []int
	redSlotsBy []int
	mapScale   []float64
	redScale   []float64

	// Center service multiplicities, rebuilt per prediction.
	servers []float64

	// Per-iteration lookup tables, cleared instead of reallocated. Lanes are
	// resolved to dense indices once per round (laneWindows); the factor
	// loops index laneOf/laneWins instead of hashing per pair.
	lanes    map[laneKey]int
	laneOf   []int
	laneWins []laneWindow
	respOf   map[classTask]float64

	// Warm-start state (warm.go): a small pool of converged solutions
	// PredictWarm seeds from, scratch for viewing a pooled flat residence
	// matrix as solver rows, and the final MVA step of the last prediction
	// (aliases solver scratch; consumed by PredictWarm's recorder).
	warm     warmPool
	seedRows [][]float64
	lastStep mva.OverlapResult

	// Lane-lockstep batch state (batch.go): the shared lane-packed MVA
	// solver and the recycled per-lane scratch Predictors.
	bsolver  mva.BatchOverlapSolver
	laneFree []*Predictor

	// infl is the fault effective-demand correction of the current
	// prediction (the identity without a fault scenario).
	infl fault.Inflation
}

// hwView is the per-prediction hardware resolution of a cluster spec: the
// class table, the node→class map, per-class container capacities, the
// co-location weights of the inter-job overlap factors and the service
// centers of the queueing network. Heterogeneous clusters get one CPU and
// one Disk center *per hardware class* (each modeling a representative node
// of that class, the way the paper's single CPU&Memory center models one of
// N identical nodes) plus the shared Network center; a flat spec reduces to
// the paper's three centers.
type hwView struct {
	classes []cluster.NodeClass
	nodes   int
	// Per-class container capacities (pMaxMapsPerNode / pMaxReducePerNode of
	// §4.3, undivided by the job count).
	mapsPer, redsPer []int
	// classOf maps a node ID to its class index.
	classOf []int
	// invWMap / invWRed are the inverse co-location weights of the beta
	// matrices: totalPoolSlots / classPoolSlotsPerNode. The paper's uniform
	// 1/NumNodes co-location probability generalizes to class-proportional
	// placement — a node hosting a larger share of the container pool
	// receives proportionally more of the other job's tasks. For a flat spec
	// both reduce exactly to NumNodes.
	invWMap, invWRed []float64
	// avgDisk / avgNet are count-weighted harmonic-mean bandwidths and
	// avgInvSpeed the count-weighted mean inverse compute speed, used to seed
	// the class-aggregate working state. For a single class they are exactly
	// the class values.
	avgDisk, avgNet, avgInvSpeed float64
	// nc is the center count: 2 per class + the shared network.
	nc int
}

func (h *hwView) cpuCenter(cls int) int  { return 2 * cls }
func (h *hwView) diskCenter(cls int) int { return 2*cls + 1 }
func (h *hwView) netCenter() int         { return 2 * len(h.classes) }

// init resolves the spec into the view, reusing slice capacity.
func (h *hwView) init(spec cluster.Spec) {
	h.classes = spec.ClassView()
	h.nodes = spec.TotalNodes()
	k := len(h.classes)
	h.nc = 2*k + 1
	h.mapsPer = resizeInts(h.mapsPer, k)
	h.redsPer = resizeInts(h.redsPer, k)
	h.invWMap = resizeFloats(h.invWMap, k)
	h.invWRed = resizeFloats(h.invWRed, k)
	h.classOf = resizeInts(h.classOf, h.nodes)

	totalMaps, totalReds := 0, 0
	node := 0
	for i, c := range h.classes {
		h.mapsPer[i] = spec.MaxMapsOf(c)
		h.redsPer[i] = spec.MaxReducesOf(c)
		totalMaps += c.Count * h.mapsPer[i]
		totalReds += c.Count * h.redsPer[i]
		for n := 0; n < c.Count; n++ {
			h.classOf[node] = i
			node++
		}
	}
	for i := range h.classes {
		h.invWMap[i] = float64(totalMaps) / float64(h.mapsPer[i])
		h.invWRed[i] = float64(totalReds) / float64(h.redsPer[i])
	}

	h.avgDisk = spec.MeanDiskMBps()
	h.avgNet = spec.MeanNetworkMBps()
	h.avgInvSpeed = spec.MeanInvSpeed()
}

// servers fills buf with the center multiplicities: cores and disks of a
// node per class, then the network fabric width (bisection grows with the
// total node count, matching the cluster substrate).
func (h *hwView) servers(buf []float64) []float64 {
	buf = buf[:0]
	for _, c := range h.classes {
		buf = append(buf, float64(c.CPUs), float64(c.Disks))
	}
	fabric := float64(h.nodes) / 2
	if fabric < 1 {
		fabric = 1
	}
	return append(buf, fabric)
}

func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func resizeFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// NewPredictor returns an empty Predictor; buffers grow on first use.
func NewPredictor() *Predictor { return &Predictor{} }

// Predict runs the model to convergence with a fresh evaluator.
func Predict(cfg Config) (Prediction, error) {
	var p Predictor
	return p.Predict(cfg)
}

// PredictContext is Predict honoring ctx: the outer fixed-point loop checks
// for cancellation between iterations, so a canceled request stops paying
// for convergence it no longer wants.
func PredictContext(ctx context.Context, cfg Config) (Prediction, error) {
	var p Predictor
	return p.PredictContext(ctx, cfg)
}

// PredictBatch evaluates a batch of configurations through one shared
// evaluator: entries are warm-started from their nearest already-solved
// neighbor and — beyond a sequential pilot per warm-signature — advanced in
// lane-lockstep waves whose inner MVA fixed points share packed sweeps (see
// Predictor.PredictBatch). Results match per-config Predict calls within
// the warm-start tolerance (1e-6 relative, property-tested); set
// Config.ColdStart for bit-identical cold runs. The first failing config
// aborts the batch with its index wrapped in the error.
func PredictBatch(cfgs []Config) ([]Prediction, error) {
	return NewPredictor().PredictBatch(cfgs)
}

// Predict runs the model to convergence from the cold A1 initialization —
// the paper's algorithm verbatim, bit-stable across releases (pinned by the
// homogeneous-equivalence goldens). See PredictWarm for the accelerated
// warm-start path.
func (p *Predictor) Predict(cfg Config) (Prediction, error) {
	return p.predict(nil, cfg, nil, false)
}

// PredictContext is Predict honoring ctx between outer iterations (see the
// package-level PredictContext).
func (p *Predictor) PredictContext(ctx context.Context, cfg Config) (Prediction, error) {
	return p.predict(ctx, cfg, nil, false)
}

// predict runs the model to convergence. A non-nil seed warm-starts the
// first MVA step from a previously converged neighbor's residence matrix;
// fast additionally chains the inner MVA state across outer iterations and
// enables inner Aitken acceleration. The *outer* class-response trajectory
// is deliberately never seeded from a neighbor: the timeline's discrete
// placement gives the outer fixed point multiple self-consistent basins,
// and seeding across a parity boundary was observed to land in the
// neighbor's basin (tens of percent off the cold answer). Inner seeding is
// basin-safe — the overlap fixed point is a smooth contraction solved to
// 1e-10, so the outer trajectory tracks the cold one bit-for-bit up to
// inner-tolerance noise. With seed == nil and fast == false the iteration
// is exactly the historical cold path; cfg.AccelerateOuter opts either
// path into outer Aitken extrapolation. A non-nil ctx is checked between
// outer iterations — cancellation costs at most one more round; nil skips
// the check so un-contexted callers pay nothing.
func (p *Predictor) predict(ctx context.Context, cfg Config, seed *warmEntry, fast bool) (Prediction, error) {
	cfg, classes, err := p.beginPredict(cfg)
	if err != nil {
		return Prediction{}, err
	}

	prevTotal := math.Inf(1)
	var (
		tl   *timeline.Timeline
		tree *ptree.Node
		warm [][]float64 // inner warm seed for the next MVA step
		acc  outerAccel
	)
	pred := Prediction{ClassResponse: map[timeline.Class]float64{}}

	for iter := 1; iter <= cfg.MaxIterations; iter++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return Prediction{}, err
			}
		}
		var in mva.OverlapInput
		tl, tree, in, err = p.roundArtifacts(cfg, classes, warm, fast)
		if err != nil {
			return Prediction{}, err
		}
		if iter == 1 && seed != nil {
			warm = p.warmResidenceRows(seed, len(tl.Tasks), p.hw.nc)
			in.Warm = warm
			pred.WarmStarted = warm != nil
		}
		// A5: overlap-weighted MVA step.
		step, err := p.solver.Step(in)
		if err != nil {
			return Prediction{}, err
		}
		pred.InnerIterations += step.Iterations
		// Retain the latest MVA state for warm-start recording (PredictWarm);
		// the matrices alias solver scratch, valid until the next Step.
		p.lastStep = step
		if fast {
			// Chain the inner fixed point: the next outer iteration's MVA
			// step starts from this one's converged residence (the demands
			// and overlaps move only as far as the damped class responses
			// do, so the old solution is a near-answer).
			warm = step.Residence
		}
		done, err := p.roundFold(cfg, classes, tl, tree, step.Response, iter, &prevTotal, &acc, &pred)
		if err != nil {
			return Prediction{}, err
		}
		if done {
			break
		}
	}
	for cls, cd := range classes {
		pred.ClassResponse[cls] = cd.response
	}
	pred.Timeline = tl
	pred.Tree = tree
	return pred, nil
}

// beginPredict validates and normalizes a configuration and initializes the
// per-run hardware view, fault inflation and class working state — the
// prologue shared by the scalar outer loop and the lane-lockstep batch
// (batch.go). The returned Config has defaults applied.
func (p *Predictor) beginPredict(cfg Config) (Config, map[timeline.Class]*classData, error) {
	if err := cfg.validateTuning(); err != nil {
		return cfg, nil, err
	}
	cfg.applyDefaults()
	if err := cfg.Spec.Validate(); err != nil {
		return cfg, nil, err
	}
	if err := cfg.Job.Validate(); err != nil {
		return cfg, nil, err
	}
	if cfg.Job.NumMaps() == 0 {
		return cfg, nil, errors.New("core: job has no map tasks")
	}
	if err := cfg.Faults.Validate(); err != nil {
		return cfg, nil, err
	}
	p.hw.init(cfg.Spec)
	p.infl = faultFactors(cfg, &p.hw)
	return cfg, initialize(cfg, &p.hw, p.infl), nil
}

// roundArtifacts runs one outer round's A2–A4 stages — timeline, precedence
// tree, overlap factors, per-task demands, service centers — and assembles
// the overlap-MVA input (A5's operand) for the current class responses. The
// input's matrices alias Predictor scratch, valid until the next round.
func (p *Predictor) roundArtifacts(cfg Config, classes map[timeline.Class]*classData, warm [][]float64, fast bool) (*timeline.Timeline, *ptree.Node, mva.OverlapInput, error) {
	// A2: timeline from current class response times.
	tl, err := p.buildTimeline(cfg, classes)
	if err != nil {
		return nil, nil, mva.OverlapInput{}, err
	}
	// A3: precedence tree.
	tree, err := ptree.Build(tl)
	if err != nil {
		return nil, nil, mva.OverlapInput{}, err
	}
	// A4: overlap factors.
	alpha, beta := p.overlapFactors(tl)
	taskDemands := p.demandsFor(cfg, tl, classes)
	p.servers = p.hw.servers(p.servers)
	return tl, tree, mva.OverlapInput{
		Tasks:      taskDemands,
		Alpha:      alpha,
		Beta:       beta,
		Servers:    p.servers,
		OtherJobs:  cfg.NumJobs - 1,
		Warm:       warm,
		Accelerate: fast,
	}, nil
}

// roundFold folds one solved MVA step back into the outer state: per-class
// damped response update, the A6 tree estimate, the convergence test and
// the optional outer Aitken observation. It reports whether the outer fixed
// point just converged (pred.Converged is set alongside).
func (p *Predictor) roundFold(cfg Config, classes map[timeline.Class]*classData, tl *timeline.Timeline, tree *ptree.Node, taskResp []float64, iter int, prevTotal *float64, acc *outerAccel, pred *Prediction) (bool, error) {
	// Aggregate per class with damping.
	var newResp [numClasses]float64
	classMeans(tl, taskResp, &newResp)
	for cls, cd := range classes {
		nr := newResp[cls]
		if nr <= 0 {
			continue
		}
		cd.response = cfg.Damping*cd.response + (1-cfg.Damping)*nr
		classes[cls] = cd
	}
	// A6: job response from the tree + convergence test.
	total, err := p.estimate(cfg, tree, tl, taskResp, classes)
	if err != nil {
		return false, err
	}
	total += cfg.Job.Profile.AMStartup
	pred.Iterations = iter
	pred.ResponseTime = total
	if math.Abs(total-*prevTotal) <= cfg.Epsilon && !acc.justExtrapolated {
		pred.Converged = true
		return true, nil
	}
	*prevTotal = total
	if cfg.AccelerateOuter {
		acc.observe(classes)
	}
	return false, nil
}

// schedulingLatency is the per-container YARN control-loop cost the model
// charges on top of the workload demand: one AM->RM ask heartbeat plus one
// allocation-delivery heartbeat (0.25 s each in the substrate cluster).
const schedulingLatency = 0.5

// initialize implements A1: class demands from the workload's cost functions
// (or history), and initial responses from the Herodotou-style static view
// (all resources to maps, then to reduces ⇒ response = uncontended demand).
// Heterogeneous clusters seed the class aggregates with the count-weighted
// average hardware; the MVA step then re-prices each placed task against its
// node's actual class (demandsFor). A fault scenario scales each class's
// demand vector by its effective-demand factor and widens the class CVs by
// the straggler mixture's dispersion; the identity correction changes no
// bits.
func initialize(cfg Config, h *hwView, infl fault.Inflation) map[timeline.Class]*classData {
	md := cfg.Job.MapDemands(cfg.Job.BlockSizeMB, h.avgDisk)
	ss := cfg.Job.ShuffleSortDemands(h.avgNet, h.avgDisk)
	mg := cfg.Job.MergeDemands(h.avgDisk)
	classes := map[timeline.Class]*classData{
		timeline.ClassMap:         {demCPU: md.CPU*h.avgInvSpeed + schedulingLatency, demDisk: md.Disk, demNetwork: md.Network},
		timeline.ClassShuffleSort: {demCPU: ss.CPU*h.avgInvSpeed + schedulingLatency, demDisk: ss.Disk, demNetwork: ss.Network},
		timeline.ClassMerge:       {demCPU: mg.CPU * h.avgInvSpeed, demDisk: mg.Disk, demNetwork: mg.Network},
	}
	for cls, cd := range classes {
		if h, ok := cfg.History[cls]; ok {
			if h.MeanCPU > 0 {
				cd.demCPU = h.MeanCPU
				cd.demDisk = h.MeanDisk
				cd.demNetwork = h.MeanNetwork
			}
			if h.MeanResponse > 0 {
				cd.response = h.MeanResponse
			}
			if h.CV > 0 {
				cd.cv = h.CV
			}
		}
		f := classFactor(infl, cls)
		cd.demCPU *= f
		cd.demDisk *= f
		cd.demNetwork *= f
		if cd.response <= 0 {
			cd.response = cd.demandTotal()
		}
		if cd.cv <= 0 {
			cd.cv = leafCVFor(cfg, cls)
		}
		if infl.FactorCV > 0 {
			// Variance of a product of independent factors:
			// 1+cv'² = (1+cv²)(1+cv_f²).
			cd.cv = math.Sqrt((1+cd.cv*cd.cv)*(1+infl.FactorCV*infl.FactorCV) - 1)
		}
		classes[cls] = cd
	}
	return classes
}

// classFactor maps a task class to its effective-demand inflation factor.
func classFactor(infl fault.Inflation, cls timeline.Class) float64 {
	switch cls {
	case timeline.ClassShuffleSort:
		return infl.ShuffleSort
	case timeline.ClassMerge:
		return infl.Merge
	default:
		return infl.Map
	}
}

// faultFactors sizes the per-class fault exposure from the uncorrected
// static demands and returns the plan's effective-demand inflation (the
// identity when no fault scenario is active, so the fault-free model stays
// bit-exact).
func faultFactors(cfg Config, h *hwView) fault.Inflation {
	if !fault.Active(cfg.Faults, cfg.Spec) {
		return fault.None()
	}
	md := cfg.Job.MapDemands(cfg.Job.BlockSizeMB, h.avgDisk)
	ss := cfg.Job.ShuffleSortDemands(h.avgNet, h.avgDisk)
	mg := cfg.Job.MergeDemands(h.avgDisk)
	expMap := md.CPU*h.avgInvSpeed + schedulingLatency + md.Disk + md.Network
	expRed := ss.CPU*h.avgInvSpeed + schedulingLatency + ss.Disk + ss.Network +
		mg.CPU*h.avgInvSpeed + mg.Disk + mg.Network
	slots := 0
	for i, c := range h.classes {
		slots += c.Count * h.mapsPer[i]
	}
	waves := 1.0
	if slots > 0 {
		waves = math.Ceil(float64(cfg.Job.NumMaps()) / float64(slots))
	}
	return fault.Inflate(cfg.Faults, cfg.Spec, fault.Exposure{
		Map:     expMap,
		Reduce:  expRed,
		Horizon: waves*expMap + expRed,
	})
}

func leafCVFor(cfg Config, cls timeline.Class) float64 {
	cv := cfg.Job.Profile.TaskJitterCV
	if cv <= 0 {
		return DefaultLeafCV
	}
	// Shuffle-sort aggregates many fetches with independent jitter plus
	// pipeline variability; keep the class CV at the jitter level. Maps and
	// merges are single work units.
	return cv
}

// buildTimeline converts class responses into Algorithm 1 inputs. The
// shuffle-sort response is split into a node-local base and a network share
// that Algorithm 1 redistributes per remote map (sd/|R|). The input slices
// are predictor-owned scratch: timeline.Build copies what it keeps.
func (p *Predictor) buildTimeline(cfg Config, classes map[timeline.Class]*classData) (*timeline.Timeline, error) {
	m := cfg.Job.NumMaps()
	r := cfg.Job.NumReduces
	mapResp := classes[timeline.ClassMap].response
	ssResp := classes[timeline.ClassShuffleSort].response
	mgResp := classes[timeline.ClassMerge].response

	ssd := classes[timeline.ClassShuffleSort]
	netFrac := 0.0
	if tot := ssd.demandTotal(); tot > 0 {
		netFrac = ssd.demNetwork / tot
	}
	ssBase := ssResp * (1 - netFrac)
	// Each map's shuffle contribution: if every map were remote the shares
	// would reassemble the full network part of the shuffle-sort response.
	sd := 0.0
	if m > 0 {
		sd = ssResp * netFrac * float64(r) / float64(m)
	}

	// With N identical concurrent jobs the root queue's fair ordering gives
	// each job ~1/N of the container capacity; the per-job timeline is built
	// over that share (at least one lane per node). Each node's lane count
	// comes from its hardware class — bigger nodes host more lanes.
	hw := &p.hw
	p.mapSlotsBy = resizeInts(p.mapSlotsBy, hw.nodes)
	p.redSlotsBy = resizeInts(p.redSlotsBy, hw.nodes)
	for n := 0; n < hw.nodes; n++ {
		cls := hw.classOf[n]
		ms := hw.mapsPer[cls] / cfg.NumJobs
		if ms < 1 {
			ms = 1
		}
		rs := hw.redsPer[cls] / cfg.NumJobs
		if rs < 1 {
			rs = 1
		}
		p.mapSlotsBy[n] = ms
		p.redSlotsBy[n] = rs
	}
	p.maps = p.maps[:0]
	p.reduces = p.reduces[:0]
	for i := 0; i < m; i++ {
		p.maps = append(p.maps, timeline.MapTask{ID: i, Duration: mapResp, ShuffleDuration: sd})
	}
	for i := 0; i < r; i++ {
		p.reduces = append(p.reduces, timeline.ReduceTask{
			ID: i, ShuffleSortBase: ssBase, MergeDuration: mgResp,
		})
	}
	in := timeline.Input{
		NumNodes:          hw.nodes,
		MapSlotsByNode:    p.mapSlotsBy,
		ReduceSlotsByNode: p.redSlotsBy,
		Maps:              p.maps,
		Reduces:           p.reduces,
		SlowStart:         cfg.Job.SlowStart,
	}
	in.MapDurationScaleByNode, in.ReduceDurationScaleByNode = p.durationScales(cfg, classes)
	return timeline.Build(in)
}

// durationScales derives Algorithm 1's per-node duration-scale vectors for
// heterogeneous clusters: the class-aggregate durations the timeline places
// are stretched (or shrunk) on each node by the ratio of that node's class
// demand to the cluster-average demand, so faster nodes free containers
// earlier and absorb more tasks — the placement feedback the simulator's
// YARN scheduler exhibits. The reduce scale covers the node-local shuffle
// base and the merge; remote-shuffle shares ride the shared network
// unscaled.
//
// History-backed demands apply uniformly (a trace already embodies the
// hardware mix it was measured on), so history-covered phases carry scale
// 1; the gate is per phase group, so a partial profile (e.g. a map-only
// trace) keeps scaling the statically-initialized phases. Homogeneous
// clusters — and full histories — return nil vectors (the exact pre-class
// path).
func (p *Predictor) durationScales(cfg Config, classes map[timeline.Class]*classData) (mapScales, redScales []float64) {
	hw := &p.hw
	_, mapHist := cfg.History[timeline.ClassMap]
	_, ssHist := cfg.History[timeline.ClassShuffleSort]
	_, mgHist := cfg.History[timeline.ClassMerge]
	// The single reduce scale spans shuffle-sort and merge together; it only
	// applies when neither leg is pinned by measured history.
	scaleMaps := !mapHist
	scaleReds := !ssHist && !mgHist
	if (!scaleMaps && !scaleReds) || len(hw.classes) <= 1 {
		return nil, nil
	}
	mapCD := classes[timeline.ClassMap]
	ssCD := classes[timeline.ClassShuffleSort]
	mgCD := classes[timeline.ClassMerge]
	mapAvg := mapCD.demandTotal()
	redAvg := ssCD.demCPU + ssCD.demDisk + mgCD.demCPU + mgCD.demDisk // node-local parts
	p.mapScale = resizeFloats(p.mapScale, hw.nodes)
	p.redScale = resizeFloats(p.redScale, hw.nodes)
	lastCls := -1
	sm, sr := 1.0, 1.0
	for n := 0; n < hw.nodes; n++ {
		if cls := hw.classOf[n]; cls != lastCls {
			lastCls = cls
			c := hw.classes[cls]
			sp := c.SpeedFactor()
			if scaleMaps {
				md := cfg.Job.MapDemands(cfg.Job.BlockSizeMB, c.DiskMBps)
				// The class averages carry the fault inflation; scaling the
				// fresh per-class demand by the same factor keeps the ratio
				// purely hardware (×1.0 is bit-exact on the fault-free path).
				sm = (md.CPU/sp + schedulingLatency + md.Disk + md.Network) * p.infl.Map / mapAvg
			}
			if scaleReds {
				ss := cfg.Job.ShuffleSortDemands(c.NetworkMBps, c.DiskMBps)
				mg := cfg.Job.MergeDemands(c.DiskMBps)
				num := ss.CPU/sp + schedulingLatency + ss.Disk + mg.CPU/sp + mg.Disk
				if p.infl.ShuffleSort != 1 || p.infl.Merge != 1 {
					num = (ss.CPU/sp+schedulingLatency+ss.Disk)*p.infl.ShuffleSort +
						(mg.CPU/sp+mg.Disk)*p.infl.Merge
				}
				sr = num / redAvg
			}
		}
		p.mapScale[n] = sm
		p.redScale[n] = sr
	}
	return p.mapScale, p.redScale
}

// Centers of the queueing network. The paper groups CPU and disk into one
// "CPU&Memory" center but lists cpuPerNode and diskPerNode separately in
// Table 2; we keep CPU and Disk as distinct node-local multi-server centers
// plus the shared Network center. Heterogeneous clusters carry one CPU/Disk
// center pair per hardware class (hwView.cpuCenter/diskCenter/netCenter); a
// flat spec has exactly the paper's three centers in this order.
const (
	centerCPU     = 0
	centerDisk    = 1
	centerNetwork = 2
)

// numClasses is the paper's C = 3 (map, shuffle-sort, merge); the timeline
// class constants index arrays of this size.
const numClasses = 3

// overlapMatrices returns zeroed alpha/beta matrices for n tasks over nc
// centers, views over one predictor-owned flat backing so repeated
// iterations of the same shape allocate nothing.
func (p *Predictor) overlapMatrices(n, nc int) (alpha, beta [][][]float64) {
	need := 2 * nc * n * n
	if p.ovN != n || p.ovC != nc {
		p.ovN, p.ovC = n, nc
		if cap(p.ovFlat) < need {
			p.ovFlat = make([]float64, need)
		}
		p.ovFlat = p.ovFlat[:need]
		if cap(p.alpha) < nc {
			p.alpha = make([][][]float64, nc)
			p.beta = make([][][]float64, nc)
		}
		p.alpha = p.alpha[:nc]
		p.beta = p.beta[:nc]
		off := 0
		row := func() []float64 {
			r := p.ovFlat[off : off+n : off+n]
			off += n
			return r
		}
		for k := 0; k < nc; k++ {
			if cap(p.alpha[k]) < n {
				p.alpha[k] = make([][]float64, n)
				p.beta[k] = make([][]float64, n)
			}
			p.alpha[k] = p.alpha[k][:n]
			p.beta[k] = p.beta[k][:n]
			for i := 0; i < n; i++ {
				p.alpha[k][i] = row()
			}
			for i := 0; i < n; i++ {
				p.beta[k][i] = row()
			}
		}
	}
	clear(p.ovFlat)
	return p.alpha, p.beta
}

// overlapFactors computes α (intra-job) and β (inter-job) per center.
//
// α^k_ij is the fraction of task i's execution that overlaps task j's, masked
// by center visibility: the CPU&Memory center is per-node, so only
// co-located pairs contend; the Network center is shared by all.
//
// β^k_ij uses the aligned-identical-timelines approximation: the paper's
// multi-job experiments submit N statistically identical jobs together, so
// another job's copy of task j is active exactly when task j is (its
// timeline is a replica of this job's). β is therefore the same time-overlap
// as α — including j = i, whose twin in the other job fully overlaps — with
// class-proportional node co-location weights for the per-node centers: the
// other job's tasks spread over nodes in proportion to their share of the
// container pool, which for a flat spec reduces to the paper's uniform
// 1/numNodes.
func (p *Predictor) overlapFactors(tl *timeline.Timeline) (alpha, beta [][][]float64) {
	hw := &p.hw
	n := len(tl.Tasks)
	alpha, beta = p.overlapMatrices(n, hw.nc)
	laneOf, wins := p.laneWindows(tl)
	netC := hw.netCenter()
	for i := 0; i < n; i++ {
		ti := tl.Tasks[i]
		ci := hw.classOf[ti.Node]
		cpuC, diskC := hw.cpuCenter(ci), hw.diskCenter(ci)
		di := ti.Duration()
		li := laneOf[i]
		// The twin of task j draws its node from j's container pool; node(i)
		// hosts a pool share of slots(class(i))/totalSlots.
		invWMap, invWRed := hw.invWMap[ci], hw.invWRed[ci]
		aNet, bNet := alpha[netC][i], beta[netC][i]
		aCPU, aDisk := alpha[cpuC][i], alpha[diskC][i]
		bCPU, bDisk := beta[cpuC][i], beta[diskC][i]
		// The twin of task i in another job overlaps fully.
		bNet[i] = 1
		selfW := invWMap
		if ti.Class != timeline.ClassMap {
			selfW = invWRed
		}
		bCPU[i] = 1 / selfW
		bDisk[i] = 1 / selfW
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			tj := &tl.Tasks[j]
			ov := 0.0
			if di > 0 {
				lo, hi := ti.Start, ti.End
				if tj.Start > lo {
					lo = tj.Start
				}
				if tj.End < hi {
					hi = tj.End
				}
				if hi > lo {
					ov = (hi - lo) / di
				}
			}
			// Network: global center, pairwise transfer overlap — the same
			// α and β time-overlap (see the doc comment above).
			aNet[j] = ov
			invW := invWMap
			if tj.Class != timeline.ClassMap {
				invW = invWRed
			}
			bNet[j] = ov
			bCPU[j] = ov / invW
			bDisk[j] = ov / invW
			// CPU and Disk: per-node centers (task i contends at its own
			// class's center pair). Contention is assessed against the *lane*
			// hosting task j rather than j's exact interval: on the real
			// cluster a freed container is backfilled immediately, so a lane
			// stays busy wall-to-wall while work remains. Each lane counts
			// once, with its contention spread over its tasks in proportion
			// to their durations; same-lane tasks serialize and never
			// contend.
			if ti.Node == tj.Node {
				lj := laneOf[j]
				lov := ov
				if lj != li {
					if w := &wins[lj]; w.total > 0 && di > 0 {
						lov = timeline.Overlap(ti, w.placed) / di * (tj.Duration() / w.total)
					}
				} else {
					lov = 0
				}
				aCPU[j] = lov
				aDisk[j] = lov
			}
		}
	}
	return alpha, beta
}

// laneKey identifies one container lane: reduce subtasks (shuffle-sort and
// merge) share their reducer's lane; maps have their own lane pool.
type laneKey struct {
	mapPool bool
	node    int
	slot    int
}

// laneWindow is the busy envelope of one lane.
type laneWindow struct {
	placed timeline.Placed // envelope interval, reused for Overlap
	total  float64         // sum of task durations in the lane
}

// laneWindows resolves each task's container lane to a dense index and
// builds the per-lane busy envelopes. The map is only touched once per task
// here (ID assignment); the O(n²) factor loop above indexes slices — the
// n² map hashes of the historical per-pair laneOverlap lookups dominated
// the outer round's artifact cost once the MVA sweep itself got cheap.
func (p *Predictor) laneWindows(tl *timeline.Timeline) (laneOf []int, wins []laneWindow) {
	if p.lanes == nil {
		p.lanes = make(map[laneKey]int)
	}
	clear(p.lanes)
	p.laneOf = resizeInts(p.laneOf, len(tl.Tasks))
	p.laneWins = p.laneWins[:0]
	for i, t := range tl.Tasks {
		k := laneKey{mapPool: t.Class == timeline.ClassMap, node: t.Node, slot: t.Slot}
		id, ok := p.lanes[k]
		if !ok {
			id = len(p.laneWins)
			p.lanes[k] = id
			p.laneWins = append(p.laneWins, laneWindow{placed: t})
		} else {
			w := &p.laneWins[id]
			if t.Start < w.placed.Start {
				w.placed.Start = t.Start
			}
			if t.End > w.placed.End {
				w.placed.End = t.End
			}
		}
		p.laneWins[id].total += t.Duration()
		p.laneOf[i] = id
	}
	return p.laneOf, p.laneWins
}

// taskDemandOn prices one placed task against its node's hardware class:
// I/O demands use the class bandwidths and the CPU demand divides by the
// class compute speed. Map demands use the task's actual split size (the
// final split may be short). History-backed demands apply uniformly — a
// trace already embodies the hardware mix it was measured on — gated per
// class so a partial profile keeps class-pricing the phases it does not
// cover. infl scales the result by the class's fault effective-demand
// factor (history demands were already scaled in initialize).
func taskDemandOn(cfg Config, h *hwView, t timeline.Placed, classes map[timeline.Class]*classData, infl fault.Inflation) (cpu, disk, net float64) {
	if _, ok := cfg.History[t.Class]; ok {
		cd := classes[t.Class]
		return cd.demCPU, cd.demDisk, cd.demNetwork
	}
	c := h.classes[h.classOf[t.Node]]
	sp := c.SpeedFactor()
	f := classFactor(infl, t.Class)
	switch t.Class {
	case timeline.ClassMap:
		d := cfg.Job.MapDemands(cfg.Job.SplitMB(t.ID), c.DiskMBps)
		return (d.CPU/sp + schedulingLatency) * f, d.Disk * f, d.Network * f
	case timeline.ClassShuffleSort:
		d := cfg.Job.ShuffleSortDemands(c.NetworkMBps, c.DiskMBps)
		return (d.CPU/sp + schedulingLatency) * f, d.Disk * f, d.Network * f
	default:
		d := cfg.Job.MergeDemands(c.DiskMBps)
		return d.CPU / sp * f, d.Disk * f, d.Network * f
	}
}

// demandsFor maps placed tasks to center demands: each task's demand vector
// is zero except at its own class's CPU/Disk centers and the shared Network
// center. The returned slice is predictor-owned scratch, valid until the
// next call.
func (p *Predictor) demandsFor(cfg Config, tl *timeline.Timeline, classes map[timeline.Class]*classData) []mva.TaskDemand {
	hw := &p.hw
	n := len(tl.Tasks)
	nc := hw.nc
	if cap(p.demands) < n || cap(p.demFlat) < n*nc || p.demC != nc {
		if cap(p.demands) < n {
			p.demands = make([]mva.TaskDemand, n)
		}
		p.demands = p.demands[:cap(p.demands)]
		if cap(p.demFlat) < len(p.demands)*nc {
			p.demFlat = make([]float64, len(p.demands)*nc)
		}
		p.demC = nc
		for i := range p.demands {
			p.demands[i].Demands = p.demFlat[i*nc : (i+1)*nc : (i+1)*nc]
		}
	}
	out := p.demands[:n]
	netC := hw.netCenter()
	for i, t := range tl.Tasks {
		cpu, disk, net := taskDemandOn(cfg, hw, t, classes, p.infl)
		d := out[i].Demands
		clear(d)
		ci := hw.classOf[t.Node]
		d[hw.cpuCenter(ci)] = cpu
		d[hw.diskCenter(ci)] = disk
		d[netC] = net
	}
	return out
}

// classMeans averages per-task responses back into class responses,
// written into out (indexed by timeline.Class; zero = class absent).
func classMeans(tl *timeline.Timeline, resp []float64, out *[numClasses]float64) {
	var sum [numClasses]float64
	var cnt [numClasses]int
	for i, t := range tl.Tasks {
		sum[t.Class] += resp[i]
		cnt[t.Class]++
	}
	for cls := range out {
		out[cls] = 0
		if cnt[cls] > 0 {
			out[cls] = sum[cls] / float64(cnt[cls])
		}
	}
}

// classTask identifies a placed task by class and ID (the estimate lookup
// key).
type classTask struct {
	cls timeline.Class
	id  int
}

// estimate computes the job response time from the precedence tree using the
// configured estimator; leaf response times come from the MVA step (per
// task), leaf CVs from the class data.
func (p *Predictor) estimate(cfg Config, tree *ptree.Node, tl *timeline.Timeline, taskResp []float64, classes map[timeline.Class]*classData) (float64, error) {
	// Index placed tasks to their MVA responses.
	if p.respOf == nil {
		p.respOf = make(map[classTask]float64, len(tl.Tasks))
	}
	clear(p.respOf)
	respOf := p.respOf
	for i, t := range tl.Tasks {
		respOf[classTask{t.Class, t.ID}] = taskResp[i]
	}
	leaf := func(t *timeline.Placed) (mean, cv float64, err error) {
		m, ok := respOf[classTask{t.Class, t.ID}]
		if !ok || m <= 0 {
			return 0, 0, fmt.Errorf("core: no response for %s task %d", t.Class, t.ID)
		}
		// Pipeline-clamped tasks (a shuffle cannot end before the last map)
		// occupy their placed window even when their active work is shorter;
		// the leaf takes the larger of the two (the "alternative strategy to
		// estimate the average response time of subsets of tasks" of [12]).
		if d := t.Duration(); d > m {
			m = d
		}
		return m, classes[t.Class].cv, nil
	}

	switch cfg.Estimator {
	case EstimatorTripathi:
		d, err := evalTripathi(tree, leaf, cfg.TripathiCVFloor)
		if err != nil {
			return 0, err
		}
		return d.Mean(), nil
	case EstimatorPaperLiteral:
		m, _, err := evalForkJoin(tree, leaf, true, 1)
		return m, err
	default:
		m, _, err := evalForkJoin(tree, leaf, false, cfg.PAttenuation)
		return m, err
	}
}

// evalForkJoin recursively evaluates the tree with the fork/join rule. With
// literal=true the P rule is the paper's verbatim 3/2·max; otherwise the
// CV-attenuated variant (DESIGN.md §4).
func evalForkJoin(n *ptree.Node, leaf func(*timeline.Placed) (float64, float64, error), literal bool, atten float64) (mean, cv float64, err error) {
	switch n.Op {
	case ptree.Leaf:
		return leaf(n.Task)
	case ptree.S:
		ml, cvl, err := evalForkJoin(n.Left, leaf, literal, atten)
		if err != nil {
			return 0, 0, err
		}
		mr, cvr, err := evalForkJoin(n.Right, leaf, literal, atten)
		if err != nil {
			return 0, 0, err
		}
		m := ml + mr
		v := cvl*ml*cvl*ml + cvr*mr*cvr*mr
		return m, math.Sqrt(v) / m, nil
	case ptree.P:
		ml, cvl, err := evalForkJoin(n.Left, leaf, literal, atten)
		if err != nil {
			return 0, 0, err
		}
		mr, cvr, err := evalForkJoin(n.Right, leaf, literal, atten)
		if err != nil {
			return 0, 0, err
		}
		mx := math.Max(ml, mr)
		cvEff := (cvl + cvr) / 2
		var m float64
		if literal {
			m = 1.5 * mx
		} else {
			m = mx * (1 + 0.5*cvEff)
		}
		// Each synchronization level contributes its own delay margin, so the
		// estimate (and its error) grows with the depth of the balanced
		// P-subtree — the paper's "error grows with the number of map tasks".
		// The carried CV is attenuated per level (a max disperses less than
		// its inputs), bounding the compounding for very deep trees.
		return m, cvEff * atten, nil
	}
	return 0, 0, errors.New("core: unknown tree operator")
}

// evalTripathi evaluates the tree with distribution fitting: children are
// fitted as Erlang/Hyperexponential by (mean, CV); S composes sums, P
// composes maxima (numeric moments).
func evalTripathi(n *ptree.Node, leaf func(*timeline.Placed) (float64, float64, error), cvFloor float64) (dist.Distribution, error) {
	switch n.Op {
	case ptree.Leaf:
		m, cv, err := leaf(n.Task)
		if err != nil {
			return nil, err
		}
		if cv < cvFloor {
			cv = cvFloor
		}
		return dist.Fit(m, cv)
	case ptree.S, ptree.P:
		dl, err := evalTripathi(n.Left, leaf, cvFloor)
		if err != nil {
			return nil, err
		}
		dr, err := evalTripathi(n.Right, leaf, cvFloor)
		if err != nil {
			return nil, err
		}
		var m, cv float64
		if n.Op == ptree.S {
			m, cv, err = dist.SumMoments([]dist.Distribution{dl, dr})
		} else {
			m, cv, err = dist.MaxMoments([]dist.Distribution{dl, dr})
		}
		if err != nil {
			return nil, err
		}
		return dist.Fit(m, cv)
	}
	return nil, errors.New("core: unknown tree operator")
}
