package core

import (
	"context"
	"math"

	"hadoop2perf/internal/mva"
	"hadoop2perf/internal/timeline"
)

// This file makes convergence state a first-class, reusable artifact: a
// Predictor retains a small pool of converged MVA residence matrices, and
// PredictWarm seeds each new evaluation's inner fixed point from the
// nearest already-solved neighbor — adjacent node counts and class mixes of
// one sweep re-solve the overlap step in a handful of sweeps instead of
// dozens. The warm path also chains the inner state across outer iterations
// and applies safeguarded Aitken acceleration to the inner loop; outer
// Aitken is the separate Config.AccelerateOuter opt-in (outerAccel below).
//
// Correctness contract: the inner overlap fixed point is a smooth
// contraction solved to 1e-10, so the warm outer trajectory tracks the
// cold one up to inner-tolerance noise and the result matches cold Predict
// within 1e-6 relative — property-tested over randomized flat and
// multi-class specs (warm_test.go). The outer class-response state is
// deliberately NOT seeded across configurations: the timeline's discrete
// placement gives the outer iteration multiple self-consistent basins, and
// cross-config response seeding was observed to land in the neighbor's
// basin, tens of percent off the cold answer. Config.ColdStart opts any
// call back into the bit-exact cold path.

// warmPoolSize bounds the retained solutions per Predictor: a planner axis
// walk only ever needs its recent neighbors, and each entry pins an n×nc
// residence copy.
const warmPoolSize = 4

// warmEntry is one retained converged solution.
type warmEntry struct {
	sig   uint64    // job/hardware/history signature (warmSig)
	nodes int       // total cluster size (the distance axis)
	res   []float64 // flat n×nc copy of the final residence matrix
	n, nc int       // residence shape (0 when not retained)
	tick  int64     // LRU clock
}

// warmPool is the Predictor's bounded solution store.
type warmPool struct {
	entries []warmEntry
	tick    int64
}

// nearest returns the retained solution with a matching signature closest
// in total node count (ties to the most recently used), or nil.
func (w *warmPool) nearest(sig uint64, nodes int) *warmEntry {
	best, bestDist := -1, 0
	for i := range w.entries {
		e := &w.entries[i]
		if e.sig != sig {
			continue
		}
		d := e.nodes - nodes
		if d < 0 {
			d = -d
		}
		if best < 0 || d < bestDist || (d == bestDist && e.tick > w.entries[best].tick) {
			best, bestDist = i, d
		}
	}
	if best < 0 {
		return nil
	}
	w.tick++
	w.entries[best].tick = w.tick
	return &w.entries[best]
}

// record stores a converged solution, replacing the same coordinate if
// present, else filling a free slot, else evicting the least recently used.
// The residence rows are copied; entry capacity is recycled.
func (w *warmPool) record(sig uint64, nodes int, residence [][]float64) {
	w.tick++
	slot := -1
	for i := range w.entries {
		if w.entries[i].sig == sig && w.entries[i].nodes == nodes {
			slot = i
			break
		}
	}
	if slot < 0 {
		if len(w.entries) < warmPoolSize {
			w.entries = append(w.entries, warmEntry{})
			slot = len(w.entries) - 1
		} else {
			slot = 0
			for i := range w.entries {
				if w.entries[i].tick < w.entries[slot].tick {
					slot = i
				}
			}
		}
	}
	e := &w.entries[slot]
	e.sig, e.nodes, e.tick = sig, nodes, w.tick
	e.n, e.nc = 0, 0
	e.res = e.res[:0]
	if len(residence) == 0 {
		return
	}
	nc := len(residence[0])
	if cap(e.res) < len(residence)*nc {
		e.res = make([]float64, 0, len(residence)*nc)
	}
	for _, row := range residence {
		if len(row) != nc {
			e.res = e.res[:0]
			return
		}
		e.res = append(e.res, row...)
	}
	e.n, e.nc = len(residence), nc
}

// warmResidenceRows views a pooled flat residence matrix as solver rows,
// reusing the Predictor's row scratch. Returns nil when the pooled shape
// does not match the current prediction's task × center layout (the seed's
// class responses still apply; only the inner matrix is skipped).
func (p *Predictor) warmResidenceRows(seed *warmEntry, n, nc int) [][]float64 {
	if seed.n != n || seed.nc != nc || len(seed.res) != n*nc {
		return nil
	}
	if cap(p.seedRows) < n {
		p.seedRows = make([][]float64, n)
	}
	p.seedRows = p.seedRows[:n]
	for i := 0; i < n; i++ {
		p.seedRows[i] = seed.res[i*nc : (i+1)*nc : (i+1)*nc]
	}
	return p.seedRows
}

// PredictWarm runs the model with its inner MVA fixed point seeded from
// the nearest already-solved neighbor retained on this Predictor, chained
// across outer iterations and accelerated with safeguarded Aitken
// extrapolation. Converged results are recorded back into the pool, so a
// sweep of adjacent configurations — PredictBatch, the planner's axis walk
// — warm-starts itself point to point. Results match the cold Predict
// within 1e-6 relative (property-tested, warm_test.go); Config.ColdStart
// forces the bit-exact cold path instead.
func (p *Predictor) PredictWarm(cfg Config) (Prediction, error) {
	return p.predictWarm(nil, cfg)
}

// PredictWarmContext is PredictWarm honoring ctx between outer iterations
// (see PredictContext).
func (p *Predictor) PredictWarmContext(ctx context.Context, cfg Config) (Prediction, error) {
	return p.predictWarm(ctx, cfg)
}

func (p *Predictor) predictWarm(ctx context.Context, cfg Config) (Prediction, error) {
	if cfg.ColdStart {
		return p.predict(ctx, cfg, nil, false)
	}
	sig := warmSig(&cfg)
	nodes := cfg.Spec.TotalNodes()
	seed := p.warm.nearest(sig, nodes)
	pred, err := p.predict(ctx, cfg, seed, true)
	if err != nil {
		return Prediction{}, err
	}
	if pred.Converged {
		p.warm.record(sig, nodes, p.lastStep.Residence)
	}
	return pred, nil
}

// outerAccel applies the shared safeguarded Δ² accelerator (mva.Aitken —
// one implementation, one set of safeguards for every fixed-point loop in
// the model) to the outer damped class-response iteration: two plain
// damped updates are recorded, and on the third each class's geometric
// tail is extrapolated wherever the safeguards hold; classes failing any
// check keep the plain damped value. Convergence is never declared on the
// iteration consuming an extrapolated state (justExtrapolated).
type outerAccel struct {
	acc     mva.Aitken
	buf     [numClasses]float64
	started bool
	// justExtrapolated marks that the responses feeding the next iteration
	// were extrapolated rather than plainly damped.
	justExtrapolated bool
}

// observe feeds the current class responses; every third call extrapolates
// them in place.
func (a *outerAccel) observe(classes map[timeline.Class]*classData) {
	if !a.started {
		a.acc.Init(numClasses)
		a.started = true
	}
	for cls, cd := range classes {
		a.buf[cls] = cd.response
	}
	// Floor just above zero: a class response must stay strictly positive.
	a.justExtrapolated = a.acc.Observe(a.buf[:], func(int) float64 { return math.SmallestNonzeroFloat64 })
	if a.justExtrapolated {
		for cls, cd := range classes {
			cd.response = a.buf[cls]
		}
	}
}

// warmSig hashes everything that shapes a prediction's fixed point except
// the cluster size: job workload, concurrency, estimator, history
// initialization and per-class hardware (class counts and the flat node
// count deliberately excluded — they are the axis warm entries are *near*
// each other on). Two configs with equal signatures solve the same family
// of fixed points, so one's converged state is a valid seed for the other.
func warmSig(cfg *Config) uint64 {
	h := newSigHasher()
	j := &cfg.Job
	h.f64(j.InputMB)
	h.f64(j.BlockSizeMB)
	h.i(j.NumReduces)
	h.b(j.SlowStart)
	h.f64(j.SlowStartFraction)
	pr := &j.Profile
	h.str(pr.Name)
	for _, v := range []float64{
		pr.MapCPUPerMB, pr.CollectCPUPerMB, pr.SortCPUPerMB, pr.MergeCPUPerMB,
		pr.ShuffleCPUPerMB, pr.ReduceCPUPerMB, pr.RSortCPUPerMB,
		pr.MapOutputRatio, pr.OutputRatio, pr.SpillPasses, pr.TaskJitterCV,
		pr.ContainerStartup, pr.AMStartup,
	} {
		h.f64(v)
	}
	n := cfg.NumJobs
	if n <= 0 {
		n = 1
	}
	h.i(n)
	h.i(int(cfg.Estimator))
	for _, cls := range [...]timeline.Class{timeline.ClassMap, timeline.ClassShuffleSort, timeline.ClassMerge} {
		cs, ok := cfg.History[cls]
		h.b(ok)
		if !ok {
			continue
		}
		h.f64(cs.MeanCPU)
		h.f64(cs.MeanDisk)
		h.f64(cs.MeanNetwork)
		h.f64(cs.MeanResponse)
		h.f64(cs.CV)
	}
	h.i(cfg.Spec.MapContainer.MemoryMB)
	h.i(cfg.Spec.MapContainer.VCores)
	h.i(cfg.Spec.ReduceContainer.MemoryMB)
	h.i(cfg.Spec.ReduceContainer.VCores)
	classes := cfg.Spec.ClassView()
	h.i(len(classes))
	for _, c := range classes {
		h.str(c.Name)
		h.i(c.Capacity.MemoryMB)
		h.i(c.Capacity.VCores)
		h.i(c.CPUs)
		h.i(c.Disks)
		h.f64(c.DiskMBps)
		h.f64(c.NetworkMBps)
		h.f64(c.Speed)
		h.b(c.Preemptible)
		h.f64(c.RevocationRate)
	}
	h.b(cfg.Faults != nil)
	if f := cfg.Faults; f != nil {
		h.f64(f.NodeMTTFSec)
		h.f64(f.RepairDelaySec)
		h.i(f.MaxNodeFailures)
		h.f64(f.StragglerProb)
		h.f64(f.StragglerAlpha)
		h.b(f.Speculation)
		h.f64(f.SpeculationLateness)
	}
	return h.sum
}

// sigHasher is a minimal FNV-1a accumulator for warm signatures.
type sigHasher struct{ sum uint64 }

func newSigHasher() sigHasher { return sigHasher{sum: 14695981039346656037} }

func (h *sigHasher) u64(v uint64) {
	for i := 0; i < 8; i++ {
		h.sum ^= v & 0xff
		h.sum *= 1099511628211
		v >>= 8
	}
}

func (h *sigHasher) f64(v float64) { h.u64(math.Float64bits(v)) }
func (h *sigHasher) i(v int)       { h.u64(uint64(int64(v))) }

func (h *sigHasher) b(v bool) {
	if v {
		h.u64(1)
	} else {
		h.u64(0)
	}
}

func (h *sigHasher) str(s string) {
	h.i(len(s))
	for i := 0; i < len(s); i++ {
		h.sum ^= uint64(s[i])
		h.sum *= 1099511628211
	}
}
