package core

import (
	"math"
	"testing"

	"hadoop2perf/internal/cluster"
	"hadoop2perf/internal/mrsim"
	"hadoop2perf/internal/workflow"
	"hadoop2perf/internal/workload"
	"hadoop2perf/internal/yarn"
)

func wfConfigs(t *testing.T, spec cluster.Spec, n int) []Config {
	t.Helper()
	job, err := workload.NewJob(0, 1024, 128, 4, workload.WordCount())
	if err != nil {
		t.Fatal(err)
	}
	cfgs := make([]Config, n)
	for i := range cfgs {
		j := job
		j.ID = i
		cfgs[i] = Config{Spec: spec, Job: j, NumJobs: 1}
	}
	return cfgs
}

func TestPredictWorkflowValidation(t *testing.T) {
	cfgs := wfConfigs(t, cluster.Default(4), 2)
	if _, err := PredictWorkflow(nil, cfgs); err == nil {
		t.Error("nil DAG accepted")
	}
	if _, err := PredictWorkflow(workflow.Chain("a", "b", "c"), cfgs); err == nil {
		t.Error("config/stage count mismatch accepted")
	}
	cyclic := &workflow.DAG{Stages: []string{"a", "b"},
		Edges: []workflow.Edge{{From: "a", To: "b"}, {From: "b", To: "a"}}}
	if _, err := PredictWorkflow(cyclic, cfgs); err == nil {
		t.Error("cyclic DAG accepted")
	}
}

// TestWorkflowChainComposesSequentialPredicts is the composition property:
// a chain of K identical dependent jobs must predict the same total
// response as K sequential single-job Predict calls composed — within the
// warm-start contract (1e-6 relative), and bit-identical for K=1.
func TestWorkflowChainComposesSequentialPredicts(t *testing.T) {
	spec := cluster.Default(4)
	cold, err := Predict(wfConfigs(t, spec, 1)[0])
	if err != nil {
		t.Fatal(err)
	}

	// K=1: a trivial DAG takes the exact cold path.
	one, err := PredictWorkflow(&workflow.DAG{Stages: []string{"only"}}, wfConfigs(t, spec, 1))
	if err != nil {
		t.Fatal(err)
	}
	if one.ResponseTime != cold.ResponseTime {
		t.Errorf("K=1 workflow %x, want bit-identical cold predict %x",
			one.ResponseTime, cold.ResponseTime)
	}
	if len(one.CriticalPath) != 1 || one.CriticalPath[0] != "only" {
		t.Errorf("K=1 critical path %v", one.CriticalPath)
	}

	for _, k := range []int{2, 4, 8} {
		stages := make([]string, k)
		for i := range stages {
			stages[i] = string(rune('a' + i))
		}
		wf, err := PredictWorkflow(workflow.Chain(stages...), wfConfigs(t, spec, k))
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		want := float64(k) * cold.ResponseTime
		if rel := math.Abs(wf.ResponseTime-want) / want; rel > 1e-6 {
			t.Errorf("K=%d: chain response %v vs %d×cold %v: relative error %.2e > 1e-6",
				k, wf.ResponseTime, k, want, rel)
		}
		// Every stage is critical in a chain, and later stages must have
		// warm-started from their solved predecessors.
		if len(wf.CriticalPath) != k {
			t.Errorf("K=%d: critical path %v, want all %d stages", k, wf.CriticalPath, k)
		}
		warm := 0
		for _, st := range wf.Stages[1:] {
			if st.Slack != 0 || !st.Critical {
				t.Errorf("K=%d: stage %s slack %v, want 0 (critical)", k, st.Name, st.Slack)
			}
			if st.WarmStarted {
				warm++
			}
		}
		if warm == 0 {
			t.Errorf("K=%d: no stage warm-started from its predecessor's solution", k)
		}
	}
}

// TestWorkflowDiamondWaves checks wave-based contention pricing: the two
// middle stages of a diamond share a wave and a cluster, so each is priced
// as one job of a 2-job closed population, and the makespan composes
// root + contended middle + sink.
func TestWorkflowDiamondWaves(t *testing.T) {
	spec := cluster.Default(4)
	dag := &workflow.DAG{
		Stages: []string{"src", "left", "right", "join"},
		Edges: []workflow.Edge{
			{From: "src", To: "left"}, {From: "src", To: "right"},
			{From: "left", To: "join"}, {From: "right", To: "join"},
		},
	}
	wf, err := PredictWorkflow(dag, wfConfigs(t, spec, 4))
	if err != nil {
		t.Fatal(err)
	}
	if c := wf.Stages[1].Concurrency; c != 2 {
		t.Errorf("left stage concurrency %d, want 2", c)
	}
	// The second middle stage warm-starts from the first's solution, so the
	// two are equal within the warm-start contract, not bit-identical.
	if rel := math.Abs(wf.Stages[1].ResponseTime-wf.Stages[2].ResponseTime) /
		wf.Stages[1].ResponseTime; rel > 1e-6 {
		t.Errorf("identical middle stages priced differently: %v vs %v",
			wf.Stages[1].ResponseTime, wf.Stages[2].ResponseTime)
	}
	if wf.Stages[1].ResponseTime <= wf.Stages[0].ResponseTime {
		t.Errorf("contended middle stage (%v) not slower than uncontended root (%v)",
			wf.Stages[1].ResponseTime, wf.Stages[0].ResponseTime)
	}
	want := wf.Stages[0].ResponseTime +
		math.Max(wf.Stages[1].ResponseTime, wf.Stages[2].ResponseTime) +
		wf.Stages[3].ResponseTime
	if math.Abs(wf.ResponseTime-want) > 1e-9*want {
		t.Errorf("diamond makespan %v, want composed %v", wf.ResponseTime, want)
	}
	if len(wf.CriticalPath) != 3 {
		t.Errorf("critical path %v, want 3 stages", wf.CriticalPath)
	}
	// Stage-level precedence tree: middle stages overlap (P), flanked
	// serially — 4 leaves, exactly one P under a chain of S nodes.
	if wf.Tree == nil || wf.Tree.NumLeaves() != 4 {
		t.Fatalf("stage tree %v", wf.Tree)
	}
	if got := wf.Tree.String(); got != "S(S(j0,P(j1,j2)),j3)" {
		t.Errorf("stage tree %s, want S(S(j0,P(j1,j2)),j3)", got)
	}
}

// TestWorkflowStageLocalClustersDoNotContend gives the middle stages of a
// diamond different clusters: the wave is shared but the hardware is not,
// so both keep population 1.
func TestWorkflowStageLocalClustersDoNotContend(t *testing.T) {
	dag := &workflow.DAG{
		Stages: []string{"src", "left", "right", "join"},
		Edges: []workflow.Edge{
			{From: "src", To: "left"}, {From: "src", To: "right"},
			{From: "left", To: "join"}, {From: "right", To: "join"},
		},
	}
	cfgs := wfConfigs(t, cluster.Default(4), 4)
	cfgs[2].Spec = cluster.Default(8)
	conc, err := WorkflowConcurrency(dag, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if conc[1] != 1 || conc[2] != 1 {
		t.Errorf("stage-local clusters still contend: concurrency %v", conc)
	}
}

// TestWorkflowSimModelAgreement is the workflow-level instance of the
// paper's §5 validation loop: the analytic critical-path composition must
// track the discrete-event simulator's dependent-job makespan for chain
// and diamond shapes at the heterogeneous tolerance.
func TestWorkflowSimModelAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed agreement in -short mode")
	}
	const tol = 0.35
	spec := cluster.Default(4)
	for _, tc := range []struct {
		name string
		dag  *workflow.DAG
	}{
		{"chain-3", workflow.Chain("a", "b", "c")},
		{"diamond", &workflow.DAG{
			Stages: []string{"src", "left", "right", "join"},
			Edges: []workflow.Edge{
				{From: "src", To: "left"}, {From: "src", To: "right"},
				{From: "left", To: "join"}, {From: "right", To: "join"},
			},
		}},
	} {
		cfgs := wfConfigs(t, spec, tc.dag.NumStages())
		wf, err := PredictWorkflow(tc.dag, cfgs)
		if err != nil {
			t.Fatalf("%s: predict: %v", tc.name, err)
		}
		jobs := make([]workload.Job, len(cfgs))
		for i := range cfgs {
			jobs[i] = cfgs[i].Job
		}
		res, err := mrsim.RunMedianOfSeeds(mrsim.Config{
			Spec: spec, Jobs: jobs, Workflow: tc.dag, Seed: 7, Scheduler: yarn.PolicyFair,
		}, 3)
		if err != nil {
			t.Fatalf("%s: simulate: %v", tc.name, err)
		}
		sim := res.Makespan
		relErr := math.Abs(wf.ResponseTime-sim) / sim
		t.Logf("%s: model %.1fs vs sim %.1fs (err %.1f%%)", tc.name, wf.ResponseTime, sim, 100*relErr)
		if relErr > tol {
			t.Errorf("%s: model %v vs sim %v: relative error %.2f exceeds %.2f",
				tc.name, wf.ResponseTime, sim, relErr, tol)
		}
	}
}
