package core

import (
	"context"
	"math"
	"testing"

	"hadoop2perf/internal/cluster"
	"hadoop2perf/internal/workload"
)

// A reused Predictor must produce bit-identical results to one-shot
// Predict calls, across shape changes (different task counts) in either
// direction — scratch reuse must never leak state between predictions.
func TestPredictorReuseMatchesFresh(t *testing.T) {
	shapes := []struct {
		inputMB float64
		block   float64
		reduces int
		nodes   int
		numJobs int
		est     Estimator
	}{
		{1024, 128, 4, 4, 1, EstimatorForkJoin},
		{5 * 1024, 128, 2, 8, 1, EstimatorForkJoin},
		{512, 64, 1, 2, 4, EstimatorForkJoin},
		{1024, 128, 4, 4, 1, EstimatorForkJoin}, // repeat of the first shape
		{2 * 1024, 128, 8, 6, 2, EstimatorTripathi},
		{1024, 128, 4, 4, 1, EstimatorPaperLiteral},
	}
	p := NewPredictor()
	for i, s := range shapes {
		job, err := workload.NewJob(0, s.inputMB, s.block, s.reduces, workload.WordCount())
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Spec: cluster.Default(s.nodes), Job: job, NumJobs: s.numJobs, Estimator: s.est}
		fresh, err := Predict(cfg)
		if err != nil {
			t.Fatalf("shape %d: fresh: %v", i, err)
		}
		reused, err := p.Predict(cfg)
		if err != nil {
			t.Fatalf("shape %d: reused: %v", i, err)
		}
		if reused.ResponseTime != fresh.ResponseTime {
			t.Errorf("shape %d: reused predictor diverged: %v != %v", i, reused.ResponseTime, fresh.ResponseTime)
		}
		if reused.Iterations != fresh.Iterations || reused.Converged != fresh.Converged {
			t.Errorf("shape %d: iteration trace diverged: %d/%v vs %d/%v",
				i, reused.Iterations, reused.Converged, fresh.Iterations, fresh.Converged)
		}
		for cls, v := range fresh.ClassResponse {
			if reused.ClassResponse[cls] != v {
				t.Errorf("shape %d: class %s response diverged", i, cls)
			}
		}
	}
}

// PredictBatch warm-starts each entry from its already-solved neighbors, so
// results match per-config cold Predict calls within the warm-start
// tolerance (1e-6 relative, the contract of warm_test.go) rather than
// bit-exactly; Config.ColdStart restores exact equality.
func TestPredictBatchMatchesIndividual(t *testing.T) {
	job, err := workload.NewJob(0, 2*1024, 128, 4, workload.WordCount())
	if err != nil {
		t.Fatal(err)
	}
	var cfgs []Config
	for _, n := range []int{2, 4, 6, 8, 12} {
		cfgs = append(cfgs, Config{Spec: cluster.Default(n), Job: job, NumJobs: 1})
	}
	batch, err := PredictBatch(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(cfgs) {
		t.Fatalf("batch returned %d predictions for %d configs", len(batch), len(cfgs))
	}
	for i, cfg := range cfgs {
		one, err := Predict(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(batch[i].ResponseTime-one.ResponseTime) / one.ResponseTime; rel > 1e-6 {
			t.Errorf("config %d (n=%d): batch %v vs individual %v (rel %.2e)",
				i, cfg.Spec.NumNodes, batch[i].ResponseTime, one.ResponseTime, rel)
		}
	}

	// The escape hatch: cold-started batches are bit-identical to Predict.
	cold := make([]Config, len(cfgs))
	for i, cfg := range cfgs {
		cfg.ColdStart = true
		cold[i] = cfg
	}
	coldBatch, err := PredictBatch(cold)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		one, err := Predict(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if coldBatch[i].ResponseTime != one.ResponseTime {
			t.Errorf("cold config %d (n=%d): batch %v != individual %v",
				i, cfg.Spec.NumNodes, coldBatch[i].ResponseTime, one.ResponseTime)
		}
		if coldBatch[i].WarmStarted {
			t.Errorf("cold config %d reported WarmStarted", i)
		}
	}
}

// PredictBatchLockstep drives the rolling lane pipeline (the packed-kernel
// measurement path behind PredictBatch's sequential routing): every config
// evaluates cold through shared four-wide solves, and each lane's
// trajectory — response, outer rounds AND per-lane inner sweep counts —
// must be bit-identical to a sequential cold Predict. Six skewed configs
// exercise rolling admission past the lane width.
func TestPredictBatchLockstepMatchesCold(t *testing.T) {
	job, err := workload.NewJob(0, 2*1024, 128, 4, workload.WordCount())
	if err != nil {
		t.Fatal(err)
	}
	var cfgs []Config
	for _, n := range []int{2, 4, 6, 8, 12, 16} {
		cfgs = append(cfgs, Config{Spec: cluster.Default(n), Job: job, NumJobs: 3})
	}
	p := NewPredictor()
	got, err := p.PredictBatchLockstep(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		one, err := Predict(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got[i].ResponseTime != one.ResponseTime {
			t.Errorf("config %d (n=%d): lockstep %v != sequential %v",
				i, cfg.Spec.NumNodes, got[i].ResponseTime, one.ResponseTime)
		}
		if got[i].Iterations != one.Iterations {
			t.Errorf("config %d: lockstep %d outer rounds, sequential %d",
				i, got[i].Iterations, one.Iterations)
		}
		if got[i].InnerIterations != one.InnerIterations {
			t.Errorf("config %d: lockstep %d inner sweeps, sequential %d",
				i, got[i].InnerIterations, one.InnerIterations)
		}
	}
}

func TestPredictBatchPropagatesError(t *testing.T) {
	job, err := workload.NewJob(0, 1024, 128, 2, workload.WordCount())
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []Config{
		{Spec: cluster.Default(4), Job: job},
		{Spec: cluster.Default(0), Job: job}, // invalid
	}
	if _, err := PredictBatch(cfgs); err == nil {
		t.Error("batch with invalid config succeeded")
	}
}

// TestPredictMonotoneInNodes pins the monotonicity the planner's bisection
// search relies on: for single-reducer jobs up to a few GB the predicted
// response time never increases with cluster size (verified across all
// three built-in profiles and one/many concurrent jobs). Multi-reducer and
// very large jobs show localized spikes at reducer/timeline-placement
// parity boundaries — the planner search detects those at evaluation time
// and falls back to the exhaustive grid (see internal/service/search.go),
// so only this regime is a contract.
func TestPredictMonotoneInNodes(t *testing.T) {
	for _, tc := range []struct {
		profile workload.Profile
		inputMB float64
		block   float64
		reduces int
		numJobs int
	}{
		{workload.WordCount(), 1024, 128, 1, 1},
		{workload.WordCount(), 1024, 128, 1, 4},
		{workload.WordCount(), 2 * 1024, 128, 1, 1},
		{workload.Grep(), 2 * 1024, 128, 1, 1},
		{workload.TeraSort(), 1024, 128, 1, 1},
		{workload.WordCount(), 512, 64, 1, 1},
	} {
		job, err := workload.NewJob(0, tc.inputMB, tc.block, tc.reduces, tc.profile)
		if err != nil {
			t.Fatal(err)
		}
		p := NewPredictor()
		prev := 0.0
		for n := 1; n <= 16; n++ {
			pred, err := p.Predict(Config{Spec: cluster.Default(n), Job: job, NumJobs: tc.numJobs})
			if err != nil {
				t.Fatal(err)
			}
			if n > 1 && pred.ResponseTime > prev*(1+1e-9) {
				t.Errorf("input=%vMB block=%v red=%d jobs=%d: response rose from %.4f (n=%d) to %.4f (n=%d)",
					tc.inputMB, tc.block, tc.reduces, tc.numJobs, prev, n-1, pred.ResponseTime, n)
			}
			prev = pred.ResponseTime
		}
	}
}

// TestSweepBudget is the deterministic sweep-count gate of the batch
// paths, on the contended 16-point sweep the benchmarks use (4 competing
// jobs, 4 reducers, nodes 2..17). The model is deterministic, so these
// inequalities are exact gates, not statistical ones:
//
//   - PredictBatch's warm chaining must spend at most half the inner
//     sweeps of per-config cold evaluation (the warm-start win the batch
//     path exists for; measured ratio ≈ 3.7x, gated at 2x).
//   - The lockstep lane pipeline must account exactly the cold sweep
//     total: per-lane masking means a frozen lane stops accruing, so
//     lane-packing changes wall time but never counted sweeps.
func TestSweepBudget(t *testing.T) {
	job, err := workload.NewJob(0, 5*1024, 128, 4, workload.WordCount())
	if err != nil {
		t.Fatal(err)
	}
	var cfgs []Config
	for n := 2; n <= 17; n++ {
		cfgs = append(cfgs, Config{Spec: cluster.Default(n), Job: job, NumJobs: 4})
	}

	var coldInner int
	for _, cfg := range cfgs {
		pred, err := Predict(cfg)
		if err != nil {
			t.Fatal(err)
		}
		coldInner += pred.InnerIterations
	}

	warmPreds, err := PredictBatch(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	var warmInner int
	for _, p := range warmPreds {
		warmInner += p.InnerIterations
	}
	if warmInner*2 > coldInner {
		t.Errorf("warm batch spent %d inner sweeps, budget is half of cold's %d", warmInner, coldInner)
	}

	lockPreds, err := NewPredictor().PredictBatchLockstep(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	var lockInner int
	for _, p := range lockPreds {
		lockInner += p.InnerIterations
	}
	if lockInner != coldInner {
		t.Errorf("lockstep accounted %d inner sweeps, cold sequential %d — lane masking leaked", lockInner, coldInner)
	}
}
