package core

import (
	"errors"

	"hadoop2perf/internal/timeline"
)

// ResourceEstimate is the model's prediction of the resources one job
// consumes — the paper's stated future work ("extend our model to be able to
// estimate the amount of consumed resources for each task and the whole
// job", §6). Quantities are service demands, not wall-clock: CPU is in
// core-seconds, Disk and Network in bandwidth-seconds at nominal speed.
type ResourceEstimate struct {
	// Per task class, summed over the job's tasks.
	PerClass map[timeline.Class]ResourceUse
	// Total sums the classes.
	Total ResourceUse
	// MeanUtilization is the predicted average fraction of the cluster's
	// capacity this job keeps busy at each center over its response time
	// (0..1 per center; >1 would mean infeasible).
	CPUUtilization     float64
	DiskUtilization    float64
	NetworkUtilization float64
}

// ResourceUse is a demand vector.
type ResourceUse struct {
	CPUSeconds     float64
	DiskSeconds    float64
	NetworkSeconds float64
}

func (u ResourceUse) add(cpu, disk, net float64) ResourceUse {
	u.CPUSeconds += cpu
	u.DiskSeconds += disk
	u.NetworkSeconds += net
	return u
}

// EstimateResources predicts per-class and total resource consumption for
// the configured job, plus mean utilization of the cluster over the
// predicted response time. It runs the model to convergence first.
func EstimateResources(cfg Config) (ResourceEstimate, Prediction, error) {
	pred, err := Predict(cfg)
	if err != nil {
		return ResourceEstimate{}, Prediction{}, err
	}
	cfg.applyDefaults()
	if pred.ResponseTime <= 0 {
		return ResourceEstimate{}, Prediction{}, errors.New("core: non-positive predicted response")
	}
	est := ResourceEstimate{PerClass: map[timeline.Class]ResourceUse{}}
	var h hwView
	h.init(cfg.Spec)
	infl := faultFactors(cfg, &h)
	classes := initialize(cfg, &h, infl)
	for _, t := range pred.Timeline.Tasks {
		cpu, disk, net := taskDemandOn(cfg, &h, t, classes, infl)
		est.PerClass[t.Class] = est.PerClass[t.Class].add(cpu, disk, net)
		est.Total = est.Total.add(cpu, disk, net)
	}
	// Capacity denominators: all cores and spindles across classes, and the
	// shared network fabric width.
	var totalCPUs, totalDisks float64
	for _, c := range h.classes {
		totalCPUs += float64(c.Count) * float64(c.CPUs)
		totalDisks += float64(c.Count) * float64(c.Disks)
	}
	fabric := float64(h.nodes) / 2
	if fabric < 1 {
		fabric = 1
	}
	est.CPUUtilization = est.Total.CPUSeconds / (pred.ResponseTime * totalCPUs)
	est.DiskUtilization = est.Total.DiskSeconds / (pred.ResponseTime * totalDisks)
	est.NetworkUtilization = est.Total.NetworkSeconds / (pred.ResponseTime * fabric)
	return est, pred, nil
}
