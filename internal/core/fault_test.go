package core

import (
	"math"
	"reflect"
	"testing"

	"hadoop2perf/internal/cluster"
	"hadoop2perf/internal/fault"
	"hadoop2perf/internal/mrsim"
	"hadoop2perf/internal/workload"
)

// reliableSpotSpec is the calibration scenario's 2-class cluster: two
// reliable nodes plus two preemptible spot nodes revoked at 60/node-hour.
func reliableSpotSpec() cluster.Spec {
	return cluster.Spec{
		MapContainer:    cluster.Resource{MemoryMB: 4096, VCores: 2},
		ReduceContainer: cluster.Resource{MemoryMB: 4096, VCores: 4},
		Classes: []cluster.NodeClass{
			{Name: "reliable", Count: 2, Capacity: cluster.Resource{MemoryMB: 32768, VCores: 32},
				CPUs: 6, Disks: 1, DiskMBps: 240, NetworkMBps: 110},
			{Name: "spot", Count: 2, Capacity: cluster.Resource{MemoryMB: 32768, VCores: 32},
				CPUs: 6, Disks: 1, DiskMBps: 240, NetworkMBps: 110,
				Preemptible: true, RevocationRate: 60, Price: 0.3},
		},
	}
}

// A nil and a zero fault plan leave predictions bit-identical to the
// fault-free model (over a spec without revocation hazards).
func TestFaultFreePredictionBitIdentical(t *testing.T) {
	spec := cluster.Default(4)
	job, err := workload.NewJob(0, 2048, 128, 4, workload.WordCount())
	if err != nil {
		t.Fatal(err)
	}
	base, err := Predict(Config{Spec: spec, Job: job})
	if err != nil {
		t.Fatal(err)
	}
	zero, err := Predict(Config{Spec: spec, Job: job, Faults: &fault.Plan{}})
	if err != nil {
		t.Fatal(err)
	}
	if base.ResponseTime != zero.ResponseTime || !reflect.DeepEqual(base.ClassResponse, zero.ClassResponse) {
		t.Errorf("zero fault plan perturbed the prediction: %v != %v", base.ResponseTime, zero.ResponseTime)
	}
}

// An active plan must slow the prediction down, monotonically in hazard.
func TestFaultCorrectionMonotone(t *testing.T) {
	spec := cluster.Default(4)
	job, err := workload.NewJob(0, 2048, 128, 4, workload.WordCount())
	if err != nil {
		t.Fatal(err)
	}
	base, err := Predict(Config{Spec: spec, Job: job})
	if err != nil {
		t.Fatal(err)
	}
	prev := base.ResponseTime
	for _, mttf := range []float64{1200, 600, 300} {
		p, err := Predict(Config{Spec: spec, Job: job, Faults: &fault.Plan{NodeMTTFSec: mttf, RepairDelaySec: 45}})
		if err != nil {
			t.Fatal(err)
		}
		if p.ResponseTime <= prev {
			t.Errorf("MTTF %v: response %.2f not above %.2f", mttf, p.ResponseTime, prev)
		}
		prev = p.ResponseTime
	}
	if _, err := Predict(Config{Spec: spec, Job: job, Faults: &fault.Plan{NodeMTTFSec: -1}}); err == nil {
		t.Error("invalid fault plan accepted")
	}
}

// The calibration grid: the analytic effective-demand correction must track
// the simulator's fault-injected p50 within 25% on pinned seeded scenarios,
// including a 2-class reliable+spot cluster. The envelope's documented edge —
// cluster-wide MTBF approaching the job duration (e.g. hot revocation rates
// combined with low node MTTF) — is excluded; PERFORMANCE.md records the
// degradation there.
func TestFaultCalibrationGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration grid runs 5-seed simulations per point")
	}
	mttfRepair := &fault.Plan{NodeMTTFSec: 600, RepairDelaySec: 45}
	hotMTTF := &fault.Plan{NodeMTTFSec: 300, RepairDelaySec: 60}
	stragglers := &fault.Plan{StragglerProb: 0.2, StragglerAlpha: 2.5}
	speculation := &fault.Plan{StragglerProb: 0.2, StragglerAlpha: 2.5, Speculation: true}
	combined := &fault.Plan{NodeMTTFSec: 400, RepairDelaySec: 45, StragglerProb: 0.15, Speculation: true}

	type point struct {
		name string
		spec cluster.Spec
		gb   float64
		plan *fault.Plan
	}
	grid := []point{
		{"4n-2g/mttf-repair", cluster.Default(4), 2, mttfRepair},
		{"4n-2g/hot-mttf", cluster.Default(4), 2, hotMTTF},
		{"4n-2g/stragglers", cluster.Default(4), 2, stragglers},
		{"4n-2g/speculation", cluster.Default(4), 2, speculation},
		{"4n-2g/combined", cluster.Default(4), 2, combined},
		{"4n-5g/mttf-repair", cluster.Default(4), 5, mttfRepair},
		{"4n-5g/hot-mttf", cluster.Default(4), 5, hotMTTF},
		{"4n-5g/stragglers", cluster.Default(4), 5, stragglers},
		{"4n-5g/speculation", cluster.Default(4), 5, speculation},
		{"2class-2g/revocation-only", reliableSpotSpec(), 2, nil},
		{"2class-2g/mttf-repair", reliableSpotSpec(), 2, mttfRepair},
		{"2class-2g/stragglers", reliableSpotSpec(), 2, stragglers},
		{"2class-2g/speculation", reliableSpotSpec(), 2, speculation},
		{"2class-2g/combined", reliableSpotSpec(), 2, combined},
	}
	const tolerance = 0.25
	for _, pt := range grid {
		pt := pt
		t.Run(pt.name, func(t *testing.T) {
			nodes := pt.spec.TotalNodes()
			job, err := workload.NewJob(0, pt.gb*1024, 128, nodes, workload.WordCount())
			if err != nil {
				t.Fatal(err)
			}
			sim, err := mrsim.RunMedianOfSeeds(mrsim.Config{
				Spec: pt.spec, Jobs: []workload.Job{job}, Seed: 1, Faults: pt.plan,
			}, 5)
			if err != nil {
				t.Fatal(err)
			}
			pred, err := Predict(Config{Spec: pt.spec, Job: job, Faults: pt.plan})
			if err != nil {
				t.Fatal(err)
			}
			s := sim.MeanResponse()
			if s <= 0 {
				t.Fatal("non-positive simulated response")
			}
			if rel := math.Abs(pred.ResponseTime-s) / s; rel > tolerance {
				t.Errorf("model %.1fs vs simulated p50 %.1fs: |rel err| %.1f%% > %.0f%%",
					pred.ResponseTime, s, 100*rel, 100*tolerance)
			}
		})
	}
}

// Resource estimates inherit the fault correction: an active plan consumes
// strictly more effective demand.
func TestFaultResourceEstimate(t *testing.T) {
	spec := cluster.Default(4)
	job, err := workload.NewJob(0, 1024, 128, 4, workload.WordCount())
	if err != nil {
		t.Fatal(err)
	}
	base, _, err := EstimateResources(Config{Spec: spec, Job: job})
	if err != nil {
		t.Fatal(err)
	}
	faulty, _, err := EstimateResources(Config{Spec: spec, Job: job,
		Faults: &fault.Plan{NodeMTTFSec: 300, RepairDelaySec: 60, StragglerProb: 0.2}})
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Total.CPUSeconds <= base.Total.CPUSeconds ||
		faulty.Total.DiskSeconds <= base.Total.DiskSeconds {
		t.Errorf("fault plan did not inflate resource demand: %+v vs %+v", faulty.Total, base.Total)
	}
}
