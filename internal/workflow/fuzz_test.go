package workflow

import (
	"testing"
)

// decodeDAG deterministically expands fuzz bytes into a DAG, deliberately
// covering the whole defect space: empty and duplicate stage names, edges
// to undefined stages, self-edges, duplicate edges and cycles all occur
// with high probability under random bytes.
func decodeDAG(data []byte) *DAG {
	d := &DAG{}
	if len(data) == 0 {
		return d
	}
	name := func(b byte) string {
		switch b % 7 {
		case 5:
			return "" // empty name
		case 6:
			return "undefined" // never declared below
		default:
			return string(rune('a' + int(b%5)))
		}
	}
	n := int(data[0] % 8)
	data = data[1:]
	for i := 0; i < n && len(data) > 0; i++ {
		d.Stages = append(d.Stages, name(data[0]))
		data = data[1:]
	}
	for len(data) >= 2 {
		d.Edges = append(d.Edges, Edge{From: name(data[0]), To: name(data[1])})
		data = data[2:]
	}
	return d
}

// hasCycle is an independent oracle: plain DFS three-coloring over the raw
// edge list, resolving names by first declaration and ignoring edges that
// reference undefined stages.
func hasCycle(d *DAG) bool {
	idx := map[string]int{}
	for i, s := range d.Stages {
		if _, ok := idx[s]; !ok {
			idx[s] = i
		}
	}
	adj := make([][]int, len(d.Stages))
	for _, e := range d.Edges {
		f, okF := idx[e.From]
		t, okT := idx[e.To]
		if okF && okT {
			adj[f] = append(adj[f], t)
		}
	}
	color := make([]int, len(d.Stages)) // 0 white, 1 gray, 2 black
	var visit func(int) bool
	visit = func(u int) bool {
		color[u] = 1
		for _, v := range adj[u] {
			if color[v] == 1 || (color[v] == 0 && visit(v)) {
				return true
			}
		}
		color[u] = 2
		return false
	}
	for i := range color {
		if color[i] == 0 && visit(i) {
			return true
		}
	}
	return false
}

// FuzzValidate drives Validate (and TopoOrder behind it) with arbitrary
// DAG shapes: it must never panic, must reject every cycle, self-edge and
// undefined-stage edge, and when it accepts, the topological order must be
// a true linearization of the edges.
func FuzzValidate(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 'a'})                               // single stage
	f.Add([]byte{3, 'a', 'b', 'c', 'a', 'b', 'b', 'c'}) // chain
	f.Add([]byte{2, 'a', 'b', 'a', 'b', 'b', 'a'})      // 2-cycle
	f.Add([]byte{1, 'a', 'a', 'a'})                     // self-edge
	f.Add([]byte{2, 'a', 'a'})                          // duplicate names
	f.Add([]byte{1, 'a', 'a', 6})                       // undefined ref
	f.Add([]byte{0, 'a', 'b'})                          // edges without stages
	f.Fuzz(func(t *testing.T, data []byte) {
		d := decodeDAG(data)
		err := d.Validate() // must not panic, whatever the bytes
		if err != nil {
			return
		}
		// Accepted: re-check every guarantee with independent oracles.
		seen := map[string]bool{}
		for _, s := range d.Stages {
			if s == "" {
				t.Fatalf("accepted empty stage name: %+v", d)
			}
			if seen[s] {
				t.Fatalf("accepted duplicate stage %q: %+v", s, d)
			}
			seen[s] = true
		}
		for _, e := range d.Edges {
			if !seen[e.From] || !seen[e.To] {
				t.Fatalf("accepted edge %q->%q with undefined stage: %+v", e.From, e.To, d)
			}
			if e.From == e.To {
				t.Fatalf("accepted self-edge on %q: %+v", e.From, d)
			}
		}
		if hasCycle(d) {
			t.Fatalf("accepted cyclic DAG: %+v", d)
		}
		order, err := d.TopoOrder()
		if err != nil {
			t.Fatalf("Validate passed but TopoOrder failed: %v", err)
		}
		pos := make([]int, len(d.Stages))
		for p, i := range order {
			pos[i] = p
		}
		for _, e := range d.Edges {
			if pos[d.Index(e.From)] >= pos[d.Index(e.To)] {
				t.Fatalf("order %v violates edge %q->%q", order, e.From, e.To)
			}
		}
	})
}
