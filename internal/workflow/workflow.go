// Package workflow models DAGs of dependent MapReduce jobs: named stages
// joined by precedence edges, where a stage may start only after every
// parent stage has finished. It generalizes the paper's intra-job
// precedence tree (map → shuffle-sort → merge, internal/ptree) to
// cross-job edges: the same serial/parallel reasoning that prices one
// job's phases prices a pipeline of jobs.
//
// The package is purely structural — validation, deterministic topological
// order, wave decomposition and critical-path scheduling over caller-
// supplied stage durations. The analytic evaluation of each stage lives in
// internal/core (PredictWorkflow) and internal/service; the discrete-event
// counterpart in internal/mrsim (Config.Workflow).
package workflow

import (
	"errors"
	"fmt"
)

// Edge is one precedence constraint: stage To may start only after stage
// From has finished.
type Edge struct {
	// From is the predecessor stage's name.
	From string `json:"from"`
	// To is the dependent stage's name.
	To string `json:"to"`
}

// DAG is a workflow shape: ordered stage names plus precedence edges.
// Stage order is declaration order; every deterministic traversal below
// breaks ties by it. A DAG with no edges is a fork of independent stages;
// a chain is K stages with K-1 edges.
type DAG struct {
	// Stages are the stage names, unique and non-empty.
	Stages []string `json:"stages"`
	// Edges are the precedence constraints; each must reference two
	// distinct declared stages, and no duplicates.
	Edges []Edge `json:"edges,omitempty"`
}

// NumStages returns the stage count.
func (d *DAG) NumStages() int { return len(d.Stages) }

// Index returns the declaration index of a stage name, or -1.
func (d *DAG) Index(name string) int {
	for i, s := range d.Stages {
		if s == name {
			return i
		}
	}
	return -1
}

// Chain builds a linear DAG: each stage depends on the previous one.
func Chain(stages ...string) *DAG {
	d := &DAG{Stages: stages}
	for i := 1; i < len(stages); i++ {
		d.Edges = append(d.Edges, Edge{From: stages[i-1], To: stages[i]})
	}
	return d
}

// adjacency resolves edges into per-stage parent and child index lists,
// validating edge structure (undefined references, self-edges, duplicates)
// along the way. It never panics on malformed input.
func (d *DAG) adjacency() (parents, children [][]int, err error) {
	n := len(d.Stages)
	idx := make(map[string]int, n)
	for i, s := range d.Stages {
		if s == "" {
			return nil, nil, fmt.Errorf("workflow: stage %d has an empty name", i)
		}
		if j, dup := idx[s]; dup {
			return nil, nil, fmt.Errorf("workflow: duplicate stage name %q (stages %d and %d)", s, j, i)
		}
		idx[s] = i
	}
	parents = make([][]int, n)
	children = make([][]int, n)
	seen := make(map[[2]int]bool, len(d.Edges))
	for _, e := range d.Edges {
		from, ok := idx[e.From]
		if !ok {
			return nil, nil, fmt.Errorf("workflow: edge %q->%q references undefined stage %q", e.From, e.To, e.From)
		}
		to, ok := idx[e.To]
		if !ok {
			return nil, nil, fmt.Errorf("workflow: edge %q->%q references undefined stage %q", e.From, e.To, e.To)
		}
		if from == to {
			return nil, nil, fmt.Errorf("workflow: self-edge on stage %q", e.From)
		}
		if seen[[2]int{from, to}] {
			return nil, nil, fmt.Errorf("workflow: duplicate edge %q->%q", e.From, e.To)
		}
		seen[[2]int{from, to}] = true
		parents[to] = append(parents[to], from)
		children[from] = append(children[from], to)
	}
	return parents, children, nil
}

// Adjacency resolves the edges into per-stage parent and child index
// lists (declaration-order indices), validating edge structure along the
// way. Simulators use it to release a stage once its parents finish.
func (d *DAG) Adjacency() (parents, children [][]int, err error) {
	if d == nil || len(d.Stages) == 0 {
		return nil, nil, errors.New("workflow: needs at least one stage")
	}
	return d.adjacency()
}

// Validate checks the DAG is well-formed: at least one stage, unique
// non-empty names, edges referencing declared stages only, no self-edges,
// no duplicate edges, and no cycles. It never panics, whatever the input.
func (d *DAG) Validate() error {
	if d == nil || len(d.Stages) == 0 {
		return errors.New("workflow: needs at least one stage")
	}
	_, err := d.TopoOrder()
	return err
}

// TopoOrder returns the stage indices in deterministic topological order:
// among ready stages, the one declared first goes first (Kahn's algorithm
// with declaration-order tie-breaking). It errors on any structural defect
// Validate rejects, including cycles.
func (d *DAG) TopoOrder() ([]int, error) {
	if d == nil || len(d.Stages) == 0 {
		return nil, errors.New("workflow: needs at least one stage")
	}
	parents, children, err := d.adjacency()
	if err != nil {
		return nil, err
	}
	n := len(d.Stages)
	indeg := make([]int, n)
	for i := range parents {
		indeg[i] = len(parents[i])
	}
	order := make([]int, 0, n)
	done := make([]bool, n)
	for len(order) < n {
		next := -1
		for i := 0; i < n; i++ {
			if !done[i] && indeg[i] == 0 {
				next = i
				break
			}
		}
		if next < 0 {
			var stuck []string
			for i := 0; i < n; i++ {
				if !done[i] {
					stuck = append(stuck, d.Stages[i])
				}
			}
			return nil, fmt.Errorf("workflow: cycle through stages %v", stuck)
		}
		done[next] = true
		order = append(order, next)
		for _, c := range children[next] {
			indeg[c]--
		}
	}
	return order, nil
}

// Waves returns each stage's wave index: roots are wave 0 and every other
// stage sits one wave past its deepest parent. Stages in the same wave
// have no precedence path between them, so on a shared cluster they run
// concurrently — the analytic model prices a wave as a closed multi-job
// population, mirroring the paper's N-concurrent-jobs methodology.
func (d *DAG) Waves() ([]int, error) {
	order, err := d.TopoOrder()
	if err != nil {
		return nil, err
	}
	parents, _, err := d.adjacency()
	if err != nil {
		return nil, err
	}
	wave := make([]int, len(d.Stages))
	for _, i := range order {
		w := 0
		for _, p := range parents[i] {
			if wave[p]+1 > w {
				w = wave[p] + 1
			}
		}
		wave[i] = w
	}
	return wave, nil
}

// Concurrency returns, per stage, the size of its contention group: the
// number of stages sharing its wave for which sameGroup reports true
// (itself included). Callers use it as the closed-network population of a
// stage's model evaluation; sameGroup typically compares cluster specs so
// stages with stage-local clusters do not contend with shared-cluster ones.
func Concurrency(waves []int, sameGroup func(i, j int) bool) []int {
	out := make([]int, len(waves))
	for i := range waves {
		n := 1
		for j := range waves {
			if j != i && waves[j] == waves[i] && sameGroup(i, j) {
				n++
			}
		}
		out[i] = n
	}
	return out
}

// Schedule is the critical-path timing of one workflow evaluation: classic
// CPM over the DAG with fixed per-stage durations.
type Schedule struct {
	// Start and Finish are each stage's earliest start and finish times:
	// Start is the max of the parents' finishes (0 for roots), Finish is
	// Start plus the stage's duration.
	Start  []float64
	Finish []float64 // see Start
	// Slack is each stage's total float: how much the stage could slip
	// without moving the workflow's makespan. Critical stages have 0.
	Slack []float64
	// Critical flags stages with (numerically) zero slack.
	Critical []bool
	// CriticalPath lists the stage indices of one longest source-to-sink
	// path in precedence order — the chain that sets the makespan.
	CriticalPath []int
	// Makespan is the workflow response time: the latest stage finish.
	Makespan float64
}

// ComputeSchedule runs the critical-path method over the DAG with the
// given per-stage durations (same order as Stages, all nonnegative).
func (d *DAG) ComputeSchedule(durations []float64) (Schedule, error) {
	order, err := d.TopoOrder()
	if err != nil {
		return Schedule{}, err
	}
	if len(durations) != len(d.Stages) {
		return Schedule{}, fmt.Errorf("workflow: %d durations for %d stages", len(durations), len(d.Stages))
	}
	for i, dur := range durations {
		if dur < 0 {
			return Schedule{}, fmt.Errorf("workflow: stage %q has negative duration %v", d.Stages[i], dur)
		}
	}
	parents, children, err := d.adjacency()
	if err != nil {
		return Schedule{}, err
	}
	n := len(d.Stages)
	sc := Schedule{
		Start:    make([]float64, n),
		Finish:   make([]float64, n),
		Slack:    make([]float64, n),
		Critical: make([]bool, n),
	}
	for _, i := range order {
		start := 0.0
		for _, p := range parents[i] {
			if sc.Finish[p] > start {
				start = sc.Finish[p]
			}
		}
		sc.Start[i] = start
		sc.Finish[i] = start + durations[i]
		if sc.Finish[i] > sc.Makespan {
			sc.Makespan = sc.Finish[i]
		}
	}
	// Backward pass: latest finish is the makespan for sinks, else the min
	// over children of their latest start; slack is latest minus earliest.
	latest := make([]float64, n)
	for i := range latest {
		latest[i] = sc.Makespan
	}
	for k := len(order) - 1; k >= 0; k-- {
		i := order[k]
		for _, c := range children[i] {
			if ls := latest[c] - durations[c]; ls < latest[i] {
				latest[i] = ls
			}
		}
		sc.Slack[i] = latest[i] - sc.Finish[i]
		// Start = max(parent finishes) is exact float arithmetic, so zero
		// slack is exact along the longest path; the epsilon only guards
		// pathological duration inputs.
		sc.Critical[i] = sc.Slack[i] <= 1e-12*sc.Makespan
	}
	// Extract one critical path: the earliest-declared sink achieving the
	// makespan, walked back through parents whose finish equals the stage's
	// start (the binding predecessor), earliest-declared first.
	end := -1
	for i := 0; i < n; i++ {
		if sc.Finish[i] == sc.Makespan {
			end = i
			break
		}
	}
	var path []int
	for cur := end; cur >= 0; {
		path = append(path, cur)
		next := -1
		for _, p := range parents[cur] {
			if sc.Finish[p] == sc.Start[cur] && (next < 0 || p < next) {
				next = p
			}
		}
		cur = next
	}
	for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
		path[l], path[r] = path[r], path[l]
	}
	sc.CriticalPath = path
	return sc, nil
}
