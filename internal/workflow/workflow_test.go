package workflow

import (
	"math"
	"reflect"
	"testing"
)

func diamond() *DAG {
	return &DAG{
		Stages: []string{"src", "left", "right", "join"},
		Edges: []Edge{
			{From: "src", To: "left"}, {From: "src", To: "right"},
			{From: "left", To: "join"}, {From: "right", To: "join"},
		},
	}
}

func TestValidateRejectsMalformedDAGs(t *testing.T) {
	cases := []struct {
		name string
		dag  *DAG
	}{
		{"nil", nil},
		{"empty", &DAG{}},
		{"empty-name", &DAG{Stages: []string{"a", ""}}},
		{"duplicate-name", &DAG{Stages: []string{"a", "a"}}},
		{"undefined-from", &DAG{Stages: []string{"a"}, Edges: []Edge{{From: "x", To: "a"}}}},
		{"undefined-to", &DAG{Stages: []string{"a"}, Edges: []Edge{{From: "a", To: "x"}}}},
		{"self-edge", &DAG{Stages: []string{"a"}, Edges: []Edge{{From: "a", To: "a"}}}},
		{"duplicate-edge", &DAG{Stages: []string{"a", "b"},
			Edges: []Edge{{From: "a", To: "b"}, {From: "a", To: "b"}}}},
		{"two-cycle", &DAG{Stages: []string{"a", "b"},
			Edges: []Edge{{From: "a", To: "b"}, {From: "b", To: "a"}}}},
		{"three-cycle", &DAG{Stages: []string{"a", "b", "c"},
			Edges: []Edge{{From: "a", To: "b"}, {From: "b", To: "c"}, {From: "c", To: "a"}}}},
	}
	for _, tc := range cases {
		if err := tc.dag.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if err := diamond().Validate(); err != nil {
		t.Errorf("diamond rejected: %v", err)
	}
	if err := (&DAG{Stages: []string{"solo"}}).Validate(); err != nil {
		t.Errorf("single stage rejected: %v", err)
	}
}

func TestTopoOrderDeterministic(t *testing.T) {
	// Independent stages come back in declaration order...
	fork := &DAG{Stages: []string{"c", "a", "b"}}
	order, err := fork.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []int{0, 1, 2}) {
		t.Errorf("fork order %v", order)
	}
	// ...and precedence overrides declaration: join declared first still
	// sorts last.
	d := &DAG{
		Stages: []string{"join", "src", "left", "right"},
		Edges: []Edge{
			{From: "src", To: "left"}, {From: "src", To: "right"},
			{From: "left", To: "join"}, {From: "right", To: "join"},
		},
	}
	order, err = d.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []int{1, 2, 3, 0}) {
		t.Errorf("diamond order %v", order)
	}
}

func TestChainAndIndex(t *testing.T) {
	c := Chain("a", "b", "c")
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(c.Edges) != 2 {
		t.Fatalf("chain edges %v", c.Edges)
	}
	if c.Index("b") != 1 || c.Index("missing") != -1 {
		t.Errorf("Index misbehaves: b=%d missing=%d", c.Index("b"), c.Index("missing"))
	}
}

func TestWavesAndConcurrency(t *testing.T) {
	waves, err := diamond().Waves()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(waves, []int{0, 1, 1, 2}) {
		t.Errorf("diamond waves %v", waves)
	}
	all := Concurrency(waves, func(i, j int) bool { return true })
	if !reflect.DeepEqual(all, []int{1, 2, 2, 1}) {
		t.Errorf("shared-cluster concurrency %v", all)
	}
	none := Concurrency(waves, func(i, j int) bool { return false })
	if !reflect.DeepEqual(none, []int{1, 1, 1, 1}) {
		t.Errorf("disjoint-cluster concurrency %v", none)
	}
}

func TestComputeScheduleChain(t *testing.T) {
	sc, err := Chain("a", "b", "c").ComputeSchedule([]float64{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Makespan != 60 {
		t.Errorf("makespan %v", sc.Makespan)
	}
	if !reflect.DeepEqual(sc.Start, []float64{0, 10, 30}) {
		t.Errorf("starts %v", sc.Start)
	}
	for i, s := range sc.Slack {
		if s != 0 || !sc.Critical[i] {
			t.Errorf("stage %d slack %v critical %v, want 0/true", i, s, sc.Critical[i])
		}
	}
	if !reflect.DeepEqual(sc.CriticalPath, []int{0, 1, 2}) {
		t.Errorf("critical path %v", sc.CriticalPath)
	}
}

func TestComputeScheduleDiamondSlack(t *testing.T) {
	// left takes 40, right 15: right has 25 slack and stays off the
	// critical path.
	sc, err := diamond().ComputeSchedule([]float64{10, 40, 15, 5})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Makespan != 55 {
		t.Fatalf("makespan %v", sc.Makespan)
	}
	if sc.Slack[2] != 25 || sc.Critical[2] {
		t.Errorf("right slack %v critical %v, want 25/false", sc.Slack[2], sc.Critical[2])
	}
	if sc.Slack[1] != 0 || !sc.Critical[1] {
		t.Errorf("left slack %v, want critical", sc.Slack[1])
	}
	if !reflect.DeepEqual(sc.CriticalPath, []int{0, 1, 3}) {
		t.Errorf("critical path %v", sc.CriticalPath)
	}
	if sc.Start[3] != 50 {
		t.Errorf("join start %v, want 50", sc.Start[3])
	}
}

func TestComputeScheduleRejectsBadDurations(t *testing.T) {
	if _, err := Chain("a", "b").ComputeSchedule([]float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Chain("a", "b").ComputeSchedule([]float64{1, math.Inf(-1)}); err == nil {
		t.Error("negative duration accepted")
	}
}

func TestAdjacency(t *testing.T) {
	parents, children, err := diamond().Adjacency()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parents[3], []int{1, 2}) {
		t.Errorf("join parents %v", parents[3])
	}
	if !reflect.DeepEqual(children[0], []int{1, 2}) {
		t.Errorf("src children %v", children[0])
	}
	var nilDAG *DAG
	if _, _, err := nilDAG.Adjacency(); err == nil {
		t.Error("nil DAG accepted")
	}
}
