package mrsim

import (
	"testing"

	"hadoop2perf/internal/cluster"
	"hadoop2perf/internal/workload"
	"hadoop2perf/internal/yarn"
)

// classForm rewrites a flat spec as a single-class spec with the flat
// per-node fields zeroed, proving the simulator reads the class table.
func classForm(s cluster.Spec) cluster.Spec {
	s.Classes = []cluster.NodeClass{{
		Name:        "gen1",
		Count:       s.NumNodes,
		Capacity:    s.NodeCapacity,
		CPUs:        s.CPUPerNode,
		Disks:       s.DiskPerNode,
		DiskMBps:    s.DiskMBps,
		NetworkMBps: s.NetworkMBps,
	}}
	s.NumNodes = 0
	s.NodeCapacity = cluster.Resource{}
	s.CPUPerNode, s.DiskPerNode = 0, 0
	s.DiskMBps, s.NetworkMBps = 0, 0
	return s
}

// TestSimHomogeneousEquivalence pins the class-aware simulator to
// bit-identical outputs of the pre-refactor homogeneous implementation via
// hex-exact goldens captured before node classes existed, for both the flat
// spec and its single-class rewrite.
func TestSimHomogeneousEquivalence(t *testing.T) {
	cases := []struct {
		nodes, reduces, numJobs int
		inputMB                 float64
		pol                     yarn.Policy
		wantMean, wantMakespan  float64 // pre-refactor goldens, bit-exact
		wantEvents              int
	}{
		{4, 4, 1, 1024, yarn.PolicyFIFO, 0x1.d761f49df12aap+05, 0x1.d761f49df12aap+05, 139},
		{8, 2, 2, 512, yarn.PolicyFair, 0x1.d4bbf3983955ap+05, 0x1.da7642cccc38p+05, 101},
	}
	for _, tc := range cases {
		flat := cluster.Default(tc.nodes)
		jobs := make([]workload.Job, tc.numJobs)
		for i := range jobs {
			j, err := workload.NewJob(i, tc.inputMB, 128, tc.reduces, workload.WordCount())
			if err != nil {
				t.Fatal(err)
			}
			jobs[i] = j
		}
		for name, spec := range map[string]cluster.Spec{"flat": flat, "single-class": classForm(flat)} {
			res, err := Run(Config{Spec: spec, Jobs: jobs, Seed: 42, Scheduler: tc.pol})
			if err != nil {
				t.Fatalf("%s n=%d: %v", name, tc.nodes, err)
			}
			if got := res.MeanResponse(); got != tc.wantMean {
				t.Errorf("%s n=%d r=%d j=%d: mean %x, want golden %x", name, tc.nodes, tc.reduces, tc.numJobs, got, tc.wantMean)
			}
			if res.Makespan != tc.wantMakespan {
				t.Errorf("%s n=%d: makespan %x, want golden %x", name, tc.nodes, res.Makespan, tc.wantMakespan)
			}
			if res.Events != tc.wantEvents {
				t.Errorf("%s n=%d: events %d, want %d", name, tc.nodes, res.Events, tc.wantEvents)
			}
		}
	}
}

// TestSimHeterogeneousSlowdown checks that the simulator actually prices
// class hardware: degrading half the cluster to a slower generation must
// increase the measured response, and per-node speeds must show up in task
// durations (a map on a slow node runs longer than its twin on a fast one).
func TestSimHeterogeneousSlowdown(t *testing.T) {
	job, err := workload.NewJob(0, 1024, 128, 2, workload.WordCount())
	if err != nil {
		t.Fatal(err)
	}
	base := cluster.Resource{MemoryMB: 32768, VCores: 32}
	mk := func(slowSpeed float64, slowDisk float64) cluster.Spec {
		spec := cluster.Default(0)
		spec.Classes = []cluster.NodeClass{
			{Name: "fast", Count: 2, Capacity: base, CPUs: 6, Disks: 1, DiskMBps: 240, NetworkMBps: 110, Speed: 1},
			{Name: "slow", Count: 2, Capacity: base, CPUs: 6, Disks: 1, DiskMBps: slowDisk, NetworkMBps: 110, Speed: slowSpeed},
		}
		return spec
	}

	run := func(spec cluster.Spec) Result {
		res, err := Run(Config{Spec: spec, Jobs: []workload.Job{job}, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	uniform := run(mk(1, 240))
	degraded := run(mk(0.25, 60))
	if degraded.MeanResponse() <= uniform.MeanResponse() {
		t.Errorf("slow class did not slow the job: degraded %v <= uniform %v",
			degraded.MeanResponse(), uniform.MeanResponse())
	}

	// Per-node pricing: among the degraded run's map records, the mean
	// duration on slow nodes (2, 3) must exceed the mean on fast nodes.
	var fastSum, slowSum float64
	var fastN, slowN int
	for _, rec := range degraded.Jobs[0].Tasks {
		if rec.Class != ClassMap {
			continue
		}
		if rec.Node < 2 {
			fastSum += rec.Duration()
			fastN++
		} else {
			slowSum += rec.Duration()
			slowN++
		}
	}
	if fastN == 0 || slowN == 0 {
		t.Fatalf("expected maps on both classes (fast %d, slow %d)", fastN, slowN)
	}
	if slowSum/float64(slowN) <= fastSum/float64(fastN) {
		t.Errorf("slow-node maps not slower: slow mean %v vs fast mean %v",
			slowSum/float64(slowN), fastSum/float64(fastN))
	}
}
