package mrsim

import (
	"math"
	"testing"

	"hadoop2perf/internal/cluster"
	"hadoop2perf/internal/workload"
	"hadoop2perf/internal/yarn"
)

func smallJob(t *testing.T, inputMB float64, reduces int) workload.Job {
	t.Helper()
	j, err := workload.NewJob(0, inputMB, 128, reduces, workload.WordCount())
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func run(t *testing.T, cfg Config) Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunValidation(t *testing.T) {
	spec := cluster.Default(2)
	if _, err := Run(Config{Spec: spec}); err == nil {
		t.Error("no jobs accepted")
	}
	if _, err := Run(Config{Spec: cluster.Spec{}, Jobs: []workload.Job{smallJob(t, 256, 1)}}); err == nil {
		t.Error("invalid spec accepted")
	}
	if _, err := Run(Config{Spec: spec, Jobs: []workload.Job{{}}}); err == nil {
		t.Error("invalid job accepted")
	}
	if _, err := Run(Config{
		Spec: spec, Jobs: []workload.Job{smallJob(t, 256, 1)},
		SubmitTimes: []float64{0, 1},
	}); err == nil {
		t.Error("mismatched SubmitTimes accepted")
	}
}

func TestSingleJobCompletes(t *testing.T) {
	res := run(t, Config{
		Spec: cluster.Default(2),
		Jobs: []workload.Job{smallJob(t, 512, 2)},
		Seed: 1,
	})
	if len(res.Jobs) != 1 {
		t.Fatalf("%d job results", len(res.Jobs))
	}
	j := res.Jobs[0]
	if j.Response <= 0 || j.End <= j.Start {
		t.Errorf("inconsistent times: %+v", j)
	}
	if res.Makespan != j.End {
		t.Errorf("makespan = %v, want %v", res.Makespan, j.End)
	}
	// 4 maps + 2 shuffle-sorts + 2 merges.
	if len(j.Tasks) != 8 {
		t.Errorf("%d task records, want 8", len(j.Tasks))
	}
}

func TestTaskRecordAccounting(t *testing.T) {
	job := smallJob(t, 1024, 4) // 8 maps, 4 reduces
	res := run(t, Config{Spec: cluster.Default(4), Jobs: []workload.Job{job}, Seed: 2})
	counts := map[TaskClass]int{}
	for _, task := range res.Jobs[0].Tasks {
		counts[task.Class]++
		if task.End < task.Start || task.Start < 0 {
			t.Errorf("task %v has bad times", task)
		}
		if task.Node < 0 || task.Node >= 4 {
			t.Errorf("task on invalid node %d", task.Node)
		}
	}
	if counts[ClassMap] != 8 {
		t.Errorf("map records = %d, want 8", counts[ClassMap])
	}
	if counts[ClassShuffleSort] != 4 || counts[ClassMerge] != 4 {
		t.Errorf("reduce records = %d/%d, want 4/4", counts[ClassShuffleSort], counts[ClassMerge])
	}
}

func TestDeterministicForSeed(t *testing.T) {
	cfg := Config{Spec: cluster.Default(2), Jobs: []workload.Job{smallJob(t, 512, 2)}, Seed: 42}
	a := run(t, cfg)
	b := run(t, cfg)
	if a.MeanResponse() != b.MeanResponse() {
		t.Errorf("same seed, different results: %v vs %v", a.MeanResponse(), b.MeanResponse())
	}
	cfg.Seed = 43
	c := run(t, cfg)
	if a.MeanResponse() == c.MeanResponse() {
		t.Error("different seeds produced identical results (jitter inactive?)")
	}
}

func TestShuffleOverlapsMapPhase(t *testing.T) {
	// Slow start + spare capacity: the first shuffle fetch should begin
	// before the last map finishes (the pipeline the paper models).
	job := smallJob(t, 5*1024, 4)
	res := run(t, Config{Spec: cluster.Default(4), Jobs: []workload.Job{job}, Seed: 1})
	var lastMapEnd, firstSSStart float64
	firstSSStart = math.Inf(1)
	for _, task := range res.Jobs[0].Tasks {
		switch task.Class {
		case ClassMap:
			if task.End > lastMapEnd {
				lastMapEnd = task.End
			}
		case ClassShuffleSort:
			if task.Start < firstSSStart {
				firstSSStart = task.Start
			}
		}
	}
	if firstSSStart >= lastMapEnd {
		t.Errorf("no pipeline: shuffle starts %v after last map %v", firstSSStart, lastMapEnd)
	}
}

func TestMergeAfterShuffle(t *testing.T) {
	job := smallJob(t, 1024, 4)
	res := run(t, Config{Spec: cluster.Default(4), Jobs: []workload.Job{job}, Seed: 1})
	ssEnd := map[int]float64{}
	for _, task := range res.Jobs[0].Tasks {
		if task.Class == ClassShuffleSort {
			ssEnd[task.TaskID] = task.End
		}
	}
	for _, task := range res.Jobs[0].Tasks {
		if task.Class == ClassMerge {
			if task.Start < ssEnd[task.TaskID]-1e-9 {
				t.Errorf("merge %d starts %v before its shuffle ends %v",
					task.TaskID, task.Start, ssEnd[task.TaskID])
			}
		}
	}
}

func TestMapsMostlyDataLocal(t *testing.T) {
	job := smallJob(t, 1024, 4)
	res := run(t, Config{Spec: cluster.Default(4), Jobs: []workload.Job{job}, Seed: 1})
	local := 0
	total := 0
	for _, task := range res.Jobs[0].Tasks {
		if task.Class == ClassMap {
			total++
			if task.Local {
				local++
			}
		}
	}
	if local*2 < total {
		t.Errorf("only %d/%d maps data-local", local, total)
	}
}

func TestMultiJobFIFOFavorsFirstJob(t *testing.T) {
	// 5 GB = 40 maps > 32 cluster map slots, so the cluster saturates and
	// FIFO ordering across applications becomes visible.
	j := smallJob(t, 5*1024, 4)
	single := run(t, Config{Spec: cluster.Default(4), Jobs: []workload.Job{j}, Seed: 1})
	jobs := []workload.Job{j, j, j}
	for i := range jobs {
		jobs[i].ID = i
	}
	res := run(t, Config{Spec: cluster.Default(4), Jobs: jobs, Seed: 1, Scheduler: yarn.PolicyFIFO})
	if len(res.Jobs) != 3 {
		t.Fatalf("%d jobs", len(res.Jobs))
	}
	// Under FIFO the first-registered job takes the cluster first: its
	// response stays close to the single-job response, while the last job
	// waits behind the queue.
	if res.Jobs[0].Response > single.MeanResponse()*1.5 {
		t.Errorf("first FIFO job response %v far above single-job %v",
			res.Jobs[0].Response, single.MeanResponse())
	}
	if res.Jobs[2].Response <= res.Jobs[0].Response {
		t.Errorf("last FIFO job (%v) not slower than first (%v)",
			res.Jobs[2].Response, res.Jobs[0].Response)
	}
}

func TestMultiJobFairSharesSlowdown(t *testing.T) {
	j := smallJob(t, 1024, 4)
	single := run(t, Config{Spec: cluster.Default(4), Jobs: []workload.Job{j}, Seed: 1})
	jobs := []workload.Job{j, j, j, j}
	for i := range jobs {
		jobs[i].ID = i
	}
	multi := run(t, Config{Spec: cluster.Default(4), Jobs: jobs, Seed: 1, Scheduler: yarn.PolicyFair})
	if multi.MeanResponse() <= single.MeanResponse() {
		t.Errorf("4 concurrent jobs (%v) not slower than 1 (%v)",
			multi.MeanResponse(), single.MeanResponse())
	}
	// Under fair sharing, the spread of completions stays well below the
	// full serialization spread.
	var minEnd, maxEnd float64 = math.Inf(1), 0
	for _, jr := range multi.Jobs {
		if jr.End < minEnd {
			minEnd = jr.End
		}
		if jr.End > maxEnd {
			maxEnd = jr.End
		}
	}
	if maxEnd-minEnd > single.MeanResponse()*2 {
		t.Errorf("fair sharing spread = %v, looks serialized", maxEnd-minEnd)
	}
}

func TestStaggeredSubmission(t *testing.T) {
	j := smallJob(t, 512, 2)
	jobs := []workload.Job{j, j}
	jobs[1].ID = 1
	res := run(t, Config{
		Spec: cluster.Default(2), Jobs: jobs, Seed: 1,
		SubmitTimes: []float64{0, 100},
	})
	if res.Jobs[1].Submit != 100 {
		t.Errorf("submit time = %v", res.Jobs[1].Submit)
	}
	if res.Jobs[1].Start < 100 {
		t.Errorf("job 1 started at %v before submission", res.Jobs[1].Start)
	}
}

func TestMoreNodesNotSlower(t *testing.T) {
	j := smallJob(t, 5*1024, 4)
	slow := run(t, Config{Spec: cluster.Default(2), Jobs: []workload.Job{j}, Seed: 1})
	fast := run(t, Config{Spec: cluster.Default(8), Jobs: []workload.Job{j}, Seed: 1})
	if fast.MeanResponse() >= slow.MeanResponse() {
		t.Errorf("8 nodes (%v) not faster than 2 (%v)", fast.MeanResponse(), slow.MeanResponse())
	}
}

func TestRunMedianOfSeeds(t *testing.T) {
	cfg := Config{Spec: cluster.Default(2), Jobs: []workload.Job{smallJob(t, 512, 2)}, Seed: 1}
	med, err := RunMedianOfSeeds(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	// The median run's mean response must be one of the five seeds' values,
	// and lie between the min and max.
	var values []float64
	for i := 0; i < 5; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)
		r := run(t, c)
		values = append(values, r.MeanResponse())
	}
	lo, hi := values[0], values[0]
	found := false
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
		if v == med.MeanResponse() {
			found = true
		}
	}
	if !found {
		t.Errorf("median %v not among seed results %v", med.MeanResponse(), values)
	}
	if med.MeanResponse() < lo || med.MeanResponse() > hi {
		t.Errorf("median %v outside [%v,%v]", med.MeanResponse(), lo, hi)
	}
	if _, err := RunMedianOfSeeds(cfg, 0); err == nil {
		t.Error("zero reps accepted")
	}
}

func TestBiggerInputSlower(t *testing.T) {
	small := run(t, Config{Spec: cluster.Default(4), Jobs: []workload.Job{smallJob(t, 1024, 4)}, Seed: 1})
	big := run(t, Config{Spec: cluster.Default(4), Jobs: []workload.Job{smallJob(t, 5*1024, 4)}, Seed: 1})
	if big.MeanResponse() <= small.MeanResponse() {
		t.Errorf("5GB (%v) not slower than 1GB (%v)", big.MeanResponse(), small.MeanResponse())
	}
}

func TestNoSlowStartDelaysShuffle(t *testing.T) {
	j := smallJob(t, 5*1024, 4)
	j.SlowStart = false
	res := run(t, Config{Spec: cluster.Default(4), Jobs: []workload.Job{j}, Seed: 1})
	var lastMapEnd, firstSS float64
	firstSS = math.Inf(1)
	for _, task := range res.Jobs[0].Tasks {
		switch task.Class {
		case ClassMap:
			if task.End > lastMapEnd {
				lastMapEnd = task.End
			}
		case ClassShuffleSort:
			if task.Start < firstSS {
				firstSS = task.Start
			}
		}
	}
	// Reduce containers are requested only after all maps completed, so the
	// shuffle window cannot open much before the map phase ends.
	if firstSS < lastMapEnd*0.5 {
		t.Errorf("shuffle started at %v despite disabled slow start (last map %v)", firstSS, lastMapEnd)
	}
}
