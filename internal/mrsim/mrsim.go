// Package mrsim is a discrete-event simulator of MapReduce job execution on
// a Hadoop 2.x / YARN cluster. It substitutes for the paper's real 4–8 node
// Hadoop testbed (§5.1): model estimates are validated against response
// times *measured* on this simulator.
//
// The simulator reproduces the execution mechanics the paper's model must
// capture:
//
//   - YARN container allocation through internal/yarn (FIFO across jobs, map
//     priority 20 > reduce priority 10, node-locality for maps, late
//     container delivery via heartbeats);
//   - HDFS block placement and data-local map scheduling;
//   - the map/shuffle pipeline: each reducer fetches a map's partition as
//     soon as that map completes (slow start: reduce containers are requested
//     after 5% of maps finish);
//   - contention at shared resources: per-node processor-sharing CPU and
//     disk, and a shared cluster network;
//   - stochastic task-time jitter (stragglers), seeded for reproducibility.
package mrsim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"hadoop2perf/internal/cluster"
	"hadoop2perf/internal/hdfs"
	"hadoop2perf/internal/simevent"
	"hadoop2perf/internal/workload"
	"hadoop2perf/internal/yarn"
)

// enginePool recycles discrete-event engines across runs: a reset engine
// keeps its calendar and arena capacity, so repeated simulations (median of
// seeds, planner sweeps, concurrent service traffic) skip the warm-up
// allocations of a cold calendar.
var enginePool = sync.Pool{New: func() any { return simevent.NewEngine() }}

// maxEvents bounds a single simulation run.
const maxEvents = 20_000_000

// TaskClass labels trace records with the paper's three task classes.
type TaskClass string

// The three task classes of the model (C = 3, §4.1).
const (
	ClassMap         TaskClass = "map"
	ClassShuffleSort TaskClass = "shuffle-sort"
	ClassMerge       TaskClass = "merge"
)

// TaskRecord is one executed (sub)task in the job-history trace.
type TaskRecord struct {
	JobID   int       `json:"job"`
	Class   TaskClass `json:"class"`
	TaskID  int       `json:"task"`
	Node    int       `json:"node"`
	Start   float64   `json:"start"`
	End     float64   `json:"end"`
	CPU     float64   `json:"cpu"`     // uncontended processor demand, s
	Disk    float64   `json:"disk"`    // uncontended local-disk demand, s
	Network float64   `json:"network"` // uncontended network demand, s
	Local   bool      `json:"local"`   // data-local container (maps)
}

// Duration returns End-Start.
func (t TaskRecord) Duration() float64 { return t.End - t.Start }

// JobResult summarizes one job's simulated execution.
type JobResult struct {
	JobID    int          `json:"job"`
	Submit   float64      `json:"submit"`
	Start    float64      `json:"start"` // AM registered
	End      float64      `json:"end"`
	Response float64      `json:"response"` // End - Submit
	Tasks    []TaskRecord `json:"tasks"`
}

// Result is a full simulation outcome.
type Result struct {
	Jobs     []JobResult `json:"jobs"`
	Makespan float64     `json:"makespan"`
	Events   int         `json:"events"`
}

// MeanResponse returns the average job response time.
func (r Result) MeanResponse() float64 {
	if len(r.Jobs) == 0 {
		return 0
	}
	var s float64
	for _, j := range r.Jobs {
		s += j.Response
	}
	return s / float64(len(r.Jobs))
}

// Config drives one simulation run.
type Config struct {
	Spec cluster.Spec
	Jobs []workload.Job
	// SubmitTimes optionally staggers submissions; default all at t=0.
	SubmitTimes []float64
	// Seed selects the jitter stream; identical seeds reproduce runs exactly.
	Seed int64
	// Scheduler selects the root-queue ordering policy. Multi-job experiments
	// use yarn.PolicyFair so concurrent jobs progress together, matching the
	// per-job slowdowns of the paper's multi-job measurements.
	Scheduler yarn.Policy
}

// Run executes the simulation to completion.
func Run(cfg Config) (Result, error) {
	if err := cfg.Spec.Validate(); err != nil {
		return Result{}, err
	}
	if len(cfg.Jobs) == 0 {
		return Result{}, errors.New("mrsim: no jobs to run")
	}
	for i, j := range cfg.Jobs {
		if err := j.Validate(); err != nil {
			return Result{}, fmt.Errorf("mrsim: job %d: %w", i, err)
		}
	}
	if cfg.SubmitTimes != nil && len(cfg.SubmitTimes) != len(cfg.Jobs) {
		return Result{}, errors.New("mrsim: SubmitTimes length mismatch")
	}

	eng := enginePool.Get().(*simevent.Engine)
	// Reset before Put (not after Get): a failed run leaves calendar
	// closures pinning the whole sim graph, which must not survive in the
	// pool.
	defer func() {
		eng.Reset()
		enginePool.Put(eng)
	}()
	s, err := newSim(cfg, eng)
	if err != nil {
		return Result{}, err
	}
	for i := range s.jobs {
		jr := s.jobs[i]
		s.eng.At(jr.submit, func() { s.startJob(jr) })
	}
	n, err := s.eng.Run(maxEvents)
	if err != nil {
		return Result{}, err
	}

	res := Result{Events: n}
	for _, jr := range s.jobs {
		if !jr.finished {
			return Result{}, fmt.Errorf("mrsim: job %d did not finish (deadlock?)", jr.job.ID)
		}
		sort.Slice(jr.record.Tasks, func(a, b int) bool {
			ta, tb := jr.record.Tasks[a], jr.record.Tasks[b]
			if ta.Start != tb.Start {
				return ta.Start < tb.Start
			}
			return ta.TaskID < tb.TaskID
		})
		res.Jobs = append(res.Jobs, *jr.record)
		if jr.record.End > res.Makespan {
			res.Makespan = jr.record.End
		}
	}
	return res, nil
}

// sim is the mutable simulation state.
type sim struct {
	cfg      Config
	eng      *simevent.Engine
	rm       *yarn.RM
	numNodes int
	cpu      []*simevent.PSResource // per node
	disk     []*simevent.PSResource // per node
	net      *simevent.PSResource   // shared cluster fabric
	// Per-node hardware, resolved once from the spec's class table: service
	// demands of a task are computed with the bandwidths and compute speed of
	// the node its container landed on.
	diskMBps []float64
	netMBps  []float64
	speed    []float64
	rng      *rand.Rand
	jobs     []*jobRun
}

func newSim(cfg Config, eng *simevent.Engine) (*sim, error) {
	rm, err := yarn.NewRM(eng, cfg.Spec)
	if err != nil {
		return nil, err
	}
	rm.Policy = cfg.Scheduler
	s := &sim{
		cfg:      cfg,
		eng:      eng,
		rm:       rm,
		numNodes: cfg.Spec.TotalNodes(),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
	}
	i := 0
	for _, class := range cfg.Spec.ClassView() {
		sp := class.SpeedFactor()
		for n := 0; n < class.Count; n++ {
			s.cpu = append(s.cpu, simevent.NewPSResource(eng, fmt.Sprintf("cpu%d", i), float64(class.CPUs)))
			s.disk = append(s.disk, simevent.NewPSResource(eng, fmt.Sprintf("disk%d", i), float64(class.Disks)))
			s.diskMBps = append(s.diskMBps, class.DiskMBps)
			s.netMBps = append(s.netMBps, class.NetworkMBps)
			s.speed = append(s.speed, sp)
			i++
		}
	}
	// Cluster fabric bisection: capacity grows with node count, at least one
	// full link's worth.
	fabric := float64(s.numNodes) / 2
	if fabric < 1 {
		fabric = 1
	}
	s.net = simevent.NewPSResource(eng, "net", fabric)

	for i, job := range cfg.Jobs {
		submit := 0.0
		if cfg.SubmitTimes != nil {
			submit = cfg.SubmitTimes[i]
		}
		file, err := hdfs.Place(fmt.Sprintf("job%d-input", job.ID), job.InputMB, job.BlockSizeMB,
			s.numNodes, hdfs.DefaultReplication)
		if err != nil {
			return nil, err
		}
		s.jobs = append(s.jobs, &jobRun{
			sim:    s,
			job:    job,
			file:   file,
			submit: submit,
			record: &JobResult{
				JobID: job.ID, Submit: submit,
				// One record per map plus shuffle-sort and merge per reducer.
				Tasks: make([]TaskRecord, 0, file.NumSplits()+2*job.NumReduces),
			},
		})
	}
	return s, nil
}

// jitter draws a multiplicative lognormal factor with mean 1 and the given
// coefficient of variation.
func (s *sim) jitter(cv float64) float64 {
	if cv <= 0 {
		return 1
	}
	sigma2 := math.Log(1 + cv*cv)
	sigma := math.Sqrt(sigma2)
	return math.Exp(s.rng.NormFloat64()*sigma - sigma2/2)
}

// jobRun is the per-job ApplicationMaster state.
type jobRun struct {
	sim    *sim
	job    workload.Job
	file   *hdfs.File
	submit float64
	app    *yarn.App
	record *JobResult

	pendingMaps    []int // split indices not yet assigned
	completedMaps  int
	assignedMaps   int
	mapDoneOnNode  [][]int // node -> completed map IDs (for locality of fetches)
	reduceAsked    bool
	reducers       []*reducerRun
	activeReducers int
	finished       bool
}

func (j *jobRun) numMaps() int { return j.file.NumSplits() }

// startJob registers the AM after its startup negotiation and submits the
// map-container requests (priority 20, node-local preferences from HDFS).
func (j *jobRun) startJob() {
	s := j.sim
	s.eng.After(j.job.Profile.AMStartup, func() {
		j.record.Start = s.eng.Now()
		j.app = &yarn.App{ID: j.job.ID, OnAllocate: j.onAllocate}
		if err := s.rm.Register(j.app); err != nil {
			panic(err) // programming error: callback always set
		}
		j.pendingMaps = make([]int, j.numMaps())
		for i := range j.pendingMaps {
			j.pendingMaps[i] = i
		}
		j.mapDoneOnNode = make([][]int, s.numNodes)
		// Group map requests by primary-replica node (Table 1 shape).
		perNode := map[int]int{}
		for _, b := range j.file.Blocks {
			perNode[b.Replicas[0]]++
		}
		nodes := make([]int, 0, len(perNode))
		for n := range perNode {
			nodes = append(nodes, n)
		}
		sort.Ints(nodes)
		for _, n := range nodes {
			req := &yarn.Request{
				Priority:  yarn.PriorityMap,
				Count:     perNode[n],
				Size:      s.cfg.Spec.MapContainer,
				Type:      yarn.TypeMap,
				Preferred: []int{n},
			}
			if err := s.rm.Submit(j.app, req); err != nil {
				panic(err)
			}
		}
	})
}

// maybeRequestReduces implements slow start: once the completed-map fraction
// crosses the threshold, all reduce containers are requested at priority 10
// with the "*" wildcard (no locality).
func (j *jobRun) maybeRequestReduces() {
	if j.reduceAsked {
		return
	}
	threshold := j.job.SlowStartThreshold()
	need := int(math.Ceil(threshold * float64(j.numMaps())))
	if need < 1 {
		need = 1
	}
	if j.completedMaps < need {
		return
	}
	j.reduceAsked = true
	req := &yarn.Request{
		Priority: yarn.PriorityReduce,
		Count:    j.job.NumReduces,
		Size:     j.sim.cfg.Spec.ReduceContainer,
		Type:     yarn.TypeReduce,
	}
	if err := j.sim.rm.Submit(j.app, req); err != nil {
		panic(err)
	}
}

// onAllocate is the AM's second-level scheduler: match the granted container
// to a pending task, preferring data-local maps (paper §3.4).
func (j *jobRun) onAllocate(c *yarn.Container) {
	switch c.Type {
	case yarn.TypeMap:
		j.runMap(c)
	case yarn.TypeReduce:
		j.runReduce(c)
	}
}

// pickMapFor removes and returns the best pending split for a node:
// node-local first, then any.
func (j *jobRun) pickMapFor(node int) (int, bool) {
	if len(j.pendingMaps) == 0 {
		return 0, false
	}
	pick := -1
	for idx, split := range j.pendingMaps {
		if j.file.Blocks[split].HasReplicaOn(node) {
			pick = idx
			break
		}
	}
	if pick < 0 {
		pick = 0
	}
	split := j.pendingMaps[pick]
	j.pendingMaps = append(j.pendingMaps[:pick], j.pendingMaps[pick+1:]...)
	return split, true
}

// runMap executes one map task in the granted container: disk read+spill and
// CPU work on the container's node, then completion bookkeeping. Demands are
// computed against the assigned node's class hardware — disk bandwidth sets
// the I/O demand, and the class compute speed divides the CPU demand.
func (j *jobRun) runMap(c *yarn.Container) {
	s := j.sim
	split, ok := j.pickMapFor(c.Node)
	if !ok {
		// Over-allocation (can happen after request compaction races); return it.
		s.rm.Release(c)
		return
	}
	j.assignedMaps++
	d := j.job.MapDemands(j.job.SplitMB(split), s.diskMBps[c.Node])
	sp := s.speed[c.Node]
	f := s.jitter(j.job.Profile.TaskJitterCV)
	cpuWork := d.CPU / sp * f
	diskWork := d.Disk * f
	local := j.file.Blocks[split].HasReplicaOn(c.Node)
	start := s.eng.Now()
	rec := TaskRecord{
		JobID: j.job.ID, Class: ClassMap, TaskID: split, Node: c.Node,
		Start: start, CPU: d.CPU / sp, Disk: d.Disk, Local: local,
	}
	finish := func() {
		rec.End = s.eng.Now()
		j.record.Tasks = append(j.record.Tasks, rec)
		j.completedMaps++
		j.mapDoneOnNode[c.Node] = append(j.mapDoneOnNode[c.Node], split)
		s.rm.Release(c)
		j.maybeRequestReduces()
		// Feed waiting reducers with the fresh map output.
		for _, r := range j.reducers {
			r.mapCompleted(split, c.Node)
		}
		j.maybeFinish()
	}
	if local {
		s.disk[c.Node].Submit(diskWork, func() { s.cpu[c.Node].Submit(cpuWork, finish) })
	} else {
		// Remote read pulls the split across the network instead of local
		// disk. The same disk-priced seconds of work are charged to the
		// fabric — a deliberate simplification kept for equivalence with the
		// homogeneous model. Caveat for extreme classes: a node whose disks
		// are much faster than its NIC understates fabric time here; remote
		// maps are rare under replica-preferred scheduling, so the skew
		// stays second-order.
		s.net.Submit(diskWork, func() { s.cpu[c.Node].Submit(cpuWork, finish) })
	}
}

// runReduce starts a reducer in the granted container: shuffle-sort fetches
// from completed maps, then the merge subtask.
func (j *jobRun) runReduce(c *yarn.Container) {
	if len(j.reducers) >= j.job.NumReduces {
		j.sim.rm.Release(c)
		return
	}
	r := &reducerRun{
		job:  j,
		id:   len(j.reducers),
		node: c.Node,
		cont: c,
	}
	j.reducers = append(j.reducers, r)
	j.activeReducers++
	r.start()
}

// maybeFinish unregisters the AM once every reducer has completed.
func (j *jobRun) maybeFinish() {
	if j.finished {
		return
	}
	if j.completedMaps < j.numMaps() {
		return
	}
	done := 0
	for _, r := range j.reducers {
		if r.mergeDone {
			done++
		}
	}
	if len(j.reducers) < j.job.NumReduces || done < j.job.NumReduces {
		return
	}
	j.finished = true
	j.record.End = j.sim.eng.Now()
	j.record.Response = j.record.End - j.record.Submit
	j.sim.rm.Unregister(j.app)
}

// reducerRun is one reduce task: a shuffle-sort subtask (per-map fetches over
// the network + partial sort) followed by a merge subtask (final sort +
// reduce function + write).
type reducerRun struct {
	job        *jobRun
	id         int
	node       int
	cont       *yarn.Container
	started    bool
	shuffleRec TaskRecord
	fetched    []bool // by split index
	numFetched int
	inFlight   int
	shuffleEnd bool
	mergeDone  bool
}

func (r *reducerRun) start() {
	s := r.job.sim
	r.started = true
	r.fetched = make([]bool, r.job.numMaps())
	r.shuffleRec = TaskRecord{
		JobID: r.job.job.ID, Class: ClassShuffleSort, TaskID: r.id, Node: r.node,
		Start: s.eng.Now(),
	}
	ss := r.job.job.ShuffleSortDemands(s.netMBps[r.node], s.diskMBps[r.node])
	r.shuffleRec.CPU = ss.CPU / s.speed[r.node]
	r.shuffleRec.Disk = ss.Disk
	r.shuffleRec.Network = ss.Network
	// Fetch everything already finished (in node order — deterministic);
	// future completions arrive via mapCompleted.
	for node, splits := range r.job.mapDoneOnNode {
		for _, split := range splits {
			r.fetch(split, node)
		}
	}
	r.maybeFinishShuffle()
}

// mapCompleted notifies the reducer that a map's output became available.
func (r *reducerRun) mapCompleted(split, node int) {
	if !r.started || r.mergeDone {
		return
	}
	r.fetch(split, node)
}

// fetch copies one map's partition: network transfer (skipped for co-located
// map output), then local disk write plus shuffle/sort CPU. The receiving
// node's class hardware prices the transfer, the spill and the sort.
func (r *reducerRun) fetch(split, node int) {
	if r.fetched[split] {
		return
	}
	r.fetched[split] = true
	r.numFetched++
	r.inFlight++
	s := r.job.sim
	job := r.job.job
	partMB := job.SplitMB(split) * job.Profile.MapOutputRatio / float64(job.NumReduces)
	f := s.jitter(job.Profile.TaskJitterCV)
	netWork := partMB / s.netMBps[r.node] * f
	diskWork := partMB / s.diskMBps[r.node] * f
	cpuWork := partMB * (job.Profile.ShuffleCPUPerMB + job.Profile.SortCPUPerMB) / s.speed[r.node] * f

	afterNet := func() {
		s.disk[r.node].Submit(diskWork, func() {
			s.cpu[r.node].Submit(cpuWork, func() {
				r.inFlight--
				r.maybeFinishShuffle()
			})
		})
	}
	if node == r.node {
		afterNet() // map output is local; no network hop
		return
	}
	s.net.Submit(netWork, afterNet)
}

// maybeFinishShuffle closes the shuffle-sort subtask once all map partitions
// have been copied and sorted, then starts merge.
func (r *reducerRun) maybeFinishShuffle() {
	if r.shuffleEnd || r.inFlight > 0 {
		return
	}
	if r.numFetched < r.job.numMaps() {
		return
	}
	r.shuffleEnd = true
	s := r.job.sim
	r.shuffleRec.End = s.eng.Now()
	r.job.record.Tasks = append(r.job.record.Tasks, r.shuffleRec)
	r.runMerge()
}

func (r *reducerRun) runMerge() {
	s := r.job.sim
	job := r.job.job
	d := job.MergeDemands(s.diskMBps[r.node])
	sp := s.speed[r.node]
	f := s.jitter(job.Profile.TaskJitterCV)
	cpuWork := d.CPU / sp * f
	diskWork := d.Disk * f
	rec := TaskRecord{
		JobID: job.ID, Class: ClassMerge, TaskID: r.id, Node: r.node,
		Start: s.eng.Now(), CPU: d.CPU / sp, Disk: d.Disk,
	}
	s.cpu[r.node].Submit(cpuWork, func() {
		s.disk[r.node].Submit(diskWork, func() {
			rec.End = s.eng.Now()
			r.job.record.Tasks = append(r.job.record.Tasks, rec)
			r.mergeDone = true
			s.rm.Release(r.cont)
			r.job.maybeFinish()
		})
	})
}

// startJob is the sim-level entry point for one job.
func (s *sim) startJob(j *jobRun) { j.startJob() }

// RunMedianOfSeeds runs the simulation reps times with consecutive seeds and
// returns the run whose mean response time is the median — mirroring the
// paper's "repeat 5 times, take the median" methodology (§5.1).
func RunMedianOfSeeds(cfg Config, reps int) (Result, error) {
	if reps <= 0 {
		return Result{}, errors.New("mrsim: reps must be positive")
	}
	type outcome struct {
		res  Result
		mean float64
	}
	outs := make([]outcome, 0, reps)
	for i := 0; i < reps; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)
		res, err := Run(c)
		if err != nil {
			return Result{}, err
		}
		outs = append(outs, outcome{res: res, mean: res.MeanResponse()})
	}
	sort.Slice(outs, func(a, b int) bool { return outs[a].mean < outs[b].mean })
	return outs[len(outs)/2].res, nil
}
