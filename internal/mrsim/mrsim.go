// Package mrsim is a discrete-event simulator of MapReduce job execution on
// a Hadoop 2.x / YARN cluster. It substitutes for the paper's real 4–8 node
// Hadoop testbed (§5.1): model estimates are validated against response
// times *measured* on this simulator.
//
// The simulator reproduces the execution mechanics the paper's model must
// capture:
//
//   - YARN container allocation through internal/yarn (FIFO across jobs, map
//     priority 20 > reduce priority 10, node-locality for maps, late
//     container delivery via heartbeats);
//   - HDFS block placement and data-local map scheduling;
//   - the map/shuffle pipeline: each reducer fetches a map's partition as
//     soon as that map completes (slow start: reduce containers are requested
//     after 5% of maps finish);
//   - contention at shared resources: per-node processor-sharing CPU and
//     disk, and a shared cluster network;
//   - stochastic task-time jitter (stragglers), seeded for reproducibility;
//   - optional fault injection (fault.Plan): seeded node failures with
//     repair/rejoin, task retries through the normal YARN path, Pareto-tail
//     straggler jitter, and Hadoop-style speculative re-execution of late
//     maps. Fault randomness rides a separate RNG stream, so a run without
//     faults is bit-identical to one built before fault injection existed.
package mrsim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"hadoop2perf/internal/cluster"
	"hadoop2perf/internal/fault"
	"hadoop2perf/internal/hdfs"
	"hadoop2perf/internal/simevent"
	"hadoop2perf/internal/workflow"
	"hadoop2perf/internal/workload"
	"hadoop2perf/internal/yarn"
)

// enginePool recycles discrete-event engines across runs: a reset engine
// keeps its calendar and arena capacity, so repeated simulations (median of
// seeds, planner sweeps, concurrent service traffic) skip the warm-up
// allocations of a cold calendar.
var enginePool = sync.Pool{New: func() any { return simevent.NewEngine() }}

// maxEvents bounds a single simulation run (overridable via Config.MaxEvents).
const maxEvents = 20_000_000

// faultSeedSalt decorrelates the fault-injection RNG stream from the task
// jitter stream derived from the same Config.Seed.
const faultSeedSalt = 0x5EEDFA17

// Speculative execution pacing (Hadoop's speculator soaks estimates between
// checks): attempts are reviewed every specCheckInterval seconds once
// specMinSamples map durations have been observed.
const (
	specCheckInterval = 3.0
	specMinSamples    = 3
)

// TaskClass labels trace records with the paper's three task classes.
type TaskClass string

// The three task classes of the model (C = 3, §4.1).
const (
	ClassMap         TaskClass = "map"
	ClassShuffleSort TaskClass = "shuffle-sort"
	ClassMerge       TaskClass = "merge"
)

// TaskRecord is one executed (sub)task in the job-history trace. Killed
// attempts (node loss, speculation loser) are not recorded — FaultStats
// counts them — so trace fitting keeps seeing only completed work.
type TaskRecord struct {
	JobID   int       `json:"job"`
	Class   TaskClass `json:"class"`
	TaskID  int       `json:"task"`
	Node    int       `json:"node"`
	Start   float64   `json:"start"`
	End     float64   `json:"end"`
	CPU     float64   `json:"cpu"`     // uncontended processor demand, s
	Disk    float64   `json:"disk"`    // uncontended local-disk demand, s
	Network float64   `json:"network"` // uncontended network demand, s
	Local   bool      `json:"local"`   // data-local container (maps)
	// Speculative marks a map completed by the backup copy of a speculative
	// race (fault runs only).
	Speculative bool `json:"speculative,omitempty"`
}

// Duration returns End-Start.
func (t TaskRecord) Duration() float64 { return t.End - t.Start }

// JobResult summarizes one job's simulated execution.
type JobResult struct {
	JobID    int          `json:"job"`
	Submit   float64      `json:"submit"`
	Start    float64      `json:"start"` // AM registered
	End      float64      `json:"end"`
	Response float64      `json:"response"` // End - Submit
	Tasks    []TaskRecord `json:"tasks"`
}

// FaultStats counts fault-injection activity during one run. Revocations is
// the subset of NodeFailures that hit preemptible nodes.
type FaultStats struct {
	NodeFailures        int `json:"nodeFailures,omitempty"`
	Revocations         int `json:"revocations,omitempty"`
	NodeRepairs         int `json:"nodeRepairs,omitempty"`
	TasksKilled         int `json:"tasksKilled,omitempty"`
	TasksReexecuted     int `json:"tasksReexecuted,omitempty"`
	SpeculativeLaunched int `json:"speculativeLaunched,omitempty"`
	SpeculativeWins     int `json:"speculativeWins,omitempty"`
	StragglersInjected  int `json:"stragglersInjected,omitempty"`
}

// Result is a full simulation outcome.
type Result struct {
	Jobs     []JobResult `json:"jobs"`
	Makespan float64     `json:"makespan"`
	Events   int         `json:"events"`
	// Faults reports injected-fault bookkeeping; nil when fault injection was
	// inactive for the run.
	Faults *FaultStats `json:"faults,omitempty"`
	// FailedSeeds annotates quantile/median-of-seeds results with how many
	// seeded repetitions errored (always 0 for single runs).
	FailedSeeds int `json:"failedSeeds,omitempty"`
}

// MeanResponse returns the average job response time.
func (r Result) MeanResponse() float64 {
	if len(r.Jobs) == 0 {
		return 0
	}
	var s float64
	for _, j := range r.Jobs {
		s += j.Response
	}
	return s / float64(len(r.Jobs))
}

// Config drives one simulation run.
type Config struct {
	Spec cluster.Spec
	Jobs []workload.Job
	// SubmitTimes optionally staggers submissions; default all at t=0.
	// Incompatible with Workflow, which derives submissions from precedence.
	SubmitTimes []float64
	// Workflow optionally imposes cross-job precedence: stage i of the DAG
	// is Jobs[i], and a dependent job is submitted (AM negotiation and all)
	// only at the instant its last parent job finishes. Root stages submit
	// at t=0. This is the discrete-event counterpart of the analytic
	// critical-path composition in internal/core.
	Workflow *workflow.DAG
	// Seed selects the jitter stream; identical seeds reproduce runs exactly.
	Seed int64
	// Scheduler selects the root-queue ordering policy. Multi-job experiments
	// use yarn.PolicyFair so concurrent jobs progress together, matching the
	// per-job slowdowns of the paper's multi-job measurements.
	Scheduler yarn.Policy
	// Faults optionally injects node failures, straggler tails and
	// speculative re-execution. nil (or a plan that enables nothing) leaves
	// the run bit-identical to a fault-free simulation. Preemptible node
	// classes with a revocation rate are revoked even when Faults is nil.
	Faults *fault.Plan
	// MaxEvents overrides the default per-run event budget (20M) when > 0.
	MaxEvents int
}

// Run executes the simulation to completion.
func Run(cfg Config) (Result, error) { return RunContext(context.Background(), cfg) }

// RunContext is Run with cooperative cancellation: the event loop polls ctx
// periodically and aborts with ctx.Err() once it is done. ctx must be
// non-nil.
func RunContext(ctx context.Context, cfg Config) (Result, error) {
	if err := cfg.Spec.Validate(); err != nil {
		return Result{}, err
	}
	if len(cfg.Jobs) == 0 {
		return Result{}, errors.New("mrsim: no jobs to run")
	}
	for i, j := range cfg.Jobs {
		if err := j.Validate(); err != nil {
			return Result{}, fmt.Errorf("mrsim: job %d: %w", i, err)
		}
	}
	if cfg.SubmitTimes != nil && len(cfg.SubmitTimes) != len(cfg.Jobs) {
		return Result{}, errors.New("mrsim: SubmitTimes length mismatch")
	}
	if cfg.Workflow != nil {
		if cfg.SubmitTimes != nil {
			return Result{}, errors.New("mrsim: SubmitTimes and Workflow are mutually exclusive")
		}
		if err := cfg.Workflow.Validate(); err != nil {
			return Result{}, err
		}
		if cfg.Workflow.NumStages() != len(cfg.Jobs) {
			return Result{}, fmt.Errorf("mrsim: workflow has %d stages for %d jobs",
				cfg.Workflow.NumStages(), len(cfg.Jobs))
		}
	}
	if err := cfg.Faults.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.MaxEvents < 0 {
		return Result{}, errors.New("mrsim: MaxEvents must be nonnegative")
	}

	eng := enginePool.Get().(*simevent.Engine)
	// Reset before Put (not after Get): a failed run leaves calendar
	// closures pinning the whole sim graph, which must not survive in the
	// pool.
	defer func() {
		eng.Reset()
		enginePool.Put(eng)
	}()
	s, err := newSim(cfg, eng)
	if err != nil {
		return Result{}, err
	}
	for i := range s.jobs {
		jr := s.jobs[i]
		if s.wfParentsLeft != nil && s.wfParentsLeft[i] > 0 {
			continue // released by the last parent's maybeFinish
		}
		s.eng.At(jr.submit, func() { s.startJob(jr) })
	}
	if s.stats != nil {
		// Arm the per-node failure clocks (deterministic draw order: node 0..N-1).
		for n := 0; n < s.numNodes; n++ {
			s.scheduleNodeFailure(n)
		}
	}
	budget := maxEvents
	if cfg.MaxEvents > 0 {
		budget = cfg.MaxEvents
	}
	n, err := s.eng.RunContext(ctx, budget)
	if err != nil {
		return Result{}, err
	}

	res := Result{Events: n, Faults: s.stats}
	for _, jr := range s.jobs {
		if !jr.finished {
			return Result{}, fmt.Errorf("mrsim: job %d did not finish (deadlock?)", jr.job.ID)
		}
		sort.Slice(jr.record.Tasks, func(a, b int) bool {
			ta, tb := jr.record.Tasks[a], jr.record.Tasks[b]
			if ta.Start != tb.Start {
				return ta.Start < tb.Start
			}
			return ta.TaskID < tb.TaskID
		})
		res.Jobs = append(res.Jobs, *jr.record)
		if jr.record.End > res.Makespan {
			res.Makespan = jr.record.End
		}
	}
	return res, nil
}

// sim is the mutable simulation state.
type sim struct {
	cfg      Config
	eng      *simevent.Engine
	rm       *yarn.RM
	numNodes int
	cpu      []*simevent.PSResource // per node
	disk     []*simevent.PSResource // per node
	net      *simevent.PSResource   // shared cluster fabric
	// Per-node hardware, resolved once from the spec's class table: service
	// demands of a task are computed with the bandwidths and compute speed of
	// the node its container landed on.
	diskMBps []float64
	netMBps  []float64
	speed    []float64
	rng      *rand.Rand
	jobs     []*jobRun
	doneJobs int

	// Workflow precedence state (nil without Config.Workflow): per-stage
	// child indices and the count of unfinished parents gating each stage.
	wfChildren    [][]int
	wfParentsLeft []int

	// Fault-injection state; stats is nil when no fault mechanics are active
	// for this run (the fault-free fast path touches none of these).
	stats   *FaultStats
	faults  *fault.Plan
	frng    *rand.Rand // separate stream: the base jitter stream stays intact
	nodeUp  []bool
	upCount int
	hazards []float64 // per-node failure rate, 1/s
	preempt []bool    // node belongs to a preemptible class
	repair  float64
	maxFail int
}

func newSim(cfg Config, eng *simevent.Engine) (*sim, error) {
	rm, err := yarn.NewRM(eng, cfg.Spec)
	if err != nil {
		return nil, err
	}
	rm.Policy = cfg.Scheduler
	s := &sim{
		cfg:      cfg,
		eng:      eng,
		rm:       rm,
		numNodes: cfg.Spec.TotalNodes(),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
	}
	i := 0
	for _, class := range cfg.Spec.ClassView() {
		sp := class.SpeedFactor()
		for n := 0; n < class.Count; n++ {
			s.cpu = append(s.cpu, simevent.NewPSResource(eng, fmt.Sprintf("cpu%d", i), float64(class.CPUs)))
			s.disk = append(s.disk, simevent.NewPSResource(eng, fmt.Sprintf("disk%d", i), float64(class.Disks)))
			s.diskMBps = append(s.diskMBps, class.DiskMBps)
			s.netMBps = append(s.netMBps, class.NetworkMBps)
			s.speed = append(s.speed, sp)
			i++
		}
	}
	// Cluster fabric bisection: capacity grows with node count, at least one
	// full link's worth.
	fabric := float64(s.numNodes) / 2
	if fabric < 1 {
		fabric = 1
	}
	s.net = simevent.NewPSResource(eng, "net", fabric)

	if fault.Active(cfg.Faults, cfg.Spec) {
		s.stats = &FaultStats{}
		s.faults = cfg.Faults
		s.frng = rand.New(rand.NewSource(cfg.Seed ^ faultSeedSalt))
		s.nodeUp = make([]bool, s.numNodes)
		s.upCount = s.numNodes
		s.hazards = make([]float64, s.numNodes)
		s.preempt = make([]bool, s.numNodes)
		n := 0
		for _, class := range cfg.Spec.ClassView() {
			h := fault.NodeHazard(cfg.Faults, class)
			for k := 0; k < class.Count; k++ {
				s.nodeUp[n] = true
				s.hazards[n] = h
				s.preempt[n] = class.Preemptible
				n++
			}
		}
		if cfg.Faults != nil {
			s.repair = cfg.Faults.RepairDelaySec
			s.maxFail = cfg.Faults.MaxNodeFailures
		}
	}

	if cfg.Workflow != nil {
		parents, children, err := cfg.Workflow.Adjacency()
		if err != nil {
			return nil, err
		}
		s.wfChildren = children
		s.wfParentsLeft = make([]int, len(parents))
		for i := range parents {
			s.wfParentsLeft[i] = len(parents[i])
		}
	}

	for i, job := range cfg.Jobs {
		submit := 0.0
		if cfg.SubmitTimes != nil {
			submit = cfg.SubmitTimes[i]
		}
		file, err := hdfs.Place(fmt.Sprintf("job%d-input", job.ID), job.InputMB, job.BlockSizeMB,
			s.numNodes, hdfs.DefaultReplication)
		if err != nil {
			return nil, err
		}
		s.jobs = append(s.jobs, &jobRun{
			sim:    s,
			idx:    i,
			job:    job,
			file:   file,
			submit: submit,
			record: &JobResult{
				JobID: job.ID, Submit: submit,
				// One record per map plus shuffle-sort and merge per reducer.
				Tasks: make([]TaskRecord, 0, file.NumSplits()+2*job.NumReduces),
			},
		})
	}
	return s, nil
}

// jitter draws a multiplicative lognormal factor with mean 1 and the given
// coefficient of variation.
func (s *sim) jitter(cv float64) float64 {
	if cv <= 0 {
		return 1
	}
	sigma2 := math.Log(1 + cv*cv)
	sigma := math.Sqrt(sigma2)
	return math.Exp(s.rng.NormFloat64()*sigma - sigma2/2)
}

// attemptFactor draws the heavy-tailed straggler multiplier for one task
// attempt: 1 with probability 1-p, otherwise Pareto(α, xm=1). It rides the
// fault RNG stream so fault-free runs never consume it.
func (s *sim) attemptFactor() float64 {
	if s.frng == nil || s.faults == nil || s.faults.StragglerProb <= 0 {
		return 1
	}
	if s.frng.Float64() >= s.faults.StragglerProb {
		return 1
	}
	s.stats.StragglersInjected++
	return math.Pow(1-s.frng.Float64(), -1/s.faults.Alpha())
}

// allDone reports whether every job has finished (failure clocks and
// speculation ticks stop re-arming then, so the calendar drains).
func (s *sim) allDone() bool { return s.doneJobs == len(s.jobs) }

// scheduleNodeFailure arms the next failure clock of a node from its
// exponential hazard.
func (s *sim) scheduleNodeFailure(n int) {
	h := s.hazards[n]
	if h <= 0 {
		return
	}
	t := -math.Log(1-s.frng.Float64()) / h
	s.eng.After(t, func() { s.failNode(n) })
}

// failNode takes a node down: its processor-sharing resources drop all work
// in flight, the RM stops placing containers on it, and every job kills and
// re-enqueues its attempts that were running there. The last surviving node
// is never killed (the run must stay completable); its clock re-arms
// instead.
func (s *sim) failNode(n int) {
	if s.allDone() || !s.nodeUp[n] {
		return
	}
	if s.maxFail > 0 && s.stats.NodeFailures >= s.maxFail {
		return
	}
	if s.upCount <= 1 {
		s.scheduleNodeFailure(n)
		return
	}
	s.nodeUp[n] = false
	s.upCount--
	s.stats.NodeFailures++
	if s.preempt[n] {
		s.stats.Revocations++
	}
	s.rm.NodeDown(n)
	s.cpu[n].Clear()
	s.disk[n].Clear()
	for _, j := range s.jobs {
		j.nodeLost(n)
	}
	if s.repair > 0 {
		s.eng.After(s.repair, func() { s.rejoinNode(n) })
	}
}

// rejoinNode brings a repaired node back (empty, full capacity) and re-arms
// its failure clock.
func (s *sim) rejoinNode(n int) {
	if s.allDone() || s.nodeUp[n] {
		return
	}
	s.nodeUp[n] = true
	s.upCount++
	s.stats.NodeRepairs++
	s.rm.NodeUp(n)
	s.scheduleNodeFailure(n)
}

// mapAttempt is one execution attempt of a map split (fault runs may have a
// retry or a speculative backup racing the original).
type mapAttempt struct {
	split       int
	node        int
	cont        *yarn.Container
	rec         TaskRecord
	start       float64
	dead        bool
	speculative bool
}

// jobRun is the per-job ApplicationMaster state.
type jobRun struct {
	sim    *sim
	idx    int // position in Config.Jobs == workflow stage index
	job    workload.Job
	file   *hdfs.File
	submit float64
	app    *yarn.App
	record *JobResult

	pendingMaps    []int // split indices not yet assigned
	completedMaps  int
	assignedMaps   int
	completedSplit []bool
	runningMaps    []*mapAttempt
	mapDoneOnNode  [][]int // node -> completed map IDs (for locality of fetches)
	reduceAsked    bool
	reducers       []*reducerRun
	reducerStarted int
	pendingReds    []int // reducer IDs killed by a node loss, awaiting restart
	activeReducers int
	finished       bool

	// Speculation bookkeeping (fault runs with Speculation enabled).
	specPending []int // splits with a backup container requested
	mapDurSum   float64
	mapDurN     int
}

func (j *jobRun) numMaps() int { return j.file.NumSplits() }

// startJob registers the AM after its startup negotiation and submits the
// map-container requests (priority 20, node-local preferences from HDFS).
func (j *jobRun) startJob() {
	s := j.sim
	s.eng.After(j.job.Profile.AMStartup, func() {
		j.record.Start = s.eng.Now()
		j.app = &yarn.App{ID: j.job.ID, OnAllocate: j.onAllocate}
		if err := s.rm.Register(j.app); err != nil {
			panic(err) // programming error: callback always set
		}
		j.pendingMaps = make([]int, j.numMaps())
		for i := range j.pendingMaps {
			j.pendingMaps[i] = i
		}
		j.completedSplit = make([]bool, j.numMaps())
		j.mapDoneOnNode = make([][]int, s.numNodes)
		// Group map requests by primary-replica node (Table 1 shape).
		perNode := map[int]int{}
		for _, b := range j.file.Blocks {
			perNode[b.Replicas[0]]++
		}
		nodes := make([]int, 0, len(perNode))
		for n := range perNode {
			nodes = append(nodes, n)
		}
		sort.Ints(nodes)
		for _, n := range nodes {
			req := &yarn.Request{
				Priority:  yarn.PriorityMap,
				Count:     perNode[n],
				Size:      s.cfg.Spec.MapContainer,
				Type:      yarn.TypeMap,
				Preferred: []int{n},
			}
			if err := s.rm.Submit(j.app, req); err != nil {
				panic(err)
			}
		}
		if s.stats != nil && s.faults != nil && s.faults.Speculation {
			s.eng.After(specCheckInterval, j.specTick)
		}
	})
}

// maybeRequestReduces implements slow start: once the completed-map fraction
// crosses the threshold, all reduce containers are requested at priority 10
// with the "*" wildcard (no locality).
func (j *jobRun) maybeRequestReduces() {
	if j.reduceAsked {
		return
	}
	threshold := j.job.SlowStartThreshold()
	need := int(math.Ceil(threshold * float64(j.numMaps())))
	if need < 1 {
		need = 1
	}
	if j.completedMaps < need {
		return
	}
	j.reduceAsked = true
	req := &yarn.Request{
		Priority: yarn.PriorityReduce,
		Count:    j.job.NumReduces,
		Size:     j.sim.cfg.Spec.ReduceContainer,
		Type:     yarn.TypeReduce,
	}
	if err := j.sim.rm.Submit(j.app, req); err != nil {
		panic(err)
	}
}

// onAllocate is the AM's second-level scheduler: match the granted container
// to a pending task, preferring data-local maps (paper §3.4).
func (j *jobRun) onAllocate(c *yarn.Container) {
	s := j.sim
	if s.stats != nil && !s.nodeUp[c.Node] {
		// The grant was in flight when the node went down (scheduled before
		// the failure, delivered after the heartbeat). Hand it back and re-ask
		// so the task slot the request represented is not lost.
		s.rm.Release(c)
		switch c.Type {
		case yarn.TypeMap:
			if len(j.pendingMaps) > 0 || len(j.specPending) > 0 {
				j.requestOneMap(nil)
			}
		case yarn.TypeReduce:
			if len(j.pendingReds) > 0 || j.reducerStarted < j.job.NumReduces {
				j.requestOneReduce()
			}
		}
		return
	}
	switch c.Type {
	case yarn.TypeMap:
		j.runMap(c)
	case yarn.TypeReduce:
		j.runReduce(c)
	}
}

// requestOneMap submits a single map-container request (retry or backup).
func (j *jobRun) requestOneMap(preferred []int) {
	req := &yarn.Request{
		Priority:  yarn.PriorityMap,
		Count:     1,
		Size:      j.sim.cfg.Spec.MapContainer,
		Type:      yarn.TypeMap,
		Preferred: preferred,
	}
	if err := j.sim.rm.Submit(j.app, req); err != nil {
		panic(err)
	}
}

// requestOneReduce submits a single reduce-container request (restart).
func (j *jobRun) requestOneReduce() {
	req := &yarn.Request{
		Priority: yarn.PriorityReduce,
		Count:    1,
		Size:     j.sim.cfg.Spec.ReduceContainer,
		Type:     yarn.TypeReduce,
	}
	if err := j.sim.rm.Submit(j.app, req); err != nil {
		panic(err)
	}
}

// pickMapFor removes and returns the best pending split for a node:
// node-local first, then any.
func (j *jobRun) pickMapFor(node int) (int, bool) {
	if len(j.pendingMaps) == 0 {
		return 0, false
	}
	pick := -1
	for idx, split := range j.pendingMaps {
		if j.file.Blocks[split].HasReplicaOn(node) {
			pick = idx
			break
		}
	}
	if pick < 0 {
		pick = 0
	}
	split := j.pendingMaps[pick]
	j.pendingMaps = append(j.pendingMaps[:pick], j.pendingMaps[pick+1:]...)
	return split, true
}

// liveAttemptFor returns a running attempt of the split, or nil.
func (j *jobRun) liveAttemptFor(split int) *mapAttempt {
	for _, a := range j.runningMaps {
		if a.split == split {
			return a
		}
	}
	return nil
}

// removeRunningMap drops one attempt from the running list.
func (j *jobRun) removeRunningMap(a *mapAttempt) {
	for i, b := range j.runningMaps {
		if b == a {
			j.runningMaps = append(j.runningMaps[:i], j.runningMaps[i+1:]...)
			return
		}
	}
}

// pickMapWork chooses what a granted map container should run: a pending
// split (normal path and retries, node-local first), else a queued
// speculative backup whose original attempt is still running.
func (j *jobRun) pickMapWork(node int) (split int, speculative, ok bool) {
	if split, ok := j.pickMapFor(node); ok {
		return split, false, true
	}
	for len(j.specPending) > 0 {
		split := j.specPending[0]
		j.specPending = j.specPending[1:]
		if j.completedSplit[split] || j.liveAttemptFor(split) == nil {
			continue // decided (or re-enqueued as a retry) while the backup request was in flight
		}
		return split, true, true
	}
	return 0, false, false
}

// runMap executes one map task in the granted container: disk read+spill and
// CPU work on the container's node, then completion bookkeeping. Demands are
// computed against the assigned node's class hardware — disk bandwidth sets
// the I/O demand, and the class compute speed divides the CPU demand.
func (j *jobRun) runMap(c *yarn.Container) {
	s := j.sim
	split, speculative, ok := j.pickMapWork(c.Node)
	if !ok {
		// Over-allocation (can happen after request compaction races); return it.
		s.rm.Release(c)
		return
	}
	j.assignedMaps++
	d := j.job.MapDemands(j.job.SplitMB(split), s.diskMBps[c.Node])
	sp := s.speed[c.Node]
	f := s.jitter(j.job.Profile.TaskJitterCV)
	sf := s.attemptFactor()
	cpuWork := d.CPU / sp * f * sf
	diskWork := d.Disk * f * sf
	local := j.file.Blocks[split].HasReplicaOn(c.Node)
	start := s.eng.Now()
	a := &mapAttempt{
		split: split, node: c.Node, cont: c, start: start, speculative: speculative,
		rec: TaskRecord{
			JobID: j.job.ID, Class: ClassMap, TaskID: split, Node: c.Node,
			Start: start, CPU: d.CPU / sp, Disk: d.Disk, Local: local,
		},
	}
	j.runningMaps = append(j.runningMaps, a)
	if speculative {
		s.stats.SpeculativeLaunched++
	}
	finish := func() {
		if a.dead || j.finished {
			return
		}
		j.finishMap(a)
	}
	if local {
		s.disk[c.Node].Submit(diskWork, func() {
			if a.dead {
				return
			}
			s.cpu[c.Node].Submit(cpuWork, finish)
		})
	} else {
		// Remote read pulls the split across the network instead of local
		// disk. The same disk-priced seconds of work are charged to the
		// fabric — a deliberate simplification kept for equivalence with the
		// homogeneous model. Caveat for extreme classes: a node whose disks
		// are much faster than its NIC understates fabric time here; remote
		// maps are rare under replica-preferred scheduling, so the skew
		// stays second-order.
		s.net.Submit(diskWork, func() {
			if a.dead {
				return
			}
			s.cpu[c.Node].Submit(cpuWork, finish)
		})
	}
}

// finishMap completes a map attempt: record, bookkeeping, speculative-race
// resolution (the loser is killed; its in-flight resource demand keeps
// draining, so the wasted work is still charged to the node), then the
// usual downstream notifications.
func (j *jobRun) finishMap(a *mapAttempt) {
	s := j.sim
	j.removeRunningMap(a)
	if j.completedSplit[a.split] {
		s.rm.Release(a.cont) // defensive: the race was already decided
		return
	}
	j.completedSplit[a.split] = true
	a.rec.End = s.eng.Now()
	a.rec.Speculative = a.speculative
	j.record.Tasks = append(j.record.Tasks, a.rec)
	j.completedMaps++
	if s.stats != nil {
		j.mapDurSum += a.rec.End - a.start
		j.mapDurN++
		if tw := j.liveAttemptFor(a.split); tw != nil {
			// First finisher wins: kill the twin, free its container. Its
			// submitted PS work stays in the resource until it drains — the
			// loser's demand is charged even though its callback never fires.
			tw.dead = true
			j.removeRunningMap(tw)
			s.stats.TasksKilled++
			if a.speculative {
				s.stats.SpeculativeWins++
			}
			s.rm.Release(tw.cont)
		}
	}
	j.mapDoneOnNode[a.node] = append(j.mapDoneOnNode[a.node], a.split)
	s.rm.Release(a.cont)
	j.maybeRequestReduces()
	// Feed waiting reducers with the fresh map output.
	for _, r := range j.reducers {
		if r != nil {
			r.mapCompleted(a.split, a.node)
		}
	}
	j.maybeFinish()
}

// nodeLost kills every attempt of this job running on the lost node and
// re-enqueues the work through the normal YARN path: map splits go back to
// the pending list with a fresh container request preferring the split's
// primary replica; killed reducers restart their whole shuffle+merge in a
// new container. Completed map output on the lost node stays fetchable — a
// deliberate simplification (intermediate data survives in this model, as
// if spilled to replicated storage) so reducers never re-run finished maps.
func (j *jobRun) nodeLost(n int) {
	if j.app == nil || j.finished {
		return
	}
	s := j.sim
	w := 0
	var killed []*mapAttempt
	for _, a := range j.runningMaps {
		if a.node != n {
			j.runningMaps[w] = a
			w++
			continue
		}
		a.dead = true
		s.stats.TasksKilled++
		killed = append(killed, a)
	}
	for i := w; i < len(j.runningMaps); i++ {
		j.runningMaps[i] = nil
	}
	j.runningMaps = j.runningMaps[:w]
	for _, a := range killed {
		// Retry unless another live attempt of the split survives (a
		// speculative twin on a healthy node).
		if j.completedSplit[a.split] {
			continue
		}
		alive := false
		for _, b := range j.runningMaps {
			if b.split == a.split {
				alive = true
				break
			}
		}
		if alive {
			continue
		}
		j.pendingMaps = append(j.pendingMaps, a.split)
		s.stats.TasksReexecuted++
		j.requestOneMap([]int{j.file.Blocks[a.split].Replicas[0]})
	}

	for id, r := range j.reducers {
		if r == nil || r.dead || r.mergeDone || r.node != n {
			continue
		}
		r.dead = true
		j.reducers[id] = nil
		s.stats.TasksKilled++
		s.stats.TasksReexecuted++
		j.pendingReds = append(j.pendingReds, id)
		j.requestOneReduce()
	}
}

// specTick periodically reviews running map attempts and requests a backup
// container for the slowest late one (Hadoop's speculator cadence).
func (j *jobRun) specTick() {
	if j.finished || j.sim.allDone() {
		return
	}
	j.checkSpeculation()
	j.sim.eng.After(specCheckInterval, j.specTick)
}

// checkSpeculation requests at most one backup per tick, for the slowest
// attempt whose elapsed time exceeds Lateness × the running mean map
// duration, with no twin running or queued. Concurrent backups are capped at
// ~1/8 of the job's maps.
func (j *jobRun) checkSpeculation() {
	s := j.sim
	if j.mapDurN < specMinSamples {
		return
	}
	backups := len(j.specPending)
	for _, a := range j.runningMaps {
		if a.speculative {
			backups++
		}
	}
	if backups > j.numMaps()/8 {
		return
	}
	mean := j.mapDurSum / float64(j.mapDurN)
	late := mean * s.faults.Lateness()
	now := s.eng.Now()
	var worst *mapAttempt
	var worstElapsed float64
	for _, a := range j.runningMaps {
		if a.speculative || j.completedSplit[a.split] {
			continue
		}
		if twinned := j.twinCount(a.split) > 1 || j.specQueued(a.split); twinned {
			continue
		}
		if el := now - a.start; el > late && el > worstElapsed {
			worst, worstElapsed = a, el
		}
	}
	if worst == nil {
		return
	}
	j.specPending = append(j.specPending, worst.split)
	j.requestOneMap([]int{j.file.Blocks[worst.split].Replicas[0]})
}

func (j *jobRun) twinCount(split int) int {
	n := 0
	for _, a := range j.runningMaps {
		if a.split == split {
			n++
		}
	}
	return n
}

func (j *jobRun) specQueued(split int) bool {
	for _, sp := range j.specPending {
		if sp == split {
			return true
		}
	}
	return false
}

// runReduce starts (or restarts) a reducer in the granted container:
// shuffle-sort fetches from completed maps, then the merge subtask.
func (j *jobRun) runReduce(c *yarn.Container) {
	id := -1
	switch {
	case len(j.pendingReds) > 0:
		id = j.pendingReds[0]
		j.pendingReds = j.pendingReds[1:]
	case j.reducerStarted < j.job.NumReduces:
		id = j.reducerStarted
		j.reducerStarted++
	default:
		j.sim.rm.Release(c)
		return
	}
	r := &reducerRun{
		job:  j,
		id:   id,
		node: c.Node,
		cont: c,
	}
	if id < len(j.reducers) {
		j.reducers[id] = r
	} else {
		j.reducers = append(j.reducers, r)
	}
	j.activeReducers++
	r.start()
}

// maybeFinish unregisters the AM once every reducer has completed.
func (j *jobRun) maybeFinish() {
	if j.finished {
		return
	}
	if j.completedMaps < j.numMaps() {
		return
	}
	done := 0
	for _, r := range j.reducers {
		if r != nil && r.mergeDone {
			done++
		}
	}
	if j.reducerStarted < j.job.NumReduces || done < j.job.NumReduces {
		return
	}
	j.finished = true
	j.record.End = j.sim.eng.Now()
	j.record.Response = j.record.End - j.record.Submit
	j.sim.doneJobs++
	j.sim.rm.Unregister(j.app)
	j.releaseChildren()
}

// releaseChildren submits every workflow child whose last unfinished parent
// was this job: the child's submit time is the release instant, so its
// recorded response excludes the time spent waiting on precedence.
func (j *jobRun) releaseChildren() {
	s := j.sim
	if s.wfChildren == nil {
		return
	}
	now := s.eng.Now()
	for _, c := range s.wfChildren[j.idx] {
		s.wfParentsLeft[c]--
		if s.wfParentsLeft[c] > 0 {
			continue
		}
		child := s.jobs[c]
		child.submit = now
		child.record.Submit = now
		s.startJob(child)
	}
}

// reducerRun is one reduce task: a shuffle-sort subtask (per-map fetches over
// the network + partial sort) followed by a merge subtask (final sort +
// reduce function + write). A reducer killed by a node loss restarts from
// scratch (whole shuffle redone) as a fresh reducerRun with the same id.
type reducerRun struct {
	job        *jobRun
	id         int
	node       int
	cont       *yarn.Container
	started    bool
	dead       bool
	sf         float64 // per-attempt straggler factor (1 outside fault runs)
	shuffleRec TaskRecord
	fetched    []bool // by split index
	numFetched int
	inFlight   int
	shuffleEnd bool
	mergeDone  bool
}

func (r *reducerRun) start() {
	s := r.job.sim
	r.started = true
	r.sf = s.attemptFactor()
	r.fetched = make([]bool, r.job.numMaps())
	r.shuffleRec = TaskRecord{
		JobID: r.job.job.ID, Class: ClassShuffleSort, TaskID: r.id, Node: r.node,
		Start: s.eng.Now(),
	}
	ss := r.job.job.ShuffleSortDemands(s.netMBps[r.node], s.diskMBps[r.node])
	r.shuffleRec.CPU = ss.CPU / s.speed[r.node]
	r.shuffleRec.Disk = ss.Disk
	r.shuffleRec.Network = ss.Network
	// Fetch everything already finished (in node order — deterministic);
	// future completions arrive via mapCompleted.
	for node, splits := range r.job.mapDoneOnNode {
		for _, split := range splits {
			r.fetch(split, node)
		}
	}
	r.maybeFinishShuffle()
}

// mapCompleted notifies the reducer that a map's output became available.
func (r *reducerRun) mapCompleted(split, node int) {
	if !r.started || r.dead || r.mergeDone {
		return
	}
	r.fetch(split, node)
}

// fetch copies one map's partition: network transfer (skipped for co-located
// map output), then local disk write plus shuffle/sort CPU. The receiving
// node's class hardware prices the transfer, the spill and the sort; the
// attempt's straggler factor slows its node-local work (disk, CPU) but not
// the shared fabric.
func (r *reducerRun) fetch(split, node int) {
	if r.fetched[split] {
		return
	}
	r.fetched[split] = true
	r.numFetched++
	r.inFlight++
	s := r.job.sim
	job := r.job.job
	partMB := job.SplitMB(split) * job.Profile.MapOutputRatio / float64(job.NumReduces)
	f := s.jitter(job.Profile.TaskJitterCV)
	netWork := partMB / s.netMBps[r.node] * f
	diskWork := partMB / s.diskMBps[r.node] * f * r.sf
	cpuWork := partMB * (job.Profile.ShuffleCPUPerMB + job.Profile.SortCPUPerMB) / s.speed[r.node] * f * r.sf

	afterNet := func() {
		if r.dead {
			return
		}
		s.disk[r.node].Submit(diskWork, func() {
			if r.dead {
				return
			}
			s.cpu[r.node].Submit(cpuWork, func() {
				if r.dead {
					return
				}
				r.inFlight--
				r.maybeFinishShuffle()
			})
		})
	}
	if node == r.node {
		afterNet() // map output is local; no network hop
		return
	}
	s.net.Submit(netWork, afterNet)
}

// maybeFinishShuffle closes the shuffle-sort subtask once all map partitions
// have been copied and sorted, then starts merge.
func (r *reducerRun) maybeFinishShuffle() {
	if r.shuffleEnd || r.inFlight > 0 {
		return
	}
	if r.numFetched < r.job.numMaps() {
		return
	}
	r.shuffleEnd = true
	s := r.job.sim
	r.shuffleRec.End = s.eng.Now()
	r.job.record.Tasks = append(r.job.record.Tasks, r.shuffleRec)
	r.runMerge()
}

func (r *reducerRun) runMerge() {
	s := r.job.sim
	job := r.job.job
	d := job.MergeDemands(s.diskMBps[r.node])
	sp := s.speed[r.node]
	f := s.jitter(job.Profile.TaskJitterCV)
	cpuWork := d.CPU / sp * f * r.sf
	diskWork := d.Disk * f * r.sf
	rec := TaskRecord{
		JobID: job.ID, Class: ClassMerge, TaskID: r.id, Node: r.node,
		Start: s.eng.Now(), CPU: d.CPU / sp, Disk: d.Disk,
	}
	s.cpu[r.node].Submit(cpuWork, func() {
		if r.dead {
			return
		}
		s.disk[r.node].Submit(diskWork, func() {
			if r.dead {
				return
			}
			rec.End = s.eng.Now()
			r.job.record.Tasks = append(r.job.record.Tasks, rec)
			r.mergeDone = true
			s.rm.Release(r.cont)
			r.job.maybeFinish()
		})
	})
}

// startJob is the sim-level entry point for one job.
func (s *sim) startJob(j *jobRun) { j.startJob() }

// runSeed is the per-seed runner used by the seed-batch helpers; a test hook
// replaces it to exercise partial-failure aggregation deterministically.
var runSeed = RunContext

// RunSeedsContext runs the simulation reps times with consecutive seeds
// (cfg.Seed, cfg.Seed+1, ...) and returns the successful runs sorted by
// ascending mean response time, plus the number of seeds that failed.
//
// Fault injection makes individual seeds legitimately fallible (a run can
// exceed its event budget), so the batch tolerates failures as long as a
// majority succeeds: when fewer than ⌈reps/2⌉ runs complete, the batch
// errors, wrapping the first per-seed failure. Context cancellation aborts
// the whole batch immediately with ctx.Err().
func RunSeedsContext(ctx context.Context, cfg Config, reps int) (runs []Result, failed int, err error) {
	if reps <= 0 {
		return nil, 0, errors.New("mrsim: reps must be positive")
	}
	runs = make([]Result, 0, reps)
	var firstErr error
	for i := 0; i < reps; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)
		res, err := runSeed(ctx, c)
		if err != nil {
			if ctx.Err() != nil {
				return nil, 0, ctx.Err()
			}
			failed++
			if firstErr == nil {
				firstErr = fmt.Errorf("seed %d: %w", c.Seed, err)
			}
			continue
		}
		runs = append(runs, res)
	}
	if len(runs) < (reps+1)/2 {
		return nil, failed, fmt.Errorf("mrsim: %d of %d seeded runs failed (first: %w)", failed, reps, firstErr)
	}
	sort.SliceStable(runs, func(a, b int) bool { return runs[a].MeanResponse() < runs[b].MeanResponse() })
	return runs, failed, nil
}

// Quantile returns the run at quantile q of a batch sorted by mean response:
// the element at index ⌊q·n⌋ (clamped), which at q=0.5 is the upper median —
// the same pick RunMedianOfSeeds has always made.
func Quantile(runs []Result, q float64) Result {
	if len(runs) == 0 {
		return Result{}
	}
	idx := int(q * float64(len(runs)))
	if idx >= len(runs) {
		idx = len(runs) - 1
	}
	if idx < 0 {
		idx = 0
	}
	return runs[idx]
}

// RunQuantileOfSeeds generalizes RunMedianOfSeeds: it runs reps consecutive
// seeds and returns the run at quantile q (0 ≤ q ≤ 1) of the successful
// runs ordered by mean response, annotated with how many seeds failed
// (Result.FailedSeeds). It errors when fewer than ⌈reps/2⌉ seeds succeed.
func RunQuantileOfSeeds(ctx context.Context, cfg Config, reps int, q float64) (Result, error) {
	if math.IsNaN(q) || q < 0 || q > 1 {
		return Result{}, fmt.Errorf("mrsim: quantile must be in [0,1] (got %v)", q)
	}
	runs, failed, err := RunSeedsContext(ctx, cfg, reps)
	if err != nil {
		return Result{}, err
	}
	res := Quantile(runs, q)
	res.FailedSeeds = failed
	return res, nil
}

// RunMedianOfSeeds runs the simulation reps times with consecutive seeds and
// returns the run whose mean response time is the median — mirroring the
// paper's "repeat 5 times, take the median" methodology (§5.1). Seeds that
// fail are tolerated as long as a majority succeeds; Result.FailedSeeds
// reports how many were dropped.
func RunMedianOfSeeds(cfg Config, reps int) (Result, error) {
	return RunQuantileOfSeeds(context.Background(), cfg, reps, 0.5)
}
