package mrsim

import (
	"math"
	"testing"

	"hadoop2perf/internal/cluster"
	"hadoop2perf/internal/workflow"
	"hadoop2perf/internal/workload"
	"hadoop2perf/internal/yarn"
)

func wfJobs(t *testing.T, inputMB float64, reduces, n int) []workload.Job {
	t.Helper()
	jobs := make([]workload.Job, n)
	for i := range jobs {
		jobs[i] = smallJob(t, inputMB, reduces)
		jobs[i].ID = i
	}
	return jobs
}

func TestWorkflowValidation(t *testing.T) {
	spec := cluster.Default(2)
	jobs := wfJobs(t, 256, 1, 2)
	chain := workflow.Chain("a", "b")
	if _, err := Run(Config{Spec: spec, Jobs: jobs, Workflow: chain,
		SubmitTimes: []float64{0, 0}}); err == nil {
		t.Error("SubmitTimes combined with Workflow accepted")
	}
	if _, err := Run(Config{Spec: spec, Jobs: jobs[:1], Workflow: chain}); err == nil {
		t.Error("stage/job count mismatch accepted")
	}
	cyclic := &workflow.DAG{Stages: []string{"a", "b"},
		Edges: []workflow.Edge{{From: "a", To: "b"}, {From: "b", To: "a"}}}
	if _, err := Run(Config{Spec: spec, Jobs: jobs, Workflow: cyclic}); err == nil {
		t.Error("cyclic workflow accepted")
	}
}

// TestWorkflowChainReleasesAtParentEnd pins the release semantics: in a
// chain, each job's recorded submit time is exactly its parent's finish
// time, and the makespan is the sum of the per-job responses.
func TestWorkflowChainReleasesAtParentEnd(t *testing.T) {
	res := run(t, Config{
		Spec:      cluster.Default(2),
		Jobs:      wfJobs(t, 512, 2, 3),
		Workflow:  workflow.Chain("a", "b", "c"),
		Seed:      1,
		Scheduler: yarn.PolicyFair,
	})
	if len(res.Jobs) != 3 {
		t.Fatalf("%d job results", len(res.Jobs))
	}
	var sum float64
	for i, j := range res.Jobs {
		sum += j.Response
		if i == 0 {
			if j.Submit != 0 {
				t.Errorf("root submitted at %v, want 0", j.Submit)
			}
			continue
		}
		if j.Submit != res.Jobs[i-1].End {
			t.Errorf("job %d submitted at %v, want parent end %v", i, j.Submit, res.Jobs[i-1].End)
		}
	}
	if math.Abs(res.Makespan-sum) > 1e-9*sum {
		t.Errorf("chain makespan %v != response sum %v", res.Makespan, sum)
	}
}

// TestWorkflowDiamondJoinWaitsForBothParents checks fan-out then fan-in:
// the two middle jobs are released together at the root's end, and the sink
// starts only once the slower of the two finishes.
func TestWorkflowDiamondJoinWaitsForBothParents(t *testing.T) {
	res := run(t, Config{
		Spec: cluster.Default(4),
		Jobs: wfJobs(t, 512, 2, 4),
		Workflow: &workflow.DAG{
			Stages: []string{"src", "left", "right", "join"},
			Edges: []workflow.Edge{
				{From: "src", To: "left"}, {From: "src", To: "right"},
				{From: "left", To: "join"}, {From: "right", To: "join"},
			},
		},
		Seed:      2,
		Scheduler: yarn.PolicyFair,
	})
	src, left, right, join := res.Jobs[0], res.Jobs[1], res.Jobs[2], res.Jobs[3]
	if left.Submit != src.End || right.Submit != src.End {
		t.Errorf("middle submits %v/%v, want root end %v", left.Submit, right.Submit, src.End)
	}
	if want := math.Max(left.End, right.End); join.Submit != want {
		t.Errorf("join submitted at %v, want slower parent end %v", join.Submit, want)
	}
	if res.Makespan != join.End {
		t.Errorf("makespan %v, want join end %v", res.Makespan, join.End)
	}
}

// TestWorkflowDeterministicForSeed repeats a diamond run and requires
// bit-identical records — precedence releases ride the event clock, not
// wall time or map order.
func TestWorkflowDeterministicForSeed(t *testing.T) {
	cfg := Config{
		Spec: cluster.Default(2),
		Jobs: wfJobs(t, 512, 1, 4),
		Workflow: &workflow.DAG{
			Stages: []string{"a", "b", "c", "d"},
			Edges: []workflow.Edge{
				{From: "a", To: "b"}, {From: "a", To: "c"},
				{From: "b", To: "d"}, {From: "c", To: "d"},
			},
		},
		Seed:      5,
		Scheduler: yarn.PolicyFair,
	}
	r1, r2 := run(t, cfg), run(t, cfg)
	for i := range r1.Jobs {
		if r1.Jobs[i].Submit != r2.Jobs[i].Submit || r1.Jobs[i].End != r2.Jobs[i].End {
			t.Fatalf("job %d drifted between identical runs", i)
		}
	}
	if r1.Makespan != r2.Makespan {
		t.Fatalf("makespan drifted: %v vs %v", r1.Makespan, r2.Makespan)
	}
}
