package mrsim

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"hadoop2perf/internal/cluster"
	"hadoop2perf/internal/fault"
	"hadoop2perf/internal/workload"
	"hadoop2perf/internal/yarn"
)

func faultyConfig(t *testing.T, plan *fault.Plan) Config {
	t.Helper()
	return Config{
		Spec:   cluster.Default(4),
		Jobs:   []workload.Job{smallJob(t, 1024, 4)},
		Seed:   7,
		Faults: plan,
	}
}

// A zero fault plan must leave the run bit-identical to no plan at all.
func TestZeroFaultPlanBitIdentical(t *testing.T) {
	base := run(t, faultyConfig(t, nil))
	zero := run(t, faultyConfig(t, &fault.Plan{}))
	if !reflect.DeepEqual(base, zero) {
		t.Error("zero fault plan perturbed the simulation")
	}
	if base.Faults != nil || base.FailedSeeds != 0 {
		t.Errorf("fault-free run carries fault annotations: %+v", base.Faults)
	}
}

func TestFaultPlanValidation(t *testing.T) {
	for _, plan := range []*fault.Plan{
		{NodeMTTFSec: -1},
		{StragglerProb: 1.5},
		{StragglerAlpha: 1},
		{SpeculationLateness: 0.5},
		{MaxNodeFailures: -1},
	} {
		cfg := faultyConfig(t, plan)
		if _, err := Run(cfg); err == nil {
			t.Errorf("invalid plan %+v accepted", plan)
		}
	}
	if _, err := Run(Config{
		Spec: cluster.Default(2), Jobs: []workload.Job{smallJob(t, 256, 1)},
		MaxEvents: -1,
	}); err == nil {
		t.Error("negative MaxEvents accepted")
	}
}

// Same seed + same plan ⇒ bit-identical traces; different seeds ⇒ different
// failure times.
func TestFaultDeterminism(t *testing.T) {
	plan := &fault.Plan{NodeMTTFSec: 400, RepairDelaySec: 60, StragglerProb: 0.1, Speculation: true}
	a := run(t, faultyConfig(t, plan))
	b := run(t, faultyConfig(t, plan))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical seed+plan produced different results")
	}
	if a.Faults == nil {
		t.Fatal("fault run missing stats")
	}

	cfg := faultyConfig(t, plan)
	cfg.Seed = 8
	c := run(t, cfg)
	if reflect.DeepEqual(a.Jobs, c.Jobs) && reflect.DeepEqual(a.Faults, c.Faults) {
		t.Error("different seeds produced identical faulty runs")
	}
}

func TestNodeFailuresInjectedAndRepaired(t *testing.T) {
	plan := &fault.Plan{NodeMTTFSec: 150, RepairDelaySec: 30}
	res := run(t, faultyConfig(t, plan))
	st := res.Faults
	if st == nil || st.NodeFailures == 0 {
		t.Fatalf("expected injected node failures, got %+v", st)
	}
	if st.NodeRepairs == 0 {
		t.Errorf("expected repairs with RepairDelaySec set: %+v", st)
	}
	base := run(t, faultyConfig(t, nil))
	if res.Jobs[0].Response <= 0 {
		t.Fatal("faulty run produced nonpositive response")
	}
	// Killing work and re-running it should not make the job faster than the
	// fault-free run by more than jitter noise; mostly it is slower.
	if res.Jobs[0].Response < base.Jobs[0].Response*0.8 {
		t.Errorf("faulty response %.1f implausibly faster than fault-free %.1f",
			res.Jobs[0].Response, base.Jobs[0].Response)
	}
	if st.TasksKilled < st.TasksReexecuted {
		t.Errorf("reexecuted %d > killed %d", st.TasksReexecuted, st.TasksKilled)
	}
}

func TestMaxNodeFailuresCap(t *testing.T) {
	plan := &fault.Plan{NodeMTTFSec: 100, RepairDelaySec: 20, MaxNodeFailures: 2}
	res := run(t, faultyConfig(t, plan))
	if res.Faults.NodeFailures > 2 {
		t.Errorf("cap of 2 exceeded: %d failures", res.Faults.NodeFailures)
	}
}

func TestSpeculativeExecution(t *testing.T) {
	plan := &fault.Plan{StragglerProb: 0.3, StragglerAlpha: 1.3, Speculation: true}
	res := run(t, faultyConfig(t, plan))
	st := res.Faults
	if st == nil || st.StragglersInjected == 0 {
		t.Fatalf("expected stragglers, got %+v", st)
	}
	if st.SpeculativeLaunched == 0 {
		t.Fatalf("expected speculative backups with a heavy tail, got %+v", st)
	}
	if st.SpeculativeWins > st.SpeculativeLaunched {
		t.Errorf("wins %d exceed launches %d", st.SpeculativeWins, st.SpeculativeLaunched)
	}
	wins := 0
	for _, tr := range res.Jobs[0].Tasks {
		if tr.Speculative {
			wins++
		}
	}
	if wins != st.SpeculativeWins {
		t.Errorf("trace marks %d speculative wins, stats say %d", wins, st.SpeculativeWins)
	}
	// Every map split completed exactly once.
	maps := 0
	for _, tr := range res.Jobs[0].Tasks {
		if tr.Class == ClassMap {
			maps++
		}
	}
	if want := 1024 / 128; maps != want {
		t.Errorf("%d map records, want %d", maps, want)
	}
}

// Preemptible classes are revoked even without an explicit fault plan.
func TestPreemptibleRevocation(t *testing.T) {
	spec := cluster.Spec{
		MapContainer:    cluster.Resource{MemoryMB: 4096, VCores: 2},
		ReduceContainer: cluster.Resource{MemoryMB: 4096, VCores: 4},
		Classes: []cluster.NodeClass{
			{Name: "reliable", Count: 2, Capacity: cluster.Resource{MemoryMB: 32768, VCores: 32},
				CPUs: 6, Disks: 1, DiskMBps: 240, NetworkMBps: 110},
			{Name: "spot", Count: 2, Capacity: cluster.Resource{MemoryMB: 32768, VCores: 32},
				CPUs: 6, Disks: 1, DiskMBps: 240, NetworkMBps: 110,
				Preemptible: true, RevocationRate: 120, Price: 0.3},
		},
	}
	res, err := Run(Config{Spec: spec, Jobs: []workload.Job{smallJob(t, 1024, 4)}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Faults
	if st == nil {
		t.Fatal("revocation hazard did not activate fault accounting")
	}
	if st.Revocations == 0 || st.Revocations != st.NodeFailures {
		t.Errorf("want all failures to be spot revocations, got %+v", st)
	}
}

// A multi-job faulty simulation under -race (CI runs the suite with -race).
func TestFaultyMultiJobFair(t *testing.T) {
	res, err := Run(Config{
		Spec:      cluster.Default(4),
		Jobs:      []workload.Job{smallJob(t, 512, 2), smallJob(t, 768, 3)},
		Seed:      11,
		Scheduler: yarn.PolicyFair,
		Faults:    &fault.Plan{NodeMTTFSec: 250, RepairDelaySec: 45, StragglerProb: 0.15, Speculation: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 2 {
		t.Fatalf("%d job results", len(res.Jobs))
	}
	for _, j := range res.Jobs {
		if j.Response <= 0 {
			t.Errorf("job %d: nonpositive response", j.JobID)
		}
	}
}

func TestRunContextCancelsPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := Config{
		Spec: cluster.Default(8),
		Jobs: []workload.Job{smallJob(t, 16*1024, 8), smallJob(t, 16*1024, 8)},
		Seed: 1,
	}
	start := time.Now()
	_, err := RunContext(ctx, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Errorf("cancellation took %v", el)
	}
}

func TestMaxEventsBudget(t *testing.T) {
	cfg := Config{
		Spec:      cluster.Default(2),
		Jobs:      []workload.Job{smallJob(t, 512, 2)},
		Seed:      1,
		MaxEvents: 10,
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("tiny event budget should fail the run")
	}
	// And through the seed batch: every seed fails, so the batch errors.
	if _, _, err := RunSeedsContext(context.Background(), cfg, 3); err == nil {
		t.Fatal("all-failing batch should error")
	}
}

// Median over successful seeds when a minority fails, error otherwise.
func TestRunMedianOfSeedsTolerance(t *testing.T) {
	orig := runSeed
	defer func() { runSeed = orig }()

	mk := func(mean float64) Result {
		return Result{Jobs: []JobResult{{Response: mean}}}
	}
	failing := map[int64]bool{1: true, 3: true}
	runSeed = func(ctx context.Context, cfg Config) (Result, error) {
		if failing[cfg.Seed] {
			return Result{}, fmt.Errorf("synthetic failure for seed %d", cfg.Seed)
		}
		return mk(float64(100 + cfg.Seed)), nil
	}

	res, err := RunMedianOfSeeds(Config{Seed: 0}, 5)
	if err != nil {
		t.Fatalf("2/5 failures must be tolerated: %v", err)
	}
	if res.FailedSeeds != 2 {
		t.Errorf("FailedSeeds = %d, want 2", res.FailedSeeds)
	}
	// Successes are seeds 0,2,4 with means 100,102,104: median 102.
	if got := res.MeanResponse(); got != 102 {
		t.Errorf("median over successes = %v, want 102", got)
	}

	failing = map[int64]bool{0: true, 2: true, 4: true}
	if _, err := RunMedianOfSeeds(Config{Seed: 0}, 5); err == nil {
		t.Fatal("3/5 failures must fail the batch")
	}
}

func TestRunQuantileOfSeeds(t *testing.T) {
	orig := runSeed
	defer func() { runSeed = orig }()
	runSeed = func(ctx context.Context, cfg Config) (Result, error) {
		return Result{Jobs: []JobResult{{Response: float64(10 * (cfg.Seed + 1))}}}, nil
	}
	ctx := context.Background()
	cfg := Config{Seed: 0}
	for _, tc := range []struct {
		q    float64
		want float64
	}{
		{0, 10}, {0.5, 30}, {0.95, 50}, {1, 50},
	} {
		res, err := RunQuantileOfSeeds(ctx, cfg, 5, tc.q)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.MeanResponse(); got != tc.want {
			t.Errorf("q=%v: got %v, want %v", tc.q, got, tc.want)
		}
	}
	if _, err := RunQuantileOfSeeds(ctx, cfg, 5, 1.5); err == nil {
		t.Error("quantile > 1 accepted")
	}
	if _, err := RunQuantileOfSeeds(ctx, cfg, 0, 0.5); err == nil {
		t.Error("zero reps accepted")
	}
}

// The historical median pick (upper median at even n, exact middle at odd n)
// is preserved by the quantile generalization.
func TestMedianPickMatchesLegacy(t *testing.T) {
	cfg := Config{
		Spec: cluster.Default(2),
		Jobs: []workload.Job{smallJob(t, 512, 2)},
		Seed: 5,
	}
	med, err := RunMedianOfSeeds(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	runs, failed, err := RunSeedsContext(context.Background(), cfg, 5)
	if err != nil || failed != 0 {
		t.Fatalf("batch: %v (failed %d)", err, failed)
	}
	if med.MeanResponse() != runs[len(runs)/2].MeanResponse() {
		t.Errorf("median pick %v != middle of sorted batch %v",
			med.MeanResponse(), runs[len(runs)/2].MeanResponse())
	}
}
