package ptree

import (
	"math"
	"testing"
	"testing/quick"

	"hadoop2perf/internal/timeline"
)

func buildTL(t *testing.T, in timeline.Input) *timeline.Timeline {
	t.Helper()
	tl, err := timeline.Build(in)
	if err != nil {
		t.Fatal(err)
	}
	return tl
}

func runningExample(t *testing.T) *timeline.Timeline {
	in := timeline.Input{
		NumNodes: 3, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1, SlowStart: true,
		Reduces: []timeline.ReduceTask{{ID: 0, ShuffleSortBase: 6, MergeDuration: 5}},
	}
	for i := 0; i < 4; i++ {
		in.Maps = append(in.Maps, timeline.MapTask{ID: i, Duration: 10, ShuffleDuration: 2})
	}
	return buildTL(t, in)
}

func TestBuildRunningExample(t *testing.T) {
	tree, err := Build(runningExample(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	// Paper Figure 7 structure: first wave of maps parallel, then the fourth
	// map parallel with the shuffle, then the merge — three serial groups.
	want := "S(S(P(m0,P(m1,m2)),P(m3,s0)),g0)"
	if got := tree.String(); got != want {
		t.Errorf("tree = %s, want %s", got, want)
	}
	if tree.NumLeaves() != 6 {
		t.Errorf("leaves = %d, want 6", tree.NumLeaves())
	}
}

func TestBuildEmptyTimeline(t *testing.T) {
	if _, err := Build(&timeline.Timeline{}); err == nil {
		t.Error("empty timeline accepted")
	}
	if _, err := Build(nil); err == nil {
		t.Error("nil timeline accepted")
	}
}

func TestSingleTask(t *testing.T) {
	in := timeline.Input{
		NumNodes: 1, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1, SlowStart: true,
		Maps: []timeline.MapTask{{ID: 0, Duration: 10}},
	}
	tree, err := Build(buildTL(t, in))
	if err != nil {
		t.Fatal(err)
	}
	if tree.Op != Leaf || tree.Task == nil {
		t.Errorf("single-task tree = %s", tree)
	}
	if tree.Depth() != 0 || tree.NumLeaves() != 1 || tree.MaxPDepth() != 0 {
		t.Error("single-leaf metrics wrong")
	}
}

func TestSequentialTasksUseS(t *testing.T) {
	// One slot: two maps serialize -> S(m0,m1).
	in := timeline.Input{
		NumNodes: 1, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1, SlowStart: true,
		Maps: []timeline.MapTask{{ID: 0, Duration: 10}, {ID: 1, Duration: 10}},
	}
	tree, err := Build(buildTL(t, in))
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.String(); got != "S(m0,m1)" {
		t.Errorf("tree = %s", got)
	}
	if tree.MaxPDepth() != 0 {
		t.Errorf("pure-S tree has P depth %d", tree.MaxPDepth())
	}
}

func TestParallelTasksUseP(t *testing.T) {
	in := timeline.Input{
		NumNodes: 4, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1, SlowStart: true,
		Maps: []timeline.MapTask{
			{ID: 0, Duration: 10}, {ID: 1, Duration: 10},
			{ID: 2, Duration: 10}, {ID: 3, Duration: 10},
		},
	}
	tree, err := Build(buildTL(t, in))
	if err != nil {
		t.Fatal(err)
	}
	// Balanced binary P over 4 leaves: depth 2.
	if tree.Depth() != 2 {
		t.Errorf("depth = %d, want 2 (balanced)", tree.Depth())
	}
	nP := 0
	tree.Walk(func(n *Node) {
		if n.Op == P {
			nP++
		}
		if n.Op == S {
			t.Error("unexpected S in fully parallel tree")
		}
	})
	if nP != 3 {
		t.Errorf("%d P nodes, want 3", nP)
	}
}

func TestBalancedDepthBound(t *testing.T) {
	// 16 parallel tasks: balanced depth must be exactly 4.
	in := timeline.Input{
		NumNodes: 16, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1, SlowStart: true,
	}
	for i := 0; i < 16; i++ {
		in.Maps = append(in.Maps, timeline.MapTask{ID: i, Duration: 10})
	}
	tree, err := Build(buildTL(t, in))
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() != 4 {
		t.Errorf("depth = %d, want 4", tree.Depth())
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	task := timeline.Placed{Class: timeline.ClassMap, ID: 0, Start: 0, End: 1}
	good := &Node{Op: Leaf, Task: &task}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Node{
		{Op: Leaf},          // leaf without task
		{Op: S, Left: good}, // missing right child
		{Op: P, Left: good, Right: good, Task: &task}, // internal with task
		{Op: Leaf, Task: &task, Left: good},           // leaf with child
	}
	for i, n := range bad {
		if err := n.Validate(); err == nil {
			t.Errorf("bad tree %d validated", i)
		}
	}
	var nilNode *Node
	if err := nilNode.Validate(); err == nil {
		t.Error("nil tree validated")
	}
}

func TestOpString(t *testing.T) {
	if Leaf.String() != "leaf" || S.String() != "S" || P.String() != "P" {
		t.Error("op strings wrong")
	}
}

// Property: for any generated timeline, the tree has one leaf per placed
// task, validates, and its depth is bounded by groups + log2 of the largest
// group.
func TestTreeInvariantsProperty(t *testing.T) {
	f := func(nMapsQ, nRedQ, nodesQ uint8, slow bool) bool {
		nMaps := int(nMapsQ)%20 + 1
		nRed := int(nRedQ) % 4
		nodes := int(nodesQ)%5 + 1
		in := timeline.Input{
			NumNodes: nodes, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1, SlowStart: slow,
		}
		for i := 0; i < nMaps; i++ {
			in.Maps = append(in.Maps, timeline.MapTask{ID: i, Duration: 4 + float64(i%5), ShuffleDuration: 1})
		}
		for i := 0; i < nRed; i++ {
			in.Reduces = append(in.Reduces, timeline.ReduceTask{ID: i, ShuffleSortBase: 2, MergeDuration: 3})
		}
		tl, err := timeline.Build(in)
		if err != nil {
			return false
		}
		tree, err := Build(tl)
		if err != nil {
			return false
		}
		if tree.Validate() != nil {
			return false
		}
		if tree.NumLeaves() != len(tl.Tasks) {
			return false
		}
		// Depth bound: S-chain length + ceil(log2(largest P group)).
		n := len(tl.Tasks)
		bound := n + int(math.Ceil(math.Log2(float64(n+1)))) + 1
		return tree.Depth() <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: every leaf's task appears exactly once.
func TestLeafUniquenessProperty(t *testing.T) {
	f := func(nMapsQ uint8) bool {
		nMaps := int(nMapsQ)%16 + 1
		in := timeline.Input{
			NumNodes: 2, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1, SlowStart: true,
		}
		for i := 0; i < nMaps; i++ {
			in.Maps = append(in.Maps, timeline.MapTask{ID: i, Duration: 3 + float64(i%2)})
		}
		tl, err := timeline.Build(in)
		if err != nil {
			return false
		}
		tree, err := Build(tl)
		if err != nil {
			return false
		}
		seen := map[int]int{}
		tree.Walk(func(n *Node) {
			if n.Op == Leaf {
				seen[n.Task.ID]++
			}
		})
		if len(seen) != nMaps {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
