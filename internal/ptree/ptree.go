// Package ptree builds the precedence tree of the paper (§4.2.2): a binary
// tree whose leaves are the placed tasks of a timeline and whose internal
// nodes are the serial (S) and parallel-and (P) operators.
//
// Tasks that overlap in time belong to the same parallel group (P); groups
// that are disjoint in time execute serially (S). Parallel groups are formed
// as connected components of the interval-overlap graph, which the paper's
// phase rule induces, and every P-subtree is balanced to bound the tree depth
// (the paper balances P-subtrees to reduce estimation error).
package ptree

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"hadoop2perf/internal/timeline"
)

// Op is a tree-node operator.
type Op int

// Operators: Leaf carries a task; S composes children serially; P in
// parallel.
const (
	Leaf Op = iota
	S
	P
)

func (o Op) String() string {
	switch o {
	case Leaf:
		return "leaf"
	case S:
		return "S"
	default:
		return "P"
	}
}

// Node is a precedence-tree node. Internal nodes are binary (the paper's
// trees are binary); Leaf nodes reference a placed task.
type Node struct {
	Op          Op
	Left, Right *Node
	Task        *timeline.Placed // leaves only
}

// NumLeaves counts leaf nodes.
func (n *Node) NumLeaves() int {
	if n == nil {
		return 0
	}
	if n.Op == Leaf {
		return 1
	}
	return n.Left.NumLeaves() + n.Right.NumLeaves()
}

// Depth returns the number of edges on the longest root-leaf path.
func (n *Node) Depth() int {
	if n == nil || n.Op == Leaf {
		return 0
	}
	l, r := n.Left.Depth(), n.Right.Depth()
	if l > r {
		return l + 1
	}
	return r + 1
}

// MaxPDepth returns the deepest chain of nested P operators, the quantity
// the paper links to estimation error.
func (n *Node) MaxPDepth() int {
	if n == nil || n.Op == Leaf {
		return 0
	}
	l, r := n.Left.MaxPDepth(), n.Right.MaxPDepth()
	d := l
	if r > d {
		d = r
	}
	if n.Op == P {
		d++
	}
	return d
}

// Walk visits nodes pre-order.
func (n *Node) Walk(fn func(*Node)) {
	if n == nil {
		return
	}
	fn(n)
	n.Left.Walk(fn)
	n.Right.Walk(fn)
}

// Validate checks structural invariants: leaves have tasks and no children;
// internal nodes have exactly two children and no task.
func (n *Node) Validate() error {
	if n == nil {
		return errors.New("ptree: nil node")
	}
	if n.Op == Leaf {
		if n.Task == nil {
			return errors.New("ptree: leaf without task")
		}
		if n.Left != nil || n.Right != nil {
			return errors.New("ptree: leaf with children")
		}
		return nil
	}
	if n.Task != nil {
		return fmt.Errorf("ptree: %s node with task", n.Op)
	}
	if n.Left == nil || n.Right == nil {
		return fmt.Errorf("ptree: %s node missing a child", n.Op)
	}
	if err := n.Left.Validate(); err != nil {
		return err
	}
	return n.Right.Validate()
}

// String renders the tree as a nested expression, e.g. S(P(m0,m1),r0).
func (n *Node) String() string {
	var b strings.Builder
	n.render(&b)
	return b.String()
}

func (n *Node) render(b *strings.Builder) {
	if n == nil {
		b.WriteString("?")
		return
	}
	if n.Op == Leaf {
		fmt.Fprintf(b, "%s%d", shortClass(n.Task.Class), n.Task.ID)
		return
	}
	b.WriteString(n.Op.String())
	b.WriteByte('(')
	n.Left.render(b)
	b.WriteByte(',')
	n.Right.render(b)
	b.WriteByte(')')
}

func shortClass(c timeline.Class) string {
	switch c {
	case timeline.ClassMap:
		return "m"
	case timeline.ClassShuffleSort:
		return "s"
	case timeline.ClassStage:
		return "j"
	default:
		return "g"
	}
}

// Build constructs the precedence tree from a timeline. Parallel groups are
// the connected components of the strict-overlap interval graph, taken in
// time order; each group becomes a balanced binary P-subtree and groups are
// chained with S operators.
func Build(tl *timeline.Timeline) (*Node, error) {
	if tl == nil || len(tl.Tasks) == 0 {
		return nil, errors.New("ptree: empty timeline")
	}
	tasks := make([]timeline.Placed, len(tl.Tasks))
	copy(tasks, tl.Tasks)
	sort.Slice(tasks, func(i, j int) bool {
		if tasks[i].Start != tasks[j].Start {
			return tasks[i].Start < tasks[j].Start
		}
		return tasks[i].End < tasks[j].End
	})

	const eps = 1e-9
	var groups [][]timeline.Placed
	var cur []timeline.Placed
	curMaxEnd := 0.0
	for _, t := range tasks {
		if len(cur) > 0 && t.Start >= curMaxEnd-eps {
			groups = append(groups, cur)
			cur = nil
		}
		cur = append(cur, t)
		if t.End > curMaxEnd {
			curMaxEnd = t.End
		}
	}
	if len(cur) > 0 {
		groups = append(groups, cur)
	}

	var root *Node
	for _, g := range groups {
		sub := balancedP(g)
		if root == nil {
			root = sub
		} else {
			root = &Node{Op: S, Left: root, Right: sub}
		}
	}
	return root, nil
}

// FromIntervals generalizes Build to arbitrary placed intervals — in
// particular the cross-job stage intervals of a workflow schedule
// (timeline.ClassStage leaves), where each leaf is a whole job rather than
// one of its tasks. The same serial/parallel decomposition applies:
// time-overlapping intervals form balanced P-groups, disjoint groups chain
// with S — so a workflow's critical-path composition exposes the exact
// tree shape the paper's estimators reason about, one level up.
func FromIntervals(tasks []timeline.Placed) (*Node, error) {
	if len(tasks) == 0 {
		return nil, errors.New("ptree: no intervals")
	}
	return Build(&timeline.Timeline{Tasks: tasks})
}

// balancedP builds a balanced binary P-subtree over a group of tasks (the
// paper's balancing procedure).
func balancedP(group []timeline.Placed) *Node {
	if len(group) == 1 {
		t := group[0]
		return &Node{Op: Leaf, Task: &t}
	}
	mid := len(group) / 2
	return &Node{
		Op:    P,
		Left:  balancedP(group[:mid]),
		Right: balancedP(group[mid:]),
	}
}
