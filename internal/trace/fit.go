package trace

import (
	"errors"
	"fmt"
	"sort"

	"hadoop2perf/internal/core"
	"hadoop2perf/internal/mrsim"
	"hadoop2perf/internal/stats"
	"hadoop2perf/internal/timeline"
)

// Fitting defaults and bounds.
const (
	// MaxTrimFraction bounds FitOptions.TrimFraction: trimming more than a
	// quarter of each tail no longer estimates the central tendency.
	MaxTrimFraction = 0.25
	// DefaultMinSamples is the per-class sample floor when
	// FitOptions.MinSamples is zero.
	DefaultMinSamples = 1
)

// FitOptions tunes how Fit turns raw trace samples into model statistics.
// The zero value fits every sample as-is.
type FitOptions struct {
	// TrimFraction drops this fraction of samples from each tail of the
	// per-class duration distribution before computing moments — straggler
	// and outlier rejection for traces gathered on busy clusters. A task's
	// demand samples are trimmed together with its duration so the fitted
	// demands describe the same population. 0 keeps everything; values above
	// MaxTrimFraction are rejected.
	TrimFraction float64
	// MinSamples is the minimum per-class sample count *after* trimming;
	// classes observed with fewer samples fail the fit rather than seed the
	// model from noise (default DefaultMinSamples).
	MinSamples int
	// CVFloor floors each class's fitted coefficient of variation. Traces of
	// a few near-identical executions under-disperse; a floor keeps the
	// estimators' variability terms alive (0 keeps the observed CV).
	CVFloor float64
}

func (o *FitOptions) validate() error {
	if o.TrimFraction < 0 || o.TrimFraction > MaxTrimFraction {
		return fmt.Errorf("trace: trim fraction %v outside [0, %v]", o.TrimFraction, MaxTrimFraction)
	}
	if o.MinSamples < 0 {
		return fmt.Errorf("trace: negative min samples %d", o.MinSamples)
	}
	if o.MinSamples == 0 {
		o.MinSamples = DefaultMinSamples
	}
	if o.CVFloor < 0 {
		return fmt.Errorf("trace: negative CV floor %v", o.CVFloor)
	}
	return nil
}

// FittedClass is one task class's fitted statistics plus fit provenance.
type FittedClass struct {
	// Stats is the model initialization payload for this class.
	Stats core.ClassStats `json:"stats"`
	// Samples counts the trace records the statistics were computed from
	// (after trimming); Trimmed counts the records dropped as outliers.
	Samples int `json:"samples"`
	Trimmed int `json:"trimmed"` // see Samples
}

// FitResult is a fitted per-class job profile ready to seed the analytic
// model: assign History to core.Config.History to use the trace as the
// §4.2.1 first-approach initialization instead of the Herodotou static model.
type FitResult struct {
	// History maps each observed task class to its fitted statistics, in the
	// exact shape core.Config.History consumes. Classes absent from the trace
	// are absent from the map; the model falls back to its static
	// initialization for them.
	History map[timeline.Class]core.ClassStats
	// Classes carries the per-class provenance (sample counts, trimming)
	// behind History.
	Classes map[timeline.Class]FittedClass
	// Jobs and Tasks count the trace records consumed by the fit.
	Jobs  int
	Tasks int // see Jobs
}

// classOf maps a trace task class to the model's timeline class.
func classOf(c mrsim.TaskClass) (timeline.Class, bool) {
	switch c {
	case mrsim.ClassMap:
		return timeline.ClassMap, true
	case mrsim.ClassShuffleSort:
		return timeline.ClassShuffleSort, true
	case mrsim.ClassMerge:
		return timeline.ClassMerge, true
	}
	return 0, false
}

// taskClassOf is the inverse of classOf (total: timeline has exactly the
// three trace classes).
func taskClassOf(c timeline.Class) mrsim.TaskClass {
	switch c {
	case timeline.ClassShuffleSort:
		return mrsim.ClassShuffleSort
	case timeline.ClassMerge:
		return mrsim.ClassMerge
	default:
		return mrsim.ClassMap
	}
}

// classSamples accumulates one class's raw samples, kept index-aligned so
// trimming by duration rank drops each outlier task's demand samples too.
type classSamples struct {
	durations []float64
	cpu       []float64
	disk      []float64
	network   []float64
}

// Fit distills a trace into the per-class statistics that initialize the
// analytic model (§4.2.1, first approach): mean response, coefficient of
// variation and mean service demands at the CPU, disk and network centers
// for every task class observed in the trace.
//
// Fit is the bridge the prediction service's /v1/calibrate endpoint and the
// mrpredict -trace flag ride: parse a trace with Read, fit it, and hand
// FitResult.History to core.Config.
func Fit(res mrsim.Result, opts FitOptions) (FitResult, error) {
	if err := opts.validate(); err != nil {
		return FitResult{}, err
	}
	if len(res.Jobs) == 0 {
		return FitResult{}, errors.New("trace: empty result")
	}
	byClass := map[timeline.Class]*classSamples{}
	tasks := 0
	for _, j := range res.Jobs {
		for _, t := range j.Tasks {
			cls, ok := classOf(t.Class)
			if !ok {
				return FitResult{}, fmt.Errorf("trace: job %d task %d has unknown class %q", j.JobID, t.TaskID, t.Class)
			}
			cs := byClass[cls]
			if cs == nil {
				cs = &classSamples{}
				byClass[cls] = cs
			}
			cs.durations = append(cs.durations, t.Duration())
			cs.cpu = append(cs.cpu, t.CPU)
			cs.disk = append(cs.disk, t.Disk)
			cs.network = append(cs.network, t.Network)
			tasks++
		}
	}
	if tasks == 0 {
		return FitResult{}, errors.New("trace: no task records to fit")
	}
	out := FitResult{
		History: make(map[timeline.Class]core.ClassStats, len(byClass)),
		Classes: make(map[timeline.Class]FittedClass, len(byClass)),
		Jobs:    len(res.Jobs),
		Tasks:   tasks,
	}
	for cls, cs := range byClass {
		fc, err := fitClass(cs, opts)
		if err != nil {
			return FitResult{}, fmt.Errorf("trace: class %s: %w", cls, err)
		}
		out.History[cls] = fc.Stats
		out.Classes[cls] = fc
	}
	return out, nil
}

// fitClass computes one class's trimmed statistics. Samples are ranked by
// duration; the trim drops whole tasks (duration and demands together) from
// both tails so the fitted demands describe the kept population.
func fitClass(cs *classSamples, opts FitOptions) (FittedClass, error) {
	n := len(cs.durations)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return cs.durations[order[a]] < cs.durations[order[b]] })
	drop := int(opts.TrimFraction * float64(n))
	kept := order[drop : n-drop]
	if len(kept) < opts.MinSamples {
		return FittedClass{}, fmt.Errorf("%d samples after trimming %d of %d, need at least %d",
			len(kept), n-len(kept), n, opts.MinSamples)
	}
	pick := func(src []float64) []float64 {
		out := make([]float64, len(kept))
		for i, idx := range kept {
			out[i] = src[idx]
		}
		return out
	}
	durs := pick(cs.durations)
	cv := stats.CV(durs)
	if cv < opts.CVFloor {
		cv = opts.CVFloor
	}
	return FittedClass{
		Stats: core.ClassStats{
			MeanResponse: stats.Mean(durs),
			CV:           cv,
			MeanCPU:      stats.Mean(pick(cs.cpu)),
			MeanDisk:     stats.Mean(pick(cs.disk)),
			MeanNetwork:  stats.Mean(pick(cs.network)),
		},
		Samples: len(kept),
		Trimmed: n - len(kept),
	}, nil
}
