package trace

import (
	"bytes"
	"math"
	"testing"

	"hadoop2perf/internal/mrsim"
	"hadoop2perf/internal/stats"
	"hadoop2perf/internal/timeline"
)

// record builds one task record with the given duration and demands.
func record(cls mrsim.TaskClass, id int, dur, cpu, disk, net float64) mrsim.TaskRecord {
	return mrsim.TaskRecord{
		JobID: 0, Class: cls, TaskID: id,
		Start: 0, End: dur, CPU: cpu, Disk: disk, Network: net,
	}
}

// syntheticResult wraps records into a one-job result.
func syntheticResult(tasks ...mrsim.TaskRecord) mrsim.Result {
	end := 0.0
	for _, t := range tasks {
		if t.End > end {
			end = t.End
		}
	}
	return mrsim.Result{Jobs: []mrsim.JobResult{{
		JobID: 0, Submit: 0, Start: 0, End: end, Response: end, Tasks: tasks,
	}}}
}

func TestFitMeansAndCounts(t *testing.T) {
	res := syntheticResult(
		record(mrsim.ClassMap, 0, 10, 8, 1, 0),
		record(mrsim.ClassMap, 1, 20, 16, 3, 0),
		record(mrsim.ClassShuffleSort, 0, 6, 2, 1, 3),
	)
	fit, err := Fit(res, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Jobs != 1 || fit.Tasks != 3 {
		t.Errorf("jobs=%d tasks=%d", fit.Jobs, fit.Tasks)
	}
	m := fit.History[timeline.ClassMap]
	if m.MeanResponse != 15 || m.MeanCPU != 12 || m.MeanDisk != 2 || m.MeanNetwork != 0 {
		t.Errorf("map stats = %+v", m)
	}
	ss := fit.History[timeline.ClassShuffleSort]
	if ss.MeanResponse != 6 || ss.MeanNetwork != 3 {
		t.Errorf("shuffle-sort stats = %+v", ss)
	}
	if _, ok := fit.History[timeline.ClassMerge]; ok {
		t.Error("merge fitted with no merge samples")
	}
	if fc := fit.Classes[timeline.ClassMap]; fc.Samples != 2 || fc.Trimmed != 0 {
		t.Errorf("map provenance = %+v", fc)
	}
}

// TestFitTrimsOutliers: a straggler 10x the population must not drag the
// fitted mean when trimming is on, and its demand samples go with it.
func TestFitTrimsOutliers(t *testing.T) {
	tasks := make([]mrsim.TaskRecord, 0, 10)
	for i := 0; i < 9; i++ {
		tasks = append(tasks, record(mrsim.ClassMap, i, 10, 5, 1, 0))
	}
	tasks = append(tasks, record(mrsim.ClassMap, 9, 100, 50, 10, 0))
	res := syntheticResult(tasks...)

	raw, err := Fit(res, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if raw.History[timeline.ClassMap].MeanResponse != 19 {
		t.Errorf("untrimmed mean = %v", raw.History[timeline.ClassMap].MeanResponse)
	}

	trimmed, err := Fit(res, FitOptions{TrimFraction: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	m := trimmed.History[timeline.ClassMap]
	// 10% off each tail of 10 samples drops the straggler and one short task,
	// leaving eight identical records.
	if m.MeanResponse != 10 || m.MeanCPU != 5 || m.MeanDisk != 1 {
		t.Errorf("trimmed stats = %+v", m)
	}
	if m.CV != 0 {
		t.Errorf("trimmed CV = %v, want 0 for identical samples", m.CV)
	}
	if fc := trimmed.Classes[timeline.ClassMap]; fc.Samples != 8 || fc.Trimmed != 2 {
		t.Errorf("provenance = %+v", fc)
	}
}

func TestFitCVFloor(t *testing.T) {
	res := syntheticResult(
		record(mrsim.ClassMap, 0, 10, 5, 1, 0),
		record(mrsim.ClassMap, 1, 10, 5, 1, 0),
	)
	fit, err := Fit(res, FitOptions{CVFloor: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if cv := fit.History[timeline.ClassMap].CV; cv != 0.2 {
		t.Errorf("CV = %v, want floored 0.2", cv)
	}
}

func TestFitMinSamples(t *testing.T) {
	res := syntheticResult(record(mrsim.ClassMap, 0, 10, 5, 1, 0))
	if _, err := Fit(res, FitOptions{MinSamples: 3}); err == nil {
		t.Error("single sample accepted against MinSamples=3")
	}
	if _, err := Fit(res, FitOptions{}); err != nil {
		t.Errorf("default min samples rejected a valid class: %v", err)
	}
}

func TestFitRejectsBadOptions(t *testing.T) {
	res := syntheticResult(record(mrsim.ClassMap, 0, 10, 5, 1, 0))
	for _, opts := range []FitOptions{
		{TrimFraction: -0.1},
		{TrimFraction: 0.5},
		{MinSamples: -1},
		{CVFloor: -1},
	} {
		if _, err := Fit(res, opts); err == nil {
			t.Errorf("options %+v accepted", opts)
		}
	}
}

func TestFitRejectsUnknownClassAndEmpty(t *testing.T) {
	if _, err := Fit(mrsim.Result{}, FitOptions{}); err == nil {
		t.Error("empty result accepted")
	}
	res := syntheticResult(record("reduce-side-magic", 0, 10, 5, 1, 0))
	if _, err := Fit(res, FitOptions{}); err == nil {
		t.Error("unknown task class accepted")
	}
	noTasks := mrsim.Result{Jobs: []mrsim.JobResult{{JobID: 0}}}
	if _, err := Fit(noTasks, FitOptions{}); err == nil {
		t.Error("taskless trace accepted")
	}
}

// TestFitRoundTripFromSimulation is the §4.2.1 closed loop: a trace written
// by the simulator, serialized, re-read and fitted must reproduce the
// simulated per-class duration means (and demand means) it was derived from.
func TestFitRoundTripFromSimulation(t *testing.T) {
	res := simResult(t)

	var buf bytes.Buffer
	if err := Write(&buf, res); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := Fit(back, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}

	want := map[timeline.Class][]float64{}
	wantCPU := map[timeline.Class][]float64{}
	for _, j := range res.Jobs {
		for _, task := range j.Tasks {
			cls, ok := classOf(task.Class)
			if !ok {
				t.Fatalf("unknown class %q", task.Class)
			}
			want[cls] = append(want[cls], task.Duration())
			wantCPU[cls] = append(wantCPU[cls], task.CPU)
		}
	}
	if len(fit.History) != len(want) {
		t.Fatalf("fitted %d classes, simulated %d", len(fit.History), len(want))
	}
	const tol = 1e-9
	for cls, durs := range want {
		got, ok := fit.History[cls]
		if !ok {
			t.Fatalf("class %s missing from fit", cls)
		}
		if m := stats.Mean(durs); math.Abs(got.MeanResponse-m) > tol*m {
			t.Errorf("%s: fitted mean %v vs simulated %v", cls, got.MeanResponse, m)
		}
		if m := stats.Mean(wantCPU[cls]); math.Abs(got.MeanCPU-m) > tol*math.Max(m, 1) {
			t.Errorf("%s: fitted CPU %v vs simulated %v", cls, got.MeanCPU, m)
		}
	}
}
