// Package trace defines the job-history trace format produced by the
// simulator and consumed by the performance model. Traces play the role of
// the "history of corresponding real Hadoop job executions" the paper uses to
// initialize residence times (§4.2.1) — in a real deployment these would be
// parsed from the MapReduce JobHistory server; here they are JSON documents
// written by internal/mrsim.
package trace

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"hadoop2perf/internal/mrsim"
	"hadoop2perf/internal/stats"
)

// FormatVersion guards against incompatible trace files.
const FormatVersion = 1

// Document is the on-disk trace layout.
type Document struct {
	Version int          `json:"version"`
	Result  mrsim.Result `json:"result"`
}

// Write serializes a simulation result as an indented JSON trace.
func Write(w io.Writer, res mrsim.Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Document{Version: FormatVersion, Result: res})
}

// Read parses a trace document and validates its version and basic sanity
// (non-negative times, End >= Start for every task).
func Read(r io.Reader) (mrsim.Result, error) {
	var doc Document
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return mrsim.Result{}, fmt.Errorf("trace: decode: %w", err)
	}
	if doc.Version != FormatVersion {
		return mrsim.Result{}, fmt.Errorf("trace: unsupported version %d (want %d)", doc.Version, FormatVersion)
	}
	for _, j := range doc.Result.Jobs {
		if j.End < j.Start || j.Start < j.Submit {
			return mrsim.Result{}, fmt.Errorf("trace: job %d has inconsistent times", j.JobID)
		}
		for _, t := range j.Tasks {
			if t.End < t.Start || t.Start < 0 {
				return mrsim.Result{}, fmt.Errorf("trace: job %d %s task %d has inconsistent times",
					j.JobID, t.Class, t.TaskID)
			}
		}
	}
	return doc.Result, nil
}

// ClassProfile aggregates observed statistics for one task class.
type ClassProfile struct {
	Count int
	// MeanResponse and CVResponse describe observed wall-clock durations.
	MeanResponse float64
	CVResponse   float64
	// MeanCPU, MeanDisk and MeanNetwork are observed mean service demands at
	// the model's centers (the residence-time initialization of §4.2.1).
	MeanCPU     float64
	MeanDisk    float64
	MeanNetwork float64
}

// Profile is the per-class job profile extracted from a trace.
type Profile struct {
	Classes map[mrsim.TaskClass]ClassProfile
}

// Extract computes a Profile across all jobs of a trace.
func Extract(res mrsim.Result) (Profile, error) {
	if len(res.Jobs) == 0 {
		return Profile{}, errors.New("trace: empty result")
	}
	durations := map[mrsim.TaskClass][]float64{}
	cpud := map[mrsim.TaskClass][]float64{}
	diskd := map[mrsim.TaskClass][]float64{}
	netd := map[mrsim.TaskClass][]float64{}
	for _, j := range res.Jobs {
		for _, t := range j.Tasks {
			durations[t.Class] = append(durations[t.Class], t.Duration())
			cpud[t.Class] = append(cpud[t.Class], t.CPU)
			diskd[t.Class] = append(diskd[t.Class], t.Disk)
			netd[t.Class] = append(netd[t.Class], t.Network)
		}
	}
	p := Profile{Classes: map[mrsim.TaskClass]ClassProfile{}}
	for class, ds := range durations {
		p.Classes[class] = ClassProfile{
			Count:        len(ds),
			MeanResponse: stats.Mean(ds),
			CVResponse:   stats.CV(ds),
			MeanCPU:      stats.Mean(cpud[class]),
			MeanDisk:     stats.Mean(diskd[class]),
			MeanNetwork:  stats.Mean(netd[class]),
		}
	}
	return p, nil
}
