// Package trace defines the job-history trace format produced by the
// simulator and consumed by the performance model. Traces play the role of
// the "history of corresponding real Hadoop job executions" the paper uses to
// initialize residence times (§4.2.1) — in a real deployment these would be
// parsed from the MapReduce JobHistory server; here they are JSON documents
// written by internal/mrsim.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"hadoop2perf/internal/mrsim"
)

// FormatVersion guards against incompatible trace files.
const FormatVersion = 1

// Document is the on-disk trace layout.
type Document struct {
	// Version is the trace format version (FormatVersion).
	Version int `json:"version"`
	// Result is the recorded execution.
	Result mrsim.Result `json:"result"`
}

// Write serializes a simulation result as an indented JSON trace.
func Write(w io.Writer, res mrsim.Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Document{Version: FormatVersion, Result: res})
}

// Read parses a trace document and validates its version and basic sanity:
// every time and demand is finite, End >= Start for every task, and every
// job carries at least one task record (a taskless job has nothing the
// profile fitter could learn from and signals a truncated history export).
func Read(r io.Reader) (mrsim.Result, error) {
	var doc Document
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return mrsim.Result{}, fmt.Errorf("trace: decode: %w", err)
	}
	if doc.Version != FormatVersion {
		return mrsim.Result{}, fmt.Errorf("trace: unsupported version %d (want %d)", doc.Version, FormatVersion)
	}
	if err := Validate(doc.Result); err != nil {
		return mrsim.Result{}, err
	}
	return doc.Result, nil
}

// Validate checks a trace result's basic sanity independently of its wire
// form — Read applies it after decoding, and consumers accepting
// already-parsed results (the service's calibration API) apply it to inputs
// that never passed through Read.
func Validate(res mrsim.Result) error {
	for _, j := range res.Jobs {
		if !finite(j.Submit, j.Start, j.End, j.Response) {
			return fmt.Errorf("trace: job %d has non-finite times", j.JobID)
		}
		if j.End < j.Start || j.Start < j.Submit {
			return fmt.Errorf("trace: job %d has inconsistent times", j.JobID)
		}
		if len(j.Tasks) == 0 {
			return fmt.Errorf("trace: job %d has no task records", j.JobID)
		}
		for _, t := range j.Tasks {
			if !finite(t.Start, t.End, t.CPU, t.Disk, t.Network) {
				return fmt.Errorf("trace: job %d %s task %d has non-finite values",
					j.JobID, t.Class, t.TaskID)
			}
			if t.End < t.Start || t.Start < 0 {
				return fmt.Errorf("trace: job %d %s task %d has inconsistent times",
					j.JobID, t.Class, t.TaskID)
			}
			if t.CPU < 0 || t.Disk < 0 || t.Network < 0 {
				// Negative service demands are physically impossible and would
				// flow straight into the model's MVA step.
				return fmt.Errorf("trace: job %d %s task %d has negative demands",
					j.JobID, t.Class, t.TaskID)
			}
		}
	}
	return nil
}

// finite reports whether every value is a finite float (no NaN, no ±Inf).
func finite(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// ClassProfile aggregates observed statistics for one task class.
type ClassProfile struct {
	// Count is the number of observed tasks of the class.
	Count int
	// MeanResponse and CVResponse describe observed wall-clock durations.
	MeanResponse float64
	CVResponse   float64 // see MeanResponse
	// MeanCPU, MeanDisk and MeanNetwork are observed mean service demands at
	// the model's centers (the residence-time initialization of §4.2.1).
	MeanCPU     float64
	MeanDisk    float64 // see MeanCPU
	MeanNetwork float64 // see MeanCPU
}

// Profile is the per-class job profile extracted from a trace.
type Profile struct {
	// Classes maps each observed task class to its aggregate statistics.
	Classes map[mrsim.TaskClass]ClassProfile
}

// Extract computes a Profile across all jobs of a trace: the untrimmed
// special case of Fit, re-keyed by the trace's own class names.
func Extract(res mrsim.Result) (Profile, error) {
	fit, err := Fit(res, FitOptions{})
	if err != nil {
		return Profile{}, err
	}
	p := Profile{Classes: make(map[mrsim.TaskClass]ClassProfile, len(fit.Classes))}
	for cls, fc := range fit.Classes {
		p.Classes[taskClassOf(cls)] = ClassProfile{
			Count:        fc.Samples,
			MeanResponse: fc.Stats.MeanResponse,
			CVResponse:   fc.Stats.CV,
			MeanCPU:      fc.Stats.MeanCPU,
			MeanDisk:     fc.Stats.MeanDisk,
			MeanNetwork:  fc.Stats.MeanNetwork,
		}
	}
	return p, nil
}
