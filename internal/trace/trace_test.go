package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"hadoop2perf/internal/cluster"
	"hadoop2perf/internal/mrsim"
	"hadoop2perf/internal/workload"
)

func simResult(t *testing.T) mrsim.Result {
	t.Helper()
	job, err := workload.NewJob(0, 512, 128, 2, workload.WordCount())
	if err != nil {
		t.Fatal(err)
	}
	res, err := mrsim.Run(mrsim.Config{Spec: cluster.Default(2), Jobs: []workload.Job{job}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRoundTrip(t *testing.T) {
	res := simResult(t)
	var buf bytes.Buffer
	if err := Write(&buf, res); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Jobs) != len(res.Jobs) {
		t.Fatalf("job count mismatch")
	}
	if back.Jobs[0].Response != res.Jobs[0].Response {
		t.Errorf("response mismatch: %v vs %v", back.Jobs[0].Response, res.Jobs[0].Response)
	}
	if len(back.Jobs[0].Tasks) != len(res.Jobs[0].Tasks) {
		t.Errorf("task count mismatch")
	}
}

func TestReadRejectsBadVersion(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"version": 99, "result": {}}`)); err == nil {
		t.Error("bad version accepted")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestReadRejectsInconsistentTimes(t *testing.T) {
	doc := `{"version":1,"result":{"jobs":[{"job":0,"submit":0,"start":5,"end":3,"response":3,"tasks":[]}]}}`
	if _, err := Read(strings.NewReader(doc)); err == nil {
		t.Error("end<start accepted")
	}
	doc2 := `{"version":1,"result":{"jobs":[{"job":0,"submit":0,"start":1,"end":9,"response":9,
		"tasks":[{"job":0,"class":"map","task":0,"node":0,"start":5,"end":2}]}]}}`
	if _, err := Read(strings.NewReader(doc2)); err == nil {
		t.Error("task end<start accepted")
	}
}

func TestReadRejectsNegativeTimes(t *testing.T) {
	// A task starting before t=0 cannot come from a real execution.
	doc := `{"version":1,"result":{"jobs":[{"job":0,"submit":0,"start":1,"end":9,"response":9,
		"tasks":[{"job":0,"class":"map","task":0,"node":0,"start":-3,"end":2}]}]}}`
	if _, err := Read(strings.NewReader(doc)); err == nil {
		t.Error("negative task start accepted")
	}
	// A job registering before its own submission is equally inconsistent.
	doc2 := `{"version":1,"result":{"jobs":[{"job":0,"submit":4,"start":1,"end":9,"response":5,"tasks":[]}]}}`
	if _, err := Read(strings.NewReader(doc2)); err == nil {
		t.Error("start<submit accepted")
	}
}

func TestReadRejectsTasklessJobs(t *testing.T) {
	// A job without a single task record cannot seed a profile fit and
	// signals a truncated history export.
	doc := `{"version":1,"result":{"jobs":[{"job":0,"submit":0,"start":1,"end":9,"response":9,"tasks":[]}]}}`
	if _, err := Read(strings.NewReader(doc)); err == nil {
		t.Error("taskless job accepted")
	}
}

func TestReadRejectsNonFiniteValues(t *testing.T) {
	// JSON itself cannot carry NaN/Inf literals, but out-of-range exponents
	// must still fail loudly rather than decode to garbage.
	doc := `{"version":1,"result":{"jobs":[{"job":0,"submit":0,"start":1,"end":9,"response":9,
		"tasks":[{"job":0,"class":"map","task":0,"node":0,"start":0,"end":1e999}]}]}}`
	if _, err := Read(strings.NewReader(doc)); err == nil {
		t.Error("overflowing task end accepted")
	}
	// Validate guards results that never passed through JSON (library callers
	// handing a constructed mrsim.Result to the calibration API).
	bad := mrsim.Result{Jobs: []mrsim.JobResult{{
		JobID: 0, End: 9, Response: 9,
		Tasks: []mrsim.TaskRecord{{Class: mrsim.ClassMap, Start: 0, End: math.NaN()}},
	}}}
	if err := Validate(bad); err == nil {
		t.Error("NaN task end accepted")
	}
	bad.Jobs[0].Tasks[0] = mrsim.TaskRecord{Class: mrsim.ClassMap, Start: 0, End: 1, CPU: math.Inf(1)}
	if err := Validate(bad); err == nil {
		t.Error("infinite CPU demand accepted")
	}
	bad.Jobs[0].Tasks[0] = mrsim.TaskRecord{Class: mrsim.ClassMap, Start: 0, End: 1, CPU: 1}
	bad.Jobs[0].Submit = math.Inf(-1)
	if err := Validate(bad); err == nil {
		t.Error("infinite job submit accepted")
	}
}

func TestValidateRejectsNegativeDemands(t *testing.T) {
	// A finite but negative service demand would seed the MVA step with a
	// physically impossible value.
	bad := mrsim.Result{Jobs: []mrsim.JobResult{{
		JobID: 0, End: 9, Response: 9,
		Tasks: []mrsim.TaskRecord{{Class: mrsim.ClassMap, Start: 0, End: 1, CPU: 5, Disk: -3}},
	}}}
	if err := Validate(bad); err == nil {
		t.Error("negative disk demand accepted")
	}
}

func TestReadRejectsVersionZero(t *testing.T) {
	// A document with no version field decodes as version 0 and must be
	// rejected rather than treated as current.
	if _, err := Read(strings.NewReader(`{"result":{}}`)); err == nil {
		t.Error("missing version accepted")
	}
}

func TestExtractProfile(t *testing.T) {
	res := simResult(t)
	p, err := Extract(res)
	if err != nil {
		t.Fatal(err)
	}
	for _, cls := range []mrsim.TaskClass{mrsim.ClassMap, mrsim.ClassShuffleSort, mrsim.ClassMerge} {
		cp, ok := p.Classes[cls]
		if !ok {
			t.Fatalf("missing class %s", cls)
		}
		if cp.Count <= 0 || cp.MeanResponse <= 0 {
			t.Errorf("%s: %+v", cls, cp)
		}
		if cp.CVResponse < 0 || cp.CVResponse > 1 {
			t.Errorf("%s: implausible CV %v", cls, cp.CVResponse)
		}
		if cp.MeanCPU <= 0 {
			t.Errorf("%s: no CPU demand recorded", cls)
		}
	}
	// Shuffle-sort is the only class with network demand.
	if p.Classes[mrsim.ClassShuffleSort].MeanNetwork <= 0 {
		t.Error("shuffle-sort should have network demand")
	}
	if p.Classes[mrsim.ClassMap].MeanNetwork != 0 {
		t.Error("maps should have no network demand")
	}
}

func TestExtractEmpty(t *testing.T) {
	if _, err := Extract(mrsim.Result{}); err == nil {
		t.Error("empty result accepted")
	}
}
