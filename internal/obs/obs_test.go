package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNewRequestID(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewRequestID()
		if len(id) != 16 {
			t.Fatalf("id %q has length %d, want 16", id, len(id))
		}
		if !ValidRequestID(id) {
			t.Fatalf("generated id %q fails ValidRequestID", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q in 100 draws", id)
		}
		seen[id] = true
	}
}

func TestValidRequestID(t *testing.T) {
	valid := []string{"a", "0123456789abcdef", "req-42_x.y", strings.Repeat("z", 64)}
	for _, id := range valid {
		if !ValidRequestID(id) {
			t.Errorf("ValidRequestID(%q) = false, want true", id)
		}
	}
	invalid := []string{
		"",
		strings.Repeat("z", 65),
		"has space",
		"newline\ninjection",
		"quote\"break",
		"semi;colon",
		"unicode-é",
		"tab\tsep",
	}
	for _, id := range invalid {
		if ValidRequestID(id) {
			t.Errorf("ValidRequestID(%q) = true, want false", id)
		}
	}
}

func TestStageString(t *testing.T) {
	want := []string{"admission", "queue_wait", "cache_lookup", "profile_resolve", "model_solve", "simulate", "plan_search"}
	names := StageNames()
	if len(names) != len(want) {
		t.Fatalf("StageNames() has %d entries, want %d", len(names), len(want))
	}
	for i, w := range want {
		if names[i] != w {
			t.Errorf("StageNames()[%d] = %q, want %q", i, names[i], w)
		}
		if got := Stage(i).String(); got != w {
			t.Errorf("Stage(%d).String() = %q, want %q", i, got, w)
		}
	}
	if got := Stage(-1).String(); got != "stage(-1)" {
		t.Errorf("out-of-range stage name = %q", got)
	}
}

func TestTraceSpansAndSnapshot(t *testing.T) {
	tr := NewTrace("abc123")
	if tr.RequestID() != "abc123" {
		t.Fatalf("RequestID = %q", tr.RequestID())
	}

	tr.Add(StageModelSolve, 50*time.Millisecond)
	tr.Add(StageModelSolve, 30*time.Millisecond)
	stop := tr.StartSpan(StageCacheLookup)
	if d := stop(); d < 0 {
		t.Fatalf("span duration negative: %v", d)
	}
	tr.AddCount("predicts", 2)
	tr.AddCount("predicts", 1)

	snap := tr.Snapshot()
	ms, ok := snap.Stages["model_solve"]
	if !ok {
		t.Fatal("model_solve missing from snapshot")
	}
	if ms.Spans != 2 || ms.Seconds < 0.079 || ms.Seconds > 0.081 {
		t.Errorf("model_solve = %+v, want 2 spans / ~0.08s", ms)
	}
	if cl, ok := snap.Stages["cache_lookup"]; !ok || cl.Spans != 1 {
		t.Errorf("cache_lookup = %+v, want 1 span", cl)
	}
	if _, ok := snap.Stages["simulate"]; ok {
		t.Error("untouched stage simulate should be omitted from snapshot")
	}
	if snap.Counts["predicts"] != 3 {
		t.Errorf("counts[predicts] = %d, want 3", snap.Counts["predicts"])
	}
	if tr.Count("predicts") != 3 {
		t.Errorf("Count(predicts) = %d, want 3", tr.Count("predicts"))
	}
}

// TestTraceNilSafety: every Trace method must tolerate a nil receiver so
// un-instrumented call paths need no guards.
func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	if tr.RequestID() != "" {
		t.Error("nil RequestID should be empty")
	}
	tr.Add(StageModelSolve, time.Second)
	tr.StartSpan(StageSimulate)()
	tr.AddCount("x", 1)
	if tr.Count("x") != 0 {
		t.Error("nil Count should be 0")
	}
	if tr.Snapshot() != nil {
		t.Error("nil Snapshot should be nil")
	}
}

func TestTraceContext(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context should carry no trace")
	}
	tr := NewTrace("ctx-id")
	ctx := WithTrace(context.Background(), tr)
	if got := FromContext(ctx); got != tr {
		t.Fatalf("FromContext = %p, want %p", got, tr)
	}
}

// TestTraceConcurrent records spans and counters from many goroutines (run
// under -race): plan fan-out does exactly this.
func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace("conc")
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Add(StageModelSolve, time.Microsecond)
				tr.AddCount("predicts", 1)
			}
		}()
	}
	wg.Wait()
	snap := tr.Snapshot()
	if got := snap.Stages["model_solve"].Spans; got != workers*per {
		t.Errorf("spans = %d, want %d", got, workers*per)
	}
	if got := snap.Counts["predicts"]; got != workers*per {
		t.Errorf("predicts = %d, want %d", got, workers*per)
	}
}
