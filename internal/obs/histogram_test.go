package obs

import (
	"math"
	"sync"
	"testing"
)

// TestHistogramBucketMath pins the le semantics of the fixed buckets:
// values on a boundary count into that bucket, values between boundaries
// into the next one up, values past the last bound only into +Inf, and the
// snapshot view is cumulative.
func TestHistogramBucketMath(t *testing.T) {
	h := NewHistogram([]float64{0.1, 0.5, 1})

	h.Observe(0.05) // below first bound -> le=0.1
	h.Observe(0.1)  // exactly on a bound -> le=0.1 (inclusive upper bound)
	h.Observe(0.3)  // between bounds -> le=0.5
	h.Observe(1)    // on the last bound -> le=1
	h.Observe(7)    // past the last bound -> +Inf only
	h.Observe(0)    // zero -> first bucket

	snap := h.Snapshot()
	wantCum := []int64{3, 4, 5} // cumulative: le=0.1, le=0.5, le=1
	if len(snap.Buckets) != len(wantCum) {
		t.Fatalf("buckets = %d, want %d", len(snap.Buckets), len(wantCum))
	}
	for i, want := range wantCum {
		if snap.Buckets[i].Count != want {
			t.Errorf("bucket le=%v cumulative = %d, want %d",
				snap.Buckets[i].UpperBound, snap.Buckets[i].Count, want)
		}
	}
	if snap.Count != 6 {
		t.Errorf("count = %d, want 6 (the +Inf cumulative bucket)", snap.Count)
	}
	if infOnly := snap.Count - snap.Buckets[len(snap.Buckets)-1].Count; infOnly != 1 {
		t.Errorf("+Inf-only observations = %d, want 1", infOnly)
	}
	if want := 0.05 + 0.1 + 0.3 + 1 + 7; math.Abs(snap.Sum-want) > 1e-12 {
		t.Errorf("sum = %v, want %v", snap.Sum, want)
	}

	// NaN observations are dropped, not misfiled.
	h.Observe(math.NaN())
	if got := h.Snapshot().Count; got != 6 {
		t.Errorf("count after NaN = %d, want 6", got)
	}
}

// TestHistogramCumulativeMonotone: cumulative counts never decrease across
// buckets, and the total closes the sequence.
func TestHistogramCumulativeMonotone(t *testing.T) {
	h := NewHistogram(DefaultLatencyBuckets())
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i) * 0.0137)
	}
	snap := h.Snapshot()
	prev := int64(0)
	for _, b := range snap.Buckets {
		if b.Count < prev {
			t.Fatalf("cumulative count dropped: le=%v has %d after %d", b.UpperBound, b.Count, prev)
		}
		prev = b.Count
	}
	if snap.Count < prev {
		t.Fatalf("total %d below last finite bucket %d", snap.Count, prev)
	}
	if snap.Count != 1000 {
		t.Fatalf("count = %d, want 1000", snap.Count)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines (run
// under -race in CI): no observation may be lost and the sum must match.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram([]float64{0.25, 0.75})
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(0.5) // middle bucket
			}
		}(w)
	}
	wg.Wait()
	snap := h.Snapshot()
	total := int64(workers * perWorker)
	if snap.Count != total {
		t.Errorf("count = %d, want %d", snap.Count, total)
	}
	if snap.Buckets[0].Count != 0 || snap.Buckets[1].Count != total {
		t.Errorf("buckets = %+v", snap.Buckets)
	}
	if want := 0.5 * float64(total); math.Abs(snap.Sum-want) > 1e-6*want {
		t.Errorf("sum = %v, want %v", snap.Sum, want)
	}
}

// TestHistogramBadBounds: malformed bucket layouts are programmer errors
// and fail construction loudly.
func TestHistogramBadBounds(t *testing.T) {
	for name, bounds := range map[string][]float64{
		"empty":          {},
		"non-increasing": {1, 1},
		"descending":     {2, 1},
		"inf":            {1, math.Inf(1)},
		"nan":            {math.NaN(), 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: NewHistogram did not panic", name)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}
