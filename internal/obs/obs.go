// Package obs is the request-scoped observability layer of the serving
// path: per-request trace IDs carried through context.Context, lightweight
// stage spans (start/stop timers accumulated per request), fixed-bucket
// latency histograms for the /v1/metrics exposition, and log/slog handler
// construction for structured access logs.
//
// The package is deliberately dependency-free and allocation-lean: a Trace
// is one small struct with a fixed stage array, histogram recording is a
// handful of atomic operations, and every entry point is nil-safe so
// un-instrumented call paths (library users driving the Service directly)
// pay nothing.
package obs

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// Stage identifies one timed segment of a request's serving path. Stages
// are not a partition — a cache hit spends no model_solve time, a plan's
// plan_search span contains its candidates' model_solve spans — they answer
// "where did this request's latency go", per stage kind.
type Stage int

// The serving-path stages, in pipeline order.
const (
	// StageAdmission is the admission-control decision: cost accounting,
	// queue-depth and deadline-aware shed checks (microseconds by design).
	StageAdmission Stage = iota
	// StageQueueWait is time spent waiting for a worker-pool slot.
	StageQueueWait
	// StageCacheLookup is the canonical-key LRU probe.
	StageCacheLookup
	// StageProfileResolve is calibrated-profile registry resolution.
	StageProfileResolve
	// StageModelSolve is one analytic model run to convergence.
	StageModelSolve
	// StageSimulate is one median-of-seeds discrete-event simulator run.
	StageSimulate
	// StagePlanSearch is a plan's full strategy evaluation (grid or search).
	StagePlanSearch
	// NumStages is the stage count (array sizing).
	NumStages
)

// stageNames are the stable wire/metric names of the stages.
var stageNames = [NumStages]string{
	"admission", "queue_wait", "cache_lookup", "profile_resolve",
	"model_solve", "simulate", "plan_search",
}

// String returns the stage's stable name (metric label, timings key).
func (s Stage) String() string {
	if s < 0 || s >= NumStages {
		return fmt.Sprintf("stage(%d)", int(s))
	}
	return stageNames[s]
}

// StageNames lists the stable stage names in pipeline order — the label
// domain of the mrserved_stage_duration_seconds family.
func StageNames() []string {
	out := make([]string, NumStages)
	copy(out, stageNames[:])
	return out
}

// Counter identifies one of the fixed request-scoped counters every request
// may touch. Fixed counters live in a lock-free array on the Trace so the
// serving hot path (a cache hit bumps CounterCacheHits and nothing else)
// never allocates a map; free-form names (the planner's per-combo counts)
// go through AddCount instead.
type Counter int

// The fixed counters, in the order access-log lines report them.
const (
	// CounterCacheHits counts requests served from the LRU or a shared
	// singleflight result; CounterCacheMisses counts actual computations.
	CounterCacheHits   Counter = iota
	CounterCacheMisses         // see CounterCacheHits
	// CounterPredicts counts computed (non-cached) model runs.
	CounterPredicts
	// CounterWarmStarted counts model runs seeded from a warm-start neighbor.
	CounterWarmStarted
	// CounterOuterIterations accumulates outer damped rounds across the
	// request's model runs; CounterInnerIterations the inner MVA sweeps.
	CounterOuterIterations
	CounterInnerIterations // see CounterOuterIterations
	// CounterPlanCandidates is the number of candidates a plan evaluated.
	CounterPlanCandidates
	// NumCounters is the fixed-counter count (array sizing).
	NumCounters
)

// counterNames are the stable wire/log names of the fixed counters.
var counterNames = [NumCounters]string{
	"cacheHits", "cacheMisses", "predicts", "warmStarted",
	"outerIterations", "innerIterations", "planCandidates",
}

// String returns the counter's stable name (timings key, log attribute).
func (c Counter) String() string {
	if c < 0 || c >= NumCounters {
		return fmt.Sprintf("counter(%d)", int(c))
	}
	return counterNames[c]
}

// maxRequestIDLen bounds accepted inbound X-Request-ID values.
const maxRequestIDLen = 64

// hexDigits is the NewRequestID alphabet.
const hexDigits = "0123456789abcdef"

// NewRequestID returns a fresh 16-hex-char request ID. IDs only need to be
// unique enough to correlate a response with its log lines, so they come
// from the fast non-cryptographic generator.
func NewRequestID() string {
	v := rand.Uint64()
	var b [16]byte
	for i := len(b) - 1; i >= 0; i-- {
		b[i] = hexDigits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// ValidRequestID reports whether an inbound request ID is safe to adopt:
// 1..64 bytes of [0-9A-Za-z._-]. Anything else (whitespace, control bytes,
// quotes — log/header injection vectors) is rejected and replaced by a
// generated ID rather than echoed.
func ValidRequestID(id string) bool {
	if len(id) == 0 || len(id) > maxRequestIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// Trace accumulates one request's observability state: its ID, per-stage
// durations and span counts, the fixed counters (cache hits, model
// iterations — lock-free, allocation-free) and free-form named counters
// (per-combo predict counts). A Trace is safe for concurrent use — plan
// fan-out records spans from many goroutines — and every method is
// nil-receiver-safe so un-traced call paths need no checks.
type Trace struct {
	// ID is the request ID echoed in responses, headers and log lines.
	ID string

	counters [NumCounters]atomic.Int64

	mu     sync.Mutex
	stages [NumStages]time.Duration
	spans  [NumStages]int64
	counts map[string]int64
}

// NewTrace returns a Trace carrying the given request ID.
func NewTrace(id string) *Trace { return &Trace{ID: id} }

// ctxKey is the private context key type for Trace values.
type ctxKey struct{}

// WithTrace returns a context carrying tr.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, tr)
}

// FromContext returns the Trace carried by ctx, or nil. The nil result is
// usable: every Trace method tolerates a nil receiver.
func FromContext(ctx context.Context) *Trace {
	tr, _ := ctx.Value(ctxKey{}).(*Trace)
	return tr
}

// RequestID returns the trace's request ID ("" for a nil trace).
func (t *Trace) RequestID() string {
	if t == nil {
		return ""
	}
	return t.ID
}

// Add accumulates one completed span of the given stage.
func (t *Trace) Add(stage Stage, d time.Duration) {
	if t == nil || stage < 0 || stage >= NumStages {
		return
	}
	t.mu.Lock()
	t.stages[stage] += d
	t.spans[stage]++
	t.mu.Unlock()
}

// StartSpan starts a stage timer; the returned stop function records the
// elapsed duration into the trace and returns it.
func (t *Trace) StartSpan(stage Stage) func() time.Duration {
	start := time.Now()
	return func() time.Duration {
		d := time.Since(start)
		t.Add(stage, d)
		return d
	}
}

// AddCounter accumulates one of the fixed counters — a single atomic add,
// so the cache-hit fast path records its hit without locking or allocating.
func (t *Trace) AddCounter(c Counter, n int64) {
	if t == nil || c < 0 || c >= NumCounters {
		return
	}
	t.counters[c].Add(n)
}

// Counter returns the current value of a fixed counter (0 for a nil trace).
func (t *Trace) Counter(c Counter) int64 {
	if t == nil || c < 0 || c >= NumCounters {
		return 0
	}
	return t.counters[c].Load()
}

// AddCount accumulates a named counter. Names of fixed counters route to
// their lock-free slot, so AddCount("predicts") and
// AddCounter(CounterPredicts, …) are the same counter; free-form names (the
// planner's per-combo evaluation counts) go to a map allocated on first
// use. Hot paths should call AddCounter directly.
func (t *Trace) AddCount(name string, n int64) {
	if t == nil {
		return
	}
	for c := Counter(0); c < NumCounters; c++ {
		if counterNames[c] == name {
			t.counters[c].Add(n)
			return
		}
	}
	t.mu.Lock()
	if t.counts == nil {
		t.counts = make(map[string]int64, 8)
	}
	t.counts[name] += n
	t.mu.Unlock()
}

// Count returns the current value of a named counter — fixed or free-form
// (0 when absent or for a nil trace).
func (t *Trace) Count(name string) int64 {
	if t == nil {
		return 0
	}
	for c := Counter(0); c < NumCounters; c++ {
		if counterNames[c] == name {
			return t.counters[c].Load()
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counts[name]
}

// StageSeconds is one stage's accumulated time within a single request.
type StageSeconds struct {
	// Seconds is the total accumulated span time of the stage.
	Seconds float64 `json:"seconds"`
	// Spans is how many spans contributed to it.
	Spans int64 `json:"spans"`
}

// Snapshot is a point-in-time copy of a Trace, shaped for the opt-in
// `?debug=timings` response block.
type Snapshot struct {
	// Stages maps stage names to their accumulated durations; stages the
	// request never entered are omitted.
	Stages map[string]StageSeconds `json:"stages"`
	// Counts carries the trace's named counters (omitted when empty).
	Counts map[string]int64 `json:"counts,omitempty"`
}

// Snapshot copies the trace's current state (nil for a nil trace).
func (t *Trace) Snapshot() *Snapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	snap := &Snapshot{Stages: make(map[string]StageSeconds, NumStages)}
	for s := Stage(0); s < NumStages; s++ {
		if t.spans[s] == 0 {
			continue
		}
		snap.Stages[stageNames[s]] = StageSeconds{
			Seconds: t.stages[s].Seconds(),
			Spans:   t.spans[s],
		}
	}
	for k, v := range t.counts {
		if snap.Counts == nil {
			snap.Counts = make(map[string]int64, len(t.counts)+int(NumCounters))
		}
		snap.Counts[k] = v
	}
	for c := Counter(0); c < NumCounters; c++ {
		if v := t.counters[c].Load(); v != 0 {
			if snap.Counts == nil {
				snap.Counts = make(map[string]int64, NumCounters)
			}
			snap.Counts[counterNames[c]] = v
		}
	}
	return snap
}
