package obs

import (
	"fmt"
	"io"
	"log/slog"
)

// Log formats accepted by NewLogger (the mrserved -log-format flag).
const (
	// LogFormatText is the human-readable key=value handler (default).
	LogFormatText = "text"
	// LogFormatJSON is one JSON object per line — the machine-ingestible
	// access-log format.
	LogFormatJSON = "json"
)

// NewLogger builds a structured logger writing to w in the given format
// ("text", "json", or "" for text) at the given level. Unknown formats are
// an error so a typoed -log-format fails startup loudly instead of
// silently logging in the wrong shape.
func NewLogger(w io.Writer, format string, level slog.Level) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch format {
	case "", LogFormatText:
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case LogFormatJSON:
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (want %q or %q)", format, LogFormatText, LogFormatJSON)
}
