package obs

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// DefaultLatencyBuckets are the fixed upper bounds (seconds) of the serving
// latency histograms: half-millisecond resolution at the cached fast path
// up to the 30 s request timeout. Values past the last bound land in the
// implicit +Inf bucket.
func DefaultLatencyBuckets() []float64 {
	return []float64{
		0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
		0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
	}
}

// Histogram is a fixed-bucket, lock-free histogram: Observe is a binary
// search plus three atomic adds, safe for concurrent recording on the
// serving hot path. Buckets hold non-cumulative per-bucket counts
// internally; Snapshot renders the Prometheus-style cumulative view.
type Histogram struct {
	bounds []float64 // sorted ascending upper bounds; immutable
	// buckets[i] counts observations v <= bounds[i] (and > bounds[i-1]);
	// buckets[len(bounds)] is the +Inf overflow bucket.
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // IEEE-754 bits of the running sum
}

// NewHistogram builds a histogram over the given upper bounds (seconds),
// which must be finite and strictly increasing; an implicit +Inf bucket is
// appended. The bounds slice is copied. Panics on malformed bounds — bucket
// layouts are compile-time decisions, not runtime inputs.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("obs: histogram bound %d is %v", i, b))
		}
		if i > 0 && b <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not strictly increasing at %d (%v <= %v)",
				i, b, bounds[i-1]))
		}
	}
	h := &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
	return h
}

// Observe records one value. A value exactly on a bucket's upper bound
// counts into that bucket (le semantics); values past the last bound count
// only into the +Inf bucket. NaN observations are dropped.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	// First bound >= v: sort.SearchFloat64s finds the first i with
	// bounds[i] >= v, which is exactly the le-bucket; i == len(bounds)
	// is the +Inf overflow.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Bucket is one cumulative histogram bucket on the wire: the count of
// observations at or below UpperBound.
type Bucket struct {
	// UpperBound is the bucket's inclusive upper bound, seconds.
	UpperBound float64 `json:"le"`
	// Count is cumulative: observations <= UpperBound.
	Count int64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram in cumulative
// form — the JSON twin of one Prometheus histogram series. The implicit
// +Inf bucket is not listed in Buckets (JSON has no Inf); its cumulative
// count is Count, the total.
type HistogramSnapshot struct {
	// Buckets are the finite cumulative buckets, ascending by bound.
	Buckets []Bucket `json:"buckets"`
	// Count is the total observation count (the +Inf cumulative bucket).
	Count int64 `json:"count"`
	// Sum is the sum of all observed values, seconds.
	Sum float64 `json:"sum"`
}

// Snapshot copies the histogram's current cumulative state. Concurrent
// Observe calls may land between bucket reads, so the invariants are
// monotone buckets and Count >= the last finite bucket — not an atomic
// cross-bucket cut.
func (h *Histogram) Snapshot() HistogramSnapshot {
	snap := HistogramSnapshot{
		Buckets: make([]Bucket, len(h.bounds)),
		Sum:     math.Float64frombits(h.sumBits.Load()),
	}
	var cum int64
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		snap.Buckets[i] = Bucket{UpperBound: b, Count: cum}
	}
	// The +Inf bucket closes the total; read it after the finite buckets so
	// Count can never be below the last cumulative bound under concurrency.
	snap.Count = cum + h.buckets[len(h.bounds)].Load()
	return snap
}
