package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 5},
		{"pair", []float64{2, 4}, 3},
		{"negative", []float64{-1, 1}, 0},
		{"many", []float64{1, 2, 3, 4, 5}, 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.in); !almostEq(got, tt.want, 1e-12) {
				t.Errorf("Mean(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestMedian(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{7}, 7},
		{"odd", []float64{3, 1, 2}, 2},
		{"even", []float64{4, 1, 3, 2}, 2.5},
		{"repeated", []float64{5, 5, 5, 1}, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Median(tt.in); !almostEq(got, tt.want, 1e-12) {
				t.Errorf("Median(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Median mutated its input: %v", in)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	in := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(in); !almostEq(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(in); !almostEq(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Variance([]float64{1}); got != 0 {
		t.Errorf("Variance of singleton = %v, want 0", got)
	}
}

func TestCV(t *testing.T) {
	if got := CV([]float64{5, 5, 5}); got != 0 {
		t.Errorf("CV of constants = %v, want 0", got)
	}
	if got := CV(nil); got != 0 {
		t.Errorf("CV(nil) = %v, want 0", got)
	}
	// Zero mean guards division.
	if got := CV([]float64{-1, 1}); got != 0 {
		t.Errorf("CV with zero mean = %v, want 0", got)
	}
	got := CV([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEq(got, 2.0/5.0, 1e-12) {
		t.Errorf("CV = %v, want 0.4", got)
	}
}

func TestHarmonic(t *testing.T) {
	tests := []struct {
		n    int
		want float64
	}{
		{0, 0},
		{1, 1},
		{2, 1.5},
		{3, 1.5 + 1.0/3},
		{4, 1.5 + 1.0/3 + 0.25},
	}
	for _, tt := range tests {
		if got := Harmonic(tt.n); !almostEq(got, tt.want, 1e-12) {
			t.Errorf("Harmonic(%d) = %v, want %v", tt.n, got, tt.want)
		}
	}
}

func TestHarmonicMonotone(t *testing.T) {
	prev := 0.0
	for n := 1; n < 100; n++ {
		h := Harmonic(n)
		if h <= prev {
			t.Fatalf("Harmonic(%d) = %v not greater than Harmonic(%d) = %v", n, h, n-1, prev)
		}
		prev = h
	}
}

func TestRelError(t *testing.T) {
	tests := []struct {
		est, act, want float64
	}{
		{110, 100, 0.1},
		{90, 100, 0.1},
		{100, 100, 0},
		{5, 0, 0}, // zero actual guarded
	}
	for _, tt := range tests {
		if got := RelError(tt.est, tt.act); !almostEq(got, tt.want, 1e-12) {
			t.Errorf("RelError(%v,%v) = %v, want %v", tt.est, tt.act, got, tt.want)
		}
	}
}

func TestSignedRelError(t *testing.T) {
	if got := SignedRelError(110, 100); !almostEq(got, 0.1, 1e-12) {
		t.Errorf("overestimate sign: got %v", got)
	}
	if got := SignedRelError(90, 100); !almostEq(got, -0.1, 1e-12) {
		t.Errorf("underestimate sign: got %v", got)
	}
	if got := SignedRelError(1, 0); got != 0 {
		t.Errorf("zero actual: got %v", got)
	}
}

func TestMaxMinSum(t *testing.T) {
	in := []float64{3, -1, 7, 2}
	if got := Max(in); got != 7 {
		t.Errorf("Max = %v", got)
	}
	if got := Min(in); got != -1 {
		t.Errorf("Min = %v", got)
	}
	if got := Sum(in); got != 11 {
		t.Errorf("Sum = %v", got)
	}
	if Max(nil) != 0 || Min(nil) != 0 || Sum(nil) != 0 {
		t.Error("empty-slice results should be 0")
	}
}

func TestClamp(t *testing.T) {
	tests := []struct {
		x, lo, hi, want float64
	}{
		{5, 0, 10, 5},
		{-5, 0, 10, 0},
		{15, 0, 10, 10},
		{0, 0, 0, 0},
	}
	for _, tt := range tests {
		if got := Clamp(tt.x, tt.lo, tt.hi); got != tt.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", tt.x, tt.lo, tt.hi, got, tt.want)
		}
	}
}

// Property: mean is always between min and max.
func TestMeanBoundedProperty(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return Mean(xs) == 0
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true // skip degenerate inputs
			}
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-6 && m <= Max(xs)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: variance is non-negative and scale-quadratic.
func TestVarianceProperty(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e30 {
				return true
			}
		}
		v := Variance(xs)
		if v < 0 {
			return false
		}
		// Scaling by 2 quadruples the variance.
		scaled := make([]float64, len(xs))
		for i, x := range xs {
			scaled[i] = 2 * x
		}
		v2 := Variance(scaled)
		return almostEq(v2, 4*v, 1e-6*(1+v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: median is between min and max and insensitive to order.
func TestMedianProperty(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			// Skip values whose pairwise sums overflow (the even-length
			// median averages two elements).
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e300 {
				return true
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Median(xs)
		rev := make([]float64, len(xs))
		for i, x := range xs {
			rev[len(xs)-1-i] = x
		}
		return m >= Min(xs) && m <= Max(xs) && Median(rev) == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
