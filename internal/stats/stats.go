// Package stats provides small numeric helpers shared across the performance
// model: means, medians, coefficients of variation, harmonic numbers and
// relative errors. All functions are pure and operate on float64 slices.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the median of xs (average of the two middle elements for
// even lengths), or 0 for an empty slice. The input is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Variance returns the population variance of xs, or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CV returns the coefficient of variation sigma/mu of xs, or 0 when the mean
// is zero.
func CV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// Harmonic returns the n-th harmonic number H_n = sum_{i=1..n} 1/i.
// Harmonic(0) is 0.
func Harmonic(n int) float64 {
	var h float64
	for i := 1; i <= n; i++ {
		h += 1 / float64(i)
	}
	return h
}

// RelError returns |estimate-actual|/actual, or 0 when actual is zero.
func RelError(estimate, actual float64) float64 {
	if actual == 0 {
		return 0
	}
	return math.Abs(estimate-actual) / actual
}

// SignedRelError returns (estimate-actual)/actual; positive values indicate
// overestimation. It returns 0 when actual is zero.
func SignedRelError(estimate, actual float64) float64 {
	if actual == 0 {
		return 0
	}
	return (estimate - actual) / actual
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
