package herodotou

import (
	"testing"

	"hadoop2perf/internal/cluster"
	"hadoop2perf/internal/workload"
)

func job(t *testing.T, inputMB float64, reduces int) workload.Job {
	t.Helper()
	j, err := workload.NewJob(0, inputMB, 128, reduces, workload.WordCount())
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestCostsPositive(t *testing.T) {
	c, err := Costs(job(t, 1024, 4), cluster.Default(4))
	if err != nil {
		t.Fatal(err)
	}
	if c.Map <= 0 || c.ShuffleSort <= 0 || c.Merge <= 0 {
		t.Errorf("non-positive costs: %+v", c)
	}
}

func TestCostsValidation(t *testing.T) {
	if _, err := Costs(workload.Job{}, cluster.Default(4)); err == nil {
		t.Error("invalid job accepted")
	}
	if _, err := Costs(job(t, 1024, 4), cluster.Spec{}); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestPredictWaveArithmetic(t *testing.T) {
	spec := cluster.Default(4) // 8 map slots/node -> 32 slots
	j := job(t, 5*1024, 4)     // 40 maps
	est, err := Predict(j, spec)
	if err != nil {
		t.Fatal(err)
	}
	if est.MapWaves != 2 { // ceil(40/32)
		t.Errorf("map waves = %d, want 2", est.MapWaves)
	}
	if est.ReduceWaves != 1 {
		t.Errorf("reduce waves = %d, want 1", est.ReduceWaves)
	}
	wantMap := 2 * est.Costs.Map
	if est.MapPhase != wantMap {
		t.Errorf("map phase = %v, want %v", est.MapPhase, wantMap)
	}
	wantTotal := j.Profile.AMStartup + est.MapPhase + est.ReducePhase
	if est.Total != wantTotal {
		t.Errorf("total = %v, want %v", est.Total, wantTotal)
	}
}

func TestPredictMonotoneInInput(t *testing.T) {
	spec := cluster.Default(4)
	prev := 0.0
	for _, mb := range []float64{512, 1024, 2048, 4096, 8192} {
		est, err := Predict(job(t, mb, 4), spec)
		if err != nil {
			t.Fatal(err)
		}
		if est.Total < prev {
			t.Fatalf("total not monotone at %v MB: %v < %v", mb, est.Total, prev)
		}
		prev = est.Total
	}
}

func TestPredictNoSlowerWithMoreNodes(t *testing.T) {
	j := job(t, 5*1024, 4)
	prev := 1e18
	for _, n := range []int{2, 4, 8, 16} {
		est, err := Predict(j, cluster.Default(n))
		if err != nil {
			t.Fatal(err)
		}
		if est.Total > prev+1e-9 {
			t.Fatalf("static estimate grew with nodes at %d: %v > %v", n, est.Total, prev)
		}
		prev = est.Total
	}
}

func TestPredictStaticIgnoresContention(t *testing.T) {
	// The static model has no notion of concurrent jobs: this is the paper's
	// §2 criticism; the estimate depends only on the job and cluster.
	spec := cluster.Default(4)
	a, err := Predict(job(t, 1024, 4), spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Predict(job(t, 1024, 4), spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Total != b.Total {
		t.Error("static prediction not deterministic")
	}
}

// Class-form specs feed the static model through cluster-average hardware
// and class-aware slot totals.
func TestPredictHeterogeneousSpec(t *testing.T) {
	job, err := workload.NewJob(0, 1024, 128, 2, workload.WordCount())
	if err != nil {
		t.Fatal(err)
	}
	het := cluster.Default(0)
	het.NumNodes = 0
	het.Classes = []cluster.NodeClass{
		{Name: "fast", Count: 2, Capacity: cluster.Resource{MemoryMB: 32768, VCores: 32},
			CPUs: 6, Disks: 1, DiskMBps: 240, NetworkMBps: 110, Speed: 1},
		{Name: "slow", Count: 2, Capacity: cluster.Resource{MemoryMB: 16384, VCores: 16},
			CPUs: 4, Disks: 1, DiskMBps: 120, NetworkMBps: 110, Speed: 0.5},
	}
	est, err := Predict(job, het)
	if err != nil {
		t.Fatal(err)
	}
	if est.Total <= 0 || est.MapWaves <= 0 {
		t.Fatalf("degenerate estimate: %+v", est)
	}
	fast, err := Predict(job, cluster.Default(4))
	if err != nil {
		t.Fatal(err)
	}
	if est.Total <= fast.Total {
		t.Errorf("mixed cluster should be slower: het %v vs fast %v", est.Total, fast.Total)
	}
}
