// Package herodotou implements the static phase-level MapReduce cost model of
// Herodotou ("Hadoop Performance Models", arXiv:1106.0940) as used by the
// paper for two purposes:
//
//  1. Initializing the task response times of the iterative model (§4.2.1,
//     second approach: assume all map tasks execute first using all available
//     resources, then all reduce tasks).
//  2. Serving as a static related-work baseline: the job execution time is
//     simply the sum of the wave-serialized map and reduce phase costs, with
//     no queueing or synchronization delays.
package herodotou

import (
	"errors"
	"math"

	"hadoop2perf/internal/cluster"
	"hadoop2perf/internal/workload"
)

// TaskCosts holds the uncontended per-task phase costs computed by the static
// model.
type TaskCosts struct {
	// Map is the cost of one (full-split) map task: read+map+collect+spill+merge.
	Map float64
	// ShuffleSort is the cost of one reducer's shuffle + partial sorts.
	ShuffleSort float64
	// Merge is the cost of one reducer's final sort + reduce + write.
	Merge float64
}

// Estimate holds the static model's job-level prediction.
type Estimate struct {
	Costs TaskCosts
	// MapWaves and ReduceWaves are the wave counts given cluster slot capacity.
	MapWaves    int
	ReduceWaves int
	// MapPhase and ReducePhase are the serialized phase durations.
	MapPhase    float64
	ReducePhase float64
	// Total is the job response time estimate: AM startup + map phase +
	// reduce phase (all maps first, then all reduces).
	Total float64
}

// Costs evaluates the per-task phase cost formulas for a job on the given
// cluster hardware.
func Costs(job workload.Job, spec cluster.Spec) (TaskCosts, error) {
	if err := job.Validate(); err != nil {
		return TaskCosts{}, err
	}
	if err := spec.Validate(); err != nil {
		return TaskCosts{}, err
	}
	// Cluster-average hardware (exactly the flat values for homogeneous
	// specs): Herodotou's static view has no placement, so heterogeneous
	// classes contribute by their node-count weight.
	disk, net, inv := spec.MeanDiskMBps(), spec.MeanNetworkMBps(), spec.MeanInvSpeed()
	md := job.MapDemands(job.BlockSizeMB, disk)
	ss := job.ShuffleSortDemands(net, disk)
	mg := job.MergeDemands(disk)
	return TaskCosts{
		Map:         md.TotalScaled(inv),
		ShuffleSort: ss.TotalScaled(inv),
		Merge:       mg.TotalScaled(inv),
	}, nil
}

// Predict computes the static job completion time: map tasks run in
// ceil(m/slots) waves on all map slots, then reduce tasks run in
// ceil(r/slots) waves. This mirrors Herodotou's "sum of the costs from all
// map and reduce phases" under a fixed slot configuration; for Hadoop 2.x we
// feed it the container-derived slot counts, which is exactly how the paper
// reuses it for initialization.
func Predict(job workload.Job, spec cluster.Spec) (Estimate, error) {
	costs, err := Costs(job, spec)
	if err != nil {
		return Estimate{}, err
	}
	mapSlots := spec.TotalMapSlots()
	redSlots := spec.TotalReduceSlots()
	if mapSlots == 0 || redSlots == 0 {
		return Estimate{}, errors.New("herodotou: cluster has zero task slots")
	}
	m := job.NumMaps()
	r := job.NumReduces
	mw := int(math.Ceil(float64(m) / float64(mapSlots)))
	rw := int(math.Ceil(float64(r) / float64(redSlots)))
	mapPhase := float64(mw) * costs.Map
	redPhase := float64(rw) * (costs.ShuffleSort + costs.Merge)
	return Estimate{
		Costs:       costs,
		MapWaves:    mw,
		ReduceWaves: rw,
		MapPhase:    mapPhase,
		ReducePhase: redPhase,
		Total:       job.Profile.AMStartup + mapPhase + redPhase,
	}, nil
}
