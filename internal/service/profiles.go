package service

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"hadoop2perf/internal/core"
	"hadoop2perf/internal/mrsim"
	"hadoop2perf/internal/timeline"
	"hadoop2perf/internal/trace"
)

// Profile registry defaults and bounds.
const (
	// DefaultProfileTTL is how long a calibrated profile stays resolvable
	// when Options.ProfileTTL is zero. Fleets are expected to recalibrate
	// continuously from fresh JobHistory traces; an expired profile failing
	// loudly beats a year-old one silently seeding predictions.
	DefaultProfileTTL = time.Hour
	// DefaultMaxProfiles bounds the registry population when
	// Options.MaxProfiles is zero.
	DefaultMaxProfiles = 256
	// MaxProfileNameLen bounds calibrated profile names (they ride cache
	// keys, logs and metrics labels).
	MaxProfileNameLen = 100
)

// CalibrateRequest fits a named profile from a parsed job-history trace
// (§4.2.1, first initialization approach). The fitted per-class statistics
// are stored in the service's versioned profile registry; subsequent
// Predict/Compare/Plan requests reference them by name.
type CalibrateRequest struct {
	// Name identifies the profile; calibrating an existing name replaces it
	// with a new version, and every cache entry keyed on the old content
	// becomes unreachable.
	Name string
	// Result is the parsed trace (e.g. from trace.Read). Library callers
	// handing constructed results get the same sanity validation Read
	// applies to documents.
	Result mrsim.Result
	// Fit tunes outlier trimming, sample floors and CV floors.
	Fit trace.FitOptions
	// TTL overrides the service's default profile lifetime when positive.
	TTL time.Duration
}

func (r *CalibrateRequest) validate() error {
	if r.Name == "" {
		return fmt.Errorf("service: calibrate needs a profile name")
	}
	if len(r.Name) > MaxProfileNameLen {
		return fmt.Errorf("service: profile name exceeds %d bytes", MaxProfileNameLen)
	}
	if strings.ContainsFunc(r.Name, func(c rune) bool { return c <= ' ' || c == 0x7f }) {
		return fmt.Errorf("service: profile name %q contains whitespace or control characters", r.Name)
	}
	if r.TTL < 0 {
		return fmt.Errorf("service: negative profile TTL %v", r.TTL)
	}
	return trace.Validate(r.Result)
}

// CalibrateResponse reports the stored profile and its fitted statistics.
type CalibrateResponse struct {
	// Profile identifies the stored version; its Hash changes whenever the
	// fitted content changes, which is what invalidates cached predictions.
	Profile ProfileInfo
	// Classes is the per-class fit (statistics plus sample provenance).
	Classes map[timeline.Class]trace.FittedClass
}

// ProfileInfo is the registry's public view of one calibrated profile.
type ProfileInfo struct {
	// Name is the reference key used by request Profile fields.
	Name string `json:"name"`
	// Version increments on every store across the registry; a prediction's
	// ProfileVersion ties it to the exact calibration that seeded it.
	Version int64 `json:"version"`
	// Hash is the canonical content hash of the fitted statistics — the
	// value folded into cache keys.
	Hash string `json:"hash"`
	// Jobs and Samples count the trace records behind the fit.
	Jobs    int `json:"jobs"`
	Samples int `json:"samples"` // see Jobs
	// CreatedAt and ExpiresAt bound the profile's lifetime; resolution after
	// ExpiresAt fails until the profile is recalibrated.
	CreatedAt time.Time `json:"createdAt"`
	ExpiresAt time.Time `json:"expiresAt"` // see CreatedAt
}

// calibratedProfile is one stored registry entry. The history map is
// immutable after store: resolutions hand it to concurrent model runs.
type calibratedProfile struct {
	info    ProfileInfo
	history map[timeline.Class]core.ClassStats
	classes map[timeline.Class]trace.FittedClass
}

// profileRegistry is the mutex-guarded name → calibrated-profile store with
// per-entry expiry and a monotone version counter.
type profileRegistry struct {
	mu      sync.RWMutex
	max     int
	ttl     time.Duration
	now     func() time.Time // injectable clock (expiry tests)
	version int64
	byName  map[string]*calibratedProfile
}

func newProfileRegistry(max int, ttl time.Duration) *profileRegistry {
	return &profileRegistry{max: max, ttl: ttl, now: time.Now, byName: make(map[string]*calibratedProfile)}
}

// store fits nothing itself — it files an already-fitted result under name,
// assigning the next registry version. Expired entries are purged first so
// dead names do not count against the population bound.
func (r *profileRegistry) store(name string, fit trace.FitResult, ttl time.Duration) (*calibratedProfile, error) {
	if ttl <= 0 {
		ttl = r.ttl
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	for n, p := range r.byName {
		if !p.info.ExpiresAt.After(now) {
			delete(r.byName, n)
		}
	}
	if _, exists := r.byName[name]; !exists && len(r.byName) >= r.max {
		return nil, fmt.Errorf("service: profile registry full (%d entries); recalibrate an existing name or raise Options.MaxProfiles", r.max)
	}
	r.version++
	p := &calibratedProfile{
		info: ProfileInfo{
			Name:      name,
			Version:   r.version,
			Hash:      profileContentHash(fit.History),
			Jobs:      fit.Jobs,
			Samples:   fit.Tasks,
			CreatedAt: now,
			ExpiresAt: now.Add(ttl),
		},
		history: fit.History,
		classes: fit.Classes,
	}
	r.byName[name] = p
	return p, nil
}

// resolve returns the live profile stored under name, or an error naming
// the failure mode (unknown vs. expired) so clients can tell a typo from a
// stale calibration.
func (r *profileRegistry) resolve(name string) (*calibratedProfile, error) {
	r.mu.RLock()
	p, ok := r.byName[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("service: unknown profile %q (calibrate it first)", name)
	}
	if !p.info.ExpiresAt.After(r.now()) {
		return nil, fmt.Errorf("service: profile %q expired at %s; recalibrate it", name, p.info.ExpiresAt.Format(time.RFC3339))
	}
	return p, nil
}

// list snapshots the live (unexpired) profiles, sorted by name.
func (r *profileRegistry) list() []ProfileInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	now := r.now()
	out := make([]ProfileInfo, 0, len(r.byName))
	for _, p := range r.byName {
		if p.info.ExpiresAt.After(now) {
			out = append(out, p.info)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

// liveCount reports the unexpired registry population (metrics).
func (r *profileRegistry) liveCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	now := r.now()
	for _, p := range r.byName {
		if p.info.ExpiresAt.After(now) {
			n++
		}
	}
	return n
}

// Calibrate fits a named profile from a trace and stores it in the
// registry. Requests referencing the name afterwards resolve to this
// version; cached predictions keyed on any earlier version become
// unreachable because cache keys hash the resolved profile content.
//
// The fit runs under a worker-pool slot like every other compute path:
// traces carry up to 16 MiB of task records, and a calibration burst must
// degrade into queueing rather than starve the prediction workers.
func (s *Service) Calibrate(ctx context.Context, req CalibrateRequest) (CalibrateResponse, error) {
	s.calibrateReqs.Add(1)
	if err := req.validate(); err != nil {
		return CalibrateResponse{}, invalid(err)
	}
	if err := s.acquire(ctx); err != nil {
		return CalibrateResponse{}, err
	}
	fit, err := trace.Fit(req.Result, req.Fit)
	s.release()
	if err != nil {
		return CalibrateResponse{}, invalid(err)
	}
	p, err := s.profiles.store(req.Name, fit, req.TTL)
	if err != nil {
		return CalibrateResponse{}, invalid(err)
	}
	return CalibrateResponse{Profile: p.info, Classes: p.classes}, nil
}

// Profiles lists the live calibrated profiles, sorted by name.
func (s *Service) Profiles() []ProfileInfo {
	return s.profiles.list()
}
