package service

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hadoop2perf/internal/cluster"
	"hadoop2perf/internal/workload"
)

// The golden pins below freeze the exact wire behavior of workflow-less
// requests: every response body and cache key captured here predates the
// workflow layer, so any byte drift on the classic single-job surface —
// a changed field, a reordered key, a bumped cache-key encoding — fails
// loudly instead of silently invalidating clients and caches.
//
// Regenerate deliberately (only when the classic wire format is *meant* to
// change) with:
//
//	GOLDEN_REGEN=1 go test -run TestGolden ./internal/service

// goldenRegen reports whether the run should rewrite the golden files
// instead of asserting against them.
func goldenRegen() bool { return os.Getenv("GOLDEN_REGEN") == "1" }

// goldenHTTPCases is the fixed request corpus: one deterministic body per
// classic endpoint shape (flat predict, heterogeneous predict, simulate,
// compare, grid plan, deadline-search plan). None carries a workflow block.
var goldenHTTPCases = []struct {
	name string
	path string
	body string
}{
	{
		name: "predict-flat",
		path: "/v1/predict",
		body: `{"cluster":{"nodes":4},"job":{"inputMB":2048,"blockSizeMB":128,"reduces":4},"numJobs":2}`,
	},
	{
		name: "predict-hetero",
		path: "/v1/predict",
		body: `{"cluster":{"classes":[
			{"name":"fast","count":4,"capacity":{"memoryMB":32768,"vcores":32},"cpus":6,"disks":1,"diskMBps":240,"networkMBps":110,"speed":1},
			{"name":"slow","count":4,"capacity":{"memoryMB":32768,"vcores":32},"cpus":6,"disks":1,"diskMBps":140,"networkMBps":110,"speed":0.5}
		]},"job":{"inputMB":4096,"reduces":2,"profile":"terasort"},"estimator":"tripathi"}`,
	},
	{
		name: "simulate",
		path: "/v1/simulate",
		body: `{"cluster":{"nodes":2},"job":{"inputMB":512,"reduces":2},"seed":1,"reps":3}`,
	},
	{
		name: "compare",
		path: "/v1/compare",
		body: `{"cluster":{"nodes":2},"job":{"inputMB":512},"seed":3,"reps":2}`,
	},
	{
		name: "plan-grid",
		path: "/v1/plan",
		body: `{"cluster":{"nodes":4},"job":{"inputMB":1024},"nodes":[2,4],"blockSizesMB":[64,128]}`,
	},
	{
		name: "plan-search",
		path: "/v1/plan",
		body: `{"cluster":{"nodes":4},"job":{"inputMB":1024},"nodes":[2,3,4,6,8,12,16,24],"deadlineSec":600}`,
	},
}

// goldenPath returns the pinned-response file for one case.
func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".json")
}

// TestGoldenResponsesPinned posts every classic (workflow-less) request
// against a fresh service and requires the response body to match the
// pinned pre-workflow bytes exactly. Each case gets its own Service so
// cache state (the "cached" flags) is deterministic, and the bare mux is
// used so no per-request ID is spliced into the envelope.
func TestGoldenResponsesPinned(t *testing.T) {
	for _, tc := range goldenHTTPCases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := ServerConfig{}
			cfg.applyDefaults()
			srv := httptest.NewServer(newMux(New(Options{Workers: 4}), cfg))
			defer srv.Close()
			resp, err := http.Post(srv.URL+tc.path, "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			got, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, got)
			}
			if goldenRegen() {
				if err := os.MkdirAll(filepath.Dir(goldenPath(tc.name)), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath(tc.name), got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath(tc.name))
			if err != nil {
				t.Fatalf("missing golden (run GOLDEN_REGEN=1 once): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("response drifted from pre-workflow golden\ngot:\n%s\nwant:\n%s", got, want)
			}
		})
	}
}

// goldenKeyRequests builds the fixed request set whose cache keys are
// pinned: a key change here means every pre-workflow cache entry (and any
// external key-derived artifact) silently strands.
func goldenKeyRequests(t *testing.T) map[string]string {
	t.Helper()
	job, err := workload.NewJob(0, 2048, 128, 4, workload.WordCount())
	if err != nil {
		t.Fatal(err)
	}
	hjob, err := workload.NewJob(0, 4096, 256, 2, workload.TeraSort())
	if err != nil {
		t.Fatal(err)
	}
	hetero := cluster.Default(0)
	hetero.NumNodes = 0
	hetero.Classes = []cluster.NodeClass{
		{Name: "fast", Count: 4, Capacity: cluster.Resource{MemoryMB: 32768, VCores: 32},
			CPUs: 6, Disks: 1, DiskMBps: 240, NetworkMBps: 110, Speed: 1},
		{Name: "slow", Count: 4, Capacity: cluster.Resource{MemoryMB: 32768, VCores: 32},
			CPUs: 6, Disks: 1, DiskMBps: 140, NetworkMBps: 110, Speed: 0.5},
	}
	simJobs := []workload.Job{job, job}
	simJobs[1].ID = 1
	return map[string]string{
		"predict":        predictKey(PredictRequest{Spec: cluster.Default(4), Job: job, NumJobs: 2}),
		"predict-hetero": predictKey(PredictRequest{Spec: hetero, Job: hjob, NumJobs: 1, Estimator: 1}),
		"simulate":       simulateKey(SimulateRequest{Spec: cluster.Default(4), Jobs: simJobs, Seed: 7, Reps: 3}),
		"compare":        compareKey(CompareRequest{Spec: cluster.Default(2), Job: job, NumJobs: 1, Seed: 3, Reps: 2}),
	}
}

// TestGoldenCacheKeysPinned requires the canonical cache-key encoding of
// workflow-less requests to be byte-stable against the pre-workflow pins:
// the workflow layer introduces its own key kinds and versions, and must
// never perturb classic keys.
func TestGoldenCacheKeysPinned(t *testing.T) {
	keys := goldenKeyRequests(t)
	path := filepath.Join("testdata", "golden", "keys.txt")
	if goldenRegen() {
		var b strings.Builder
		for _, name := range []string{"predict", "predict-hetero", "simulate", "compare"} {
			fmt.Fprintf(&b, "%s %s\n", name, keys[name])
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run GOLDEN_REGEN=1 once): %v", err)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		name, want, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed golden line %q", line)
		}
		if got := keys[name]; got != want {
			t.Errorf("%s cache key drifted: got %s want %s", name, got, want)
		}
	}
}
