package service

import (
	"context"
	"testing"

	"hadoop2perf/internal/cluster"
	"hadoop2perf/internal/workload"
	"hadoop2perf/internal/yarn"
)

func planBase(t *testing.T) PlanRequest {
	t.Helper()
	job, err := workload.NewJob(0, 2*1024, 128, 4, workload.WordCount())
	if err != nil {
		t.Fatal(err)
	}
	return PlanRequest{Spec: cluster.Default(4), Job: job}
}

func TestPlanCapacityQuestion(t *testing.T) {
	// The capacity-planning example as one API call: smallest cluster
	// meeting a deadline. Larger clusters are faster, so the cheapest
	// feasible candidate must be the smallest feasible node count.
	s := New(Options{Workers: 4})
	req := planBase(t)
	req.Nodes = []int{2, 4, 6, 8}

	// First pass without a deadline: fastest candidate wins.
	resp, err := s.Plan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Candidates) != 4 || resp.Evaluated != 4 {
		t.Fatalf("candidates = %d evaluated = %d", len(resp.Candidates), resp.Evaluated)
	}
	if resp.Best == nil {
		t.Fatal("no best without deadline")
	}
	for _, c := range resp.Candidates {
		if c.ResponseTime < resp.Best.ResponseTime {
			t.Errorf("best (%v s) is not fastest (%v s at %d nodes)",
				resp.Best.ResponseTime, c.ResponseTime, c.Nodes)
		}
		if c.Feasible {
			t.Error("feasible set without a deadline")
		}
	}

	// Now with a deadline between the slowest and fastest candidate.
	slowest, fastest := 0.0, 1e18
	for _, c := range resp.Candidates {
		if c.ResponseTime > slowest {
			slowest = c.ResponseTime
		}
		if c.ResponseTime < fastest {
			fastest = c.ResponseTime
		}
	}
	if !(fastest < slowest) {
		t.Fatalf("degenerate sweep: %v .. %v", fastest, slowest)
	}
	req.DeadlineSec = (slowest + fastest) / 2
	resp2, err := s.Plan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Best == nil {
		t.Fatal("no feasible candidate found")
	}
	if !resp2.Best.Feasible {
		t.Error("best not marked feasible")
	}
	for _, c := range resp2.Candidates {
		if c.Feasible && c.NodeSeconds < resp2.Best.NodeSeconds {
			t.Errorf("best costs %v node-s but %d nodes cost %v",
				resp2.Best.NodeSeconds, c.Nodes, c.NodeSeconds)
		}
	}

	// The second plan re-used every prediction from the first.
	for _, c := range resp2.Candidates {
		if !c.Cached {
			t.Errorf("candidate %d nodes recomputed despite warm cache", c.Nodes)
		}
	}
}

func TestPlanImpossibleDeadline(t *testing.T) {
	s := New(Options{Workers: 4})
	req := planBase(t)
	req.Nodes = []int{2, 4}
	req.DeadlineSec = 0.001
	resp, err := s.Plan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Best != nil {
		t.Errorf("impossible deadline produced best = %+v", resp.Best)
	}
	if resp.Evaluated != 2 {
		t.Errorf("evaluated = %d", resp.Evaluated)
	}
}

func TestPlanMultiAxisGrid(t *testing.T) {
	s := New(Options{Workers: 4})
	req := planBase(t)
	req.Nodes = []int{2, 4}
	req.BlockSizesMB = []float64{64, 128}
	req.Reducers = []int{2, 4}
	resp, err := s.Plan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Candidates) != 8 {
		t.Fatalf("grid size = %d, want 8", len(resp.Candidates))
	}
	distinct := map[float64]bool{}
	for _, c := range resp.Candidates {
		if c.Err != "" {
			t.Errorf("candidate failed: %+v", c)
		}
		distinct[c.ResponseTime] = true
	}
	if len(distinct) < 4 {
		t.Errorf("grid collapsed to %d distinct responses", len(distinct))
	}
}

func TestPlanPolicyAxisSharesModelPredictions(t *testing.T) {
	// Model-backed candidates differing only in policy must collapse onto
	// one cached prediction each.
	s := New(Options{Workers: 4})
	req := planBase(t)
	req.Policies = []yarn.Policy{yarn.PolicyFIFO, yarn.PolicyFair}
	resp, err := s.Plan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Candidates) != 2 {
		t.Fatalf("candidates = %d", len(resp.Candidates))
	}
	if resp.Candidates[0].ResponseTime != resp.Candidates[1].ResponseTime {
		t.Error("model-backed candidates diverged across policies")
	}
	m := s.Metrics()
	if m.CacheMisses != 1 {
		t.Errorf("model ran %d times for a policy-only grid", m.CacheMisses)
	}
}

func TestPlanSimulatorBacked(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator-backed plan in -short mode")
	}
	s := New(Options{Workers: 4})
	job, err := workload.NewJob(0, 256, 128, 1, workload.WordCount())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := s.Plan(context.Background(), PlanRequest{
		Spec: cluster.Default(2), Job: job,
		Nodes:        []int{2, 4},
		UseSimulator: true, Seed: 1, Reps: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Evaluated != 2 {
		t.Fatalf("evaluated = %d: %+v", resp.Evaluated, resp.Candidates)
	}
	for _, c := range resp.Candidates {
		if c.ResponseTime <= 0 {
			t.Errorf("candidate %+v", c)
		}
	}
	if s.Metrics().SimRuns != 2 {
		t.Errorf("sim runs = %d, want 2", s.Metrics().SimRuns)
	}
}

func TestPlanValidation(t *testing.T) {
	s := New(Options{})
	req := planBase(t)
	req.Nodes = []int{0}
	if _, err := s.Plan(context.Background(), req); err == nil {
		t.Error("zero node count accepted")
	}
	req = planBase(t)
	req.DeadlineSec = -1
	if _, err := s.Plan(context.Background(), req); err == nil {
		t.Error("negative deadline accepted")
	}
	req = planBase(t)
	req.Nodes = make([]int, maxPlanCandidates+1)
	for i := range req.Nodes {
		req.Nodes[i] = i + 1
	}
	if _, err := s.Plan(context.Background(), req); err == nil {
		t.Error("oversized grid accepted")
	}
}
