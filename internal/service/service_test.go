package service

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"hadoop2perf/internal/cluster"
	"hadoop2perf/internal/core"
	"hadoop2perf/internal/workload"
	"hadoop2perf/internal/yarn"
)

func testJob(t *testing.T, inputMB float64, reduces int) workload.Job {
	t.Helper()
	job, err := workload.NewJob(0, inputMB, 128, reduces, workload.WordCount())
	if err != nil {
		t.Fatal(err)
	}
	return job
}

func TestPredictCachesRepeatedRequests(t *testing.T) {
	s := New(Options{Workers: 2, CacheSize: 8})
	req := PredictRequest{Spec: cluster.Default(2), Job: testJob(t, 512, 2)}

	first, err := s.Predict(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("first request reported cached")
	}
	if first.Prediction.ResponseTime <= 0 {
		t.Fatalf("response = %v", first.Prediction.ResponseTime)
	}

	second, err := s.Predict(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("identical request was not served from cache")
	}
	if second.Prediction.ResponseTime != first.Prediction.ResponseTime {
		t.Errorf("cached response drifted: %v vs %v",
			second.Prediction.ResponseTime, first.Prediction.ResponseTime)
	}

	m := s.Metrics()
	if m.CacheMisses != 1 || m.CacheHits != 1 {
		t.Errorf("metrics: %d misses / %d hits, want 1 / 1", m.CacheMisses, m.CacheHits)
	}
	if m.HitRate != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", m.HitRate)
	}
}

func TestPredictKeyDistinguishesRequests(t *testing.T) {
	base := PredictRequest{Spec: cluster.Default(4), Job: testJob(t, 1024, 4), NumJobs: 1}
	variants := []PredictRequest{base}
	v := base
	v.NumJobs = 2
	variants = append(variants, v)
	v = base
	v.Estimator = core.EstimatorTripathi
	variants = append(variants, v)
	v = base
	v.Spec.NumNodes = 6
	variants = append(variants, v)
	v = base
	v.Job.BlockSizeMB = 64
	variants = append(variants, v)
	v = base
	v.Job.Profile = workload.Grep()
	variants = append(variants, v)

	seen := map[string]int{}
	for i, r := range variants {
		k := predictKey(r)
		if prev, dup := seen[k]; dup {
			t.Errorf("variants %d and %d collide on key %s", prev, i, k)
		}
		seen[k] = i
	}
}

// TestPredictSingleflight hammers one request from many goroutines: the
// model must run once, and every other caller must be served the shared or
// cached result. Run under -race this also exercises the cache, flight
// group and metrics for data races.
func TestPredictSingleflight(t *testing.T) {
	s := New(Options{Workers: 4, CacheSize: 8})
	req := PredictRequest{Spec: cluster.Default(2), Job: testJob(t, 512, 2)}

	const callers = 32
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Predict(context.Background(), req); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	m := s.Metrics()
	if m.CacheMisses != 1 {
		t.Errorf("model ran %d times for one unique request", m.CacheMisses)
	}
	if m.CacheHits != callers-1 {
		t.Errorf("hits = %d, want %d", m.CacheHits, callers-1)
	}
}

// TestConcurrentMixedRequests drives distinct predictions, simulations and
// plans through one service at once (-race coverage of the whole engine).
func TestConcurrentMixedRequests(t *testing.T) {
	s := New(Options{Workers: 4, CacheSize: 64})
	spec := cluster.Default(2)
	var wg sync.WaitGroup
	errs := make(chan error, 64)

	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			job := testJob(t, float64(256+128*i), 1+i%3)
			if _, err := s.Predict(context.Background(), PredictRequest{Spec: spec, Job: job}); err != nil {
				errs <- err
			}
		}(i)
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			job := testJob(t, 256, 1)
			_, err := s.Simulate(context.Background(), SimulateRequest{
				Spec: spec, Jobs: []workload.Job{job}, Seed: int64(i), Reps: 1,
			})
			if err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := s.Plan(context.Background(), PlanRequest{
			Spec: spec, Job: testJob(t, 512, 2), Nodes: []int{2, 4}, Reducers: []int{1, 2},
		})
		if err != nil {
			errs <- err
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	m := s.Metrics()
	if m.PredictRequests < 8 || m.SimulateRequests != 2 || m.PlanRequests != 1 {
		t.Errorf("request counters: %+v", m)
	}
	if m.InFlightSims != 0 {
		t.Errorf("in-flight sims did not drain: %d", m.InFlightSims)
	}
	if m.SimRuns != 2 {
		t.Errorf("sim runs = %d, want 2", m.SimRuns)
	}
}

func TestPredictValidation(t *testing.T) {
	s := New(Options{})
	bad := PredictRequest{Spec: cluster.Default(2)} // zero job
	if _, err := s.Predict(context.Background(), bad); err == nil {
		t.Error("invalid job accepted")
	}
	badEst := PredictRequest{Spec: cluster.Default(2), Job: testJob(t, 512, 2), Estimator: core.Estimator(99)}
	if _, err := s.Predict(context.Background(), badEst); err == nil {
		t.Error("invalid estimator accepted")
	}
	if _, err := s.Simulate(context.Background(), SimulateRequest{Spec: cluster.Default(2)}); err == nil {
		t.Error("simulate with no jobs accepted")
	}
}

func TestPredictHonorsCancellation(t *testing.T) {
	// A single-worker pool with its slot held: a canceled caller must
	// return promptly with ctx.Err() instead of queueing forever.
	s := New(Options{Workers: 1})
	if err := s.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer s.release()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.Predict(ctx, PredictRequest{Spec: cluster.Default(2), Job: testJob(t, 512, 2)})
	if err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Errorf("err = %v, want context canceled", err)
	}

	ctx2, cancel2 := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel2()
	start := time.Now()
	_, err = s.Predict(ctx2, PredictRequest{Spec: cluster.Default(2), Job: testJob(t, 512, 2)})
	if err == nil {
		t.Error("expected deadline error while pool is saturated")
	}
	if time.Since(start) > 2*time.Second {
		t.Error("cancellation did not return promptly")
	}
}

func TestSimulateMatchesDirectRun(t *testing.T) {
	s := New(Options{Workers: 2})
	job := testJob(t, 256, 1)
	resp, err := s.Simulate(context.Background(), SimulateRequest{
		Spec: cluster.Default(2), Jobs: []workload.Job{job}, Seed: 1, Reps: 1,
		Policy: yarn.PolicyFIFO,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Result.MeanResponse() <= 0 {
		t.Fatalf("mean response = %v", resp.Result.MeanResponse())
	}
	again, err := s.Simulate(context.Background(), SimulateRequest{
		Spec: cluster.Default(2), Jobs: []workload.Job{job}, Seed: 1, Reps: 1,
		Policy: yarn.PolicyFIFO,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Error("identical simulation not cached")
	}
	if again.Result.MeanResponse() != resp.Result.MeanResponse() {
		t.Error("cached simulation drifted")
	}
}

func TestCompare(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed comparison in -short mode")
	}
	s := New(Options{Workers: 2})
	resp, err := s.Compare(context.Background(), CompareRequest{
		Spec: cluster.Default(2), Job: testJob(t, 512, 2), Seed: 1, Reps: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Simulated <= 0 || resp.ForkJoin <= 0 || resp.Tripathi <= 0 {
		t.Errorf("comparison = %+v", resp)
	}
	if resp.Cached {
		t.Error("first compare reported cached")
	}
	again, err := s.Compare(context.Background(), CompareRequest{
		Spec: cluster.Default(2), Job: testJob(t, 512, 2), Seed: 1, Reps: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Error("repeated compare not cached")
	}
}

func TestLRUEviction(t *testing.T) {
	// LRU ordering is per shard: pick three keys that collide on one shard
	// so the recency behavior is observable through the public surface.
	target := shardOf("a")
	keys := []string{"a"}
	for i := 0; len(keys) < 3; i++ {
		if k := fmt.Sprintf("k%d", i); shardOf(k) == target {
			keys = append(keys, k)
		}
	}
	a, b, c3 := keys[0], keys[1], keys[2]
	c := newShardedCache(2*cacheShards, 0) // two entries per shard
	c.add(a, 1)
	c.add(b, 2)
	if _, ok := c.get(a); !ok { // refresh a
		t.Fatal("a missing")
	}
	c.add(c3, 3) // evicts b (least recently used on the shared shard)
	if _, ok := c.get(b); ok {
		t.Error("b survived eviction")
	}
	if _, ok := c.get(a); !ok {
		t.Error("a evicted despite recent use")
	}
}

// The sharded cache must bound its total population near the requested
// capacity (per-shard slices, rounded up) while keys spread over shards,
// and hits must keep returning the stored values.
func TestShardedCacheCapacityAndSpread(t *testing.T) {
	const max = 64
	c := newShardedCache(max, 0)
	for i := 0; i < 10*max; i++ {
		c.add(fmt.Sprintf("key-%d", i), i)
	}
	if n := c.len(); n < max/2 || n > max+cacheShards {
		t.Errorf("population %d far from capacity %d", n, max)
	}
	c.add("hot", "v")
	if v, ok := c.get("hot"); !ok || v != "v" {
		t.Errorf("hot entry lost: %v %v", v, ok)
	}
	shards := map[uint32]bool{}
	for i := 0; i < 64; i++ {
		shards[shardOf(fmt.Sprintf("key-%d", i))] = true
	}
	if len(shards) < cacheShards/2 {
		t.Errorf("64 keys landed on only %d shards", len(shards))
	}
}

// TestFlightFollowerSurvivesLeaderCancel: a waiter must not inherit the
// leader's context cancellation — it retries as the new leader.
func TestFlightFollowerSurvivesLeaderCancel(t *testing.T) {
	g := newShardedFlight()
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderStarted := make(chan struct{})
	leaderRelease := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err, _ := g.do(leaderCtx, "k", func() (any, error) {
			close(leaderStarted)
			<-leaderRelease
			return nil, leaderCtx.Err() // leader dies of its own cancellation
		})
		if err == nil {
			t.Error("leader expected its own cancellation error")
		}
	}()

	<-leaderStarted
	followerDone := make(chan struct{})
	var followerVal any
	var followerErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		followerVal, followerErr, _ = g.do(context.Background(), "k", func() (any, error) {
			return "recomputed", nil
		})
		close(followerDone)
	}()

	// Let the follower enqueue behind the leader, then kill the leader.
	time.Sleep(20 * time.Millisecond)
	cancelLeader()
	close(leaderRelease)

	select {
	case <-followerDone:
	case <-time.After(5 * time.Second):
		t.Fatal("follower never completed")
	}
	wg.Wait()
	if followerErr != nil {
		t.Fatalf("follower inherited leader's fate: %v", followerErr)
	}
	if followerVal != "recomputed" {
		t.Fatalf("follower value = %v", followerVal)
	}
}

// TestSimulateHonorsCancellation: the engine threads ctx into the event
// loop, so a canceled caller aborts its run (no orphaned background work),
// frees the pool slot, and a later retry computes fresh and succeeds.
func TestSimulateHonorsCancellation(t *testing.T) {
	s := New(Options{Workers: 1})
	// Heavy enough (hundreds of ms, many engine poll intervals) that the
	// 1 ms deadline reliably fires mid-run.
	req := SimulateRequest{
		Spec: cluster.Default(2), Jobs: []workload.Job{testJob(t, 20*1024, 4)},
		Seed: 1, Reps: 25,
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := s.Simulate(ctx, req); err == nil {
		t.Fatal("expected cancellation error")
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Errorf("canceled simulation returned after %v", d)
	}
	m := s.Metrics()
	if m.InFlightSims != 0 {
		t.Errorf("in-flight sims after cancellation: %d", m.InFlightSims)
	}
	if m.SimRuns != 0 {
		t.Errorf("aborted simulation counted as completed (%d runs)", m.SimRuns)
	}
	// The pool slot was released; a small fresh run completes.
	small := SimulateRequest{
		Spec: cluster.Default(2), Jobs: []workload.Job{testJob(t, 256, 1)},
		Seed: 1, Reps: 1,
	}
	if _, err := s.Simulate(context.Background(), small); err != nil {
		t.Fatalf("post-cancellation simulate failed: %v", err)
	}
	if s.Metrics().SimRuns != 1 {
		t.Errorf("sim runs = %d, want 1", s.Metrics().SimRuns)
	}
}

// TestRequestLimits: quantities that scale work or memory are bounded.
func TestRequestLimits(t *testing.T) {
	s := New(Options{})
	job := testJob(t, 512, 2)
	spec := cluster.Default(2)

	if _, err := s.Predict(context.Background(), PredictRequest{
		Spec: spec, Job: job, NumJobs: MaxNumJobs + 1,
	}); err == nil {
		t.Error("oversized NumJobs accepted by Predict")
	}
	if _, err := s.Simulate(context.Background(), SimulateRequest{
		Spec: spec, Jobs: []workload.Job{job}, Reps: MaxSimReps + 1,
	}); err == nil {
		t.Error("oversized Reps accepted by Simulate")
	}
	if _, err := s.Simulate(context.Background(), SimulateRequest{
		Spec: spec, Jobs: make([]workload.Job, MaxSimJobs+1),
	}); err == nil {
		t.Error("oversized job list accepted by Simulate")
	}
	if _, err := s.Compare(context.Background(), CompareRequest{
		Spec: spec, Job: job, NumJobs: MaxNumJobs + 1,
	}); err == nil {
		t.Error("oversized NumJobs accepted by Compare")
	}
	if _, err := s.Plan(context.Background(), PlanRequest{
		Spec: spec, Job: job, Reps: MaxSimReps + 1,
	}); err == nil {
		t.Error("oversized Reps accepted by Plan")
	}
}

// TestPredictCacheIgnoresJobID: the analytic model never reads Job.ID, so
// predictions for the same workload shape share one cache entry regardless
// of caller-assigned IDs.
func TestPredictCacheIgnoresJobID(t *testing.T) {
	s := New(Options{Workers: 2})
	req := PredictRequest{Spec: cluster.Default(2), Job: testJob(t, 512, 2)}
	if _, err := s.Predict(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	req.Job.ID = 4711
	resp, err := s.Predict(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Cached {
		t.Error("different Job.ID defeated the predict cache")
	}
}

// TestCompareReusesSimulateCache: Compare's inner simulation shares the
// cache with direct Simulate calls of the same configuration.
func TestCompareReusesSimulateCache(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed in -short mode")
	}
	s := New(Options{Workers: 2})
	job := testJob(t, 256, 1)
	if _, err := s.Simulate(context.Background(), SimulateRequest{
		Spec: cluster.Default(2), Jobs: []workload.Job{job}, Seed: 5, Reps: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if runs := s.Metrics().SimRuns; runs != 1 {
		t.Fatalf("sim runs = %d after Simulate", runs)
	}
	if _, err := s.Compare(context.Background(), CompareRequest{
		Spec: cluster.Default(2), Job: job, NumJobs: 1, Seed: 5, Reps: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if runs := s.Metrics().SimRuns; runs != 1 {
		t.Errorf("Compare re-ran the simulation (%d runs)", runs)
	}
}

// TestValidationErrorsAreTyped: validation failures are distinguishable
// from engine failures so the HTTP layer can map them to 400 vs 500.
func TestValidationErrorsAreTyped(t *testing.T) {
	s := New(Options{})
	_, err := s.Predict(context.Background(), PredictRequest{Spec: cluster.Default(2)})
	if !IsInvalidRequest(err) {
		t.Errorf("validation error not typed: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = s.Predict(ctx, PredictRequest{Spec: cluster.Default(2), Job: testJob(t, 512, 2)})
	if IsInvalidRequest(err) {
		t.Errorf("context error misclassified as invalid request: %v", err)
	}
}
