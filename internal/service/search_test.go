package service

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"hadoop2perf/internal/cluster"
	"hadoop2perf/internal/core"
	"hadoop2perf/internal/workload"
)

// syntheticEval adapts a response-time curve to an axisEval, counting calls
// (atomically: the exhaustive fallback evaluates concurrently).
type syntheticEval struct {
	rt    []float64
	calls atomic.Int64
}

func (s *syntheticEval) eval(i int) (float64, bool, error) {
	s.calls.Add(1)
	return s.rt[i], false, nil
}

// nodeWeights is the unpriced per-point cost weight: Cost == NodeSeconds.
func nodeWeights(nodes []int) []float64 {
	w := make([]float64, len(nodes))
	for i, n := range nodes {
		w[i] = float64(n)
	}
	return w
}

// bruteBest computes the grid answer for one synthetic axis: the cheapest
// feasible (cost, rt), or none.
func bruteBest(nodes []int, rt []float64, deadline float64) (cost, best float64, ok bool) {
	cost, best = math.Inf(1), math.Inf(1)
	for i, n := range nodes {
		if rt[i] > deadline {
			continue
		}
		c := float64(n) * rt[i]
		if c < cost || (c == cost && rt[i] < best) {
			cost, best, ok = c, rt[i], true
		}
	}
	return cost, best, ok
}

// searchBest extracts the cheapest feasible candidate from a search outcome.
func searchBest(out axisOutcome, deadline float64) (cost, rt float64, ok bool) {
	cost, rt = math.Inf(1), math.Inf(1)
	for _, c := range out.cands {
		if c.Err != "" || c.ResponseTime > deadline {
			continue
		}
		cc := float64(c.Nodes) * c.ResponseTime
		if cc < cost || (cc == cost && c.ResponseTime < rt) {
			cost, rt, ok = cc, c.ResponseTime, true
		}
	}
	return cost, rt, ok
}

func TestSearchNodeAxisMonotoneCurves(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 6 + rng.Intn(30)
		nodes := make([]int, n)
		rt := make([]float64, n)
		cur := 2 + rng.Intn(3)
		// Amdahl-shaped response: a serial floor plus perfectly parallel
		// work, the shape real predictions take (strictly decreasing,
		// flattening toward the floor).
		floor := 5 + 40*rng.Float64()
		work := 200 + 2000*rng.Float64()
		for i := 0; i < n; i++ {
			nodes[i] = cur
			rt[i] = floor + work/float64(cur)
			cur += 1 + rng.Intn(4)
		}
		// Deadlines spanning infeasible-everywhere to feasible-everywhere.
		for _, d := range []float64{rt[0] * 1.1, (rt[0] + rt[n-1]) / 2, rt[n-1] * 1.05, rt[n-1] * 0.5} {
			se := &syntheticEval{rt: rt}
			out := searchNodeAxis(nodes, nodeWeights(nodes), d, se.eval, se.eval, nil)
			if !out.exact {
				t.Fatalf("trial %d: fell back on a monotone curve", trial)
			}
			wc, wr, wok := bruteBest(nodes, rt, d)
			gc, gr, gok := searchBest(out, d)
			if wok != gok || (wok && (wc != gc || wr != gr)) {
				t.Fatalf("trial %d deadline %v: search best (%v,%v,%v) != grid best (%v,%v,%v)",
					trial, d, gc, gr, gok, wc, wr, wok)
			}
			if len(out.cands)+out.pruned != n {
				t.Fatalf("trial %d: %d candidates + %d pruned != %d axis points",
					trial, len(out.cands), out.pruned, n)
			}
			// The whole point: far fewer evaluations than the axis length on
			// feasible axes of meaningful size.
			if wok && n >= 16 && int(se.calls.Load()) >= n {
				t.Errorf("trial %d (n=%d): search used %d evaluations", trial, n, se.calls.Load())
			}
		}
	}
}

// syntheticBatch adapts a syntheticEval to an axisBatchEval, counting
// batched calls and points.
type syntheticBatch struct {
	se     *syntheticEval
	calls  atomic.Int64
	points atomic.Int64
}

func (b *syntheticBatch) eval(idxs []int) ([]float64, []bool, error) {
	b.calls.Add(1)
	b.points.Add(int64(len(idxs)))
	rts := make([]float64, len(idxs))
	cached := make([]bool, len(idxs))
	for j, i := range idxs {
		rts[j], cached[j], _ = b.se.eval(i)
	}
	return rts, cached, nil
}

// With a batch evaluator, the bisection must finish narrow brackets in a
// single batched call — at most one per axis — while returning the same
// grid-exact best as the point-by-point walk.
func TestSearchNodeAxisBatchBand(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		n := 6 + rng.Intn(30)
		nodes := make([]int, n)
		rt := make([]float64, n)
		cur := 2 + rng.Intn(3)
		floor := 5 + 40*rng.Float64()
		work := 200 + 2000*rng.Float64()
		for i := 0; i < n; i++ {
			nodes[i] = cur
			rt[i] = floor + work/float64(cur)
			cur += 1 + rng.Intn(4)
		}
		for _, d := range []float64{rt[0] * 1.1, (rt[0] + rt[n-1]) / 2, rt[n-1] * 1.05} {
			se := &syntheticEval{rt: rt}
			sb := &syntheticBatch{se: se}
			out := searchNodeAxis(nodes, nodeWeights(nodes), d, se.eval, se.eval, sb.eval)
			if !out.exact {
				t.Fatalf("trial %d: fell back on a monotone curve", trial)
			}
			if c := sb.calls.Load(); c > 1 {
				t.Fatalf("trial %d: %d batched calls, want at most one", trial, c)
			}
			wc, wr, wok := bruteBest(nodes, rt, d)
			gc, gr, gok := searchBest(out, d)
			if wok != gok || (wok && (wc != gc || wr != gr)) {
				t.Fatalf("trial %d deadline %v: search best (%v,%v,%v) != grid best (%v,%v,%v)",
					trial, d, gc, gr, gok, wc, wr, wok)
			}
			if len(out.cands)+out.pruned != n {
				t.Fatalf("trial %d: %d candidates + %d pruned != %d axis points",
					trial, len(out.cands), out.pruned, n)
			}
		}
	}
}

func TestSearchNodeAxisDetectsViolations(t *testing.T) {
	// An alternating two-regime curve (the shape multi-reducer predictions
	// take): the verifier must observe an inversion and fall back, making
	// the result grid-identical.
	nodes := []int{2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13}
	rt := make([]float64, len(nodes))
	for i, n := range nodes {
		base := 300 / float64(n)
		if n%2 == 0 {
			base *= 1.4 // slow regime on even node counts
		}
		rt[i] = base
	}
	for _, d := range []float64{40, 55, 70, 100} {
		se := &syntheticEval{rt: rt}
		out := searchNodeAxis(nodes, nodeWeights(nodes), d, se.eval, se.eval, nil)
		wc, wr, wok := bruteBest(nodes, rt, d)
		gc, gr, gok := searchBest(out, d)
		if wok != gok || (wok && (wc != gc || wr != gr)) {
			t.Errorf("deadline %v: search best (%v,%v,%v) != grid best (%v,%v,%v) exact=%v",
				d, gc, gr, gok, wc, wr, wok, out.exact)
		}
	}
}

func TestSearchNodeAxisFrontierGuard(t *testing.T) {
	// A single feasible dip immediately below the monotone frontier: the
	// frontier-1 guard must catch it and fall back to exhaustive, keeping
	// the cheaper island in play.
	nodes := []int{2, 4, 6, 8, 10, 12, 14, 16}
	rt := []float64{90, 80, 70, 48, 52, 49, 47, 46}
	const deadline = 50.0
	// Frontier by monotone bisection would land at index 4..; index 3 dips
	// under the deadline (48 <= 50) right below an infeasible point.
	se := &syntheticEval{rt: rt}
	out := searchNodeAxis(nodes, nodeWeights(nodes), deadline, se.eval, se.eval, nil)
	wc, wr, wok := bruteBest(nodes, rt, deadline)
	gc, gr, gok := searchBest(out, deadline)
	if wok != gok || wc != gc || wr != gr {
		t.Errorf("search best (%v,%v,%v) != grid best (%v,%v,%v) exact=%v",
			gc, gr, gok, wc, wr, wok, out.exact)
	}
}

func TestSearchNodeAxisAllInfeasible(t *testing.T) {
	nodes := []int{2, 4, 6, 8, 10, 12}
	rt := []float64{100, 90, 80, 70, 65, 61}
	se := &syntheticEval{rt: rt}
	out := searchNodeAxis(nodes, nodeWeights(nodes), 60, se.eval, se.eval, nil)
	if se.calls.Load() != 2 {
		t.Errorf("infeasible axis used %d evaluations, want 2 (ceiling + midpoint guard)", se.calls.Load())
	}
	if _, _, ok := searchBest(out, 60); ok {
		t.Error("found a feasible candidate on an infeasible axis")
	}
	if len(out.cands) != 2 || out.pruned != len(nodes)-2 {
		t.Errorf("cands=%d pruned=%d", len(out.cands), out.pruned)
	}
}

func TestSearchNodeAxisEndSpikeGuard(t *testing.T) {
	// An upward spike at the axis end: rt(max) misses the deadline while the
	// interior is feasible. The midpoint guard must refuse the
	// all-infeasible conclusion and fall back to exhaustive, recovering the
	// feasible interior plan the grid would find.
	nodes := []int{2, 4, 6, 8, 10, 12, 14, 16}
	rt := []float64{90, 80, 70, 60, 55, 52, 50, 75}
	const deadline = 65.0
	se := &syntheticEval{rt: rt}
	out := searchNodeAxis(nodes, nodeWeights(nodes), deadline, se.eval, se.eval, nil)
	wc, wr, wok := bruteBest(nodes, rt, deadline)
	gc, gr, gok := searchBest(out, deadline)
	if wok != gok || wc != gc || wr != gr {
		t.Errorf("search best (%v,%v,%v) != grid best (%v,%v,%v) exact=%v",
			gc, gr, gok, wc, wr, wok, out.exact)
	}
}

// planProblem is one randomized planning problem of the property test.
type planProblem struct {
	req PlanRequest
}

// randomPlanProblem draws a planning problem over the calibrated cluster:
// random job shape, a random sorted node axis, and optional block-size and
// reducer axes. Multi-reducer shapes exercise the non-monotone fallback.
func randomPlanProblem(t *testing.T, rng *rand.Rand) planProblem {
	t.Helper()
	profiles := []workload.Profile{workload.WordCount(), workload.Grep(), workload.TeraSort()}
	inputMB := float64(512 * (1 + rng.Intn(6)))
	reduces := []int{1, 2, 4}[rng.Intn(3)]
	job, err := workload.NewJob(0, inputMB, 128, reduces, profiles[rng.Intn(len(profiles))])
	if err != nil {
		t.Fatal(err)
	}
	// Sorted distinct node axis of 6..14 points in [2, 32].
	axisLen := minSearchAxis + rng.Intn(9)
	seen := map[int]bool{}
	var nodes []int
	for len(nodes) < axisLen {
		n := 2 + rng.Intn(31)
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
	}
	req := PlanRequest{
		Spec:    cluster.Default(4),
		Job:     job,
		NumJobs: 1 + rng.Intn(3),
		Nodes:   nodes,
	}
	if rng.Intn(2) == 0 {
		req.BlockSizesMB = []float64{64, 128}
	}
	if rng.Intn(3) == 0 {
		req.Reducers = []int{1, 2}
	}
	return planProblem{req: req}
}

// TestPlanSearchMatchesGridProperty is the correctness contract of the
// tentpole: on randomized planning problems, the bisection + pruning search
// returns the same best plan (same cost, response time and feasibility) as
// the exhaustive grid. Deadlines are drawn from the grid's own response
// range so every regime — infeasible, frontier, all-feasible — is hit.
func TestPlanSearchMatchesGridProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	trials := 12
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		prob := randomPlanProblem(t, rng)

		// Grid reference, fresh service.
		gridReq := prob.req
		gridReq.Exhaustive = true
		gridReq.DeadlineSec = 1 // any positive value; replaced below
		gridSvc := New(Options{Workers: 4})
		ref, err := gridSvc.Plan(context.Background(), gridReq)
		if err != nil {
			t.Fatal(err)
		}
		if ref.Strategy != StrategyGrid {
			t.Fatalf("exhaustive plan used strategy %q", ref.Strategy)
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, c := range ref.Candidates {
			if c.Err != "" {
				t.Fatalf("trial %d: grid candidate failed: %s", trial, c.Err)
			}
			lo = math.Min(lo, c.ResponseTime)
			hi = math.Max(hi, c.ResponseTime)
		}

		for _, q := range []float64{-0.05, 0.1, 0.35, 0.6, 0.9, 1.05} {
			deadline := lo + q*(hi-lo)
			if deadline <= 0 {
				deadline = lo * 0.9
			}
			gridReq.DeadlineSec = deadline
			want, err := gridSvc.Plan(context.Background(), gridReq)
			if err != nil {
				t.Fatal(err)
			}

			searchReq := prob.req
			searchReq.DeadlineSec = deadline
			searchSvc := New(Options{Workers: 4})
			got, err := searchSvc.Plan(context.Background(), searchReq)
			if err != nil {
				t.Fatal(err)
			}
			if got.Strategy != StrategySearch {
				t.Fatalf("trial %d: deadline plan used strategy %q", trial, got.Strategy)
			}

			if (want.Best == nil) != (got.Best == nil) {
				t.Errorf("trial %d deadline %.2f: grid best %+v, search best %+v",
					trial, deadline, want.Best, got.Best)
				continue
			}
			if want.Best == nil {
				continue
			}
			// Same objective value: cost, speed, feasibility — within the
			// warm-start tolerance: the search threads warm-start chains
			// through its axis walks, so its predictions may differ from the
			// grid's cold ones by up to 1e-6 relative (the core contract;
			// observed deviations are ~1e-13). Identity may additionally
			// differ on exact cost+response ties across combos.
			const searchTol = 1e-6
			relDiff := func(a, b float64) float64 {
				if b == 0 {
					return math.Abs(a - b)
				}
				return math.Abs(a-b) / math.Abs(b)
			}
			if relDiff(got.Best.NodeSeconds, want.Best.NodeSeconds) > searchTol ||
				relDiff(got.Best.ResponseTime, want.Best.ResponseTime) > searchTol ||
				!got.Best.Feasible {
				t.Errorf("trial %d deadline %.2f:\n  grid   best %+v\n  search best %+v",
					trial, deadline, *want.Best, *got.Best)
			}
			if len(got.Candidates)+got.Pruned != len(want.Candidates) {
				t.Errorf("trial %d: search candidates %d + pruned %d != grid %d",
					trial, len(got.Candidates), got.Pruned, len(want.Candidates))
			}
		}
	}
}

// TestPlanSearchSavesPredictions pins the headline win: a representative
// deadline query over a wide node axis must run at least 2x fewer model
// evaluations than the grid.
func TestPlanSearchSavesPredictions(t *testing.T) {
	job, err := workload.NewJob(0, 1024, 128, 1, workload.WordCount())
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]int, 32)
	for i := range nodes {
		nodes[i] = 2 + i
	}
	base := PlanRequest{Spec: cluster.Default(4), Job: job, Nodes: nodes}

	// Find a mid-range deadline from an exhaustive pass.
	gridSvc := New(Options{Workers: 4})
	ex := base
	ex.Exhaustive = true
	ex.DeadlineSec = 1
	ref, err := gridSvc.Plan(context.Background(), ex)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, c := range ref.Candidates {
		lo, hi = math.Min(lo, c.ResponseTime), math.Max(hi, c.ResponseTime)
	}
	deadline := (lo + hi) / 2
	gridMisses := gridSvc.Metrics().CacheMisses

	searchSvc := New(Options{Workers: 4})
	sr := base
	sr.DeadlineSec = deadline
	resp, err := searchSvc.Plan(context.Background(), sr)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Strategy != StrategySearch || resp.Best == nil {
		t.Fatalf("strategy=%q best=%v", resp.Strategy, resp.Best)
	}
	searchMisses := searchSvc.Metrics().CacheMisses
	t.Logf("axis=%d: grid %d model runs, search %d (pruned %d)", len(nodes), gridMisses, searchMisses, resp.Pruned)
	if searchMisses*2 > gridMisses {
		t.Errorf("search ran %d model evaluations, want <= half of grid's %d", searchMisses, gridMisses)
	}
}

func TestPlanExhaustiveFlagForcesGrid(t *testing.T) {
	job, err := workload.NewJob(0, 512, 128, 1, workload.WordCount())
	if err != nil {
		t.Fatal(err)
	}
	req := PlanRequest{
		Spec: cluster.Default(4), Job: job,
		Nodes:       []int{2, 4, 6, 8, 10, 12},
		DeadlineSec: 1e9,
		Exhaustive:  true,
	}
	s := New(Options{Workers: 4})
	resp, err := s.Plan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Strategy != StrategyGrid || resp.Evaluated != 6 || resp.Pruned != 0 {
		t.Errorf("strategy=%q evaluated=%d pruned=%d", resp.Strategy, resp.Evaluated, resp.Pruned)
	}
}

// predictEvalBatch is the service's batched miss path: per-request cache
// checks, one core batch call for the misses, per-miss counter accounting.
// The inner/outer iteration counters must accrue exactly what the
// equivalent sequential chain walk accrues (the regression guard for
// mrserved_model_iterations_total{loop=inner} under batching), and a
// second identical batch must be all cache hits.
func TestPredictEvalBatchCountersMatchSequential(t *testing.T) {
	job, err := workload.NewJob(0, 2*1024, 128, 1, workload.WordCount())
	if err != nil {
		t.Fatal(err)
	}
	mkReqs := func() []PredictRequest {
		var reqs []PredictRequest
		for _, n := range []int{4, 6, 8, 10, 12} {
			reqs = append(reqs, PredictRequest{Spec: cluster.Default(n), Job: job, NumJobs: 3})
		}
		return reqs
	}

	// Sequential reference: the same requests through predictEval on one
	// chain (the planner's pre-batching walk).
	seqSvc := New(Options{Workers: 4})
	seqChain := seqSvc.predictors.Get().(*core.Predictor)
	var seqResp []PredictResponse
	for _, r := range mkReqs() {
		pr, err := seqSvc.predictEval(context.Background(), r, seqChain)
		if err != nil {
			t.Fatal(err)
		}
		seqResp = append(seqResp, pr)
	}
	seqSvc.predictors.Put(seqChain)
	seqM := seqSvc.Metrics()

	batchSvc := New(Options{Workers: 4})
	chain := batchSvc.predictors.Get().(*core.Predictor)
	got, err := batchSvc.predictEvalBatch(context.Background(), mkReqs(), chain)
	if err != nil {
		t.Fatal(err)
	}
	batchSvc.predictors.Put(chain)
	m := batchSvc.Metrics()

	if m.CacheMisses != int64(len(got)) || m.CacheHits != 0 {
		t.Errorf("batch: misses=%d hits=%d, want %d/0", m.CacheMisses, m.CacheHits, len(got))
	}
	var wantInner, wantOuter int64
	for i, pr := range got {
		if pr.Cached {
			t.Errorf("req %d: fresh batch reported cached", i)
		}
		if pr.Prediction.ResponseTime != seqResp[i].Prediction.ResponseTime {
			t.Errorf("req %d: batch %v != sequential %v",
				i, pr.Prediction.ResponseTime, seqResp[i].Prediction.ResponseTime)
		}
		wantInner += int64(pr.Prediction.InnerIterations)
		wantOuter += int64(pr.Prediction.Iterations)
	}
	if m.ModelInnerIterations != wantInner || m.ModelOuterIterations != wantOuter {
		t.Errorf("batch counters inner=%d outer=%d, want %d/%d (sum of per-prediction counts)",
			m.ModelInnerIterations, m.ModelOuterIterations, wantInner, wantOuter)
	}
	if m.ModelInnerIterations != seqM.ModelInnerIterations || m.ModelOuterIterations != seqM.ModelOuterIterations {
		t.Errorf("batch accrued inner=%d outer=%d, sequential chain accrued %d/%d",
			m.ModelInnerIterations, m.ModelOuterIterations, seqM.ModelInnerIterations, seqM.ModelOuterIterations)
	}

	// Replay: every entry must come from the cache with counters frozen.
	chain2 := batchSvc.predictors.Get().(*core.Predictor)
	again, err := batchSvc.predictEvalBatch(context.Background(), mkReqs(), chain2)
	if err != nil {
		t.Fatal(err)
	}
	batchSvc.predictors.Put(chain2)
	m2 := batchSvc.Metrics()
	for i, pr := range again {
		if !pr.Cached {
			t.Errorf("replay req %d not served from cache", i)
		}
		if pr.Prediction.ResponseTime != got[i].Prediction.ResponseTime {
			t.Errorf("replay req %d: %v != %v", i, pr.Prediction.ResponseTime, got[i].Prediction.ResponseTime)
		}
	}
	if m2.ModelInnerIterations != m.ModelInnerIterations || m2.CacheMisses != m.CacheMisses {
		t.Errorf("replay moved counters: inner %d→%d misses %d→%d",
			m.ModelInnerIterations, m2.ModelInnerIterations, m.CacheMisses, m2.CacheMisses)
	}
}

// Concurrent deadline plans over overlapping axes hammer the pooled
// warm chains, the batched bisection band and the sharded cache from many
// goroutines at once — the -race CI step runs this to hunt data races in
// the batch path.
func TestPlanSearchConcurrent(t *testing.T) {
	job, err := workload.NewJob(0, 1024, 128, 1, workload.WordCount())
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]int, 16)
	for i := range nodes {
		nodes[i] = 2 + i
	}
	s := New(Options{Workers: 4})
	var wg sync.WaitGroup
	errs := make([]error, 8)
	resps := make([]PlanResponse, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			req := PlanRequest{
				Spec: cluster.Default(4), Job: job, NumJobs: 1 + g%3,
				Nodes:       nodes,
				DeadlineSec: 200 + 40*float64(g%4),
			}
			resps[g], errs[g] = s.Plan(context.Background(), req)
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
		if resps[g].Strategy != StrategySearch {
			t.Errorf("goroutine %d: strategy %q", g, resps[g].Strategy)
		}
		for _, c := range resps[g].Candidates {
			if c.Err != "" {
				t.Errorf("goroutine %d: candidate failed: %s", g, c.Err)
			}
		}
	}
}
