package service

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"hadoop2perf/internal/cluster"
	"hadoop2perf/internal/mrsim"
	"hadoop2perf/internal/timeline"
	"hadoop2perf/internal/trace"
	"hadoop2perf/internal/workload"
)

// simTrace runs one simulation and returns its result, the raw material a
// calibration ingests.
func simTrace(t *testing.T, inputMB float64, seed int64) mrsim.Result {
	t.Helper()
	res, err := mrsim.Run(mrsim.Config{
		Spec: cluster.Default(2), Jobs: []workload.Job{testJob(t, inputMB, 2)}, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// calibrate stores a profile fitted from a fresh simulation under name.
func calibrate(t *testing.T, s *Service, name string, inputMB float64, seed int64) CalibrateResponse {
	t.Helper()
	resp, err := s.Calibrate(context.Background(), CalibrateRequest{Name: name, Result: simTrace(t, inputMB, seed)})
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestCalibrateStoresVersionedProfile(t *testing.T) {
	s := New(Options{Workers: 2})
	r1 := calibrate(t, s, "wc", 512, 1)
	if r1.Profile.Name != "wc" || r1.Profile.Version != 1 || r1.Profile.Hash == "" {
		t.Fatalf("profile = %+v", r1.Profile)
	}
	if r1.Profile.Jobs != 1 || r1.Profile.Samples == 0 {
		t.Errorf("provenance = %+v", r1.Profile)
	}
	for _, cls := range []timeline.Class{timeline.ClassMap, timeline.ClassShuffleSort, timeline.ClassMerge} {
		if fc, ok := r1.Classes[cls]; !ok || fc.Stats.MeanResponse <= 0 {
			t.Errorf("class %s: %+v (present=%v)", cls, r1.Classes[cls], ok)
		}
	}

	// Recalibrating the same name from a different trace bumps the version
	// and changes the content hash.
	r2 := calibrate(t, s, "wc", 2048, 2)
	if r2.Profile.Version != 2 {
		t.Errorf("version = %d", r2.Profile.Version)
	}
	if r2.Profile.Hash == r1.Profile.Hash {
		t.Error("content hash unchanged across different traces")
	}

	// The registry lists the live snapshot only.
	list := s.Profiles()
	if len(list) != 1 || list[0].Version != 2 {
		t.Errorf("profiles = %+v", list)
	}
	if m := s.Metrics(); m.CalibrateRequests != 2 || m.ProfilesActive != 1 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestCalibrateValidation(t *testing.T) {
	s := New(Options{Workers: 2})
	good := simTrace(t, 256, 1)
	cases := []struct {
		name string
		req  CalibrateRequest
	}{
		{"empty name", CalibrateRequest{Result: good}},
		{"name with space", CalibrateRequest{Name: "prod wc", Result: good}},
		{"name too long", CalibrateRequest{Name: strings.Repeat("x", MaxProfileNameLen+1), Result: good}},
		{"negative ttl", CalibrateRequest{Name: "wc", Result: good, TTL: -time.Second}},
		{"empty trace", CalibrateRequest{Name: "wc"}},
		{"bad fit options", CalibrateRequest{Name: "wc", Result: good, Fit: trace.FitOptions{TrimFraction: 0.9}}},
	}
	for _, tc := range cases {
		_, err := s.Calibrate(context.Background(), tc.req)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !IsInvalidRequest(err) {
			t.Errorf("%s: error not typed as invalid: %v", tc.name, err)
		}
	}
}

func TestPredictUnknownProfileRejected(t *testing.T) {
	s := New(Options{Workers: 2})
	_, err := s.Predict(context.Background(), PredictRequest{
		Spec: cluster.Default(2), Job: testJob(t, 512, 2), Profile: "nope",
	})
	if err == nil || !IsInvalidRequest(err) {
		t.Fatalf("unknown profile: err = %v", err)
	}
}

// TestCalibratedPredictionDiffers pins the tentpole's point: the trace-seeded
// initialization (§4.2.1, first approach) converges to a different fixed
// point than the Herodotou-style static initialization on the same spec.
func TestCalibratedPredictionDiffers(t *testing.T) {
	s := New(Options{Workers: 2})
	calibrate(t, s, "wc", 512, 1)
	ctx := context.Background()
	base := PredictRequest{Spec: cluster.Default(2), Job: testJob(t, 512, 2)}

	plain, err := s.Predict(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	withProf := base
	withProf.Profile = "wc"
	cal, err := s.Predict(ctx, withProf)
	if err != nil {
		t.Fatal(err)
	}
	if cal.Prediction.ResponseTime == plain.Prediction.ResponseTime {
		t.Error("calibrated prediction identical to static-initialized one")
	}
	if cal.Profile != "wc" || cal.ProfileVersion != 1 {
		t.Errorf("profile metadata = %q v%d", cal.Profile, cal.ProfileVersion)
	}
	if plain.Profile != "" || plain.ProfileVersion != 0 {
		t.Errorf("profile-less metadata = %q v%d", plain.Profile, plain.ProfileVersion)
	}
}

// TestRecalibrationInvalidatesCache is the tentpole's regression test:
// calibrating a new profile under a used name makes every cached prediction
// that referenced it unreachable — the next predict recomputes against the
// new content instead of serving the stale entry.
func TestRecalibrationInvalidatesCache(t *testing.T) {
	s := New(Options{Workers: 2})
	calibrate(t, s, "wc", 512, 1)
	ctx := context.Background()
	req := PredictRequest{Spec: cluster.Default(2), Job: testJob(t, 512, 2), Profile: "wc"}

	first, err := s.Predict(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first profile-backed predict served from cache")
	}
	warm, err := s.Predict(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Fatal("repeat predict not cached")
	}

	// Same name, different trace: the content hash changes, so the cached
	// entry under the old hash can never be served for this name again.
	calibrate(t, s, "wc", 4096, 9)
	after, err := s.Predict(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if after.Cached {
		t.Error("predict after recalibration served a stale cache entry")
	}
	if after.ProfileVersion != 2 {
		t.Errorf("profile version = %d", after.ProfileVersion)
	}
	if after.Prediction.ResponseTime == first.Prediction.ResponseTime {
		t.Error("recalibration from a 8x larger trace left the prediction unchanged")
	}

	// Recalibrating from an identical trace reproduces the original content
	// hash, so the original cache entry becomes reachable again — content
	// addressing, not name-version addressing.
	calibrate(t, s, "wc", 512, 1)
	back, err := s.Predict(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Cached {
		t.Error("identical recalibration did not restore cache reachability")
	}
	if back.ProfileVersion != 3 {
		t.Errorf("metadata must reflect the live registry version, got %d", back.ProfileVersion)
	}
}

func TestProfileTTLExpiry(t *testing.T) {
	s := New(Options{Workers: 2, ProfileTTL: time.Minute})
	now := time.Unix(1000, 0)
	s.profiles.now = func() time.Time { return now }

	calibrate(t, s, "wc", 512, 1)
	req := PredictRequest{Spec: cluster.Default(2), Job: testJob(t, 512, 2), Profile: "wc"}
	if _, err := s.Predict(context.Background(), req); err != nil {
		t.Fatal(err)
	}

	now = now.Add(2 * time.Minute)
	_, err := s.Predict(context.Background(), req)
	if err == nil || !IsInvalidRequest(err) || !strings.Contains(err.Error(), "expired") {
		t.Fatalf("expired profile: err = %v", err)
	}
	if len(s.Profiles()) != 0 {
		t.Error("expired profile still listed")
	}
	if m := s.Metrics(); m.ProfilesActive != 0 {
		t.Errorf("ProfilesActive = %d", m.ProfilesActive)
	}

	// Recalibration revives the name (and purges the dead entry).
	calibrate(t, s, "wc", 512, 1)
	if _, err := s.Predict(context.Background(), req); err != nil {
		t.Fatal(err)
	}
}

func TestProfileRegistryBound(t *testing.T) {
	s := New(Options{Workers: 2, MaxProfiles: 2})
	res := simTrace(t, 256, 1)
	for i := 0; i < 2; i++ {
		if _, err := s.Calibrate(context.Background(), CalibrateRequest{Name: fmt.Sprintf("p%d", i), Result: res}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Calibrate(context.Background(), CalibrateRequest{Name: "p2", Result: res}); err == nil {
		t.Fatal("registry accepted a profile beyond MaxProfiles")
	}
	// Replacing an existing name is always allowed at capacity.
	if _, err := s.Calibrate(context.Background(), CalibrateRequest{Name: "p0", Result: res}); err != nil {
		t.Fatalf("recalibration at capacity rejected: %v", err)
	}
}

// TestPlanUsesProfileSnapshot: a plan resolves its profile once; its
// candidates ride one snapshot and the response stays internally consistent.
func TestPlanWithProfile(t *testing.T) {
	s := New(Options{Workers: 4})
	calibrate(t, s, "wc", 512, 1)
	ctx := context.Background()
	plan, err := s.Plan(ctx, PlanRequest{
		Spec: cluster.Default(4), Job: testJob(t, 1024, 1),
		Nodes: []int{2, 4, 6}, Profile: "wc",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Candidates) != 3 || plan.Best == nil {
		t.Fatalf("plan = %+v", plan)
	}

	// The same grid without the profile must differ: profile seeding reaches
	// every candidate, not just the template.
	plain, err := s.Plan(ctx, PlanRequest{
		Spec: cluster.Default(4), Job: testJob(t, 1024, 1), Nodes: []int{2, 4, 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	for i := range plan.Candidates {
		if plan.Candidates[i].ResponseTime != plain.Candidates[i].ResponseTime {
			diff = true
		}
	}
	if !diff {
		t.Error("profile-backed plan identical to static plan on every candidate")
	}

	// Simulator-backed plans reject profile references instead of silently
	// ignoring them.
	_, err = s.Plan(ctx, PlanRequest{
		Spec: cluster.Default(2), Job: testJob(t, 256, 1), UseSimulator: true, Reps: 1, Profile: "wc",
	})
	if err == nil || !IsInvalidRequest(err) {
		t.Errorf("simulator plan with profile: err = %v", err)
	}
}

// TestCompareWithProfile: the model side of a comparison is seeded by the
// profile while the simulated side stays put, and the cache distinguishes
// profile-backed comparisons from plain ones.
func TestCompareWithProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed comparison in -short mode")
	}
	s := New(Options{Workers: 2})
	calibrate(t, s, "wc", 512, 1)
	ctx := context.Background()
	base := CompareRequest{Spec: cluster.Default(2), Job: testJob(t, 512, 2), Seed: 1, Reps: 1}

	plain, err := s.Compare(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	withProf := base
	withProf.Profile = "wc"
	cal, err := s.Compare(ctx, withProf)
	if err != nil {
		t.Fatal(err)
	}
	if cal.Cached {
		t.Error("profile-backed compare aliased the plain compare's cache entry")
	}
	if cal.Simulated != plain.Simulated {
		t.Error("profile changed the simulated side")
	}
	if cal.ForkJoin == plain.ForkJoin {
		t.Error("profile left the model side unchanged")
	}
	if cal.Profile != "wc" || cal.ProfileVersion != 1 {
		t.Errorf("profile metadata = %q v%d", cal.Profile, cal.ProfileVersion)
	}
}

// TestCalibrateWhilePredictingRace hammers the registry from both sides
// under the race detector: predictions referencing a profile while
// calibrations swap it. Every response must carry a version that was
// actually stored and a positive response time.
func TestCalibrateWhilePredictingRace(t *testing.T) {
	s := New(Options{Workers: 4})
	traces := []mrsim.Result{simTrace(t, 256, 1), simTrace(t, 1024, 2)}
	if _, err := s.Calibrate(context.Background(), CalibrateRequest{Name: "hot", Result: traces[0]}); err != nil {
		t.Fatal(err)
	}

	const (
		predictors   = 4
		calibrations = 20
		predictions  = 30
	)
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, predictors*predictions+calibrations)

	var maxVersion int64 = 1
	var mu sync.Mutex
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < calibrations; i++ {
			resp, err := s.Calibrate(ctx, CalibrateRequest{Name: "hot", Result: traces[i%2]})
			if err != nil {
				errs <- err
				return
			}
			mu.Lock()
			if resp.Profile.Version > maxVersion {
				maxVersion = resp.Profile.Version
			}
			mu.Unlock()
		}
	}()
	for p := 0; p < predictors; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < predictions; i++ {
				resp, err := s.Predict(ctx, PredictRequest{
					Spec: cluster.Default(2), Job: testJob(t, float64(256+64*(i%3)), 1+p%2), Profile: "hot",
				})
				if err != nil {
					errs <- fmt.Errorf("predictor %d: %w", p, err)
					return
				}
				if resp.Prediction.ResponseTime <= 0 || resp.ProfileVersion < 1 {
					errs <- fmt.Errorf("predictor %d: rt=%v version=%d", p, resp.Prediction.ResponseTime, resp.ProfileVersion)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if got := s.Profiles(); len(got) != 1 || got[0].Version != maxVersion {
		t.Errorf("final registry = %+v, want single profile at version %d", got, maxVersion)
	}
}
