package service

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"hadoop2perf/internal/obs"
)

// TestRequestIDPropagation: a valid inbound X-Request-ID is adopted — echoed
// on the response header, in the JSON body, and visible end to end.
func TestRequestIDPropagation(t *testing.T) {
	_, ts := newTestServer(t)
	body := `{"cluster":{"nodes":2},"job":{"inputMB":256}}`
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/predict", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(RequestIDHeader, "caller-supplied-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); got != "caller-supplied-42" {
		t.Errorf("response header %s = %q, want the inbound ID", RequestIDHeader, got)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["requestId"] != "caller-supplied-42" {
		t.Errorf("body requestId = %v, want the inbound ID", out["requestId"])
	}
	if rt, _ := out["responseTime"].(float64); rt <= 0 {
		t.Errorf("envelope lost the payload: %v", out)
	}
}

// TestInvalidRequestIDReplaced pins the header-injection defense: an inbound
// X-Request-ID with invalid characters is replaced by a generated ID, never
// echoed back.
func TestInvalidRequestIDReplaced(t *testing.T) {
	_, ts := newTestServer(t)
	for _, bad := range []string{"has space", "quote\"y", strings.Repeat("x", 65)} {
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(RequestIDHeader, bad)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		got := resp.Header.Get(RequestIDHeader)
		resp.Body.Close()
		if got == bad {
			t.Errorf("invalid inbound ID %q echoed back", bad)
		}
		if !obs.ValidRequestID(got) {
			t.Errorf("replacement ID %q is itself invalid", got)
		}
	}
}

// TestErrorResponsesCarryRequestID: 400s (and by the same writeError path
// every error status) carry the request ID in body and header.
func TestErrorResponsesCarryRequestID(t *testing.T) {
	_, ts := newTestServer(t)
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/predict", strings.NewReader(`{"job":{"inputMB":512}}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(RequestIDHeader, "err-req-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["requestId"] != "err-req-1" || out["error"] == "" {
		t.Errorf("error body = %v", out)
	}
}

// TestDebugTimings: ?debug=timings adds the per-stage breakdown to the
// response; without it the block is absent.
func TestDebugTimings(t *testing.T) {
	_, ts := newTestServer(t)
	body := `{"cluster":{"nodes":3},"job":{"inputMB":512,"reduces":2}}`

	status, plain := postJSON(t, ts.URL+"/v1/predict", body)
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if _, present := plain["timings"]; present {
		t.Error("timings present without ?debug=timings")
	}

	status, dbg := postJSON(t, ts.URL+"/v1/predict?debug=timings", body)
	if status != http.StatusOK {
		t.Fatalf("debug status = %d", status)
	}
	timings, _ := dbg["timings"].(map[string]any)
	if timings == nil {
		t.Fatalf("no timings block in %v", dbg)
	}
	stages, _ := timings["stages"].(map[string]any)
	// This repeat request is a cache hit: the lookup stage must be present.
	cl, _ := stages["cache_lookup"].(map[string]any)
	if cl == nil {
		t.Fatalf("cache_lookup stage missing from %v", stages)
	}
	if spans, _ := cl["spans"].(float64); spans < 1 {
		t.Errorf("cache_lookup spans = %v", cl["spans"])
	}
	counts, _ := timings["counts"].(map[string]any)
	if hits, _ := counts["cacheHits"].(float64); hits != 1 {
		t.Errorf("counts = %v, want cacheHits 1", counts)
	}

	// A computed (miss) request exposes the solve stage and model counters.
	miss := `{"cluster":{"nodes":5},"job":{"inputMB":512,"reduces":2}}`
	_, dbg = postJSON(t, ts.URL+"/v1/predict?debug=timings", miss)
	timings, _ = dbg["timings"].(map[string]any)
	stages, _ = timings["stages"].(map[string]any)
	for _, want := range []string{"cache_lookup", "queue_wait", "model_solve"} {
		if _, ok := stages[want]; !ok {
			t.Errorf("stage %s missing from computed request: %v", want, stages)
		}
	}
	counts, _ = timings["counts"].(map[string]any)
	if n, _ := counts["outerIterations"].(float64); n < 1 {
		t.Errorf("outerIterations = %v", counts["outerIterations"])
	}
}

// TestPlanDebugTimings: a deadline plan's debug block carries the
// plan_search span and per-combo evaluation counts.
func TestPlanDebugTimings(t *testing.T) {
	_, ts := newTestServer(t)
	req := `{"cluster":{"nodes":4},"job":{"inputMB":2048,"reduces":1},
		"nodes":[2,3,4,5,6,7,8,9],"deadlineSec":100000}`
	status, body := postJSON(t, ts.URL+"/v1/plan?debug=timings", req)
	if status != http.StatusOK {
		t.Fatalf("status = %d body = %v", status, body)
	}
	timings, _ := body["timings"].(map[string]any)
	stages, _ := timings["stages"].(map[string]any)
	if _, ok := stages["plan_search"]; !ok {
		t.Fatalf("plan_search stage missing: %v", stages)
	}
	counts, _ := timings["counts"].(map[string]any)
	found := false
	for k, v := range counts {
		if strings.HasPrefix(k, "planCombo_") && strings.HasSuffix(k, "_evals") {
			found = true
			if n, _ := v.(float64); n < 1 {
				t.Errorf("combo count %s = %v", k, v)
			}
		}
	}
	if !found {
		t.Errorf("no per-combo eval counts in %v", counts)
	}
}

// TestAccessLog: with an AccessLog configured every request emits one
// structured line carrying the request ID and the trace's counters.
func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	logger, err := obs.NewLogger(&buf, obs.LogFormatJSON, slog.LevelInfo)
	if err != nil {
		t.Fatal(err)
	}
	svc := New(Options{Workers: 2, CacheSize: 8})
	h := NewHandler(svc, ServerConfig{Timeout: 30 * time.Second, AccessLog: logger})

	body := `{"cluster":{"nodes":2},"job":{"inputMB":256}}`
	req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(body))
	req.Header.Set(RequestIDHeader, "logged-req-7")
	req.RemoteAddr = "10.1.1.1:1"
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}

	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("access log %q not one JSON line: %v", buf.String(), err)
	}
	if line["requestId"] != "logged-req-7" {
		t.Errorf("log requestId = %v", line["requestId"])
	}
	if line["path"] != "/v1/predict" || line["status"] != float64(200) {
		t.Errorf("log line = %v", line)
	}
	if n, _ := line["cacheMisses"].(float64); n != 1 {
		t.Errorf("cacheMisses = %v, want 1 on first compute", line["cacheMisses"])
	}
	if n, _ := line["outerIterations"].(float64); n < 1 {
		t.Errorf("outerIterations = %v", line["outerIterations"])
	}

	// A slow request (threshold 0 is defaulted, so force a tiny one) logs at
	// Warn with the stage breakdown.
	buf.Reset()
	h = NewHandler(svc, ServerConfig{
		Timeout: 30 * time.Second, AccessLog: logger, SlowRequestThreshold: time.Nanosecond,
	})
	req = httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(body))
	req.RemoteAddr = "10.1.1.1:1"
	h.ServeHTTP(httptest.NewRecorder(), req)
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatal(err)
	}
	if line["level"] != "WARN" || line["slow"] != true {
		t.Errorf("slow line = %v", line)
	}
	if _, ok := line["stageSeconds"].(map[string]any); !ok {
		t.Errorf("slow line missing stage breakdown: %v", line)
	}
}

// TestRateLimited429Logging: shed load is attributable — the 429 response
// carries the request ID, and the log line names the rejected client key
// with the same ID.
func TestRateLimited429Logging(t *testing.T) {
	var buf bytes.Buffer
	logger, err := obs.NewLogger(&buf, obs.LogFormatJSON, slog.LevelInfo)
	if err != nil {
		t.Fatal(err)
	}
	svc := New(Options{Workers: 1, CacheSize: 4})
	h := NewHandler(svc, ServerConfig{
		Timeout: 30 * time.Second, RateLimit: 0.001, RateBurst: 1, AccessLog: logger,
	})

	do := func(id string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/v1/predict",
			strings.NewReader(`{"cluster":{"nodes":2},"job":{"inputMB":256}}`))
		req.RemoteAddr = "10.7.7.7:1234"
		if id != "" {
			req.Header.Set(RequestIDHeader, id)
		}
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		return w
	}
	do("")                   // consumes the single burst token
	w := do("shed-load-911") // rejected
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("second request code = %d, want 429", w.Code)
	}
	var out map[string]any
	if err := json.NewDecoder(w.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["requestId"] != "shed-load-911" {
		t.Errorf("429 body requestId = %v", out["requestId"])
	}
	if got := w.Header().Get(RequestIDHeader); got != "shed-load-911" {
		t.Errorf("429 header requestId = %q", got)
	}

	var rateLine map[string]any
	for _, raw := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var line map[string]any
		if err := json.Unmarshal([]byte(raw), &line); err != nil {
			t.Fatalf("log line %q: %v", raw, err)
		}
		if line["msg"] == "rate limited" {
			rateLine = line
		}
	}
	if rateLine == nil {
		t.Fatalf("no rate-limited log line in %q", buf.String())
	}
	if rateLine["requestId"] != "shed-load-911" {
		t.Errorf("rate-limited line requestId = %v", rateLine["requestId"])
	}
	if rateLine["client"] != "10.7.7.7" {
		t.Errorf("rate-limited line client = %v, want the rejected client key", rateLine["client"])
	}
}

// TestMetricsHistogramExposition: both duration families ride the
// Prometheus text exposition with cumulative le buckets, +Inf, _sum and
// _count per series.
func TestMetricsHistogramExposition(t *testing.T) {
	_, ts := newTestServer(t)
	if status, _ := postJSON(t, ts.URL+"/v1/predict", `{"cluster":{"nodes":2},"job":{"inputMB":256}}`); status != http.StatusOK {
		t.Fatalf("predict status = %d", status)
	}
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)

	for _, want := range []string{
		`# TYPE mrserved_request_duration_seconds histogram`,
		`mrserved_request_duration_seconds_bucket{kind="predict",le="+Inf"} 1`,
		`mrserved_request_duration_seconds_count{kind="predict"} 1`,
		`mrserved_request_duration_seconds_sum{kind="predict"}`,
		`# TYPE mrserved_stage_duration_seconds histogram`,
		`mrserved_stage_duration_seconds_bucket{stage="model_solve",le="+Inf"} 1`,
		`mrserved_stage_duration_seconds_count{stage="cache_lookup"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Finite buckets are rendered for every configured bound.
	if got := strings.Count(text, `mrserved_request_duration_seconds_bucket{kind="predict",le=`); got != len(obs.DefaultLatencyBuckets())+1 {
		t.Errorf("predict bucket lines = %d, want %d (+Inf included)", got, len(obs.DefaultLatencyBuckets())+1)
	}
}

// TestNoGoroutineLeaks: the context/trace plumbing must not leak workers —
// after serving traffic (including detached simulator runs) and shutting the
// server down, the goroutine count returns to its baseline.
func TestNoGoroutineLeaks(t *testing.T) {
	baseline := runtime.NumGoroutine()

	svc := New(Options{Workers: 4, CacheSize: 32})
	ts := httptest.NewServer(NewHandler(svc, ServerConfig{Timeout: 30 * time.Second}))
	client := ts.Client()
	for _, call := range []struct{ path, body string }{
		{"/v1/predict", `{"cluster":{"nodes":2},"job":{"inputMB":256}}`},
		{"/v1/simulate", `{"cluster":{"nodes":2},"job":{"inputMB":256},"reps":1,"seed":1}`},
		{"/v1/plan", `{"cluster":{"nodes":4},"job":{"inputMB":1024,"reduces":2},"nodes":[2,4,6]}`},
	} {
		resp, err := client.Post(ts.URL+call.path, "application/json", strings.NewReader(call.body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status = %d", call.path, resp.StatusCode)
		}
		resp.Body.Close()
	}
	client.CloseIdleConnections()
	ts.Close()

	// Goroutines wind down asynchronously (HTTP keep-alive reapers, detached
	// sim runs); poll with a deadline instead of asserting immediately.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines: baseline %d, now %d — serving path leaked", baseline, runtime.NumGoroutine())
}
