package service

import (
	"context"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"hadoop2perf/internal/cluster"
	"hadoop2perf/internal/workload"
)

// mixSpec is a 2-class plan template: fast current-generation nodes plus a
// slower older generation.
func mixSpec() cluster.Spec {
	spec := cluster.Default(0)
	spec.NumNodes = 0
	spec.Classes = []cluster.NodeClass{
		{Name: "fast", Count: 4, Capacity: cluster.Resource{MemoryMB: 32768, VCores: 32},
			CPUs: 6, Disks: 1, DiskMBps: 240, NetworkMBps: 110, Speed: 1},
		{Name: "slow", Count: 4, Capacity: cluster.Resource{MemoryMB: 32768, VCores: 32},
			CPUs: 6, Disks: 1, DiskMBps: 140, NetworkMBps: 110, Speed: 0.5},
	}
	return spec
}

func TestPlanClassMixGrid(t *testing.T) {
	s := New(Options{Workers: 4})
	// Multi-wave workload (64 maps over ≤32 lanes): map completions stagger
	// in every mix, keeping the slow-start overlap credit comparable across
	// candidates (a single synchronized wave hits the border rule's known
	// conservatism on uniform clusters).
	job, err := workload.NewJob(0, 8192, 128, 4, workload.WordCount())
	if err != nil {
		t.Fatal(err)
	}
	req := PlanRequest{
		Spec: mixSpec(), Job: job,
		ClassCounts: [][]int{{4, 0}, {2, 2}, {0, 4}, {4, 4}},
	}
	resp, err := s.Plan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Strategy != StrategyGrid || resp.Evaluated != 4 {
		t.Fatalf("strategy=%q evaluated=%d", resp.Strategy, resp.Evaluated)
	}
	rt := map[string]float64{}
	for _, c := range resp.Candidates {
		if c.Err != "" {
			t.Fatalf("candidate %v failed: %s", c.ClassCounts, c.Err)
		}
		key := ""
		for _, n := range c.ClassCounts {
			key += string(rune('0'+n)) + ","
		}
		rt[key] = c.ResponseTime
		wantNodes := 0
		for _, n := range c.ClassCounts {
			wantNodes += n
		}
		if c.Nodes != wantNodes {
			t.Errorf("mix %v: Nodes = %d, want %d", c.ClassCounts, c.Nodes, wantNodes)
		}
	}
	// All-fast beats all-slow at equal size, and the mix lands in between.
	if !(rt["4,0,"] < rt["2,2,"] && rt["2,2,"] < rt["0,4,"]) {
		t.Errorf("mix ordering wrong: fast=%v mix=%v slow=%v", rt["4,0,"], rt["2,2,"], rt["0,4,"])
	}
	// Adding the slow generation to the fast cluster must not hurt.
	if rt["4,4,"] > rt["4,0,"]*(1+1e-9) {
		t.Errorf("4+4 mix slower than 4 fast alone: %v vs %v", rt["4,4,"], rt["4,0,"])
	}
}

func TestPlanClassMixValidation(t *testing.T) {
	s := New(Options{Workers: 2})
	job, err := workload.NewJob(0, 1024, 128, 1, workload.WordCount())
	if err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func(*PlanRequest){
		"flat spec":      func(r *PlanRequest) { r.Spec = cluster.Default(4) },
		"nodes conflict": func(r *PlanRequest) { r.Nodes = []int{2, 4} },
		"short mix":      func(r *PlanRequest) { r.ClassCounts = [][]int{{1}} },
		"negative count": func(r *PlanRequest) { r.ClassCounts = [][]int{{-1, 2}} },
		"empty mix":      func(r *PlanRequest) { r.ClassCounts = [][]int{{0, 0}} },
		// A bare Nodes sweep over a class-form template must be rejected,
		// not silently evaluated against the unchanged template.
		"nodes axis on class spec": func(r *PlanRequest) { r.ClassCounts = nil; r.Nodes = []int{2, 4, 8} },
	} {
		req := PlanRequest{Spec: mixSpec(), Job: job, ClassCounts: [][]int{{2, 2}}}
		mutate(&req)
		if _, err := s.Plan(context.Background(), req); err == nil || !IsInvalidRequest(err) {
			t.Errorf("%s: want invalid-request error, got %v", name, err)
		}
	}
}

// TestPlanClassMixDeadlineSearch sweeps mixes under a deadline through the
// search strategy and cross-checks the winner against the exhaustive grid —
// for a non-chain axis (incomparable trade-off mixes: evaluated
// exhaustively, never pruned) and a chain-ordered axis (each mix adds nodes
// componentwise: the bisection applies and must prune).
func TestPlanClassMixDeadlineSearch(t *testing.T) {
	job, err := workload.NewJob(0, 2048, 128, 1, workload.WordCount())
	if err != nil {
		t.Fatal(err)
	}
	axes := map[string][][]int{
		"non-chain": {{1, 0}, {2, 0}, {2, 2}, {4, 0}, {4, 2}, {4, 4}, {4, 6}, {4, 8}},
		"chain":     {{1, 0}, {2, 1}, {3, 1}, {4, 2}, {5, 2}, {6, 3}, {7, 3}, {8, 4}, {10, 5}, {12, 6}},
	}
	for name, mixes := range axes {
		base := PlanRequest{Spec: mixSpec(), Job: job, ClassCounts: mixes}
		s := New(Options{Workers: 4})
		grid := base
		grid.Exhaustive = true
		pruned := 0
		for _, deadline := range []float64{80, 120, 200, 400} {
			g := grid
			g.DeadlineSec = deadline
			gridResp, err := s.Plan(context.Background(), g)
			if err != nil {
				t.Fatal(err)
			}

			fast := New(Options{Workers: 4}) // fresh cache: count real evaluations
			q := base
			q.DeadlineSec = deadline
			searchResp, err := fast.Plan(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			if searchResp.Strategy != StrategySearch {
				t.Fatalf("%s deadline %v: strategy = %q", name, deadline, searchResp.Strategy)
			}
			pruned += searchResp.Pruned
			if name == "non-chain" && searchResp.Pruned != 0 {
				t.Errorf("non-chain axis pruned %d points; incomparable mixes must be exhaustive", searchResp.Pruned)
			}
			if (gridResp.Best == nil) != (searchResp.Best == nil) {
				t.Fatalf("%s deadline %v: best disagreement: grid %+v search %+v", name, deadline, gridResp.Best, searchResp.Best)
			}
			if gridResp.Best != nil {
				// Response times agree within the warm-start tolerance: the
				// search's axis chains warm-start their model runs (1e-6
				// relative core contract; observed ~1e-13).
				g, s := gridResp.Best, searchResp.Best
				rel := math.Abs(g.ResponseTime-s.ResponseTime) / g.ResponseTime
				if g.Nodes != s.Nodes || !reflect.DeepEqual(g.ClassCounts, s.ClassCounts) || rel > 1e-6 {
					t.Errorf("%s deadline %v: grid best %+v != search best %+v", name, deadline, g, s)
				}
			}
		}
		if name == "chain" && pruned == 0 {
			t.Error("chain axis never pruned; bisection fast path not engaged")
		}
	}
}

// The canonical cache key must separate specs that differ only in their
// class tables, and a flat spec from its class-form twin.
func TestKeyDistinguishesClasses(t *testing.T) {
	job, err := workload.NewJob(0, 1024, 128, 1, workload.WordCount())
	if err != nil {
		t.Fatal(err)
	}
	flat := cluster.Default(8)
	het := mixSpec()
	het2 := mixSpec()
	het2.Classes[1].Speed = 0.9
	het3 := mixSpec()
	het3.Classes[0], het3.Classes[1] = het3.Classes[1], het3.Classes[0]
	keys := []string{
		predictKey(PredictRequest{Spec: flat, Job: job, NumJobs: 1}),
		predictKey(PredictRequest{Spec: het, Job: job, NumJobs: 1}),
		predictKey(PredictRequest{Spec: het2, Job: job, NumJobs: 1}),
		predictKey(PredictRequest{Spec: het3, Job: job, NumJobs: 1}),
	}
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			t.Fatalf("cache key collision across class tables: %v", keys)
		}
	}
}

// The metrics endpoint defaults to Prometheus text exposition; JSON stays
// available under Accept: application/json.
func TestMetricsPrometheus(t *testing.T) {
	svc := New(Options{Workers: 2, CacheSize: 8})
	ts := httptest.NewServer(NewHandler(svc, ServerConfig{Timeout: 30 * time.Second}))
	defer ts.Close()

	job, err := workload.NewJob(0, 512, 128, 1, workload.WordCount())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // one miss + one hit
		if _, err := svc.Predict(context.Background(), PredictRequest{Spec: cluster.Default(2), Job: job}); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q, want Prometheus text", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE mrserved_requests_total counter",
		`mrserved_requests_total{kind="predict"} 2`,
		"# TYPE mrserved_cache_hits_total counter",
		"mrserved_cache_hits_total 1",
		"mrserved_cache_misses_total 1",
		"# TYPE mrserved_inflight_sims gauge",
		"mrserved_inflight_sims 0",
		"mrserved_cache_entries 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics body missing %q:\n%s", want, text)
		}
	}
}
