package service

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"time"
)

// cacheShards is the shard count of the service cache and singleflight
// table. Requests hash to a shard by key, so concurrent traffic contends on
// 1/cacheShards of a lock instead of serializing on one global mutex — the
// fix for the single-mutex LRU that every hit and miss used to funnel
// through. A power of two keeps the modulo cheap.
const cacheShards = 16

// shardOf maps a canonical request key to its shard (FNV-1a over the key).
// Keys are hex SHA-256 digests, so any stable hash spreads them evenly.
func shardOf(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h % cacheShards
}

// shardedCache is an N-way sharded LRU map from canonical request keys to
// completed responses. Values are treated as immutable once inserted: hits
// return the stored value directly, so callers must not mutate results.
// Each shard holds its own mutex, recency list and capacity slice; total
// capacity is split evenly (rounded up, minimum one entry per shard).
//
// A positive ttl ages entries: an expired entry is invisible to get (a
// miss — the recompute repopulates it) but stays resident until evicted by
// capacity, so getStale can serve it as a last resort when the pool is too
// saturated to recompute (the serve-stale degradation mode). ttl zero
// preserves the historical never-expire behavior exactly.
type shardedCache struct {
	shards [cacheShards]lruShard
	ttl    time.Duration
}

// lruShard is one independently locked LRU slice of the cache.
type lruShard struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry struct {
	key      string
	val      any
	storedAt time.Time
}

func newShardedCache(max int, ttl time.Duration) *shardedCache {
	perShard := (max + cacheShards - 1) / cacheShards
	if perShard < 1 {
		perShard = 1
	}
	c := &shardedCache{ttl: ttl}
	for i := range c.shards {
		c.shards[i] = lruShard{max: perShard, order: list.New(), items: make(map[string]*list.Element)}
	}
	return c
}

// get returns a live entry; expired entries read as misses (but stay
// resident for getStale).
func (c *shardedCache) get(key string) (any, bool) {
	s := &c.shards[shardOf(key)]
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*lruEntry)
	if c.ttl > 0 && time.Since(e.storedAt) > c.ttl {
		return nil, false
	}
	s.order.MoveToFront(el)
	return e.val, true
}

// getStale returns an entry regardless of age — the serve-stale fallback
// for saturation, when an expired answer beats queueing for a recompute.
// The entry's recency is not refreshed: a stale serve must not keep dead
// entries pinned against eviction.
func (c *shardedCache) getStale(key string) (any, bool) {
	s := &c.shards[shardOf(key)]
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return nil, false
	}
	return el.Value.(*lruEntry).val, true
}

func (c *shardedCache) add(key string, val any) {
	s := &c.shards[shardOf(key)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		s.order.MoveToFront(el)
		e := el.Value.(*lruEntry)
		e.val = val
		e.storedAt = time.Now()
		return
	}
	s.items[key] = s.order.PushFront(&lruEntry{key: key, val: val, storedAt: time.Now()})
	for s.order.Len() > s.max {
		tail := s.order.Back()
		s.order.Remove(tail)
		delete(s.items, tail.Value.(*lruEntry).key)
	}
}

func (c *shardedCache) len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// shardedFlight deduplicates concurrent identical requests shard by shard:
// the first caller for a key computes, later callers for the same key wait
// for that result instead of recomputing (the classic singleflight pattern,
// reimplemented here because the module is dependency-free). Sharding by
// the same key hash as the cache keeps unrelated keys off each other's
// registration lock.
type shardedFlight struct {
	shards [cacheShards]flightGroup
}

func newShardedFlight() *shardedFlight {
	g := &shardedFlight{}
	for i := range g.shards {
		g.shards[i].calls = make(map[string]*flightCall)
	}
	return g
}

// do runs fn once per key among concurrent callers (see flightGroup.do).
func (g *shardedFlight) do(ctx context.Context, key string, fn func() (any, error)) (any, error, bool) {
	return g.shards[shardOf(key)].do(ctx, key, fn)
}

// flightGroup is one shard's singleflight table.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

// do runs fn once per key among concurrent callers. The returned bool
// reports whether the result was shared from another caller's execution.
// Waiters honor ctx cancellation; the executing caller's fn is responsible
// for observing its own ctx. A shared result that failed only because the
// *leader's* context ended is not inherited: a still-live waiter retries as
// the new leader instead of failing with someone else's cancellation.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (any, error)) (any, error, bool) {
	for {
		g.mu.Lock()
		if c, ok := g.calls[key]; ok {
			g.mu.Unlock()
			select {
			case <-c.done:
				if isContextError(c.err) && ctx.Err() == nil {
					continue // leader died of its own cancellation, not ours
				}
				return c.val, c.err, true
			case <-ctx.Done():
				return nil, ctx.Err(), true
			}
		}
		c := &flightCall{done: make(chan struct{})}
		g.calls[key] = c
		g.mu.Unlock()

		c.val, c.err = fn()
		close(c.done)

		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		return c.val, c.err, false
	}
}

func isContextError(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
