package service

import (
	"container/list"
	"context"
	"errors"
	"sync"
)

// lruCache is a mutex-guarded LRU map from canonical request keys to
// completed responses. Values are treated as immutable once inserted: hits
// return the stored value directly, so callers must not mutate results.
type lruCache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val any
}

func newLRUCache(max int) *lruCache {
	return &lruCache{max: max, order: list.New(), items: make(map[string]*list.Element)}
}

func (c *lruCache) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

func (c *lruCache) add(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*lruEntry).val = val
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, val: val})
	for c.order.Len() > c.max {
		tail := c.order.Back()
		c.order.Remove(tail)
		delete(c.items, tail.Value.(*lruEntry).key)
	}
}

func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// flightGroup deduplicates concurrent identical requests: the first caller
// for a key computes, later callers for the same key wait for that result
// instead of recomputing (the classic singleflight pattern, reimplemented
// here because the module is dependency-free).
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// do runs fn once per key among concurrent callers. The returned bool
// reports whether the result was shared from another caller's execution.
// Waiters honor ctx cancellation; the executing caller's fn is responsible
// for observing its own ctx. A shared result that failed only because the
// *leader's* context ended is not inherited: a still-live waiter retries as
// the new leader instead of failing with someone else's cancellation.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (any, error)) (any, error, bool) {
	for {
		g.mu.Lock()
		if c, ok := g.calls[key]; ok {
			g.mu.Unlock()
			select {
			case <-c.done:
				if isContextError(c.err) && ctx.Err() == nil {
					continue // leader died of its own cancellation, not ours
				}
				return c.val, c.err, true
			case <-ctx.Done():
				return nil, ctx.Err(), true
			}
		}
		c := &flightCall{done: make(chan struct{})}
		g.calls[key] = c
		g.mu.Unlock()

		c.val, c.err = fn()
		close(c.done)

		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		return c.val, c.err, false
	}
}

func isContextError(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
