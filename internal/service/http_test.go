package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hadoop2perf/internal/trace"
)

func newTestServer(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	svc := New(Options{Workers: 4, CacheSize: 64})
	ts := httptest.NewServer(NewHandler(svc, ServerConfig{Timeout: 30 * time.Second}))
	t.Cleanup(ts.Close)
	return svc, ts
}

func postJSON(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("%s: non-JSON response %q", url, raw)
	}
	return resp.StatusCode, out
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ok" {
		t.Errorf("body = %v", body)
	}
	// Build info and uptime ride the liveness body.
	if v, _ := body["version"].(string); v == "" {
		t.Errorf("version = %v", body["version"])
	}
	if gv, _ := body["goVersion"].(string); !strings.HasPrefix(gv, "go") {
		t.Errorf("goVersion = %v", body["goVersion"])
	}
	if up, ok := body["uptimeSeconds"].(float64); !ok || up < 0 {
		t.Errorf("uptimeSeconds = %v", body["uptimeSeconds"])
	}
	if id, _ := body["requestId"].(string); id == "" || id != resp.Header.Get(RequestIDHeader) {
		t.Errorf("requestId %v vs header %q", body["requestId"], resp.Header.Get(RequestIDHeader))
	}
}

// TestPredictRoundTrip is the end-to-end acceptance path: a predict call
// over real HTTP, repeated, with the repeat served from cache and the hit
// visible in /v1/metrics.
func TestPredictRoundTrip(t *testing.T) {
	svc, ts := newTestServer(t)
	req := `{"cluster":{"nodes":4},"job":{"inputMB":1024,"blockSizeMB":128,"reduces":4,"profile":"wordcount"},"numJobs":1,"estimator":"tripathi"}`

	status, body := postJSON(t, ts.URL+"/v1/predict", req)
	if status != http.StatusOK {
		t.Fatalf("status = %d body = %v", status, body)
	}
	rt, _ := body["responseTime"].(float64)
	if rt <= 0 {
		t.Fatalf("responseTime = %v", body["responseTime"])
	}
	if body["cached"] != false {
		t.Error("first call reported cached")
	}
	if body["estimator"] != "tripathi" {
		t.Errorf("estimator echoed as %v", body["estimator"])
	}

	status, body = postJSON(t, ts.URL+"/v1/predict", req)
	if status != http.StatusOK {
		t.Fatalf("repeat status = %d", status)
	}
	if body["cached"] != true {
		t.Error("repeat not served from cache")
	}
	if got, _ := body["responseTime"].(float64); got != rt {
		t.Errorf("cached responseTime drifted: %v vs %v", got, rt)
	}

	// The hit is visible in the metrics endpoint (JSON body under Accept:
	// application/json; the bare-GET default is Prometheus text, covered by
	// TestMetricsPrometheus).
	mreq, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	mreq.Header.Set("Accept", "application/json")
	resp, err := http.DefaultClient.Do(mreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("JSON metrics content type = %q", ct)
	}
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.PredictRequests != 2 || m.CacheHits != 1 || m.CacheMisses != 1 {
		t.Errorf("metrics = %+v", m)
	}
	if m.HitRate != 0.5 {
		t.Errorf("hit rate = %v", m.HitRate)
	}
	// The wire snapshot matches the engine's on the scalar counters. (The
	// snapshots themselves can't be compared whole: the engine observes the
	// /v1/metrics GET itself after its body was rendered, so the histograms
	// legitimately drift by one observation.)
	e := svc.Metrics()
	if m.PredictRequests != e.PredictRequests || m.CacheHits != e.CacheHits ||
		m.CacheMisses != e.CacheMisses || m.HitRate != e.HitRate ||
		m.ModelOuterIterations != e.ModelOuterIterations ||
		m.ModelInnerIterations != e.ModelInnerIterations {
		t.Errorf("wire metrics %+v != engine metrics %+v", m, e)
	}
	// Both histogram families are present in the JSON twin, and the predict
	// kind has recorded both round trips.
	if ph := m.RequestDurations["predict"]; ph.Count != 2 {
		t.Errorf("predict duration count = %d, want 2 (%+v)", ph.Count, m.RequestDurations)
	}
	if sh := m.StageDurations["model_solve"]; sh.Count != 1 {
		t.Errorf("model_solve duration count = %d, want 1 (one computed miss)", sh.Count)
	}
	if sh := m.StageDurations["cache_lookup"]; sh.Count != 2 {
		t.Errorf("cache_lookup duration count = %d, want 2", sh.Count)
	}
}

func TestSimulateEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	req := `{"cluster":{"nodes":2},"job":{"inputMB":256,"reduces":1},"seed":1,"reps":1,"policy":"fifo"}`
	status, body := postJSON(t, ts.URL+"/v1/simulate", req)
	if status != http.StatusOK {
		t.Fatalf("status = %d body = %v", status, body)
	}
	if mr, _ := body["meanResponse"].(float64); mr <= 0 {
		t.Errorf("meanResponse = %v", body["meanResponse"])
	}
	jobs, _ := body["jobs"].([]any)
	if len(jobs) != 1 {
		t.Errorf("jobs = %v", body["jobs"])
	}
}

func TestCompareEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed comparison in -short mode")
	}
	_, ts := newTestServer(t)
	req := `{"cluster":{"nodes":2},"job":{"inputMB":256,"reduces":1},"seed":1,"reps":1}`
	status, body := postJSON(t, ts.URL+"/v1/compare", req)
	if status != http.StatusOK {
		t.Fatalf("status = %d body = %v", status, body)
	}
	for _, k := range []string{"Simulated", "ForkJoin", "Tripathi"} {
		if v, _ := body[k].(float64); v <= 0 {
			t.Errorf("%s = %v", k, body[k])
		}
	}
}

func TestPlanEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	req := `{"cluster":{"nodes":4},"job":{"inputMB":2048,"reduces":4},
		"nodes":[2,4,6],"deadlineSec":100000}`
	status, body := postJSON(t, ts.URL+"/v1/plan", req)
	if status != http.StatusOK {
		t.Fatalf("status = %d body = %v", status, body)
	}
	cands, _ := body["candidates"].([]any)
	if len(cands) != 3 {
		t.Fatalf("candidates = %v", body["candidates"])
	}
	best, _ := body["best"].(map[string]any)
	if best == nil {
		t.Fatal("no best candidate")
	}
	if best["feasible"] != true {
		t.Errorf("best = %v", best)
	}
	if pol, _ := best["policy"].(string); pol != "fifo" {
		t.Errorf("policy serialized as %v", best["policy"])
	}
}

func TestValidationErrors(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct{ name, url, body string }{
		{"garbage", "/v1/predict", `{`},
		{"unknown field", "/v1/predict", `{"clutser":{"nodes":4}}`},
		{"no cluster", "/v1/predict", `{"job":{"inputMB":512}}`},
		{"bad profile", "/v1/predict", `{"cluster":{"nodes":2},"job":{"inputMB":512,"profile":"sortbench"}}`},
		{"bad estimator", "/v1/predict", `{"cluster":{"nodes":2},"job":{"inputMB":512},"estimator":"oracle"}`},
		{"bad policy", "/v1/simulate", `{"cluster":{"nodes":2},"job":{"inputMB":512},"policy":"lifo"}`},
		{"zero input", "/v1/predict", `{"cluster":{"nodes":2},"job":{"inputMB":0}}`},
		{"negative deadline", "/v1/plan", `{"cluster":{"nodes":2},"job":{"inputMB":512},"deadlineSec":-5}`},
	}
	for _, tc := range cases {
		status, body := postJSON(t, ts.URL+tc.url, tc.body)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status = %d body = %v", tc.name, status, body)
		}
		if msg, _ := body["error"].(string); msg == "" {
			t.Errorf("%s: no error message", tc.name)
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/predict status = %d", resp.StatusCode)
	}
}

func TestRequestTimeout(t *testing.T) {
	// A handler with a microscopic budget over a saturated single-worker
	// pool must answer 504, not hang.
	svc := New(Options{Workers: 1})
	if err := svc.acquire(t.Context()); err != nil {
		t.Fatal(err)
	}
	defer svc.release()
	ts := httptest.NewServer(NewHandler(svc, ServerConfig{Timeout: 50 * time.Millisecond}))
	defer ts.Close()

	req := `{"cluster":{"nodes":2},"job":{"inputMB":256,"reduces":1}}`
	status, body := postJSON(t, ts.URL+"/v1/predict", req)
	if status != http.StatusGatewayTimeout {
		t.Errorf("status = %d body = %v", status, body)
	}
}

// calibrateBody builds a /v1/calibrate request body embedding a freshly
// simulated trace document under the given profile name.
func calibrateBody(t *testing.T, name string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.Write(&buf, simTrace(t, 512, 1)); err != nil {
		t.Fatal(err)
	}
	return `{"name":"` + name + `","trace":` + buf.String() + `}`
}

// TestCalibrateEndToEnd walks the tentpole loop over real HTTP: calibrate a
// profile from a trace document, reference it from /v1/predict, watch the
// registry on /v1/profiles, and observe recalibration invalidating the
// cached profile-backed prediction.
func TestCalibrateEndToEnd(t *testing.T) {
	_, ts := newTestServer(t)

	status, body := postJSON(t, ts.URL+"/v1/calibrate", calibrateBody(t, "prod-wc"))
	if status != http.StatusOK {
		t.Fatalf("calibrate status = %d body = %v", status, body)
	}
	prof, _ := body["profile"].(map[string]any)
	if prof == nil || prof["name"] != "prod-wc" || prof["version"] != float64(1) {
		t.Fatalf("profile = %v", body["profile"])
	}
	classes, _ := body["classes"].(map[string]any)
	for _, cls := range []string{"map", "shuffle-sort", "merge"} {
		cw, _ := classes[cls].(map[string]any)
		if cw == nil {
			t.Fatalf("class %s missing from %v", cls, classes)
		}
		if mr, _ := cw["meanResponse"].(float64); mr <= 0 {
			t.Errorf("%s meanResponse = %v", cls, cw["meanResponse"])
		}
	}

	// Profile-backed prediction differs from the static one and echoes its
	// profile snapshot.
	plainReq := `{"cluster":{"nodes":2},"job":{"inputMB":512,"reduces":2}}`
	profReq := `{"cluster":{"nodes":2},"job":{"inputMB":512,"reduces":2},"profile":"prod-wc"}`
	_, plain := postJSON(t, ts.URL+"/v1/predict", plainReq)
	status, withProf := postJSON(t, ts.URL+"/v1/predict", profReq)
	if status != http.StatusOK {
		t.Fatalf("profile predict status = %d body = %v", status, withProf)
	}
	if withProf["responseTime"] == plain["responseTime"] {
		t.Error("calibrated prediction identical to static one over the wire")
	}
	if withProf["profile"] != "prod-wc" || withProf["profileVersion"] != float64(1) {
		t.Errorf("profile echo = %v v%v", withProf["profile"], withProf["profileVersion"])
	}

	// The registry is visible.
	resp, err := http.Get(ts.URL + "/v1/profiles")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Profiles []ProfileInfo `json:"profiles"`
	}
	err = json.NewDecoder(resp.Body).Decode(&listing)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(listing.Profiles) != 1 || listing.Profiles[0].Name != "prod-wc" {
		t.Fatalf("profiles = %+v", listing.Profiles)
	}

	// Warm the cache, recalibrate under the same name from a different
	// trace, and verify the warmed entry is no longer served.
	_, warm := postJSON(t, ts.URL+"/v1/predict", profReq)
	if warm["cached"] != true {
		t.Fatal("repeat profile predict not cached")
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, simTrace(t, 2048, 7)); err != nil {
		t.Fatal(err)
	}
	status, _ = postJSON(t, ts.URL+"/v1/calibrate", `{"name":"prod-wc","trace":`+buf.String()+`}`)
	if status != http.StatusOK {
		t.Fatalf("recalibrate status = %d", status)
	}
	_, after := postJSON(t, ts.URL+"/v1/predict", profReq)
	if after["cached"] != false {
		t.Error("stale cached prediction served after recalibration")
	}
	if after["profileVersion"] != float64(2) {
		t.Errorf("profileVersion = %v", after["profileVersion"])
	}
}

func TestCalibrateValidationOverWire(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct{ name, body string }{
		{"no trace", `{"name":"wc"}`},
		{"garbage trace", `{"name":"wc","trace":{"version":99,"result":{}}}`},
		{"no name", calibrateBody(t, "")},
		{"bad name", calibrateBody(t, "a b")},
	}
	for _, tc := range cases {
		status, body := postJSON(t, ts.URL+"/v1/calibrate", tc.body)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status = %d body = %v", tc.name, status, body)
		}
	}
	// Unknown profile references and simulate-side references fail loudly.
	status, _ := postJSON(t, ts.URL+"/v1/predict",
		`{"cluster":{"nodes":2},"job":{"inputMB":512},"profile":"ghost"}`)
	if status != http.StatusBadRequest {
		t.Errorf("unknown profile predict: status = %d", status)
	}
	status, body := postJSON(t, ts.URL+"/v1/simulate",
		`{"cluster":{"nodes":2},"job":{"inputMB":512},"profile":"ghost"}`)
	if status != http.StatusBadRequest {
		t.Errorf("simulate with profile: status = %d body = %v", status, body)
	}
}

// TestRoutesRegistered binds Routes() to the mux: every advertised pattern
// must resolve to a registered handler under its own method and path. It
// inspects the inner mux directly — NewHandler wraps it in the trace (and
// optionally rate-limit) middleware.
func TestRoutesRegistered(t *testing.T) {
	cfg := ServerConfig{}
	cfg.applyDefaults()
	mux := newMux(New(Options{Workers: 1}), cfg)
	for _, route := range Routes() {
		method, path, ok := strings.Cut(route, " ")
		if !ok {
			t.Fatalf("malformed route %q", route)
		}
		r := httptest.NewRequest(method, path, nil)
		if _, pattern := mux.Handler(r); pattern != route {
			t.Errorf("route %q resolves to pattern %q", route, pattern)
		}
	}
}

// TestRoutesDocumented holds docs/API.md to the registered route list: every
// route the mux serves must appear verbatim in the API reference.
func TestRoutesDocumented(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("..", "..", "docs", "API.md"))
	if err != nil {
		t.Fatalf("docs/API.md unreadable: %v", err)
	}
	for _, route := range Routes() {
		if !bytes.Contains(doc, []byte(route)) {
			t.Errorf("route %q not documented in docs/API.md", route)
		}
	}
}

// TestMetricsDocumented holds docs/API.md to the Prometheus exposition:
// every metric family writePrometheus emits must appear in the reference,
// so new counters cannot ship undocumented.
func TestMetricsDocumented(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("..", "..", "docs", "API.md"))
	if err != nil {
		t.Fatalf("docs/API.md unreadable: %v", err)
	}
	var buf bytes.Buffer
	if err := writePrometheus(&buf, Metrics{}); err != nil {
		t.Fatal(err)
	}
	families := 0
	for _, line := range strings.Split(buf.String(), "\n") {
		name, ok := strings.CutPrefix(line, "# TYPE ")
		if !ok {
			continue
		}
		name, _, _ = strings.Cut(name, " ")
		families++
		if !bytes.Contains(doc, []byte(name)) {
			t.Errorf("metric family %q not documented in docs/API.md", name)
		}
	}
	if families < 8 {
		t.Fatalf("only %d families parsed from the exposition; the checker is miswired", families)
	}
}

// TestCustomClusterSpecCamelCase: custom specs follow the API's camelCase
// convention like every other wire field.
func TestCustomClusterSpecCamelCase(t *testing.T) {
	_, ts := newTestServer(t)
	req := `{"cluster":{"custom":{
		"numNodes":3,
		"nodeCapacity":{"memoryMB":32768,"vcores":32},
		"mapContainer":{"memoryMB":4096,"vcores":2},
		"reduceContainer":{"memoryMB":4096,"vcores":4},
		"cpuPerNode":6,"diskPerNode":1,"diskMBps":240,"networkMBps":110
	}},"job":{"inputMB":512,"reduces":2}}`
	status, body := postJSON(t, ts.URL+"/v1/predict", req)
	if status != http.StatusOK {
		t.Fatalf("status = %d body = %v", status, body)
	}
	if rt, _ := body["responseTime"].(float64); rt <= 0 {
		t.Errorf("responseTime = %v", body["responseTime"])
	}
}
