package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"hadoop2perf/internal/cluster"
	"hadoop2perf/internal/core"
	"hadoop2perf/internal/fault"
	"hadoop2perf/internal/obs"
	"hadoop2perf/internal/workload"
	"hadoop2perf/internal/yarn"
)

// maxPlanCandidates bounds one plan's grid so a single request cannot pin
// the pool indefinitely; split larger sweeps across calls.
const maxPlanCandidates = 4096

// PlanRequest is a what-if grid search: the cartesian product of the axis
// slices is evaluated in parallel, each candidate derived from the base
// cluster/job template. An empty axis keeps the template's value. This
// generalizes the capacity-planning and deadline examples (examples/
// capacityplanning, examples/deadline) into one API call: set DeadlineSec
// and read Best.
type PlanRequest struct {
	// Spec is the node-hardware template; the Nodes axis overrides only its
	// NumNodes field, keeping per-node capacities and bandwidths.
	Spec cluster.Spec
	// Job is the job template; the BlockSizesMB and Reducers axes override
	// its BlockSizeMB / NumReduces fields.
	Job workload.Job
	// NumJobs is the concurrent-job population of every candidate (default 1).
	NumJobs int
	// Estimator selects the analytic tree estimator (default fork/join).
	Estimator core.Estimator
	// Profile optionally names a calibrated profile seeding every
	// model-backed candidate (see PredictRequest.Profile). The name resolves
	// once per plan, so all candidates share one snapshot even if a
	// concurrent Calibrate replaces it mid-plan. Rejected when UseSimulator
	// is set: the simulator has no model initialization to seed, and
	// silently ignoring the reference would mislabel every candidate.
	Profile  string
	resolved *calibratedProfile

	// Nodes, BlockSizesMB and Reducers are grid axes over cluster size,
	// HDFS block size and reducer count. Empty slices keep the template's
	// value.
	Nodes        []int
	BlockSizesMB []float64 // see Nodes
	Reducers     []int     // see Nodes
	// ClassCounts sweeps heterogeneous class *mixes* instead of the flat
	// Nodes axis: each entry is a per-class node-count vector over
	// Spec.Classes (same order; zero drops the class from that candidate,
	// e.g. {4,0} and {2,2} sweep "4 fast" vs "2 fast + 2 slow"). Requires a
	// class-form Spec and is mutually exclusive with Nodes.
	ClassCounts [][]int
	// Policies only differentiates candidates when UseSimulator is set: the
	// analytic model has no scheduler-policy input, so model-backed
	// candidates that differ only in policy share one cached prediction.
	Policies []yarn.Policy

	// DeadlineSec, when positive, marks candidates meeting it as feasible
	// and selects Best as the cheapest feasible candidate (fewest
	// node-seconds); when zero, Best is simply the fastest candidate.
	DeadlineSec float64

	// Exhaustive forces the full grid even when the deadline fast path
	// (bisection on the node axis + dominance pruning, see search.go)
	// applies. The fast path returns the same Best with far fewer model
	// evaluations; set Exhaustive to get every grid point evaluated, e.g.
	// to plot the whole response surface.
	Exhaustive bool

	// UseSimulator evaluates candidates on the discrete-event simulator
	// (median of Reps seeded runs from Seed) instead of the analytic model —
	// slower, but scheduler-policy-aware.
	UseSimulator bool
	Seed         int64 // see UseSimulator
	Reps         int   // see UseSimulator

	// Faults applies a fault-injection scenario to every candidate: injected
	// into simulator-backed evaluations, corrected for analytically in
	// model-backed ones. Preemptible classes in the template (or its mixes)
	// carry their revocation hazard either way, so the planner prices
	// reliable-vs-preemptible trade-offs under failure risk.
	Faults *fault.Plan
	// Quantile selects which seeded-run quantile a simulator-backed
	// candidate's ResponseTime reports: 0.5 (the default when 0), 0.95 or
	// 0.99. Planning against p99 under a fault scenario answers "cheapest
	// mix that meets the deadline even in bad draws". Rejected without
	// UseSimulator — the analytic model predicts means, not quantiles.
	Quantile float64

	// Workflow, when non-nil, plans a whole DAG instead of one job: each
	// candidate's ResponseTime is the composed critical-path makespan of
	// the workflow on that candidate's cluster (stages with their own Spec
	// keep it; the rest inherit the swept spec). Only the cluster axes
	// (Nodes or ClassCounts) apply — job-shape axes and UseSimulator are
	// rejected, and Job is ignored. See Service.planWorkflow.
	Workflow *Workflow
}

func (r *PlanRequest) validate() error {
	if r.NumJobs <= 0 {
		r.NumJobs = 1
	}
	if r.NumJobs > MaxNumJobs {
		return fmt.Errorf("service: NumJobs %d exceeds limit %d", r.NumJobs, MaxNumJobs)
	}
	if r.Reps > MaxSimReps {
		return fmt.Errorf("service: Reps %d exceeds limit %d", r.Reps, MaxSimReps)
	}
	if err := r.Spec.Validate(); err != nil {
		return err
	}
	if err := r.Job.Validate(); err != nil {
		return err
	}
	if _, err := r.Estimator.MarshalText(); err != nil {
		return err
	}
	for _, n := range r.Nodes {
		if n <= 0 {
			return fmt.Errorf("service: plan node count %d must be positive", n)
		}
	}
	if len(r.Nodes) > 0 && r.Spec.Heterogeneous() {
		// A bare node count is ambiguous over a class table; silently keeping
		// the template would mislabel every candidate.
		return errors.New("service: Nodes axis requires a flat cluster spec; sweep class-form specs with ClassCounts")
	}
	if len(r.ClassCounts) > 0 {
		if len(r.Nodes) > 0 {
			return errors.New("service: ClassCounts and Nodes axes are mutually exclusive")
		}
		if !r.Spec.Heterogeneous() {
			return errors.New("service: ClassCounts requires a class-form cluster spec")
		}
		for mi, mix := range r.ClassCounts {
			if len(mix) != len(r.Spec.Classes) {
				return fmt.Errorf("service: class mix %d has %d counts, want %d (one per spec class)",
					mi, len(mix), len(r.Spec.Classes))
			}
			total := 0
			for ci, n := range mix {
				if n < 0 {
					return fmt.Errorf("service: class mix %d: count for class %q must be nonnegative",
						mi, r.Spec.Classes[ci].Name)
				}
				total += n
			}
			if total <= 0 {
				return fmt.Errorf("service: class mix %d has no nodes", mi)
			}
		}
	}
	for _, b := range r.BlockSizesMB {
		if b <= 0 {
			return fmt.Errorf("service: plan block size %v must be positive", b)
		}
	}
	for _, red := range r.Reducers {
		if red <= 0 {
			return fmt.Errorf("service: plan reducer count %d must be positive", red)
		}
	}
	for _, p := range r.Policies {
		if _, err := p.MarshalText(); err != nil {
			return err
		}
	}
	if r.DeadlineSec < 0 {
		return fmt.Errorf("service: deadline %v must be nonnegative", r.DeadlineSec)
	}
	if r.UseSimulator && r.Profile != "" {
		return errors.New("service: calibrated profiles seed the analytic model; simulator-backed plans cannot use one")
	}
	if err := r.Faults.Validate(); err != nil {
		return err
	}
	if r.Quantile != 0 {
		if !r.UseSimulator {
			return errors.New("service: quantile planning needs useSimulator (the analytic model predicts means)")
		}
		switch r.Quantile {
		case 0.5, 0.95, 0.99:
		default:
			return fmt.Errorf("service: quantile %v not supported (want 0.5, 0.95 or 0.99)", r.Quantile)
		}
	}
	return nil
}

// PlanCandidate is one evaluated grid point.
type PlanCandidate struct {
	// Nodes is the candidate's total cluster size.
	Nodes int `json:"nodes"`
	// ClassCounts is the per-class node-count vector of a heterogeneous mix
	// candidate (ordered like the template's Classes); nil on the flat node
	// axis. Nodes always carries the total.
	ClassCounts []int       `json:"classCounts,omitempty"`
	BlockSizeMB float64     `json:"blockSizeMB"` // candidate HDFS block size
	Reducers    int         `json:"reducers"`    // candidate reducer count
	Policy      yarn.Policy `json:"policy"`      // candidate scheduler policy

	// ResponseTime is the predicted (or simulated) mean job response time —
	// at the request's Quantile for simulator-backed plans (p50 by default).
	ResponseTime float64 `json:"responseTime"`
	// NodeSeconds is the capacity cost proxy: ResponseTime × Nodes.
	NodeSeconds float64 `json:"nodeSeconds"`
	// Cost is the price-weighted cost: ResponseTime × Σ count×price over the
	// candidate's node classes, with unpriced classes at 1 — so Cost equals
	// NodeSeconds exactly when no class sets a price. Deadline plans rank
	// feasible candidates by Cost, which is how discounted preemptible
	// capacity can beat smaller reliable clusters despite its revocation
	// risk inflating ResponseTime.
	Cost float64 `json:"cost"`
	// FailedSeeds counts errored seeded repetitions behind a
	// simulator-backed candidate (0 for model-backed ones).
	FailedSeeds int `json:"failedSeeds,omitempty"`
	// Feasible reports ResponseTime <= DeadlineSec (always false when the
	// request set no deadline).
	Feasible bool `json:"feasible"`
	// Cached reports whether this candidate was served from the cache.
	Cached bool `json:"cached"`
	// Degraded reports a simulator-backed candidate that fell back to the
	// model while the circuit breaker was open (see
	// SimulateResponse.Degraded); Stale an expired cache entry served under
	// pool saturation. Both absent on healthy evaluations.
	Degraded bool `json:"degraded,omitempty"`
	Stale    bool `json:"stale,omitempty"` // see Degraded
	// Err is set when this candidate failed to evaluate (the rest of the
	// grid still completes).
	Err string `json:"err,omitempty"`
}

// Plan strategies reported in PlanResponse.
const (
	// StrategyGrid is the exhaustive cartesian sweep.
	StrategyGrid = "grid"
	// StrategySearch is the deadline fast path: node-axis bisection plus
	// dominance pruning (search.go).
	StrategySearch = "search"
)

// PlanResponse is the evaluated grid, sorted best-first.
type PlanResponse struct {
	// Candidates is sorted: with a deadline, feasible candidates first by
	// ascending node-seconds; without one, by ascending response time. The
	// search strategy omits pruned grid points (see Pruned).
	Candidates []PlanCandidate `json:"candidates"`
	// Best points at Candidates[0] when it satisfies the request objective:
	// the cheapest feasible candidate, or (with no deadline) the fastest.
	// Nil when a deadline was set and no candidate meets it.
	Best *PlanCandidate `json:"best,omitempty"`
	// Evaluated counts candidates that produced a result (no Err).
	Evaluated int `json:"evaluated"`
	// Pruned counts grid points the search strategy skipped: provably
	// infeasible (below the feasibility frontier) or cost-dominated by an
	// evaluated candidate. Always 0 for the grid strategy.
	Pruned int `json:"pruned,omitempty"`
	// Strategy reports how the plan was evaluated: "grid" or "search".
	Strategy string `json:"strategy"`
	// DeadlineExceeded reports a plan whose time budget expired mid-sweep:
	// the response carries the candidates evaluated before the deadline
	// (partial but honest — every listed candidate is real) instead of an
	// opaque 504. Unevaluated grid points simply carry Err. Absent when the
	// plan completed.
	DeadlineExceeded bool `json:"deadlineExceeded,omitempty"`
}

// partialOnDeadline converts a deadline expiry after the fan-out into a
// partial response: when at least one candidate evaluated, the plan returns
// what it has with DeadlineExceeded set rather than discarding paid-for
// work behind a 504. Cancellation (a gone client) and a deadline that beat
// every candidate still propagate as errors.
func partialOnDeadline(ctx context.Context, resp PlanResponse) (PlanResponse, error) {
	err := ctx.Err()
	if err == nil {
		return resp, nil
	}
	if errors.Is(err, context.DeadlineExceeded) && resp.Evaluated > 0 {
		resp.DeadlineExceeded = true
		return resp, nil
	}
	return PlanResponse{}, err
}

// axis returns the grid values for one dimension, defaulting to the
// template's value.
func axisInts(vals []int, def int) []int {
	if len(vals) == 0 {
		return []int{def}
	}
	return vals
}

func axisFloats(vals []float64, def float64) []float64 {
	if len(vals) == 0 {
		return []float64{def}
	}
	return vals
}

func axisPolicies(vals []yarn.Policy) []yarn.Policy {
	if len(vals) == 0 {
		return []yarn.Policy{yarn.PolicyFIFO}
	}
	return vals
}

// nodeChoice is one point of the cluster-size axis: either a flat node count
// or a heterogeneous class mix (counts non-nil, nodes = total).
type nodeChoice struct {
	nodes  int
	counts []int
}

// nodeChoices expands the request's cluster-size axis. ClassCounts wins over
// Nodes (they are mutually exclusive after validation); with neither, the
// template's own size is the single choice.
func nodeChoices(req *PlanRequest) []nodeChoice {
	if len(req.ClassCounts) > 0 {
		out := make([]nodeChoice, len(req.ClassCounts))
		for i, mix := range req.ClassCounts {
			total := 0
			for _, n := range mix {
				total += n
			}
			out[i] = nodeChoice{nodes: total, counts: mix}
		}
		return out
	}
	ns := axisInts(req.Nodes, req.Spec.TotalNodes())
	out := make([]nodeChoice, len(ns))
	for i, n := range ns {
		out[i] = nodeChoice{nodes: n}
	}
	return out
}

// Plan evaluates the what-if request and ranks the outcomes. Deadline
// queries backed by the analytic model run the bisection + pruning search
// (search.go); everything else evaluates the full grid in parallel. Each
// candidate flows through the same cache/singleflight/pool path as a direct
// Predict or Simulate call, so overlapping plans share work.
func (s *Service) Plan(ctx context.Context, req PlanRequest) (PlanResponse, error) {
	s.planReqs.Add(1)
	if req.Workflow != nil {
		return s.planWorkflow(ctx, req)
	}
	if err := req.validate(); err != nil {
		return PlanResponse{}, invalid(err)
	}
	if err := s.resolveProfile(ctx, req.Profile, &req.resolved); err != nil {
		return PlanResponse{}, err
	}
	// The whole strategy evaluation — grid fan-out or bisection search — is
	// one plan_search span; the candidates' own model_solve/cache_lookup
	// spans nest inside it on the same trace.
	defer s.endSpan(obs.FromContext(ctx), obs.StagePlanSearch, time.Now())

	choices := nodeChoices(&req)
	blocks := axisFloats(req.BlockSizesMB, req.Job.BlockSizeMB)
	reducers := axisInts(req.Reducers, req.Job.NumReduces)
	policies := axisPolicies(req.Policies)

	total := len(choices) * len(blocks) * len(reducers) * len(policies)
	if total > maxPlanCandidates {
		return PlanResponse{}, invalid(fmt.Errorf("service: plan grid has %d candidates (max %d); split the sweep",
			total, maxPlanCandidates))
	}

	if useSearch(&req, choices) {
		return s.planSearch(ctx, req, choices, blocks, reducers, policies)
	}

	cands := make([]PlanCandidate, 0, total)
	for _, ch := range choices {
		for _, b := range blocks {
			for _, red := range reducers {
				for _, pol := range policies {
					cands = append(cands, PlanCandidate{
						Nodes: ch.nodes, ClassCounts: ch.counts,
						BlockSizeMB: b, Reducers: red, Policy: pol,
					})
				}
			}
		}
	}

	// Fan out one goroutine per candidate; the service's worker pool bounds
	// actual concurrency and the shared cache collapses duplicates (e.g.
	// model-backed candidates differing only in policy).
	var wg sync.WaitGroup
	for i := range cands {
		wg.Add(1)
		go func(c *PlanCandidate) {
			defer wg.Done()
			s.evalCandidate(ctx, req, c)
		}(&cands[i])
	}
	wg.Wait()
	obs.FromContext(ctx).AddCounter(obs.CounterPlanCandidates, int64(len(cands)))

	resp := PlanResponse{Candidates: cands, Strategy: StrategyGrid}
	finalizePlan(&resp, &req)
	return partialOnDeadline(ctx, resp)
}

// candidateSpec derives one grid point's cluster: a class mix rebuilds the
// template's class table with the mix's counts (zero-count classes drop
// out); the flat node axis overrides only NumNodes, keeping per-node
// capacities and bandwidths; and a class-form template without a mix axis is
// used as-is.
func candidateSpec(req *PlanRequest, ch nodeChoice) cluster.Spec {
	spec := req.Spec
	if ch.counts != nil {
		classes := make([]cluster.NodeClass, 0, len(ch.counts))
		for i, n := range ch.counts {
			if n == 0 {
				continue
			}
			cl := req.Spec.Classes[i]
			cl.Count = n
			classes = append(classes, cl)
		}
		spec.Classes = classes
		spec.NumNodes = 0
		return spec
	}
	if !spec.Heterogeneous() {
		spec.NumNodes = ch.nodes
	}
	return spec
}

// candidatePredictRequest derives the model request of one grid point from
// the plan template — the single definition of what a candidate means,
// shared by the grid and search strategies.
func candidatePredictRequest(req PlanRequest, ch nodeChoice, blockMB float64, reducers int) PredictRequest {
	job := req.Job
	job.BlockSizeMB = blockMB
	job.NumReduces = reducers
	return PredictRequest{
		Spec: candidateSpec(&req, ch), Job: job, NumJobs: req.NumJobs, Estimator: req.Estimator,
		Faults: req.Faults, Profile: req.Profile, resolved: req.resolved,
	}
}

// evalCandidate fills in one grid point via the cached Predict/Simulate
// paths.
func (s *Service) evalCandidate(ctx context.Context, req PlanRequest, c *PlanCandidate) {
	ch := nodeChoice{nodes: c.Nodes, counts: c.ClassCounts}
	if !req.UseSimulator {
		pr, err := s.predict(ctx, candidatePredictRequest(req, ch, c.BlockSizeMB, c.Reducers))
		if err != nil {
			c.Err = err.Error()
			return
		}
		c.ResponseTime = pr.Prediction.ResponseTime
		c.Cached = pr.Cached
		c.Stale = pr.Stale
		return
	}

	// Same candidate derivation as the model branch; the simulator runs
	// NumJobs identical copies of the derived job.
	pr := candidatePredictRequest(req, ch, c.BlockSizeMB, c.Reducers)
	jobs := make([]workload.Job, req.NumJobs)
	for i := range jobs {
		j := pr.Job
		j.ID = i
		jobs[i] = j
	}
	sr, err := s.simulate(ctx, SimulateRequest{
		Spec: pr.Spec, Jobs: jobs, Seed: req.Seed, Reps: req.Reps, Policy: c.Policy,
		Faults: req.Faults,
	})
	if err != nil {
		c.Err = err.Error()
		return
	}
	switch req.Quantile {
	case 0.95:
		c.ResponseTime = sr.Quantiles.P95
	case 0.99:
		c.ResponseTime = sr.Quantiles.P99
	default:
		c.ResponseTime = sr.Result.MeanResponse()
	}
	c.FailedSeeds = sr.FailedSeeds
	c.Cached = sr.Cached
	c.Degraded = sr.Degraded
	c.Stale = sr.Stale
}

// sortCandidates ranks the grid best-first. Failed candidates sink to the
// bottom. With a deadline the objective is price-weighted cost among
// feasible candidates (identical to node-seconds when no class is priced);
// otherwise raw speed.
func sortCandidates(cands []PlanCandidate, hasDeadline bool) {
	sort.SliceStable(cands, func(a, b int) bool {
		ca, cb := cands[a], cands[b]
		if (ca.Err == "") != (cb.Err == "") {
			return ca.Err == ""
		}
		if ca.Err != "" {
			return false
		}
		if hasDeadline {
			if ca.Feasible != cb.Feasible {
				return ca.Feasible
			}
			if ca.Feasible {
				if ca.Cost != cb.Cost {
					return ca.Cost < cb.Cost
				}
				return ca.ResponseTime < cb.ResponseTime
			}
		}
		if ca.ResponseTime != cb.ResponseTime {
			return ca.ResponseTime < cb.ResponseTime
		}
		return ca.Cost < cb.Cost
	})
}
