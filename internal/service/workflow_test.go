package service

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"hadoop2perf/internal/cluster"
	"hadoop2perf/internal/obs"
	"hadoop2perf/internal/workflow"
	"hadoop2perf/internal/yarn"
)

// diamondWorkflow builds a 4-stage diamond (src → left/right → join) of
// small jobs; the middle legs are identical so they form one contending
// wave on a shared cluster.
func diamondWorkflow(t *testing.T) *Workflow {
	t.Helper()
	return &Workflow{
		Stages: []WorkflowStage{
			{Name: "src", Job: testJob(t, 1024, 4)},
			{Name: "left", Job: testJob(t, 2048, 4)},
			{Name: "right", Job: testJob(t, 2048, 4)},
			{Name: "join", Job: testJob(t, 512, 2)},
		},
		Edges: []workflow.Edge{
			{From: "src", To: "left"}, {From: "src", To: "right"},
			{From: "left", To: "join"}, {From: "right", To: "join"},
		},
	}
}

// chainWorkflow builds a K-stage chain of identical single-reducer stages.
func chainWorkflow(t *testing.T, k int) *Workflow {
	t.Helper()
	wf := &Workflow{}
	for i := 0; i < k; i++ {
		wf.Stages = append(wf.Stages, WorkflowStage{
			Name: fmt.Sprintf("s%d", i), Job: testJob(t, 1024, 1),
		})
		if i > 0 {
			wf.Edges = append(wf.Edges, workflow.Edge{
				From: fmt.Sprintf("s%d", i-1), To: fmt.Sprintf("s%d", i),
			})
		}
	}
	return wf
}

// TestWorkflowSingleStageMatchesPredict pins the degenerate case: a
// one-stage workflow is exactly the single-job predict for its job — same
// bits, same cache entry.
func TestWorkflowSingleStageMatchesPredict(t *testing.T) {
	s := New(Options{Workers: 2, CacheSize: 64})
	spec := cluster.Default(4)
	job := testJob(t, 1024, 4)

	wfResp, err := s.Predict(context.Background(), PredictRequest{
		Spec: spec,
		Workflow: &Workflow{
			Stages: []WorkflowStage{{Name: "only", Job: job}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if wfResp.Workflow == nil || len(wfResp.Workflow.Stages) != 1 {
		t.Fatalf("workflow report = %+v", wfResp.Workflow)
	}

	plain, err := s.Predict(context.Background(), PredictRequest{Spec: spec, Job: job})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Prediction.ResponseTime != wfResp.Prediction.ResponseTime {
		t.Errorf("single-stage workflow %v != plain predict %v",
			wfResp.Prediction.ResponseTime, plain.Prediction.ResponseTime)
	}
	// The stage rode the plain predict key, so the follow-up plain request
	// must be a cache hit on the stage's entry.
	if !plain.Cached {
		t.Error("plain predict after the one-stage workflow missed the stage's cache entry")
	}
	if wfResp.Prediction.ResponseTime != wfResp.Workflow.Stages[0].ResponseTime {
		t.Errorf("makespan %v != sole stage response %v",
			wfResp.Prediction.ResponseTime, wfResp.Workflow.Stages[0].ResponseTime)
	}
}

// TestWorkflowDiamondReport checks the composed response: wave concurrency
// on the parallel legs, the critical-path schedule, and whole-workflow
// caching on repeat.
func TestWorkflowDiamondReport(t *testing.T) {
	s := New(Options{Workers: 2, CacheSize: 64})
	req := PredictRequest{Spec: cluster.Default(4), Workflow: diamondWorkflow(t)}

	resp, err := s.Predict(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	wf := resp.Workflow
	if wf == nil || len(wf.Stages) != 4 {
		t.Fatalf("workflow report = %+v", wf)
	}
	for i, wantConc := range []int{1, 2, 2, 1} {
		if wf.Stages[i].Concurrency != wantConc {
			t.Errorf("stage %s concurrency = %d, want %d",
				wf.Stages[i].Name, wf.Stages[i].Concurrency, wantConc)
		}
	}
	src, left, right, join := wf.Stages[0], wf.Stages[1], wf.Stages[2], wf.Stages[3]
	if src.Start != 0 || !src.Critical {
		t.Errorf("source stage: start %v critical %v", src.Start, src.Critical)
	}
	if left.Start != src.Finish || right.Start != src.Finish {
		t.Errorf("middle starts %v/%v != source finish %v", left.Start, right.Start, src.Finish)
	}
	wantJoin := math.Max(left.Finish, right.Finish)
	if join.Start != wantJoin {
		t.Errorf("join start %v != slowest middle finish %v", join.Start, wantJoin)
	}
	if wf.ResponseTime != join.Finish || resp.Prediction.ResponseTime != wf.ResponseTime {
		t.Errorf("makespan %v vs join finish %v vs prediction %v",
			wf.ResponseTime, join.Finish, resp.Prediction.ResponseTime)
	}
	if len(wf.CriticalPath) != 3 || wf.CriticalPath[0] != "src" || wf.CriticalPath[2] != "join" {
		t.Errorf("critical path = %v", wf.CriticalPath)
	}
	if wf.Tree != "S(S(j0,P(j1,j2)),j3)" {
		t.Errorf("stage tree = %q", wf.Tree)
	}

	again, err := s.Predict(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Error("repeat workflow request was not served from the workflow cache")
	}
	if again.Prediction.ResponseTime != resp.Prediction.ResponseTime {
		t.Errorf("cached workflow drifted: %v vs %v",
			again.Prediction.ResponseTime, resp.Prediction.ResponseTime)
	}
	if s.Metrics().WorkflowRequests != 2 {
		t.Errorf("workflowRequests = %d, want 2", s.Metrics().WorkflowRequests)
	}
}

// TestWorkflowRejectsMalformedRequests covers the structural 400s: cycles,
// NumJobs with a workflow, and the partial-profile-coverage rule
// (the fix this PR pins: these were surfacing as internal errors).
func TestWorkflowRejectsMalformedRequests(t *testing.T) {
	s := New(Options{Workers: 2, CacheSize: 8})
	base := func(t *testing.T) *Workflow { return chainWorkflow(t, 2) }

	cyclic := base(t)
	cyclic.Edges = append(cyclic.Edges, workflow.Edge{From: "s1", To: "s0"})
	partial := base(t)
	partial.Stages[1].Profile = "only-this-stage"

	cases := []struct {
		name string
		req  PredictRequest
		want string
	}{
		{"cycle", PredictRequest{Spec: cluster.Default(2), Workflow: cyclic}, "cycle"},
		{"numJobs", PredictRequest{Spec: cluster.Default(2), Workflow: base(t), NumJobs: 2}, "derived from the workflow"},
		{"partialProfiles", PredictRequest{Spec: cluster.Default(2), Workflow: partial}, "cover only stages s1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := s.Predict(context.Background(), tc.req)
			if err == nil {
				t.Fatal("malformed workflow accepted")
			}
			if !IsInvalidRequest(err) {
				t.Errorf("error is not an invalid-request (would be HTTP 500): %v", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	// The partial-coverage message names both sides of the split.
	_, err := s.Predict(context.Background(), PredictRequest{Spec: cluster.Default(2), Workflow: partial})
	if err == nil || !strings.Contains(err.Error(), "s0") || !strings.Contains(err.Error(), "s1") {
		t.Errorf("partial-coverage error should name covered and uncovered stages: %v", err)
	}
}

// TestWorkflowEdgesDistinguishCacheKeys pins the key rule: the same stages
// under different shapes never alias, and workflow keys never collide with
// the classic predict key space.
func TestWorkflowEdgesDistinguishCacheKeys(t *testing.T) {
	dagChain := workflow.Chain("a", "b")
	dagFork := &workflow.DAG{Stages: []string{"a", "b"}}
	stageReqs := []PredictRequest{
		{Spec: cluster.Default(2), Job: testJob(t, 512, 1), NumJobs: 1},
		{Spec: cluster.Default(2), Job: testJob(t, 512, 1), NumJobs: 1},
	}
	kChain := workflowPredictKey(dagChain, stageReqs)
	kFork := workflowPredictKey(dagFork, stageReqs)
	if kChain == kFork {
		t.Error("chain and fork over identical stages share a cache key")
	}
	if k := predictKey(stageReqs[0]); k == kChain || k == kFork {
		t.Error("workflow key collides with the single-job predict key")
	}
}

// TestWorkflowPlanSearchModelRuns is the PR's efficiency gate: a deadline
// plan over a 20-stage identical chain must cost no more than 3x the model
// runs of the same plan for a single job — per-stage cache sharing and the
// warm chain do the work, not 20x the solves.
func TestWorkflowPlanSearchModelRuns(t *testing.T) {
	nodesAxis := []int{2, 3, 4, 6, 8, 12}
	job := testJob(t, 1024, 1)

	// Discover a mid-axis response time on a throwaway service so the
	// deadline lands inside the axis and the bisection has a real frontier.
	probe := New(Options{Workers: 2, CacheSize: 8})
	mid, err := probe.Predict(context.Background(), PredictRequest{Spec: cluster.Default(6), Job: job})
	if err != nil {
		t.Fatal(err)
	}
	deadline := mid.Prediction.ResponseTime * 1.02

	modelRuns := func(m Metrics) int64 {
		return int64(m.StageDurations[obs.StageModelSolve.String()].Count)
	}

	single := New(Options{Workers: 4, CacheSize: 256})
	sResp, err := single.Plan(context.Background(), PlanRequest{
		Spec: cluster.Default(2), Job: job, Nodes: nodesAxis, DeadlineSec: deadline,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sResp.Strategy != StrategySearch {
		t.Fatalf("single-job plan strategy = %q, want search", sResp.Strategy)
	}
	sm := single.Metrics()

	const k = 20
	chain := New(Options{Workers: 4, CacheSize: 256})
	cResp, err := chain.Plan(context.Background(), PlanRequest{
		Spec: cluster.Default(2), Workflow: chainWorkflow(t, k), Nodes: nodesAxis,
		DeadlineSec: deadline * k, // chain makespan = k x the stage response
	})
	if err != nil {
		t.Fatal(err)
	}
	if cResp.Strategy != StrategySearch {
		t.Fatalf("workflow plan strategy = %q, want search", cResp.Strategy)
	}
	if cResp.Best == nil {
		t.Fatal("workflow deadline plan found no feasible candidate")
	}
	cm := chain.Metrics()

	if sruns, cruns := modelRuns(sm), modelRuns(cm); sruns == 0 || cruns > 3*sruns {
		t.Errorf("model solves: %d-stage chain used %d vs single-job %d (budget 3x)", k, cruns, sruns)
	}
	if sm.ModelOuterIterations == 0 || cm.ModelOuterIterations > 3*sm.ModelOuterIterations {
		t.Errorf("outer iterations: chain %d vs single %d (budget 3x)",
			cm.ModelOuterIterations, sm.ModelOuterIterations)
	}
	// The identical stages must actually share per-stage entries: one miss
	// plus k-1 hits per computed candidate, so hits dominate misses.
	if cm.CacheHits <= cm.CacheMisses {
		t.Errorf("chain plan: %d hits / %d misses — stage cache sharing is not engaging",
			cm.CacheHits, cm.CacheMisses)
	}
	// The chain's feasibility frontier is the same node count as the
	// single job's (the makespan is k x the per-stage response).
	if sResp.Best == nil || cResp.Best.Nodes != sResp.Best.Nodes {
		t.Errorf("chain best = %+v, single best = %+v", cResp.Best, sResp.Best)
	}
}

// TestWorkflowPlanConcurrent drives mixed workflow plan searches and grids
// from many goroutines on one service — the -race CI step runs this to
// check the shared pool, cache and metrics paths under contention.
func TestWorkflowPlanConcurrent(t *testing.T) {
	s := New(Options{Workers: 4, CacheSize: 256})
	diamond := diamondWorkflow(t)
	chain := chainWorkflow(t, 6)
	nodesAxis := []int{2, 3, 4, 6, 8, 12}

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			req := PlanRequest{Spec: cluster.Default(2), Workflow: diamond, Nodes: nodesAxis}
			if g%2 == 1 {
				// Single-reducer chain with a deadline rides the search path.
				req.Workflow = chain
				req.DeadlineSec = 1e6
			}
			resp, err := s.Plan(context.Background(), req)
			if err != nil {
				errs <- err
				return
			}
			if len(resp.Candidates) == 0 || resp.Best == nil {
				errs <- fmt.Errorf("goroutine %d: empty plan %+v", g, resp)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := s.Metrics().WorkflowRequests; got != 8 {
		t.Errorf("workflowRequests = %d, want 8", got)
	}
}

// TestWorkflowPlanRejectsForeignAxes pins the plan-surface rule: job-shape
// axes, simulator backing and quantile judging are 400s for workflow plans.
func TestWorkflowPlanRejectsForeignAxes(t *testing.T) {
	s := New(Options{Workers: 2, CacheSize: 8})
	base := PlanRequest{Spec: cluster.Default(2), Workflow: chainWorkflow(t, 2), Nodes: []int{2, 4}}

	cases := []struct {
		name   string
		mutate func(*PlanRequest)
	}{
		{"reducers", func(r *PlanRequest) { r.Reducers = []int{2, 4} }},
		{"blockSizes", func(r *PlanRequest) { r.BlockSizesMB = []float64{64, 128} }},
		{"policies", func(r *PlanRequest) { r.Policies = []yarn.Policy{yarn.PolicyFIFO, yarn.PolicyFair} }},
		{"simulator", func(r *PlanRequest) { r.UseSimulator = true }},
		{"quantile", func(r *PlanRequest) { r.Quantile = 0.95 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := base
			tc.mutate(&req)
			_, err := s.Plan(context.Background(), req)
			if err == nil {
				t.Fatal("foreign axis accepted on a workflow plan")
			}
			if !IsInvalidRequest(err) {
				t.Errorf("error is not an invalid-request (would be HTTP 500): %v", err)
			}
		})
	}
}

// TestWorkflowHTTPRoundTrip exercises the wire format end to end: a
// diamond predict with its workflow report, a workflow plan sweep, and the
// structured 400s for a cyclic DAG and partial profile coverage.
func TestWorkflowHTTPRoundTrip(t *testing.T) {
	_, ts := newTestServer(t)

	diamond := `"workflow": {
		"stages": [
			{"name": "src",   "job": {"inputMB": 1024, "reduces": 4}},
			{"name": "left",  "job": {"inputMB": 2048, "reduces": 4}},
			{"name": "right", "job": {"inputMB": 2048, "reduces": 4}},
			{"name": "join",  "job": {"inputMB": 512,  "reduces": 2}}
		],
		"edges": [
			{"from": "src", "to": "left"}, {"from": "src", "to": "right"},
			{"from": "left", "to": "join"}, {"from": "right", "to": "join"}
		]
	}`

	status, body := postJSON(t, ts.URL+"/v1/predict", `{"cluster": {"nodes": 4}, `+diamond+`}`)
	if status != 200 {
		t.Fatalf("predict status = %d: %v", status, body)
	}
	wf, ok := body["workflow"].(map[string]any)
	if !ok {
		t.Fatalf("no workflow block in response: %v", body)
	}
	stages, _ := wf["stages"].([]any)
	if len(stages) != 4 {
		t.Fatalf("stages = %v", wf["stages"])
	}
	first := stages[0].(map[string]any)
	if first["name"] != "src" || first["critical"] != true {
		t.Errorf("first stage = %v", first)
	}
	if path, _ := wf["criticalPath"].([]any); len(path) != 3 {
		t.Errorf("criticalPath = %v", wf["criticalPath"])
	}
	if rt, _ := body["responseTime"].(float64); rt <= 0 || rt != wf["responseTime"] {
		t.Errorf("responseTime %v vs workflow %v", body["responseTime"], wf["responseTime"])
	}
	// A workflow-less predict keeps the classic shape: no workflow key at
	// all (the goldens pin the exact bytes; this pins the field's absence).
	status, plain := postJSON(t, ts.URL+"/v1/predict", `{"cluster": {"nodes": 4}, "job": {"inputMB": 1024, "reduces": 4}}`)
	if status != 200 {
		t.Fatalf("plain predict status = %d: %v", status, plain)
	}
	if _, present := plain["workflow"]; present {
		t.Errorf("single-job predict response grew a workflow field: %v", plain)
	}

	status, plan := postJSON(t, ts.URL+"/v1/plan",
		`{"cluster": {"nodes": 2}, "nodes": [2, 4, 8], `+diamond+`}`)
	if status != 200 {
		t.Fatalf("plan status = %d: %v", status, plan)
	}
	if cands, _ := plan["candidates"].([]any); len(cands) != 3 {
		t.Errorf("plan candidates = %v", plan["candidates"])
	}
	if best, _ := plan["best"].(map[string]any); best == nil || best["nodes"] != 8.0 {
		t.Errorf("plan best = %v", plan["best"])
	}

	status, errBody := postJSON(t, ts.URL+"/v1/predict", `{"cluster": {"nodes": 2}, "workflow": {
		"stages": [{"name": "a", "job": {"inputMB": 256}}, {"name": "b", "job": {"inputMB": 256}}],
		"edges": [{"from": "a", "to": "b"}, {"from": "b", "to": "a"}]
	}}`)
	if status != 400 {
		t.Fatalf("cyclic workflow: status = %d, want 400: %v", status, errBody)
	}
	if msg, _ := errBody["error"].(string); !strings.Contains(msg, "cycle") {
		t.Errorf("cyclic workflow error = %v", errBody)
	}

	status, errBody = postJSON(t, ts.URL+"/v1/predict", `{"cluster": {"nodes": 2}, "workflow": {
		"stages": [{"name": "a", "job": {"inputMB": 256}},
		           {"name": "b", "job": {"inputMB": 256}, "profile": "prod"}],
		"edges": [{"from": "a", "to": "b"}]
	}}`)
	if status != 400 {
		t.Fatalf("partial profiles: status = %d, want 400: %v", status, errBody)
	}
	if msg, _ := errBody["error"].(string); !strings.Contains(msg, "cover only stages b") {
		t.Errorf("partial-profile error = %v", errBody)
	}

	status, errBody = postJSON(t, ts.URL+"/v1/plan",
		`{"cluster": {"nodes": 2}, "nodes": [2, 4], "reducers": [2, 4], `+diamond+`}`)
	if status != 400 {
		t.Fatalf("reducers axis on workflow plan: status = %d, want 400: %v", status, errBody)
	}
}
