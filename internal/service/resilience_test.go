package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"hadoop2perf/internal/admit"
	"hadoop2perf/internal/cluster"
	"hadoop2perf/internal/workload"
)

// TestErrorEnvelopeContract pins the wire shape of every load-rejection
// status: 429 (rate limit), 503 (admission shed), and 504 (deadline) all
// carry the structured JSON envelope — error text, requestId echoing the
// response header, a numeric retryAfterSec — plus a Retry-After header of
// at least one second.
func TestErrorEnvelopeContract(t *testing.T) {
	// Big enough that the simulation cannot finish inside the 60ms server
	// timeout on any hardware; the context abort produces the 504.
	heavySim := `{"cluster":{"nodes":64},"job":{"inputMB":1048576},"numJobs":4,"reps":6,"seed":9}`
	predict := `{"cluster":{"nodes":2},"job":{"inputMB":256}}`

	cases := []struct {
		name       string
		wantStatus int
		wantReason string
		fire       func(t *testing.T) *http.Response
	}{
		{"rate limited", http.StatusTooManyRequests, "", func(t *testing.T) *http.Response {
			svc := New(Options{Workers: 2})
			ts := httptest.NewServer(NewHandler(svc, ServerConfig{RateLimit: 0.01, RateBurst: 1}))
			t.Cleanup(ts.Close)
			mustPost(t, ts.URL+"/v1/predict", predict).Body.Close() // burn the burst token
			return mustPost(t, ts.URL+"/v1/predict", predict)
		}},
		{"queue full", http.StatusServiceUnavailable, admit.ReasonQueueFull, func(t *testing.T) *http.Response {
			// A bound below one expensive request's cost sheds the very
			// first simulate with no concurrency choreography.
			svc := New(Options{Workers: 2, AdmitMaxQueueCost: 1})
			ts := httptest.NewServer(NewHandler(svc, ServerConfig{}))
			t.Cleanup(ts.Close)
			return mustPost(t, ts.URL+"/v1/simulate", `{"cluster":{"nodes":2},"job":{"inputMB":256},"reps":1}`)
		}},
		{"draining", http.StatusServiceUnavailable, admit.ReasonDraining, func(t *testing.T) *http.Response {
			svc := New(Options{Workers: 2})
			ts := httptest.NewServer(NewHandler(svc, ServerConfig{}))
			t.Cleanup(ts.Close)
			svc.StartDrain()
			return mustPost(t, ts.URL+"/v1/predict", predict)
		}},
		{"deadline timeout", http.StatusGatewayTimeout, "", func(t *testing.T) *http.Response {
			svc := New(Options{Workers: 2})
			ts := httptest.NewServer(NewHandler(svc, ServerConfig{Timeout: 60 * time.Millisecond}))
			t.Cleanup(ts.Close)
			return mustPost(t, ts.URL+"/v1/simulate", heavySim)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := tc.fire(t)
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			var body map[string]any
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatalf("decode body: %v", err)
			}
			if msg, _ := body["error"].(string); msg == "" {
				t.Errorf("body error = %v, want non-empty", body["error"])
			}
			id, _ := body["requestId"].(string)
			if id == "" || id != resp.Header.Get(RequestIDHeader) {
				t.Errorf("body requestId %q vs header %q", id, resp.Header.Get(RequestIDHeader))
			}
			ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
			if err != nil || ra < 1 {
				t.Errorf("Retry-After = %q, want integer >= 1", resp.Header.Get("Retry-After"))
			}
			sec, ok := body["retryAfterSec"].(float64)
			if !ok || sec < 1 {
				t.Errorf("body retryAfterSec = %v, want number >= 1", body["retryAfterSec"])
			}
			if reason, _ := body["reason"].(string); reason != tc.wantReason {
				t.Errorf("body reason = %q, want %q", reason, tc.wantReason)
			}
		})
	}
}

func mustPost(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestServeStaleUnderSaturation pins the serve-stale cache contract: an
// expired entry is recomputed when the pool has capacity (never stale while
// idle), served as-is with Stale=true when every worker is busy, and
// repopulated fresh once capacity returns.
func TestServeStaleUnderSaturation(t *testing.T) {
	const ttl = 40 * time.Millisecond
	s := New(Options{Workers: 1, CacheSize: 8, CacheTTL: ttl})
	req := PredictRequest{Spec: cluster.Default(2), Job: testJob(t, 512, 2)}
	ctx := context.Background()

	first, err := s.Predict(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached || first.Stale {
		t.Fatalf("first = cached %v stale %v", first.Cached, first.Stale)
	}
	fresh, err := s.Predict(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !fresh.Cached || fresh.Stale {
		t.Fatalf("within TTL = cached %v stale %v, want fresh hit", fresh.Cached, fresh.Stale)
	}

	// Past the TTL with an idle pool: the entry is recomputed, not served
	// stale — staleness is a saturation concession, never the default.
	time.Sleep(ttl + 20*time.Millisecond)
	idle, err := s.Predict(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if idle.Cached || idle.Stale {
		t.Fatalf("idle recompute = cached %v stale %v, want fresh compute", idle.Cached, idle.Stale)
	}

	// Past the TTL again, but now with the only worker occupied: the
	// expired entry is served with Stale=true instead of queueing.
	time.Sleep(ttl + 20*time.Millisecond)
	s.sem <- struct{}{} // saturate the pool
	stale, err := s.Predict(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !stale.Cached || !stale.Stale {
		t.Fatalf("saturated = cached %v stale %v, want stale hit", stale.Cached, stale.Stale)
	}
	if stale.Prediction.ResponseTime != idle.Prediction.ResponseTime {
		t.Errorf("stale answer drifted: %v vs %v", stale.Prediction.ResponseTime, idle.Prediction.ResponseTime)
	}
	<-s.sem

	// Capacity is back: the same key recomputes fresh and repopulates.
	again, err := s.Predict(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if again.Cached || again.Stale {
		t.Fatalf("post-saturation = cached %v stale %v, want fresh compute", again.Cached, again.Stale)
	}

	if m := s.Metrics(); m.StaleServed != 1 {
		t.Errorf("StaleServed = %d, want 1", m.StaleServed)
	}
}

// TestBreakerTripAndRecoverService walks the circuit breaker through the
// service layer: consecutive simulator timeouts open it, simulate answers
// degrade to the model-only fallback (flagged, uncached), and a clean run
// after the cooldown closes it again — all visible in Metrics.
func TestBreakerTripAndRecoverService(t *testing.T) {
	const cooldown = 60 * time.Millisecond
	s := New(Options{Workers: 2, BreakerThreshold: 2, BreakerCooldown: cooldown})
	spec := cluster.Default(2)
	job := testJob(t, 512, 2)
	simReq := func(seed int64) SimulateRequest {
		return SimulateRequest{Spec: spec, Jobs: []workload.Job{job}, Seed: seed, Reps: 1}
	}

	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	for seed := int64(1); seed <= 2; seed++ {
		if _, err := s.Simulate(expired, simReq(seed)); err == nil {
			t.Fatalf("seed %d: expired-deadline simulate succeeded", seed)
		}
	}
	m := s.Metrics()
	if m.BreakerTrips < 1 || m.BreakerStateCode != admit.StateOpen {
		t.Fatalf("after %d timeouts: trips=%d state=%s, want open", 2, m.BreakerTrips, m.BreakerState)
	}

	// Open breaker: simulator-backed answers fall back to the model,
	// flagged Degraded and kept out of the cache.
	deg, err := s.Simulate(context.Background(), simReq(3))
	if err != nil {
		t.Fatalf("degraded simulate: %v", err)
	}
	if !deg.Degraded {
		t.Fatal("simulate while breaker open was not flagged degraded")
	}
	if deg.Result.Makespan <= 0 {
		t.Fatalf("degraded makespan = %v", deg.Result.Makespan)
	}
	if m := s.Metrics(); m.DegradedResponses < 1 {
		t.Errorf("DegradedResponses = %d, want >= 1", m.DegradedResponses)
	}

	time.Sleep(cooldown + 30*time.Millisecond)
	real, err := s.Simulate(context.Background(), simReq(3))
	if err != nil {
		t.Fatalf("recovery simulate: %v", err)
	}
	if real.Degraded {
		t.Fatal("simulate after cooldown still degraded (degraded answer was cached?)")
	}
	if m := s.Metrics(); m.BreakerStateCode != admit.StateClosed {
		t.Errorf("state after recovery = %s, want closed", m.BreakerState)
	}
}

// TestReadyzStates pins the liveness/readiness split: /healthz answers 200
// through every state, while /readyz degrades to 503 with a status of
// "overloaded" (admission queue at its bound) or "draining" (shutdown).
func TestReadyzStates(t *testing.T) {
	svc := New(Options{Workers: 2, AdmitMaxQueueCost: 8})
	ts := httptest.NewServer(NewHandler(svc, ServerConfig{}))
	t.Cleanup(ts.Close)

	readyz := func() (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body struct {
			Status string `json:"status"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body.Status
	}
	healthzOK := func() {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz = %d, want 200 regardless of readiness", resp.StatusCode)
		}
	}

	if code, status := readyz(); code != http.StatusOK || status != "ready" {
		t.Fatalf("idle readyz = %d %q, want 200 ready", code, status)
	}

	// One expensive admission fills the 8-unit bound: overloaded, not dead.
	ticket, err := svc.Admission().Admit(context.Background(), admit.ClassExpensive)
	if err != nil {
		t.Fatal(err)
	}
	if code, status := readyz(); code != http.StatusServiceUnavailable || status != "overloaded" {
		t.Errorf("saturated readyz = %d %q, want 503 overloaded", code, status)
	}
	healthzOK()
	ticket.Done()
	if code, status := readyz(); code != http.StatusOK || status != "ready" {
		t.Errorf("post-release readyz = %d %q, want 200 ready", code, status)
	}

	svc.StartDrain()
	if code, status := readyz(); code != http.StatusServiceUnavailable || status != "draining" {
		t.Errorf("draining readyz = %d %q, want 503 draining", code, status)
	}
	healthzOK()
}

// TestPlanPartialOnDeadline pins graceful plan degradation: when the
// request deadline expires mid-sweep, candidates already answered (here:
// from cache) are returned with DeadlineExceeded=true instead of the whole
// plan collapsing into a 504 with nothing to show.
func TestPlanPartialOnDeadline(t *testing.T) {
	// High threshold: the deliberate timeouts below must not trip the
	// breaker and turn the miss path into degraded model answers.
	s := New(Options{Workers: 2, BreakerThreshold: 100})
	job := testJob(t, 1024, 2)
	plan := func(nodes []int) PlanRequest {
		return PlanRequest{
			Spec: cluster.Default(2), Job: job,
			Nodes:        nodes,
			UseSimulator: true, Seed: 5, Reps: 1,
		}
	}

	// Warm the 2-node candidate's simulation into the cache.
	if _, err := s.Plan(context.Background(), plan([]int{2})); err != nil {
		t.Fatal(err)
	}

	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	resp, err := s.Plan(expired, plan([]int{2, 4}))
	if err != nil {
		t.Fatalf("partial plan should not error: %v", err)
	}
	if !resp.DeadlineExceeded {
		t.Fatal("DeadlineExceeded not set on a deadline-cut plan")
	}
	if resp.Evaluated != 1 {
		t.Fatalf("Evaluated = %d, want 1 (the cached candidate)", resp.Evaluated)
	}
	if len(resp.Candidates) != 2 {
		t.Fatalf("candidates = %d, want 2", len(resp.Candidates))
	}
	var evaluated, failed int
	for _, c := range resp.Candidates {
		if c.Err == "" {
			evaluated++
			if c.Nodes != 2 {
				t.Errorf("surviving candidate nodes = %d, want the pre-warmed 2", c.Nodes)
			}
			if !c.Cached {
				t.Error("surviving candidate not marked cached")
			}
		} else {
			failed++
		}
	}
	if evaluated != 1 || failed != 1 {
		t.Errorf("candidate split = %d evaluated / %d failed, want 1/1", evaluated, failed)
	}

	// A plan with no deadline pressure on the same service stays clean.
	full, err := s.Plan(context.Background(), plan([]int{2, 4}))
	if err != nil {
		t.Fatal(err)
	}
	if full.DeadlineExceeded {
		t.Error("unpressured plan flagged DeadlineExceeded")
	}
	if full.Evaluated != 2 {
		t.Errorf("unpressured Evaluated = %d, want 2", full.Evaluated)
	}
}
