package service

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"hadoop2perf/internal/obs"
)

// prometheusContentType is the Prometheus text exposition format version
// this package emits.
const prometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// wantsJSON reports whether an Accept header asks for the JSON metrics body
// rather than the Prometheus text default.
func wantsJSON(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mt, _, _ := strings.Cut(strings.TrimSpace(part), ";")
		if strings.TrimSpace(mt) == "application/json" {
			return true
		}
	}
	return false
}

// writePrometheus renders a metrics snapshot in the Prometheus text
// exposition format (version 0.0.4): request counts by kind, cache
// hits/misses and population, and simulator execution counters including the
// in-flight gauge.
func writePrometheus(w io.Writer, m Metrics) error {
	type metric struct {
		name, help, kind string
		labels           string
		value            float64
	}
	metrics := []metric{
		{"mrserved_requests_total", "Accepted API calls by kind.", "counter", `kind="predict"`, float64(m.PredictRequests)},
		{"mrserved_requests_total", "", "", `kind="simulate"`, float64(m.SimulateRequests)},
		{"mrserved_requests_total", "", "", `kind="compare"`, float64(m.CompareRequests)},
		{"mrserved_requests_total", "", "", `kind="plan"`, float64(m.PlanRequests)},
		{"mrserved_requests_total", "", "", `kind="calibrate"`, float64(m.CalibrateRequests)},
		{"mrserved_cache_hits_total", "Requests served without computing (LRU hit or shared in-flight result).", "counter", "", float64(m.CacheHits)},
		{"mrserved_cache_misses_total", "Requests that ran a fresh computation.", "counter", "", float64(m.CacheMisses)},
		{"mrserved_cache_entries", "Current LRU cache population.", "gauge", "", float64(m.CacheEntries)},
		{"mrserved_inflight_sims", "Simulator executions running right now (in-flight workers).", "gauge", "", float64(m.InFlightSims)},
		{"mrserved_sim_runs_total", "Completed simulator executions.", "counter", "", float64(m.SimRuns)},
		{"mrserved_sim_faults_injected_total", "Node failures (including preemptible revocations) injected across the seeded repetitions of completed simulator executions.", "counter", "", float64(m.SimFaultsInjected)},
		{"mrserved_sim_tasks_reexecuted_total", "Task attempts re-enqueued after node loss plus speculative backups launched, across completed simulator executions.", "counter", "", float64(m.SimTasksReexecuted)},
		{"mrserved_profiles_active", "Live (unexpired) calibrated profiles in the registry.", "gauge", "", float64(m.ProfilesActive)},
		{"mrserved_model_iterations_total", "Model fixed-point iterations spent by computed predictions, by loop (outer damped rounds vs inner MVA sweeps).", "counter", `loop="outer"`, float64(m.ModelOuterIterations)},
		{"mrserved_model_iterations_total", "", "", `loop="inner"`, float64(m.ModelInnerIterations)},
		{"mrserved_warm_predictions_total", "Computed predictions seeded from a retained warm-start neighbor.", "counter", "", float64(m.WarmPredictions)},
		{"mrserved_workflow_requests_total", "Predict/plan requests that carried a workflow block (also counted in their kind).", "counter", "", float64(m.WorkflowRequests)},
		{"mrserved_rate_limited_total", "Requests rejected with 429 by the per-client token-bucket limiter.", "counter", "", float64(m.RateLimited)},
	}
	seen := ""
	for _, mt := range metrics {
		if mt.name != seen {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", mt.name, mt.help, mt.name, mt.kind); err != nil {
				return err
			}
			seen = mt.name
		}
		name := mt.name
		if mt.labels != "" {
			name += "{" + mt.labels + "}"
		}
		if _, err := fmt.Fprintf(w, "%s %g\n", name, mt.value); err != nil {
			return err
		}
	}
	if err := writeHistogramFamily(w, "mrserved_request_duration_seconds",
		"End-to-end request handling latency by endpoint kind.", "kind", m.RequestDurations); err != nil {
		return err
	}
	return writeHistogramFamily(w, "mrserved_stage_duration_seconds",
		"Serving-stage span durations: queue wait, cache lookup, profile resolution, model solve, simulation, plan search.",
		"stage", m.StageDurations)
}

// writeHistogramFamily renders one labeled histogram family in the
// Prometheus text format: per label value the cumulative _bucket series
// (closed by le="+Inf"), then _sum and _count. Label values are emitted in
// sorted order so the exposition is deterministic.
func writeHistogramFamily(w io.Writer, name, help, label string, series map[string]obs.HistogramSnapshot) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name); err != nil {
		return err
	}
	keys := make([]string, 0, len(series))
	for k := range series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		snap := series[k]
		for _, b := range snap.Buckets {
			if _, err := fmt.Fprintf(w, "%s_bucket{%s=%q,le=%q} %d\n", name, label, k, fmt.Sprintf("%g", b.UpperBound), b.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n", name, label, k, snap.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum{%s=%q} %g\n", name, label, k, snap.Sum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count{%s=%q} %d\n", name, label, k, snap.Count); err != nil {
			return err
		}
	}
	return nil
}
