package service

import (
	"fmt"
	"io"
	"strings"
)

// prometheusContentType is the Prometheus text exposition format version
// this package emits.
const prometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// wantsJSON reports whether an Accept header asks for the JSON metrics body
// rather than the Prometheus text default.
func wantsJSON(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mt, _, _ := strings.Cut(strings.TrimSpace(part), ";")
		if strings.TrimSpace(mt) == "application/json" {
			return true
		}
	}
	return false
}

// writePrometheus renders a metrics snapshot in the Prometheus text
// exposition format (version 0.0.4): request counts by kind, cache
// hits/misses and population, and simulator execution counters including the
// in-flight gauge.
func writePrometheus(w io.Writer, m Metrics) error {
	type metric struct {
		name, help, kind string
		labels           string
		value            float64
	}
	metrics := []metric{
		{"mrserved_requests_total", "Accepted API calls by kind.", "counter", `kind="predict"`, float64(m.PredictRequests)},
		{"mrserved_requests_total", "", "", `kind="simulate"`, float64(m.SimulateRequests)},
		{"mrserved_requests_total", "", "", `kind="compare"`, float64(m.CompareRequests)},
		{"mrserved_requests_total", "", "", `kind="plan"`, float64(m.PlanRequests)},
		{"mrserved_requests_total", "", "", `kind="calibrate"`, float64(m.CalibrateRequests)},
		{"mrserved_cache_hits_total", "Requests served without computing (LRU hit or shared in-flight result).", "counter", "", float64(m.CacheHits)},
		{"mrserved_cache_misses_total", "Requests that ran a fresh computation.", "counter", "", float64(m.CacheMisses)},
		{"mrserved_cache_entries", "Current LRU cache population.", "gauge", "", float64(m.CacheEntries)},
		{"mrserved_inflight_sims", "Simulator executions running right now (in-flight workers).", "gauge", "", float64(m.InFlightSims)},
		{"mrserved_sim_runs_total", "Completed simulator executions.", "counter", "", float64(m.SimRuns)},
		{"mrserved_profiles_active", "Live (unexpired) calibrated profiles in the registry.", "gauge", "", float64(m.ProfilesActive)},
		{"mrserved_model_iterations_total", "Model fixed-point iterations spent by computed predictions, by loop (outer damped rounds vs inner MVA sweeps).", "counter", `loop="outer"`, float64(m.ModelOuterIterations)},
		{"mrserved_model_iterations_total", "", "", `loop="inner"`, float64(m.ModelInnerIterations)},
		{"mrserved_warm_predictions_total", "Computed predictions seeded from a retained warm-start neighbor.", "counter", "", float64(m.WarmPredictions)},
		{"mrserved_rate_limited_total", "Requests rejected with 429 by the per-client token-bucket limiter.", "counter", "", float64(m.RateLimited)},
	}
	seen := ""
	for _, mt := range metrics {
		if mt.name != seen {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", mt.name, mt.help, mt.name, mt.kind); err != nil {
				return err
			}
			seen = mt.name
		}
		name := mt.name
		if mt.labels != "" {
			name += "{" + mt.labels + "}"
		}
		if _, err := fmt.Fprintf(w, "%s %g\n", name, mt.value); err != nil {
			return err
		}
	}
	return nil
}
