package service

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"hadoop2perf/internal/obs"
)

// prometheusContentType is the Prometheus text exposition format version
// this package emits.
const prometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// wantsJSON reports whether an Accept header asks for the JSON metrics body
// rather than the Prometheus text default.
func wantsJSON(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mt, _, _ := strings.Cut(strings.TrimSpace(part), ";")
		if strings.TrimSpace(mt) == "application/json" {
			return true
		}
	}
	return false
}

// writePrometheus renders a metrics snapshot in the Prometheus text
// exposition format (version 0.0.4): request counts by kind, cache
// hits/misses and population, and simulator execution counters including the
// in-flight gauge.
func writePrometheus(w io.Writer, m Metrics) error {
	type metric struct {
		name, help, kind string
		labels           string
		value            float64
	}
	metrics := []metric{
		{"mrserved_requests_total", "Accepted API calls by kind.", "counter", `kind="predict"`, float64(m.PredictRequests)},
		{"mrserved_requests_total", "", "", `kind="simulate"`, float64(m.SimulateRequests)},
		{"mrserved_requests_total", "", "", `kind="compare"`, float64(m.CompareRequests)},
		{"mrserved_requests_total", "", "", `kind="plan"`, float64(m.PlanRequests)},
		{"mrserved_requests_total", "", "", `kind="calibrate"`, float64(m.CalibrateRequests)},
		{"mrserved_cache_hits_total", "Requests served without computing (LRU hit or shared in-flight result).", "counter", "", float64(m.CacheHits)},
		{"mrserved_cache_misses_total", "Requests that ran a fresh computation.", "counter", "", float64(m.CacheMisses)},
		{"mrserved_cache_entries", "Current LRU cache population.", "gauge", "", float64(m.CacheEntries)},
		{"mrserved_inflight_sims", "Simulator executions running right now (in-flight workers).", "gauge", "", float64(m.InFlightSims)},
		{"mrserved_sim_runs_total", "Completed simulator executions.", "counter", "", float64(m.SimRuns)},
		{"mrserved_sim_faults_injected_total", "Node failures (including preemptible revocations) injected across the seeded repetitions of completed simulator executions.", "counter", "", float64(m.SimFaultsInjected)},
		{"mrserved_sim_tasks_reexecuted_total", "Task attempts re-enqueued after node loss plus speculative backups launched, across completed simulator executions.", "counter", "", float64(m.SimTasksReexecuted)},
		{"mrserved_profiles_active", "Live (unexpired) calibrated profiles in the registry.", "gauge", "", float64(m.ProfilesActive)},
		{"mrserved_model_iterations_total", "Model fixed-point iterations spent by computed predictions, by loop (outer damped rounds vs inner MVA sweeps).", "counter", `loop="outer"`, float64(m.ModelOuterIterations)},
		{"mrserved_model_iterations_total", "", "", `loop="inner"`, float64(m.ModelInnerIterations)},
		{"mrserved_warm_predictions_total", "Computed predictions seeded from a retained warm-start neighbor.", "counter", "", float64(m.WarmPredictions)},
		{"mrserved_workflow_requests_total", "Predict/plan requests that carried a workflow block (also counted in their kind).", "counter", "", float64(m.WorkflowRequests)},
		{"mrserved_rate_limited_total", "Requests rejected with 429 by the per-client token-bucket limiter.", "counter", "", float64(m.RateLimited)},
		{"mrserved_admission_queued_cost", "Outstanding admitted cost units (queued + executing) in the admission controller.", "gauge", "", float64(m.Admission.QueuedCost)},
		{"mrserved_admission_queue_limit", "Admission bound in cost units; reaching it sheds with queue_full.", "gauge", "", float64(m.Admission.MaxQueueCost)},
		{"mrserved_admission_est_wait_seconds", "Estimated queue wait for a newly admitted request at the observed per-unit service time.", "gauge", "", m.Admission.EstWaitSeconds},
		{"mrserved_admission_admitted_total", "Requests admitted past the controller, by cost class.", "counter", `class="cheap"`, float64(m.Admission.AdmittedCheap)},
		{"mrserved_admission_admitted_total", "", "", `class="expensive"`, float64(m.Admission.AdmittedExpensive)},
		{"mrserved_admission_shed_total", "Requests shed with a structured 503, by reason.", "counter", `reason="queue_full"`, float64(m.Admission.ShedQueueFull)},
		{"mrserved_admission_shed_total", "", "", `reason="deadline"`, float64(m.Admission.ShedDeadline)},
		{"mrserved_admission_shed_total", "", "", `reason="draining"`, float64(m.Admission.ShedDraining)},
		{"mrserved_breaker_state", "Simulator circuit breaker state: 0 closed, 1 open, 2 half-open.", "gauge", "", float64(m.BreakerStateCode)},
		{"mrserved_breaker_trips_total", "Closed-to-open transitions of the simulator circuit breaker.", "counter", "", float64(m.BreakerTrips)},
		{"mrserved_degraded_responses_total", "Simulator-backed answers served from the model-only fallback while the breaker was open.", "counter", "", float64(m.DegradedResponses)},
		{"mrserved_stale_served_total", "Expired cache entries served under worker-pool saturation (serve-stale mode).", "counter", "", float64(m.StaleServed)},
	}
	seen := ""
	for _, mt := range metrics {
		if mt.name != seen {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", mt.name, mt.help, mt.name, mt.kind); err != nil {
				return err
			}
			seen = mt.name
		}
		name := mt.name
		if mt.labels != "" {
			name += "{" + mt.labels + "}"
		}
		if _, err := fmt.Fprintf(w, "%s %g\n", name, mt.value); err != nil {
			return err
		}
	}
	if err := writeHistogramFamily(w, "mrserved_request_duration_seconds",
		"End-to-end request handling latency by endpoint kind.", "kind", m.RequestDurations); err != nil {
		return err
	}
	return writeHistogramFamily(w, "mrserved_stage_duration_seconds",
		"Serving-stage span durations: queue wait, cache lookup, profile resolution, model solve, simulation, plan search.",
		"stage", m.StageDurations)
}

// writeHistogramFamily renders one labeled histogram family in the
// Prometheus text format: per label value the cumulative _bucket series
// (closed by le="+Inf"), then _sum and _count. Label values are emitted in
// sorted order so the exposition is deterministic.
func writeHistogramFamily(w io.Writer, name, help, label string, series map[string]obs.HistogramSnapshot) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name); err != nil {
		return err
	}
	keys := make([]string, 0, len(series))
	for k := range series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		snap := series[k]
		for _, b := range snap.Buckets {
			if _, err := fmt.Fprintf(w, "%s_bucket{%s=%q,le=%q} %d\n", name, label, k, fmt.Sprintf("%g", b.UpperBound), b.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n", name, label, k, snap.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum{%s=%q} %g\n", name, label, k, snap.Sum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count{%s=%q} %d\n", name, label, k, snap.Count); err != nil {
			return err
		}
	}
	return nil
}
