package service

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"hadoop2perf/internal/core"
	"hadoop2perf/internal/obs"
	"hadoop2perf/internal/yarn"
)

// This file implements the planner's deadline fast path: instead of
// evaluating every node count of the what-if grid, the search exploits the
// model's monotonicity in cluster size — response time does not increase
// when nodes are added — to locate the feasibility frontier by bisection in
// O(log N) predictions, then walks upward from the frontier pruning
// candidates whose cost provably cannot beat the incumbent.
//
// Monotonicity is an optimization assumption, not an axiom. For
// single-reducer jobs it holds across the calibrated cluster range (pinned
// by core's TestPredictMonotoneInNodes); multi-reducer predictions show
// localized 20-30% spikes at reducer-placement parity boundaries, where a
// bisection sample can provably never rule out cheaper feasible "islands"
// between its probes. The search therefore only bisects single-reducer
// combos, and even there verifies the assumption over every pair of points
// it actually evaluates — including the point just below the frontier —
// falling back to exhaustive evaluation of that axis on any observed
// violation. Multi-reducer combos are evaluated exhaustively inside the
// same response, so every plan is grid-exact. PlanRequest.Exhaustive forces
// the grid unconditionally.
//
// Every evaluation flows through the service's canonical-key cache, so
// neighboring sweeps (and the bisection + sweep phases themselves) share
// work across requests and across combos that the model cannot distinguish
// (e.g. scheduler policies).

// minSearchAxis is the node-axis length below which the exhaustive grid is
// used: bisection cannot save work on tiny axes.
const minSearchAxis = 6

// monoTol is the relative slack of the monotonicity verifier: a later
// (larger-cluster) response may exceed an earlier one by at most this
// fraction before the search declares the axis non-monotone. Tight enough
// to catch real spikes (≥0.1%), loose enough to ignore float noise — and,
// since the axis walk threads a warm-start chain through the model, the
// warm-vs-cold deviation as well: two compared points can deviate in
// opposite directions (one a cold cached value, one warm-computed), so the
// slack is twice the 1e-6-relative core warm contract.
const monoTol = 2e-6

// useSearch reports whether the deadline fast path applies: a deadline
// objective, model-backed evaluation (simulator results are noisy and
// policy-dependent), a cluster-size axis worth bisecting, and no explicit
// opt-out. Class-mix axes enter the fast path only when they form a
// hardware chain (chainOrdered): bisection's pruning assumes rt is
// non-increasing along the axis, which the runtime verifier can only check
// at *evaluated* points — an axis of incomparable mixes (trade-offs like
// {4 fast} vs {2 fast + 2 slow}) has no such ordering to assume, so it is
// evaluated exhaustively inside the same response instead.
func useSearch(req *PlanRequest, choices []nodeChoice) bool {
	return req.DeadlineSec > 0 && !req.UseSimulator && !req.Exhaustive && len(choices) >= minSearchAxis
}

// chainOrdered reports whether the total-node-sorted axis forms a hardware
// chain: every successive mix contains the previous one componentwise, so
// each step only *adds* nodes — the same "more hardware does not slow the
// job" premise the flat node axis bisects on. A plain node axis (no counts)
// is trivially a chain.
func chainOrdered(sorted []nodeChoice) bool {
	for i := 1; i < len(sorted); i++ {
		prev, cur := sorted[i-1].counts, sorted[i].counts
		if prev == nil {
			continue
		}
		for c := range cur {
			if cur[c] < prev[c] {
				return false
			}
		}
	}
	return true
}

// axisOutcome is the result of searching one node axis (one combo of the
// non-node grid dimensions).
type axisOutcome struct {
	cands  []PlanCandidate // evaluated candidates only
	idxs   []int           // axis index of each candidate (class-mix lookup)
	pruned int             // grid points skipped by bisection/dominance
	exact  bool            // false when the axis fell back to exhaustive
}

// axisEval evaluates the node axis at index i.
type axisEval func(i int) (rt float64, cached bool, err error)

// axisBatchEval evaluates several node-axis indices in one call, returning
// their response times and cached flags positionally. The planner backs it
// with predictEvalBatch, so sibling probes ride one batched model call
// (one cache pass, one worker slot, one warm chain).
type axisBatchEval func(idxs []int) (rts []float64, cached []bool, err error)

// searchBatchBand is the bracket width at or under which the bisection
// stops probing point-by-point and batch-evaluates the remaining band in
// one call. Matches the lane width of the core batch path
// (mva.BatchLanes) so a band rides a single batched solve.
const searchBatchBand = 4

// searchNodeAxis finds the grid-equivalent candidate set of one node axis
// under a deadline. nodes must be sorted ascending; weights carries each
// point's price weight (Σ count×price, node count when unpriced) — the
// cost objective is weights[i]·rt(i). eval serves the sequential
// bisection/sweep probes (and may thread single-owner warm-start state);
// parEval must be safe for concurrent use — it drives the exhaustive
// fallback's fan-out. batchEval, when non-nil, lets the bisection finish a
// narrow bracket (≤ searchBatchBand points) in one batched call instead of
// log-many sequential probes; nil keeps the pure point-by-point walk. It
// returns every evaluated point as a candidate (feasible points above the
// frontier, infeasible bisection probes below it) plus the count of pruned
// points.
//
// Exactness: under monotone response times, the returned set provably
// contains the axis's cheapest feasible candidate — a pruned point i either
// satisfies rt(i) > deadline (below the frontier) or has cost
// weights[i]·rt(i) ≥ weights[i]·rt(max) strictly above the incumbent best.
// On any observed monotonicity violation the axis is re-evaluated
// exhaustively instead.
func searchNodeAxis(nodes []int, weights []float64, deadline float64, eval, parEval axisEval, batchEval axisBatchEval) axisOutcome {
	n := len(nodes)
	rt := make([]float64, n)
	cached := make([]bool, n)
	evaluated := make([]bool, n)

	get := func(i int) (float64, bool) {
		if evaluated[i] {
			return rt[i], true
		}
		v, c, err := eval(i)
		if err != nil {
			return 0, false
		}
		evaluated[i] = true
		rt[i] = v
		cached[i] = c
		return v, true
	}
	// monotone verifies the non-increasing assumption over every evaluated
	// pair (it suffices to compare consecutive evaluated points).
	monotone := func() bool {
		prev := math.Inf(1)
		for i := 0; i < n; i++ {
			if !evaluated[i] {
				continue
			}
			if rt[i] > prev*(1+monoTol) {
				return false
			}
			prev = rt[i]
		}
		return true
	}
	exhaustive := func() axisOutcome { return exhaustiveAxis(nodes, parEval) }
	collect := func() axisOutcome {
		out := axisOutcome{exact: true}
		for i := 0; i < n; i++ {
			if evaluated[i] {
				out.cands = append(out.cands, PlanCandidate{
					Nodes: nodes[i], ResponseTime: rt[i], Cached: cached[i],
				})
				out.idxs = append(out.idxs, i)
			} else {
				out.pruned++
			}
		}
		return out
	}

	// Feasibility ceiling: if the largest cluster misses the deadline, no
	// smaller one meets it (monotone); the whole axis is infeasible. A lone
	// probe gives the monotonicity verifier nothing to check, so guard the
	// conclusion with a midpoint probe — an upward spike at the axis end
	// (rt(max) infeasible over a feasible interior) is caught here instead
	// of silently pruning a feasible plan.
	rtMax, ok := get(n - 1)
	if !ok {
		return exhaustive()
	}
	if rtMax > deadline {
		if mid := (n - 1) / 2; mid < n-1 {
			v, ok := get(mid)
			if !ok || !monotone() || v <= deadline {
				return exhaustive()
			}
		}
		return collect()
	}

	// Bisect the feasibility frontier: smallest index whose response meets
	// the deadline. The upper bracket is always an evaluated feasible point.
	lo, hi := 0, n-1
	for lo < hi {
		// Once the bracket narrows to the batch band, evaluate every
		// remaining unknown point — including the below-frontier guard
		// probe at lo-1 — in one batched call, then let the loop close
		// over the now-known values. One shot: on error the walk falls
		// back to point-by-point probes.
		if batchEval != nil && hi-lo+1 <= searchBatchBand {
			var idxs []int
			for i := max(lo-1, 0); i <= hi; i++ {
				if !evaluated[i] {
					idxs = append(idxs, i)
				}
			}
			if len(idxs) > 0 {
				if rts, cach, err := batchEval(idxs); err == nil {
					for j, i := range idxs {
						evaluated[i] = true
						rt[i] = rts[j]
						cached[i] = cach[j]
					}
					if !monotone() {
						return exhaustive()
					}
				}
			}
			batchEval = nil
			continue
		}
		mid := (lo + hi) / 2
		v, ok := get(mid)
		if !ok || !monotone() {
			return exhaustive()
		}
		if v <= deadline {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	frontier := lo

	// Guard the frontier from below: a feasible point right under it means
	// the axis dips (non-monotone) and bisection may have missed cheaper
	// feasible islands.
	if frontier > 0 {
		if _, ok := get(frontier - 1); !ok || !monotone() {
			return exhaustive()
		}
		if rt[frontier-1] <= deadline {
			return exhaustive()
		}
	}

	// Dominance sweep upward from the frontier. rt(max) lower-bounds every
	// response on the axis (monotone), so weights[i]·rt(max) lower-bounds
	// the cost of candidate i: once that optimistic cost exceeds the
	// incumbent best, i is dominated. Points already evaluated by the
	// bisection ride along for free.
	bestCost, bestRT := math.Inf(1), math.Inf(1)
	for i := frontier; i < n; i++ {
		if !evaluated[i] {
			if optimistic := weights[i] * rtMax; optimistic > bestCost {
				continue // dominated: true cost ≥ optimistic > best
			}
			if _, ok := get(i); !ok || !monotone() {
				return exhaustive()
			}
		}
		cost := weights[i] * rt[i]
		if cost < bestCost || (cost == bestCost && rt[i] < bestRT) {
			bestCost, bestRT = cost, rt[i]
		}
	}
	return collect()
}

// exhaustiveAxis evaluates every point of one node axis, grid-style:
// candidates fan out concurrently (the worker pool bounds real parallelism,
// the cache collapses duplicates) and evaluation errors are recorded per
// candidate while the rest of the axis still completes.
func exhaustiveAxis(nodes []int, eval axisEval) axisOutcome {
	out := axisOutcome{
		exact: false,
		cands: make([]PlanCandidate, len(nodes)),
		idxs:  make([]int, len(nodes)),
	}
	var wg sync.WaitGroup
	for i := range nodes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := &out.cands[i]
			c.Nodes = nodes[i]
			out.idxs[i] = i
			if v, cached, err := eval(i); err != nil {
				c.Err = err.Error()
			} else {
				c.ResponseTime, c.Cached = v, cached
			}
		}(i)
	}
	wg.Wait()
	return out
}

// planSearch answers a deadline query through per-combo cluster-size-axis
// searches run concurrently (the per-candidate predictions inside each combo
// are bounded by the service worker pool, like the grid path). Single-reducer
// combos on a chain-ordered axis ride the bisection fast path; multi-reducer
// combos — whose response curves are not reliably monotone in cluster size —
// and non-chain mix axes are evaluated exhaustively. On top of the chain
// premise, the bisection verifies monotonicity over every pair of points it
// actually evaluates and falls back to exhaustive on any violation.
//
// Each bisecting combo threads a warm-start chain through its walk: one
// pooled evaluator is borrowed for the axis, and every miss it computes
// seeds the next (bisection visits neighboring node counts by
// construction, exactly the locality PredictWarm exploits). When the
// bisection bracket narrows to the batch band, the remaining sibling
// probes ride one predictEvalBatch call on that chain instead of
// log-many sequential rounds. The exhaustive paths keep the parallel cold
// fan-out — their concurrency is worth more than the warm locality.
func (s *Service) planSearch(ctx context.Context, req PlanRequest, choices []nodeChoice, blocks []float64, reducers []int, policies []yarn.Policy) (PlanResponse, error) {
	sorted := append([]nodeChoice(nil), choices...)
	sort.SliceStable(sorted, func(a, b int) bool { return sorted[a].nodes < sorted[b].nodes })
	totals := make([]int, len(sorted))
	weights := make([]float64, len(sorted))
	for i, ch := range sorted {
		totals[i] = ch.nodes
		weights[i] = candidateSpec(&req, ch).PriceWeight()
	}
	chain := chainOrdered(sorted)

	type combo struct {
		block  float64
		red    int
		policy yarn.Policy
	}
	var combos []combo
	for _, b := range blocks {
		for _, red := range reducers {
			for _, pol := range policies {
				combos = append(combos, combo{block: b, red: red, policy: pol})
			}
		}
	}

	outcomes := make([]axisOutcome, len(combos))
	var wg sync.WaitGroup
	for ci := range combos {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			cb := combos[ci]
			parEval := func(i int) (float64, bool, error) {
				pr, err := s.predict(ctx, candidatePredictRequest(req, sorted[i], cb.block, cb.red))
				if err != nil {
					return 0, false, err
				}
				return pr.Prediction.ResponseTime, pr.Cached, nil
			}
			if cb.red == 1 && chain {
				warm := s.predictors.Get().(*core.Predictor)
				eval := func(i int) (float64, bool, error) {
					pr, err := s.predictEval(ctx, candidatePredictRequest(req, sorted[i], cb.block, cb.red), warm)
					if err != nil {
						return 0, false, err
					}
					return pr.Prediction.ResponseTime, pr.Cached, nil
				}
				// Sibling probes of a narrow bisection bracket ride one
				// batched call on the same chain (one cache pass, one
				// worker slot, every miss seeding the next).
				batchEval := func(idxs []int) ([]float64, []bool, error) {
					reqs := make([]PredictRequest, len(idxs))
					for j, i := range idxs {
						reqs[j] = candidatePredictRequest(req, sorted[i], cb.block, cb.red)
					}
					prs, err := s.predictEvalBatch(ctx, reqs, warm)
					if err != nil {
						return nil, nil, err
					}
					rts := make([]float64, len(prs))
					cach := make([]bool, len(prs))
					for j, pr := range prs {
						rts[j] = pr.Prediction.ResponseTime
						cach[j] = pr.Cached
					}
					return rts, cach, nil
				}
				outcomes[ci] = searchNodeAxis(totals, weights, req.DeadlineSec, eval, parEval, batchEval)
				s.predictors.Put(warm)
			} else {
				outcomes[ci] = exhaustiveAxis(totals, parEval)
			}
		}(ci)
	}
	wg.Wait()

	// Per-combo predict counts on the trace: how many node-axis points each
	// block×reducer×policy combo actually evaluated (vs pruned) — the
	// ?debug=timings view of the search's effectiveness.
	if tr := obs.FromContext(ctx); tr != nil {
		for ci, out := range outcomes {
			cb := combos[ci]
			tr.AddCount(fmt.Sprintf("planCombo_b%g_r%d_%s_evals", cb.block, cb.red, cb.policy),
				int64(len(out.cands)))
		}
	}

	resp := PlanResponse{Strategy: StrategySearch}
	for ci, out := range outcomes {
		cb := combos[ci]
		for k, c := range out.cands {
			c.ClassCounts = sorted[out.idxs[k]].counts
			c.BlockSizeMB = cb.block
			c.Reducers = cb.red
			c.Policy = cb.policy
			resp.Candidates = append(resp.Candidates, c)
		}
		resp.Pruned += out.pruned
	}
	finalizePlan(&resp, &req)
	return partialOnDeadline(ctx, resp)
}

// finalizePlan computes the derived candidate fields, ranks the grid and
// selects Best — shared by the grid and search paths.
func finalizePlan(resp *PlanResponse, req *PlanRequest) {
	deadline := req.DeadlineSec
	for i := range resp.Candidates {
		c := &resp.Candidates[i]
		if c.Err != "" {
			continue
		}
		resp.Evaluated++
		c.NodeSeconds = c.ResponseTime * float64(c.Nodes)
		c.Cost = c.ResponseTime * candidateSpec(req, nodeChoice{nodes: c.Nodes, counts: c.ClassCounts}).PriceWeight()
		c.Feasible = deadline > 0 && c.ResponseTime <= deadline
	}
	sortCandidates(resp.Candidates, deadline > 0)
	if len(resp.Candidates) > 0 {
		top := resp.Candidates[0]
		if top.Err == "" && (deadline <= 0 || top.Feasible) {
			resp.Best = &resp.Candidates[0]
		}
	}
}
