package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"hadoop2perf/internal/cluster"
	"hadoop2perf/internal/workload"
)

// fakeClock is an adjustable time source for bucket math.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func withClock(l *rateLimiter, c *fakeClock) { l.now = c.now }

func TestRateLimiterBucketMath(t *testing.T) {
	clk := newFakeClock()
	l := newRateLimiter(2, 4) // 2 req/s sustained, bursts of 4
	withClock(l, clk)

	// The full burst is admitted back to back...
	for i := 0; i < 4; i++ {
		if ok, _ := l.allow("c"); !ok {
			t.Fatalf("burst request %d denied", i)
		}
	}
	// ...then the bucket is dry: denial with a sensible retry hint.
	ok, retry := l.allow("c")
	if ok {
		t.Fatal("5th immediate request admitted")
	}
	if retry <= 0 || retry > time.Second {
		t.Errorf("retryAfter = %v, want (0, 1s] at 2 req/s", retry)
	}

	// Refill at the sustained rate: 1s buys 2 tokens.
	clk.advance(time.Second)
	for i := 0; i < 2; i++ {
		if ok, _ := l.allow("c"); !ok {
			t.Fatalf("post-refill request %d denied", i)
		}
	}
	if ok, _ := l.allow("c"); ok {
		t.Error("3rd post-refill request admitted at 2 req/s")
	}

	// Clients are independent buckets.
	if ok, _ := l.allow("other"); !ok {
		t.Error("fresh client denied by another client's exhaustion")
	}

	// Long idle caps the bucket at burst, not unbounded credit.
	clk.advance(time.Hour)
	admitted := 0
	for i := 0; i < 10; i++ {
		if ok, _ := l.allow("c"); ok {
			admitted++
		}
	}
	if admitted != 4 {
		t.Errorf("after long idle %d requests admitted, want burst=4", admitted)
	}
}

func TestRateLimiterPrunesIdleClients(t *testing.T) {
	clk := newFakeClock()
	l := newRateLimiter(100, 1)
	withClock(l, clk)
	for i := 0; i < maxRateClients; i++ {
		l.allow("c" + strconv.Itoa(i))
	}
	if len(l.clients) != maxRateClients {
		t.Fatalf("table size %d", len(l.clients))
	}
	// All buckets refill within 10ms at 100 req/s; the next new client
	// triggers a prune instead of unbounded growth.
	clk.advance(time.Second)
	l.allow("fresh")
	if len(l.clients) >= maxRateClients {
		t.Errorf("table not pruned: %d clients", len(l.clients))
	}
}

func TestClientKey(t *testing.T) {
	for in, want := range map[string]string{
		"10.1.2.3:5555":    "10.1.2.3",
		"10.1.2.3:6666":    "10.1.2.3", // same host, other port: same bucket
		"[2001:db8::1]:80": "2001:db8::1",
		"garbage":          "garbage",
	} {
		if got := clientKey(in); got != want {
			t.Errorf("clientKey(%q) = %q, want %q", in, got, want)
		}
	}
}

// The middleware end to end: over-limit /v1/* requests get 429 with a
// Retry-After header and count into the metric; /healthz is never limited.
func TestRateLimitMiddleware(t *testing.T) {
	svc := New(Options{Workers: 2, CacheSize: 8})
	h := NewHandler(svc, ServerConfig{Timeout: 30 * time.Second, RateLimit: 1, RateBurst: 2})

	job, err := workload.NewJob(0, 256, 128, 1, workload.WordCount())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Predict(context.Background(), PredictRequest{Spec: cluster.Default(2), Job: job}); err != nil {
		t.Fatal(err) // warm the cache so limited requests would be cheap hits
	}
	body := `{"cluster":{"nodes":2},"job":{"inputMB":256}}`
	do := func(path, addr string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
		if path == "/healthz" {
			req = httptest.NewRequest(http.MethodGet, path, nil)
		}
		req.RemoteAddr = addr
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		return w
	}

	codes := []int{}
	for i := 0; i < 4; i++ {
		codes = append(codes, do("/v1/predict", "10.0.0.1:1000").Code)
	}
	if codes[0] != http.StatusOK || codes[1] != http.StatusOK {
		t.Fatalf("burst requests rejected: %v", codes)
	}
	if codes[2] != http.StatusTooManyRequests || codes[3] != http.StatusTooManyRequests {
		t.Fatalf("over-limit requests not rejected: %v", codes)
	}

	// The 429 carries a Retry-After and a JSON error body.
	w := do("/v1/predict", "10.0.0.1:1000")
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("code = %d", w.Code)
	}
	if ra, err := strconv.Atoi(w.Header().Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("Retry-After = %q", w.Header().Get("Retry-After"))
	}
	var errBody map[string]any
	if err := json.NewDecoder(w.Body).Decode(&errBody); err != nil || errBody["error"] == "" {
		t.Errorf("429 body = %v (%v)", errBody, err)
	}

	// Another client is unaffected; health checks always pass.
	if w := do("/v1/predict", "10.0.0.2:1000"); w.Code != http.StatusOK {
		t.Errorf("second client rejected: %d", w.Code)
	}
	for i := 0; i < 10; i++ {
		if w := do("/healthz", "10.0.0.1:1000"); w.Code != http.StatusOK {
			t.Fatalf("healthz rate limited: %d", w.Code)
		}
	}

	if got := svc.Metrics().RateLimited; got < 3 {
		t.Errorf("RateLimited = %d, want >= 3", got)
	}

	// The metric rides the Prometheus exposition.
	req := httptest.NewRequest(http.MethodGet, "/v1/metrics", nil)
	req.RemoteAddr = "10.0.0.3:1"
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	text, _ := io.ReadAll(rw.Body)
	if !strings.Contains(string(text), "mrserved_rate_limited_total") {
		t.Error("mrserved_rate_limited_total missing from exposition")
	}
}

// Rate limiting defaults to off: the zero ServerConfig serves unlimited.
func TestRateLimitDisabledByDefault(t *testing.T) {
	svc := New(Options{Workers: 1, CacheSize: 4})
	h := NewHandler(svc, ServerConfig{})
	for i := 0; i < 50; i++ {
		req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
		req.RemoteAddr = "10.9.9.9:1"
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			t.Fatalf("request %d: %d", i, w.Code)
		}
	}
	if svc.Metrics().RateLimited != 0 {
		t.Error("RateLimited counted with limiting disabled")
	}
}
