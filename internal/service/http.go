package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"time"

	"hadoop2perf/internal/admit"
	"hadoop2perf/internal/cluster"
	"hadoop2perf/internal/core"
	"hadoop2perf/internal/fault"
	"hadoop2perf/internal/mrsim"
	"hadoop2perf/internal/obs"
	"hadoop2perf/internal/timeline"
	"hadoop2perf/internal/trace"
	"hadoop2perf/internal/workflow"
	"hadoop2perf/internal/workload"
	"hadoop2perf/internal/yarn"
)

// ServerConfig tunes the HTTP layer.
type ServerConfig struct {
	// Timeout bounds one request's handling, including queueing for a pool
	// slot. Zero (the default) selects per-kind budgets: 10s for the cheap
	// model-backed endpoints (predict, compare) and 30s for the expensive
	// simulator/plan-backed ones (simulate, plan, calibrate). A positive
	// value applies uniformly to every kind. Either way a client-supplied
	// budget — the X-Deadline-Ms header or the body's timeoutSec field —
	// overrides the server default, clamped to 5 minutes.
	Timeout time.Duration
	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64
	// CalibrateMaxBodyBytes bounds /v1/calibrate bodies separately (default
	// 16 MiB): trace documents carry per-task records and outgrow the
	// request-sized default long before they stop being reasonable inputs.
	CalibrateMaxBodyBytes int64
	// RateLimit is the per-client sustained request rate over the /v1/*
	// endpoints, in requests per second (token bucket keyed on the client
	// IP). Zero disables rate limiting. Rejected requests get HTTP 429 with
	// a Retry-After header and count into mrserved_rate_limited_total;
	// /healthz is never limited so liveness probes cannot be starved.
	RateLimit float64
	// RateBurst is the token-bucket depth — how many requests a client may
	// issue back to back before the sustained rate applies (default
	// max(1, 2×RateLimit)).
	RateBurst int
	// AccessLog, when non-nil, receives one structured line per handled
	// request (request ID, method, path, status, duration, and the trace's
	// cache/warm-start/iteration counters) plus a Warn line with the full
	// per-stage breakdown for requests slower than SlowRequestThreshold and
	// for rate-limited rejections. Nil disables access logging entirely, so
	// library users and benchmarks pay no logging cost.
	AccessLog *slog.Logger
	// SlowRequestThreshold is the latency past which a request logs at Warn
	// with its stage timings (default 10s; meaningful only with AccessLog).
	SlowRequestThreshold time.Duration
}

const (
	// defaultCheapTimeout and defaultExpensiveTimeout are the per-kind
	// handling budgets used when ServerConfig.Timeout is zero: model-backed
	// endpoints answer in milliseconds and deserve a tight bound; the
	// simulator and plan sweeps legitimately run for seconds.
	defaultCheapTimeout     = 10 * time.Second
	defaultExpensiveTimeout = 30 * time.Second
	// maxClientDeadline caps client-supplied deadline budgets so one caller
	// cannot pin a worker slot indefinitely.
	maxClientDeadline = 5 * time.Minute

	defaultMaxBodyBytes          = 1 << 20
	defaultCalibrateMaxBodyBytes = 16 << 20
	defaultSlowRequestThreshold  = 10 * time.Second
)

// RequestIDHeader is the header mrserved reads a caller-supplied request ID
// from (when valid — see obs.ValidRequestID) and always echoes the
// effective ID on. The constant uses Go's canonical MIME spelling so
// Header.Set on the hot path never re-canonicalizes; header names are
// case-insensitive on the wire.
const RequestIDHeader = "X-Request-Id"

// DeadlineHeader carries a client-supplied handling budget in milliseconds.
// It wins over the body's timeoutSec field and the server default, clamped
// to maxClientDeadline; the budget rides the request context end to end
// (pool queueing, cache, model, simulator) and activates the admission
// controller's deadline-aware shedding.
const DeadlineHeader = "X-Deadline-Ms"

// Route patterns of the mrserved HTTP API, in registration order. NewHandler
// registers exactly these; Routes exposes the list so docs-coverage tests
// can hold docs/API.md to it.
const (
	routeHealthz   = "GET /healthz"
	routeReadyz    = "GET /readyz"
	routeMetrics   = "GET /v1/metrics"
	routeProfiles  = "GET /v1/profiles"
	routePredict   = "POST /v1/predict"
	routeSimulate  = "POST /v1/simulate"
	routeCompare   = "POST /v1/compare"
	routePlan      = "POST /v1/plan"
	routeCalibrate = "POST /v1/calibrate"
)

// Routes returns the method+pattern of every endpoint NewHandler registers —
// the single authoritative route list shared by the mux, docs/API.md and the
// coverage tests binding the two.
func Routes() []string {
	return []string{
		routeHealthz, routeReadyz, routeMetrics, routeProfiles,
		routePredict, routeSimulate, routeCompare, routePlan, routeCalibrate,
	}
}

// NewHandler builds the mrserved HTTP API over a Service:
//
//	GET  /healthz      — liveness (answers as long as the process serves)
//	GET  /readyz       — readiness: 503 while draining or overloaded
//	GET  /v1/metrics   — service counters: Prometheus text exposition by
//	                     default, JSON under Accept: application/json
//	GET  /v1/profiles  — live calibrated profiles (name, version, expiry)
//	POST /v1/predict   — analytic model prediction
//	POST /v1/simulate  — discrete-event simulator run (median of seeds)
//	POST /v1/compare   — model vs. simulator validation
//	POST /v1/plan      — parallel what-if grid search
//	POST /v1/calibrate — fit a named profile from a job-history trace
//
// docs/API.md is the complete wire reference.
func NewHandler(s *Service, cfg ServerConfig) http.Handler {
	cfg.applyDefaults()
	var h http.Handler = recoverMiddleware(cfg, newMux(s, cfg))
	if cfg.RateLimit > 0 {
		burst := cfg.RateBurst
		if burst <= 0 {
			burst = int(math.Max(1, 2*cfg.RateLimit))
		}
		h = rateLimitMiddleware(s, newRateLimiter(cfg.RateLimit, burst), cfg, h)
	}
	return traceMiddleware(s, cfg, h)
}

// applyDefaults fills the zero ServerConfig fields. Timeout deliberately
// keeps its zero value: zero selects the per-kind defaults at endpoint
// construction (see effectiveTimeout).
func (cfg *ServerConfig) applyDefaults() {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = defaultMaxBodyBytes
	}
	if cfg.CalibrateMaxBodyBytes <= 0 {
		cfg.CalibrateMaxBodyBytes = defaultCalibrateMaxBodyBytes
	}
	if cfg.SlowRequestThreshold <= 0 {
		cfg.SlowRequestThreshold = defaultSlowRequestThreshold
	}
}

// newMux registers the route handlers (cfg must already have its defaults
// applied); NewHandler wraps the result in the trace and rate-limit
// middleware.
func newMux(s *Service, cfg ServerConfig) *http.ServeMux {
	started := time.Now()
	version, goVersion := buildInfo()
	mux := http.NewServeMux()
	mux.HandleFunc(routeHealthz, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, r, http.StatusOK, healthWire{
			Status:        "ok",
			Version:       version,
			GoVersion:     goVersion,
			UptimeSeconds: time.Since(started).Seconds(),
		})
	})
	mux.HandleFunc(routeReadyz, func(w http.ResponseWriter, r *http.Request) {
		switch {
		case s.Draining():
			writeJSON(w, r, http.StatusServiceUnavailable, readyWire{Status: "draining"})
		case s.Overloaded():
			writeJSON(w, r, http.StatusServiceUnavailable, readyWire{Status: "overloaded"})
		default:
			writeJSON(w, r, http.StatusOK, readyWire{Status: "ready"})
		}
	})
	mux.HandleFunc(routeMetrics, func(w http.ResponseWriter, r *http.Request) {
		m := s.Metrics()
		if wantsJSON(r.Header.Get("Accept")) {
			writeJSON(w, r, http.StatusOK, m)
			return
		}
		w.Header().Set("Content-Type", prometheusContentType)
		w.WriteHeader(http.StatusOK)
		_ = writePrometheus(w, m)
	})
	mux.HandleFunc(routeProfiles, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, r, http.StatusOK, profilesWire{Profiles: s.Profiles()})
	})
	mux.HandleFunc(routePredict, jsonEndpoint(s, cfg, admit.ClassCheap, func(ctx context.Context, req predictWire) (any, error) {
		pr, err := req.toRequest()
		if err != nil {
			return nil, err
		}
		resp, err := s.Predict(ctx, pr)
		if err != nil {
			return nil, err
		}
		return predictResultWire{
			ResponseTime:    resp.Prediction.ResponseTime,
			Iterations:      resp.Prediction.Iterations,
			InnerIterations: resp.Prediction.InnerIterations,
			Converged:       resp.Prediction.Converged,
			Estimator:       pr.Estimator,
			Cached:          resp.Cached,
			Stale:           resp.Stale,
			Profile:         resp.Profile,
			ProfileVersion:  resp.ProfileVersion,
			Workflow:        resp.Workflow,
		}, nil
	}))
	calCfg := cfg
	calCfg.MaxBodyBytes = cfg.CalibrateMaxBodyBytes
	mux.HandleFunc(routeCalibrate, jsonEndpoint(s, calCfg, admit.ClassExpensive, func(ctx context.Context, req calibrateWire) (any, error) {
		cr, err := req.toRequest()
		if err != nil {
			return nil, err
		}
		resp, err := s.Calibrate(ctx, cr)
		if err != nil {
			return nil, err
		}
		return calibrateResultWire{
			Profile: resp.Profile,
			Classes: classWire(resp.Classes),
		}, nil
	}))
	mux.HandleFunc(routeSimulate, jsonEndpoint(s, cfg, admit.ClassExpensive, func(ctx context.Context, req simulateWire) (any, error) {
		sr, err := req.toRequest()
		if err != nil {
			return nil, err
		}
		resp, err := s.Simulate(ctx, sr)
		if err != nil {
			return nil, err
		}
		out := simulateResultWire{
			MeanResponse: resp.Result.MeanResponse(),
			Makespan:     resp.Result.Makespan,
			Events:       resp.Result.Events,
			Quantiles:    resp.Quantiles,
			FailedSeeds:  resp.FailedSeeds,
			Faults:       resp.Result.Faults,
			Cached:       resp.Cached,
			Degraded:     resp.Degraded,
			Stale:        resp.Stale,
		}
		for _, j := range resp.Result.Jobs {
			out.Jobs = append(out.Jobs, simJobWire{ID: j.JobID, Response: j.Response})
		}
		return out, nil
	}))
	mux.HandleFunc(routeCompare, jsonEndpoint(s, cfg, admit.ClassCheap, func(ctx context.Context, req compareWire) (any, error) {
		cr, err := req.toRequest()
		if err != nil {
			return nil, err
		}
		return s.Compare(ctx, cr)
	}))
	mux.HandleFunc(routePlan, jsonEndpoint(s, cfg, admit.ClassExpensive, func(ctx context.Context, req planWire) (any, error) {
		pr, err := req.toRequest()
		if err != nil {
			return nil, err
		}
		return s.Plan(ctx, pr)
	}))
	return mux
}

// healthWire is the GET /healthz response body.
type healthWire struct {
	// Status is always "ok" when the handler answers at all.
	Status string `json:"status"`
	// Version is the serving module's build version ("unknown" for
	// non-module builds, e.g. go test binaries).
	Version string `json:"version"`
	// GoVersion is the toolchain the binary was built with.
	GoVersion string `json:"goVersion"`
	// UptimeSeconds is the age of this handler (seconds since NewHandler).
	UptimeSeconds float64 `json:"uptimeSeconds"`
}

// readyWire is the GET /readyz response body. Unlike /healthz (liveness:
// "is the process serving at all"), readiness answers "should a balancer
// route new traffic here" — 503 with status "draining" once shutdown drain
// began, or "overloaded" while the admission queue sits at its bound.
type readyWire struct {
	Status string `json:"status"` // "ready", "draining" or "overloaded"
}

// buildInfo extracts the module version and toolchain from the binary's
// embedded build metadata.
func buildInfo() (version, goVersion string) {
	version, goVersion = "unknown", runtime.Version()
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		version = bi.Main.Version
	}
	return version, goVersion
}

// traceWriter is the per-request wrapper the trace middleware hands down
// the handler stack: it carries the request's Trace to the response-writing
// layer (writeJSON splices the ID from here; jsonEndpoint threads it into
// the handler context) and records the status code for the access log. One
// small wrapper replaces both a cloned *http.Request and a separate
// status recorder — the trace must not tax the serving hot path.
type traceWriter struct {
	http.ResponseWriter
	trace  obs.Trace
	status int
}

// WriteHeader records the status before delegating.
func (tw *traceWriter) WriteHeader(code int) {
	tw.status = code
	tw.ResponseWriter.WriteHeader(code)
}

// Unwrap exposes the underlying writer to http.ResponseController.
func (tw *traceWriter) Unwrap() http.ResponseWriter { return tw.ResponseWriter }

// traceOf returns the request's Trace when w came through traceMiddleware
// (nil otherwise — a bare mux serves untraced).
func traceOf(w http.ResponseWriter) *obs.Trace {
	if tw, ok := w.(*traceWriter); ok {
		return &tw.trace
	}
	return nil
}

// kindOf maps a request path onto its request-histogram kind index (see
// RequestKinds for the label domain).
func kindOf(path string) int {
	switch path {
	case "/healthz", "/readyz":
		return kindHealthz
	case "/v1/metrics":
		return kindMetrics
	case "/v1/profiles":
		return kindProfiles
	case "/v1/predict":
		return kindPredict
	case "/v1/simulate":
		return kindSimulate
	case "/v1/compare":
		return kindCompare
	case "/v1/plan":
		return kindPlan
	case "/v1/calibrate":
		return kindCalibrate
	}
	return kindOther
}

// traceMiddleware is the outermost handler layer: it adopts a valid inbound
// X-Request-ID (or assigns a fresh one), hands an obs.Trace down the stack
// on the response writer (jsonEndpoint threads it into the handler context
// for the engine), echoes the ID on the response header, records the
// end-to-end latency into the kind's histogram, and emits the structured
// access-log line (plus a Warn line with the stage breakdown for requests
// over SlowRequestThreshold).
func traceMiddleware(s *Service, cfg ServerConfig, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if !obs.ValidRequestID(id) {
			id = obs.NewRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		tw := &traceWriter{ResponseWriter: w, status: http.StatusOK}
		tw.trace.ID = id
		start := time.Now()
		next.ServeHTTP(tw, r)
		d := time.Since(start)
		s.observeRequest(kindOf(r.URL.Path), d)
		if cfg.AccessLog == nil {
			return
		}
		attrs := []any{
			"requestId", id,
			"method", r.Method,
			"path", r.URL.Path,
			"status", tw.status,
			"durationMs", float64(d.Microseconds()) / 1e3,
		}
		snap := tw.trace.Snapshot()
		// The trace's request-scoped counters (cache hit/miss, warm starts,
		// model iteration counts) ride the same line, in a fixed order.
		for _, k := range []string{
			"cacheHits", "cacheMisses", "predicts", "warmStarted",
			"outerIterations", "innerIterations", "planCandidates",
		} {
			if v, ok := snap.Counts[k]; ok {
				attrs = append(attrs, k, v)
			}
		}
		if d >= cfg.SlowRequestThreshold {
			stages := make(map[string]float64, len(snap.Stages))
			for name, st := range snap.Stages {
				stages[name] = st.Seconds
			}
			attrs = append(attrs, "slow", true, "stageSeconds", stages)
			cfg.AccessLog.Warn("slow request", attrs...)
			return
		}
		cfg.AccessLog.Info("request", attrs...)
	})
}

// rateLimitMiddleware rejects over-limit /v1/* requests with 429 +
// Retry-After before any body is read or pool slot taken. /healthz (and any
// future non-/v1 path) bypasses the limiter: liveness probes must not
// compete with traffic for tokens. Rejections are logged with the rejected
// client key and request ID, so shed load stays attributable.
func rateLimitMiddleware(s *Service, limiter *rateLimiter, cfg ServerConfig, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/") {
			key := clientKey(r.RemoteAddr)
			if ok, retry := limiter.allow(key); !ok {
				s.rateLimited.Add(1)
				secs := int(math.Ceil(retry.Seconds()))
				if secs < 1 {
					secs = 1
				}
				w.Header().Set("Retry-After", strconv.Itoa(secs))
				if cfg.AccessLog != nil {
					cfg.AccessLog.Warn("rate limited",
						"requestId", traceOf(w).RequestID(),
						"client", key,
						"path", r.URL.Path,
						"retryAfterSec", secs)
				}
				writeError(w, r, http.StatusTooManyRequests, errors.New("rate limit exceeded; retry later"))
				return
			}
		}
		next.ServeHTTP(w, r)
	})
}

// validationError marks client mistakes (HTTP 400, vs. 500 for the rest).
type validationError struct{ err error }

func (e validationError) Error() string { return e.err.Error() }

// recoverMiddleware isolates handler panics: one poisoned request logs the
// stack and answers a structured 500 instead of tearing down the connection
// (and, under http.Server, noisily killing its goroutine). http.ErrAbortHandler
// re-panics — it is the sanctioned way to abort a response mid-stream.
func recoverMiddleware(cfg ServerConfig, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if p == http.ErrAbortHandler {
				panic(p)
			}
			if cfg.AccessLog != nil {
				cfg.AccessLog.Error("handler panic",
					"requestId", traceOf(w).RequestID(),
					"method", r.Method,
					"path", r.URL.Path,
					"panic", fmt.Sprint(p),
					"stack", string(debug.Stack()))
			}
			writeError(w, r, http.StatusInternalServerError, errors.New("internal error"))
		}()
		next.ServeHTTP(w, r)
	})
}

// deadlineFields is embedded in every POST wire type: an optional
// client-supplied handling budget in seconds, riding the body for clients
// that cannot set headers. The X-Deadline-Ms header wins when both are set.
type deadlineFields struct {
	TimeoutSec float64 `json:"timeoutSec,omitempty"`
}

// clientTimeoutSec exposes the budget to jsonEndpoint through a plain
// interface, keeping the generic code free of per-wire-type switches.
func (d deadlineFields) clientTimeoutSec() float64 { return d.TimeoutSec }

// clientBudget extracts the request's deadline budget: the X-Deadline-Ms
// header when present (wins), else the body's timeoutSec field. Zero means
// "no client budget" (the server default applies); negative or malformed
// values are client errors.
func clientBudget(r *http.Request, req any) (time.Duration, error) {
	if h := r.Header.Get(DeadlineHeader); h != "" {
		ms, err := strconv.ParseFloat(h, 64)
		if err != nil || ms <= 0 {
			return 0, validationError{fmt.Errorf("%s: want a positive millisecond count, got %q", DeadlineHeader, h)}
		}
		return time.Duration(ms * float64(time.Millisecond)), nil
	}
	if cb, ok := req.(interface{ clientTimeoutSec() float64 }); ok {
		switch sec := cb.clientTimeoutSec(); {
		case sec > 0:
			return time.Duration(sec * float64(time.Second)), nil
		case sec < 0:
			return 0, validationError{fmt.Errorf("timeoutSec must be positive, got %g", sec)}
		}
	}
	return 0, nil
}

// effectiveTimeout resolves one request's handling budget: a client budget
// wins (clamped to maxClientDeadline), then a configured uniform Timeout,
// then the request class's default.
func effectiveTimeout(cfg ServerConfig, class admit.Class, budget time.Duration) time.Duration {
	if budget > 0 {
		if budget > maxClientDeadline {
			budget = maxClientDeadline
		}
		return budget
	}
	if cfg.Timeout > 0 {
		return cfg.Timeout
	}
	if class == admit.ClassCheap {
		return defaultCheapTimeout
	}
	return defaultExpensiveTimeout
}

// jsonEndpoint wires one POST endpoint: decode, resolve the deadline
// budget, pass admission, handle, encode. Validation failures map to 400,
// shed admissions to 503 with Retry-After, timeouts to 504. The request's
// trace rides the handler context, so the engine's stages and counters
// (admission → pool → cache → profiles → planner → core) land on it.
func jsonEndpoint[Req any](s *Service, cfg ServerConfig, class admit.Class, handle func(context.Context, Req) (any, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx := r.Context()
		if tr := traceOf(w); tr != nil {
			ctx = obs.WithTrace(ctx, tr)
		}
		var req Req
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, cfg.MaxBodyBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, r, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
			return
		}
		budget, err := clientBudget(r, req)
		if err != nil {
			writeError(w, r, http.StatusBadRequest, err)
			return
		}
		ctx, cancel := context.WithTimeout(ctx, effectiveTimeout(cfg, class, budget))
		defer cancel()
		admitStart := time.Now()
		ticket, err := s.admission.Admit(ctx, class)
		s.endSpan(obs.FromContext(ctx), obs.StageAdmission, admitStart)
		if err != nil {
			writeError(w, r, http.StatusServiceUnavailable, err)
			return
		}
		defer ticket.Done()
		out, err := handle(ctx, req)
		if err != nil {
			// Client faults (malformed wire input, rejected validation) map
			// to 400; anything the engine failed at after accepting the
			// request is a genuine 500 so monitoring sees it.
			status := http.StatusInternalServerError
			var verr validationError
			switch {
			case errors.Is(err, context.DeadlineExceeded):
				status = http.StatusGatewayTimeout
			case errors.Is(err, context.Canceled):
				status = 499 // client closed request
			case errors.As(err, &verr), IsInvalidRequest(err):
				status = http.StatusBadRequest
			}
			writeError(w, r, status, err)
			return
		}
		writeJSON(w, r, http.StatusOK, out)
	}
}

// wantsTimings reports whether the request opted into the per-stage timings
// block via ?debug=timings. The RawQuery gate keeps the common no-query
// path free of URL parsing.
func wantsTimings(r *http.Request) bool {
	if r.URL.RawQuery == "" {
		return false
	}
	return r.URL.Query().Get("debug") == "timings"
}

// jsonBufPool recycles the scratch buffers of writeJSON across requests.
var jsonBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// writeJSON renders one response body, splicing the request ID (and, under
// ?debug=timings, the stage-timing block) into object payloads whenever the
// request carries a trace. The traced path marshals the payload once into a
// pooled buffer, hand-writes the indented envelope prefix and indents the
// payload in a single pass — tracing must not tax the cache-hit fast path.
// (Compact Encode + json.Indent into a pooled buffer beats Encoder.SetIndent,
// which allocates a fresh internal indent buffer per encoder.)
func writeJSON(w http.ResponseWriter, r *http.Request, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	tr := traceOf(w)
	if tr == nil {
		w.WriteHeader(status)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(v)
		return
	}
	scratch := jsonBufPool.Get().(*bytes.Buffer)
	out := jsonBufPool.Get().(*bytes.Buffer)
	defer func() {
		scratch.Reset()
		out.Reset()
		jsonBufPool.Put(scratch)
		jsonBufPool.Put(out)
	}()
	if err := json.NewEncoder(scratch).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	payload := scratch.Bytes()
	payload = payload[:len(payload)-1] // Encode appends '\n'
	if len(payload) < 2 || payload[0] != '{' {
		// Non-object payloads pass through without an envelope.
		if err := json.Indent(out, payload, "", "  "); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	} else {
		// The id is written unescaped: request IDs are generated hex or
		// validated [0-9A-Za-z._-] (obs.ValidRequestID), so no JSON escaping
		// can apply.
		out.Grow(len(payload) + 64)
		out.WriteString("{\n  \"requestId\": \"")
		out.WriteString(tr.ID)
		out.WriteByte('"')
		if wantsTimings(r) {
			t, err := json.MarshalIndent(tr.Snapshot(), "  ", "  ")
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			out.WriteString(",\n  \"timings\": ")
			out.Write(t)
		}
		if len(payload) == 2 { // empty payload object: nothing to splice
			out.WriteString("\n}")
		} else {
			out.WriteByte(',')
			pos := out.Len()
			if err := json.Indent(out, payload, "", "  "); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			// The payload's opening '{' — our prefix already opened the
			// object, so it degrades to insignificant whitespace.
			out.Bytes()[pos] = ' '
		}
	}
	out.WriteByte('\n')
	w.WriteHeader(status)
	_, _ = w.Write(out.Bytes())
}

// errorWire is the structured error envelope: every error response carries
// "error" (and "requestId" via writeJSON's splice); retryable rejections
// (429, 503, 504) also carry the machine-readable shed reason and the
// Retry-After hint mirrored into the body, so clients behind proxies that
// strip headers still see it.
type errorWire struct {
	Error string `json:"error"`
	// Reason is the admission shed reason ("queue_full", "deadline",
	// "draining") when the rejection came from the admission controller.
	Reason string `json:"reason,omitempty"`
	// RetryAfterSec mirrors the Retry-After response header.
	RetryAfterSec int `json:"retryAfterSec,omitempty"`
}

// writeError renders one structured error body, attaching Retry-After to
// every retryable status (429/503/504; a default of 1s when no layer
// supplied a better estimate) and the shed reason for admission rejections.
func writeError(w http.ResponseWriter, r *http.Request, status int, err error) {
	body := errorWire{Error: err.Error()}
	if se, ok := admit.IsShed(err); ok {
		body.Reason = se.Reason
		secs := int(math.Ceil(se.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	switch status {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		if w.Header().Get("Retry-After") == "" {
			w.Header().Set("Retry-After", "1")
		}
		if secs, convErr := strconv.Atoi(w.Header().Get("Retry-After")); convErr == nil {
			body.RetryAfterSec = secs
		}
	}
	writeJSON(w, r, status, body)
}

// clusterWire selects a cluster: the calibrated default scaled to "nodes", a
// heterogeneous class table riding the default container sizing, or a fully
// custom spec (whose JSON form also accepts "classes" — see cluster.Spec).
type clusterWire struct {
	Nodes  int           `json:"nodes,omitempty"`
	Custom *cluster.Spec `json:"custom,omitempty"`
	// Classes builds a heterogeneous cluster from the calibrated default's
	// container configuration plus the given hardware classes.
	Classes []cluster.NodeClass `json:"classes,omitempty"`
}

func (c clusterWire) spec() (cluster.Spec, error) {
	if c.Custom != nil {
		return *c.Custom, nil
	}
	if len(c.Classes) > 0 {
		if c.Nodes > 0 {
			return cluster.Spec{}, validationError{errors.New("cluster.nodes and cluster.classes are mutually exclusive")}
		}
		spec := cluster.Default(0)
		spec.Classes = c.Classes
		return spec, nil
	}
	if c.Nodes <= 0 {
		return cluster.Spec{}, validationError{errors.New("cluster.nodes must be positive (or supply cluster.classes or cluster.custom)")}
	}
	return cluster.Default(c.Nodes), nil
}

// jobWire describes one job: a named built-in profile ("wordcount", "grep",
// "terasort") or a full custom profile.
type jobWire struct {
	InputMB       float64           `json:"inputMB"`
	BlockSizeMB   float64           `json:"blockSizeMB,omitempty"` // default 128
	Reduces       int               `json:"reduces,omitempty"`     // default 1
	Profile       string            `json:"profile,omitempty"`     // default "wordcount"
	CustomProfile *workload.Profile `json:"customProfile,omitempty"`
}

func (j jobWire) job() (workload.Job, error) {
	prof := workload.WordCount()
	switch {
	case j.CustomProfile != nil:
		prof = *j.CustomProfile
	case j.Profile == "" || j.Profile == "wordcount":
	case j.Profile == "grep":
		prof = workload.Grep()
	case j.Profile == "terasort":
		prof = workload.TeraSort()
	default:
		return workload.Job{}, validationError{fmt.Errorf("unknown profile %q (want wordcount, grep or terasort)", j.Profile)}
	}
	block := j.BlockSizeMB
	if block <= 0 {
		block = 128
	}
	reduces := j.Reduces
	if reduces <= 0 {
		reduces = 1
	}
	job, err := workload.NewJob(0, j.InputMB, block, reduces, prof)
	if err != nil {
		return workload.Job{}, validationError{err}
	}
	return job, nil
}

type predictWire struct {
	deadlineFields
	Cluster   clusterWire    `json:"cluster"`
	Job       jobWire        `json:"job"`
	NumJobs   int            `json:"numJobs,omitempty"`
	Estimator core.Estimator `json:"estimator,omitempty"`
	// Faults describes a fault-injection scenario (node MTTF/repair,
	// stragglers, speculation); the model corrects its effective demands for
	// the expected rework. Omitted: fault-free prediction.
	Faults *fault.Plan `json:"faults,omitempty"`
	// Profile references a calibrated profile by name (POST /v1/calibrate);
	// its fitted statistics seed the model instead of the static
	// initialization. Distinct from job.profile, which names a workload.
	Profile string `json:"profile,omitempty"`
	// Workflow predicts a DAG of dependent jobs instead of a single one:
	// the stages' jobs replace the top-level job (then ignored and
	// omittable), cluster becomes the default for stages without their own,
	// and profile the default calibrated profile per the per-stage
	// resolution rule (see docs/API.md).
	Workflow *workflowWire `json:"workflow,omitempty"`
}

func (p predictWire) toRequest() (PredictRequest, error) {
	spec, err := p.Cluster.spec()
	if err != nil {
		return PredictRequest{}, err
	}
	req := PredictRequest{Spec: spec, NumJobs: p.NumJobs, Estimator: p.Estimator,
		Faults: p.Faults, Profile: p.Profile}
	if p.Workflow != nil {
		wf, err := p.Workflow.toWorkflow()
		if err != nil {
			return PredictRequest{}, err
		}
		req.Workflow = wf
		return req, nil
	}
	job, err := p.Job.job()
	if err != nil {
		return PredictRequest{}, err
	}
	req.Job = job
	return req, nil
}

// workflowStageWire is one stage of a request's workflow block.
type workflowStageWire struct {
	// Name identifies the stage in edges and the response.
	Name string `json:"name"`
	// Job is the stage's MapReduce job (same shape as the top-level job).
	Job jobWire `json:"job"`
	// Cluster optionally gives the stage its own cluster; omitted stages
	// inherit the request's cluster.
	Cluster *clusterWire `json:"cluster,omitempty"`
	// Profile optionally overrides the request-level calibrated profile for
	// this stage.
	Profile string `json:"profile,omitempty"`
}

// workflowWire is the request-level workflow block: named job stages plus
// precedence edges between stage names.
type workflowWire struct {
	Stages []workflowStageWire `json:"stages"`
	Edges  []workflow.Edge     `json:"edges,omitempty"`
}

func (w *workflowWire) toWorkflow() (*Workflow, error) {
	wf := &Workflow{Edges: w.Edges}
	for _, st := range w.Stages {
		job, err := st.Job.job()
		if err != nil {
			return nil, validationError{fmt.Errorf("workflow stage %q: %w", st.Name, err)}
		}
		stage := WorkflowStage{Name: st.Name, Job: job, Profile: st.Profile}
		if st.Cluster != nil {
			spec, err := st.Cluster.spec()
			if err != nil {
				return nil, validationError{fmt.Errorf("workflow stage %q: %w", st.Name, err)}
			}
			stage.Spec = &spec
		}
		wf.Stages = append(wf.Stages, stage)
	}
	return wf, nil
}

type predictResultWire struct {
	ResponseTime float64 `json:"responseTime"`
	Iterations   int     `json:"iterations"`
	// InnerIterations is the total MVA fixed-point sweeps across the outer
	// rounds — with iterations, the convergence cost of this prediction.
	InnerIterations int            `json:"innerIterations"`
	Converged       bool           `json:"converged"`
	Estimator       core.Estimator `json:"estimator"`
	Cached          bool           `json:"cached"`
	// Stale marks an expired cache entry served under pool saturation
	// (absent in healthy operation — fault-free bodies stay byte-identical).
	Stale bool `json:"stale,omitempty"`
	// Profile/ProfileVersion echo the calibrated profile snapshot that
	// seeded this prediction (absent for profile-less requests).
	Profile        string `json:"profile,omitempty"`
	ProfileVersion int64  `json:"profileVersion,omitempty"`
	// Workflow carries the per-stage schedule, slack and critical path of a
	// workflow-bearing request (absent for single-job requests, whose body
	// stays byte-identical to the pre-workflow wire format).
	Workflow *WorkflowReport `json:"workflow,omitempty"`
}

type simulateWire struct {
	deadlineFields
	Cluster clusterWire `json:"cluster"`
	Job     jobWire     `json:"job"`
	// NumJobs submits that many identical copies of Job at t = 0.
	NumJobs int         `json:"numJobs,omitempty"`
	Seed    int64       `json:"seed,omitempty"`
	Reps    int         `json:"reps,omitempty"`
	Policy  yarn.Policy `json:"policy,omitempty"`
	// Faults injects node failures, straggler tails and speculative
	// re-execution into every seeded repetition. Omitted: fault-free runs
	// (bit-identical to pre-fault-injection simulations).
	Faults *fault.Plan `json:"faults,omitempty"`
	// Profile is accepted for wire symmetry but rejected: calibrated
	// profiles seed the analytic model's initialization, and a simulation
	// has none — failing loudly beats silently ignoring the reference.
	Profile string `json:"profile,omitempty"`
}

func (sw simulateWire) toRequest() (SimulateRequest, error) {
	if sw.Profile != "" {
		return SimulateRequest{}, validationError{errors.New("calibrated profiles seed the analytic model; /v1/simulate executes the job's workload profile directly")}
	}
	spec, err := sw.Cluster.spec()
	if err != nil {
		return SimulateRequest{}, err
	}
	job, err := sw.Job.job()
	if err != nil {
		return SimulateRequest{}, err
	}
	n := sw.NumJobs
	if n <= 0 {
		n = 1
	}
	// Bound before allocating: numJobs comes off the wire.
	if n > MaxSimJobs {
		return SimulateRequest{}, validationError{fmt.Errorf("numJobs %d exceeds limit %d", n, MaxSimJobs)}
	}
	jobs := make([]workload.Job, n)
	for i := range jobs {
		j := job
		j.ID = i
		jobs[i] = j
	}
	return SimulateRequest{Spec: spec, Jobs: jobs, Seed: sw.Seed, Reps: sw.Reps,
		Policy: sw.Policy, Faults: sw.Faults}, nil
}

type simJobWire struct {
	ID       int     `json:"id"`
	Response float64 `json:"response"`
}

type simulateResultWire struct {
	MeanResponse float64      `json:"meanResponse"`
	Makespan     float64      `json:"makespan"`
	Events       int          `json:"events"`
	Jobs         []simJobWire `json:"jobs"`
	// Quantiles reports the batch's mean response at p50/p95/p99 of the
	// seeded repetitions; FailedSeeds how many repetitions errored.
	Quantiles   SimQuantiles `json:"quantiles"`
	FailedSeeds int          `json:"failedSeeds,omitempty"`
	// Faults carries the median run's injected-fault bookkeeping (absent
	// for fault-free runs).
	Faults *mrsim.FaultStats `json:"faults,omitempty"`
	Cached bool              `json:"cached"`
	// Degraded marks a model-only synthesis served while the simulator
	// circuit breaker was open; Stale an expired cache entry served under
	// pool saturation. Both absent in healthy operation, keeping fault-free
	// responses byte-identical.
	Degraded bool `json:"degraded,omitempty"`
	Stale    bool `json:"stale,omitempty"` // see Degraded
}

type compareWire struct {
	deadlineFields
	Cluster clusterWire `json:"cluster"`
	Job     jobWire     `json:"job"`
	NumJobs int         `json:"numJobs,omitempty"`
	Seed    int64       `json:"seed,omitempty"`
	Reps    int         `json:"reps,omitempty"`
	// Faults injects the scenario into the simulated side and applies the
	// matching analytic correction on the model side.
	Faults *fault.Plan `json:"faults,omitempty"`
	// Profile seeds the model side of the comparison from a calibrated
	// profile (see predictWire.Profile); the simulated side is unaffected.
	Profile string `json:"profile,omitempty"`
}

func (c compareWire) toRequest() (CompareRequest, error) {
	spec, err := c.Cluster.spec()
	if err != nil {
		return CompareRequest{}, err
	}
	job, err := c.Job.job()
	if err != nil {
		return CompareRequest{}, err
	}
	return CompareRequest{Spec: spec, Job: job, NumJobs: c.NumJobs, Seed: c.Seed, Reps: c.Reps,
		Faults: c.Faults, Profile: c.Profile}, nil
}

type planWire struct {
	deadlineFields
	Cluster      clusterWire    `json:"cluster"`
	Job          jobWire        `json:"job"`
	NumJobs      int            `json:"numJobs,omitempty"`
	Estimator    core.Estimator `json:"estimator,omitempty"`
	Nodes        []int          `json:"nodes,omitempty"`
	ClassCounts  [][]int        `json:"classCounts,omitempty"`
	BlockSizesMB []float64      `json:"blockSizesMB,omitempty"`
	Reducers     []int          `json:"reducers,omitempty"`
	Policies     []yarn.Policy  `json:"policies,omitempty"`
	DeadlineSec  float64        `json:"deadlineSec,omitempty"`
	Exhaustive   bool           `json:"exhaustive,omitempty"`
	UseSimulator bool           `json:"useSimulator,omitempty"`
	Seed         int64          `json:"seed,omitempty"`
	Reps         int            `json:"reps,omitempty"`
	// Faults applies a fault-injection scenario to every candidate (injected
	// in simulator-backed plans, corrected for analytically otherwise).
	Faults *fault.Plan `json:"faults,omitempty"`
	// Quantile plans simulator-backed candidates against the given seeded-run
	// quantile (0.5, 0.95 or 0.99; default 0.5). Requires useSimulator.
	Quantile float64 `json:"quantile,omitempty"`
	// Profile seeds every model-backed candidate from a calibrated profile;
	// rejected when useSimulator is set.
	Profile string `json:"profile,omitempty"`
	// Workflow plans a whole DAG: each candidate's response time is the
	// composed critical-path makespan on that candidate's cluster. Only the
	// cluster axes (nodes or classCounts) apply; the top-level job is
	// ignored and omittable.
	Workflow *workflowWire `json:"workflow,omitempty"`
}

func (p planWire) toRequest() (PlanRequest, error) {
	spec, err := p.Cluster.spec()
	if err != nil {
		return PlanRequest{}, err
	}
	req := PlanRequest{
		Spec: spec, NumJobs: p.NumJobs, Estimator: p.Estimator,
		Nodes: p.Nodes, ClassCounts: p.ClassCounts, BlockSizesMB: p.BlockSizesMB,
		Reducers: p.Reducers, Policies: p.Policies, DeadlineSec: p.DeadlineSec,
		Exhaustive: p.Exhaustive, UseSimulator: p.UseSimulator, Seed: p.Seed, Reps: p.Reps,
		Faults: p.Faults, Quantile: p.Quantile, Profile: p.Profile,
	}
	if p.Workflow != nil {
		wf, err := p.Workflow.toWorkflow()
		if err != nil {
			return PlanRequest{}, err
		}
		req.Workflow = wf
		return req, nil
	}
	job, err := p.Job.job()
	if err != nil {
		return PlanRequest{}, err
	}
	req.Job = job
	return req, nil
}

// calibrateWire is the POST /v1/calibrate body: a trace document plus fit
// controls. The trace is decoded and validated by trace.Read, so a calibrate
// body gets exactly the sanity checks a trace file does.
type calibrateWire struct {
	deadlineFields
	// Name registers (or replaces) the profile under this reference key.
	Name string `json:"name"`
	// Trace is a trace.Document: {"version": 1, "result": {...}}.
	Trace json.RawMessage `json:"trace"`
	// TTLSec overrides the service's default profile lifetime (seconds).
	TTLSec float64 `json:"ttlSec,omitempty"`
	// TrimFraction, MinSamples and CVFloor map onto trace.FitOptions.
	TrimFraction float64 `json:"trimFraction,omitempty"`
	MinSamples   int     `json:"minSamples,omitempty"`
	CVFloor      float64 `json:"cvFloor,omitempty"`
}

func (c calibrateWire) toRequest() (CalibrateRequest, error) {
	if len(c.Trace) == 0 {
		return CalibrateRequest{}, validationError{errors.New("calibrate needs a trace document")}
	}
	res, err := trace.Read(bytes.NewReader(c.Trace))
	if err != nil {
		return CalibrateRequest{}, validationError{err}
	}
	if c.TTLSec < 0 {
		return CalibrateRequest{}, validationError{errors.New("ttlSec must be nonnegative")}
	}
	return CalibrateRequest{
		Name:   c.Name,
		Result: res,
		Fit:    trace.FitOptions{TrimFraction: c.TrimFraction, MinSamples: c.MinSamples, CVFloor: c.CVFloor},
		TTL:    time.Duration(c.TTLSec * float64(time.Second)),
	}, nil
}

// classStatsWire is one class's fitted statistics on the wire.
type classStatsWire struct {
	MeanResponse float64 `json:"meanResponse"`
	CV           float64 `json:"cv"`
	MeanCPU      float64 `json:"meanCPU"`
	MeanDisk     float64 `json:"meanDisk"`
	MeanNetwork  float64 `json:"meanNetwork"`
	Samples      int     `json:"samples"`
	Trimmed      int     `json:"trimmed,omitempty"`
}

// classWire renders fitted classes under their stable string names
// ("map", "shuffle-sort", "merge").
func classWire(classes map[timeline.Class]trace.FittedClass) map[string]classStatsWire {
	out := make(map[string]classStatsWire, len(classes))
	for cls, fc := range classes {
		out[cls.String()] = classStatsWire{
			MeanResponse: fc.Stats.MeanResponse,
			CV:           fc.Stats.CV,
			MeanCPU:      fc.Stats.MeanCPU,
			MeanDisk:     fc.Stats.MeanDisk,
			MeanNetwork:  fc.Stats.MeanNetwork,
			Samples:      fc.Samples,
			Trimmed:      fc.Trimmed,
		}
	}
	return out
}

// calibrateResultWire is the POST /v1/calibrate response body.
type calibrateResultWire struct {
	Profile ProfileInfo               `json:"profile"`
	Classes map[string]classStatsWire `json:"classes"`
}

// profilesWire is the GET /v1/profiles response body.
type profilesWire struct {
	Profiles []ProfileInfo `json:"profiles"`
}
