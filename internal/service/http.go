package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"hadoop2perf/internal/cluster"
	"hadoop2perf/internal/core"
	"hadoop2perf/internal/workload"
	"hadoop2perf/internal/yarn"
)

// ServerConfig tunes the HTTP layer.
type ServerConfig struct {
	// Timeout bounds one request's handling, including queueing for a pool
	// slot (default 30s).
	Timeout time.Duration
	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64
}

const (
	defaultHTTPTimeout  = 30 * time.Second
	defaultMaxBodyBytes = 1 << 20
)

// NewHandler builds the mrserved HTTP API over a Service:
//
//	GET  /healthz     — liveness
//	GET  /v1/metrics  — service counters: Prometheus text exposition by
//	                    default, JSON under Accept: application/json
//	POST /v1/predict  — analytic model prediction
//	POST /v1/simulate — discrete-event simulator run (median of seeds)
//	POST /v1/compare  — model vs. simulator validation
//	POST /v1/plan     — parallel what-if grid search
func NewHandler(s *Service, cfg ServerConfig) http.Handler {
	if cfg.Timeout <= 0 {
		cfg.Timeout = defaultHTTPTimeout
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = defaultMaxBodyBytes
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		m := s.Metrics()
		if wantsJSON(r.Header.Get("Accept")) {
			writeJSON(w, http.StatusOK, m)
			return
		}
		w.Header().Set("Content-Type", prometheusContentType)
		w.WriteHeader(http.StatusOK)
		_ = writePrometheus(w, m)
	})
	mux.HandleFunc("POST /v1/predict", jsonEndpoint(cfg, func(ctx context.Context, req predictWire) (any, error) {
		pr, err := req.toRequest()
		if err != nil {
			return nil, err
		}
		resp, err := s.Predict(ctx, pr)
		if err != nil {
			return nil, err
		}
		return predictResultWire{
			ResponseTime: resp.Prediction.ResponseTime,
			Iterations:   resp.Prediction.Iterations,
			Converged:    resp.Prediction.Converged,
			Estimator:    pr.Estimator,
			Cached:       resp.Cached,
		}, nil
	}))
	mux.HandleFunc("POST /v1/simulate", jsonEndpoint(cfg, func(ctx context.Context, req simulateWire) (any, error) {
		sr, err := req.toRequest()
		if err != nil {
			return nil, err
		}
		resp, err := s.Simulate(ctx, sr)
		if err != nil {
			return nil, err
		}
		out := simulateResultWire{
			MeanResponse: resp.Result.MeanResponse(),
			Makespan:     resp.Result.Makespan,
			Events:       resp.Result.Events,
			Cached:       resp.Cached,
		}
		for _, j := range resp.Result.Jobs {
			out.Jobs = append(out.Jobs, simJobWire{ID: j.JobID, Response: j.Response})
		}
		return out, nil
	}))
	mux.HandleFunc("POST /v1/compare", jsonEndpoint(cfg, func(ctx context.Context, req compareWire) (any, error) {
		cr, err := req.toRequest()
		if err != nil {
			return nil, err
		}
		return s.Compare(ctx, cr)
	}))
	mux.HandleFunc("POST /v1/plan", jsonEndpoint(cfg, func(ctx context.Context, req planWire) (any, error) {
		pr, err := req.toRequest()
		if err != nil {
			return nil, err
		}
		return s.Plan(ctx, pr)
	}))
	return mux
}

// validationError marks client mistakes (HTTP 400, vs. 500 for the rest).
type validationError struct{ err error }

func (e validationError) Error() string { return e.err.Error() }

// jsonEndpoint wires one POST endpoint: decode, handle under the configured
// timeout, encode. Validation failures map to 400, timeouts to 504.
func jsonEndpoint[Req any](cfg ServerConfig, handle func(context.Context, Req) (any, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), cfg.Timeout)
		defer cancel()
		var req Req
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, cfg.MaxBodyBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
			return
		}
		out, err := handle(ctx, req)
		if err != nil {
			// Client faults (malformed wire input, rejected validation) map
			// to 400; anything the engine failed at after accepting the
			// request is a genuine 500 so monitoring sees it.
			status := http.StatusInternalServerError
			var verr validationError
			switch {
			case errors.Is(err, context.DeadlineExceeded):
				status = http.StatusGatewayTimeout
			case errors.Is(err, context.Canceled):
				status = 499 // client closed request
			case errors.As(err, &verr), IsInvalidRequest(err):
				status = http.StatusBadRequest
			}
			writeError(w, status, err)
			return
		}
		writeJSON(w, http.StatusOK, out)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// clusterWire selects a cluster: the calibrated default scaled to "nodes", a
// heterogeneous class table riding the default container sizing, or a fully
// custom spec (whose JSON form also accepts "classes" — see cluster.Spec).
type clusterWire struct {
	Nodes  int           `json:"nodes,omitempty"`
	Custom *cluster.Spec `json:"custom,omitempty"`
	// Classes builds a heterogeneous cluster from the calibrated default's
	// container configuration plus the given hardware classes.
	Classes []cluster.NodeClass `json:"classes,omitempty"`
}

func (c clusterWire) spec() (cluster.Spec, error) {
	if c.Custom != nil {
		return *c.Custom, nil
	}
	if len(c.Classes) > 0 {
		if c.Nodes > 0 {
			return cluster.Spec{}, validationError{errors.New("cluster.nodes and cluster.classes are mutually exclusive")}
		}
		spec := cluster.Default(0)
		spec.Classes = c.Classes
		return spec, nil
	}
	if c.Nodes <= 0 {
		return cluster.Spec{}, validationError{errors.New("cluster.nodes must be positive (or supply cluster.classes or cluster.custom)")}
	}
	return cluster.Default(c.Nodes), nil
}

// jobWire describes one job: a named built-in profile ("wordcount", "grep",
// "terasort") or a full custom profile.
type jobWire struct {
	InputMB       float64           `json:"inputMB"`
	BlockSizeMB   float64           `json:"blockSizeMB,omitempty"` // default 128
	Reduces       int               `json:"reduces,omitempty"`     // default 1
	Profile       string            `json:"profile,omitempty"`     // default "wordcount"
	CustomProfile *workload.Profile `json:"customProfile,omitempty"`
}

func (j jobWire) job() (workload.Job, error) {
	prof := workload.WordCount()
	switch {
	case j.CustomProfile != nil:
		prof = *j.CustomProfile
	case j.Profile == "" || j.Profile == "wordcount":
	case j.Profile == "grep":
		prof = workload.Grep()
	case j.Profile == "terasort":
		prof = workload.TeraSort()
	default:
		return workload.Job{}, validationError{fmt.Errorf("unknown profile %q (want wordcount, grep or terasort)", j.Profile)}
	}
	block := j.BlockSizeMB
	if block <= 0 {
		block = 128
	}
	reduces := j.Reduces
	if reduces <= 0 {
		reduces = 1
	}
	job, err := workload.NewJob(0, j.InputMB, block, reduces, prof)
	if err != nil {
		return workload.Job{}, validationError{err}
	}
	return job, nil
}

type predictWire struct {
	Cluster   clusterWire    `json:"cluster"`
	Job       jobWire        `json:"job"`
	NumJobs   int            `json:"numJobs,omitempty"`
	Estimator core.Estimator `json:"estimator,omitempty"`
}

func (p predictWire) toRequest() (PredictRequest, error) {
	spec, err := p.Cluster.spec()
	if err != nil {
		return PredictRequest{}, err
	}
	job, err := p.Job.job()
	if err != nil {
		return PredictRequest{}, err
	}
	return PredictRequest{Spec: spec, Job: job, NumJobs: p.NumJobs, Estimator: p.Estimator}, nil
}

type predictResultWire struct {
	ResponseTime float64        `json:"responseTime"`
	Iterations   int            `json:"iterations"`
	Converged    bool           `json:"converged"`
	Estimator    core.Estimator `json:"estimator"`
	Cached       bool           `json:"cached"`
}

type simulateWire struct {
	Cluster clusterWire `json:"cluster"`
	Job     jobWire     `json:"job"`
	// NumJobs submits that many identical copies of Job at t = 0.
	NumJobs int         `json:"numJobs,omitempty"`
	Seed    int64       `json:"seed,omitempty"`
	Reps    int         `json:"reps,omitempty"`
	Policy  yarn.Policy `json:"policy,omitempty"`
}

func (sw simulateWire) toRequest() (SimulateRequest, error) {
	spec, err := sw.Cluster.spec()
	if err != nil {
		return SimulateRequest{}, err
	}
	job, err := sw.Job.job()
	if err != nil {
		return SimulateRequest{}, err
	}
	n := sw.NumJobs
	if n <= 0 {
		n = 1
	}
	// Bound before allocating: numJobs comes off the wire.
	if n > MaxSimJobs {
		return SimulateRequest{}, validationError{fmt.Errorf("numJobs %d exceeds limit %d", n, MaxSimJobs)}
	}
	jobs := make([]workload.Job, n)
	for i := range jobs {
		j := job
		j.ID = i
		jobs[i] = j
	}
	return SimulateRequest{Spec: spec, Jobs: jobs, Seed: sw.Seed, Reps: sw.Reps, Policy: sw.Policy}, nil
}

type simJobWire struct {
	ID       int     `json:"id"`
	Response float64 `json:"response"`
}

type simulateResultWire struct {
	MeanResponse float64      `json:"meanResponse"`
	Makespan     float64      `json:"makespan"`
	Events       int          `json:"events"`
	Jobs         []simJobWire `json:"jobs"`
	Cached       bool         `json:"cached"`
}

type compareWire struct {
	Cluster clusterWire `json:"cluster"`
	Job     jobWire     `json:"job"`
	NumJobs int         `json:"numJobs,omitempty"`
	Seed    int64       `json:"seed,omitempty"`
	Reps    int         `json:"reps,omitempty"`
}

func (c compareWire) toRequest() (CompareRequest, error) {
	spec, err := c.Cluster.spec()
	if err != nil {
		return CompareRequest{}, err
	}
	job, err := c.Job.job()
	if err != nil {
		return CompareRequest{}, err
	}
	return CompareRequest{Spec: spec, Job: job, NumJobs: c.NumJobs, Seed: c.Seed, Reps: c.Reps}, nil
}

type planWire struct {
	Cluster      clusterWire    `json:"cluster"`
	Job          jobWire        `json:"job"`
	NumJobs      int            `json:"numJobs,omitempty"`
	Estimator    core.Estimator `json:"estimator,omitempty"`
	Nodes        []int          `json:"nodes,omitempty"`
	ClassCounts  [][]int        `json:"classCounts,omitempty"`
	BlockSizesMB []float64      `json:"blockSizesMB,omitempty"`
	Reducers     []int          `json:"reducers,omitempty"`
	Policies     []yarn.Policy  `json:"policies,omitempty"`
	DeadlineSec  float64        `json:"deadlineSec,omitempty"`
	Exhaustive   bool           `json:"exhaustive,omitempty"`
	UseSimulator bool           `json:"useSimulator,omitempty"`
	Seed         int64          `json:"seed,omitempty"`
	Reps         int            `json:"reps,omitempty"`
}

func (p planWire) toRequest() (PlanRequest, error) {
	spec, err := p.Cluster.spec()
	if err != nil {
		return PlanRequest{}, err
	}
	job, err := p.Job.job()
	if err != nil {
		return PlanRequest{}, err
	}
	return PlanRequest{
		Spec: spec, Job: job, NumJobs: p.NumJobs, Estimator: p.Estimator,
		Nodes: p.Nodes, ClassCounts: p.ClassCounts, BlockSizesMB: p.BlockSizesMB,
		Reducers: p.Reducers, Policies: p.Policies, DeadlineSec: p.DeadlineSec,
		Exhaustive: p.Exhaustive, UseSimulator: p.UseSimulator, Seed: p.Seed, Reps: p.Reps,
	}, nil
}
