package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"hadoop2perf/internal/cluster"
	"hadoop2perf/internal/core"
	"hadoop2perf/internal/obs"
	"hadoop2perf/internal/ptree"
	"hadoop2perf/internal/timeline"
	"hadoop2perf/internal/workflow"
	"hadoop2perf/internal/workload"
)

// This file serves DAG workflows: a request-level workflow block names job
// stages and precedence edges, each stage rides the same per-stage cache/
// singleflight/predictor path as a plain predict (so a workflow stage and
// an identical single-job request share one cache entry), and the composed
// critical-path result is cached under its own workflow key. Plans sweep
// the shared cluster axis with the composed makespan as the objective.

// Workflow is the request-level DAG block of Predict and Plan requests: one
// MapReduce job per named stage plus precedence edges between stage names.
type Workflow struct {
	// Stages declares the workflow's jobs in declaration order (which is
	// also the response's stage order).
	Stages []WorkflowStage
	// Edges are the cross-job precedence constraints: an edge makes its To
	// stage start only after its From stage finishes.
	Edges []workflow.Edge
}

// WorkflowStage is one job stage of a workflow block.
type WorkflowStage struct {
	// Name identifies the stage in edges and in the response; unique and
	// non-empty.
	Name string
	// Job is the stage's MapReduce job.
	Job workload.Job
	// Spec optionally gives the stage its own cluster (stage-local sizing);
	// nil inherits the request's cluster. Stages sharing a wave contend for
	// capacity only when they run on the same cluster.
	Spec *cluster.Spec
	// Profile optionally names a calibrated profile for this stage,
	// overriding the request-level Profile. Per-stage resolution rule:
	// a stage uses its own Profile when set, else the request's; a workflow
	// where some stages resolve a profile and others resolve none is
	// rejected as invalid (seed every stage or no stage).
	Profile string
}

// dag lifts the block's shape into the structural DAG type.
func (wf *Workflow) dag() *workflow.DAG {
	d := &workflow.DAG{Stages: make([]string, len(wf.Stages)), Edges: wf.Edges}
	for i, st := range wf.Stages {
		d.Stages[i] = st.Name
	}
	return d
}

// WorkflowStageReport is one stage's slice of a workflow response.
type WorkflowStageReport struct {
	// Name is the stage name from the request.
	Name string `json:"name"`
	// ResponseTime is the stage's predicted duration, priced at its wave
	// concurrency.
	ResponseTime float64 `json:"responseTime"`
	// Start, Finish and Slack are the stage's critical-path schedule: the
	// earliest start/finish offsets from workflow submission, and the total
	// float before the stage would move the makespan.
	Start  float64 `json:"start"`
	Finish float64 `json:"finish"` // see Start
	Slack  float64 `json:"slack"`  // see Start
	// Critical reports zero slack — the stage sits on a longest path.
	Critical bool `json:"critical"`
	// Concurrency is the closed-network population the stage was priced at
	// (co-scheduled same-cluster stages of its wave, itself included).
	Concurrency int `json:"concurrency"`
	// Cached reports whether this stage's evaluation came from the cache.
	Cached bool `json:"cached"`
	// Profile names the calibrated profile that seeded the stage (empty for
	// none).
	Profile string `json:"profile,omitempty"`
}

// WorkflowReport is the workflow slice of a predict response.
type WorkflowReport struct {
	// ResponseTime is the workflow makespan: the critical path through the
	// stage DAG.
	ResponseTime float64 `json:"responseTime"`
	// Stages reports every stage in declaration order.
	Stages []WorkflowStageReport `json:"stages"`
	// CriticalPath lists one longest source-to-sink chain of stage names.
	CriticalPath []string `json:"criticalPath"`
	// Tree is the cross-job precedence tree over whole stages, rendered in
	// the paper's S/P notation (leaf jN = stage N).
	Tree string `json:"tree,omitempty"`
}

// workflowOutcome is the cached unit of one composed workflow evaluation:
// the client-facing report plus the aggregate prediction bookkeeping.
type workflowOutcome struct {
	report WorkflowReport
	pred   core.Prediction
}

// validateWorkflow structurally checks a workflow block and resolves it
// into the DAG and one per-stage PredictRequest (profile references
// resolved, wave concurrency priced in). Every defect returns a structured
// invalid-request error (HTTP 400), including the partial-profile rule.
func (s *Service) resolveWorkflow(ctx context.Context, req *PredictRequest) (*workflow.DAG, []PredictRequest, error) {
	wf := req.Workflow
	if len(wf.Stages) > MaxNumJobs {
		return nil, nil, invalid(fmt.Errorf("service: workflow has %d stages, limit %d", len(wf.Stages), MaxNumJobs))
	}
	if req.NumJobs > 1 {
		return nil, nil, invalid(errors.New("service: NumJobs is derived from the workflow's waves; set per-stage shape with edges instead"))
	}
	dag := wf.dag()
	if err := dag.Validate(); err != nil {
		return nil, nil, invalid(err)
	}

	// Per-stage profile resolution rule: stage Profile wins over the
	// request's; mixed coverage (some stages seeded, some not) is rejected
	// up front with the uncovered stages named.
	names := make([]string, len(wf.Stages))
	var covered, uncovered []string
	for i, st := range wf.Stages {
		names[i] = st.Profile
		if names[i] == "" {
			names[i] = req.Profile
		}
		if names[i] == "" {
			uncovered = append(uncovered, st.Name)
		} else {
			covered = append(covered, st.Name)
		}
	}
	if len(covered) > 0 && len(uncovered) > 0 {
		return nil, nil, invalid(fmt.Errorf(
			"service: workflow profiles cover only stages %s; stages %s resolve none — seed every stage (stage profile or request default) or none",
			strings.Join(covered, ", "), strings.Join(uncovered, ", ")))
	}

	// Wave concurrency over the resolved per-stage clusters.
	cfgs := make([]core.Config, len(wf.Stages))
	for i, st := range wf.Stages {
		cfgs[i].Spec = req.Spec
		if st.Spec != nil {
			cfgs[i].Spec = *st.Spec
		}
	}
	conc, err := core.WorkflowConcurrency(dag, cfgs)
	if err != nil {
		return nil, nil, invalid(err)
	}

	stageReqs := make([]PredictRequest, len(wf.Stages))
	for i, st := range wf.Stages {
		sr := PredictRequest{
			Spec: cfgs[i].Spec, Job: st.Job, NumJobs: conc[i],
			Estimator: req.Estimator, Faults: req.Faults, Profile: names[i],
		}
		if err := sr.validate(); err != nil {
			return nil, nil, invalid(fmt.Errorf("service: workflow stage %q: %w", st.Name, err))
		}
		if err := s.resolveProfile(ctx, sr.Profile, &sr.resolved); err != nil {
			return nil, nil, fmt.Errorf("service: workflow stage %q: %w", st.Name, err)
		}
		stageReqs[i] = sr
	}
	return dag, stageReqs, nil
}

// workflowEval composes one workflow evaluation: stages run through the
// per-stage predictEval path in deterministic topological order — each
// stage's cache key identical to the equivalent single-job predict, so a
// K-identical-stage chain costs one model run plus K-1 hits — and the
// durations feed the DAG's critical-path schedule. chain, when non-nil,
// warm-chains stage misses through one caller-owned evaluator.
func (s *Service) workflowEval(ctx context.Context, dag *workflow.DAG, stageReqs []PredictRequest, chain *core.Predictor) (*workflowOutcome, error) {
	order, err := dag.TopoOrder()
	if err != nil {
		return nil, invalid(err)
	}
	n := len(stageReqs)
	if n == 1 {
		// A trivial DAG has no neighbor to chain from; the pooled cold path
		// keeps it bit-identical to the equivalent single-job predict.
		chain = nil
	}
	out := &workflowOutcome{
		report: WorkflowReport{Stages: make([]WorkflowStageReport, n)},
		pred:   core.Prediction{Converged: true},
	}
	durations := make([]float64, n)
	for _, i := range order {
		pr, err := s.predictEval(ctx, stageReqs[i], chain)
		if err != nil {
			return nil, fmt.Errorf("service: workflow stage %q: %w", dag.Stages[i], err)
		}
		durations[i] = pr.Prediction.ResponseTime
		out.report.Stages[i] = WorkflowStageReport{
			Name:         dag.Stages[i],
			ResponseTime: pr.Prediction.ResponseTime,
			Concurrency:  stageReqs[i].NumJobs,
			Cached:       pr.Cached,
			Profile:      pr.Profile,
		}
		out.pred.Iterations += pr.Prediction.Iterations
		out.pred.InnerIterations += pr.Prediction.InnerIterations
		out.pred.Converged = out.pred.Converged && pr.Prediction.Converged
		out.pred.WarmStarted = out.pred.WarmStarted || pr.Prediction.WarmStarted
	}

	sched, err := dag.ComputeSchedule(durations)
	if err != nil {
		return nil, invalid(err)
	}
	out.pred.ResponseTime = sched.Makespan
	out.report.ResponseTime = sched.Makespan
	intervals := make([]timeline.Placed, n)
	for i := range out.report.Stages {
		st := &out.report.Stages[i]
		st.Start = sched.Start[i]
		st.Finish = sched.Finish[i]
		st.Slack = sched.Slack[i]
		st.Critical = sched.Critical[i]
		intervals[i] = timeline.Placed{Class: timeline.ClassStage, ID: i, Start: st.Start, End: st.Finish}
	}
	for _, i := range sched.CriticalPath {
		out.report.CriticalPath = append(out.report.CriticalPath, dag.Stages[i])
	}
	if tree, err := ptree.FromIntervals(intervals); err == nil {
		out.report.Tree = tree.String()
	}
	return out, nil
}

// workflowEvalCached serves one composed workflow through the cache and
// singleflight under its workflow-level key (the per-stage evaluations
// inside keep their own keys either way).
func (s *Service) workflowEvalCached(ctx context.Context, dag *workflow.DAG, stageReqs []PredictRequest, chain *core.Predictor) (*workflowOutcome, bool, bool, error) {
	v, cached, stale, err := s.cachedCompute(ctx, workflowPredictKey(dag, stageReqs), func() (any, error) {
		return s.workflowEval(ctx, dag, stageReqs, chain)
	})
	if err != nil {
		return nil, false, false, err
	}
	return v.(*workflowOutcome), cached, stale, nil
}

// predictWorkflow serves a workflow-bearing Predict request.
func (s *Service) predictWorkflow(ctx context.Context, req PredictRequest) (PredictResponse, error) {
	s.workflowReqs.Add(1)
	dag, stageReqs, err := s.resolveWorkflow(ctx, &req)
	if err != nil {
		return PredictResponse{}, err
	}
	chain := s.predictors.Get().(*core.Predictor)
	o, cached, stale, err := s.workflowEvalCached(ctx, dag, stageReqs, chain)
	s.predictors.Put(chain)
	if err != nil {
		return PredictResponse{}, err
	}
	return PredictResponse{Prediction: o.pred, Cached: cached, Stale: stale, Workflow: &o.report}, nil
}

// planWorkflow serves a workflow-bearing Plan request: the cluster-size
// axis (Nodes or ClassCounts) is swept with the composed workflow makespan
// as each candidate's response time. Job-shape axes and simulator backing
// are rejected — stage jobs are fixed by the workflow block, and the
// analytic composition is what makes the sweep cheap. Deadline queries on
// a bisectable axis reuse the planner's monotone search: the workflow
// makespan is a max/sum composition of per-stage responses, each
// non-increasing in cluster size, so the frontier logic carries over
// unchanged (single-reducer stages only, like the classic fast path).
func (s *Service) planWorkflow(ctx context.Context, req PlanRequest) (PlanResponse, error) {
	s.workflowReqs.Add(1)
	if err := req.validateWorkflowPlan(); err != nil {
		return PlanResponse{}, invalid(err)
	}
	defer s.endSpan(obs.FromContext(ctx), obs.StagePlanSearch, time.Now())

	choices := nodeChoices(&req)
	if len(choices) > maxPlanCandidates {
		return PlanResponse{}, invalid(fmt.Errorf("service: plan grid has %d candidates (max %d); split the sweep",
			len(choices), maxPlanCandidates))
	}

	// Resolve the workflow once per candidate spec: stages without a
	// stage-local cluster inherit the candidate's swept spec.
	stageReqsAt := func(ch nodeChoice) (*workflow.DAG, []PredictRequest, error) {
		preq := PredictRequest{
			Spec: candidateSpec(&req, ch), NumJobs: req.NumJobs, Estimator: req.Estimator,
			Faults: req.Faults, Profile: req.Profile, Workflow: req.Workflow,
		}
		return s.resolveWorkflow(ctx, &preq)
	}

	if s.useWorkflowSearch(&req, choices) {
		return s.planWorkflowSearch(ctx, req, choices, stageReqsAt)
	}

	cands := make([]PlanCandidate, len(choices))
	var wg sync.WaitGroup
	for i := range cands {
		cands[i] = PlanCandidate{Nodes: choices[i].nodes, ClassCounts: choices[i].counts}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := &cands[i]
			dag, stageReqs, err := stageReqsAt(choices[i])
			if err != nil {
				c.Err = err.Error()
				return
			}
			chain := s.predictors.Get().(*core.Predictor)
			o, cached, stale, err := s.workflowEvalCached(ctx, dag, stageReqs, chain)
			s.predictors.Put(chain)
			if err != nil {
				c.Err = err.Error()
				return
			}
			c.ResponseTime = o.report.ResponseTime
			c.Cached = cached
			c.Stale = stale
		}(i)
	}
	wg.Wait()
	obs.FromContext(ctx).AddCounter(obs.CounterPlanCandidates, int64(len(cands)))

	resp := PlanResponse{Candidates: cands, Strategy: StrategyGrid}
	finalizePlan(&resp, &req)
	return partialOnDeadline(ctx, resp)
}

// useWorkflowSearch gates the workflow deadline fast path: same conditions
// as the classic search, plus every stage must be single-reducer (the
// pinned monotonicity premise) and share the swept cluster (a stage-local
// spec does not shrink with the axis, so its duration is constant anyway —
// but a constant floor under a max() keeps monotonicity, so only the
// reducer shape actually gates).
func (s *Service) useWorkflowSearch(req *PlanRequest, choices []nodeChoice) bool {
	if !(req.DeadlineSec > 0 && !req.Exhaustive && len(choices) >= minSearchAxis) {
		return false
	}
	for _, st := range req.Workflow.Stages {
		if st.Job.NumReduces != 1 {
			return false
		}
	}
	sorted := append([]nodeChoice(nil), choices...)
	sort.SliceStable(sorted, func(a, b int) bool { return sorted[a].nodes < sorted[b].nodes })
	return chainOrdered(sorted)
}

// planWorkflowSearch runs the monotone bisection of search.go with the
// composed workflow makespan as the axis metric. One warm chain threads
// every stage evaluation of the walk: bisection probes neighboring node
// counts, and within a probe the stages chain through the same evaluator,
// so a 20-stage chain costs barely more model runs than a single job.
func (s *Service) planWorkflowSearch(ctx context.Context, req PlanRequest, choices []nodeChoice, stageReqsAt func(nodeChoice) (*workflow.DAG, []PredictRequest, error)) (PlanResponse, error) {
	sorted := append([]nodeChoice(nil), choices...)
	sort.SliceStable(sorted, func(a, b int) bool { return sorted[a].nodes < sorted[b].nodes })
	totals := make([]int, len(sorted))
	weights := make([]float64, len(sorted))
	for i, ch := range sorted {
		totals[i] = ch.nodes
		weights[i] = candidateSpec(&req, ch).PriceWeight()
	}

	warm := s.predictors.Get().(*core.Predictor)
	defer s.predictors.Put(warm)
	evalWith := func(i int, chain *core.Predictor) (float64, bool, error) {
		dag, stageReqs, err := stageReqsAt(sorted[i])
		if err != nil {
			return 0, false, err
		}
		o, cached, _, err := s.workflowEvalCached(ctx, dag, stageReqs, chain)
		if err != nil {
			return 0, false, err
		}
		return o.report.ResponseTime, cached, nil
	}
	eval := func(i int) (float64, bool, error) { return evalWith(i, warm) }
	parEval := func(i int) (float64, bool, error) { return evalWith(i, nil) }
	// Sibling probes of a narrow bracket: sequential on the same chain (a
	// composed makespan has no single batched solve to ride).
	batchEval := func(idxs []int) ([]float64, []bool, error) {
		rts := make([]float64, len(idxs))
		cach := make([]bool, len(idxs))
		for j, i := range idxs {
			rt, c, err := eval(i)
			if err != nil {
				return nil, nil, err
			}
			rts[j], cach[j] = rt, c
		}
		return rts, cach, nil
	}
	out := searchNodeAxis(totals, weights, req.DeadlineSec, eval, parEval, batchEval)

	resp := PlanResponse{Strategy: StrategySearch}
	for k, c := range out.cands {
		c.ClassCounts = sorted[out.idxs[k]].counts
		resp.Candidates = append(resp.Candidates, c)
	}
	resp.Pruned = out.pruned
	finalizePlan(&resp, &req)
	return partialOnDeadline(ctx, resp)
}

// validateWorkflowPlan checks the plan fields meaningful for a workflow
// sweep and rejects the job-shape and simulator machinery that does not
// compose with a DAG of fixed stage jobs.
func (r *PlanRequest) validateWorkflowPlan() error {
	if r.NumJobs <= 0 {
		r.NumJobs = 1
	}
	if r.UseSimulator {
		return errors.New("service: workflow plans are analytic; the simulator sweep has no DAG support on the plan axis")
	}
	if len(r.BlockSizesMB) > 0 || len(r.Reducers) > 0 || len(r.Policies) > 0 {
		return errors.New("service: workflow plans sweep only the cluster axes (nodes or classCounts); stage jobs fix their own block sizes and reducers")
	}
	if err := r.Spec.Validate(); err != nil {
		return err
	}
	for _, n := range r.Nodes {
		if n <= 0 {
			return fmt.Errorf("service: plan node count %d must be positive", n)
		}
	}
	if len(r.Nodes) > 0 && r.Spec.Heterogeneous() {
		return errors.New("service: Nodes axis requires a flat cluster spec; sweep class-form specs with ClassCounts")
	}
	if len(r.ClassCounts) > 0 {
		if len(r.Nodes) > 0 {
			return errors.New("service: ClassCounts and Nodes axes are mutually exclusive")
		}
		if !r.Spec.Heterogeneous() {
			return errors.New("service: ClassCounts requires a class-form cluster spec")
		}
		for mi, mix := range r.ClassCounts {
			if len(mix) != len(r.Spec.Classes) {
				return fmt.Errorf("service: class mix %d has %d counts, want %d (one per spec class)",
					mi, len(mix), len(r.Spec.Classes))
			}
			total := 0
			for ci, n := range mix {
				if n < 0 {
					return fmt.Errorf("service: class mix %d: count for class %q must be nonnegative",
						mi, r.Spec.Classes[ci].Name)
				}
				total += n
			}
			if total <= 0 {
				return fmt.Errorf("service: class mix %d has no nodes", mi)
			}
		}
	}
	if r.DeadlineSec < 0 {
		return fmt.Errorf("service: deadline %v must be nonnegative", r.DeadlineSec)
	}
	if r.Quantile != 0 {
		return errors.New("service: quantile planning needs useSimulator (the analytic model predicts means)")
	}
	if err := r.Faults.Validate(); err != nil {
		return err
	}
	if _, err := r.Estimator.MarshalText(); err != nil {
		return err
	}
	return nil
}
