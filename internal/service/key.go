package service

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"

	"hadoop2perf/internal/cluster"
	"hadoop2perf/internal/core"
	"hadoop2perf/internal/fault"
	"hadoop2perf/internal/timeline"
	"hadoop2perf/internal/workflow"
	"hadoop2perf/internal/workload"
)

// keyVersion is folded into every cache key; bump it whenever the canonical
// encoding below changes shape so stale entries can never alias new ones.
// v3: specs encode their node-class table (heterogeneous clusters).
// v4: model-backed keys append the resolved calibrated-profile content hash
// (empty for profile-less requests), so recalibrating a name strands every
// cache entry computed from the old fit.
// v5: specs encode the fault surface of each node class (preemptible flag,
// revocation rate, price) and every request kind appends its fault plan, so
// fault-injected results can never alias fault-free ones.
const keyVersion = 5

// keyWriter streams a canonical, order-stable binary encoding of a request
// into a hash. Floats are encoded by their IEEE-754 bits (so +0/-0 and NaN
// payload differences distinguish keys rather than colliding), strings are
// length-prefixed, and every request kind starts with a distinct tag so a
// predict key can never alias a simulate key.
type keyWriter struct {
	buf []byte
}

func newKeyWriter(kind string) *keyWriter {
	w := &keyWriter{buf: make([]byte, 0, 256)}
	w.putString(kind)
	w.putInt(keyVersion)
	return w
}

func (w *keyWriter) putInt(v int)   { w.buf = binary.LittleEndian.AppendUint64(w.buf, uint64(int64(v))) }
func (w *keyWriter) putI64(v int64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, uint64(v)) }
func (w *keyWriter) putF64(v float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
}

func (w *keyWriter) putBool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	w.buf = append(w.buf, b)
}

func (w *keyWriter) putString(s string) {
	w.putInt(len(s))
	w.buf = append(w.buf, s...)
}

func (w *keyWriter) putSpec(s cluster.Spec) {
	w.putInt(s.NumNodes)
	w.putInt(s.NodeCapacity.MemoryMB)
	w.putInt(s.NodeCapacity.VCores)
	w.putInt(s.MapContainer.MemoryMB)
	w.putInt(s.MapContainer.VCores)
	w.putInt(s.ReduceContainer.MemoryMB)
	w.putInt(s.ReduceContainer.VCores)
	w.putInt(s.CPUPerNode)
	w.putInt(s.DiskPerNode)
	w.putF64(s.DiskMBps)
	w.putF64(s.NetworkMBps)
	// Node-class table: length-prefixed so a flat spec (0 classes) can never
	// alias a class-form spec, and every class field is order-stable.
	w.putInt(len(s.Classes))
	for _, c := range s.Classes {
		w.putString(c.Name)
		w.putInt(c.Count)
		w.putInt(c.Capacity.MemoryMB)
		w.putInt(c.Capacity.VCores)
		w.putInt(c.CPUs)
		w.putInt(c.Disks)
		w.putF64(c.DiskMBps)
		w.putF64(c.NetworkMBps)
		w.putF64(c.Speed)
		w.putBool(c.Preemptible)
		w.putF64(c.RevocationRate)
		w.putF64(c.Price)
	}
}

// putFaults encodes a fault plan (nil distinguished from the zero plan by
// the presence flag, mirroring the engines' nil-vs-zero semantics).
func (w *keyWriter) putFaults(p *fault.Plan) {
	w.putBool(p != nil)
	if p == nil {
		return
	}
	w.putF64(p.NodeMTTFSec)
	w.putF64(p.RepairDelaySec)
	w.putInt(p.MaxNodeFailures)
	w.putF64(p.StragglerProb)
	w.putF64(p.StragglerAlpha)
	w.putBool(p.Speculation)
	w.putF64(p.SpeculationLateness)
}

func (w *keyWriter) putProfile(p workload.Profile) {
	w.putString(p.Name)
	w.putF64(p.MapCPUPerMB)
	w.putF64(p.CollectCPUPerMB)
	w.putF64(p.SortCPUPerMB)
	w.putF64(p.MergeCPUPerMB)
	w.putF64(p.ShuffleCPUPerMB)
	w.putF64(p.ReduceCPUPerMB)
	w.putF64(p.RSortCPUPerMB)
	w.putF64(p.MapOutputRatio)
	w.putF64(p.OutputRatio)
	w.putF64(p.SpillPasses)
	w.putF64(p.TaskJitterCV)
	w.putF64(p.ContainerStartup)
	w.putF64(p.AMStartup)
}

// putJob encodes the fields that determine a job's workload shape. Job.ID is
// deliberately excluded: the analytic model never reads it, so predictions
// for the same shape under different caller-assigned IDs share one cache
// entry. Simulation keys add IDs separately (they seed HDFS placement).
func (w *keyWriter) putJob(j workload.Job) {
	w.putF64(j.InputMB)
	w.putF64(j.BlockSizeMB)
	w.putInt(j.NumReduces)
	w.putBool(j.SlowStart)
	w.putF64(j.SlowStartFraction)
	w.putProfile(j.Profile)
}

func (w *keyWriter) sum() string {
	h := sha256.Sum256(w.buf)
	return hex.EncodeToString(h[:])
}

// profileContentHash canonically hashes a fitted history — the payload a
// calibrated profile contributes to a model run. Classes are encoded in
// their fixed timeline order so map iteration cannot perturb the hash, and
// absent classes are distinguished from zero-valued ones by a presence flag.
func profileContentHash(history map[timeline.Class]core.ClassStats) string {
	w := newKeyWriter("profile")
	for _, cls := range [...]timeline.Class{timeline.ClassMap, timeline.ClassShuffleSort, timeline.ClassMerge} {
		cs, ok := history[cls]
		w.putBool(ok)
		if !ok {
			continue
		}
		w.putF64(cs.MeanCPU)
		w.putF64(cs.MeanDisk)
		w.putF64(cs.MeanNetwork)
		w.putF64(cs.MeanResponse)
		w.putF64(cs.CV)
	}
	return w.sum()
}

// putResolvedProfile encodes a request's resolved calibrated profile: the
// content hash alone (not the name — two names calibrated from identical
// traces share cache entries; one name recalibrated stops matching).
func (w *keyWriter) putResolvedProfile(p *calibratedProfile) {
	if p == nil {
		w.putString("")
		return
	}
	w.putString(p.info.Hash)
}

// workflowKeyVersion versions the workflow-bearing key layout. Workflow
// requests hash under their own kind tag ("predict-workflow"), so this
// version can move independently — classic predict/simulate/compare keys
// stay byte-stable across workflow-layer changes.
const workflowKeyVersion = 1

// workflowPredictKey canonically hashes a resolved workflow: every stage's
// full model inputs (cluster, job, wave population, faults, resolved
// profile content) in declaration order, then the DAG's edges by stage
// name. Two workflows differing only in shape (same stages, different
// edges) get distinct keys.
func workflowPredictKey(dag *workflow.DAG, stageReqs []PredictRequest) string {
	w := newKeyWriter("predict-workflow")
	w.putInt(workflowKeyVersion)
	w.putInt(len(dag.Stages))
	for i, name := range dag.Stages {
		sr := &stageReqs[i]
		w.putString(name)
		w.putSpec(sr.Spec)
		w.putJob(sr.Job)
		w.putInt(sr.NumJobs)
		w.putInt(int(sr.Estimator))
		w.putFaults(sr.Faults)
		w.putResolvedProfile(sr.resolved)
	}
	w.putInt(len(dag.Edges))
	for _, e := range dag.Edges {
		w.putString(e.From)
		w.putString(e.To)
	}
	return w.sum()
}

func predictKey(req PredictRequest) string {
	w := newKeyWriter("predict")
	w.putSpec(req.Spec)
	w.putJob(req.Job)
	w.putInt(req.NumJobs)
	w.putInt(int(req.Estimator))
	w.putFaults(req.Faults)
	w.putResolvedProfile(req.resolved)
	return w.sum()
}

func simulateKey(req SimulateRequest) string {
	w := newKeyWriter("simulate")
	w.putSpec(req.Spec)
	w.putInt(len(req.Jobs))
	for _, j := range req.Jobs {
		w.putInt(j.ID) // affects HDFS block placement in the simulator
		w.putJob(j)
	}
	w.putI64(req.Seed)
	w.putInt(req.Reps)
	w.putInt(int(req.Policy))
	w.putFaults(req.Faults)
	return w.sum()
}

func compareKey(req CompareRequest) string {
	w := newKeyWriter("compare")
	w.putSpec(req.Spec)
	w.putJob(req.Job)
	w.putInt(req.NumJobs)
	w.putI64(req.Seed)
	w.putInt(req.Reps)
	w.putFaults(req.Faults)
	w.putResolvedProfile(req.resolved)
	return w.sum()
}
