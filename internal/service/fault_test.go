package service

import (
	"context"
	"math"
	"testing"

	"hadoop2perf/internal/cluster"
	"hadoop2perf/internal/fault"
	"hadoop2perf/internal/workload"
)

// chaosPlan is an aggressive scenario that reliably fires on multi-minute
// simulated jobs: frequent repairing node losses plus a straggler tail with
// speculation on.
func chaosPlan() *fault.Plan {
	return &fault.Plan{
		NodeMTTFSec:    150,
		RepairDelaySec: 30,
		StragglerProb:  0.2,
		Speculation:    true,
	}
}

// spotSpec is a reliable + preemptible two-class template: spot nodes are 3x
// cheaper but carry a heavy revocation hazard.
func spotSpec() cluster.Spec {
	spec := cluster.Default(0)
	spec.NumNodes = 0
	spec.Classes = []cluster.NodeClass{
		{Name: "reliable", Count: 8, Capacity: cluster.Resource{MemoryMB: 32768, VCores: 32},
			CPUs: 6, Disks: 1, DiskMBps: 240, NetworkMBps: 110, Price: 3},
		{Name: "spot", Count: 8, Capacity: cluster.Resource{MemoryMB: 32768, VCores: 32},
			CPUs: 6, Disks: 1, DiskMBps: 240, NetworkMBps: 110,
			Preemptible: true, RevocationRate: 60, Price: 1},
	}
	return spec
}

// A faults block must never alias the fault-free cache entry, and distinct
// scenarios must key apart, on all three computed endpoints. Preemptible
// class fields are part of the spec key for the same reason.
func TestFaultScenariosKeyApart(t *testing.T) {
	job := testJob(t, 512, 2)
	spec := cluster.Default(2)

	sim := SimulateRequest{Spec: spec, Jobs: []workload.Job{job}, Seed: 1, Reps: 3}
	simKeys := map[string]bool{simulateKey(sim): true}
	sim.Faults = chaosPlan()
	simKeys[simulateKey(sim)] = true
	tweaked := *chaosPlan()
	tweaked.NodeMTTFSec = 151
	sim.Faults = &tweaked
	simKeys[simulateKey(sim)] = true
	if len(simKeys) != 3 {
		t.Errorf("simulate keys collide across fault scenarios: %d distinct, want 3", len(simKeys))
	}

	pred := PredictRequest{Spec: spec, Job: job}
	base := predictKey(pred)
	pred.Faults = chaosPlan()
	if predictKey(pred) == base {
		t.Error("predict key ignores the faults block")
	}

	cmp := CompareRequest{Spec: spec, Job: job, Seed: 1, Reps: 1}
	cbase := compareKey(cmp)
	cmp.Faults = chaosPlan()
	if compareKey(cmp) == cbase {
		t.Error("compare key ignores the faults block")
	}

	// Revocation hazard lives in the spec, not the plan: flipping a class
	// preemptible must change the key even with no faults block at all.
	spot := SimulateRequest{Spec: spotSpec(), Jobs: []workload.Job{job}, Seed: 1, Reps: 3}
	k1 := simulateKey(spot)
	spot.Spec.Classes[1].RevocationRate = 120
	if simulateKey(spot) == k1 {
		t.Error("simulate key ignores class revocation rate")
	}
}

// A faulty simulation reports ordered quantiles over its seeded runs, carries
// the injection tally, and feeds the two fault counters; a fault-free run on
// the same service leaves stats nil and the counters untouched.
func TestSimulateWithFaultsQuantilesAndMetrics(t *testing.T) {
	s := New(Options{Workers: 2, CacheSize: 8})
	req := SimulateRequest{
		Spec: cluster.Default(4), Jobs: []workload.Job{testJob(t, 2048, 4)},
		Seed: 7, Reps: 5, Faults: chaosPlan(),
	}
	resp, err := s.Simulate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	q := resp.Quantiles
	if !(q.P50 > 0 && q.P50 <= q.P95 && q.P95 <= q.P99) {
		t.Errorf("quantiles not ordered: p50=%v p95=%v p99=%v", q.P50, q.P95, q.P99)
	}
	if q.P50 != resp.Result.MeanResponse() {
		t.Errorf("median result %v != p50 %v", resp.Result.MeanResponse(), q.P50)
	}
	st := resp.Result.Faults
	if st == nil {
		t.Fatal("faulty simulation returned no FaultStats")
	}
	if st.NodeFailures == 0 {
		t.Errorf("aggressive MTTF injected no node failures: %+v", st)
	}

	m := s.Metrics()
	if m.SimFaultsInjected <= 0 {
		t.Errorf("SimFaultsInjected = %d, want > 0", m.SimFaultsInjected)
	}
	if m.SimTasksReexecuted <= 0 {
		t.Errorf("SimTasksReexecuted = %d, want > 0", m.SimTasksReexecuted)
	}

	clean := req
	clean.Faults = nil
	cresp, err := s.Simulate(context.Background(), clean)
	if err != nil {
		t.Fatal(err)
	}
	if cresp.Cached {
		t.Error("fault-free request hit the faulty run's cache entry")
	}
	if cresp.Result.Faults != nil {
		t.Errorf("fault-free simulation carries FaultStats: %+v", cresp.Result.Faults)
	}
	after := s.Metrics()
	if after.SimFaultsInjected != m.SimFaultsInjected || after.SimTasksReexecuted != m.SimTasksReexecuted {
		t.Errorf("fault-free run moved the fault counters: %d/%d -> %d/%d",
			m.SimFaultsInjected, m.SimTasksReexecuted, after.SimFaultsInjected, after.SimTasksReexecuted)
	}
}

// Quantile planning is a simulator feature: the analytic model predicts
// means, and only the three precomputed quantiles are accepted.
func TestPlanQuantileValidation(t *testing.T) {
	s := New(Options{Workers: 2})
	job := testJob(t, 512, 1)
	for name, req := range map[string]PlanRequest{
		"no simulator": {Spec: cluster.Default(4), Job: job, Nodes: []int{2, 4}, Quantile: 0.99},
		"odd quantile": {Spec: cluster.Default(4), Job: job, Nodes: []int{2, 4},
			UseSimulator: true, Reps: 3, Quantile: 0.9},
	} {
		if _, err := s.Plan(context.Background(), req); err == nil || !IsInvalidRequest(err) {
			t.Errorf("%s: want invalid-request error, got %v", name, err)
		}
	}
}

// The headline planner scenario: sweep reliable-vs-preemptible mixes on the
// simulator at p99 under revocation risk, and pick the cheapest mix whose
// p99 still meets the deadline. Candidate Cost must reflect class prices.
func TestPlanPreemptibleMixAtP99(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator-backed plan sweep")
	}
	spec := spotSpec()
	mixes := [][]int{{6, 0}, {4, 2}, {2, 4}, {0, 6}}
	base := PlanRequest{
		Spec: spec, Job: testJob(t, 2048, 2),
		ClassCounts:  mixes,
		UseSimulator: true, Seed: 11, Reps: 5,
		Quantile: 0.99,
		// Revoked spot nodes rejoin after a while, as cloud spot pools do;
		// without repair an all-spot mix can bleed out entirely.
		Faults: &fault.Plan{RepairDelaySec: 45},
	}

	s := New(Options{Workers: 4, CacheSize: 64})
	survey, err := s.Plan(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	byTotal := map[int]PlanCandidate{}
	for _, c := range survey.Candidates {
		if c.Err != "" {
			t.Fatalf("mix %v failed: %s", c.ClassCounts, c.Err)
		}
		lo = math.Min(lo, c.ResponseTime)
		hi = math.Max(hi, c.ResponseTime)
		byTotal[c.ClassCounts[0]] = c
		weight := 3*float64(c.ClassCounts[0]) + 1*float64(c.ClassCounts[1])
		if got, want := c.Cost, c.ResponseTime*weight; math.Abs(got-want) > 1e-9*want {
			t.Errorf("mix %v: cost %v != p99 %v x price weight %v", c.ClassCounts, got, c.ResponseTime, weight)
		}
	}
	if hi <= lo {
		t.Fatalf("p99 response range degenerate: [%v, %v]", lo, hi)
	}

	// A deadline between the fastest and slowest p99 keeps some mixes
	// infeasible; the winner must be the cheapest of the feasible ones.
	req := base
	req.DeadlineSec = hi // all mixes feasible: cheapest wins outright
	all, err := s.Plan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if all.Best == nil || !all.Best.Feasible {
		t.Fatal("no feasible plan with every mix under the deadline")
	}
	for _, c := range all.Candidates {
		if c.Err == "" && c.Feasible && c.Cost < all.Best.Cost {
			t.Errorf("best cost %v beaten by feasible mix %v at %v", all.Best.Cost, c.ClassCounts, c.Cost)
		}
	}

	req.DeadlineSec = (lo + hi) / 2
	mid, err := s.Plan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if mid.Best != nil {
		if !mid.Best.Feasible || mid.Best.ResponseTime > req.DeadlineSec {
			t.Errorf("best plan misses its own p99 deadline: %+v", *mid.Best)
		}
		for _, c := range mid.Candidates {
			if c.Err == "" && c.Feasible && c.Cost < mid.Best.Cost {
				t.Errorf("best cost %v beaten by feasible mix %v at %v", mid.Best.Cost, c.ClassCounts, c.Cost)
			}
		}
	}
}
