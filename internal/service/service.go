// Package service is the long-lived prediction engine behind cmd/mrserved:
// it wraps the analytic model (internal/core), the discrete-event simulator
// (internal/mrsim) and the static baselines behind one concurrent
// request/response API suitable for serving many what-if scenarios.
//
// Three mechanisms make repeated operational queries cheap:
//
//   - a bounded worker pool caps concurrent model/simulator executions, so a
//     burst of requests degrades into queueing instead of thrashing;
//   - an LRU cache keyed on a canonical hash of the full request
//     (cluster spec, job, scheduler policy, estimator, job count) makes
//     repeated predictions O(1);
//   - a singleflight layer deduplicates concurrent identical requests, so a
//     thundering herd computes once and shares the result.
//
// The what-if planner (planner.go) sweeps cluster size, block size,
// reducer count and scheduler policy through the same pool and cache to
// answer capacity-planning and deadline queries in one call. Deadline
// queries ride a monotone search engine (search.go) — bisection on the
// node axis plus dominance pruning — that returns the grid's answer in
// O(log N) model evaluations instead of O(N).
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hadoop2perf/internal/admit"
	"hadoop2perf/internal/cluster"
	"hadoop2perf/internal/core"
	"hadoop2perf/internal/fault"
	"hadoop2perf/internal/mrsim"
	"hadoop2perf/internal/obs"
	"hadoop2perf/internal/stats"
	"hadoop2perf/internal/workload"
	"hadoop2perf/internal/yarn"
)

// Defaults for Options fields left zero.
const (
	DefaultCacheSize = 1024
	DefaultSimReps   = 5
)

// Request ceilings. The engine fronts untrusted HTTP input, so every
// quantity that scales work or memory is bounded: a single request may not
// allocate unbounded job slices or pin a worker for hours.
const (
	// MaxNumJobs bounds the concurrent-job population of one request (the
	// MVA step is O(N²) in it; the paper evaluates N ≤ 4).
	MaxNumJobs = 64
	// MaxSimJobs bounds the job list of one simulation.
	MaxSimJobs = 64
	// MaxSimReps bounds the median-of-seeds repetition count.
	MaxSimReps = 25
)

// Options configures a Service.
type Options struct {
	// Workers bounds concurrently executing model/simulator jobs
	// (default: GOMAXPROCS).
	Workers int
	// CacheSize is the LRU entry capacity (default 1024).
	CacheSize int
	// SimReps is the default median-of-seeds repetition count for simulation
	// requests that leave Reps zero (default 5, the paper's methodology).
	SimReps int
	// ProfileTTL is the default lifetime of calibrated profiles (default
	// DefaultProfileTTL); per-request TTLs override it.
	ProfileTTL time.Duration
	// MaxProfiles bounds the calibrated-profile registry population
	// (default DefaultMaxProfiles).
	MaxProfiles int
	// CacheTTL ages response-cache entries: an entry older than CacheTTL
	// reads as a miss (and is recomputed), but stays resident so the
	// serve-stale degradation path can fall back to it when the worker pool
	// is saturated. Zero (the default) never expires entries — the
	// historical behavior.
	CacheTTL time.Duration
	// AdmitMaxQueueCost bounds the admission controller's outstanding
	// admitted cost (default Workers × admit.DefaultQueueFactor). Requests
	// beyond the bound are shed with a structured 503.
	AdmitMaxQueueCost int
	// BreakerThreshold is the consecutive-timeout count that trips the
	// simulator circuit breaker (default admit.DefaultTripThreshold);
	// BreakerCooldown how long it stays open before a half-open probe
	// (default admit.DefaultCooldown).
	BreakerThreshold int
	BreakerCooldown  time.Duration // see BreakerThreshold
}

func (o *Options) applyDefaults() {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.CacheSize <= 0 {
		o.CacheSize = DefaultCacheSize
	}
	if o.SimReps <= 0 {
		o.SimReps = DefaultSimReps
	}
	if o.ProfileTTL <= 0 {
		o.ProfileTTL = DefaultProfileTTL
	}
	if o.MaxProfiles <= 0 {
		o.MaxProfiles = DefaultMaxProfiles
	}
}

// invalidRequestError marks errors raised by request validation, before any
// computation, so transports can map them to client-fault status codes.
type invalidRequestError struct{ err error }

func (e invalidRequestError) Error() string { return e.err.Error() }
func (e invalidRequestError) Unwrap() error { return e.err }

// invalid wraps a validation error (nil stays nil).
func invalid(err error) error {
	if err == nil {
		return nil
	}
	return invalidRequestError{err}
}

// IsInvalidRequest reports whether err comes from request validation (a
// client mistake) as opposed to an engine failure.
func IsInvalidRequest(err error) bool {
	var e invalidRequestError
	return errors.As(err, &e)
}

// Metrics is a point-in-time snapshot of service counters.
type Metrics struct {
	// PredictRequests through CalibrateRequests count accepted API calls
	// per kind.
	PredictRequests   int64 `json:"predictRequests"`
	SimulateRequests  int64 `json:"simulateRequests"`  // see PredictRequests
	CompareRequests   int64 `json:"compareRequests"`   // see PredictRequests
	PlanRequests      int64 `json:"planRequests"`      // see PredictRequests
	CalibrateRequests int64 `json:"calibrateRequests"` // see PredictRequests
	// CacheHits counts requests served without computing (LRU hit or a
	// shared singleflight result); CacheMisses counts actual computations.
	CacheHits   int64 `json:"cacheHits"`
	CacheMisses int64 `json:"cacheMisses"` // see CacheHits
	// HitRate is CacheHits / (CacheHits + CacheMisses), 0 when idle.
	HitRate float64 `json:"hitRate"`
	// InFlightSims is the number of simulator executions running right now.
	InFlightSims int64 `json:"inFlightSims"`
	// SimRuns counts completed simulator executions (each is Reps seeded runs).
	SimRuns int64 `json:"simRuns"`
	// CacheEntries is the current LRU population.
	CacheEntries int `json:"cacheEntries"`
	// ProfilesActive is the current count of live (unexpired) calibrated
	// profiles in the registry.
	ProfilesActive int `json:"profilesActive"`
	// ModelOuterIterations accumulates the outer damped rounds of every
	// computed (non-cached) model prediction; ModelInnerIterations the inner
	// MVA fixed-point sweeps. Together with CacheMisses they make the
	// convergence cost of production traffic observable — the warm-start
	// win shows up here as fewer iterations per miss.
	ModelOuterIterations int64 `json:"modelOuterIterations"`
	ModelInnerIterations int64 `json:"modelInnerIterations"` // see ModelOuterIterations
	// WarmPredictions counts computed predictions that were seeded from a
	// retained warm-start neighbor (the planner's axis chains).
	WarmPredictions int64 `json:"warmPredictions"`
	// RateLimited counts requests rejected with HTTP 429 by the per-client
	// token-bucket limiter (0 when rate limiting is disabled).
	RateLimited int64 `json:"rateLimited"`
	// WorkflowRequests counts predict/plan requests that carried a workflow
	// block (also included in PredictRequests/PlanRequests).
	WorkflowRequests int64 `json:"workflowRequests"`
	// SimFaultsInjected accumulates node failures (including preemptible
	// revocations) injected across the seeded repetitions of completed
	// simulator executions; SimTasksReexecuted the task attempts re-enqueued
	// after node loss plus speculative backups launched. Both stay 0 for
	// fault-free traffic.
	SimFaultsInjected  int64 `json:"simFaultsInjected"`
	SimTasksReexecuted int64 `json:"simTasksReexecuted"` // see SimFaultsInjected
	// Admission is the admission controller's live snapshot: outstanding
	// admitted cost, the queue bound, the current wait estimate and the
	// per-class admitted / per-reason shed totals.
	Admission admit.Snapshot `json:"admission"`
	// BreakerState names the simulator circuit breaker's current state
	// ("closed", "open", "half_open"); BreakerStateCode is its numeric twin
	// (0/1/2) for the mrserved_breaker_state gauge; BreakerTrips counts
	// closed→open transitions since start.
	BreakerState     string `json:"breakerState"`
	BreakerStateCode int    `json:"breakerStateCode"` // see BreakerState
	BreakerTrips     int64  `json:"breakerTrips"`     // see BreakerState
	// DegradedResponses counts simulator-backed answers served from the
	// model-only fallback while the breaker was open; StaleServed counts
	// expired cache entries served under pool saturation. Both stay 0 in
	// healthy operation.
	DegradedResponses int64 `json:"degradedResponses"`
	StaleServed       int64 `json:"staleServed"` // see DegradedResponses
	// Draining reports whether the service has begun shutdown drain (new
	// work is shed, in-flight work finishes).
	Draining bool `json:"draining"`
	// RequestDurations and StageDurations are the JSON twins of the
	// mrserved_request_duration_seconds and mrserved_stage_duration_seconds
	// Prometheus families: cumulative fixed-bucket latency histograms keyed
	// by request kind and by serving stage respectively.
	RequestDurations map[string]obs.HistogramSnapshot `json:"requestDurationsSeconds"`
	StageDurations   map[string]obs.HistogramSnapshot `json:"stageDurationsSeconds"` // see RequestDurations
}

// Service is a concurrent prediction engine. It is safe for use from many
// goroutines; create one with New.
type Service struct {
	opts   Options
	sem    chan struct{}
	cache  *shardedCache
	flight *shardedFlight
	// profiles is the versioned registry of calibrated (trace-fitted)
	// per-class profiles referenced by request Profile fields.
	profiles *profileRegistry
	// predictors recycles allocation-lean model evaluators across requests:
	// each worker borrows one for the duration of a model run, so steady
	// traffic stops allocating the O(T²) overlap scaffolding per request.
	predictors sync.Pool
	// reqHist holds the per-kind request-latency histograms backing the
	// mrserved_request_duration_seconds family, indexed by the kind
	// constants (aligned with RequestKinds); stageHist the per-stage
	// histograms backing mrserved_stage_duration_seconds. Both are built
	// once in New and read-only afterwards, so recording needs no locks.
	reqHist   [numKinds]*obs.Histogram
	stageHist [obs.NumStages]*obs.Histogram
	// admission is the bounded cost-classed admission controller fronting
	// the worker pool; breaker the consecutive-timeout circuit breaker
	// guarding simulator-backed paths.
	admission *admit.Controller
	breaker   *admit.Breaker

	predictReqs   atomic.Int64
	simulateReqs  atomic.Int64
	compareReqs   atomic.Int64
	planReqs      atomic.Int64
	calibrateReqs atomic.Int64
	hits          atomic.Int64
	misses        atomic.Int64
	inFlightSims  atomic.Int64
	simRuns       atomic.Int64
	outerIters    atomic.Int64
	innerIters    atomic.Int64
	warmPredicts  atomic.Int64
	rateLimited   atomic.Int64
	simFaults     atomic.Int64
	simReexec     atomic.Int64
	workflowReqs  atomic.Int64
	degradedResps atomic.Int64
	staleServed   atomic.Int64
}

// Request-kind indices into the request-duration histograms, aligned with
// RequestKinds.
const (
	kindHealthz = iota
	kindMetrics
	kindProfiles
	kindPredict
	kindSimulate
	kindCompare
	kindPlan
	kindCalibrate
	kindOther
	numKinds
)

// RequestKinds is the label domain of the request-duration histograms:
// every HTTP endpoint kind plus "other" for unmatched paths, in kind-index
// order.
func RequestKinds() []string {
	return []string{
		"healthz", "metrics", "profiles",
		"predict", "simulate", "compare", "plan", "calibrate", "other",
	}
}

// New builds a Service with the given options.
func New(opts Options) *Service {
	opts.applyDefaults()
	s := &Service{
		opts:       opts,
		sem:        make(chan struct{}, opts.Workers),
		cache:      newShardedCache(opts.CacheSize, opts.CacheTTL),
		flight:     newShardedFlight(),
		profiles:   newProfileRegistry(opts.MaxProfiles, opts.ProfileTTL),
		predictors: sync.Pool{New: func() any { return core.NewPredictor() }},
		admission: admit.NewController(admit.Config{
			Capacity:     opts.Workers,
			MaxQueueCost: opts.AdmitMaxQueueCost,
		}),
		breaker: admit.NewBreaker(admit.BreakerConfig{
			TripThreshold: opts.BreakerThreshold,
			Cooldown:      opts.BreakerCooldown,
		}),
	}
	for i := range s.reqHist {
		s.reqHist[i] = obs.NewHistogram(obs.DefaultLatencyBuckets())
	}
	for i := range s.stageHist {
		s.stageHist[i] = obs.NewHistogram(obs.DefaultLatencyBuckets())
	}
	return s
}

// observeRequest records one finished HTTP request into its kind's latency
// histogram (out-of-range kinds fold into "other").
func (s *Service) observeRequest(kind int, d time.Duration) {
	if kind < 0 || kind >= numKinds {
		kind = kindOther
	}
	s.reqHist[kind].Observe(d.Seconds())
}

// endSpan records one completed stage span — started at start — into both
// the request's trace (nil traces are no-ops) and the service-wide stage
// histogram. Call sites use `defer s.endSpan(tr, stage, time.Now())`: the
// argument form keeps the defer open-coded and closure-free, so a span
// costs two clock reads and no allocation.
func (s *Service) endSpan(tr *obs.Trace, stage obs.Stage, start time.Time) {
	d := time.Since(start)
	tr.Add(stage, d)
	s.stageHist[stage].Observe(d.Seconds())
}

// Metrics returns a snapshot of the service counters.
func (s *Service) Metrics() Metrics {
	m := Metrics{
		PredictRequests:   s.predictReqs.Load(),
		SimulateRequests:  s.simulateReqs.Load(),
		CompareRequests:   s.compareReqs.Load(),
		PlanRequests:      s.planReqs.Load(),
		CalibrateRequests: s.calibrateReqs.Load(),
		CacheHits:         s.hits.Load(),
		CacheMisses:       s.misses.Load(),
		InFlightSims:      s.inFlightSims.Load(),
		SimRuns:           s.simRuns.Load(),
		CacheEntries:      s.cache.len(),
		ProfilesActive:    s.profiles.liveCount(),

		ModelOuterIterations: s.outerIters.Load(),
		ModelInnerIterations: s.innerIters.Load(),
		WarmPredictions:      s.warmPredicts.Load(),
		RateLimited:          s.rateLimited.Load(),
		WorkflowRequests:     s.workflowReqs.Load(),
		SimFaultsInjected:    s.simFaults.Load(),
		SimTasksReexecuted:   s.simReexec.Load(),

		Admission:         s.admission.Snapshot(),
		BreakerTrips:      s.breaker.Trips(),
		DegradedResponses: s.degradedResps.Load(),
		StaleServed:       s.staleServed.Load(),
		Draining:          s.admission.Draining(),

		RequestDurations: make(map[string]obs.HistogramSnapshot, numKinds),
		StageDurations:   make(map[string]obs.HistogramSnapshot, obs.NumStages),
	}
	m.BreakerStateCode = s.breaker.State()
	m.BreakerState = admit.StateName(m.BreakerStateCode)
	if tot := m.CacheHits + m.CacheMisses; tot > 0 {
		m.HitRate = float64(m.CacheHits) / float64(tot)
	}
	for i, name := range RequestKinds() {
		m.RequestDurations[name] = s.reqHist[i].Snapshot()
	}
	for i, h := range s.stageHist {
		m.StageDurations[obs.Stage(i).String()] = h.Snapshot()
	}
	return m
}

// acquire takes a worker-pool slot, honoring cancellation while queued.
// The wait is recorded as the request's queue_wait stage.
func (s *Service) acquire(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		// A slot was free: record the zero-length wait without paying two
		// clock reads on the common uncontended path.
		obs.FromContext(ctx).Add(obs.StageQueueWait, 0)
		s.stageHist[obs.StageQueueWait].Observe(0)
		return nil
	default:
	}
	defer s.endSpan(obs.FromContext(ctx), obs.StageQueueWait, time.Now())
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Service) release() { <-s.sem }

// saturated reports whether every worker-pool slot is busy right now — the
// trigger for the serve-stale cache fallback.
func (s *Service) saturated() bool { return len(s.sem) == cap(s.sem) }

// Admission exposes the service's admission controller so transports can
// make shed decisions before decoding bodies and lifecycle code can drain.
func (s *Service) Admission() *admit.Controller { return s.admission }

// StartDrain begins shutdown drain: every subsequent admission is shed with
// a draining 503 and Draining/readiness flips, while in-flight requests run
// to completion. Irreversible by design — drain precedes process exit.
func (s *Service) StartDrain() { s.admission.StartDrain() }

// Draining reports whether StartDrain was called.
func (s *Service) Draining() bool { return s.admission.Draining() }

// Overloaded reports whether the admission queue is at its bound — the
// not-ready signal for load balancers (see /readyz).
func (s *Service) Overloaded() bool { return s.admission.Overloaded() }

// errBreakerOpen aborts a simulator compute when the circuit breaker
// refuses the call; callers catch it and serve the model-only fallback.
// Raised inside the compute closure (not before the cache lookup) so cache
// hits keep flowing while the breaker is open.
var errBreakerOpen = errors.New("service: simulator circuit breaker open")

// cachedCompute serves one request through the LRU + singleflight path:
// cache hit, or join an in-flight identical computation, or compute and
// populate the cache. compute is responsible for its own worker-pool usage
// (acquire/release) so that uninterruptible work can keep its slot past a
// caller's cancellation.
//
// When entries carry a TTL (Options.CacheTTL > 0) and the worker pool is
// saturated, an expired-but-resident entry is served immediately with
// stale=true instead of queueing a recompute — an old answer beats an
// overloaded queue. Stale serves never happen while the pool has capacity
// (the entry just recomputes) and never with TTL zero.
func (s *Service) cachedCompute(ctx context.Context, key string, compute func() (any, error)) (v any, cached, stale bool, err error) {
	tr := obs.FromContext(ctx)
	lookupStart := time.Now()
	v, ok := s.cache.get(key)
	s.endSpan(tr, obs.StageCacheLookup, lookupStart)
	if ok {
		s.hits.Add(1)
		tr.AddCounter(obs.CounterCacheHits, 1)
		return v, true, false, nil
	}
	if s.opts.CacheTTL > 0 && s.saturated() {
		if v, ok := s.cache.getStale(key); ok {
			s.staleServed.Add(1)
			s.hits.Add(1)
			tr.AddCounter(obs.CounterCacheHits, 1)
			return v, true, true, nil
		}
	}
	// The leader rechecks the cache before computing: it may have lost a
	// race with a previous leader that populated the entry between this
	// caller's lookup and its turn at the flight group.
	fromCache := false
	v, err, shared := s.flight.do(ctx, key, func() (any, error) {
		if v, ok := s.cache.get(key); ok {
			fromCache = true
			return v, nil
		}
		v, err := compute()
		if err != nil {
			return nil, err
		}
		s.cache.add(key, v)
		return v, nil
	})
	if err != nil {
		return nil, false, false, err
	}
	if shared || fromCache {
		s.hits.Add(1)
		tr.AddCounter(obs.CounterCacheHits, 1)
	} else {
		s.misses.Add(1)
		tr.AddCounter(obs.CounterCacheMisses, 1)
	}
	return v, shared || fromCache, false, nil
}

// PredictRequest asks for one analytic model evaluation.
type PredictRequest struct {
	// Spec is the cluster to predict on.
	Spec cluster.Spec
	// Job is the MapReduce job whose response time is estimated.
	Job workload.Job
	// NumJobs is the closed-network population (default 1).
	NumJobs int
	// Estimator selects the tree estimator (default fork/join).
	Estimator core.Estimator
	// Faults optionally describes a fault-injection scenario; the model
	// corrects its effective demands for the expected rework (retries,
	// capacity loss, stragglers, speculation). nil leaves the prediction
	// bit-identical to the fault-free model. Preemptible classes with a
	// revocation rate activate the correction even under a nil plan.
	Faults *fault.Plan
	// Profile optionally names a calibrated profile (stored via Calibrate)
	// whose fitted per-class statistics seed the model's A1 initialization
	// (§4.2.1, first approach) instead of the Herodotou static model. The
	// name resolves at evaluation time and the resolved *content* rides the
	// cache key, so recalibration can never serve stale cached predictions.
	Profile string
	// resolved pins the profile snapshot for the lifetime of one request
	// (and across every candidate of one plan); nil when Profile is empty.
	resolved *calibratedProfile
	// Workflow, when non-nil, turns the request into a DAG evaluation: the
	// stages' jobs replace Job (which is then ignored), Spec becomes the
	// default cluster of stages without their own, Profile the default
	// calibrated profile, and the response carries the composed
	// critical-path makespan plus a per-stage WorkflowReport.
	Workflow *Workflow
}

func (r *PredictRequest) validate() error {
	if r.NumJobs <= 0 {
		r.NumJobs = 1
	}
	if r.NumJobs > MaxNumJobs {
		return fmt.Errorf("service: NumJobs %d exceeds limit %d", r.NumJobs, MaxNumJobs)
	}
	if err := r.Spec.Validate(); err != nil {
		return err
	}
	if err := r.Job.Validate(); err != nil {
		return err
	}
	if err := r.Faults.Validate(); err != nil {
		return err
	}
	if _, err := r.Estimator.MarshalText(); err != nil {
		return err
	}
	return nil
}

// PredictResponse is an analytic prediction plus serving metadata. The
// embedded Prediction may be shared with other cache readers — treat it as
// read-only.
type PredictResponse struct {
	// Prediction is the model output (response time, iterations, artifacts).
	Prediction core.Prediction
	// Cached reports whether the response was served without a fresh model
	// run (LRU hit or shared in-flight computation).
	Cached bool
	// Stale reports that the answer came from an expired cache entry served
	// under pool saturation (see Options.CacheTTL); always false in healthy
	// operation.
	Stale bool
	// Profile and ProfileVersion identify the calibrated profile snapshot
	// that seeded the model (empty/0 when the request named none).
	Profile        string
	ProfileVersion int64 // see Profile
	// Workflow carries the per-stage schedule and critical path of a
	// workflow-bearing request; nil for single-job requests, whose wire
	// shape is byte-identical to the pre-workflow service.
	Workflow *WorkflowReport
}

// Predict runs (or recalls) one analytic model evaluation — or, when the
// request carries a Workflow block, the composed critical-path evaluation
// of the whole DAG.
func (s *Service) Predict(ctx context.Context, req PredictRequest) (PredictResponse, error) {
	s.predictReqs.Add(1)
	if req.Workflow != nil {
		return s.predictWorkflow(ctx, req)
	}
	return s.predict(ctx, req)
}

// resolveProfile fills req's resolved snapshot from its Profile name,
// recording the lookup as the request's profile_resolve stage. A request
// that already carries a snapshot (a plan candidate) keeps it, so one plan
// stays internally consistent even when a concurrent Calibrate swaps the
// name mid-flight.
func (s *Service) resolveProfile(ctx context.Context, name string, resolved **calibratedProfile) error {
	if *resolved != nil || name == "" {
		return nil
	}
	defer s.endSpan(obs.FromContext(ctx), obs.StageProfileResolve, time.Now())
	p, err := s.profiles.resolve(name)
	if err != nil {
		return invalid(err)
	}
	*resolved = p
	return nil
}

// predict is Predict without the API-call counter — the planner evaluates
// candidates through it so /v1/metrics keeps counting client calls, not
// internal fan-out.
func (s *Service) predict(ctx context.Context, req PredictRequest) (PredictResponse, error) {
	return s.predictEval(ctx, req, nil)
}

// predictEval serves one model evaluation through the cache/singleflight
// path. chain, when non-nil, is a caller-owned warm-start evaluator used to
// compute misses via PredictWarm instead of a pooled cold Predict — the
// planner's axis walks thread one chain through their neighboring
// evaluations. A chain is not safe for concurrent use; callers must
// serialize their own calls (warm results stay within 1e-6 relative of
// cold ones, the core warm-start contract, so chained and cold computations
// are interchangeable cache citizens).
func (s *Service) predictEval(ctx context.Context, req PredictRequest, chain *core.Predictor) (PredictResponse, error) {
	if err := req.validate(); err != nil {
		return PredictResponse{}, invalid(err)
	}
	if err := s.resolveProfile(ctx, req.Profile, &req.resolved); err != nil {
		return PredictResponse{}, err
	}
	v, cached, stale, err := s.cachedCompute(ctx, predictKey(req), func() (any, error) {
		if err := s.acquire(ctx); err != nil {
			return nil, err
		}
		defer s.release()
		cfg := core.Config{
			Spec: req.Spec, Job: req.Job, NumJobs: req.NumJobs, Estimator: req.Estimator,
			Faults: req.Faults,
		}
		if req.resolved != nil {
			cfg.History = req.resolved.history
		}
		tr := obs.FromContext(ctx)
		solveStart := time.Now()
		var pred core.Prediction
		var err error
		if chain != nil {
			pred, err = chain.PredictWarmContext(ctx, cfg)
		} else {
			p := s.predictors.Get().(*core.Predictor)
			pred, err = p.PredictContext(ctx, cfg)
			s.predictors.Put(p)
		}
		s.endSpan(tr, obs.StageModelSolve, solveStart)
		if err != nil {
			return nil, err
		}
		s.outerIters.Add(int64(pred.Iterations))
		s.innerIters.Add(int64(pred.InnerIterations))
		if pred.WarmStarted {
			s.warmPredicts.Add(1)
		}
		tr.AddCounter(obs.CounterPredicts, 1)
		tr.AddCounter(obs.CounterOuterIterations, int64(pred.Iterations))
		tr.AddCounter(obs.CounterInnerIterations, int64(pred.InnerIterations))
		if pred.WarmStarted {
			tr.AddCounter(obs.CounterWarmStarted, 1)
		}
		return pred, nil
	})
	if err != nil {
		return PredictResponse{}, err
	}
	out := PredictResponse{Prediction: v.(core.Prediction), Cached: cached, Stale: stale}
	if req.resolved != nil {
		out.Profile = req.resolved.info.Name
		out.ProfileVersion = req.resolved.info.Version
	}
	return out, nil
}

// predictEvalBatch serves a set of sibling model evaluations — the
// planner's bisection probes over neighboring node counts — as one batch:
// each request is checked against the cache individually, and all misses
// ride a single core.PredictBatchContext call on the caller-owned chain,
// which warm-chains them through one evaluator (each computed miss seeds
// the next). One worker-pool slot covers the whole batched solve.
//
// Unlike predictEval, misses bypass the singleflight group: the batch is
// planner-internal fan-in, its keys are distinct by construction, and a
// duplicate computation against a concurrent identical request is
// tolerated — both populate the same cache key with interchangeable values
// (the core warm contract). Counters and traces account per miss, so
// mrserved_model_iterations_total{loop=inner} accrues exactly the per-lane
// sweep counts the underlying solves used. Like predictEval's chain mode,
// the chain is single-owner: callers serialize.
func (s *Service) predictEvalBatch(ctx context.Context, reqs []PredictRequest, chain *core.Predictor) ([]PredictResponse, error) {
	out := make([]PredictResponse, len(reqs))
	var missIdx []int
	var cfgs []core.Config
	tr := obs.FromContext(ctx)
	for i := range reqs {
		req := &reqs[i]
		if err := req.validate(); err != nil {
			return nil, invalid(err)
		}
		if err := s.resolveProfile(ctx, req.Profile, &req.resolved); err != nil {
			return nil, err
		}
		if req.resolved != nil {
			out[i].Profile = req.resolved.info.Name
			out[i].ProfileVersion = req.resolved.info.Version
		}
		lookupStart := time.Now()
		v, ok := s.cache.get(predictKey(*req))
		s.endSpan(tr, obs.StageCacheLookup, lookupStart)
		if ok {
			s.hits.Add(1)
			tr.AddCounter(obs.CounterCacheHits, 1)
			out[i].Prediction = v.(core.Prediction)
			out[i].Cached = true
			continue
		}
		cfg := core.Config{
			Spec: req.Spec, Job: req.Job, NumJobs: req.NumJobs, Estimator: req.Estimator,
			Faults: req.Faults,
		}
		if req.resolved != nil {
			cfg.History = req.resolved.history
		}
		missIdx = append(missIdx, i)
		cfgs = append(cfgs, cfg)
	}
	if len(missIdx) == 0 {
		return out, nil
	}
	if err := s.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.release()
	solveStart := time.Now()
	preds, err := chain.PredictBatchContext(ctx, cfgs)
	s.endSpan(tr, obs.StageModelSolve, solveStart)
	if err != nil {
		return nil, err
	}
	for j, i := range missIdx {
		pred := preds[j]
		s.misses.Add(1)
		tr.AddCounter(obs.CounterCacheMisses, 1)
		s.outerIters.Add(int64(pred.Iterations))
		s.innerIters.Add(int64(pred.InnerIterations))
		if pred.WarmStarted {
			s.warmPredicts.Add(1)
		}
		tr.AddCounter(obs.CounterPredicts, 1)
		tr.AddCounter(obs.CounterOuterIterations, int64(pred.Iterations))
		tr.AddCounter(obs.CounterInnerIterations, int64(pred.InnerIterations))
		if pred.WarmStarted {
			tr.AddCounter(obs.CounterWarmStarted, 1)
		}
		s.cache.add(predictKey(reqs[i]), pred)
		out[i].Prediction = pred
	}
	return out, nil
}

// SimulateRequest asks for a median-of-seeds simulator execution.
type SimulateRequest struct {
	// Spec is the cluster to simulate.
	Spec cluster.Spec
	// Jobs is the workload: every job is submitted at t = 0.
	Jobs []workload.Job
	// Seed anchors the consecutive-seed repetitions.
	Seed int64
	// Reps is the median-of-seeds repetition count (default Options.SimReps).
	Reps int
	// Policy orders applications in the RM root queue.
	Policy yarn.Policy
	// Faults optionally injects node failures, straggler tails and
	// speculative re-execution into every seeded repetition. nil leaves the
	// runs bit-identical to fault-free simulations; preemptible classes with
	// a revocation rate are revoked even under a nil plan.
	Faults *fault.Plan
}

func (r *SimulateRequest) validate(defaultReps int) error {
	if r.Reps <= 0 {
		r.Reps = defaultReps
	}
	if r.Reps > MaxSimReps {
		return fmt.Errorf("service: Reps %d exceeds limit %d", r.Reps, MaxSimReps)
	}
	if err := r.Spec.Validate(); err != nil {
		return err
	}
	if len(r.Jobs) == 0 {
		return errors.New("service: simulate needs at least one job")
	}
	if len(r.Jobs) > MaxSimJobs {
		return fmt.Errorf("service: %d jobs exceeds limit %d", len(r.Jobs), MaxSimJobs)
	}
	for i, j := range r.Jobs {
		if err := j.Validate(); err != nil {
			return fmt.Errorf("service: job %d: %w", i, err)
		}
	}
	if err := r.Faults.Validate(); err != nil {
		return err
	}
	if _, err := r.Policy.MarshalText(); err != nil {
		return err
	}
	return nil
}

// SimQuantiles reports mean job response time at fixed quantiles of the
// seeded repetitions, ordered by mean response. With one rep all three
// coincide; under fault injection the spread is the scenario's risk profile.
type SimQuantiles struct {
	// P50 is the median draw's mean response (what Result reports).
	P50 float64 `json:"p50"`
	// P95 and P99 are the tail draws: planning material under faults.
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"` // see P95
}

// simOutcome is the cached payload of one simulator execution: the median
// run plus the quantile summary and the failed-seed count of the batch.
type simOutcome struct {
	median    mrsim.Result
	quantiles SimQuantiles
	failed    int
}

// SimulateResponse is a simulator execution plus serving metadata. The
// embedded Result may be shared with other cache readers — treat it as
// read-only.
type SimulateResponse struct {
	// Result is the median run of the seeded repetitions.
	Result mrsim.Result
	// Quantiles summarizes the batch's mean response at p50/p95/p99.
	Quantiles SimQuantiles
	// FailedSeeds counts seeded repetitions that errored (tolerated as long
	// as a majority succeeds; fault injection makes seeds legitimately
	// fallible).
	FailedSeeds int
	// Cached reports whether the response was served without a fresh run.
	Cached bool
	// Degraded reports that the simulator circuit breaker was open and the
	// response was synthesized from the analytic model instead of simulated:
	// Result carries the model's response time per job, Events is 0 and all
	// quantiles coincide. Degraded responses are never cached.
	Degraded bool
	// Stale reports an expired cache entry served under pool saturation
	// (see Options.CacheTTL).
	Stale bool
}

// Simulate runs (or recalls) a batch of consecutively seeded cluster
// simulations and reports the median run plus the batch's p50/p95/p99
// response quantiles. The run honors ctx: cancellation aborts the
// discrete-event engine at its next poll boundary and Simulate returns
// ctx.Err() promptly.
func (s *Service) Simulate(ctx context.Context, req SimulateRequest) (SimulateResponse, error) {
	s.simulateReqs.Add(1)
	return s.simulate(ctx, req)
}

// simulate is Simulate without the API-call counter (see predict).
//
// The circuit breaker gates the compute closure, not the cache: cached
// results keep flowing while the breaker is open (they cost nothing and
// can't time out), and the single half-open probe is a real simulator run
// rather than a cache hit that would report a misleading Success. When the
// breaker refuses, the response degrades to a model-only synthesis flagged
// Degraded — and is never cached, since the compute aborted with an error.
func (s *Service) simulate(ctx context.Context, req SimulateRequest) (SimulateResponse, error) {
	if err := req.validate(s.opts.SimReps); err != nil {
		return SimulateResponse{}, invalid(err)
	}
	v, cached, stale, err := s.cachedCompute(ctx, simulateKey(req), func() (any, error) {
		if !s.breaker.Allow() {
			return nil, errBreakerOpen
		}
		o, err := s.runSim(ctx, req)
		switch {
		case err == nil:
			s.breaker.Success()
		case errors.Is(err, context.DeadlineExceeded):
			s.breaker.Timeout()
		}
		return o, err
	})
	if errors.Is(err, errBreakerOpen) {
		return s.degradedSimulate(ctx, req)
	}
	if err != nil {
		return SimulateResponse{}, err
	}
	o := v.(simOutcome)
	return SimulateResponse{Result: o.median, Quantiles: o.quantiles, FailedSeeds: o.failed, Cached: cached, Stale: stale}, nil
}

// degradedSimulate synthesizes a SimulateResponse from the analytic model
// while the simulator breaker is open: the model predicts the mean response
// of the closed network of len(Jobs) concurrent copies of the first job, and
// every per-job response (and all quantiles) carries that estimate. The
// shape is honest about its provenance — Events is 0, Degraded is true —
// and the result bypasses the cache entirely.
func (s *Service) degradedSimulate(ctx context.Context, req SimulateRequest) (SimulateResponse, error) {
	s.degradedResps.Add(1)
	pred, err := s.predict(ctx, PredictRequest{
		Spec: req.Spec, Job: req.Jobs[0], NumJobs: len(req.Jobs),
		Faults: req.Faults,
	})
	if err != nil {
		return SimulateResponse{}, err
	}
	rt := pred.Prediction.ResponseTime
	res := mrsim.Result{Jobs: make([]mrsim.JobResult, len(req.Jobs)), Makespan: rt}
	for i := range res.Jobs {
		res.Jobs[i] = mrsim.JobResult{JobID: i, Response: rt, End: rt}
	}
	return SimulateResponse{
		Result:    res,
		Quantiles: SimQuantiles{P50: rt, P95: rt, P99: rt},
		Degraded:  true,
	}, nil
}

// runSim executes the seeded simulation batch under a worker-pool slot,
// synchronously: mrsim threads ctx into the event loop, so a canceled caller
// aborts the engine instead of orphaning a multi-second run. A leader that
// dies of its own cancellation is safe — waiting singleflight followers
// retry as the new leader (TestFlightFollowerSurvivesLeaderCancel).
func (s *Service) runSim(ctx context.Context, req SimulateRequest) (simOutcome, error) {
	if err := s.acquire(ctx); err != nil {
		return simOutcome{}, err
	}
	defer s.release()
	s.inFlightSims.Add(1)
	defer s.inFlightSims.Add(-1)
	defer s.endSpan(obs.FromContext(ctx), obs.StageSimulate, time.Now())
	runs, failed, err := mrsim.RunSeedsContext(ctx, mrsim.Config{
		Spec: req.Spec, Jobs: req.Jobs, Seed: req.Seed, Scheduler: req.Policy,
		Faults: req.Faults,
	}, req.Reps)
	if err != nil {
		return simOutcome{}, err
	}
	s.simRuns.Add(1)
	var injected, reexec int64
	for _, r := range runs {
		if f := r.Faults; f != nil {
			injected += int64(f.NodeFailures)
			reexec += int64(f.TasksReexecuted + f.SpeculativeLaunched)
		}
	}
	if injected > 0 {
		s.simFaults.Add(injected)
	}
	if reexec > 0 {
		s.simReexec.Add(reexec)
	}
	out := simOutcome{
		median: mrsim.Quantile(runs, 0.5),
		quantiles: SimQuantiles{
			P50: mrsim.Quantile(runs, 0.5).MeanResponse(),
			P95: mrsim.Quantile(runs, 0.95).MeanResponse(),
			P99: mrsim.Quantile(runs, 0.99).MeanResponse(),
		},
		failed: failed,
	}
	out.median.FailedSeeds = failed
	return out, nil
}

// CompareRequest validates the model against the simulator for one
// configuration: numJobs concurrent copies of Job (fair scheduling when
// numJobs > 1, mirroring the paper's multi-job methodology).
type CompareRequest struct {
	// Spec is the cluster both sides run on.
	Spec cluster.Spec
	// Job is the job template; NumJobs identical copies are executed.
	Job workload.Job
	// NumJobs is the concurrent-job population (default 1).
	NumJobs int
	// Seed anchors the simulator's consecutive-seed repetitions.
	Seed int64
	// Reps is the median-of-seeds repetition count (default Options.SimReps).
	Reps int
	// Faults injects the scenario into the simulator side and applies the
	// matching analytic correction on the model side, so the comparison
	// measures the fault correction's accuracy.
	Faults *fault.Plan
	// Profile optionally names a calibrated profile seeding the model side
	// of the comparison (see PredictRequest.Profile); the simulator side is
	// unaffected — it executes the job's workload profile directly.
	Profile  string
	resolved *calibratedProfile
}

func (r *CompareRequest) validate(defaultReps int) error {
	if r.NumJobs <= 0 {
		r.NumJobs = 1
	}
	if r.NumJobs > MaxNumJobs {
		return fmt.Errorf("service: NumJobs %d exceeds limit %d", r.NumJobs, MaxNumJobs)
	}
	if r.Reps <= 0 {
		r.Reps = defaultReps
	}
	if r.Reps > MaxSimReps {
		return fmt.Errorf("service: Reps %d exceeds limit %d", r.Reps, MaxSimReps)
	}
	if err := r.Spec.Validate(); err != nil {
		return err
	}
	if err := r.Faults.Validate(); err != nil {
		return err
	}
	return r.Job.Validate()
}

// CompareResponse reports both model estimates against the simulated truth.
type CompareResponse struct {
	// Simulated is the median measured mean job response time.
	Simulated float64
	// ForkJoin and Tripathi are the two model estimates; the *Err fields are
	// signed relative errors vs. Simulated (positive = overestimate).
	ForkJoin    float64
	Tripathi    float64 // see ForkJoin
	ForkJoinErr float64 // see ForkJoin
	TripathiErr float64 // see ForkJoin
	// Cached reports whether the comparison was served without computing.
	Cached bool
	// Degraded reports that the simulator breaker was open, so "Simulated"
	// is itself a model synthesis (see SimulateResponse.Degraded) and the
	// error columns measure model-vs-model agreement, not accuracy. Wire
	// tags keep both resilience flags omitted in healthy operation.
	Degraded bool `json:"Degraded,omitempty"`
	// Stale reports an expired cache entry served under pool saturation.
	Stale bool `json:"Stale,omitempty"`
	// Profile and ProfileVersion identify the calibrated profile snapshot
	// that seeded the model side (empty/0 when the request named none).
	Profile        string
	ProfileVersion int64 // see Profile
}

// errDegraded carries a degraded CompareResponse out of the compute closure
// as an error, so cachedCompute never caches it: the next comparison after
// the breaker closes recomputes against a real simulation.
type errDegraded struct{ resp CompareResponse }

func (errDegraded) Error() string { return "service: degraded comparison (not cached)" }

// Compare validates both model variants against a simulated execution.
func (s *Service) Compare(ctx context.Context, req CompareRequest) (CompareResponse, error) {
	s.compareReqs.Add(1)
	if err := req.validate(s.opts.SimReps); err != nil {
		return CompareResponse{}, invalid(err)
	}
	if err := s.resolveProfile(ctx, req.Profile, &req.resolved); err != nil {
		return CompareResponse{}, err
	}
	v, cached, stale, err := s.cachedCompute(ctx, compareKey(req), func() (any, error) {
		resp, err := s.runCompare(ctx, req)
		if err != nil {
			return nil, err
		}
		if resp.Degraded {
			// Surface the degraded comparison as an error so it skips the
			// cache; Compare unwraps it below.
			return nil, errDegraded{resp}
		}
		return resp, nil
	})
	var out CompareResponse
	var deg errDegraded
	switch {
	case err == nil:
		out = v.(CompareResponse)
		out.Cached = cached
		out.Stale = stale
	case errors.As(err, &deg):
		out = deg.resp
	default:
		return CompareResponse{}, err
	}
	if req.resolved != nil {
		out.Profile = req.resolved.info.Name
		out.ProfileVersion = req.resolved.info.Version
	}
	return out, nil
}

func (s *Service) runCompare(ctx context.Context, req CompareRequest) (CompareResponse, error) {
	jobs := make([]workload.Job, req.NumJobs)
	for i := range jobs {
		j := req.Job
		j.ID = i
		jobs[i] = j
	}
	pol := yarn.PolicyFIFO
	if req.NumJobs > 1 {
		pol = yarn.PolicyFair
	}
	// The inner simulation goes through the shared cache/singleflight path
	// under its own key: a Compare after (or concurrent with) a Simulate of
	// the same configuration reuses its run, and vice versa.
	sim, err := s.simulate(ctx, SimulateRequest{
		Spec: req.Spec, Jobs: jobs, Seed: req.Seed, Reps: req.Reps, Policy: pol,
		Faults: req.Faults,
	})
	if err != nil {
		return CompareResponse{}, err
	}
	res := sim.Result
	if err := s.acquire(ctx); err != nil {
		return CompareResponse{}, err
	}
	defer s.release()
	cfg := core.Config{Spec: req.Spec, Job: req.Job, NumJobs: req.NumJobs,
		Estimator: core.EstimatorForkJoin, Faults: req.Faults}
	if req.resolved != nil {
		cfg.History = req.resolved.history
	}
	tr := obs.FromContext(ctx)
	solveStart := time.Now()
	fj, err := core.PredictContext(ctx, cfg)
	s.endSpan(tr, obs.StageModelSolve, solveStart)
	if err != nil {
		return CompareResponse{}, err
	}
	cfg.Estimator = core.EstimatorTripathi
	solveStart = time.Now()
	tp, err := core.PredictContext(ctx, cfg)
	s.endSpan(tr, obs.StageModelSolve, solveStart)
	if err != nil {
		return CompareResponse{}, err
	}
	measured := res.MeanResponse()
	return CompareResponse{
		Simulated:   measured,
		ForkJoin:    fj.ResponseTime,
		Tripathi:    tp.ResponseTime,
		ForkJoinErr: stats.SignedRelError(fj.ResponseTime, measured),
		TripathiErr: stats.SignedRelError(tp.ResponseTime, measured),
		Degraded:    sim.Degraded,
	}, nil
}
