package service

import (
	"math"
	"net"
	"sync"
	"time"
)

// maxRateClients bounds the limiter's per-client table: when an allow call
// finds the table past this size, buckets that have fully refilled (idle
// long enough to hold no history) are pruned inline, so an address-spraying
// client cannot grow the map without bound.
const maxRateClients = 4096

// rateLimiter is a per-client token-bucket limiter: each client sustains
// `rate` requests per second with bursts up to `burst`. It is the first
// slice of the service-hardening item — protecting the worker pool from a
// single hot client starving everyone else.
type rateLimiter struct {
	mu      sync.Mutex
	rate    float64 // tokens added per second
	burst   float64 // bucket depth
	clients map[string]*tokenBucket
	now     func() time.Time // injectable clock for tests
}

// tokenBucket is one client's bucket state under the limiter's lock.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// newRateLimiter builds a limiter allowing rate requests/second with bursts
// of burst (burst < 1 is raised to 1 so a full bucket always admits one
// request).
func newRateLimiter(rate float64, burst int) *rateLimiter {
	b := float64(burst)
	if b < 1 {
		b = 1
	}
	return &rateLimiter{
		rate:    rate,
		burst:   b,
		clients: make(map[string]*tokenBucket),
		now:     time.Now,
	}
}

// allow reports whether one request from client may proceed, consuming a
// token if so. When denied, retryAfter is how long until the next token
// accrues.
func (l *rateLimiter) allow(client string) (ok bool, retryAfter time.Duration) {
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b, exists := l.clients[client]
	if !exists {
		if len(l.clients) >= maxRateClients {
			l.prune(now)
		}
		b = &tokenBucket{tokens: l.burst, last: now}
		l.clients[client] = b
	} else {
		b.tokens = math.Min(l.burst, b.tokens+l.rate*now.Sub(b.last).Seconds())
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
}

// prune drops clients whose buckets have refilled completely — they carry
// no rate history, so forgetting them is free. Called under the lock.
func (l *rateLimiter) prune(now time.Time) {
	for c, b := range l.clients {
		if math.Min(l.burst, b.tokens+l.rate*now.Sub(b.last).Seconds()) >= l.burst {
			delete(l.clients, c)
		}
	}
}

// clientKey derives the rate-limit identity of a request's remote address:
// the bare host/IP, so one client's connections (ephemeral ports) share a
// bucket. Unparseable addresses fall back to the raw string rather than
// collapsing into one shared bucket.
func clientKey(remoteAddr string) string {
	if host, _, err := net.SplitHostPort(remoteAddr); err == nil {
		return host
	}
	return remoteAddr
}
