package workload

import (
	"testing"
	"testing/quick"
)

func TestBuiltinProfilesValidate(t *testing.T) {
	for _, p := range []Profile{WordCount(), Grep(), TeraSort()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestProfileValidateRejections(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Profile)
	}{
		{"no name", func(p *Profile) { p.Name = "" }},
		{"zero map cpu", func(p *Profile) { p.MapCPUPerMB = 0 }},
		{"zero output ratio", func(p *Profile) { p.MapOutputRatio = 0 }},
		{"zero final ratio", func(p *Profile) { p.OutputRatio = 0 }},
		{"zero spills", func(p *Profile) { p.SpillPasses = 0 }},
		{"jitter too big", func(p *Profile) { p.TaskJitterCV = 1.5 }},
		{"jitter negative", func(p *Profile) { p.TaskJitterCV = -0.1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := WordCount()
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestNewJobValidation(t *testing.T) {
	if _, err := NewJob(0, 1024, 128, 4, WordCount()); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
	bad := []struct {
		name      string
		in, block float64
		reduces   int
	}{
		{"zero input", 0, 128, 4},
		{"zero block", 1024, 0, 4},
		{"zero reduces", 1024, 128, 0},
	}
	for _, tt := range bad {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewJob(0, tt.in, tt.block, tt.reduces, WordCount()); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestNumMaps(t *testing.T) {
	tests := []struct {
		in, block float64
		want      int
	}{
		{1024, 128, 8},
		{5 * 1024, 128, 40},
		{5 * 1024, 64, 80},
		{100, 128, 1},
		{129, 128, 2},
	}
	for _, tt := range tests {
		j, err := NewJob(0, tt.in, tt.block, 1, WordCount())
		if err != nil {
			t.Fatal(err)
		}
		if got := j.NumMaps(); got != tt.want {
			t.Errorf("NumMaps(%v/%v) = %d, want %d", tt.in, tt.block, got, tt.want)
		}
	}
}

func TestSplitMB(t *testing.T) {
	j, err := NewJob(0, 300, 128, 1, WordCount())
	if err != nil {
		t.Fatal(err)
	}
	if got := j.SplitMB(0); got != 128 {
		t.Errorf("split 0 = %v", got)
	}
	if got := j.SplitMB(1); got != 128 {
		t.Errorf("split 1 = %v", got)
	}
	if got := j.SplitMB(2); got != 44 {
		t.Errorf("split 2 = %v, want 44 (partial)", got)
	}
	// Exact multiple: no partial split.
	j2, _ := NewJob(0, 256, 128, 1, WordCount())
	if got := j2.SplitMB(1); got != 128 {
		t.Errorf("exact multiple split = %v", got)
	}
}

func TestSlowStartThreshold(t *testing.T) {
	j, _ := NewJob(0, 1024, 128, 1, WordCount())
	if got := j.SlowStartThreshold(); got != 0.05 {
		t.Errorf("default threshold = %v, want 0.05", got)
	}
	j.SlowStartFraction = 0.5
	if got := j.SlowStartThreshold(); got != 0.5 {
		t.Errorf("override = %v", got)
	}
	j.SlowStart = false
	if got := j.SlowStartThreshold(); got != 1.0 {
		t.Errorf("disabled = %v, want 1.0", got)
	}
}

func TestDataFlowVolumes(t *testing.T) {
	j, _ := NewJob(0, 1000, 128, 4, WordCount())
	wantOut := 1000 * j.Profile.MapOutputRatio
	if got := j.MapOutputMB(); got != wantOut {
		t.Errorf("MapOutputMB = %v, want %v", got, wantOut)
	}
	if got := j.ReduceInputMB(); got != wantOut/4 {
		t.Errorf("ReduceInputMB = %v, want %v", got, wantOut/4)
	}
}

func TestDemandsPositiveAndComposition(t *testing.T) {
	j, _ := NewJob(0, 1024, 128, 4, WordCount())
	md := j.MapDemands(128, 240)
	ss := j.ShuffleSortDemands(110, 240)
	mg := j.MergeDemands(240)
	for name, d := range map[string]Demands{"map": md, "shuffle": ss, "merge": mg} {
		if d.CPU < 0 || d.Disk < 0 || d.Network < 0 {
			t.Errorf("%s has negative demand: %+v", name, d)
		}
		if d.Total() <= 0 {
			t.Errorf("%s has zero total", name)
		}
		if got := d.CPUDisk(); got != d.CPU+d.Disk {
			t.Errorf("%s CPUDisk = %v", name, got)
		}
	}
	if md.Network != 0 {
		t.Errorf("map should have no network demand, got %v", md.Network)
	}
	if ss.Network <= 0 {
		t.Error("shuffle-sort should have network demand")
	}
	if mg.Network != 0 {
		t.Errorf("merge should have no network demand, got %v", mg.Network)
	}
}

func TestMapDemandsScaleWithSplit(t *testing.T) {
	j, _ := NewJob(0, 1024, 128, 4, WordCount())
	small := j.MapDemands(64, 240)
	big := j.MapDemands(128, 240)
	// CPU scales linearly beyond the fixed container startup.
	p := j.Profile
	gotRatio := (big.CPU - p.ContainerStartup) / (small.CPU - p.ContainerStartup)
	if gotRatio < 1.99 || gotRatio > 2.01 {
		t.Errorf("cpu scaling ratio = %v, want ~2", gotRatio)
	}
	if big.Disk <= small.Disk {
		t.Error("disk demand should grow with split size")
	}
}

func TestReduceDemandsShrinkWithMoreReducers(t *testing.T) {
	j4, _ := NewJob(0, 1024, 128, 4, WordCount())
	j8, _ := NewJob(0, 1024, 128, 8, WordCount())
	if j8.ShuffleSortDemands(110, 240).Network >= j4.ShuffleSortDemands(110, 240).Network {
		t.Error("per-reducer shuffle should shrink with more reducers")
	}
	if j8.MergeDemands(240).CPU >= j4.MergeDemands(240).CPU {
		t.Error("per-reducer merge should shrink with more reducers")
	}
}

// Property: demands are monotone in split size and never negative.
func TestMapDemandsMonotoneProperty(t *testing.T) {
	j, _ := NewJob(0, 10240, 128, 4, WordCount())
	f := func(aQ, bQ uint8) bool {
		a := float64(aQ) + 1
		b := float64(bQ) + 1
		if a > b {
			a, b = b, a
		}
		da := j.MapDemands(a, 240)
		db := j.MapDemands(b, 240)
		return da.CPU <= db.CPU+1e-9 && da.Disk <= db.Disk+1e-9 &&
			da.CPU > 0 && da.Disk >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: total reduce input over all reducers equals the map output.
func TestReduceConservationProperty(t *testing.T) {
	f := func(rQ uint8, inQ uint16) bool {
		r := int(rQ)%32 + 1
		in := float64(inQ%10000) + 1
		j, err := NewJob(0, in, 128, r, WordCount())
		if err != nil {
			return false
		}
		total := j.ReduceInputMB() * float64(r)
		return total > j.MapOutputMB()-1e-6 && total < j.MapOutputMB()+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
