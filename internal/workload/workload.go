// Package workload defines MapReduce job specifications and phase-level
// workload profiles.
//
// A Profile plays the role of the paper's "job profile": it converts data
// volumes into per-phase service demands (seconds of CPU, disk and network
// work) for map tasks and for the two reduce subtasks the paper models
// (shuffle-sort and merge). Profiles for WordCount (the paper's evaluation
// workload), Grep and a TeraSort-like job are provided; WordCount's constants
// are calibrated so that simulated response times land in the paper's range
// (tens of seconds for 1 GB on 4 nodes).
package workload

import (
	"errors"
	"fmt"

	"hadoop2perf/internal/hdfs"
)

// Profile holds per-MB service costs for every Herodotou phase of a
// MapReduce job (read, map, collect, spill, merge / shuffle, sort-merge,
// reduce, write) plus data-flow selectivities.
// JSON tags give the wire API (cmd/mrserved) camelCase field names.
type Profile struct {
	Name string `json:"name"`

	// Map-side phases.
	MapCPUPerMB     float64 `json:"mapCPUPerMB"`     // map function CPU, s/MB of input
	CollectCPUPerMB float64 `json:"collectCPUPerMB"` // serialization+partitioning CPU, s/MB of map output
	SortCPUPerMB    float64 `json:"sortCPUPerMB"`    // in-memory sort during spill, s/MB of map output
	MergeCPUPerMB   float64 `json:"mergeCPUPerMB"`   // on-disk merge CPU, s/MB of map output

	// Reduce-side phases.
	ShuffleCPUPerMB float64 `json:"shuffleCPUPerMB"` // decompression/copy CPU during shuffle, s/MB
	ReduceCPUPerMB  float64 `json:"reduceCPUPerMB"`  // reduce function CPU, s/MB of reduce input
	RSortCPUPerMB   float64 `json:"rsortCPUPerMB"`   // final merge-sort CPU, s/MB of reduce input

	// Selectivities.
	MapOutputRatio float64 `json:"mapOutputRatio"` // map output bytes / map input bytes
	OutputRatio    float64 `json:"outputRatio"`    // job output bytes / reduce input bytes

	// SpillPasses is how many times map output crosses the local disk before
	// it is final (1 spill + merges).
	SpillPasses float64 `json:"spillPasses"`

	// TaskJitterCV is the coefficient of variation of multiplicative task
	// service-time noise in the simulator (stragglers, JVM warmup, OS noise).
	TaskJitterCV float64 `json:"taskJitterCV"`

	// Fixed overheads (seconds).
	ContainerStartup float64 `json:"containerStartup"` // JVM/container launch per task
	AMStartup        float64 `json:"amStartup"`        // ApplicationMaster negotiation before first request
}

// WordCount returns the calibrated profile for the paper's evaluation
// workload: "map-and-reduce-input heavy" — large input and large
// intermediate data (paper §5, citing Shi et al. [8]).
func WordCount() Profile {
	return Profile{
		Name:             "wordcount",
		MapCPUPerMB:      0.160,
		CollectCPUPerMB:  0.020,
		SortCPUPerMB:     0.015,
		MergeCPUPerMB:    0.010,
		ShuffleCPUPerMB:  0.008,
		ReduceCPUPerMB:   0.060,
		RSortCPUPerMB:    0.030,
		MapOutputRatio:   0.80,
		OutputRatio:      0.10,
		SpillPasses:      1.5,
		TaskJitterCV:     0.08,
		ContainerStartup: 2.0,
		AMStartup:        4.0,
	}
}

// Grep returns a map-heavy, low-intermediate-data profile.
func Grep() Profile {
	return Profile{
		Name:             "grep",
		MapCPUPerMB:      0.090,
		CollectCPUPerMB:  0.004,
		SortCPUPerMB:     0.002,
		MergeCPUPerMB:    0.002,
		ShuffleCPUPerMB:  0.004,
		ReduceCPUPerMB:   0.010,
		RSortCPUPerMB:    0.006,
		MapOutputRatio:   0.02,
		OutputRatio:      1.0,
		SpillPasses:      1.0,
		TaskJitterCV:     0.08,
		ContainerStartup: 2.0,
		AMStartup:        4.0,
	}
}

// TeraSort returns a shuffle-heavy profile: intermediate data equals input.
func TeraSort() Profile {
	return Profile{
		Name:             "terasort",
		MapCPUPerMB:      0.030,
		CollectCPUPerMB:  0.020,
		SortCPUPerMB:     0.025,
		MergeCPUPerMB:    0.015,
		ShuffleCPUPerMB:  0.010,
		ReduceCPUPerMB:   0.020,
		RSortCPUPerMB:    0.035,
		MapOutputRatio:   1.0,
		OutputRatio:      1.0,
		SpillPasses:      2.0,
		TaskJitterCV:     0.08,
		ContainerStartup: 2.0,
		AMStartup:        4.0,
	}
}

// Validate reports configuration errors in the profile.
func (p Profile) Validate() error {
	if p.Name == "" {
		return errors.New("workload: profile needs a name")
	}
	for _, v := range []struct {
		name string
		val  float64
	}{
		{"MapCPUPerMB", p.MapCPUPerMB},
		{"MapOutputRatio", p.MapOutputRatio},
		{"OutputRatio", p.OutputRatio},
		{"SpillPasses", p.SpillPasses},
	} {
		if v.val <= 0 {
			return fmt.Errorf("workload: %s must be positive", v.name)
		}
	}
	if p.TaskJitterCV < 0 || p.TaskJitterCV > 1 {
		return errors.New("workload: TaskJitterCV must be in [0,1]")
	}
	return nil
}

// Job is one MapReduce job submission.
type Job struct {
	// ID distinguishes concurrent jobs.
	ID int
	// InputMB is the total input size.
	InputMB float64
	// BlockSizeMB determines the number of map tasks (input splits).
	BlockSizeMB float64
	// NumReduces is the user-configured reducer count.
	NumReduces int
	// Profile supplies phase costs.
	Profile Profile
	// SlowStart: reduces become schedulable once 5% of maps completed
	// (mapreduce.job.reduce.slowstart.completedmaps default).
	SlowStart bool
	// SlowStartFraction overrides the 0.05 default when > 0.
	SlowStartFraction float64
}

// NewJob builds a job with validation.
func NewJob(id int, inputMB, blockSizeMB float64, reduces int, p Profile) (Job, error) {
	j := Job{
		ID: id, InputMB: inputMB, BlockSizeMB: blockSizeMB,
		NumReduces: reduces, Profile: p, SlowStart: true,
	}
	if err := j.Validate(); err != nil {
		return Job{}, err
	}
	return j, nil
}

// Validate reports configuration errors in the job.
func (j Job) Validate() error {
	switch {
	case j.InputMB <= 0:
		return errors.New("workload: InputMB must be positive")
	case j.BlockSizeMB <= 0:
		return errors.New("workload: BlockSizeMB must be positive")
	case j.NumReduces <= 0:
		return errors.New("workload: NumReduces must be positive")
	}
	return j.Profile.Validate()
}

// NumMaps is the split count (= number of map tasks).
func (j Job) NumMaps() int { return hdfs.SplitsFor(j.InputMB, j.BlockSizeMB) }

// SlowStartThreshold returns the completed-maps fraction after which reduce
// containers are requested; 0 means "no slow start" (wait for all maps).
func (j Job) SlowStartThreshold() float64 {
	if !j.SlowStart {
		return 1.0
	}
	if j.SlowStartFraction > 0 {
		return j.SlowStartFraction
	}
	return 0.05
}

// SplitMB returns the size of split i (the last split may be short).
func (j Job) SplitMB(i int) float64 {
	full := int(j.InputMB / j.BlockSizeMB)
	if i < full {
		return j.BlockSizeMB
	}
	rem := j.InputMB - float64(full)*j.BlockSizeMB
	if rem > 1e-9 {
		return rem
	}
	return j.BlockSizeMB
}

// MapOutputMB is the total intermediate data produced by all maps.
func (j Job) MapOutputMB() float64 { return j.InputMB * j.Profile.MapOutputRatio }

// ReduceInputMB is the intermediate data received by one reducer, assuming a
// uniform partitioner.
func (j Job) ReduceInputMB() float64 { return j.MapOutputMB() / float64(j.NumReduces) }

// Demands groups the service demand of a task at the model's service
// centers: node CPU, node disk and the shared cluster network. The paper's
// "CPU&Memory" center corresponds to CPU+Disk here (Table 2 lists both
// cpuPerNode and diskPerNode as configuration inputs).
type Demands struct {
	CPU     float64 // seconds of single-core processor work
	Disk    float64 // seconds of local disk I/O at nominal bandwidth
	Network float64 // seconds of cluster-network transfer at nominal bandwidth
}

// Total returns the uncontended duration of the task.
func (d Demands) Total() float64 { return d.CPU + d.Disk + d.Network }

// TotalScaled is Total with the CPU component scaled by cpuFactor — the
// cluster's mean inverse compute speed when averaging over heterogeneous
// hardware. TotalScaled(1) is bit-identical to Total.
func (d Demands) TotalScaled(cpuFactor float64) float64 {
	return d.CPU*cpuFactor + d.Disk + d.Network
}

// CPUDisk returns the node-local portion (the paper's CPU&Memory center).
func (d Demands) CPUDisk() float64 { return d.CPU + d.Disk }

// MapDemands returns the service demands of one map task over a split of
// splitMB, for hardware with the given disk bandwidth.
func (j Job) MapDemands(splitMB, diskMBps float64) Demands {
	p := j.Profile
	out := splitMB * p.MapOutputRatio
	cpu := splitMB*p.MapCPUPerMB + out*(p.CollectCPUPerMB+p.SortCPUPerMB+p.MergeCPUPerMB)
	disk := splitMB/diskMBps + out*p.SpillPasses/diskMBps
	return Demands{CPU: cpu + p.ContainerStartup, Disk: disk}
}

// ShuffleSortDemands returns the service demands of the shuffle-sort subtask
// of one reducer: copying its partition from every map output over the
// network, plus partial-sort CPU (the paper groups each shuffle+partial sort
// pair into a single "shuffle-sort" subtask).
func (j Job) ShuffleSortDemands(netMBps, diskMBps float64) Demands {
	in := j.ReduceInputMB()
	cpu := in * (j.Profile.ShuffleCPUPerMB + j.Profile.SortCPUPerMB)
	disk := in / diskMBps // materialize shuffled segments locally
	return Demands{
		CPU:     cpu + j.Profile.ContainerStartup,
		Disk:    disk,
		Network: in / netMBps,
	}
}

// MergeDemands returns the service demands of the merge subtask of one
// reducer: the final sort, the reduce function and the output write (the
// paper groups final sort + reduce function into one "merge" subtask; we
// include the HDFS write).
func (j Job) MergeDemands(diskMBps float64) Demands {
	in := j.ReduceInputMB()
	outMB := in * j.Profile.OutputRatio
	cpu := in*(j.Profile.RSortCPUPerMB+j.Profile.ReduceCPUPerMB) + outMB*0.001
	disk := (in + outMB) / diskMBps
	return Demands{CPU: cpu, Disk: disk}
}
