package cluster

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestResourceArithmetic(t *testing.T) {
	a := Resource{MemoryMB: 4096, VCores: 4}
	b := Resource{MemoryMB: 1024, VCores: 1}
	if got := a.Add(b); got != (Resource{MemoryMB: 5120, VCores: 5}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Resource{MemoryMB: 3072, VCores: 3}) {
		t.Errorf("Sub = %v", got)
	}
}

func TestResourceFits(t *testing.T) {
	tests := []struct {
		name string
		r, o Resource
		want bool
	}{
		{"exact", Resource{1024, 2}, Resource{1024, 2}, true},
		{"smaller", Resource{4096, 8}, Resource{1024, 2}, true},
		{"memory too big", Resource{1024, 8}, Resource{2048, 2}, false},
		{"vcores too big", Resource{4096, 1}, Resource{1024, 2}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.r.Fits(tt.o); got != tt.want {
				t.Errorf("%v.Fits(%v) = %v, want %v", tt.r, tt.o, got, tt.want)
			}
		})
	}
}

func TestResourceIsZeroOrNegative(t *testing.T) {
	if (Resource{1024, 1}).IsZeroOrNegative() {
		t.Error("positive resource flagged")
	}
	for _, r := range []Resource{{0, 1}, {1, 0}, {-1, 1}, {1, -1}} {
		if !r.IsZeroOrNegative() {
			t.Errorf("%v not flagged", r)
		}
	}
}

func TestResourceString(t *testing.T) {
	if got := (Resource{MemoryMB: 2048, VCores: 3}).String(); got != "<2048 MB, 3 vcores>" {
		t.Errorf("String = %q", got)
	}
}

func TestDefaultValidates(t *testing.T) {
	for _, n := range []int{1, 3, 4, 8, 100} {
		if err := Default(n).Validate(); err != nil {
			t.Errorf("Default(%d): %v", n, err)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	base := Default(4)
	tests := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"zero nodes", func(s *Spec) { s.NumNodes = 0 }},
		{"zero capacity", func(s *Spec) { s.NodeCapacity = Resource{} }},
		{"zero map container", func(s *Spec) { s.MapContainer = Resource{} }},
		{"zero reduce container", func(s *Spec) { s.ReduceContainer = Resource{} }},
		{"map exceeds node", func(s *Spec) { s.MapContainer = Resource{MemoryMB: 1 << 20, VCores: 1} }},
		{"reduce exceeds node", func(s *Spec) { s.ReduceContainer = Resource{MemoryMB: 1 << 20, VCores: 1} }},
		{"zero cpus", func(s *Spec) { s.CPUPerNode = 0 }},
		{"zero disks", func(s *Spec) { s.DiskPerNode = 0 }},
		{"zero disk bw", func(s *Spec) { s.DiskMBps = 0 }},
		{"zero net bw", func(s *Spec) { s.NetworkMBps = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := base
			tt.mutate(&s)
			if err := s.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestContainerCounts(t *testing.T) {
	s := Spec{
		NumNodes:        4,
		NodeCapacity:    Resource{MemoryMB: 32768, VCores: 32},
		MapContainer:    Resource{MemoryMB: 4096, VCores: 2},
		ReduceContainer: Resource{MemoryMB: 8192, VCores: 16},
		CPUPerNode:      8, DiskPerNode: 1, DiskMBps: 100, NetworkMBps: 100,
	}
	if got := s.MaxMapsPerNode(); got != 8 {
		t.Errorf("MaxMapsPerNode = %d, want 8 (memory-bound)", got)
	}
	if got := s.MaxReducesPerNode(); got != 2 {
		t.Errorf("MaxReducesPerNode = %d, want 2 (vcore-bound)", got)
	}
	if got := s.TotalMapSlots(); got != 32 {
		t.Errorf("TotalMapSlots = %d", got)
	}
	if got := s.TotalReduceSlots(); got != 8 {
		t.Errorf("TotalReduceSlots = %d", got)
	}
}

func TestContainersPerNodeZeroContainer(t *testing.T) {
	if got := containersPerNode(Resource{1024, 8}, Resource{}); got != 0 {
		t.Errorf("zero container should yield 0, got %d", got)
	}
}

// Property: the derived container counts always fit back into the node.
func TestContainerCountsFitProperty(t *testing.T) {
	f := func(memMB, vcores, cMem, cCores uint8) bool {
		capacity := Resource{MemoryMB: int(memMB)*512 + 512, VCores: int(vcores)%16 + 1}
		container := Resource{MemoryMB: int(cMem)*256 + 256, VCores: int(cCores)%4 + 1}
		n := containersPerNode(capacity, container)
		if n < 0 {
			return false
		}
		used := Resource{MemoryMB: n * container.MemoryMB, VCores: n * container.VCores}
		if !capacity.Fits(used) {
			return false
		}
		// One more container must NOT fit.
		more := used.Add(container)
		return !capacity.Fits(more)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// twoClass returns a valid 2-class spec: 2 big fast nodes + 3 small slow
// ones under the default container sizing, with no flat per-node fields set.
func twoClass() Spec {
	s := Spec{
		MapContainer:    Resource{MemoryMB: 4096, VCores: 2},
		ReduceContainer: Resource{MemoryMB: 4096, VCores: 4},
	}
	s.Classes = []NodeClass{
		{Name: "fast", Count: 2, Capacity: Resource{MemoryMB: 32768, VCores: 32},
			CPUs: 6, Disks: 2, DiskMBps: 240, NetworkMBps: 110, Speed: 1.5},
		{Name: "slow", Count: 3, Capacity: Resource{MemoryMB: 16384, VCores: 16},
			CPUs: 4, Disks: 1, DiskMBps: 140, NetworkMBps: 55},
	}
	return s
}

func TestClassSpecValidateAndHelpers(t *testing.T) {
	s := twoClass()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if !s.Heterogeneous() {
		t.Error("class spec not heterogeneous")
	}
	if got := s.TotalNodes(); got != 5 {
		t.Errorf("TotalNodes = %d, want 5", got)
	}
	// Default containers: map 4096MB/2vc, reduce 4096MB/4vc.
	// fast: 32768/4096=8 maps, min(8, 32/4=8)=8 reduces.
	// slow: 16384/4096=4 maps, min(4, 16/4=4)=4 reduces.
	if got := s.MaxMapsOf(s.Classes[0]); got != 8 {
		t.Errorf("fast MaxMapsOf = %d, want 8", got)
	}
	if got := s.MaxMapsOf(s.Classes[1]); got != 4 {
		t.Errorf("slow MaxMapsOf = %d, want 4", got)
	}
	if got := s.MaxMapsPerNode(); got != 8 {
		t.Errorf("MaxMapsPerNode = %d, want 8 (max across classes)", got)
	}
	if got := s.TotalMapSlots(); got != 2*8+3*4 {
		t.Errorf("TotalMapSlots = %d, want 28", got)
	}
	if got := s.TotalReduceSlots(); got != 2*8+3*4 {
		t.Errorf("TotalReduceSlots = %d, want 28", got)
	}
	// Node layout: class by class.
	for node, wantCls := range []int{0, 0, 1, 1, 1} {
		if got := s.ClassOfNode(node); got != wantCls {
			t.Errorf("ClassOfNode(%d) = %d, want %d", node, got, wantCls)
		}
	}
	if got := s.NodeCapacityOf(4); got != (Resource{MemoryMB: 16384, VCores: 16}) {
		t.Errorf("NodeCapacityOf(4) = %v", got)
	}
	if got := s.Classes[1].SpeedFactor(); got != 1 {
		t.Errorf("zero Speed should default to 1, got %v", got)
	}
	// ClassView of a flat spec synthesizes one matching class.
	flat := Default(4)
	view := flat.ClassView()
	if len(view) != 1 || view[0].Count != 4 || view[0].DiskMBps != flat.DiskMBps || view[0].SpeedFactor() != 1 {
		t.Errorf("flat ClassView = %+v", view)
	}
}

func TestClassSpecValidateRejections(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"unnamed class", func(s *Spec) { s.Classes[0].Name = "" }},
		{"duplicate class name", func(s *Spec) { s.Classes[1].Name = "fast" }},
		{"zero count", func(s *Spec) { s.Classes[0].Count = 0 }},
		{"zero capacity", func(s *Spec) { s.Classes[1].Capacity = Resource{} }},
		{"zero cpus", func(s *Spec) { s.Classes[0].CPUs = 0 }},
		{"zero disks", func(s *Spec) { s.Classes[0].Disks = 0 }},
		{"zero disk bw", func(s *Spec) { s.Classes[1].DiskMBps = 0 }},
		{"zero net bw", func(s *Spec) { s.Classes[1].NetworkMBps = 0 }},
		{"negative speed", func(s *Spec) { s.Classes[0].Speed = -1 }},
		{"container exceeds class", func(s *Spec) { s.Classes[1].Capacity = Resource{MemoryMB: 2048, VCores: 2} }},
		{"numNodes disagrees", func(s *Spec) { s.NumNodes = 4 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := twoClass()
			tt.mutate(&s)
			if err := s.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
	// NumNodes matching the class sum is accepted (redundant but consistent).
	s := twoClass()
	s.NumNodes = 5
	if err := s.Validate(); err != nil {
		t.Errorf("consistent NumNodes rejected: %v", err)
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	// Flat legacy form.
	flat := Default(4)
	b, err := json.Marshal(flat)
	if err != nil {
		t.Fatal(err)
	}
	var flatBack Spec
	if err := json.Unmarshal(b, &flatBack); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(flat, flatBack) {
		t.Errorf("flat round trip: %+v != %+v", flatBack, flat)
	}
	if bytesContains(b, `"classes"`) {
		t.Errorf("flat form leaked a classes key: %s", b)
	}

	// Class form: flat per-node fields omitted, classes preserved.
	het := twoClass()
	b, err = json.Marshal(het)
	if err != nil {
		t.Fatal(err)
	}
	var hetBack Spec
	if err := json.Unmarshal(b, &hetBack); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(het, hetBack) {
		t.Errorf("class round trip: %+v != %+v", hetBack, het)
	}
	if err := hetBack.Validate(); err != nil {
		t.Errorf("round-tripped class spec invalid: %v", err)
	}
	for _, key := range []string{`"numNodes"`, `"cpuPerNode"`, `"diskPerNode"`} {
		if bytesContains(b, key) {
			t.Errorf("class form leaked flat key %s: %s", key, b)
		}
	}

	// A legacy payload without any class key still parses to a valid flat spec.
	legacy := `{"numNodes":2,"nodeCapacity":{"memoryMB":8192,"vcores":8},
		"mapContainer":{"memoryMB":2048,"vcores":1},"reduceContainer":{"memoryMB":2048,"vcores":2},
		"cpuPerNode":4,"diskPerNode":1,"diskMBps":100,"networkMBps":100}`
	var fromLegacy Spec
	if err := json.Unmarshal([]byte(legacy), &fromLegacy); err != nil {
		t.Fatal(err)
	}
	if err := fromLegacy.Validate(); err != nil {
		t.Errorf("legacy payload invalid: %v", err)
	}
	if fromLegacy.Heterogeneous() || fromLegacy.TotalNodes() != 2 {
		t.Errorf("legacy payload misparsed: %+v", fromLegacy)
	}

	// Mixed/invalid payloads parse but fail validation: a class table plus a
	// contradicting numNodes, and a class missing its bandwidths.
	for name, payload := range map[string]string{
		"contradicting numNodes": `{"numNodes":9,"mapContainer":{"memoryMB":2048,"vcores":1},
			"reduceContainer":{"memoryMB":2048,"vcores":2},
			"classes":[{"name":"a","count":2,"capacity":{"memoryMB":8192,"vcores":8},
				"cpus":4,"disks":1,"diskMBps":100,"networkMBps":100}]}`,
		"class missing bandwidth": `{"mapContainer":{"memoryMB":2048,"vcores":1},
			"reduceContainer":{"memoryMB":2048,"vcores":2},
			"classes":[{"name":"a","count":2,"capacity":{"memoryMB":8192,"vcores":8},"cpus":4,"disks":1}]}`,
	} {
		var s Spec
		if err := json.Unmarshal([]byte(payload), &s); err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		if err := s.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func bytesContains(b []byte, sub string) bool { return strings.Contains(string(b), sub) }
