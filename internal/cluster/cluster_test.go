package cluster

import (
	"testing"
	"testing/quick"
)

func TestResourceArithmetic(t *testing.T) {
	a := Resource{MemoryMB: 4096, VCores: 4}
	b := Resource{MemoryMB: 1024, VCores: 1}
	if got := a.Add(b); got != (Resource{MemoryMB: 5120, VCores: 5}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Resource{MemoryMB: 3072, VCores: 3}) {
		t.Errorf("Sub = %v", got)
	}
}

func TestResourceFits(t *testing.T) {
	tests := []struct {
		name string
		r, o Resource
		want bool
	}{
		{"exact", Resource{1024, 2}, Resource{1024, 2}, true},
		{"smaller", Resource{4096, 8}, Resource{1024, 2}, true},
		{"memory too big", Resource{1024, 8}, Resource{2048, 2}, false},
		{"vcores too big", Resource{4096, 1}, Resource{1024, 2}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.r.Fits(tt.o); got != tt.want {
				t.Errorf("%v.Fits(%v) = %v, want %v", tt.r, tt.o, got, tt.want)
			}
		})
	}
}

func TestResourceIsZeroOrNegative(t *testing.T) {
	if (Resource{1024, 1}).IsZeroOrNegative() {
		t.Error("positive resource flagged")
	}
	for _, r := range []Resource{{0, 1}, {1, 0}, {-1, 1}, {1, -1}} {
		if !r.IsZeroOrNegative() {
			t.Errorf("%v not flagged", r)
		}
	}
}

func TestResourceString(t *testing.T) {
	if got := (Resource{MemoryMB: 2048, VCores: 3}).String(); got != "<2048 MB, 3 vcores>" {
		t.Errorf("String = %q", got)
	}
}

func TestDefaultValidates(t *testing.T) {
	for _, n := range []int{1, 3, 4, 8, 100} {
		if err := Default(n).Validate(); err != nil {
			t.Errorf("Default(%d): %v", n, err)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	base := Default(4)
	tests := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"zero nodes", func(s *Spec) { s.NumNodes = 0 }},
		{"zero capacity", func(s *Spec) { s.NodeCapacity = Resource{} }},
		{"zero map container", func(s *Spec) { s.MapContainer = Resource{} }},
		{"zero reduce container", func(s *Spec) { s.ReduceContainer = Resource{} }},
		{"map exceeds node", func(s *Spec) { s.MapContainer = Resource{MemoryMB: 1 << 20, VCores: 1} }},
		{"reduce exceeds node", func(s *Spec) { s.ReduceContainer = Resource{MemoryMB: 1 << 20, VCores: 1} }},
		{"zero cpus", func(s *Spec) { s.CPUPerNode = 0 }},
		{"zero disks", func(s *Spec) { s.DiskPerNode = 0 }},
		{"zero disk bw", func(s *Spec) { s.DiskMBps = 0 }},
		{"zero net bw", func(s *Spec) { s.NetworkMBps = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := base
			tt.mutate(&s)
			if err := s.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestContainerCounts(t *testing.T) {
	s := Spec{
		NumNodes:        4,
		NodeCapacity:    Resource{MemoryMB: 32768, VCores: 32},
		MapContainer:    Resource{MemoryMB: 4096, VCores: 2},
		ReduceContainer: Resource{MemoryMB: 8192, VCores: 16},
		CPUPerNode:      8, DiskPerNode: 1, DiskMBps: 100, NetworkMBps: 100,
	}
	if got := s.MaxMapsPerNode(); got != 8 {
		t.Errorf("MaxMapsPerNode = %d, want 8 (memory-bound)", got)
	}
	if got := s.MaxReducesPerNode(); got != 2 {
		t.Errorf("MaxReducesPerNode = %d, want 2 (vcore-bound)", got)
	}
	if got := s.TotalMapSlots(); got != 32 {
		t.Errorf("TotalMapSlots = %d", got)
	}
	if got := s.TotalReduceSlots(); got != 8 {
		t.Errorf("TotalReduceSlots = %d", got)
	}
}

func TestContainersPerNodeZeroContainer(t *testing.T) {
	if got := containersPerNode(Resource{1024, 8}, Resource{}); got != 0 {
		t.Errorf("zero container should yield 0, got %d", got)
	}
}

// Property: the derived container counts always fit back into the node.
func TestContainerCountsFitProperty(t *testing.T) {
	f := func(memMB, vcores, cMem, cCores uint8) bool {
		capacity := Resource{MemoryMB: int(memMB)*512 + 512, VCores: int(vcores)%16 + 1}
		container := Resource{MemoryMB: int(cMem)*256 + 256, VCores: int(cCores)%4 + 1}
		n := containersPerNode(capacity, container)
		if n < 0 {
			return false
		}
		used := Resource{MemoryMB: n * container.MemoryMB, VCores: n * container.VCores}
		if !capacity.Fits(used) {
			return false
		}
		// One more container must NOT fit.
		more := used.Add(container)
		return !capacity.Fits(more)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
