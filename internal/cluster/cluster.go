// Package cluster describes the physical Hadoop 2.x cluster: homogeneous
// nodes with memory and vcore capacities, and container sizing from which the
// per-node container limits pMaxMapsPerNode / pMaxReducePerNode of the paper
// (§4.3) are derived.
package cluster

import (
	"errors"
	"fmt"
)

// Resource is a YARN-style resource vector (memory in MB, virtual cores).
// JSON tags give the wire API (cmd/mrserved) camelCase field names.
type Resource struct {
	MemoryMB int `json:"memoryMB"`
	VCores   int `json:"vcores"`
}

// Add returns r + o componentwise.
func (r Resource) Add(o Resource) Resource {
	return Resource{MemoryMB: r.MemoryMB + o.MemoryMB, VCores: r.VCores + o.VCores}
}

// Sub returns r - o componentwise.
func (r Resource) Sub(o Resource) Resource {
	return Resource{MemoryMB: r.MemoryMB - o.MemoryMB, VCores: r.VCores - o.VCores}
}

// Fits reports whether o fits within r.
func (r Resource) Fits(o Resource) bool {
	return o.MemoryMB <= r.MemoryMB && o.VCores <= r.VCores
}

// IsZeroOrNegative reports whether any component is <= 0.
func (r Resource) IsZeroOrNegative() bool { return r.MemoryMB <= 0 || r.VCores <= 0 }

func (r Resource) String() string {
	return fmt.Sprintf("<%d MB, %d vcores>", r.MemoryMB, r.VCores)
}

// Spec is a homogeneous cluster specification. All nodes share the same
// capacity and hardware speeds, matching the paper's assumption
// ("all of them having the same technical characteristics").
type Spec struct {
	// NumNodes is the number of worker nodes in the cluster.
	NumNodes int `json:"numNodes"`
	// NodeCapacity is the schedulable resource per node.
	NodeCapacity Resource `json:"nodeCapacity"`
	// MapContainer and ReduceContainer are the container sizes requested by
	// the MapReduce ApplicationMaster for map and reduce tasks.
	MapContainer    Resource `json:"mapContainer"`
	ReduceContainer Resource `json:"reduceContainer"`
	// CPUPerNode and DiskPerNode describe the node hardware used by the
	// contention model (number of cores sharing CPU work, number of disks).
	CPUPerNode  int `json:"cpuPerNode"`
	DiskPerNode int `json:"diskPerNode"`
	// DiskMBps and NetworkMBps are per-disk and cluster-link bandwidths used
	// by the simulator to convert bytes into service demands.
	DiskMBps    float64 `json:"diskMBps"`
	NetworkMBps float64 `json:"networkMBps"`
}

// Default returns the evaluation cluster of the paper (§5.1), scaled to a
// simulator-friendly container configuration. Like the authors' 128 GB
// nodes, containers are plentiful (8 map containers per node) so the
// physical resources — cores, disk, network — are the contended bottleneck,
// not container slots; this is the regime the paper's queueing model
// assumes. Reduce containers always fit alongside maps, which lets the
// shuffle overlap the map phase under slow start.
func Default(numNodes int) Spec {
	return Spec{
		NumNodes:        numNodes,
		NodeCapacity:    Resource{MemoryMB: 32768, VCores: 32},
		MapContainer:    Resource{MemoryMB: 4096, VCores: 2},
		ReduceContainer: Resource{MemoryMB: 4096, VCores: 4},
		CPUPerNode:      6,
		DiskPerNode:     1,
		DiskMBps:        240,
		NetworkMBps:     110,
	}
}

// Validate checks the spec for internally consistent values.
func (s Spec) Validate() error {
	switch {
	case s.NumNodes <= 0:
		return errors.New("cluster: NumNodes must be positive")
	case s.NodeCapacity.IsZeroOrNegative():
		return errors.New("cluster: NodeCapacity must be positive")
	case s.MapContainer.IsZeroOrNegative():
		return errors.New("cluster: MapContainer must be positive")
	case s.ReduceContainer.IsZeroOrNegative():
		return errors.New("cluster: ReduceContainer must be positive")
	case !s.NodeCapacity.Fits(s.MapContainer):
		return errors.New("cluster: map container exceeds node capacity")
	case !s.NodeCapacity.Fits(s.ReduceContainer):
		return errors.New("cluster: reduce container exceeds node capacity")
	case s.CPUPerNode <= 0 || s.DiskPerNode <= 0:
		return errors.New("cluster: CPUPerNode and DiskPerNode must be positive")
	case s.DiskMBps <= 0 || s.NetworkMBps <= 0:
		return errors.New("cluster: DiskMBps and NetworkMBps must be positive")
	}
	return nil
}

// MaxMapsPerNode is pMaxMapsPerNode of §4.3: how many map containers fit in a
// node, limited by both memory and vcores.
func (s Spec) MaxMapsPerNode() int { return containersPerNode(s.NodeCapacity, s.MapContainer) }

// MaxReducesPerNode is pMaxReducePerNode of §4.3.
func (s Spec) MaxReducesPerNode() int { return containersPerNode(s.NodeCapacity, s.ReduceContainer) }

// TotalMapSlots is the cluster-wide map container capacity.
func (s Spec) TotalMapSlots() int { return s.NumNodes * s.MaxMapsPerNode() }

// TotalReduceSlots is the cluster-wide reduce container capacity.
func (s Spec) TotalReduceSlots() int { return s.NumNodes * s.MaxReducesPerNode() }

func containersPerNode(capacity, container Resource) int {
	if container.IsZeroOrNegative() {
		return 0
	}
	byMem := capacity.MemoryMB / container.MemoryMB
	byCPU := capacity.VCores / container.VCores
	if byCPU < byMem {
		return byCPU
	}
	return byMem
}
