// Package cluster describes the physical Hadoop 2.x cluster. The paper
// assumes homogeneous nodes ("all of them having the same technical
// characteristics"); this package keeps that flat form as a special case and
// generalizes it to heterogeneous clusters made of node classes — groups of
// identical nodes mixing hardware generations. Container sizing stays
// cluster-wide (it is the MapReduce AM's request, not hardware), from which
// the per-node container limits pMaxMapsPerNode / pMaxReducePerNode of the
// paper (§4.3) are derived per class.
package cluster

import (
	"errors"
	"fmt"
)

// Resource is a YARN-style resource vector (memory in MB, virtual cores).
// JSON tags give the wire API (cmd/mrserved) camelCase field names.
type Resource struct {
	MemoryMB int `json:"memoryMB"` // schedulable memory, MB
	VCores   int `json:"vcores"`   // schedulable virtual cores
}

// Add returns r + o componentwise.
func (r Resource) Add(o Resource) Resource {
	return Resource{MemoryMB: r.MemoryMB + o.MemoryMB, VCores: r.VCores + o.VCores}
}

// Sub returns r - o componentwise.
func (r Resource) Sub(o Resource) Resource {
	return Resource{MemoryMB: r.MemoryMB - o.MemoryMB, VCores: r.VCores - o.VCores}
}

// Fits reports whether o fits within r.
func (r Resource) Fits(o Resource) bool {
	return o.MemoryMB <= r.MemoryMB && o.VCores <= r.VCores
}

// IsZeroOrNegative reports whether any component is <= 0.
func (r Resource) IsZeroOrNegative() bool { return r.MemoryMB <= 0 || r.VCores <= 0 }

// String renders the vector for logs and error messages.
func (r Resource) String() string {
	return fmt.Sprintf("<%d MB, %d vcores>", r.MemoryMB, r.VCores)
}

// NodeClass is one hardware class of a heterogeneous cluster: Count nodes
// sharing the same capacity, core/disk counts, bandwidths and relative
// compute speed. Nodes are numbered class by class: the first class owns node
// IDs 0..Count-1, the next class the following IDs, and so on.
type NodeClass struct {
	// Name identifies the class (wire format, cache keys, error messages).
	Name string `json:"name"`
	// Count is the number of nodes of this class.
	Count int `json:"count"`
	// Capacity is the schedulable YARN resource per node of the class.
	Capacity Resource `json:"capacity"`
	// CPUs and Disks are the contended hardware units per node (cores sharing
	// CPU work, spindles sharing disk bandwidth).
	CPUs  int `json:"cpus"`
	Disks int `json:"disks"` // spindles per node (see CPUs)
	// DiskMBps and NetworkMBps convert bytes into service demands for tasks
	// placed on this class.
	DiskMBps    float64 `json:"diskMBps"`
	NetworkMBps float64 `json:"networkMBps"` // per-NIC bandwidth (see DiskMBps)
	// Speed is the relative per-core compute speed of the class: CPU service
	// demands divide by it (1 = the calibrated baseline generation; 2 = twice
	// as fast). Zero means 1.
	Speed float64 `json:"speed,omitempty"`
	// Preemptible marks spot-style capacity that the provider can revoke
	// mid-job; revoked nodes vanish like failed nodes (simulator) and carry
	// an extra failure hazard (model correction).
	Preemptible bool `json:"preemptible,omitempty"`
	// RevocationRate is the expected number of revocations per node per hour
	// of a preemptible class (exponential hazard). Requires Preemptible.
	RevocationRate float64 `json:"revocationRate,omitempty"`
	// Price is the relative cost of one node-second of this class; the
	// planner ranks candidates by price-weighted node-seconds. Zero means the
	// default 1 (every class priced equally).
	Price float64 `json:"price,omitempty"`
}

// SpeedFactor returns the effective compute-speed multiplier (Speed, or 1
// when unset).
func (c NodeClass) SpeedFactor() float64 {
	if c.Speed > 0 {
		return c.Speed
	}
	return 1
}

// PriceFactor returns the relative node-second price (Price, or 1 when
// unset).
func (c NodeClass) PriceFactor() float64 {
	if c.Price > 0 {
		return c.Price
	}
	return 1
}

// validate checks one class entry.
func (c NodeClass) validate() error {
	switch {
	case c.Name == "":
		return errors.New("cluster: node class needs a name")
	case c.Count <= 0:
		return fmt.Errorf("cluster: class %q: Count must be positive", c.Name)
	case c.Capacity.IsZeroOrNegative():
		return fmt.Errorf("cluster: class %q: Capacity must be positive", c.Name)
	case c.CPUs <= 0 || c.Disks <= 0:
		return fmt.Errorf("cluster: class %q: CPUs and Disks must be positive", c.Name)
	case c.DiskMBps <= 0 || c.NetworkMBps <= 0:
		return fmt.Errorf("cluster: class %q: DiskMBps and NetworkMBps must be positive", c.Name)
	case c.Speed < 0:
		return fmt.Errorf("cluster: class %q: Speed must be nonnegative", c.Name)
	case c.RevocationRate < 0:
		return fmt.Errorf("cluster: class %q: RevocationRate must be nonnegative", c.Name)
	case c.RevocationRate > 0 && !c.Preemptible:
		return fmt.Errorf("cluster: class %q: RevocationRate requires Preemptible", c.Name)
	case c.Price < 0:
		return fmt.Errorf("cluster: class %q: Price must be nonnegative", c.Name)
	}
	return nil
}

// Spec is a cluster specification. Two forms round-trip through JSON:
//
//   - the flat (legacy) form — NumNodes identical nodes described by
//     NodeCapacity / CPUPerNode / DiskPerNode / DiskMBps / NetworkMBps; and
//   - the class form — Classes partitions the cluster into hardware classes,
//     the per-node flat fields are ignored, and NumNodes is either zero or
//     must equal the sum of class counts.
//
// MapContainer and ReduceContainer apply to both forms: container sizing is
// requested by the job's ApplicationMaster and does not vary by hardware.
type Spec struct {
	// NumNodes is the number of worker nodes in the cluster (flat form). With
	// Classes set it is redundant: zero, or the sum of the class counts.
	NumNodes int `json:"numNodes,omitempty"`
	// NodeCapacity is the schedulable resource per node (flat form).
	NodeCapacity Resource `json:"nodeCapacity,omitempty"`
	// MapContainer and ReduceContainer are the container sizes requested by
	// the MapReduce ApplicationMaster for map and reduce tasks.
	MapContainer    Resource `json:"mapContainer"`
	ReduceContainer Resource `json:"reduceContainer"` // reduce-task container size (see MapContainer)
	// CPUPerNode and DiskPerNode describe the node hardware used by the
	// contention model (number of cores sharing CPU work, number of disks) in
	// the flat form.
	CPUPerNode  int `json:"cpuPerNode,omitempty"`
	DiskPerNode int `json:"diskPerNode,omitempty"` // disks per node (see CPUPerNode)
	// DiskMBps and NetworkMBps are per-disk and per-NIC bandwidths used to
	// convert bytes into service demands (flat form).
	DiskMBps    float64 `json:"diskMBps,omitempty"`
	NetworkMBps float64 `json:"networkMBps,omitempty"` // per-NIC bandwidth, flat form (see DiskMBps)
	// Classes, when non-empty, selects the heterogeneous class form: the
	// cluster is the concatenation of the classes' node groups, in order.
	Classes []NodeClass `json:"classes,omitempty"`
}

// Default returns the evaluation cluster of the paper (§5.1), scaled to a
// simulator-friendly container configuration. Like the authors' 128 GB
// nodes, containers are plentiful (8 map containers per node) so the
// physical resources — cores, disk, network — are the contended bottleneck,
// not container slots; this is the regime the paper's queueing model
// assumes. Reduce containers always fit alongside maps, which lets the
// shuffle overlap the map phase under slow start.
func Default(numNodes int) Spec {
	return Spec{
		NumNodes:        numNodes,
		NodeCapacity:    Resource{MemoryMB: 32768, VCores: 32},
		MapContainer:    Resource{MemoryMB: 4096, VCores: 2},
		ReduceContainer: Resource{MemoryMB: 4096, VCores: 4},
		CPUPerNode:      6,
		DiskPerNode:     1,
		DiskMBps:        240,
		NetworkMBps:     110,
	}
}

// Heterogeneous reports whether the spec uses the class form.
func (s Spec) Heterogeneous() bool { return len(s.Classes) > 0 }

// HasRevocations reports whether any class carries a preemptible revocation
// hazard (so fault mechanics are active even without an explicit fault plan).
func (s Spec) HasRevocations() bool {
	for _, c := range s.Classes {
		if c.Preemptible && c.RevocationRate > 0 {
			return true
		}
	}
	return false
}

// PriceWeight is the cluster's total relative price per second: the sum of
// Count×PriceFactor over classes (exactly TotalNodes when no class sets a
// price). Planner cost rankings multiply it by response time.
func (s Spec) PriceWeight() float64 {
	var w float64
	for _, c := range s.ClassView() {
		w += float64(c.Count) * c.PriceFactor()
	}
	return w
}

// ClassView returns the canonical class table: Classes when set, otherwise a
// single synthesized class mirroring the flat fields. The returned slice
// must not be mutated.
func (s Spec) ClassView() []NodeClass {
	if len(s.Classes) > 0 {
		return s.Classes
	}
	return []NodeClass{{
		Name:        "default",
		Count:       s.NumNodes,
		Capacity:    s.NodeCapacity,
		CPUs:        s.CPUPerNode,
		Disks:       s.DiskPerNode,
		DiskMBps:    s.DiskMBps,
		NetworkMBps: s.NetworkMBps,
		Speed:       1,
	}}
}

// TotalNodes is the worker-node count across all classes (NumNodes for flat
// specs).
func (s Spec) TotalNodes() int {
	if len(s.Classes) == 0 {
		return s.NumNodes
	}
	n := 0
	for _, c := range s.Classes {
		n += c.Count
	}
	return n
}

// ClassOfNode maps a node ID (0-based, classes laid out in order) to its
// class index in ClassView. Out-of-range IDs map to the last class.
func (s Spec) ClassOfNode(node int) int {
	if len(s.Classes) == 0 {
		return 0
	}
	for i, c := range s.Classes {
		node -= c.Count
		if node < 0 {
			return i
		}
	}
	return len(s.Classes) - 1
}

// NodeCapacityOf returns the schedulable capacity of one node.
func (s Spec) NodeCapacityOf(node int) Resource {
	if len(s.Classes) == 0 {
		return s.NodeCapacity
	}
	return s.Classes[s.ClassOfNode(node)].Capacity
}

// Validate checks the spec for internally consistent values.
func (s Spec) Validate() error {
	switch {
	case s.MapContainer.IsZeroOrNegative():
		return errors.New("cluster: MapContainer must be positive")
	case s.ReduceContainer.IsZeroOrNegative():
		return errors.New("cluster: ReduceContainer must be positive")
	}
	if len(s.Classes) > 0 {
		return s.validateClasses()
	}
	switch {
	case s.NumNodes <= 0:
		return errors.New("cluster: NumNodes must be positive")
	case s.NodeCapacity.IsZeroOrNegative():
		return errors.New("cluster: NodeCapacity must be positive")
	case !s.NodeCapacity.Fits(s.MapContainer):
		return errors.New("cluster: map container exceeds node capacity")
	case !s.NodeCapacity.Fits(s.ReduceContainer):
		return errors.New("cluster: reduce container exceeds node capacity")
	case s.CPUPerNode <= 0 || s.DiskPerNode <= 0:
		return errors.New("cluster: CPUPerNode and DiskPerNode must be positive")
	case s.DiskMBps <= 0 || s.NetworkMBps <= 0:
		return errors.New("cluster: DiskMBps and NetworkMBps must be positive")
	}
	return nil
}

func (s Spec) validateClasses() error {
	names := make(map[string]bool, len(s.Classes))
	total := 0
	for _, c := range s.Classes {
		if err := c.validate(); err != nil {
			return err
		}
		if names[c.Name] {
			return fmt.Errorf("cluster: duplicate node class %q", c.Name)
		}
		names[c.Name] = true
		if !c.Capacity.Fits(s.MapContainer) {
			return fmt.Errorf("cluster: map container exceeds class %q capacity", c.Name)
		}
		if !c.Capacity.Fits(s.ReduceContainer) {
			return fmt.Errorf("cluster: reduce container exceeds class %q capacity", c.Name)
		}
		total += c.Count
	}
	if s.NumNodes != 0 && s.NumNodes != total {
		return fmt.Errorf("cluster: NumNodes %d disagrees with class counts (sum %d)", s.NumNodes, total)
	}
	return nil
}

// MeanDiskMBps is the count-weighted harmonic-mean disk bandwidth across
// classes — the bandwidth whose per-byte cost equals the cluster-average
// per-byte cost. For flat and single-class specs it is exactly the class
// value.
func (s Spec) MeanDiskMBps() float64 {
	cs := s.ClassView()
	if len(cs) == 1 {
		return cs[0].DiskMBps
	}
	var inv float64
	n := 0
	for _, c := range cs {
		inv += float64(c.Count) / c.DiskMBps
		n += c.Count
	}
	return float64(n) / inv
}

// MeanNetworkMBps is the count-weighted harmonic-mean NIC bandwidth across
// classes (the exact class value for flat and single-class specs).
func (s Spec) MeanNetworkMBps() float64 {
	cs := s.ClassView()
	if len(cs) == 1 {
		return cs[0].NetworkMBps
	}
	var inv float64
	n := 0
	for _, c := range cs {
		inv += float64(c.Count) / c.NetworkMBps
		n += c.Count
	}
	return float64(n) / inv
}

// MeanInvSpeed is the count-weighted mean inverse compute speed: the factor
// an average task's CPU demand carries on this cluster (exactly 1 for flat
// specs).
func (s Spec) MeanInvSpeed() float64 {
	cs := s.ClassView()
	if len(cs) == 1 {
		return 1 / cs[0].SpeedFactor()
	}
	var inv float64
	n := 0
	for _, c := range cs {
		inv += float64(c.Count) / c.SpeedFactor()
		n += c.Count
	}
	return inv / float64(n)
}

// MaxMapsOf is pMaxMapsPerNode of §4.3 for one class: how many map
// containers fit in a node of the class, limited by both memory and vcores.
func (s Spec) MaxMapsOf(c NodeClass) int { return containersPerNode(c.Capacity, s.MapContainer) }

// MaxReducesOf is pMaxReducePerNode of §4.3 for one class.
func (s Spec) MaxReducesOf(c NodeClass) int { return containersPerNode(c.Capacity, s.ReduceContainer) }

// MaxMapsPerNode is the largest per-node map container capacity across
// classes (for flat specs: the capacity of every node).
func (s Spec) MaxMapsPerNode() int {
	if len(s.Classes) == 0 {
		return containersPerNode(s.NodeCapacity, s.MapContainer)
	}
	best := 0
	for _, c := range s.Classes {
		if m := s.MaxMapsOf(c); m > best {
			best = m
		}
	}
	return best
}

// MaxReducesPerNode is the largest per-node reduce container capacity across
// classes.
func (s Spec) MaxReducesPerNode() int {
	if len(s.Classes) == 0 {
		return containersPerNode(s.NodeCapacity, s.ReduceContainer)
	}
	best := 0
	for _, c := range s.Classes {
		if m := s.MaxReducesOf(c); m > best {
			best = m
		}
	}
	return best
}

// TotalMapSlots is the cluster-wide map container capacity, summed over
// classes.
func (s Spec) TotalMapSlots() int {
	if len(s.Classes) == 0 {
		return s.NumNodes * containersPerNode(s.NodeCapacity, s.MapContainer)
	}
	total := 0
	for _, c := range s.Classes {
		total += c.Count * s.MaxMapsOf(c)
	}
	return total
}

// TotalReduceSlots is the cluster-wide reduce container capacity, summed
// over classes.
func (s Spec) TotalReduceSlots() int {
	if len(s.Classes) == 0 {
		return s.NumNodes * containersPerNode(s.NodeCapacity, s.ReduceContainer)
	}
	total := 0
	for _, c := range s.Classes {
		total += c.Count * s.MaxReducesOf(c)
	}
	return total
}

func containersPerNode(capacity, container Resource) int {
	if container.IsZeroOrNegative() {
		return 0
	}
	byMem := capacity.MemoryMB / container.MemoryMB
	byCPU := capacity.VCores / container.VCores
	if byCPU < byMem {
		return byCPU
	}
	return byMem
}
