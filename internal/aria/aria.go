// Package aria implements the ARIA performance model (Verma, Cherkasova,
// Campbell: "ARIA: Automatic Resource Inference and Allocation for MapReduce
// Environments", ICAC 2011) as a related-work baseline (paper §2.1).
//
// ARIA bounds the completion time of a greedy assignment of n tasks of known
// average (avg) and maximum (max) duration onto k slots via the Makespan
// Theorem:
//
//	T_low = n*avg / k
//	T_up  = (n-1)*avg / k + max
//
// and uses T_avg = (T_up + T_low)/2 as the estimate. The job estimate
// composes the map stage, the (first-wave overlapped) shuffle stage and the
// reduce stage.
package aria

import (
	"errors"

	"hadoop2perf/internal/cluster"
	"hadoop2perf/internal/workload"
)

// StageProfile is ARIA's per-stage job profile: average and maximum task
// durations observed (or derived from a cost model).
type StageProfile struct {
	Avg, Max float64
}

// Bounds holds the Makespan-Theorem bounds for one stage.
type Bounds struct {
	Low, Up float64
}

// Avg returns (Low+Up)/2, ARIA's point estimate.
func (b Bounds) Avg() float64 { return (b.Low + b.Up) / 2 }

// StageBounds applies the Makespan Theorem to n tasks on k slots.
func StageBounds(p StageProfile, n, k int) (Bounds, error) {
	if n <= 0 {
		return Bounds{}, errors.New("aria: task count must be positive")
	}
	if k <= 0 {
		return Bounds{}, errors.New("aria: slot count must be positive")
	}
	if p.Avg <= 0 || p.Max < p.Avg {
		return Bounds{}, errors.New("aria: profile requires 0 < avg <= max")
	}
	return Bounds{
		Low: float64(n) * p.Avg / float64(k),
		Up:  float64(n-1)*p.Avg/float64(k) + p.Max,
	}, nil
}

// Estimate is ARIA's job-level prediction.
type Estimate struct {
	Map, Shuffle, Reduce Bounds
	// Low, Up, Avg compose the stage bounds into job completion bounds.
	Low, Up, Avg float64
}

// Predict derives stage profiles from the workload's cost functions (treating
// max = avg * straggler factor implied by the jitter CV) and composes the
// ARIA bounds. Slots are the container-derived map/reduce capacities of the
// Hadoop 2.x cluster — the same adaptation the paper applies to reuse
// slot-based models.
func Predict(job workload.Job, spec cluster.Spec) (Estimate, error) {
	if err := job.Validate(); err != nil {
		return Estimate{}, err
	}
	if err := spec.Validate(); err != nil {
		return Estimate{}, err
	}
	straggler := 1 + 2*job.Profile.TaskJitterCV // avg + 2 sigma as the observed max
	md, ss, mg := meanDemands(job, spec)

	mapB, err := StageBounds(StageProfile{Avg: md, Max: md * straggler}, job.NumMaps(), spec.TotalMapSlots())
	if err != nil {
		return Estimate{}, err
	}
	shB, err := StageBounds(StageProfile{Avg: ss, Max: ss * straggler}, job.NumReduces, spec.TotalReduceSlots())
	if err != nil {
		return Estimate{}, err
	}
	rdB, err := StageBounds(StageProfile{Avg: mg, Max: mg * straggler}, job.NumReduces, spec.TotalReduceSlots())
	if err != nil {
		return Estimate{}, err
	}
	e := Estimate{Map: mapB, Shuffle: shB, Reduce: rdB}
	am := job.Profile.AMStartup
	e.Low = am + mapB.Low + shB.Low + rdB.Low
	e.Up = am + mapB.Up + shB.Up + rdB.Up
	e.Avg = am + mapB.Avg() + shB.Avg() + rdB.Avg()
	return e, nil
}

// SlotsForDeadline returns the minimum uniform slot count k such that ARIA's
// T_avg estimate meets the deadline, or an error when even a slot per task
// cannot. This is ARIA's resource-inference use case (one knob: k map slots
// and k reduce slots).
func SlotsForDeadline(job workload.Job, spec cluster.Spec, deadline float64) (int, error) {
	if deadline <= 0 {
		return 0, errors.New("aria: deadline must be positive")
	}
	maxSlots := job.NumMaps()
	if job.NumReduces > maxSlots {
		maxSlots = job.NumReduces
	}
	for k := 1; k <= maxSlots; k++ {
		trial := spec
		// Scale the cluster to k map and k reduce slots by adjusting node count
		// granularity: emulate k slots directly.
		est, err := predictWithSlots(job, trial, k, k)
		if err != nil {
			return 0, err
		}
		if est.Avg <= deadline {
			return k, nil
		}
	}
	return 0, errors.New("aria: deadline unattainable even with one slot per task")
}

// meanDemands evaluates the per-task stage demands on the cluster-average
// hardware (exactly the flat values for homogeneous specs).
func meanDemands(job workload.Job, spec cluster.Spec) (md, ss, mg float64) {
	disk, net, inv := spec.MeanDiskMBps(), spec.MeanNetworkMBps(), spec.MeanInvSpeed()
	md = job.MapDemands(job.BlockSizeMB, disk).TotalScaled(inv)
	ss = job.ShuffleSortDemands(net, disk).TotalScaled(inv)
	mg = job.MergeDemands(disk).TotalScaled(inv)
	return md, ss, mg
}

func predictWithSlots(job workload.Job, spec cluster.Spec, mapSlots, redSlots int) (Estimate, error) {
	straggler := 1 + 2*job.Profile.TaskJitterCV
	md, ss, mg := meanDemands(job, spec)
	mapB, err := StageBounds(StageProfile{Avg: md, Max: md * straggler}, job.NumMaps(), mapSlots)
	if err != nil {
		return Estimate{}, err
	}
	shB, err := StageBounds(StageProfile{Avg: ss, Max: ss * straggler}, job.NumReduces, redSlots)
	if err != nil {
		return Estimate{}, err
	}
	rdB, err := StageBounds(StageProfile{Avg: mg, Max: mg * straggler}, job.NumReduces, redSlots)
	if err != nil {
		return Estimate{}, err
	}
	e := Estimate{Map: mapB, Shuffle: shB, Reduce: rdB}
	am := job.Profile.AMStartup
	e.Low = am + mapB.Low + shB.Low + rdB.Low
	e.Up = am + mapB.Up + shB.Up + rdB.Up
	e.Avg = am + mapB.Avg() + shB.Avg() + rdB.Avg()
	return e, nil
}
