package aria

import (
	"math"
	"testing"

	"hadoop2perf/internal/cluster"
	"hadoop2perf/internal/workload"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestStageBoundsFormula(t *testing.T) {
	// 10 tasks of avg 4 / max 8 on 2 slots:
	// T_low = 10*4/2 = 20; T_up = 9*4/2 + 8 = 26; T_avg = 23.
	b, err := StageBounds(StageProfile{Avg: 4, Max: 8}, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(b.Low, 20, 1e-12) || !almostEq(b.Up, 26, 1e-12) {
		t.Errorf("bounds = %+v", b)
	}
	if !almostEq(b.Avg(), 23, 1e-12) {
		t.Errorf("avg = %v", b.Avg())
	}
}

func TestStageBoundsValidation(t *testing.T) {
	cases := []struct {
		name string
		p    StageProfile
		n, k int
	}{
		{"zero tasks", StageProfile{Avg: 1, Max: 1}, 0, 1},
		{"zero slots", StageProfile{Avg: 1, Max: 1}, 1, 0},
		{"zero avg", StageProfile{Avg: 0, Max: 1}, 1, 1},
		{"max below avg", StageProfile{Avg: 2, Max: 1}, 1, 1},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := StageBounds(tt.p, tt.n, tt.k); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestStageBoundsSingleTask(t *testing.T) {
	// One task on one slot: Low = avg, Up = max.
	b, err := StageBounds(StageProfile{Avg: 5, Max: 9}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if b.Low != 5 || b.Up != 9 {
		t.Errorf("bounds = %+v", b)
	}
}

func TestPredictOrdering(t *testing.T) {
	job, err := workload.NewJob(0, 5*1024, 128, 4, workload.WordCount())
	if err != nil {
		t.Fatal(err)
	}
	est, err := Predict(job, cluster.Default(4))
	if err != nil {
		t.Fatal(err)
	}
	if !(est.Low <= est.Avg && est.Avg <= est.Up) {
		t.Errorf("bounds out of order: %+v", est)
	}
	if est.Low <= 0 {
		t.Error("non-positive lower bound")
	}
}

func TestPredictTightensWithNodes(t *testing.T) {
	job, err := workload.NewJob(0, 5*1024, 128, 4, workload.WordCount())
	if err != nil {
		t.Fatal(err)
	}
	prev := 1e18
	for _, n := range []int{2, 4, 8} {
		est, err := Predict(job, cluster.Default(n))
		if err != nil {
			t.Fatal(err)
		}
		if est.Avg > prev+1e-9 {
			t.Fatalf("T_avg grew with nodes at %d", n)
		}
		prev = est.Avg
	}
}

func TestPredictValidation(t *testing.T) {
	if _, err := Predict(workload.Job{}, cluster.Default(4)); err == nil {
		t.Error("invalid job accepted")
	}
	job, _ := workload.NewJob(0, 1024, 128, 4, workload.WordCount())
	if _, err := Predict(job, cluster.Spec{}); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestSlotsForDeadline(t *testing.T) {
	job, err := workload.NewJob(0, 5*1024, 128, 4, workload.WordCount())
	if err != nil {
		t.Fatal(err)
	}
	spec := cluster.Default(4)
	// A very generous deadline needs few slots; tighter deadlines need more.
	loose, err := SlotsForDeadline(job, spec, 10000)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := SlotsForDeadline(job, spec, 300)
	if err != nil {
		t.Fatal(err)
	}
	if loose > tight {
		t.Errorf("loose deadline wants %d slots > tight %d", loose, tight)
	}
	if loose < 1 {
		t.Errorf("slots = %d", loose)
	}
	// Impossible deadline errors out.
	if _, err := SlotsForDeadline(job, spec, 0.001); err == nil {
		t.Error("impossible deadline accepted")
	}
	if _, err := SlotsForDeadline(job, spec, -1); err == nil {
		t.Error("negative deadline accepted")
	}
}

func TestSlotsForDeadlineMeetsIt(t *testing.T) {
	job, err := workload.NewJob(0, 2*1024, 128, 4, workload.WordCount())
	if err != nil {
		t.Fatal(err)
	}
	spec := cluster.Default(4)
	deadline := 400.0
	k, err := SlotsForDeadline(job, spec, deadline)
	if err != nil {
		t.Fatal(err)
	}
	est, err := predictWithSlots(job, spec, k, k)
	if err != nil {
		t.Fatal(err)
	}
	if est.Avg > deadline {
		t.Errorf("k=%d gives T_avg=%v above deadline %v", k, est.Avg, deadline)
	}
	if k > 1 {
		// One slot fewer must miss the deadline (minimality).
		est2, err := predictWithSlots(job, spec, k-1, k-1)
		if err != nil {
			t.Fatal(err)
		}
		if est2.Avg <= deadline {
			t.Errorf("k-1=%d already meets deadline (%v)", k-1, est2.Avg)
		}
	}
}

// Class-form specs feed ARIA through the cluster-average hardware; the
// bounds must stay finite, ordered, and slower than an all-fast cluster.
func TestPredictHeterogeneousSpec(t *testing.T) {
	job, err := workload.NewJob(0, 1024, 128, 2, workload.WordCount())
	if err != nil {
		t.Fatal(err)
	}
	het := cluster.Default(0)
	het.NumNodes = 0
	het.Classes = []cluster.NodeClass{
		{Name: "fast", Count: 2, Capacity: cluster.Resource{MemoryMB: 32768, VCores: 32},
			CPUs: 6, Disks: 1, DiskMBps: 240, NetworkMBps: 110, Speed: 1},
		{Name: "slow", Count: 2, Capacity: cluster.Resource{MemoryMB: 32768, VCores: 32},
			CPUs: 6, Disks: 1, DiskMBps: 120, NetworkMBps: 110, Speed: 0.5},
	}
	hetEst, err := Predict(job, het)
	if err != nil {
		t.Fatal(err)
	}
	if !(hetEst.Low > 0 && hetEst.Low <= hetEst.Avg && hetEst.Avg <= hetEst.Up) {
		t.Fatalf("het bounds out of order: %+v", hetEst)
	}
	fastEst, err := Predict(job, cluster.Default(4))
	if err != nil {
		t.Fatal(err)
	}
	if hetEst.Avg <= fastEst.Avg {
		t.Errorf("mixed cluster should be slower: het %v vs fast %v", hetEst.Avg, fastEst.Avg)
	}
}
