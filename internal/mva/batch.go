package mva

import (
	"fmt"
	"math"
)

// BatchLanes is the lane width of BatchOverlapSolver's packed kernel: four
// independent fixed points advance per sweep, interleaved element-by-element
// so the inner dot product runs four add-latency chains in parallel (the
// scalar kernel's two accumulators per lane times four lanes). The width is
// fixed — callers pass any number of inputs and the solver chunks them.
const BatchLanes = 4

// BatchOverlapSolver advances several same-shape overlap-weighted fixed
// points (see OverlapSolver.Step) through shared, lane-batched sweeps. Lanes
// are packed lane-minor — element (i, c) of all four lanes sits in one cache
// line — so one pass over the fused weight matrices advances every lane.
//
// Each lane carries its own tolerance, iteration cap, warm rows and Aitken
// state, and freezes independently: a converged lane's result is snapshotted
// at exactly the sweep the scalar kernel would have stopped on (its
// trajectory is bit-identical to a scalar Step of the same input, because
// the packed kernel replicates the scalar accumulation order per lane), then
// the lane stays resident — it keeps riding the sweeps without contributing
// deltas — until the whole group drains. Lanes that fail validation (for
// example a zero-demand task) report a per-lane error without disturbing
// their siblings.
//
// A solver is not safe for concurrent use. Result matrices alias
// solver-owned memory, valid until the next Solve.
type BatchOverlapSolver struct {
	scalar OverlapSolver // singleton groups and Scalar lanes

	// Packed scratch, lane-minor with stride BatchLanes.
	demPk   []float64 // (i*k+c)*L + b: task demands
	resPk   []float64 // (i*k+c)*L + b: residence, current iterate
	nextPk  []float64 // (i*k+c)*L + b: residence, next iterate
	rhoPk   []float64 // (c*n+j)*L + b: center-major visit probabilities
	wPk     []float64 // ((c*n+i)*n+j)*L + b: fused weights
	respPk  []float64 // i*L + b: per-task response
	servPk  []float64 // c*L + b: center multiplicities
	gather  []float64 // n*k per-lane Aitken staging
	acc     [BatchLanes]Aitken
	outFlat []float64   // per-call result backing (residence then response)
	outRows [][]float64 // per-call residence row views

	n, k int
}

// Solve runs every input to its own fixed point and returns per-lane
// results and errors (res[i] is valid iff errs[i] == nil). All inputs must
// share the (task, center) shape of the first valid one; inputs are chunked
// into groups of BatchLanes, a trailing singleton — and any lane explicitly
// requesting the Scalar kernel — runs through an embedded scalar solver
// instead (same trajectory, no padding waste).
func (s *BatchOverlapSolver) Solve(ins []OverlapInput) ([]OverlapResult, []error) {
	m := len(ins)
	results := make([]OverlapResult, m)
	errs := make([]error, m)

	// Size the result backing up front: views are handed out as we go, so
	// the backing must never reallocate mid-call.
	need := 0
	for _, in := range ins {
		if len(in.Tasks) > 0 && len(in.Tasks[0].Demands) > 0 {
			n, k := len(in.Tasks), len(in.Tasks[0].Demands)
			need += n*k + n // residence + response
		}
	}
	if cap(s.outFlat) < need {
		s.outFlat = make([]float64, 0, need)
	}
	s.outFlat = s.outFlat[:0]
	s.outRows = s.outRows[:0]

	var group []int
	flush := func() {
		if len(group) == 0 {
			return
		}
		if len(group) == 1 {
			i := group[0]
			results[i], errs[i] = s.solveScalar(ins[i])
		} else {
			s.solveGroup(ins, group, results, errs)
		}
		group = group[:0]
	}
	for i := range ins {
		if err := validateOverlapInput(&ins[i]); err != nil {
			errs[i] = fmt.Errorf("mva: lane %d: %w", i, err)
			continue
		}
		if ins[i].Scalar {
			results[i], errs[i] = s.solveScalar(ins[i])
			continue
		}
		group = append(group, i)
		if len(group) == BatchLanes {
			flush()
		}
	}
	flush()
	return results, errs
}

// solveScalar runs one lane through the embedded scalar solver and copies
// the result into the call's output backing (the scalar scratch is reused
// across lanes of one Solve).
func (s *BatchOverlapSolver) solveScalar(in OverlapInput) (OverlapResult, error) {
	res, err := s.scalar.Step(in)
	if err != nil {
		return OverlapResult{}, err
	}
	n := len(res.Residence)
	k := len(res.Residence[0])
	base := len(s.outFlat)
	for _, row := range res.Residence {
		s.outFlat = append(s.outFlat, row...)
	}
	s.outFlat = append(s.outFlat, res.Response...)
	rowBase := len(s.outRows)
	for i := 0; i < n; i++ {
		s.outRows = append(s.outRows, s.outFlat[base+i*k:base+(i+1)*k:base+(i+1)*k])
	}
	return OverlapResult{
		Residence:  s.outRows[rowBase : rowBase+n : rowBase+n],
		Response:   s.outFlat[base+n*k : base+n*k+n : base+n*k+n],
		Iterations: res.Iterations,
	}, nil
}

// validateOverlapInput mirrors OverlapSolver.Step's input checks without
// touching solver scratch, so a bad lane can be rejected independently.
func validateOverlapInput(in *OverlapInput) error {
	n := len(in.Tasks)
	if n == 0 {
		return fmt.Errorf("no tasks")
	}
	if len(in.Tasks[0].Demands) == 0 {
		return fmt.Errorf("tasks need at least one center demand")
	}
	k := len(in.Tasks[0].Demands)
	for i, t := range in.Tasks {
		if len(t.Demands) != k {
			return fmt.Errorf("task %d has %d demands, want %d", i, len(t.Demands), k)
		}
		tot := 0.0
		for _, d := range t.Demands {
			if d < 0 {
				return fmt.Errorf("task %d has negative demand", i)
			}
			tot += d
		}
		if tot <= 0 {
			return fmt.Errorf("task %d has zero total demand", i)
		}
	}
	if len(in.Alpha) != k || len(in.Beta) != k {
		return fmt.Errorf("overlap matrices must have one layer per center")
	}
	for c := 0; c < k; c++ {
		if len(in.Alpha[c]) != n || len(in.Beta[c]) != n {
			return fmt.Errorf("overlap matrix size mismatch")
		}
	}
	if in.Servers != nil && len(in.Servers) != k {
		return fmt.Errorf("Servers must have one entry per center")
	}
	return nil
}

// ensure sizes the packed scratch for n tasks over k centers.
func (s *BatchOverlapSolver) ensure(n, k int) {
	s.n, s.k = n, k
	const L = BatchLanes
	grow := func(buf []float64, need int) []float64 {
		if cap(buf) < need {
			return make([]float64, need)
		}
		return buf[:need]
	}
	s.demPk = grow(s.demPk, n*k*L)
	s.resPk = grow(s.resPk, n*k*L)
	s.nextPk = grow(s.nextPk, n*k*L)
	s.rhoPk = grow(s.rhoPk, n*k*L)
	s.wPk = grow(s.wPk, k*n*n*L)
	s.respPk = grow(s.respPk, n*L)
	s.servPk = grow(s.servPk, k*L)
	s.gather = grow(s.gather, n*k)
}

// solveGroup advances 2..BatchLanes validated same-shape lanes in lockstep.
// Slots beyond the group replicate the first lane's input (dead lanes: full
// kernel cost, results discarded) so the packed kernel's width stays fixed.
func (s *BatchOverlapSolver) solveGroup(ins []OverlapInput, group []int, results []OverlapResult, errs []error) {
	const L = BatchLanes
	first := &ins[group[0]]
	n, k := len(first.Tasks), len(first.Tasks[0].Demands)
	for _, gi := range group[1:] {
		in := &ins[gi]
		if len(in.Tasks) != n || len(in.Tasks[0].Demands) != k {
			errs[gi] = fmt.Errorf("mva: lane %d: shape (%d tasks, %d centers) differs from batch (%d, %d)",
				gi, len(in.Tasks), len(in.Tasks[0].Demands), n, k)
		}
	}
	s.ensure(n, k)

	// Slot assignment: real lanes first, then padding replicas of the first.
	var slotIn [L]*OverlapInput
	var slotIdx [L]int // index into ins, -1 for padding
	var frozen [L]bool // no longer reporting (padding, or converged/capped)
	var tol [L]float64
	var maxIter [L]int
	live := 0
	for b := 0; b < L; b++ {
		slotIdx[b] = -1
		slotIn[b] = first
		frozen[b] = true
	}
	for _, gi := range group {
		if errs[gi] != nil {
			continue
		}
		slotIn[live] = &ins[gi]
		slotIdx[live] = gi
		frozen[live] = false
		live++
	}
	if live == 0 {
		return
	}
	maxSweeps := 0
	for b := 0; b < L; b++ {
		in := slotIn[b]
		tol[b] = in.Tol
		if tol[b] <= 0 {
			tol[b] = 1e-10
		}
		maxIter[b] = in.MaxIter
		if maxIter[b] <= 0 {
			maxIter[b] = 500
		}
		if !frozen[b] && maxIter[b] > maxSweeps {
			maxSweeps = maxIter[b]
		}
		for c := 0; c < k; c++ {
			v := 1.0
			if in.Servers != nil && in.Servers[c] > 0 {
				v = in.Servers[c]
			}
			s.servPk[c*L+b] = v
		}
		s.initLane(b, in)
		if in.Accelerate {
			if len(s.acc[b].x0) != n*k {
				s.acc[b].Init(n * k)
			} else {
				s.acc[b].phase = 0
			}
		}
	}
	s.buildWeights(&slotIn)

	for sweep := 1; sweep <= maxSweeps && live > 0; sweep++ {
		md := s.sweepPacked()
		for b := 0; b < L; b++ {
			if frozen[b] {
				continue
			}
			if md[b] < tol[b] {
				s.snapshotLane(b, slotIdx[b], sweep, results)
				frozen[b] = true
				live--
			}
		}
		// Aitken rides only live lanes, mirroring the scalar kernel's
		// observe-after-tolerance-check ordering; a lane exhausting its
		// sweep budget snapshots after the observe, like the scalar loop
		// exiting past its last extrapolation.
		for b := 0; b < L; b++ {
			if frozen[b] {
				continue
			}
			if slotIn[b].Accelerate {
				s.observeLane(b, slotIn[b])
			}
			if sweep >= maxIter[b] {
				s.snapshotLane(b, slotIdx[b], maxIter[b]+1, results)
				frozen[b] = true
				live--
			}
		}
	}
}

// initLane writes slot b's packed demands and initial residence (cold
// residence = demand, warm rows clamped from below by demand — the same
// rules as the scalar Step).
func (s *BatchOverlapSolver) initLane(b int, in *OverlapInput) {
	const L = BatchLanes
	n, k := s.n, s.k
	for i := 0; i < n; i++ {
		var row []float64
		if i < len(in.Warm) && len(in.Warm[i]) == k {
			row = in.Warm[i]
		}
		tot := 0.0
		for c, d := range in.Tasks[i].Demands {
			v := d
			if row != nil && d > 0 && row[c] > d && !math.IsInf(row[c], 0) && !math.IsNaN(row[c]) {
				v = row[c]
			}
			if d == 0 {
				v = 0
			}
			s.demPk[(i*k+c)*L+b] = d
			s.resPk[(i*k+c)*L+b] = v
			tot += v
		}
		s.respPk[i*L+b] = tot
	}
}

// buildWeights packs every slot's fused weight matrices in one dense pass,
// identical in value to the scalar kernel's buildFusedWeights (every row is
// built — a packed row is read for all lanes even when one lane's demand
// there is zero). Building all four lanes together turns four strided
// quarter-density walks over the largest scratch array into one contiguous
// write stream.
func (s *BatchOverlapSolver) buildWeights(slotIn *[BatchLanes]*OverlapInput) {
	const L = BatchLanes
	n, k := s.n, s.k
	var oj [L]float64
	for b := 0; b < L; b++ {
		oj[b] = float64(slotIn[b].OtherJobs)
	}
	var aRow, bRow [L][]float64
	for c := 0; c < k; c++ {
		for i := 0; i < n; i++ {
			for b := 0; b < L; b++ {
				aRow[b] = slotIn[b].Alpha[c][i]
				bRow[b] = slotIn[b].Beta[c][i]
			}
			base := ((c*n + i) * n) * L
			w := s.wPk[base : base+n*L : base+n*L]
			for j := 0; j < n; j++ {
				p := j * L
				w[p+0] = aRow[0][j] + oj[0]*bRow[0][j]
				w[p+1] = aRow[1][j] + oj[1]*bRow[1][j]
				w[p+2] = aRow[2][j] + oj[2]*bRow[2][j]
				w[p+3] = aRow[3][j] + oj[3]*bRow[3][j]
			}
			p := i * L
			w[p+0] = oj[0] * bRow[0][i]
			w[p+1] = oj[1] * bRow[1][i]
			w[p+2] = oj[2] * bRow[2][i]
			w[p+3] = oj[3] * bRow[3][i]
		}
	}
}

// sweepPacked runs one packed sweep over all four lanes and returns each
// lane's max response delta. Per lane the arithmetic replicates the scalar
// fused kernel exactly: center-major ρ division, an even/odd-j accumulator
// pair, c-ordered row sums.
func (s *BatchOverlapSolver) sweepPacked() [BatchLanes]float64 {
	const L = BatchLanes
	n, k := s.n, s.k
	for j := 0; j < n; j++ {
		rb := j * L
		for c := 0; c < k; c++ {
			src := (j*k + c) * L
			dst := (c*n + j) * L
			s.rhoPk[dst+0] = s.resPk[src+0] / s.respPk[rb+0]
			s.rhoPk[dst+1] = s.resPk[src+1] / s.respPk[rb+1]
			s.rhoPk[dst+2] = s.resPk[src+2] / s.respPk[rb+2]
			s.rhoPk[dst+3] = s.resPk[src+3] / s.respPk[rb+3]
		}
	}
	for c := 0; c < k; c++ {
		rc := s.rhoPk[c*n*L : (c+1)*n*L]
		sv := s.servPk[c*L : (c+1)*L : (c+1)*L]
		for i := 0; i < n; i++ {
			wRow := s.wPk[((c*n+i)*n)*L : ((c*n+i+1)*n)*L]
			var e0, e1, e2, e3, o0, o1, o2, o3 float64
			var j int
			for ; j+1 < n; j += 2 {
				p := j * L
				e0 += wRow[p] * rc[p]
				e1 += wRow[p+1] * rc[p+1]
				e2 += wRow[p+2] * rc[p+2]
				e3 += wRow[p+3] * rc[p+3]
				q := p + L
				o0 += wRow[q] * rc[q]
				o1 += wRow[q+1] * rc[q+1]
				o2 += wRow[q+2] * rc[q+2]
				o3 += wRow[q+3] * rc[q+3]
			}
			if j < n {
				p := j * L
				e0 += wRow[p] * rc[p]
				e1 += wRow[p+1] * rc[p+1]
				e2 += wRow[p+2] * rc[p+2]
				e3 += wRow[p+3] * rc[p+3]
			}
			arr := [L]float64{e0 + o0, e1 + o1, e2 + o2, e3 + o3}
			base := (i*k + c) * L
			for b := 0; b < L; b++ {
				d := s.demPk[base+b]
				if d == 0 {
					s.nextPk[base+b] = 0
					continue
				}
				slowdown := (1 + arr[b]) / sv[b]
				if slowdown < 1 {
					slowdown = 1
				}
				s.nextPk[base+b] = d * slowdown
			}
		}
	}
	var md [L]float64
	for i := 0; i < n; i++ {
		var tot [L]float64
		for c := 0; c < k; c++ {
			base := (i*k + c) * L
			tot[0] += s.nextPk[base+0]
			tot[1] += s.nextPk[base+1]
			tot[2] += s.nextPk[base+2]
			tot[3] += s.nextPk[base+3]
		}
		rb := i * L
		for b := 0; b < L; b++ {
			if delta := math.Abs(tot[b] - s.respPk[rb+b]); delta > md[b] {
				md[b] = delta
			}
			s.respPk[rb+b] = tot[b]
		}
	}
	s.resPk, s.nextPk = s.nextPk, s.resPk
	return md
}

// observeLane feeds slot b's iterate (unpacked task-major, the scalar
// layout) to its Aitken accelerator, scattering any extrapolation back into
// the packed matrix and refreshing the lane's response sums.
func (s *BatchOverlapSolver) observeLane(b int, in *OverlapInput) {
	const L = BatchLanes
	n, k := s.n, s.k
	for idx := 0; idx < n*k; idx++ {
		s.gather[idx] = s.resPk[idx*L+b]
	}
	if !s.acc[b].Observe(s.gather, func(idx int) float64 { return in.Tasks[idx/k].Demands[idx%k] }) {
		return
	}
	for idx := 0; idx < n*k; idx++ {
		s.resPk[idx*L+b] = s.gather[idx]
	}
	for i := 0; i < n; i++ {
		tot := 0.0
		for c := 0; c < k; c++ {
			tot += s.resPk[(i*k+c)*L+b]
		}
		s.respPk[i*L+b] = tot
	}
}

// snapshotLane copies slot b's converged state into the call's result
// backing: the lane stays resident in the packed sweeps, but its reported
// result is pinned to this sweep — bit-identical to where the scalar kernel
// would have stopped.
func (s *BatchOverlapSolver) snapshotLane(b, inIdx, iterations int, results []OverlapResult) {
	if inIdx < 0 {
		return
	}
	const L = BatchLanes
	n, k := s.n, s.k
	base := len(s.outFlat)
	for idx := 0; idx < n*k; idx++ {
		s.outFlat = append(s.outFlat, s.resPk[idx*L+b])
	}
	for i := 0; i < n; i++ {
		s.outFlat = append(s.outFlat, s.respPk[i*L+b])
	}
	rowBase := len(s.outRows)
	for i := 0; i < n; i++ {
		s.outRows = append(s.outRows, s.outFlat[base+i*k:base+(i+1)*k:base+(i+1)*k])
	}
	results[inIdx] = OverlapResult{
		Residence:  s.outRows[rowBase : rowBase+n : rowBase+n],
		Response:   s.outFlat[base+n*k : base+n*k+n : base+n*k+n],
		Iterations: iterations,
	}
}
