package mva

import (
	"math/rand"
	"strings"
	"testing"
)

// randomOverlap builds a randomized contended overlap spec of shape (n, k):
// per-task demands in [0.5, 4.5) (occasionally zeroed at one center when
// k > 1, exercising the skipped-row path), dense random α/β, random small
// server multiplicities.
func randomOverlap(rng *rand.Rand, n, k, otherJobs int) OverlapInput {
	tasks := make([]TaskDemand, n)
	for i := range tasks {
		d := make([]float64, k)
		for c := range d {
			d[c] = 0.5 + 4*rng.Float64()
		}
		if k > 1 && rng.Float64() < 0.25 {
			d[rng.Intn(k)] = 0
		}
		tasks[i] = TaskDemand{Demands: d}
	}
	alpha := make([][][]float64, k)
	beta := make([][][]float64, k)
	for c := 0; c < k; c++ {
		alpha[c] = make([][]float64, n)
		beta[c] = make([][]float64, n)
		for i := 0; i < n; i++ {
			alpha[c][i] = make([]float64, n)
			beta[c][i] = make([]float64, n)
			for j := 0; j < n; j++ {
				if i != j {
					alpha[c][i][j] = rng.Float64()
				}
				beta[c][i][j] = 0.5 * rng.Float64()
			}
		}
	}
	servers := make([]float64, k)
	for c := range servers {
		servers[c] = float64(1 + rng.Intn(4))
	}
	return OverlapInput{Tasks: tasks, Alpha: alpha, Beta: beta, Servers: servers, OtherJobs: otherJobs, Tol: 1e-11}
}

func copyResult(res OverlapResult) OverlapResult {
	out := OverlapResult{
		Residence:  make([][]float64, len(res.Residence)),
		Response:   append([]float64(nil), res.Response...),
		Iterations: res.Iterations,
	}
	for i, row := range res.Residence {
		out.Residence[i] = append([]float64(nil), row...)
	}
	return out
}

// requireLaneEqual asserts a batch lane reproduced its scalar reference
// bit-for-bit (the packed kernel replicates the scalar accumulation order,
// so this is exact equality, well inside the 1e-10 relative contract).
func requireLaneEqual(t *testing.T, lane int, got, want OverlapResult) {
	t.Helper()
	if got.Iterations != want.Iterations {
		t.Errorf("lane %d: batch used %d sweeps, scalar %d", lane, got.Iterations, want.Iterations)
	}
	for i := range want.Response {
		if got.Response[i] != want.Response[i] {
			t.Errorf("lane %d task %d: batch response %x, scalar %x", lane, i, got.Response[i], want.Response[i])
		}
		for c := range want.Residence[i] {
			if got.Residence[i][c] != want.Residence[i][c] {
				t.Errorf("lane %d res[%d][%d]: batch %x, scalar %x", lane, i, c, got.Residence[i][c], want.Residence[i][c])
			}
		}
	}
}

// TestBatchMatchesScalarLanes is the batch-vs-sequential equivalence
// property: B lanes through one Solve must equal B scalar Step calls,
// per-lane, over randomized flat and multi-class shapes, cold, warm and
// accelerated. Lane counts straddle the group width so both the packed
// kernel (groups of 2-4, padded) and the singleton delegation run.
func TestBatchMatchesScalarLanes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	shapes := []struct{ n, k, lanes int }{
		{6, 1, 4},  // flat, one full group
		{9, 3, 5},  // full group + singleton
		{12, 2, 3}, // padded group
		{16, 5, 7}, // full group + padded group
		{5, 2, 2},  // padded pair
	}
	for _, mode := range []string{"cold", "warm", "accelerated"} {
		for _, sh := range shapes {
			ins := make([]OverlapInput, sh.lanes)
			for l := range ins {
				ins[l] = randomOverlap(rng, sh.n, sh.k, 1+rng.Intn(4))
				switch mode {
				case "warm":
					// Seed each lane from a neighbor's fixed point (one
					// fewer competing job), the planner's reuse pattern.
					neighbor := ins[l]
					neighbor.OtherJobs++
					var ns OverlapSolver
					nres, err := ns.Step(neighbor)
					if err != nil {
						t.Fatal(err)
					}
					ins[l].Warm = copyResult(nres).Residence
				case "accelerated":
					ins[l].Accelerate = true
				}
			}
			want := make([]OverlapResult, sh.lanes)
			for l := range ins {
				var ref OverlapSolver
				res, err := ref.Step(ins[l])
				if err != nil {
					t.Fatalf("%s shape %dx%d lane %d: %v", mode, sh.n, sh.k, l, err)
				}
				want[l] = copyResult(res)
			}
			var batch BatchOverlapSolver
			got, errs := batch.Solve(ins)
			for l := range ins {
				if errs[l] != nil {
					t.Fatalf("%s shape %dx%d lane %d: %v", mode, sh.n, sh.k, l, errs[l])
				}
				requireLaneEqual(t, l, got[l], want[l])
			}
		}
	}
}

// Lanes converge independently: a warm lane freezing on sweep one must not
// drag its cold siblings' iteration counts (or results) with it, and its
// own count must stop accruing once masked out.
func TestBatchLaneMasking(t *testing.T) {
	cold := contendedInput(12)
	var ref OverlapSolver
	coldRes, err := ref.Step(cold)
	if err != nil {
		t.Fatal(err)
	}
	coldWant := copyResult(coldRes)

	warm := cold
	warm.Warm = coldWant.Residence
	var refW OverlapSolver
	warmRes, err := refW.Step(warm)
	if err != nil {
		t.Fatal(err)
	}
	warmWant := copyResult(warmRes)
	if warmWant.Iterations >= coldWant.Iterations {
		t.Fatalf("warm lane should converge faster: %d vs %d", warmWant.Iterations, coldWant.Iterations)
	}

	var batch BatchOverlapSolver
	got, errs := batch.Solve([]OverlapInput{warm, cold, cold, warm})
	for l, e := range errs {
		if e != nil {
			t.Fatalf("lane %d: %v", l, e)
		}
	}
	requireLaneEqual(t, 0, got[0], warmWant)
	requireLaneEqual(t, 1, got[1], coldWant)
	requireLaneEqual(t, 2, got[2], coldWant)
	requireLaneEqual(t, 3, got[3], warmWant)
}

// A degenerate lane (zero total demand on a task) errors with its lane
// index and leaves every sibling's solve untouched.
func TestBatchDegenerateLane(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ins := make([]OverlapInput, 5)
	want := make([]OverlapResult, 5)
	for l := range ins {
		ins[l] = randomOverlap(rng, 8, 2, 2)
		if l == 2 {
			continue
		}
		var ref OverlapSolver
		res, err := ref.Step(ins[l])
		if err != nil {
			t.Fatal(err)
		}
		want[l] = copyResult(res)
	}
	ins[2].Tasks[3].Demands = []float64{0, 0}

	var batch BatchOverlapSolver
	got, errs := batch.Solve(ins)
	if errs[2] == nil {
		t.Fatal("degenerate lane 2 did not error")
	}
	if !strings.Contains(errs[2].Error(), "lane 2") {
		t.Errorf("error does not name the lane: %v", errs[2])
	}
	for l := range ins {
		if l == 2 {
			continue
		}
		if errs[l] != nil {
			t.Fatalf("sibling lane %d poisoned: %v", l, errs[l])
		}
		requireLaneEqual(t, l, got[l], want[l])
	}
}

// A lane whose shape differs from its group's errors without poisoning the
// group, and a lane requesting the Scalar (legacy) kernel is honored.
func TestBatchMixedLanes(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	base := randomOverlap(rng, 10, 3, 2)
	odd := randomOverlap(rng, 7, 3, 2)
	legacy := base
	legacy.Scalar = true

	var refB, refL OverlapSolver
	baseRes, err := refB.Step(base)
	if err != nil {
		t.Fatal(err)
	}
	baseWant := copyResult(baseRes)
	legacyRes, err := refL.Step(legacy)
	if err != nil {
		t.Fatal(err)
	}
	legacyWant := copyResult(legacyRes)

	var batch BatchOverlapSolver
	got, errs := batch.Solve([]OverlapInput{base, odd, base, legacy})
	if errs[1] == nil || !strings.Contains(errs[1].Error(), "lane 1") {
		t.Fatalf("shape-mismatched lane 1: err = %v", errs[1])
	}
	for _, l := range []int{0, 2} {
		if errs[l] != nil {
			t.Fatalf("lane %d: %v", l, errs[l])
		}
		requireLaneEqual(t, l, got[l], baseWant)
	}
	if errs[3] != nil {
		t.Fatalf("legacy lane: %v", errs[3])
	}
	requireLaneEqual(t, 3, got[3], legacyWant)
}

// Batch results must survive lane count changes across Solve calls on a
// reused solver (scratch resizing, output backing growth).
func TestBatchSolverReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var batch BatchOverlapSolver
	for _, shape := range []struct{ n, k, lanes int }{{12, 2, 6}, {4, 1, 1}, {9, 4, 4}} {
		ins := make([]OverlapInput, shape.lanes)
		want := make([]OverlapResult, shape.lanes)
		for l := range ins {
			ins[l] = randomOverlap(rng, shape.n, shape.k, 1+l%3)
			var ref OverlapSolver
			res, err := ref.Step(ins[l])
			if err != nil {
				t.Fatal(err)
			}
			want[l] = copyResult(res)
		}
		got, errs := batch.Solve(ins)
		for l := range ins {
			if errs[l] != nil {
				t.Fatalf("%dx%d lane %d: %v", shape.n, shape.k, l, errs[l])
			}
			requireLaneEqual(t, l, got[l], want[l])
		}
	}
}
