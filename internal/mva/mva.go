// Package mva provides Mean Value Analysis solvers for closed queueing
// networks:
//
//   - Exact single-class MVA (Reiser & Lavenberg [7]) — the classical
//     recursion, used as a verified substrate and in tests;
//   - Schweitzer–Bard approximate multiclass MVA — the O(C²N²K)-style
//     fixed-point iteration the paper's complexity analysis refers to;
//   - the overlap-weighted residence-time step (Mak & Lundstrom [5], Liang &
//     Tripathi [4]) used by the paper's model: the queueing delay of a task
//     at a center is proportional to the overlap between tasks
//     (α for tasks of the same job, β across jobs).
package mva

import (
	"errors"
	"fmt"
	"math"
)

// Center is a service center of a closed network.
type Center struct {
	Name string
	// Demand is the per-visit service demand of one customer (seconds).
	Demand float64
	// Delay marks a pure delay (infinite-server) center with no queueing.
	Delay bool
}

// ExactResult holds the output of the exact single-class solver.
type ExactResult struct {
	// ResponseTime is the end-to-end response time with N customers.
	ResponseTime float64
	// Throughput is the system throughput X(N).
	Throughput float64
	// QueueLen[k] is the mean number of customers at center k.
	QueueLen []float64
	// Residence[k] is the response time at center k.
	Residence []float64
}

// ExactSingleClass runs the exact MVA recursion for n customers over the
// centers. It returns an error for invalid inputs.
func ExactSingleClass(centers []Center, n int) (ExactResult, error) {
	if n <= 0 {
		return ExactResult{}, errors.New("mva: customer count must be positive")
	}
	if len(centers) == 0 {
		return ExactResult{}, errors.New("mva: need at least one center")
	}
	for _, c := range centers {
		if c.Demand < 0 {
			return ExactResult{}, fmt.Errorf("mva: center %q has negative demand", c.Name)
		}
	}
	k := len(centers)
	q := make([]float64, k)
	res := ExactResult{}
	for pop := 1; pop <= n; pop++ {
		resid := make([]float64, k)
		var total float64
		for i, c := range centers {
			if c.Delay {
				resid[i] = c.Demand
			} else {
				resid[i] = c.Demand * (1 + q[i])
			}
			total += resid[i]
		}
		x := float64(pop) / total
		for i := range centers {
			q[i] = x * resid[i]
		}
		res = ExactResult{ResponseTime: total, Throughput: x, QueueLen: q, Residence: resid}
	}
	// Copy queue lengths so callers can't alias internal state.
	qc := make([]float64, k)
	copy(qc, res.QueueLen)
	res.QueueLen = qc
	return res, nil
}

// ClassSpec describes one customer class of the approximate multiclass
// solver.
type ClassSpec struct {
	Name string
	// Population is the number of class customers.
	Population int
	// Demands[k] is the class's service demand at center k.
	Demands []float64
}

// ApproxResult holds the Schweitzer–Bard output.
type ApproxResult struct {
	// ResponseTime[c] is the per-class response time.
	ResponseTime []float64
	// Throughput[c] is the per-class throughput.
	Throughput []float64
	// QueueLen[c][k] is the mean class-c population at center k.
	QueueLen [][]float64
	// Iterations is the number of fixed-point sweeps used.
	Iterations int
}

// SBOptions tunes the Schweitzer–Bard fixed point beyond the classic knobs.
type SBOptions struct {
	// Warm seeds the per-class queue lengths (one row of `centers` values per
	// class) instead of the uniform spread — e.g. the QueueLen of a previous
	// solve at a nearby population. Rows are renormalized to the class
	// population (the iteration's invariant); a missing, misshapen or
	// degenerate row falls back to the uniform cold start for that class.
	Warm [][]float64
	// Accelerate enables safeguarded Aitken Δ² extrapolation on the queue
	// lengths: every third sweep the geometric tail is extrapolated, falling
	// back to the plain iterate wherever the safeguards reject the step.
	Accelerate bool
}

// SchweitzerBard runs the approximate multiclass MVA fixed point: the
// arrival-instant queue length of class c at center k is approximated by
// sum_j q_jk - q_ck/N_c. Iterates until queue lengths move less than tol.
func SchweitzerBard(classes []ClassSpec, centers int, tol float64, maxIter int) (ApproxResult, error) {
	return SchweitzerBardOpt(classes, centers, tol, maxIter, SBOptions{})
}

// SchweitzerBardOpt is SchweitzerBard with warm-start and acceleration
// options; the zero SBOptions reproduces SchweitzerBard exactly.
func SchweitzerBardOpt(classes []ClassSpec, centers int, tol float64, maxIter int, opts SBOptions) (ApproxResult, error) {
	if len(classes) == 0 {
		return ApproxResult{}, errors.New("mva: need at least one class")
	}
	if centers <= 0 {
		return ApproxResult{}, errors.New("mva: need at least one center")
	}
	if tol <= 0 {
		tol = 1e-9
	}
	if maxIter <= 0 {
		maxIter = 10_000
	}
	for _, c := range classes {
		if c.Population <= 0 {
			return ApproxResult{}, fmt.Errorf("mva: class %q has non-positive population", c.Name)
		}
		if len(c.Demands) != centers {
			return ApproxResult{}, fmt.Errorf("mva: class %q has %d demands, want %d", c.Name, len(c.Demands), centers)
		}
	}
	nc := len(classes)
	q := make([][]float64, nc)
	for c := range q {
		q[c] = make([]float64, centers)
		pop := float64(classes[c].Population)
		if !warmRow(q[c], opts.Warm, c, pop) {
			// Spread the class population evenly as the starting point.
			for k := 0; k < centers; k++ {
				q[c][k] = pop / float64(centers)
			}
		}
	}
	resp := make([]float64, nc)
	thr := make([]float64, nc)
	var acc Aitken
	if opts.Accelerate {
		acc.Init(nc * centers)
	}
	// Double-buffer the queue lengths over flat backing: the historical loop
	// allocated newQ and resid on every sweep, which dominated the allocation
	// profile of long fixed points (TestSchweitzerBardAllocBudget pins the
	// fixed budget).
	nextQ := make([][]float64, nc)
	nextFlat := make([]float64, nc*centers)
	for c := range nextQ {
		nextQ[c] = nextFlat[c*centers : (c+1)*centers : (c+1)*centers]
	}
	resid := make([]float64, centers)
	var it int
	for it = 0; it < maxIter; it++ {
		maxDelta := 0.0
		for c := range classes {
			var total float64
			for k := 0; k < centers; k++ {
				// Arrival theorem approximation.
				arr := 0.0
				for j := range classes {
					arr += q[j][k]
				}
				arr -= q[c][k] / float64(classes[c].Population)
				resid[k] = classes[c].Demands[k] * (1 + arr)
				total += resid[k]
			}
			x := float64(classes[c].Population) / total
			resp[c] = total
			thr[c] = x
			for k := 0; k < centers; k++ {
				nextQ[c][k] = x * resid[k]
				if d := math.Abs(nextQ[c][k] - q[c][k]); d > maxDelta {
					maxDelta = d
				}
			}
		}
		q, nextQ = nextQ, q
		if maxDelta < tol {
			break
		}
		if opts.Accelerate {
			// Queue lengths are nonnegative; the renormalizing sweep above
			// restores the per-class population invariant after any
			// extrapolation, so the floor is the only safeguard needed here.
			acc.ObserveRows(q, func(int) float64 { return 0 })
		}
	}
	return ApproxResult{ResponseTime: resp, Throughput: thr, QueueLen: q, Iterations: it + 1}, nil
}

// warmRow seeds one class's queue-length row from a warm matrix, normalized
// to the class population. It reports false (leaving dst untouched) when the
// warm row is absent, misshapen or degenerate.
func warmRow(dst []float64, warm [][]float64, c int, pop float64) bool {
	if c >= len(warm) || len(warm[c]) != len(dst) {
		return false
	}
	sum := 0.0
	for _, v := range warm[c] {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
		sum += v
	}
	if sum <= 0 {
		return false
	}
	scale := pop / sum
	for k, v := range warm[c] {
		dst[k] = v * scale
	}
	return true
}

// Aitken is the shared safeguarded Δ² accelerator behind every
// fixed-point loop in the model (the overlap solver, Schweitzer–Bard, and
// core's outer class-response iteration): it records two plain iterates
// (x0, x1), and on the third (x2) extrapolates each component's geometric
// tail — x* = x2 − (Δx1)²/(Δ²x0) — wherever the safeguards hold: a
// non-degenerate second difference, a bounded step (≤ 8·|Δx1|, so a
// near-stalled denominator cannot fling the iterate), a finite result and a
// caller-supplied component floor. Components failing any check keep the
// plain iterate — the "safeguarded fallback to plain damping". Convergence
// must always be declared on plain sweep deltas, never on an extrapolated
// one: callers Observe *after* their tolerance check. The zero Aitken is
// not ready; call Init first.
type Aitken struct {
	x0, x1 []float64
	phase  int
}

// Init sizes the accelerator for n-component iterates and resets its phase.
func (a *Aitken) Init(n int) {
	a.x0 = make([]float64, n)
	a.x1 = make([]float64, n)
	a.phase = 0
}

// Observe feeds the current iterate (flat, same length as Init); on every
// third call it writes the extrapolated components back into cur. floor(i)
// is the smallest admissible value of component i. Extrapolated reports
// whether this call changed cur.
func (a *Aitken) Observe(cur []float64, floor func(int) float64) (extrapolated bool) {
	switch a.phase {
	case 0:
		copy(a.x0, cur)
		a.phase = 1
	case 1:
		copy(a.x1, cur)
		a.phase = 2
	default:
		for i, x2 := range cur {
			x0, x1 := a.x0[i], a.x1[i]
			d1, d2 := x1-x0, x2-x1
			den := d2 - d1
			if math.Abs(den) <= 1e-12*(1+math.Abs(x2)) {
				continue // stalled or already converged component
			}
			x := x2 - d2*d2/den
			if math.IsNaN(x) || math.IsInf(x, 0) || x < floor(i) || math.Abs(x-x2) > 8*math.Abs(d2) {
				continue // safeguard: keep the plain iterate
			}
			cur[i] = x
			extrapolated = true
		}
		a.phase = 0
	}
	return extrapolated
}

// ObserveRows is Observe over a row-matrix iterate (flattened view).
func (a *Aitken) ObserveRows(rows [][]float64, floor func(int) float64) {
	// Flatten through a scratch-free two-pass: copy into the phase buffers
	// or extrapolate in place, reusing observe's logic per row segment.
	off := 0
	switch a.phase {
	case 0:
		for _, r := range rows {
			copy(a.x0[off:off+len(r)], r)
			off += len(r)
		}
		a.phase = 1
	case 1:
		for _, r := range rows {
			copy(a.x1[off:off+len(r)], r)
			off += len(r)
		}
		a.phase = 2
	default:
		for _, r := range rows {
			for k, x2 := range r {
				i := off + k
				x0, x1 := a.x0[i], a.x1[i]
				d1, d2 := x1-x0, x2-x1
				den := d2 - d1
				if math.Abs(den) <= 1e-12*(1+math.Abs(x2)) {
					continue
				}
				x := x2 - d2*d2/den
				if math.IsNaN(x) || math.IsInf(x, 0) || x < floor(i) || math.Abs(x-x2) > 8*math.Abs(d2) {
					continue
				}
				r[k] = x
			}
			off += len(r)
		}
		a.phase = 0
	}
}

// TaskDemand describes one task (a leaf of the precedence tree) to the
// overlap-weighted solver: its service demand at each center.
type TaskDemand struct {
	Demands []float64
}

// OverlapInput drives one overlap-weighted residence-time step.
type OverlapInput struct {
	Tasks []TaskDemand
	// Alpha[k][i][j] is the intra-job overlap factor between tasks i and j as
	// seen by center k (per-node centers zero out pairs on different nodes).
	Alpha [][][]float64
	// Beta[k][i][j] is the inter-job overlap contribution of task j of *one*
	// other (statistically identical) job on task i at center k.
	Beta [][][]float64
	// Servers[k] is the service multiplicity of center k (cores per node,
	// disks per node, network fabric width). Zero or negative defaults to 1.
	Servers []float64
	// OtherJobs is N-1: how many identical competing jobs to account for.
	OtherJobs int
	// Tol and MaxIter bound the inner fixed point.
	Tol     float64
	MaxIter int
	// Warm optionally seeds the fixed point with a prior residence matrix
	// (one row of per-center residence times per task) instead of the cold
	// residence=demand start — e.g. the previous outer iteration's converged
	// Residence, or a neighboring configuration's. Entries are clamped from
	// below by the task demand (a valid residence never undercuts it, since
	// the slowdown factor is ≥ 1); a misshapen or non-finite row falls back
	// to the cold start for that task. Warm may alias the solver's own
	// previous result.
	Warm [][]float64
	// Accelerate enables safeguarded Aitken Δ² extrapolation of the
	// residence iterates (every third sweep, component-wise, falling back to
	// the plain damped iterate wherever the safeguards reject the step).
	// Convergence is still only ever declared on a plain sweep's delta.
	Accelerate bool
	// Scalar selects the historical element-wise sweep (per-(i,j) alpha/beta
	// loads with the j != i branch) instead of the fused struct-of-arrays
	// kernel, reproducing the pre-SoA arithmetic bit-for-bit. The fused
	// kernel hoists W[c] = Alpha[c] + OtherJobs·Beta[c] out of the sweep
	// loop, which reassociates the arrival sum and can move results by a few
	// ulps — Scalar is the escape hatch for byte-stable comparisons against
	// historical pins.
	Scalar bool
}

// OverlapResult holds per-task response and residence times.
type OverlapResult struct {
	// Residence[i][k] is task i's residence time at center k.
	Residence [][]float64
	// Response[i] = sum_k Residence[i][k].
	Response []float64
	// Iterations is the number of sweeps used.
	Iterations int
}

// OverlapSolver runs overlap-weighted residence-time steps with reusable
// scratch buffers: the residence matrices are double-buffered over flat
// backing arrays, so repeated Step calls — the outer loop of the paper's
// model iterates the step to a fixed point, and batched predictions solve
// many steps of the same shape — allocate nothing once warmed up.
//
// A solver is not safe for concurrent use. The matrices inside the returned
// OverlapResult alias solver-owned memory and are valid until the next Step
// call; callers that retain them across steps must copy.
type OverlapSolver struct {
	resFlat  []float64 // n×k residence matrix backing, current iterate
	nextFlat []float64 // n×k residence matrix backing, next iterate
	res      [][]float64
	next     [][]float64
	resp     []float64
	servers  []float64
	rho      []float64 // n×k task-major visit probabilities (legacy kernel)
	rhoC     []float64 // k×n center-major visit probabilities (fused kernel)
	wFlat    []float64 // k×n×n fused weight matrices W[c] = α[c] + (N-1)β[c]
	rowDirty []bool    // rows whose residence changed on the last sweep
	acc      Aitken    // Δ² accelerator scratch (Accelerate inputs only)
	n, k     int
}

// ensure sizes the scratch for n tasks over k centers, reusing capacity.
func (s *OverlapSolver) ensure(n, k int) {
	if s.n == n && s.k == k {
		return
	}
	s.n, s.k = n, k
	need := n * k
	if cap(s.resFlat) < need {
		s.resFlat = make([]float64, need)
		s.nextFlat = make([]float64, need)
		s.rho = make([]float64, need)
		s.rhoC = make([]float64, need)
	}
	s.resFlat = s.resFlat[:need]
	s.nextFlat = s.nextFlat[:need]
	s.rho = s.rho[:need]
	s.rhoC = s.rhoC[:need]
	if cap(s.wFlat) < k*n*n {
		s.wFlat = make([]float64, k*n*n)
	}
	s.wFlat = s.wFlat[:k*n*n]
	if cap(s.rowDirty) < n {
		s.rowDirty = make([]bool, n)
	}
	s.rowDirty = s.rowDirty[:n]
	if cap(s.res) < n {
		s.res = make([][]float64, n)
		s.next = make([][]float64, n)
	}
	s.res = s.res[:n]
	s.next = s.next[:n]
	for i := 0; i < n; i++ {
		s.res[i] = s.resFlat[i*k : (i+1)*k : (i+1)*k]
		s.next[i] = s.nextFlat[i*k : (i+1)*k : (i+1)*k]
	}
	if cap(s.resp) < n {
		s.resp = make([]float64, n)
	}
	s.resp = s.resp[:n]
	if cap(s.servers) < k {
		s.servers = make([]float64, k)
	}
	s.servers = s.servers[:k]
}

// Step solves the overlap-weighted residence-time fixed point
// (Mak–Lundstrom arrival queue lengths over processor-sharing multi-server
// centers):
//
//	arr_ik = sum_{j≠i} α^k_ij ρ_jk + (N-1) sum_j β^k_ij ρ_jk
//	R_ik   = D_ik * max(1, (1 + arr_ik) / c_k)
//
// with ρ_jk = R_jk / R_j the probability that an active task j resides at
// center k, and c_k the center's service multiplicity. For c_k = 1 this is
// the classical single-server inflation D_ik*(1+arr); for c_k > 1 it is the
// fluid processor-sharing law: no slowdown until the expected concurrency
// exceeds the server count. Iterates until response times are stable.
func (s *OverlapSolver) Step(in OverlapInput) (OverlapResult, error) {
	n := len(in.Tasks)
	if n == 0 {
		return OverlapResult{}, errors.New("mva: no tasks")
	}
	if len(in.Tasks[0].Demands) == 0 {
		return OverlapResult{}, errors.New("mva: tasks need at least one center demand")
	}
	k := len(in.Tasks[0].Demands)
	for i, t := range in.Tasks {
		if len(t.Demands) != k {
			return OverlapResult{}, fmt.Errorf("mva: task %d has %d demands, want %d", i, len(t.Demands), k)
		}
		for _, d := range t.Demands {
			if d < 0 {
				return OverlapResult{}, fmt.Errorf("mva: task %d has negative demand", i)
			}
		}
	}
	if len(in.Alpha) != k || len(in.Beta) != k {
		return OverlapResult{}, errors.New("mva: overlap matrices must have one layer per center")
	}
	for c := 0; c < k; c++ {
		if len(in.Alpha[c]) != n || len(in.Beta[c]) != n {
			return OverlapResult{}, errors.New("mva: overlap matrix size mismatch")
		}
	}
	if in.Servers != nil && len(in.Servers) != k {
		return OverlapResult{}, errors.New("mva: Servers must have one entry per center")
	}
	s.ensure(n, k)
	for c := 0; c < k; c++ {
		s.servers[c] = 1
		if in.Servers != nil && in.Servers[c] > 0 {
			s.servers[c] = in.Servers[c]
		}
	}
	tol := in.Tol
	if tol <= 0 {
		tol = 1e-10
	}
	maxIter := in.MaxIter
	if maxIter <= 0 {
		maxIter = 500
	}

	// Initialize residence = demand, or from the warm matrix where it
	// supplies a valid (≥ demand, finite) value. Note the warm rows may
	// alias s.res itself (the previous Step's result): the element-wise
	// max below is alias-safe because entry (i,c) only reads entry (i,c).
	for i := 0; i < n; i++ {
		var row []float64
		if i < len(in.Warm) && len(in.Warm[i]) == k {
			row = in.Warm[i]
		}
		tot, demTot := 0.0, 0.0
		for c, d := range in.Tasks[i].Demands {
			demTot += d
			v := d
			if row != nil && d > 0 && row[c] > d && !math.IsInf(row[c], 0) && !math.IsNaN(row[c]) {
				v = row[c]
			}
			if d == 0 {
				v = 0
			}
			s.res[i][c] = v
			tot += v
		}
		if demTot <= 0 {
			return OverlapResult{}, fmt.Errorf("mva: task %d has zero total demand", i)
		}
		s.resp[i] = tot
	}

	if in.Accelerate {
		if len(s.acc.x0) != n*k {
			s.acc.Init(n * k)
		} else {
			s.acc.phase = 0
		}
	}
	var it int
	if in.Scalar {
		it = s.sweepLegacy(&in, tol, maxIter)
	} else {
		it = s.sweepFused(&in, tol, maxIter)
	}
	return OverlapResult{Residence: s.res, Response: s.resp, Iterations: it + 1}, nil
}

// sweepLegacy is the historical element-wise sweep, kept verbatim behind
// OverlapInput.Scalar: per-(i,j) alpha/beta loads with the j != i branch and
// the interleaved α/β accumulation order. It reproduces the pre-SoA results
// bit-for-bit.
func (s *OverlapSolver) sweepLegacy(in *OverlapInput, tol float64, maxIter int) int {
	n, k := s.n, s.k
	otherJobs := float64(in.OtherJobs)
	var it int
	for it = 0; it < maxIter; it++ {
		maxDelta := 0.0
		// Hoist the visit probabilities: ρ_jk depends only on the current
		// iterate, not on i, so computing it once per sweep turns the inner
		// loop into pure multiply-adds. The division stays a division to keep
		// results bit-identical with the historical per-(i,j) computation.
		for j := 0; j < n; j++ {
			for c := 0; c < k; c++ {
				s.rho[j*k+c] = s.res[j][c] / s.resp[j]
			}
		}
		for i := 0; i < n; i++ {
			for c := 0; c < k; c++ {
				d := in.Tasks[i].Demands[c]
				if d == 0 {
					s.next[i][c] = 0
					continue
				}
				alphaRow := in.Alpha[c][i]
				betaRow := in.Beta[c][i]
				arr := 0.0
				for j := 0; j < n; j++ {
					rho := s.rho[j*k+c]
					if j != i {
						arr += alphaRow[j] * rho
					}
					arr += otherJobs * betaRow[j] * rho
				}
				slowdown := (1 + arr) / s.servers[c]
				if slowdown < 1 {
					slowdown = 1
				}
				s.next[i][c] = d * slowdown
			}
		}
		for i := 0; i < n; i++ {
			var tot float64
			for c := 0; c < k; c++ {
				tot += s.next[i][c]
			}
			if delta := math.Abs(tot - s.resp[i]); delta > maxDelta {
				maxDelta = delta
			}
			s.resp[i] = tot
		}
		s.res, s.next = s.next, s.res
		s.resFlat, s.nextFlat = s.nextFlat, s.resFlat
		if maxDelta < tol {
			break
		}
		if in.Accelerate {
			if s.acc.Observe(s.resFlat, func(idx int) float64 { return in.Tasks[idx/k].Demands[idx%k] }) {
				// The extrapolated matrix changed the row sums the next
				// sweep's visit probabilities divide by.
				for i := 0; i < n; i++ {
					tot := 0.0
					for c := 0; c < k; c++ {
						tot += s.res[i][c]
					}
					s.resp[i] = tot
				}
			}
		}
	}
	return it
}

// buildFusedWeights packs W[c] = Alpha[c] + (N-1)·Beta[c] into s.wFlat,
// center-major, one contiguous n-row per (c, i). The diagonal keeps only the
// β self-term: the legacy sweep's j != i branch excluded the α self-overlap,
// while the twin of task i in another job contends fully. Rows whose task
// demand at the center is zero are skipped — the sweep never reads them.
func (s *OverlapSolver) buildFusedWeights(in *OverlapInput) {
	n, k := s.n, s.k
	otherJobs := float64(in.OtherJobs)
	for c := 0; c < k; c++ {
		for i := 0; i < n; i++ {
			if in.Tasks[i].Demands[c] == 0 {
				continue
			}
			alphaRow := in.Alpha[c][i]
			betaRow := in.Beta[c][i]
			wRow := s.wFlat[(c*n+i)*n : (c*n+i+1)*n]
			for j := range wRow {
				wRow[j] = alphaRow[j] + otherJobs*betaRow[j]
			}
			wRow[i] = otherJobs * betaRow[i]
		}
	}
}

// sweepFused is the struct-of-arrays sweep: the fused weight matrices are
// built once outside the loop, ρ is stored center-major so each center's
// arrival sums read two contiguous arrays, and the inner loop is a pure
// branch-free dot product split over two accumulators (even/odd j) to break
// the add-latency dependency chain. BatchOverlapSolver lanes replicate this
// exact accumulation order, so a batch lane and a scalar Step follow
// bit-identical trajectories.
func (s *OverlapSolver) sweepFused(in *OverlapInput, tol float64, maxIter int) int {
	n, k := s.n, s.k
	s.buildFusedWeights(in)
	// All rows start dirty: ρ has never been computed for this iterate.
	for i := range s.rowDirty {
		s.rowDirty[i] = true
	}
	var it int
	for it = 0; it < maxIter; it++ {
		maxDelta := 0.0
		// ρ_jk = R_jk / R_j, center-major. Rows whose residence was
		// bit-unchanged by the previous sweep divide to the same value, so
		// only dirty rows are recomputed — bit-identical, just cheaper when
		// a warm start lands most rows on their fixed point immediately.
		for j := 0; j < n; j++ {
			if !s.rowDirty[j] {
				continue
			}
			row := s.res[j]
			inv := s.resp[j]
			for c := 0; c < k; c++ {
				s.rhoC[c*n+j] = row[c] / inv
			}
		}
		for c := 0; c < k; c++ {
			rc := s.rhoC[c*n : (c+1)*n]
			base := c * n
			// Task rows are independent within a center, so the dot
			// products run two rows at a time — four accumulator chains
			// hide FP-add latency. Each row keeps its own even/odd
			// accumulation order, so results are bit-identical to the
			// one-row-at-a-time walk.
			i := 0
			for ; i+1 < n; i += 2 {
				d0 := in.Tasks[i].Demands[c]
				d1 := in.Tasks[i+1].Demands[c]
				if d0 == 0 || d1 == 0 {
					if d0 == 0 {
						s.next[i][c] = 0
					} else {
						s.next[i][c] = d0 * s.rowSlowdown(base, i, c, rc)
					}
					if d1 == 0 {
						s.next[i+1][c] = 0
					} else {
						s.next[i+1][c] = d1 * s.rowSlowdown(base, i+1, c, rc)
					}
					continue
				}
				w0 := s.wFlat[(base+i)*n : (base+i+1)*n]
				w1 := s.wFlat[(base+i+1)*n : (base+i+2)*n]
				var a0, a1, b0, b1 float64
				var j int
				for ; j+1 < n; j += 2 {
					rj, rj1 := rc[j], rc[j+1]
					a0 += w0[j] * rj
					a1 += w0[j+1] * rj1
					b0 += w1[j] * rj
					b1 += w1[j+1] * rj1
				}
				if j < n {
					rj := rc[j]
					a0 += w0[j] * rj
					b0 += w1[j] * rj
				}
				s0 := (1 + (a0 + a1)) / s.servers[c]
				if s0 < 1 {
					s0 = 1
				}
				s.next[i][c] = d0 * s0
				s1 := (1 + (b0 + b1)) / s.servers[c]
				if s1 < 1 {
					s1 = 1
				}
				s.next[i+1][c] = d1 * s1
			}
			if i < n {
				if d := in.Tasks[i].Demands[c]; d == 0 {
					s.next[i][c] = 0
				} else {
					s.next[i][c] = d * s.rowSlowdown(base, i, c, rc)
				}
			}
		}
		for i := 0; i < n; i++ {
			var tot float64
			changed := false
			nextRow, resRow := s.next[i], s.res[i]
			for c := 0; c < k; c++ {
				tot += nextRow[c]
				if nextRow[c] != resRow[c] {
					changed = true
				}
			}
			if delta := math.Abs(tot - s.resp[i]); delta > maxDelta {
				maxDelta = delta
			}
			s.resp[i] = tot
			s.rowDirty[i] = changed
		}
		s.res, s.next = s.next, s.res
		s.resFlat, s.nextFlat = s.nextFlat, s.resFlat
		if maxDelta < tol {
			break
		}
		if in.Accelerate {
			if s.acc.Observe(s.resFlat, func(idx int) float64 { return in.Tasks[idx/k].Demands[idx%k] }) {
				// The extrapolated matrix changed the row sums the next
				// sweep's visit probabilities divide by — and every row, so
				// the dirty bitmap resets.
				for i := 0; i < n; i++ {
					tot := 0.0
					for c := 0; c < k; c++ {
						tot += s.res[i][c]
					}
					s.resp[i] = tot
					s.rowDirty[i] = true
				}
			}
		}
	}
	return it
}

// rowSlowdown computes one task row's contention slowdown at center c —
// the single-row tail of the paired dot-product walk in sweepFused, with
// the identical even/odd accumulation order.
func (s *OverlapSolver) rowSlowdown(base, i, c int, rc []float64) float64 {
	n := s.n
	wRow := s.wFlat[(base+i)*n : (base+i+1)*n]
	var a0, a1 float64
	var j int
	for ; j+1 < n; j += 2 {
		a0 += wRow[j] * rc[j]
		a1 += wRow[j+1] * rc[j+1]
	}
	if j < n {
		a0 += wRow[j] * rc[j]
	}
	slowdown := (1 + (a0 + a1)) / s.servers[c]
	if slowdown < 1 {
		slowdown = 1
	}
	return slowdown
}

// OverlapStep solves one overlap-weighted residence-time step with a fresh
// solver (see OverlapSolver.Step). The result's matrices are freshly owned
// by the caller.
func OverlapStep(in OverlapInput) (OverlapResult, error) {
	var s OverlapSolver
	return s.Step(in)
}
