// Package mva provides Mean Value Analysis solvers for closed queueing
// networks:
//
//   - Exact single-class MVA (Reiser & Lavenberg [7]) — the classical
//     recursion, used as a verified substrate and in tests;
//   - Schweitzer–Bard approximate multiclass MVA — the O(C²N²K)-style
//     fixed-point iteration the paper's complexity analysis refers to;
//   - the overlap-weighted residence-time step (Mak & Lundstrom [5], Liang &
//     Tripathi [4]) used by the paper's model: the queueing delay of a task
//     at a center is proportional to the overlap between tasks
//     (α for tasks of the same job, β across jobs).
package mva

import (
	"errors"
	"fmt"
	"math"
)

// Center is a service center of a closed network.
type Center struct {
	Name string
	// Demand is the per-visit service demand of one customer (seconds).
	Demand float64
	// Delay marks a pure delay (infinite-server) center with no queueing.
	Delay bool
}

// ExactResult holds the output of the exact single-class solver.
type ExactResult struct {
	// ResponseTime is the end-to-end response time with N customers.
	ResponseTime float64
	// Throughput is the system throughput X(N).
	Throughput float64
	// QueueLen[k] is the mean number of customers at center k.
	QueueLen []float64
	// Residence[k] is the response time at center k.
	Residence []float64
}

// ExactSingleClass runs the exact MVA recursion for n customers over the
// centers. It returns an error for invalid inputs.
func ExactSingleClass(centers []Center, n int) (ExactResult, error) {
	if n <= 0 {
		return ExactResult{}, errors.New("mva: customer count must be positive")
	}
	if len(centers) == 0 {
		return ExactResult{}, errors.New("mva: need at least one center")
	}
	for _, c := range centers {
		if c.Demand < 0 {
			return ExactResult{}, fmt.Errorf("mva: center %q has negative demand", c.Name)
		}
	}
	k := len(centers)
	q := make([]float64, k)
	res := ExactResult{}
	for pop := 1; pop <= n; pop++ {
		resid := make([]float64, k)
		var total float64
		for i, c := range centers {
			if c.Delay {
				resid[i] = c.Demand
			} else {
				resid[i] = c.Demand * (1 + q[i])
			}
			total += resid[i]
		}
		x := float64(pop) / total
		for i := range centers {
			q[i] = x * resid[i]
		}
		res = ExactResult{ResponseTime: total, Throughput: x, QueueLen: q, Residence: resid}
	}
	// Copy queue lengths so callers can't alias internal state.
	qc := make([]float64, k)
	copy(qc, res.QueueLen)
	res.QueueLen = qc
	return res, nil
}

// ClassSpec describes one customer class of the approximate multiclass
// solver.
type ClassSpec struct {
	Name string
	// Population is the number of class customers.
	Population int
	// Demands[k] is the class's service demand at center k.
	Demands []float64
}

// ApproxResult holds the Schweitzer–Bard output.
type ApproxResult struct {
	// ResponseTime[c] is the per-class response time.
	ResponseTime []float64
	// Throughput[c] is the per-class throughput.
	Throughput []float64
	// QueueLen[c][k] is the mean class-c population at center k.
	QueueLen [][]float64
	// Iterations is the number of fixed-point sweeps used.
	Iterations int
}

// SchweitzerBard runs the approximate multiclass MVA fixed point: the
// arrival-instant queue length of class c at center k is approximated by
// sum_j q_jk - q_ck/N_c. Iterates until queue lengths move less than tol.
func SchweitzerBard(classes []ClassSpec, centers int, tol float64, maxIter int) (ApproxResult, error) {
	if len(classes) == 0 {
		return ApproxResult{}, errors.New("mva: need at least one class")
	}
	if centers <= 0 {
		return ApproxResult{}, errors.New("mva: need at least one center")
	}
	if tol <= 0 {
		tol = 1e-9
	}
	if maxIter <= 0 {
		maxIter = 10_000
	}
	for _, c := range classes {
		if c.Population <= 0 {
			return ApproxResult{}, fmt.Errorf("mva: class %q has non-positive population", c.Name)
		}
		if len(c.Demands) != centers {
			return ApproxResult{}, fmt.Errorf("mva: class %q has %d demands, want %d", c.Name, len(c.Demands), centers)
		}
	}
	nc := len(classes)
	q := make([][]float64, nc)
	for c := range q {
		q[c] = make([]float64, centers)
		// Spread the class population evenly as the starting point.
		for k := 0; k < centers; k++ {
			q[c][k] = float64(classes[c].Population) / float64(centers)
		}
	}
	resp := make([]float64, nc)
	thr := make([]float64, nc)
	var it int
	for it = 0; it < maxIter; it++ {
		maxDelta := 0.0
		newQ := make([][]float64, nc)
		for c := range classes {
			newQ[c] = make([]float64, centers)
			var total float64
			resid := make([]float64, centers)
			for k := 0; k < centers; k++ {
				// Arrival theorem approximation.
				arr := 0.0
				for j := range classes {
					arr += q[j][k]
				}
				arr -= q[c][k] / float64(classes[c].Population)
				resid[k] = classes[c].Demands[k] * (1 + arr)
				total += resid[k]
			}
			x := float64(classes[c].Population) / total
			resp[c] = total
			thr[c] = x
			for k := 0; k < centers; k++ {
				newQ[c][k] = x * resid[k]
				if d := math.Abs(newQ[c][k] - q[c][k]); d > maxDelta {
					maxDelta = d
				}
			}
		}
		q = newQ
		if maxDelta < tol {
			break
		}
	}
	return ApproxResult{ResponseTime: resp, Throughput: thr, QueueLen: q, Iterations: it + 1}, nil
}

// TaskDemand describes one task (a leaf of the precedence tree) to the
// overlap-weighted solver: its service demand at each center.
type TaskDemand struct {
	Demands []float64
}

// OverlapInput drives one overlap-weighted residence-time step.
type OverlapInput struct {
	Tasks []TaskDemand
	// Alpha[k][i][j] is the intra-job overlap factor between tasks i and j as
	// seen by center k (per-node centers zero out pairs on different nodes).
	Alpha [][][]float64
	// Beta[k][i][j] is the inter-job overlap contribution of task j of *one*
	// other (statistically identical) job on task i at center k.
	Beta [][][]float64
	// Servers[k] is the service multiplicity of center k (cores per node,
	// disks per node, network fabric width). Zero or negative defaults to 1.
	Servers []float64
	// OtherJobs is N-1: how many identical competing jobs to account for.
	OtherJobs int
	// Tol and MaxIter bound the inner fixed point.
	Tol     float64
	MaxIter int
}

// OverlapResult holds per-task response and residence times.
type OverlapResult struct {
	// Residence[i][k] is task i's residence time at center k.
	Residence [][]float64
	// Response[i] = sum_k Residence[i][k].
	Response []float64
	// Iterations is the number of sweeps used.
	Iterations int
}

// OverlapSolver runs overlap-weighted residence-time steps with reusable
// scratch buffers: the residence matrices are double-buffered over flat
// backing arrays, so repeated Step calls — the outer loop of the paper's
// model iterates the step to a fixed point, and batched predictions solve
// many steps of the same shape — allocate nothing once warmed up.
//
// A solver is not safe for concurrent use. The matrices inside the returned
// OverlapResult alias solver-owned memory and are valid until the next Step
// call; callers that retain them across steps must copy.
type OverlapSolver struct {
	resFlat  []float64 // n×k residence matrix backing, current iterate
	nextFlat []float64 // n×k residence matrix backing, next iterate
	res      [][]float64
	next     [][]float64
	resp     []float64
	servers  []float64
	rho      []float64 // n×k visit-probability matrix, rebuilt per sweep
	n, k     int
}

// ensure sizes the scratch for n tasks over k centers, reusing capacity.
func (s *OverlapSolver) ensure(n, k int) {
	if s.n == n && s.k == k {
		return
	}
	s.n, s.k = n, k
	need := n * k
	if cap(s.resFlat) < need {
		s.resFlat = make([]float64, need)
		s.nextFlat = make([]float64, need)
		s.rho = make([]float64, need)
	}
	s.resFlat = s.resFlat[:need]
	s.nextFlat = s.nextFlat[:need]
	s.rho = s.rho[:need]
	if cap(s.res) < n {
		s.res = make([][]float64, n)
		s.next = make([][]float64, n)
	}
	s.res = s.res[:n]
	s.next = s.next[:n]
	for i := 0; i < n; i++ {
		s.res[i] = s.resFlat[i*k : (i+1)*k : (i+1)*k]
		s.next[i] = s.nextFlat[i*k : (i+1)*k : (i+1)*k]
	}
	if cap(s.resp) < n {
		s.resp = make([]float64, n)
	}
	s.resp = s.resp[:n]
	if cap(s.servers) < k {
		s.servers = make([]float64, k)
	}
	s.servers = s.servers[:k]
}

// Step solves the overlap-weighted residence-time fixed point
// (Mak–Lundstrom arrival queue lengths over processor-sharing multi-server
// centers):
//
//	arr_ik = sum_{j≠i} α^k_ij ρ_jk + (N-1) sum_j β^k_ij ρ_jk
//	R_ik   = D_ik * max(1, (1 + arr_ik) / c_k)
//
// with ρ_jk = R_jk / R_j the probability that an active task j resides at
// center k, and c_k the center's service multiplicity. For c_k = 1 this is
// the classical single-server inflation D_ik*(1+arr); for c_k > 1 it is the
// fluid processor-sharing law: no slowdown until the expected concurrency
// exceeds the server count. Iterates until response times are stable.
func (s *OverlapSolver) Step(in OverlapInput) (OverlapResult, error) {
	n := len(in.Tasks)
	if n == 0 {
		return OverlapResult{}, errors.New("mva: no tasks")
	}
	if len(in.Tasks[0].Demands) == 0 {
		return OverlapResult{}, errors.New("mva: tasks need at least one center demand")
	}
	k := len(in.Tasks[0].Demands)
	for i, t := range in.Tasks {
		if len(t.Demands) != k {
			return OverlapResult{}, fmt.Errorf("mva: task %d has %d demands, want %d", i, len(t.Demands), k)
		}
		for _, d := range t.Demands {
			if d < 0 {
				return OverlapResult{}, fmt.Errorf("mva: task %d has negative demand", i)
			}
		}
	}
	if len(in.Alpha) != k || len(in.Beta) != k {
		return OverlapResult{}, errors.New("mva: overlap matrices must have one layer per center")
	}
	for c := 0; c < k; c++ {
		if len(in.Alpha[c]) != n || len(in.Beta[c]) != n {
			return OverlapResult{}, errors.New("mva: overlap matrix size mismatch")
		}
	}
	if in.Servers != nil && len(in.Servers) != k {
		return OverlapResult{}, errors.New("mva: Servers must have one entry per center")
	}
	s.ensure(n, k)
	for c := 0; c < k; c++ {
		s.servers[c] = 1
		if in.Servers != nil && in.Servers[c] > 0 {
			s.servers[c] = in.Servers[c]
		}
	}
	tol := in.Tol
	if tol <= 0 {
		tol = 1e-10
	}
	maxIter := in.MaxIter
	if maxIter <= 0 {
		maxIter = 500
	}

	// Initialize residence = demand.
	for i := 0; i < n; i++ {
		tot := 0.0
		for c, d := range in.Tasks[i].Demands {
			s.res[i][c] = d
			tot += d
		}
		if tot <= 0 {
			return OverlapResult{}, fmt.Errorf("mva: task %d has zero total demand", i)
		}
		s.resp[i] = tot
	}

	otherJobs := float64(in.OtherJobs)
	var it int
	for it = 0; it < maxIter; it++ {
		maxDelta := 0.0
		// Hoist the visit probabilities: ρ_jk depends only on the current
		// iterate, not on i, so computing it once per sweep turns the inner
		// loop into pure multiply-adds. The division stays a division to keep
		// results bit-identical with the historical per-(i,j) computation.
		for j := 0; j < n; j++ {
			for c := 0; c < k; c++ {
				s.rho[j*k+c] = s.res[j][c] / s.resp[j]
			}
		}
		for i := 0; i < n; i++ {
			for c := 0; c < k; c++ {
				d := in.Tasks[i].Demands[c]
				if d == 0 {
					s.next[i][c] = 0
					continue
				}
				alphaRow := in.Alpha[c][i]
				betaRow := in.Beta[c][i]
				arr := 0.0
				for j := 0; j < n; j++ {
					rho := s.rho[j*k+c]
					if j != i {
						arr += alphaRow[j] * rho
					}
					arr += otherJobs * betaRow[j] * rho
				}
				slowdown := (1 + arr) / s.servers[c]
				if slowdown < 1 {
					slowdown = 1
				}
				s.next[i][c] = d * slowdown
			}
		}
		for i := 0; i < n; i++ {
			var tot float64
			for c := 0; c < k; c++ {
				tot += s.next[i][c]
			}
			if delta := math.Abs(tot - s.resp[i]); delta > maxDelta {
				maxDelta = delta
			}
			s.resp[i] = tot
		}
		s.res, s.next = s.next, s.res
		s.resFlat, s.nextFlat = s.nextFlat, s.resFlat
		if maxDelta < tol {
			break
		}
	}
	return OverlapResult{Residence: s.res, Response: s.resp, Iterations: it + 1}, nil
}

// OverlapStep solves one overlap-weighted residence-time step with a fresh
// solver (see OverlapSolver.Step). The result's matrices are freshly owned
// by the caller.
func OverlapStep(in OverlapInput) (OverlapResult, error) {
	var s OverlapSolver
	return s.Step(in)
}
