package mva

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestExactSingleCustomer(t *testing.T) {
	// One customer never queues: response = sum of demands.
	centers := []Center{{Name: "cpu", Demand: 2}, {Name: "disk", Demand: 3}}
	res, err := ExactSingleClass(centers, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(res.ResponseTime, 5, 1e-12) {
		t.Errorf("R(1) = %v, want 5", res.ResponseTime)
	}
	if !almostEq(res.Throughput, 0.2, 1e-12) {
		t.Errorf("X(1) = %v, want 0.2", res.Throughput)
	}
}

func TestExactTwoCustomersBalanced(t *testing.T) {
	// Classic textbook case: two balanced queues, N=2.
	// N=1: R=2, X=0.5, q=[0.5,0.5].
	// N=2: R_k = 1*(1+0.5) = 1.5 each, R=3, X=2/3, q=[1,1].
	centers := []Center{{Name: "a", Demand: 1}, {Name: "b", Demand: 1}}
	res, err := ExactSingleClass(centers, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(res.ResponseTime, 3, 1e-12) {
		t.Errorf("R(2) = %v, want 3", res.ResponseTime)
	}
	if !almostEq(res.Throughput, 2.0/3, 1e-12) {
		t.Errorf("X(2) = %v, want 2/3", res.Throughput)
	}
	for k, q := range res.QueueLen {
		if !almostEq(q, 1, 1e-12) {
			t.Errorf("q[%d] = %v, want 1", k, q)
		}
	}
}

func TestExactDelayCenterNeverQueues(t *testing.T) {
	centers := []Center{
		{Name: "think", Demand: 10, Delay: true},
		{Name: "cpu", Demand: 1},
	}
	res, err := ExactSingleClass(centers, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Residence at the delay center stays exactly its demand.
	if !almostEq(res.Residence[0], 10, 1e-12) {
		t.Errorf("delay residence = %v", res.Residence[0])
	}
	if res.Residence[1] <= 1 {
		t.Errorf("queueing center should inflate: %v", res.Residence[1])
	}
}

func TestExactThroughputSaturation(t *testing.T) {
	// Throughput is bounded by 1/maxDemand; response grows ~linearly at
	// saturation (asymptotic bound analysis).
	centers := []Center{{Name: "bottleneck", Demand: 2}, {Name: "other", Demand: 1}}
	prevR := 0.0
	for n := 1; n <= 50; n++ {
		res, err := ExactSingleClass(centers, n)
		if err != nil {
			t.Fatal(err)
		}
		if res.Throughput > 0.5+1e-9 {
			t.Fatalf("X(%d) = %v exceeds bottleneck bound 0.5", n, res.Throughput)
		}
		if res.ResponseTime < prevR-1e-9 {
			t.Fatalf("R not monotone at N=%d", n)
		}
		prevR = res.ResponseTime
	}
	res, _ := ExactSingleClass(centers, 50)
	if !almostEq(res.Throughput, 0.5, 0.01) {
		t.Errorf("X(50) = %v, want ~0.5", res.Throughput)
	}
}

func TestExactValidation(t *testing.T) {
	if _, err := ExactSingleClass(nil, 1); err == nil {
		t.Error("no centers accepted")
	}
	if _, err := ExactSingleClass([]Center{{Demand: 1}}, 0); err == nil {
		t.Error("zero customers accepted")
	}
	if _, err := ExactSingleClass([]Center{{Demand: -1}}, 1); err == nil {
		t.Error("negative demand accepted")
	}
}

func TestSchweitzerBardMatchesExactSingleClass(t *testing.T) {
	// For one class, Schweitzer-Bard should be close to exact MVA.
	centers := []Center{{Demand: 1}, {Demand: 2}, {Demand: 0.5}}
	for _, n := range []int{1, 2, 5, 10} {
		exact, err := ExactSingleClass(centers, n)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := SchweitzerBard([]ClassSpec{{
			Name: "c", Population: n, Demands: []float64{1, 2, 0.5},
		}}, 3, 1e-10, 0)
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(approx.ResponseTime[0]-exact.ResponseTime) / exact.ResponseTime
		if rel > 0.12 {
			t.Errorf("N=%d: approx %v vs exact %v (%.1f%% off)",
				n, approx.ResponseTime[0], exact.ResponseTime, 100*rel)
		}
	}
}

func TestSchweitzerBardMulticlass(t *testing.T) {
	classes := []ClassSpec{
		{Name: "a", Population: 2, Demands: []float64{1, 0.5}},
		{Name: "b", Population: 3, Demands: []float64{0.5, 1}},
	}
	res, err := SchweitzerBard(classes, 2, 1e-10, 0)
	if err != nil {
		t.Fatal(err)
	}
	for c := range classes {
		min := classes[c].Demands[0] + classes[c].Demands[1]
		if res.ResponseTime[c] <= min {
			t.Errorf("class %d response %v not above demand %v", c, res.ResponseTime[c], min)
		}
	}
	// Populations are conserved: sum_k q_ck == N_c (Little's law fixpoint).
	for c, spec := range classes {
		var tot float64
		for k := 0; k < 2; k++ {
			tot += res.QueueLen[c][k]
		}
		if !almostEq(tot, float64(spec.Population), 0.01) {
			t.Errorf("class %d population = %v, want %d", c, tot, spec.Population)
		}
	}
}

func TestSchweitzerBardValidation(t *testing.T) {
	if _, err := SchweitzerBard(nil, 1, 0, 0); err == nil {
		t.Error("no classes accepted")
	}
	if _, err := SchweitzerBard([]ClassSpec{{Population: 0, Demands: []float64{1}}}, 1, 0, 0); err == nil {
		t.Error("zero population accepted")
	}
	if _, err := SchweitzerBard([]ClassSpec{{Population: 1, Demands: []float64{1, 2}}}, 1, 0, 0); err == nil {
		t.Error("demand/center mismatch accepted")
	}
	if _, err := SchweitzerBard([]ClassSpec{{Population: 1, Demands: []float64{1}}}, 0, 0, 0); err == nil {
		t.Error("zero centers accepted")
	}
}

func overlapInput(n int, d float64, alphaVal float64, servers []float64) OverlapInput {
	tasks := make([]TaskDemand, n)
	for i := range tasks {
		tasks[i] = TaskDemand{Demands: []float64{d}}
	}
	alpha := [][][]float64{make([][]float64, n)}
	beta := [][][]float64{make([][]float64, n)}
	for i := 0; i < n; i++ {
		alpha[0][i] = make([]float64, n)
		beta[0][i] = make([]float64, n)
		for j := 0; j < n; j++ {
			if i != j {
				alpha[0][i][j] = alphaVal
			}
		}
	}
	return OverlapInput{Tasks: tasks, Alpha: alpha, Beta: beta, Servers: servers}
}

func TestOverlapStepNoOverlapNoInflation(t *testing.T) {
	res, err := OverlapStep(overlapInput(4, 10, 0, nil))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res.Response {
		if !almostEq(r, 10, 1e-9) {
			t.Errorf("task %d response = %v, want 10", i, r)
		}
	}
}

func TestOverlapStepFullOverlapSingleServer(t *testing.T) {
	// n tasks fully overlapping on one server: each sees n-1 competitors all
	// resident at the only center (rho=1): slowdown = n.
	n := 4
	res, err := OverlapStep(overlapInput(n, 10, 1, nil))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res.Response {
		if !almostEq(r, 40, 1e-6) {
			t.Errorf("task %d response = %v, want 40", i, r)
		}
	}
}

func TestOverlapStepMultiServerAbsorbs(t *testing.T) {
	// 4 fully-overlapping tasks on a 4-server center: no slowdown.
	res, err := OverlapStep(overlapInput(4, 10, 1, []float64{4}))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res.Response {
		if !almostEq(r, 10, 1e-9) {
			t.Errorf("task %d response = %v, want 10", i, r)
		}
	}
	// ...but 8 tasks on 4 servers slow down 2x.
	res8, err := OverlapStep(overlapInput(8, 10, 1, []float64{4}))
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(res8.Response[0], 20, 1e-6) {
		t.Errorf("8 tasks on 4 servers: %v, want 20", res8.Response[0])
	}
}

func TestOverlapStepInterJob(t *testing.T) {
	// One task per job, OtherJobs identical twins fully aligned: slowdown =
	// 1 + OtherJobs.
	in := overlapInput(1, 10, 0, nil)
	in.Beta[0][0][0] = 1
	in.OtherJobs = 3
	res, err := OverlapStep(in)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(res.Response[0], 40, 1e-6) {
		t.Errorf("response = %v, want 40", res.Response[0])
	}
}

func TestOverlapStepValidation(t *testing.T) {
	if _, err := OverlapStep(OverlapInput{}); err == nil {
		t.Error("empty input accepted")
	}
	in := overlapInput(2, 10, 0.5, nil)
	in.Alpha = in.Alpha[:0]
	if _, err := OverlapStep(in); err == nil {
		t.Error("missing alpha layer accepted")
	}
	in2 := overlapInput(2, 10, 0.5, []float64{1, 2})
	if _, err := OverlapStep(in2); err == nil {
		t.Error("servers length mismatch accepted")
	}
	in3 := overlapInput(2, 0, 0.5, nil)
	if _, err := OverlapStep(in3); err == nil {
		t.Error("zero-demand task accepted")
	}
	in4 := overlapInput(2, 10, 0.5, nil)
	in4.Tasks[0].Demands = []float64{-1}
	if _, err := OverlapStep(in4); err == nil {
		t.Error("negative demand accepted")
	}
}

// Property: response is always >= demand, monotone in the overlap level, and
// monotone in the number of competing jobs.
func TestOverlapStepMonotonicityProperty(t *testing.T) {
	f := func(nQ uint8, aQ, dQ uint8, jobsQ uint8) bool {
		n := int(nQ)%6 + 2
		alphaLo := float64(aQ%50) / 100
		alphaHi := alphaLo + 0.3
		d := float64(dQ%20) + 1
		jobs := int(jobsQ) % 4

		lo, err := OverlapStep(overlapInput(n, d, alphaLo, nil))
		if err != nil {
			return false
		}
		hi, err := OverlapStep(overlapInput(n, d, alphaHi, nil))
		if err != nil {
			return false
		}
		for i := range lo.Response {
			if lo.Response[i] < d-1e-9 {
				return false
			}
			if hi.Response[i] < lo.Response[i]-1e-9 {
				return false
			}
		}
		inJobs := overlapInput(n, d, alphaLo, nil)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				inJobs.Beta[0][i][j] = 0.5
			}
		}
		inJobs.OtherJobs = jobs
		withJobs, err := OverlapStep(inJobs)
		if err != nil {
			return false
		}
		for i := range withJobs.Response {
			if withJobs.Response[i] < lo.Response[i]-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// warmUp solves one input cold and returns a deep copy of its queue matrix
// (the returned QueueLen is freshly allocated per solve, but copy anyway so
// the test owns its seed).
func warmUp(t *testing.T, classes []ClassSpec, centers int) ([][]float64, ApproxResult) {
	t.Helper()
	cold, err := SchweitzerBard(classes, centers, 1e-12, 0)
	if err != nil {
		t.Fatal(err)
	}
	warm := make([][]float64, len(cold.QueueLen))
	for c, row := range cold.QueueLen {
		warm[c] = append([]float64(nil), row...)
	}
	return warm, cold
}

func TestSchweitzerBardWarmMatchesCold(t *testing.T) {
	classes := []ClassSpec{
		{Name: "a", Population: 6, Demands: []float64{3, 1, 0.5}},
		{Name: "b", Population: 3, Demands: []float64{0.5, 2, 1}},
	}
	warm, cold := warmUp(t, classes, 3)

	// Perturb the populations slightly — the neighbor-seeding scenario.
	near := []ClassSpec{
		{Name: "a", Population: 7, Demands: classes[0].Demands},
		{Name: "b", Population: 3, Demands: classes[1].Demands},
	}
	coldNear, err := SchweitzerBard(near, 3, 1e-12, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []SBOptions{{Warm: warm}, {Warm: warm, Accelerate: true}} {
		warmNear, err := SchweitzerBardOpt(near, 3, 1e-12, 0, opts)
		if err != nil {
			t.Fatal(err)
		}
		for c := range warmNear.ResponseTime {
			if !almostEq(warmNear.ResponseTime[c], coldNear.ResponseTime[c], 1e-8) {
				t.Errorf("opts %+v class %d: warm response %v vs cold %v",
					opts, c, warmNear.ResponseTime[c], coldNear.ResponseTime[c])
			}
		}
		if warmNear.Iterations > coldNear.Iterations {
			t.Errorf("opts %+v: warm start used %d iterations, cold %d",
				opts, warmNear.Iterations, coldNear.Iterations)
		}
	}
	_ = cold
}

func TestSchweitzerBardWarmRejectsDegenerate(t *testing.T) {
	classes := []ClassSpec{{Name: "a", Population: 4, Demands: []float64{2, 1}}}
	cold, err := SchweitzerBard(classes, 2, 1e-12, 0)
	if err != nil {
		t.Fatal(err)
	}
	for name, warm := range map[string][][]float64{
		"misshapen": {{1, 2, 3}},
		"negative":  {{-1, 2}},
		"nan":       {{math.NaN(), 1}},
		"zero":      {{0, 0}},
		"short":     {},
	} {
		got, err := SchweitzerBardOpt(classes, 2, 1e-12, 0, SBOptions{Warm: warm})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !almostEq(got.ResponseTime[0], cold.ResponseTime[0], 1e-9) {
			t.Errorf("%s warm row: response %v, want cold %v", name, got.ResponseTime[0], cold.ResponseTime[0])
		}
	}
}

// contendedInput builds a slowly-converging overlap fixed point: heavy
// intra- and inter-job contention over two centers of unequal demand.
func contendedInput(n int) OverlapInput {
	tasks := make([]TaskDemand, n)
	for i := range tasks {
		tasks[i] = TaskDemand{Demands: []float64{10, 2}}
	}
	alpha := make([][][]float64, 2)
	beta := make([][][]float64, 2)
	for k := 0; k < 2; k++ {
		alpha[k] = make([][]float64, n)
		beta[k] = make([][]float64, n)
		for i := 0; i < n; i++ {
			alpha[k][i] = make([]float64, n)
			beta[k][i] = make([]float64, n)
			for j := 0; j < n; j++ {
				if i != j {
					alpha[k][i][j] = 0.9
				}
				beta[k][i][j] = 0.4
			}
		}
	}
	return OverlapInput{Tasks: tasks, Alpha: alpha, Beta: beta, OtherJobs: 3, Tol: 1e-12}
}

func TestOverlapSolverWarmMatchesCold(t *testing.T) {
	in := contendedInput(12)
	var cold OverlapSolver
	ref, err := cold.Step(in)
	if err != nil {
		t.Fatal(err)
	}
	refResp := append([]float64(nil), ref.Response...)
	warmSeed := make([][]float64, len(ref.Residence))
	for i, row := range ref.Residence {
		warmSeed[i] = append([]float64(nil), row...)
	}

	// Same input warm-started from its own fixed point: near-instant, same
	// answer.
	var s OverlapSolver
	warmIn := in
	warmIn.Warm = warmSeed
	got, err := s.Step(warmIn)
	if err != nil {
		t.Fatal(err)
	}
	if got.Iterations >= ref.Iterations {
		t.Errorf("warm restart used %d sweeps, cold %d", got.Iterations, ref.Iterations)
	}
	for i := range refResp {
		if !almostEq(got.Response[i], refResp[i], 1e-9) {
			t.Errorf("task %d: warm %v vs cold %v", i, got.Response[i], refResp[i])
		}
	}

	// A perturbed input (one extra competing job) warm-started from the
	// neighbor: same fixed point as its own cold solve.
	pert := in
	pert.OtherJobs = 4
	var coldP OverlapSolver
	refP, err := coldP.Step(pert)
	if err != nil {
		t.Fatal(err)
	}
	refPResp := append([]float64(nil), refP.Response...)
	pertWarm := pert
	pertWarm.Warm = warmSeed
	var sP OverlapSolver
	gotP, err := sP.Step(pertWarm)
	if err != nil {
		t.Fatal(err)
	}
	for i := range refPResp {
		if !almostEq(gotP.Response[i], refPResp[i], 1e-8) {
			t.Errorf("perturbed task %d: warm %v vs cold %v", i, gotP.Response[i], refPResp[i])
		}
	}
}

func TestOverlapSolverAccelerateMatchesPlain(t *testing.T) {
	in := contendedInput(16)
	plain, err := OverlapStep(in)
	if err != nil {
		t.Fatal(err)
	}
	plainResp := append([]float64(nil), plain.Response...)
	accIn := in
	accIn.Accelerate = true
	var s OverlapSolver
	acc, err := s.Step(accIn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plainResp {
		if !almostEq(acc.Response[i], plainResp[i], 1e-8) {
			t.Errorf("task %d: accelerated %v vs plain %v", i, acc.Response[i], plainResp[i])
		}
	}
	if acc.Iterations > plain.Iterations {
		t.Errorf("acceleration used %d sweeps, plain %d", acc.Iterations, plain.Iterations)
	}
	t.Logf("plain %d sweeps, accelerated %d", plain.Iterations, acc.Iterations)
}

// The solver's own previous result may be passed back as the warm seed
// (aliasing its internal buffers) — the documented reuse pattern of the
// model's outer loop.
func TestOverlapSolverWarmAliasPrevious(t *testing.T) {
	var s OverlapSolver
	in := contendedInput(8)
	first, err := s.Step(in)
	if err != nil {
		t.Fatal(err)
	}
	firstResp := append([]float64(nil), first.Response...)
	again := in
	again.Warm = first.Residence // aliases s's internal state
	second, err := s.Step(again)
	if err != nil {
		t.Fatal(err)
	}
	if second.Iterations > 2 {
		t.Errorf("restart from own fixed point took %d sweeps", second.Iterations)
	}
	for i := range firstResp {
		if !almostEq(second.Response[i], firstResp[i], 1e-9) {
			t.Errorf("task %d drifted: %v vs %v", i, second.Response[i], firstResp[i])
		}
	}
}

// The fused SoA sweep and the legacy element-wise sweep (OverlapInput.Scalar)
// are different summation orders of the same fixed point: they must agree to
// 1e-10 relative on every residence entry, over randomized flat and
// multi-class contended specs.
func TestOverlapFusedMatchesScalarProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(14)
		k := 1 + rng.Intn(5)
		in := randomOverlap(rng, n, k, rng.Intn(5))
		in.Accelerate = rng.Float64() < 0.5

		var fs OverlapSolver
		fused, err := fs.Step(in)
		if err != nil {
			t.Fatalf("trial %d: fused: %v", trial, err)
		}
		fusedCopy := copyResult(fused)

		legacy := in
		legacy.Scalar = true
		var ls OverlapSolver
		ref, err := ls.Step(legacy)
		if err != nil {
			t.Fatalf("trial %d: scalar: %v", trial, err)
		}
		for i := range ref.Response {
			if rel := math.Abs(fusedCopy.Response[i]-ref.Response[i]) / ref.Response[i]; rel > 1e-10 {
				t.Errorf("trial %d (n=%d k=%d) task %d: fused %v vs scalar %v (rel %g)",
					trial, n, k, i, fusedCopy.Response[i], ref.Response[i], rel)
			}
			for c := range ref.Residence[i] {
				want := ref.Residence[i][c]
				got := fusedCopy.Residence[i][c]
				if want == 0 {
					if got != 0 {
						t.Errorf("trial %d task %d center %d: fused %v, scalar 0", trial, i, c, got)
					}
					continue
				}
				if rel := math.Abs(got-want) / math.Abs(want); rel > 1e-10 {
					t.Errorf("trial %d task %d center %d: fused %v vs scalar %v (rel %g)", trial, i, c, got, want, rel)
				}
			}
		}
	}
}

// SchweitzerBardOpt's allocation count must stay fixed regardless of how
// many sweeps the fixed point takes: the historical loop allocated a fresh
// queue matrix and residual slice per iteration.
func TestSchweitzerBardAllocBudget(t *testing.T) {
	classes := []ClassSpec{
		{Name: "maps", Population: 64, Demands: []float64{12, 3, 1}},
		{Name: "reduces", Population: 16, Demands: []float64{4, 9, 2}},
	}
	// Warm up any lazy runtime state, and confirm the spec actually iterates.
	res, err := SchweitzerBard(classes, 3, 1e-12, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 10 {
		t.Fatalf("spec converged in %d sweeps; too fast to expose per-sweep allocations", res.Iterations)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := SchweitzerBard(classes, 3, 1e-12, 0); err != nil {
			t.Error(err)
		}
	})
	// Fixed setup cost: q + its rows, nextQ + flat backing, resp, thr, resid,
	// and the result struct's slices. Anything scaling with Iterations (~60
	// here) would blow straight past this.
	const budget = 16
	if allocs > budget {
		t.Errorf("SchweitzerBard allocated %.0f per run, budget %d (iterations=%d)", allocs, budget, res.Iterations)
	}
}
