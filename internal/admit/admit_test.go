package admit

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is a mutable test clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func TestAdmitAndDone(t *testing.T) {
	clk := newFakeClock()
	c := NewController(Config{Capacity: 2, MaxQueueCost: 10, Now: clk.Now})

	tk, err := c.Admit(context.Background(), ClassCheap)
	if err != nil {
		t.Fatalf("Admit(cheap): %v", err)
	}
	if got := c.Snapshot().QueuedCost; got != DefaultCheapCost {
		t.Fatalf("queued cost = %d, want %d", got, DefaultCheapCost)
	}
	clk.Advance(50 * time.Millisecond)
	tk.Done()
	tk.Done() // second settle must be a no-op
	if got := c.Snapshot().QueuedCost; got != 0 {
		t.Fatalf("queued cost after Done = %d, want 0", got)
	}
	if s := c.Snapshot(); s.AdmittedCheap != 1 || s.AdmittedExpensive != 0 {
		t.Fatalf("admitted = %+v, want 1 cheap", s)
	}
}

func TestQueueFullShed(t *testing.T) {
	c := NewController(Config{Capacity: 1, MaxQueueCost: 2 * DefaultExpensiveCost})
	var open []*Ticket
	for i := 0; i < 2; i++ {
		tk, err := c.Admit(context.Background(), ClassExpensive)
		if err != nil {
			t.Fatalf("Admit #%d: %v", i, err)
		}
		open = append(open, tk)
	}
	_, err := c.Admit(context.Background(), ClassExpensive)
	se, ok := IsShed(err)
	if !ok || se.Reason != ReasonQueueFull {
		t.Fatalf("third Admit = %v, want ShedError(queue_full)", err)
	}
	if se.RetryAfter < minRetryAfter {
		t.Fatalf("RetryAfter = %s, want >= %s", se.RetryAfter, minRetryAfter)
	}
	// Cheap still fits: 2×8 + 1 > 16 is false only when a slot frees.
	if _, err := c.Admit(context.Background(), ClassCheap); err == nil {
		t.Fatalf("cheap Admit at full queue should shed, got nil error")
	}
	open[0].Done()
	if _, err := c.Admit(context.Background(), ClassCheap); err != nil {
		t.Fatalf("cheap Admit after Done: %v", err)
	}
	if got := c.Snapshot().ShedQueueFull; got != 2 {
		t.Fatalf("ShedQueueFull = %d, want 2", got)
	}
}

func TestDeadlineShed(t *testing.T) {
	clk := newFakeClock()
	c := NewController(Config{Capacity: 1, MaxQueueCost: 1000, Now: clk.Now})

	// Teach the controller a 1s-per-unit service time.
	tk, _ := c.Admit(context.Background(), ClassCheap)
	clk.Advance(time.Second)
	tk.Done()

	// Pile up 10 cost units of outstanding work.
	var open []*Ticket
	for i := 0; i < 10; i++ {
		tk, err := c.Admit(context.Background(), ClassCheap)
		if err != nil {
			t.Fatalf("backlog Admit #%d: %v", i, err)
		}
		open = append(open, tk)
	}
	// Estimated wait behind 10 units at 1s/unit on 1 worker ≈ 9s; a 500ms
	// budget cannot make it.
	ctx, cancel := context.WithDeadline(context.Background(), clk.Now().Add(500*time.Millisecond))
	defer cancel()
	_, err := c.Admit(ctx, ClassCheap)
	se, ok := IsShed(err)
	if !ok || se.Reason != ReasonDeadline {
		t.Fatalf("Admit with tight deadline = %v, want ShedError(deadline)", err)
	}
	// A generous budget is admitted despite the same backlog.
	ctx2, cancel2 := context.WithDeadline(context.Background(), clk.Now().Add(time.Hour))
	defer cancel2()
	if _, err := c.Admit(ctx2, ClassCheap); err != nil {
		t.Fatalf("Admit with generous deadline: %v", err)
	}
	if got := c.Snapshot().ShedDeadline; got != 1 {
		t.Fatalf("ShedDeadline = %d, want 1", got)
	}
	for _, tk := range open {
		tk.Done()
	}
}

func TestColdStartNeverDeadlineSheds(t *testing.T) {
	// With no service-time history the wait estimate is zero: even a
	// microscopic budget is admitted (the request may still time out
	// later, but admission has no evidence to refuse it on).
	c := NewController(Config{Capacity: 1, MaxQueueCost: 1000})
	for i := 0; i < 50; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
		if _, err := c.Admit(ctx, ClassExpensive); err != nil {
			cancel()
			t.Fatalf("cold-start Admit #%d: %v", i, err)
		}
		cancel()
	}
}

func TestDrainingSheds(t *testing.T) {
	c := NewController(Config{Capacity: 4})
	if c.Draining() {
		t.Fatal("fresh controller reports draining")
	}
	c.StartDrain()
	if !c.Draining() {
		t.Fatal("Draining() false after StartDrain")
	}
	_, err := c.Admit(context.Background(), ClassCheap)
	se, ok := IsShed(err)
	if !ok || se.Reason != ReasonDraining {
		t.Fatalf("Admit while draining = %v, want ShedError(draining)", err)
	}
	if got := c.Snapshot().ShedDraining; got != 1 {
		t.Fatalf("ShedDraining = %d, want 1", got)
	}
}

func TestOverloaded(t *testing.T) {
	c := NewController(Config{Capacity: 1, MaxQueueCost: DefaultExpensiveCost})
	if c.Overloaded() {
		t.Fatal("empty controller reports overloaded")
	}
	tk, err := c.Admit(context.Background(), ClassExpensive)
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if !c.Overloaded() {
		t.Fatal("controller at MaxQueueCost should report overloaded")
	}
	tk.Done()
	if c.Overloaded() {
		t.Fatal("controller reports overloaded after Done")
	}
}

func TestShedErrorWrapping(t *testing.T) {
	inner := &ShedError{Reason: ReasonQueueFull, RetryAfter: 2 * time.Second}
	wrapped := fmt.Errorf("handling request: %w", inner)
	se, ok := IsShed(wrapped)
	if !ok || se != inner {
		t.Fatalf("IsShed(wrapped) = (%v, %v), want inner", se, ok)
	}
	if _, ok := IsShed(errors.New("plain")); ok {
		t.Fatal("IsShed(plain error) = true")
	}
	if got := inner.Error(); got == "" {
		t.Fatal("ShedError.Error() empty")
	}
}

func TestConcurrentAdmitBounded(t *testing.T) {
	c := NewController(Config{Capacity: 4, MaxQueueCost: 40})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var tickets []*Ticket
	for i := 0; i < 200; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tk, err := c.Admit(context.Background(), ClassCheap)
			if err != nil {
				return
			}
			mu.Lock()
			tickets = append(tickets, tk)
			mu.Unlock()
		}()
	}
	wg.Wait()
	if got := c.Snapshot().QueuedCost; got > 40 {
		t.Fatalf("queued cost %d exceeds bound 40 under stampede", got)
	}
	if len(tickets) != 40 {
		t.Fatalf("admitted %d of 200 at bound 40, want exactly 40", len(tickets))
	}
	for _, tk := range tickets {
		tk.Done()
	}
	if got := c.Snapshot().QueuedCost; got != 0 {
		t.Fatalf("queued cost after settling = %d, want 0", got)
	}
}

func TestEWMAConverges(t *testing.T) {
	clk := newFakeClock()
	c := NewController(Config{Capacity: 1, Now: clk.Now})
	for i := 0; i < 100; i++ {
		tk, err := c.Admit(context.Background(), ClassCheap)
		if err != nil {
			t.Fatalf("Admit #%d: %v", i, err)
		}
		clk.Advance(100 * time.Millisecond)
		tk.Done()
	}
	got := c.unitSeconds()
	if got < 0.09 || got > 0.11 {
		t.Fatalf("unitSeconds after steady 100ms observations = %v, want ≈0.1", got)
	}
}

func TestClassString(t *testing.T) {
	if ClassCheap.String() != "cheap" || ClassExpensive.String() != "expensive" {
		t.Fatalf("class names = %q/%q", ClassCheap, ClassExpensive)
	}
	if Class(99).String() == "" {
		t.Fatal("unknown class name empty")
	}
}
