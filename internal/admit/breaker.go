package admit

import (
	"sync"
	"time"
)

// Breaker states.
const (
	// StateClosed: the backend is healthy; calls pass through.
	StateClosed = iota
	// StateOpen: consecutive timeouts tripped the breaker; calls are
	// refused until the cooldown elapses.
	StateOpen
	// StateHalfOpen: the cooldown elapsed; exactly one probe call is let
	// through to test whether the backend recovered.
	StateHalfOpen
)

// StateName returns the stable metric-label name of a breaker state.
func StateName(s int) string {
	switch s {
	case StateClosed:
		return "closed"
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half_open"
	}
	return "unknown"
}

// Breaker tuning defaults.
const (
	// DefaultTripThreshold consecutive timeouts open the breaker.
	DefaultTripThreshold = 3
	// DefaultCooldown is how long the breaker stays open before allowing a
	// half-open probe.
	DefaultCooldown = 10 * time.Second
)

// BreakerConfig tunes a Breaker.
type BreakerConfig struct {
	// TripThreshold is the consecutive-timeout count that opens the
	// breaker (0 = DefaultTripThreshold).
	TripThreshold int
	// Cooldown is the open-state duration before a half-open probe
	// (0 = DefaultCooldown).
	Cooldown time.Duration
	// Now is an injectable clock for tests (nil = time.Now).
	Now func() time.Time
}

// Breaker is a consecutive-failure circuit breaker guarding one backend
// (here: the discrete-event simulator). Callers ask Allow before the slow
// path; on false they take the degraded fallback. After an allowed call
// they report Success or Timeout. Timeouts are the only failures that
// count — an invalid request or a client cancellation says nothing about
// backend health.
//
// State machine: TripThreshold consecutive timeouts close→open; after
// Cooldown, the next Allow transitions open→half-open and admits exactly
// one probe; the probe's Success closes the breaker, its Timeout re-opens
// it for another cooldown.
//
// All methods are safe for concurrent use. A single mutex (never held
// across calls out) keeps the transitions atomic; the breaker sits in
// front of work measured in seconds, so the lock is not a hot path.
type Breaker struct {
	mu          sync.Mutex
	state       int
	consecutive int
	openedAt    time.Time
	probing     bool
	trips       int64
	threshold   int
	cooldown    time.Duration
	now         func() time.Time
}

// NewBreaker builds a Breaker with the given tuning.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.TripThreshold <= 0 {
		cfg.TripThreshold = DefaultTripThreshold
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = DefaultCooldown
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Breaker{threshold: cfg.TripThreshold, cooldown: cfg.Cooldown, now: cfg.Now}
}

// Allow reports whether a call to the guarded backend may proceed. In the
// open state it returns false until the cooldown elapses, then admits a
// single half-open probe (concurrent callers during the probe get false).
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		return true
	case StateOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = StateHalfOpen
		b.probing = true
		return true
	case StateHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return false
}

// Success records a call that completed in time, closing the breaker.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive = 0
	b.probing = false
	b.state = StateClosed
}

// Timeout records a call that exceeded its deadline. At the trip
// threshold (or on a failed half-open probe) the breaker opens and the
// cooldown restarts.
func (b *Breaker) Timeout() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if b.state == StateHalfOpen {
		// Failed probe: straight back to open for another cooldown.
		b.state = StateOpen
		b.openedAt = b.now()
		b.trips++
		return
	}
	b.consecutive++
	if b.state == StateClosed && b.consecutive >= b.threshold {
		b.state = StateOpen
		b.openedAt = b.now()
		b.trips++
	}
}

// State returns the current breaker state (one of the State* constants).
// An elapsed cooldown reads as half-open even before the next Allow, so
// metrics reflect that probes are welcome.
func (b *Breaker) State() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == StateOpen && b.now().Sub(b.openedAt) >= b.cooldown {
		return StateHalfOpen
	}
	return b.state
}

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
