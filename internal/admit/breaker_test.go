package admit

import (
	"testing"
	"time"
)

func TestBreakerTripAndRecover(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{TripThreshold: 3, Cooldown: 10 * time.Second, Now: clk.Now})

	if !b.Allow() {
		t.Fatal("fresh breaker refuses calls")
	}
	// Two timeouts: still closed.
	b.Timeout()
	b.Timeout()
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after 2 timeouts = %s, want closed", StateName(got))
	}
	// Third consecutive timeout trips it.
	b.Timeout()
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after 3 timeouts = %s, want open", StateName(got))
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a call inside the cooldown")
	}
	if got := b.Trips(); got != 1 {
		t.Fatalf("trips = %d, want 1", got)
	}

	// Cooldown elapses → half-open, exactly one probe.
	clk.Advance(10 * time.Second)
	if got := b.State(); got != StateHalfOpen {
		t.Fatalf("state after cooldown = %s, want half_open", StateName(got))
	}
	if !b.Allow() {
		t.Fatal("half-open breaker refused the probe")
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	// Probe succeeds → closed, counters reset.
	b.Success()
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after successful probe = %s, want closed", StateName(got))
	}
	if !b.Allow() {
		t.Fatal("closed breaker refuses calls after recovery")
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{TripThreshold: 1, Cooldown: 5 * time.Second, Now: clk.Now})
	b.Timeout()
	if got := b.State(); got != StateOpen {
		t.Fatalf("state = %s, want open", StateName(got))
	}
	clk.Advance(5 * time.Second)
	if !b.Allow() {
		t.Fatal("probe refused after cooldown")
	}
	b.Timeout() // failed probe
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after failed probe = %s, want open", StateName(got))
	}
	if b.Allow() {
		t.Fatal("breaker allowed a call right after a failed probe")
	}
	if got := b.Trips(); got != 2 {
		t.Fatalf("trips = %d, want 2", got)
	}
	// Recovery still possible after another cooldown.
	clk.Advance(5 * time.Second)
	if !b.Allow() {
		t.Fatal("second probe refused")
	}
	b.Success()
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after recovery = %s, want closed", StateName(got))
	}
}

func TestBreakerSuccessResetsConsecutive(t *testing.T) {
	b := NewBreaker(BreakerConfig{TripThreshold: 3})
	b.Timeout()
	b.Timeout()
	b.Success() // streak broken
	b.Timeout()
	b.Timeout()
	if got := b.State(); got != StateClosed {
		t.Fatalf("state = %s, want closed (streak was reset)", StateName(got))
	}
	b.Timeout()
	if got := b.State(); got != StateOpen {
		t.Fatalf("state = %s, want open after 3 consecutive", StateName(got))
	}
}

func TestStateName(t *testing.T) {
	cases := map[int]string{StateClosed: "closed", StateOpen: "open", StateHalfOpen: "half_open", 42: "unknown"}
	for s, want := range cases {
		if got := StateName(s); got != want {
			t.Fatalf("StateName(%d) = %q, want %q", s, got, want)
		}
	}
}
