// Package admit is the overload-resilience layer of the serving path:
// a cost-classed admission controller that bounds the work queued in front
// of a worker pool and sheds excess load *before* it consumes resources,
// plus a consecutive-timeout circuit breaker (breaker.go) that lets
// degraded fallbacks take over when a backend stops answering in time.
//
// The controller is deliberately not a queue: requests still block on the
// worker pool's semaphore, which preserves FIFO-ish fairness and context
// cancellation for free. What the controller adds is *accounting* — every
// admitted request carries a cost (cheap model solves vs. expensive
// simulations), the total outstanding cost is bounded, and an exponentially
// weighted estimate of per-cost-unit service time prices the queue: a
// request whose estimated wait already exceeds its remaining deadline is
// rejected in microseconds with a structured, Retry-After-carrying error
// instead of timing out a worker slot later. Both shed paths answer fast by
// construction — no lock is held across any computation.
//
// The package is dependency-free and safe for concurrent use.
package admit

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// Class buckets requests by their expected resource cost. The admission
// bound and wait estimates are denominated in cost units, so one expensive
// request occupies the queue like several cheap ones.
type Class int

// The cost classes, cheapest first.
const (
	// ClassCheap covers requests dominated by one analytic model solve
	// (predict, compare's model side): milliseconds of CPU.
	ClassCheap Class = iota
	// ClassExpensive covers requests that run the discrete-event simulator
	// or fan out over a plan grid: seconds of CPU.
	ClassExpensive
	numClasses
)

// String returns the class's stable metric-label name.
func (c Class) String() string {
	switch c {
	case ClassCheap:
		return "cheap"
	case ClassExpensive:
		return "expensive"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Default controller tuning.
const (
	// DefaultCheapCost and DefaultExpensiveCost are the per-class cost
	// units. The ratio (not the absolute values) is what matters: one
	// simulation displaces eight model solves.
	DefaultCheapCost     = 1
	DefaultExpensiveCost = 8
	// DefaultQueueFactor sizes the default admission bound: MaxQueueCost =
	// DefaultQueueFactor × Capacity cost units — deep enough that bursts
	// degrade into queueing (the worker pool's job), shallow enough that a
	// sustained overload sheds instead of growing latency without bound.
	DefaultQueueFactor = 64
	// ewmaAlpha is the weight of the newest observation in the per-unit
	// service-time estimate.
	ewmaAlpha = 0.2
	// minRetryAfter and maxRetryAfter clamp the Retry-After hint carried by
	// shed errors.
	minRetryAfter = time.Second
	maxRetryAfter = 30 * time.Second
)

// Shed reasons reported by ShedError and the controller's counters.
const (
	// ReasonQueueFull: the bounded queue's outstanding cost was at capacity.
	ReasonQueueFull = "queue_full"
	// ReasonDeadline: the estimated queue wait already exceeded the
	// request's remaining deadline, so queueing could only waste a slot.
	ReasonDeadline = "deadline"
	// ReasonDraining: the process is shutting down and admits no new work.
	ReasonDraining = "draining"
)

// ShedError is the structured rejection of an admission decision. It is a
// client-retryable condition, not a fault: transports map it to HTTP 503
// with the RetryAfter hint.
type ShedError struct {
	// Reason is one of the Reason* constants.
	Reason string
	// RetryAfter estimates when capacity will be available again.
	RetryAfter time.Duration
}

// Error renders the shed reason and retry hint.
func (e *ShedError) Error() string {
	return fmt.Sprintf("admission rejected (%s); retry after %s", e.Reason, e.RetryAfter)
}

// IsShed reports whether err is an admission rejection, returning it.
func IsShed(err error) (*ShedError, bool) {
	var se *ShedError
	ok := errorsAs(err, &se)
	return se, ok
}

// errorsAs is errors.As without the reflective allocation for the one
// pointer shape the package produces.
func errorsAs(err error, target **ShedError) bool {
	for err != nil {
		if se, ok := err.(*ShedError); ok {
			*target = se
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// Config tunes a Controller.
type Config struct {
	// Capacity is the worker-pool size the controller fronts (required,
	// > 0): the divisor of queue-wait estimates.
	Capacity int
	// MaxQueueCost bounds the total outstanding (queued + executing) cost
	// units; 0 defaults to DefaultQueueFactor × Capacity.
	MaxQueueCost int
	// CheapCost and ExpensiveCost override the per-class cost units
	// (0 keeps the defaults).
	CheapCost     int
	ExpensiveCost int // see CheapCost
	// Now is an injectable clock for tests (nil = time.Now).
	Now func() time.Time
}

// Controller makes admission decisions for a worker pool. Create one with
// NewController; all methods are safe for concurrent use.
type Controller struct {
	capacity  int
	maxCost   int64
	costs     [numClasses]int64
	now       func() time.Time
	draining  atomic.Bool
	queued    atomic.Int64 // outstanding cost units (queued + executing)
	unitEWMA  atomic.Uint64
	admitted  [numClasses]atomic.Int64
	shedQueue atomic.Int64
	shedDead  atomic.Int64
	shedDrain atomic.Int64
}

// NewController builds a Controller over a pool of capacity workers.
func NewController(cfg Config) *Controller {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 1
	}
	if cfg.MaxQueueCost <= 0 {
		cfg.MaxQueueCost = DefaultQueueFactor * cfg.Capacity
	}
	if cfg.CheapCost <= 0 {
		cfg.CheapCost = DefaultCheapCost
	}
	if cfg.ExpensiveCost <= 0 {
		cfg.ExpensiveCost = DefaultExpensiveCost
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	c := &Controller{
		capacity: cfg.Capacity,
		maxCost:  int64(cfg.MaxQueueCost),
		now:      cfg.Now,
	}
	c.costs[ClassCheap] = int64(cfg.CheapCost)
	c.costs[ClassExpensive] = int64(cfg.ExpensiveCost)
	return c
}

// Ticket is one admitted request's reservation. Release it exactly once
// when the request finishes (success or failure): Done returns the cost to
// the queue bound and feeds the observed service time into the wait
// estimator.
type Ticket struct {
	c       *Controller
	class   Class
	cost    int64
	start   time.Time
	settled atomic.Bool
}

// Admit decides whether one request of the given class may enter the
// system. The decision is immediate — never blocking — so shed responses
// cost microseconds. ctx's deadline, when set, activates deadline-aware
// shedding: a request whose estimated queue wait exceeds its remaining
// budget is rejected now rather than timed out later.
func (c *Controller) Admit(ctx context.Context, class Class) (*Ticket, error) {
	if class < 0 || class >= numClasses {
		class = ClassExpensive
	}
	cost := c.costs[class]
	if c.draining.Load() {
		c.shedDrain.Add(1)
		return nil, &ShedError{Reason: ReasonDraining, RetryAfter: maxRetryAfter}
	}
	// Reserve optimistically, back out on rejection: the race window of a
	// check-then-add would admit unbounded cost under a stampede.
	outstanding := c.queued.Add(cost)
	if outstanding > c.maxCost {
		c.queued.Add(-cost)
		c.shedQueue.Add(1)
		return nil, &ShedError{Reason: ReasonQueueFull, RetryAfter: c.retryAfter(outstanding)}
	}
	if dl, ok := ctx.Deadline(); ok {
		// Wait behind everything already outstanding (excluding what the
		// pool is executing right now, approximated by one capacity's worth).
		wait := c.estWait(outstanding - cost)
		// Only shed on positive evidence (wait > 0): a cold-start estimate
		// of zero or an already-expired deadline is the downstream ctx
		// check's problem, not admission's.
		if remaining := dl.Sub(c.now()); wait > 0 && wait > remaining {
			c.queued.Add(-cost)
			c.shedDead.Add(1)
			return nil, &ShedError{Reason: ReasonDeadline, RetryAfter: clampRetry(wait)}
		}
	}
	c.admitted[class].Add(1)
	return &Ticket{c: c, class: class, cost: cost, start: c.now()}, nil
}

// Done settles the ticket: the cost returns to the bound and the observed
// service time updates the per-unit wait estimate. Safe to call more than
// once; only the first call settles.
func (t *Ticket) Done() {
	if t == nil || !t.settled.CompareAndSwap(false, true) {
		return
	}
	t.c.queued.Add(-t.cost)
	elapsed := t.c.now().Sub(t.start).Seconds()
	if elapsed > 0 && t.cost > 0 {
		t.c.observeUnitSeconds(elapsed / float64(t.cost))
	}
}

// estWait estimates how long a newly queued request waits for a worker:
// the outstanding cost ahead of it, beyond what the pool is already
// executing, divided across the workers at the observed per-unit service
// time. With no history (cold start) the estimate is zero — the controller
// only sheds on deadlines once it has evidence.
func (c *Controller) estWait(aheadCost int64) time.Duration {
	unit := c.unitSeconds()
	if unit <= 0 {
		return 0
	}
	executing := int64(c.capacity) // ≈ cost the pool is already working on
	waitingCost := aheadCost - executing
	if waitingCost <= 0 {
		return 0
	}
	sec := float64(waitingCost) * unit / float64(c.capacity)
	if sec > math.MaxInt32 {
		sec = math.MaxInt32
	}
	return time.Duration(sec * float64(time.Second))
}

// retryAfter hints when a queue-full client should come back: the time to
// drain half the outstanding queue, clamped to [1s, 30s].
func (c *Controller) retryAfter(outstanding int64) time.Duration {
	return clampRetry(c.estWait(outstanding / 2))
}

func clampRetry(d time.Duration) time.Duration {
	if d < minRetryAfter {
		return minRetryAfter
	}
	if d > maxRetryAfter {
		return maxRetryAfter
	}
	return d
}

// observeUnitSeconds folds one observed per-cost-unit service time into
// the EWMA (atomic CAS loop; contention is one CAS retry per collision).
func (c *Controller) observeUnitSeconds(v float64) {
	for {
		old := c.unitEWMA.Load()
		cur := math.Float64frombits(old)
		next := v
		if cur > 0 {
			next = (1-ewmaAlpha)*cur + ewmaAlpha*v
		}
		if c.unitEWMA.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// unitSeconds returns the current per-cost-unit service-time estimate.
func (c *Controller) unitSeconds() float64 {
	return math.Float64frombits(c.unitEWMA.Load())
}

// StartDrain flips the controller into draining: every subsequent Admit is
// shed with ReasonDraining. In-flight tickets are unaffected.
func (c *Controller) StartDrain() { c.draining.Store(true) }

// Draining reports whether StartDrain was called.
func (c *Controller) Draining() bool { return c.draining.Load() }

// Overloaded reports whether the outstanding cost has reached the
// admission bound — the readiness signal load balancers should stop
// routing on.
func (c *Controller) Overloaded() bool { return c.queued.Load() >= c.maxCost }

// Snapshot is a point-in-time copy of the controller's counters.
type Snapshot struct {
	// QueuedCost is the outstanding (queued + executing) cost units.
	QueuedCost int64 `json:"queuedCost"`
	// MaxQueueCost is the admission bound in cost units.
	MaxQueueCost int64 `json:"maxQueueCost"`
	// EstWaitSeconds prices the current queue at the observed per-unit
	// service time.
	EstWaitSeconds float64 `json:"estWaitSeconds"`
	// AdmittedCheap / AdmittedExpensive count admissions per class.
	AdmittedCheap     int64 `json:"admittedCheap"`
	AdmittedExpensive int64 `json:"admittedExpensive"` // see AdmittedCheap
	// ShedQueueFull, ShedDeadline and ShedDraining count rejections per
	// reason.
	ShedQueueFull int64 `json:"shedQueueFull"`
	ShedDeadline  int64 `json:"shedDeadline"` // see ShedQueueFull
	ShedDraining  int64 `json:"shedDraining"` // see ShedQueueFull
}

// Snapshot returns the controller's current counters.
func (c *Controller) Snapshot() Snapshot {
	queued := c.queued.Load()
	return Snapshot{
		QueuedCost:        queued,
		MaxQueueCost:      c.maxCost,
		EstWaitSeconds:    c.estWait(queued).Seconds(),
		AdmittedCheap:     c.admitted[ClassCheap].Load(),
		AdmittedExpensive: c.admitted[ClassExpensive].Load(),
		ShedQueueFull:     c.shedQueue.Load(),
		ShedDeadline:      c.shedDead.Load(),
		ShedDraining:      c.shedDrain.Load(),
	}
}
