// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§5), plus complexity and micro benchmarks for the model's
// components. Each figure benchmark runs the full sim-vs-model sweep and
// logs the rows the paper reports (use -v to see them); absolute seconds
// come from the simulator substrate, so shapes — not magnitudes — are the
// comparison target (see EXPERIMENTS.md).
package hadoop2perf

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"hadoop2perf/internal/bench"
	"hadoop2perf/internal/core"
	"hadoop2perf/internal/dist"
	"hadoop2perf/internal/mrsim"
	"hadoop2perf/internal/mva"
	"hadoop2perf/internal/ptree"
	"hadoop2perf/internal/timeline"
	"hadoop2perf/internal/workload"
)

func benchFigure(b *testing.B, id string) {
	var spec bench.Spec
	for _, s := range bench.FigureSpecs() {
		if s.ID == id {
			spec = s
		}
	}
	if spec.ID == "" {
		b.Fatalf("unknown figure %s", id)
	}
	for i := 0; i < b.N; i++ {
		fig, err := bench.RunFigure(spec)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", fig.Format())
		}
	}
}

// BenchmarkFig10 regenerates Figure 10: 1 GB input, 1 job, 4/6/8 nodes.
func BenchmarkFig10(b *testing.B) { benchFigure(b, "fig10") }

// BenchmarkFig11 regenerates Figure 11: 1 GB input, 4 concurrent jobs.
func BenchmarkFig11(b *testing.B) { benchFigure(b, "fig11") }

// BenchmarkFig12 regenerates Figure 12: 5 GB input, 1 job.
func BenchmarkFig12(b *testing.B) { benchFigure(b, "fig12") }

// BenchmarkFig13 regenerates Figure 13: 5 GB input, 4 concurrent jobs.
func BenchmarkFig13(b *testing.B) { benchFigure(b, "fig13") }

// BenchmarkFig14 regenerates Figure 14: 4 nodes, 5 GB, 1..4 jobs.
func BenchmarkFig14(b *testing.B) { benchFigure(b, "fig14") }

// BenchmarkFig15 regenerates Figure 15: 64 MB blocks, 5 GB, 1 job.
func BenchmarkFig15(b *testing.B) { benchFigure(b, "fig15") }

// BenchmarkTable1 regenerates the ResourceRequest table of the running
// example.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := bench.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", out)
		}
	}
}

// BenchmarkModelComplexityMaps sweeps the map count: the paper's §4.3 says
// the per-iteration tree cost is O(C·T) and the MVA step dominates; the
// model should stay comfortably sub-second even at hundreds of tasks.
func BenchmarkModelComplexityMaps(b *testing.B) {
	for _, maps := range []int{8, 40, 80, 160} {
		job, err := workload.NewJob(0, float64(maps)*128, 128, 4, workload.WordCount())
		if err != nil {
			b.Fatal(err)
		}
		spec := DefaultCluster(4)
		b.Run(benchName("maps", maps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Predict(core.Config{Spec: spec, Job: job, NumJobs: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkModelComplexityJobs sweeps the concurrent-job count (the N² term
// of the paper's O(C²N²K) MVA complexity).
func BenchmarkModelComplexityJobs(b *testing.B) {
	job, err := workload.NewJob(0, 5*1024, 128, 4, workload.WordCount())
	if err != nil {
		b.Fatal(err)
	}
	spec := DefaultCluster(4)
	for _, jobs := range []int{1, 2, 4, 8} {
		b.Run(benchName("jobs", jobs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Predict(core.Config{Spec: spec, Job: job, NumJobs: jobs}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimulator measures one full cluster simulation (1 GB, 4 nodes).
func BenchmarkSimulator(b *testing.B) {
	job, err := workload.NewJob(0, 1024, 128, 4, workload.WordCount())
	if err != nil {
		b.Fatal(err)
	}
	cfg := mrsim.Config{Spec: DefaultCluster(4), Jobs: []workload.Job{job}, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mrsim.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorLarge measures a 5 GB, 8-node simulation — the heavy
// end of the figure benchmarks, where the event-calendar and resource hot
// paths dominate.
func BenchmarkSimulatorLarge(b *testing.B) {
	job, err := workload.NewJob(0, 5*1024, 128, 8, workload.WordCount())
	if err != nil {
		b.Fatal(err)
	}
	cfg := mrsim.Config{Spec: DefaultCluster(8), Jobs: []workload.Job{job}, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mrsim.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictBatch compares a cluster-size sweep evaluated through
// one reusable Predictor (PredictBatch) against fresh per-config Predict
// calls — the shape the planner produces. The light sweep (1 reducer, 1
// job) pins the allocation-lean fast path; the contended sweep (4 reducers,
// 4 concurrent jobs — dozens of outer rounds per point cold) pins the
// warm-start/acceleration win: outerIters/op and innerIters/op make the
// convergence work visible, cold vs warm vs the AccelerateOuter opt-in.
func BenchmarkPredictBatch(b *testing.B) {
	job, err := workload.NewJob(0, 2*1024, 128, 1, workload.WordCount())
	if err != nil {
		b.Fatal(err)
	}
	var cfgs []ModelConfig
	for n := 2; n <= 17; n++ {
		cfgs = append(cfgs, ModelConfig{Spec: DefaultCluster(n), Job: job, NumJobs: 1})
	}
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, cfg := range cfgs {
				if _, err := Predict(cfg); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := PredictBatch(cfgs); err != nil {
				b.Fatal(err)
			}
		}
	})

	heavy, err := workload.NewJob(0, 5*1024, 128, 4, workload.WordCount())
	if err != nil {
		b.Fatal(err)
	}
	var contended []ModelConfig
	for n := 2; n <= 17; n++ {
		contended = append(contended, ModelConfig{Spec: DefaultCluster(n), Job: heavy, NumJobs: 4})
	}
	runContended := func(b *testing.B, mutate func(*ModelConfig)) {
		b.ReportAllocs()
		var outer, inner int64
		for i := 0; i < b.N; i++ {
			cfgs := make([]ModelConfig, len(contended))
			copy(cfgs, contended)
			for j := range cfgs {
				mutate(&cfgs[j])
			}
			preds, err := PredictBatch(cfgs)
			if err != nil {
				b.Fatal(err)
			}
			for _, p := range preds {
				outer += int64(p.Iterations)
				inner += int64(p.InnerIterations)
			}
		}
		b.ReportMetric(float64(outer)/float64(b.N), "outerIters/op")
		b.ReportMetric(float64(inner)/float64(b.N), "innerIters/op")
	}
	b.Run("contended-cold", func(b *testing.B) {
		runContended(b, func(c *ModelConfig) { c.ColdStart = true })
	})
	// The same cold sweep through the lane-lockstep pipeline
	// (PredictBatchLockstep). This is the A/B behind PredictBatch routing
	// cold entries sequentially: identical innerIters/op, but the packed
	// kernel pays full four-wide sweeps while the scalar kernel's dirty-row
	// skip makes late sweeps nearly free (PERFORMANCE.md §2).
	b.Run("contended-cold-lanes", func(b *testing.B) {
		b.ReportAllocs()
		p := NewPredictor()
		var outer, inner int64
		for i := 0; i < b.N; i++ {
			cfgs := make([]ModelConfig, len(contended))
			copy(cfgs, contended)
			for j := range cfgs {
				cfgs[j].ColdStart = true
			}
			preds, err := p.PredictBatchLockstep(context.Background(), cfgs)
			if err != nil {
				b.Fatal(err)
			}
			for _, pr := range preds {
				outer += int64(pr.Iterations)
				inner += int64(pr.InnerIterations)
			}
		}
		b.ReportMetric(float64(outer)/float64(b.N), "outerIters/op")
		b.ReportMetric(float64(inner)/float64(b.N), "innerIters/op")
	})
	b.Run("contended-warm", func(b *testing.B) {
		runContended(b, func(c *ModelConfig) {})
	})
	b.Run("contended-warm-accel", func(b *testing.B) {
		runContended(b, func(c *ModelConfig) { c.AccelerateOuter = true })
	})
}

// BenchmarkServiceParallel drives the HTTP handler with concurrent clients
// mixing cache hits and misses — the contention profile of production
// traffic. Before the N-way sharded cache, every request (hit or miss)
// serialized on one LRU mutex; this benchmark (run under -race in CI) pins
// the sharded layout and hunts data races in warm-start reuse.
func BenchmarkServiceParallel(b *testing.B) {
	svc := NewService(ServiceOptions{CacheSize: 4096})
	h := NewServiceHandler(svc, 30*time.Second)

	// 8 hot request bodies (hits after the first touch) + a per-iteration
	// trickle of unique inputs (misses).
	hot := make([][]byte, 8)
	for i := range hot {
		hot[i] = []byte(fmt.Sprintf(`{"cluster":{"nodes":%d},"job":{"inputMB":512}}`, 2+i))
	}
	var uniq atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			var body []byte
			if i%8 == 0 { // 1-in-8 unique: a fresh model run
				body = []byte(fmt.Sprintf(`{"cluster":{"nodes":4},"job":{"inputMB":%f}}`,
					512+float64(uniq.Add(1))*1e-3))
			} else {
				body = hot[i%len(hot)]
			}
			i++
			req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(body))
			req.RemoteAddr = "10.0.0.1:1"
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				b.Fatalf("status %d: %s", w.Code, w.Body.String())
			}
		}
	})
	m := svc.Metrics()
	b.ReportMetric(m.HitRate, "hitRate")
}

// BenchmarkPlanDeadline is the headline planner comparison: one
// representative deadline query — "how many nodes does this 1 GB job need
// to finish in time?" over a 64-point node axis — answered by the
// exhaustive grid vs. the monotone search (bisection + dominance pruning,
// its sequential probes threading a warm-start chain). Each iteration uses
// a cold cache, so ns/op measures real model work; the predicts/op metric
// counts actual model executions. The -4jobs pair asks the same question
// for 4 concurrent jobs — the contended regime where each model run spends
// dozens of outer rounds and the warm chain's savings dominate.
func BenchmarkPlanDeadline(b *testing.B) {
	nodes := make([]int, 64)
	for i := range nodes {
		nodes[i] = 2 + i
	}
	for _, load := range []struct {
		suffix  string
		numJobs int
	}{
		{"", 1},
		{"-4jobs", 4},
	} {
		job, err := workload.NewJob(0, 1024, 128, 1, workload.WordCount())
		if err != nil {
			b.Fatal(err)
		}
		base := PlanRequest{Spec: DefaultCluster(4), Job: job, Nodes: nodes, NumJobs: load.numJobs}

		// Mid-range deadline from one exhaustive pass.
		setup := NewService(ServiceOptions{})
		ex := base
		ex.Exhaustive = true
		ex.DeadlineSec = 1
		ref, err := setup.Plan(context.Background(), ex)
		if err != nil {
			b.Fatal(err)
		}
		lo, hi := ref.Candidates[0].ResponseTime, ref.Candidates[0].ResponseTime
		for _, c := range ref.Candidates {
			if c.ResponseTime < lo {
				lo = c.ResponseTime
			}
			if c.ResponseTime > hi {
				hi = c.ResponseTime
			}
		}
		deadline := (lo + hi) / 2

		run := func(b *testing.B, exhaustive bool) {
			b.ReportAllocs()
			var best *PlanCandidate
			var predicts int64
			for i := 0; i < b.N; i++ {
				svc := NewService(ServiceOptions{}) // cold cache per query
				req := base
				req.DeadlineSec = deadline
				req.Exhaustive = exhaustive
				resp, err := svc.Plan(context.Background(), req)
				if err != nil {
					b.Fatal(err)
				}
				if resp.Best == nil {
					b.Fatal("no feasible plan")
				}
				best = resp.Best
				predicts += svc.Metrics().CacheMisses
			}
			b.ReportMetric(float64(predicts)/float64(b.N), "predicts/op")
			if best.Nodes <= 0 {
				b.Fatal("bogus best")
			}
		}
		b.Run("grid"+load.suffix, func(b *testing.B) { run(b, true) })
		b.Run("search"+load.suffix, func(b *testing.B) { run(b, false) })
	}
}

// BenchmarkServicePlanParallel drives concurrent deadline plans against
// one service: every query runs bisection walks on pooled warm chains,
// and narrow brackets finish through the batched evaluation path
// (predictEvalBatch), so this is the -race CI step's coverage of the
// batch solver under BenchmarkServiceParallel-style concurrent traffic.
func BenchmarkServicePlanParallel(b *testing.B) {
	job, err := workload.NewJob(0, 1024, 128, 1, workload.WordCount())
	if err != nil {
		b.Fatal(err)
	}
	nodes := make([]int, 24)
	for i := range nodes {
		nodes[i] = 2 + i
	}
	svc := NewService(ServiceOptions{CacheSize: 4096})
	var seq atomic.Int64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			// Rotate deadlines and populations so plans mix cache hits
			// with fresh batched walks.
			g := seq.Add(1)
			req := PlanRequest{
				Spec: DefaultCluster(4), Job: job, NumJobs: 1 + int(g)%3,
				Nodes:       nodes,
				DeadlineSec: 150 + 25*float64(g%5),
			}
			resp, err := svc.Plan(context.Background(), req)
			if err != nil {
				b.Fatal(err)
			}
			if resp.Strategy != "search" {
				b.Fatalf("strategy %q", resp.Strategy)
			}
		}
	})
}

// BenchmarkWorkflowPlan is the workflow planner comparison: one deadline
// query for a 20-stage identical chain over a 64-point node axis, answered
// by the exhaustive grid vs. the composed-makespan monotone search. Each
// iteration uses a cold cache; predicts/op counts actual model executions
// — per-stage cache sharing makes a candidate's 20 stages cost one solve,
// so the chain plan should track BenchmarkPlanDeadline's run counts, not
// 20x them.
func BenchmarkWorkflowPlan(b *testing.B) {
	nodes := make([]int, 64)
	for i := range nodes {
		nodes[i] = 2 + i
	}
	const stages = 20
	wf := &ServiceWorkflow{}
	job, err := NewJob(0, 1024, 128, 1, WordCount())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < stages; i++ {
		wf.Stages = append(wf.Stages, ServiceWorkflowStage{Name: fmt.Sprintf("s%d", i), Job: job})
		if i > 0 {
			wf.Edges = append(wf.Edges, WorkflowEdge{From: fmt.Sprintf("s%d", i-1), To: fmt.Sprintf("s%d", i)})
		}
	}
	base := PlanRequest{Spec: DefaultCluster(4), Workflow: wf, Nodes: nodes}

	// Mid-range deadline from one exhaustive pass.
	setup := NewService(ServiceOptions{})
	ex := base
	ex.Exhaustive = true
	ex.DeadlineSec = 1
	ref, err := setup.Plan(context.Background(), ex)
	if err != nil {
		b.Fatal(err)
	}
	lo, hi := ref.Candidates[0].ResponseTime, ref.Candidates[0].ResponseTime
	for _, c := range ref.Candidates {
		if c.ResponseTime < lo {
			lo = c.ResponseTime
		}
		if c.ResponseTime > hi {
			hi = c.ResponseTime
		}
	}
	deadline := (lo + hi) / 2

	run := func(b *testing.B, exhaustive bool) {
		b.ReportAllocs()
		var predicts int64
		for i := 0; i < b.N; i++ {
			svc := NewService(ServiceOptions{}) // cold cache per query
			req := base
			req.DeadlineSec = deadline
			req.Exhaustive = exhaustive
			resp, err := svc.Plan(context.Background(), req)
			if err != nil {
				b.Fatal(err)
			}
			if resp.Best == nil {
				b.Fatal("no feasible plan")
			}
			predicts += svc.Metrics().ModelOuterIterations
		}
		b.ReportMetric(float64(predicts)/float64(b.N), "outerIters/op")
	}
	b.Run("grid", func(b *testing.B) { run(b, true) })
	b.Run("search", func(b *testing.B) { run(b, false) })
}

// benchTwoClassSpec is the 2-class cluster of the heterogeneous benchmarks:
// a current generation plus a half-speed older one. Counts are overridden by
// the planner's mix axis.
func benchTwoClassSpec(fast, slow int) Cluster {
	spec := DefaultCluster(0)
	spec.NumNodes = 0
	spec.Classes = []NodeClass{
		{Name: "fast", Count: fast, Capacity: Resource{MemoryMB: 32768, VCores: 32},
			CPUs: 6, Disks: 1, DiskMBps: 240, NetworkMBps: 110, Speed: 1},
		{Name: "slow", Count: slow, Capacity: Resource{MemoryMB: 32768, VCores: 32},
			CPUs: 6, Disks: 1, DiskMBps: 140, NetworkMBps: 110, Speed: 0.5},
	}
	return spec
}

// BenchmarkPredictHeterogeneous tracks the model hot path on a 2-class
// cluster: per-class MVA centers widen every demand vector and overlap
// matrix from 3 to 2K+1 layers, so this pins the cost (and the allocation
// budget of the reusable Predictor) against the homogeneous baseline.
func BenchmarkPredictHeterogeneous(b *testing.B) {
	job, err := workload.NewJob(0, 4096, 128, 4, workload.WordCount())
	if err != nil {
		b.Fatal(err)
	}
	for name, spec := range map[string]Cluster{
		"flat-8":     DefaultCluster(8),
		"2class-4+4": benchTwoClassSpec(4, 4),
	} {
		b.Run(name, func(b *testing.B) {
			p := NewPredictor()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pred, err := p.Predict(ModelConfig{Spec: spec, Job: job, NumJobs: 1})
				if err != nil {
					b.Fatal(err)
				}
				if pred.ResponseTime <= 0 {
					b.Fatal("bogus prediction")
				}
			}
		})
	}
}

// BenchmarkPlanHeterogeneousDeadline measures a deadline query over a
// 2-class mix axis (N fast + M slow), grid vs search: the bisection rides
// the total-node ordering of the mixes with runtime-verified monotonicity.
// predicts/op counts actual model evaluations (cache misses).
func BenchmarkPlanHeterogeneousDeadline(b *testing.B) {
	job, err := workload.NewJob(0, 1024, 128, 1, workload.WordCount())
	if err != nil {
		b.Fatal(err)
	}
	// 16 mixes with strictly increasing totals: f fast + f/2 slow.
	mixes := make([][]int, 16)
	for i := range mixes {
		f := 2 + i
		mixes[i] = []int{f, f / 2}
	}
	base := PlanRequest{Spec: benchTwoClassSpec(4, 4), Job: job, ClassCounts: mixes}

	// Mid-range deadline from one exhaustive pass.
	setup := NewService(ServiceOptions{})
	ex := base
	ex.Exhaustive = true
	ex.DeadlineSec = 1
	ref, err := setup.Plan(context.Background(), ex)
	if err != nil {
		b.Fatal(err)
	}
	lo, hi := ref.Candidates[0].ResponseTime, ref.Candidates[0].ResponseTime
	for _, c := range ref.Candidates {
		if c.ResponseTime < lo {
			lo = c.ResponseTime
		}
		if c.ResponseTime > hi {
			hi = c.ResponseTime
		}
	}
	deadline := (lo + hi) / 2

	run := func(b *testing.B, exhaustive bool) {
		b.ReportAllocs()
		var best *PlanCandidate
		var predicts int64
		for i := 0; i < b.N; i++ {
			svc := NewService(ServiceOptions{}) // cold cache per query
			req := base
			req.DeadlineSec = deadline
			req.Exhaustive = exhaustive
			resp, err := svc.Plan(context.Background(), req)
			if err != nil {
				b.Fatal(err)
			}
			if resp.Best == nil {
				b.Fatal("no feasible plan")
			}
			best = resp.Best
			predicts += svc.Metrics().CacheMisses
		}
		b.ReportMetric(float64(predicts)/float64(b.N), "predicts/op")
		if best.Nodes <= 0 || len(best.ClassCounts) != 2 {
			b.Fatalf("bogus best %+v", best)
		}
	}
	b.Run("grid", func(b *testing.B) { run(b, true) })
	b.Run("search", func(b *testing.B) { run(b, false) })
}

// BenchmarkTimelineConstruction isolates Algorithm 1 (§4.3: O(C·T) per
// iteration).
func BenchmarkTimelineConstruction(b *testing.B) {
	in := timeline.Input{NumNodes: 8, MapSlotsPerNode: 8, ReduceSlotsPerNode: 4, SlowStart: true}
	for i := 0; i < 160; i++ {
		in.Maps = append(in.Maps, timeline.MapTask{ID: i, Duration: 30, ShuffleDuration: 1})
	}
	for i := 0; i < 8; i++ {
		in.Reduces = append(in.Reduces, timeline.ReduceTask{ID: i, ShuffleSortBase: 10, MergeDuration: 50})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := timeline.Build(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPrecedenceTree isolates tree construction and balancing.
func BenchmarkPrecedenceTree(b *testing.B) {
	in := timeline.Input{NumNodes: 8, MapSlotsPerNode: 8, ReduceSlotsPerNode: 4, SlowStart: true}
	for i := 0; i < 160; i++ {
		in.Maps = append(in.Maps, timeline.MapTask{ID: i, Duration: 30, ShuffleDuration: 1})
	}
	for i := 0; i < 8; i++ {
		in.Reduces = append(in.Reduces, timeline.ReduceTask{ID: i, ShuffleSortBase: 10, MergeDuration: 50})
	}
	tl, err := timeline.Build(in)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ptree.Build(tl); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMVAExact measures the classical Reiser-Lavenberg recursion.
func BenchmarkMVAExact(b *testing.B) {
	centers := []mva.Center{{Demand: 1}, {Demand: 2}, {Demand: 0.5}}
	for i := 0; i < b.N; i++ {
		if _, err := mva.ExactSingleClass(centers, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// mvaBenchInput builds the overlap-weighted fixed point input at the scale
// of a 5 GB job (48 tasks, 3 centers) shared by the kernel benchmarks.
func mvaBenchInput() mva.OverlapInput {
	n := 48
	tasks := make([]mva.TaskDemand, n)
	alpha := make([][][]float64, 3)
	beta := make([][][]float64, 3)
	for k := 0; k < 3; k++ {
		alpha[k] = make([][]float64, n)
		beta[k] = make([][]float64, n)
		for i := 0; i < n; i++ {
			alpha[k][i] = make([]float64, n)
			beta[k][i] = make([]float64, n)
			for j := 0; j < n; j++ {
				if i != j {
					alpha[k][i][j] = 0.5
				}
				beta[k][i][j] = 0.25
			}
		}
	}
	for i := range tasks {
		tasks[i] = mva.TaskDemand{Demands: []float64{20, 2, 1}}
	}
	return mva.OverlapInput{Tasks: tasks, Alpha: alpha, Beta: beta, Servers: []float64{4, 1, 2}, OtherJobs: 3}
}

// BenchmarkMVAOverlapStep measures the fused struct-of-arrays overlap kernel
// (the default since PR 8).
func BenchmarkMVAOverlapStep(b *testing.B) {
	in := mvaBenchInput()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mva.OverlapStep(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMVAOverlapStepScalar measures the historical element-wise kernel
// kept behind OverlapInput.Scalar — the PR 8 A/B baseline.
func BenchmarkMVAOverlapStepScalar(b *testing.B) {
	in := mvaBenchInput()
	in.Scalar = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mva.OverlapStep(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMVABatch compares four same-shape contended fixed points solved
// through the lane-batched solver against four sequential scalar Steps: the
// per-lane trajectories are identical, so the delta is pure execution
// layout (instruction-level parallelism across lanes).
func BenchmarkMVABatch(b *testing.B) {
	mk := func() []mva.OverlapInput {
		ins := make([]mva.OverlapInput, mva.BatchLanes)
		for l := range ins {
			ins[l] = mvaBenchInput()
			// Perturb each lane's demand so the lanes are neighbors, not clones.
			for i := range ins[l].Tasks {
				ins[l].Tasks[i].Demands[0] += float64(l) * 0.5
			}
		}
		return ins
	}
	b.Run("batch4", func(b *testing.B) {
		ins := mk()
		var s mva.BatchOverlapSolver
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, errs := s.Solve(ins)
			for _, err := range errs {
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("sequential4", func(b *testing.B) {
		ins := mk()
		var s mva.OverlapSolver
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for l := range ins {
				if _, err := s.Step(ins[l]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkTripathiMaxMoments measures the numeric max-moment integration
// behind the Tripathi estimator.
func BenchmarkTripathiMaxMoments(b *testing.B) {
	d1 := dist.MustFit(30, 0.2)
	d2 := dist.MustFit(25, 0.4)
	for i := 0; i < b.N; i++ {
		if _, _, err := dist.MaxMoments([]dist.Distribution{d1, d2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimators compares the cost of the two tree estimators on a
// 5 GB prediction.
func BenchmarkEstimators(b *testing.B) {
	job, err := workload.NewJob(0, 5*1024, 128, 4, workload.WordCount())
	if err != nil {
		b.Fatal(err)
	}
	spec := DefaultCluster(4)
	for _, est := range []core.Estimator{core.EstimatorForkJoin, core.EstimatorTripathi} {
		est := est
		b.Run(est.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Predict(core.Config{Spec: spec, Job: job, Estimator: est}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServicePredict measures the serving hot path: a cold predict
// pays one full model run; a cached predict is a canonical-key hash plus an
// LRU lookup. The gap between the two is the cache's value per repeated
// operational query.
func BenchmarkServicePredict(b *testing.B) {
	job, err := workload.NewJob(0, 5*1024, 128, 4, workload.WordCount())
	if err != nil {
		b.Fatal(err)
	}
	req := PredictRequest{Spec: DefaultCluster(4), Job: job}

	b.Run("cold", func(b *testing.B) {
		svc := NewService(ServiceOptions{Workers: 1, CacheSize: 4})
		// Vary the input size by an imperceptible amount each iteration:
		// essentially the same model work, but a distinct cache key.
		for i := 0; i < b.N; i++ {
			r := req
			r.Job.InputMB += float64(i) * 1e-6
			if _, err := svc.Predict(context.Background(), r); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		svc := NewService(ServiceOptions{Workers: 1, CacheSize: 4})
		if _, err := svc.Predict(context.Background(), req); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := svc.Predict(context.Background(), req)
			if err != nil {
				b.Fatal(err)
			}
			if !resp.Cached {
				b.Fatal("cache miss on the cached path")
			}
		}
	})
}

// BenchmarkServicePlan measures a model-backed what-if sweep (8 cluster
// sizes) through the parallel planner: cold pays 8 model runs, cached is 8
// key hashes + LRU hits.
func BenchmarkServicePlan(b *testing.B) {
	job, err := workload.NewJob(0, 2*1024, 128, 4, workload.WordCount())
	if err != nil {
		b.Fatal(err)
	}
	req := PlanRequest{
		Spec: DefaultCluster(4), Job: job,
		Nodes: []int{2, 4, 6, 8, 10, 12, 14, 16},
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			svc := NewService(ServiceOptions{}) // fresh cache each sweep
			if _, err := svc.Plan(context.Background(), req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		svc := NewService(ServiceOptions{})
		if _, err := svc.Plan(context.Background(), req); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := svc.Plan(context.Background(), req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAdmissionShed prices the rejection fast path: with the admission
// bound smaller than one expensive request's cost, every simulate turns into
// a structured 503. Shedding only protects the service if a rejection costs
// microseconds, not a worker slot — this pins that property under the same
// concurrent HTTP traffic as the accept-path benchmarks (and runs in CI's
// race-enabled bench smoke).
func BenchmarkAdmissionShed(b *testing.B) {
	svc := NewService(ServiceOptions{Workers: 2, AdmitMaxQueueCost: 1})
	h := NewServiceHandler(svc, 0)
	body := []byte(`{"cluster":{"nodes":4},"job":{"inputMB":512},"reps":1}`)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			req := httptest.NewRequest(http.MethodPost, "/v1/simulate", bytes.NewReader(body))
			req.RemoteAddr = "10.0.0.1:1"
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != http.StatusServiceUnavailable {
				b.Fatalf("status %d: %s", w.Code, w.Body.String())
			}
		}
	})
}

func benchName(prefix string, v int) string {
	return fmt.Sprintf("%s=%03d", prefix, v)
}
