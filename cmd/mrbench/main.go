// Command mrbench is an open-loop load generator and resilience harness for
// mrserved. It drives a request mix of cheap predictions and expensive
// simulations at a fixed arrival rate (open loop: arrivals do not wait for
// completions, so the server's shedding behaviour — not the client's
// patience — sets the observed throughput), retries shed requests with
// jittered exponential backoff that honors the server's Retry-After hint,
// and reports latency quantiles split into accepted and shed outcomes
// together with degraded/stale response counts.
//
// Two modes:
//
//	mrbench -target http://host:8080 -rate 200 -duration 30s
//	    load-test a running mrserved and print the report
//	mrbench -selfcheck -duration 20s
//	    start an in-process server sized to overload quickly, then assert
//	    the resilience contract end to end: sheds are fast (<10ms) and
//	    carry Retry-After, accepted p99 under 2x-capacity load stays
//	    within 3x the uncontended p99, the simulator circuit breaker
//	    trips and recovers, and drain leaves no goroutines behind.
//	    Exits non-zero on any violation; CI runs this as the soak gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hadoop2perf/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mrbench: ")

	var (
		target    = flag.String("target", "", "base URL of a running mrserved (e.g. http://127.0.0.1:8080)")
		rate      = flag.Float64("rate", 100, "open-loop arrival rate in req/s")
		duration  = flag.Duration("duration", 20*time.Second, "load duration (selfcheck: overload-phase duration)")
		expEvery  = flag.Int("expensive-every", 5, "every Nth request is an expensive simulate (others are cheap predicts)")
		retries   = flag.Int("max-retries", 3, "retry budget per request after a 429/503 shed (0 = never retry)")
		deadline  = flag.Int("deadline-ms", 0, "client deadline sent as X-Deadline-Ms on every request (0 = none)")
		jsonOut   = flag.Bool("json", false, "print the report as JSON instead of text")
		selfcheck = flag.Bool("selfcheck", false, "run the in-process resilience soak and exit non-zero on violations")
	)
	flag.Parse()

	if *selfcheck {
		if err := runSelfcheck(*duration); err != nil {
			log.Fatalf("selfcheck FAILED: %v", err)
		}
		log.Printf("selfcheck passed")
		return
	}
	if *target == "" {
		log.Fatal("either -target or -selfcheck is required")
	}
	b := newBench(*target)
	b.expensiveEvery = *expEvery
	b.maxRetries = *retries
	b.deadlineMS = *deadline
	b.run(*duration, *rate)
	rep := b.col.report()
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Print(rep.String())
}

// bench issues the request mix against one target and funnels outcomes into
// its collector. Request bodies vary by sequence number so the server's LRU
// cache does not collapse the load into a single computed key.
type bench struct {
	client         *http.Client
	target         string
	expensiveEvery int
	maxRetries     int
	deadlineMS     int
	col            *collector

	mu  sync.Mutex
	seq int
}

func newBench(target string) *bench {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConnsPerHost = 256 // open-loop bursts reuse connections instead of dial storms
	return &bench{
		client:         &http.Client{Timeout: 2 * time.Minute, Transport: tr},
		target:         strings.TrimRight(target, "/"),
		expensiveEvery: 5,
		col:            newCollector(),
	}
}

func (b *bench) next() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.seq++
	return b.seq
}

// run drives the open loop: one goroutine per arrival at a fixed interval.
func (b *bench) run(d time.Duration, rate float64) {
	if rate <= 0 {
		rate = 1
	}
	interval := time.Duration(float64(time.Second) / rate)
	stop := time.Now().Add(d)
	var wg sync.WaitGroup
	for time.Now().Before(stop) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.issue(b.next())
		}()
		time.Sleep(interval)
	}
	wg.Wait()
}

// issue sends request n, retrying sheds with jittered exponential backoff.
// When the server supplies Retry-After, the wait honors it as a floor.
func (b *bench) issue(n int) {
	path, body := b.request(n)
	backoff := 50 * time.Millisecond
	attempts := 0
	for {
		start := time.Now()
		status, hdr, resp, err := b.post(path, body)
		lat := time.Since(start)
		if err != nil {
			b.col.fail(err)
			return
		}
		if status != http.StatusTooManyRequests && status != http.StatusServiceUnavailable {
			b.col.final(status, lat, resp, attempts)
			return
		}
		ra := hdr.Get("Retry-After")
		b.col.shed(status, lat, ra != "")
		if attempts >= b.maxRetries {
			return
		}
		attempts++
		wait := backoff + time.Duration(rand.Int63n(int64(backoff)))
		if sec, err := strconv.Atoi(ra); err == nil && sec >= 1 {
			if hint := time.Duration(sec) * time.Second; hint > wait {
				wait = hint
			}
		}
		time.Sleep(wait)
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

// request builds the nth request: every expensiveEvery-th is a simulate,
// the rest are predicts, with sizes cycled so cache keys differ.
func (b *bench) request(n int) (path, body string) {
	if b.expensiveEvery > 0 && n%b.expensiveEvery == 0 {
		// Sized so the discrete-event run costs tens of milliseconds of wall
		// clock: enough to hold a worker and make queueing observable.
		return "/v1/simulate", fmt.Sprintf(
			`{"cluster":{"nodes":32},"job":{"inputMB":%d},"reps":2,"seed":%d}`,
			65536+(n%16)*1024, n)
	}
	return "/v1/predict", fmt.Sprintf(
		`{"cluster":{"nodes":%d},"job":{"inputMB":%d}}`,
		4+n%8, 128+(n%32)*32)
}

func (b *bench) post(path, body string) (int, http.Header, []byte, error) {
	req, err := http.NewRequest(http.MethodPost, b.target+path, strings.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if b.deadlineMS > 0 {
		req.Header.Set(service.DeadlineHeader, strconv.Itoa(b.deadlineMS))
	}
	resp, err := b.client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, data, nil
}

// collector aggregates per-attempt and per-request outcomes.
type collector struct {
	mu                sync.Mutex
	accepted          []time.Duration
	shedLat           []time.Duration
	statuses          map[int]int
	shedMissingHint   int
	degraded, stale   int
	retried, failures int
}

func newCollector() *collector { return &collector{statuses: make(map[int]int)} }

func (c *collector) final(status int, lat time.Duration, body []byte, attempts int) {
	var flags struct {
		Degraded bool `json:"degraded"`
		Stale    bool `json:"stale"`
	}
	_ = json.Unmarshal(body, &flags)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.statuses[status]++
	if attempts > 0 {
		c.retried++
	}
	if status >= 200 && status < 300 {
		c.accepted = append(c.accepted, lat)
		if flags.Degraded {
			c.degraded++
		}
		if flags.Stale {
			c.stale++
		}
	}
}

func (c *collector) shed(status int, lat time.Duration, hasHint bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.statuses[status]++
	c.shedLat = append(c.shedLat, lat)
	if !hasHint {
		c.shedMissingHint++
	}
}

func (c *collector) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failures++
}

// Report is the benchmark summary; field names are stable for CI parsing.
type Report struct {
	Requests           int            `json:"requests"`
	Accepted           int            `json:"accepted"`
	AcceptedP50Ms      float64        `json:"acceptedP50Ms"`
	AcceptedP95Ms      float64        `json:"acceptedP95Ms"`
	AcceptedP99Ms      float64        `json:"acceptedP99Ms"`
	ShedAttempts       int            `json:"shedAttempts"`
	ShedP50Ms          float64        `json:"shedP50Ms"`
	ShedP99Ms          float64        `json:"shedP99Ms"`
	ShedMissingHint    int            `json:"shedMissingRetryAfter"`
	DegradedResponses  int            `json:"degradedResponses"`
	StaleResponses     int            `json:"staleResponses"`
	RetriedRequests    int            `json:"retriedRequests"`
	TransportFailures  int            `json:"transportFailures"`
	StatusDistribution map[string]int `json:"statusDistribution"`
}

func (c *collector) report() Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	rep := Report{
		Accepted:           len(c.accepted),
		AcceptedP50Ms:      quantileMs(c.accepted, 0.50),
		AcceptedP95Ms:      quantileMs(c.accepted, 0.95),
		AcceptedP99Ms:      quantileMs(c.accepted, 0.99),
		ShedAttempts:       len(c.shedLat),
		ShedP50Ms:          quantileMs(c.shedLat, 0.50),
		ShedP99Ms:          quantileMs(c.shedLat, 0.99),
		ShedMissingHint:    c.shedMissingHint,
		DegradedResponses:  c.degraded,
		StaleResponses:     c.stale,
		RetriedRequests:    c.retried,
		TransportFailures:  c.failures,
		StatusDistribution: make(map[string]int, len(c.statuses)),
	}
	for code, n := range c.statuses {
		rep.StatusDistribution[strconv.Itoa(code)] += n
		rep.Requests += n
	}
	rep.Requests += c.failures
	return rep
}

func (r Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "requests         %d (accepted %d, shed attempts %d, transport failures %d)\n",
		r.Requests, r.Accepted, r.ShedAttempts, r.TransportFailures)
	fmt.Fprintf(&sb, "accepted latency p50 %.2fms  p95 %.2fms  p99 %.2fms\n",
		r.AcceptedP50Ms, r.AcceptedP95Ms, r.AcceptedP99Ms)
	fmt.Fprintf(&sb, "shed latency     p50 %.2fms  p99 %.2fms (missing Retry-After: %d)\n",
		r.ShedP50Ms, r.ShedP99Ms, r.ShedMissingHint)
	fmt.Fprintf(&sb, "degraded %d  stale %d  retried %d\n",
		r.DegradedResponses, r.StaleResponses, r.RetriedRequests)
	codes := make([]string, 0, len(r.StatusDistribution))
	for c := range r.StatusDistribution {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	for _, c := range codes {
		fmt.Fprintf(&sb, "  status %s: %d\n", c, r.StatusDistribution[c])
	}
	return sb.String()
}

// quantileMs returns the q-quantile (nearest rank) of d in milliseconds.
func quantileMs(d []time.Duration, q float64) float64 {
	if len(d) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), d...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q*float64(len(s)-1) + 0.5)
	return float64(s[idx]) / float64(time.Millisecond)
}

// metricsView is the slice of the /v1/metrics JSON body the selfcheck reads.
type metricsView struct {
	BreakerStateCode  int    `json:"breakerStateCode"`
	BreakerState      string `json:"breakerState"`
	BreakerTrips      int64  `json:"breakerTrips"`
	DegradedResponses int64  `json:"degradedResponses"`
	Admission         struct {
		ShedQueueFull int64 `json:"shedQueueFull"`
		ShedDeadline  int64 `json:"shedDeadline"`
		ShedDraining  int64 `json:"shedDraining"`
	} `json:"admission"`
	StageDurations map[string]histView `json:"stageDurationsSeconds"`
}

// histView mirrors the cumulative histogram snapshot in the metrics JSON.
type histView struct {
	Buckets []struct {
		Le    float64 `json:"le"`
		Count int64   `json:"count"`
	} `json:"buckets"`
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
}

// fractionUnder returns the fraction of observations at or below bound.
func (h histView) fractionUnder(bound float64) float64 {
	if h.Count == 0 {
		return 1
	}
	var under int64
	for _, b := range h.Buckets {
		if b.Le <= bound {
			under = b.Count
		}
	}
	return float64(under) / float64(h.Count)
}

// runSelfcheck starts a deliberately small in-process server and walks the
// resilience contract phase by phase. Any violation is an error; the process
// exit code is the CI signal.
func runSelfcheck(overloadFor time.Duration) error {
	// On boxes with very few cores, two CPU-bound simulations can starve
	// every other goroutine of scheduler slices for ~100ms stretches, which
	// pollutes client-observed latency with noise unrelated to the serving
	// path. More Ps restore kernel-granularity timeslicing.
	if runtime.GOMAXPROCS(0) < 4 {
		runtime.GOMAXPROCS(4)
	}
	runtime.GC()
	baseGoroutines := runtime.NumGoroutine()

	const (
		workers   = 2
		queueCost = 16 // two expensive units: shallow queue so overload sheds fast
		cooldown  = 300 * time.Millisecond
	)
	svc := service.New(service.Options{
		Workers:           workers,
		AdmitMaxQueueCost: queueCost,
		BreakerThreshold:  2,
		BreakerCooldown:   cooldown,
	})
	srv := httptest.NewServer(service.NewHandler(svc, service.ServerConfig{}))
	b := newBench(srv.URL)
	b.maxRetries = 0 // open-loop shed measurement: record rejections, don't retry
	var violations []string
	check := func(ok bool, format string, args ...any) {
		if !ok {
			violations = append(violations, fmt.Sprintf(format, args...))
		}
	}

	// Phase 1: uncontended baseline — the same mix, strictly sequential.
	log.Printf("phase 1: uncontended baseline (40 sequential requests)")
	for i := 0; i < 40; i++ {
		b.issue(b.next())
	}
	base := b.col.report()
	check(base.Accepted == 40, "baseline: %d/40 accepted (sheds on an idle server)", base.Accepted)
	baseP99 := base.AcceptedP99Ms
	var baseMean float64
	for _, l := range b.col.accepted {
		baseMean += float64(l) / float64(time.Millisecond)
	}
	baseMean /= float64(len(b.col.accepted))

	// Phase 2: overload. A concurrent burst of expensive requests overfills
	// the admission queue deterministically, then an open loop at twice the
	// measured capacity runs for the soak duration.
	log.Printf("phase 2: overload burst + 2x-capacity open loop for %s", overloadFor)
	b.col = newCollector()
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n := b.next()
			burst := fmt.Sprintf(
				`{"cluster":{"nodes":64},"job":{"inputMB":262144},"reps":4,"seed":%d}`, n)
			start := time.Now()
			status, hdr, resp, err := b.post("/v1/simulate", burst)
			lat := time.Since(start)
			// The admitted saturators are the instrument, not the measured
			// load: only their rejections feed the report, so two deliberately
			// huge simulations don't pollute the accepted-latency quantiles.
			switch {
			case err != nil:
				b.col.fail(err)
			case status == http.StatusServiceUnavailable || status == http.StatusTooManyRequests:
				b.col.shed(status, lat, hdr.Get("Retry-After") != "")
			default:
				_ = resp
			}
		}(i)
	}
	wg.Wait()
	capacity := float64(workers) / (baseMean / 1000) // req/s the pool sustains at baseline service time
	rate := 2 * capacity
	if rate > 500 {
		rate = 500
	}
	if rate < 50 {
		rate = 50
	}
	b.run(overloadFor, rate)
	over := b.col.report()
	check(over.ShedAttempts >= 5, "overload: only %d sheds (want >= 5)", over.ShedAttempts)
	check(over.ShedMissingHint == 0, "overload: %d shed responses missing Retry-After", over.ShedMissingHint)
	// Client-observed shed latency includes scheduler hops behind CPU-bound
	// simulations, so the median carries the fast-path claim here; the tail
	// of the rejection *decision* is asserted server-side below, and an
	// end-to-end <10ms tail is asserted on the idle drain path in phase 4.
	check(over.ShedP50Ms < 10, "overload: shed p50 %.2fms (want < 10ms)", over.ShedP50Ms)
	check(over.Accepted > 0, "overload: no requests accepted")
	effBase := baseP99
	if effBase < 10 {
		effBase = 10 // floor: sub-10ms baselines are scheduler noise, not signal
	}
	check(over.AcceptedP99Ms <= 3*effBase,
		"overload: accepted p99 %.2fms exceeds 3x uncontended p99 %.2fms", over.AcceptedP99Ms, effBase)
	check(over.TransportFailures == 0, "overload: %d transport failures", over.TransportFailures)
	if m, err := fetchMetrics(b); err != nil {
		check(false, "metrics after overload: %v", err)
	} else {
		frac := m.StageDurations["admission"].fractionUnder(0.01)
		check(frac >= 0.99, "admission decision: only %.1f%% under 10ms (want >= 99%%)", 100*frac)
	}
	log.Printf("phase 2 report:\n%s", over)

	// Phase 3: breaker trip and recovery. Impossible client deadlines force
	// consecutive simulator timeouts; while open, simulate answers degrade to
	// the model fallback; after the cooldown a clean run closes the breaker.
	log.Printf("phase 3: breaker trip and recovery")
	b.deadlineMS = 1
	for i := 0; i < 2; i++ {
		n := b.next()
		status, _, _, err := b.post("/v1/simulate", fmt.Sprintf(
			`{"cluster":{"nodes":64},"job":{"inputMB":262144},"reps":4,"seed":%d}`, n))
		check(err == nil, "breaker trip request: %v", err)
		check(status == http.StatusGatewayTimeout, "breaker trip request %d: status %d (want 504)", i, status)
	}
	b.deadlineMS = 0
	m, err := fetchMetrics(b)
	check(err == nil, "metrics after trip: %v", err)
	check(m.BreakerTrips >= 1, "breaker never tripped (trips=%d state=%s)", m.BreakerTrips, m.BreakerState)
	check(m.BreakerStateCode == 1, "breaker state after trip = %s (want open)", m.BreakerState)

	status, _, body, err := b.post("/v1/simulate", fmt.Sprintf(
		`{"cluster":{"nodes":8},"job":{"inputMB":512},"reps":1,"seed":%d}`, b.next()))
	check(err == nil && status == http.StatusOK, "degraded simulate: status %d err %v", status, err)
	var flags struct {
		Degraded bool `json:"degraded"`
	}
	_ = json.Unmarshal(body, &flags)
	check(flags.Degraded, "simulate while breaker open was not flagged degraded: %s", body)

	time.Sleep(cooldown + 200*time.Millisecond)
	status, _, body, err = b.post("/v1/simulate", fmt.Sprintf(
		`{"cluster":{"nodes":8},"job":{"inputMB":512},"reps":1,"seed":%d}`, b.next()))
	check(err == nil && status == http.StatusOK, "recovery simulate: status %d err %v", status, err)
	flags.Degraded = false
	_ = json.Unmarshal(body, &flags)
	check(!flags.Degraded, "simulate after cooldown still degraded: %s", body)
	m, err = fetchMetrics(b)
	check(err == nil, "metrics after recovery: %v", err)
	check(m.BreakerStateCode == 0, "breaker state after recovery = %s (want closed)", m.BreakerState)

	// Phase 4: drain. Readiness flips, new work is shed with reason
	// draining, and shutdown leaves no goroutines behind.
	log.Printf("phase 4: drain and goroutine-leak check")
	svc.StartDrain()
	resp, err := b.client.Get(srv.URL + "/readyz")
	if check(err == nil, "readyz: %v", err); err == nil {
		resp.Body.Close()
		check(resp.StatusCode == http.StatusServiceUnavailable, "readyz while draining = %d (want 503)", resp.StatusCode)
	}
	drainStart := time.Now()
	status, hdr, _, err := b.post("/v1/predict", `{"cluster":{"nodes":2},"job":{"inputMB":64}}`)
	drainLat := time.Since(drainStart)
	check(err == nil && status == http.StatusServiceUnavailable, "predict while draining: status %d err %v", status, err)
	check(hdr.Get("Retry-After") != "", "draining shed missing Retry-After")
	check(drainLat < 10*time.Millisecond, "idle drain shed took %v (want < 10ms)", drainLat)

	srv.Close()
	b.client.CloseIdleConnections()
	leakDeadline := time.Now().Add(3 * time.Second)
	leaked := -1
	for time.Now().Before(leakDeadline) {
		runtime.GC()
		if leaked = runtime.NumGoroutine() - baseGoroutines; leaked <= 3 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	check(leaked <= 3, "goroutine leak after drain: %d above baseline %d", leaked, baseGoroutines)

	if len(violations) > 0 {
		return fmt.Errorf("%d violation(s):\n  - %s", len(violations), strings.Join(violations, "\n  - "))
	}
	return nil
}

func fetchMetrics(b *bench) (metricsView, error) {
	req, err := http.NewRequest(http.MethodGet, b.target+"/v1/metrics", nil)
	if err != nil {
		return metricsView{}, err
	}
	req.Header.Set("Accept", "application/json")
	resp, err := b.client.Do(req)
	if err != nil {
		return metricsView{}, err
	}
	defer resp.Body.Close()
	var m metricsView
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return metricsView{}, err
	}
	return m, nil
}
