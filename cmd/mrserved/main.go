// Command mrserved serves the hadoop2perf performance model over HTTP: a
// long-lived prediction service with a bounded worker pool, an LRU +
// singleflight cache, and a parallel what-if planner for capacity-planning
// and deadline queries.
//
// Endpoints (all bodies JSON; docs/API.md is the complete wire reference):
//
//	GET  /healthz      liveness probe
//	GET  /v1/metrics   request counts, cache hit rate, in-flight simulations
//	GET  /v1/profiles  live calibrated profiles (name, version, expiry)
//	POST /v1/predict   analytic model prediction; a "workflow" block swaps
//	                   the single job for a DAG of precedence-ordered stages
//	                   and adds a critical-path report
//	POST /v1/simulate  discrete-event simulation (median of seeds)
//	POST /v1/compare   model vs. simulator validation
//	POST /v1/plan      what-if search (nodes × block size × reducers × policy;
//	                   deadline queries bisect the node axis); workflow plans
//	                   sweep the cluster axis on the composed makespan
//	POST /v1/calibrate fit a named profile from a job-history trace; requests
//	                   reference it with "profile": "<name>"
//
// Runtime profiles of the serving process are exposed on a separate
// loopback-only listener (-pprof-addr, default 127.0.0.1:6060) so the
// public API surface never serves /debug/pprof/*; see PERFORMANCE.md.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"hadoop2perf/internal/obs"
	"hadoop2perf/internal/service"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)
	log.SetPrefix("mrserved: ")

	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "worker-pool size (model/simulator executions in flight)")
		cacheSize  = flag.Int("cache-size", service.DefaultCacheSize, "LRU cache entries")
		simReps    = flag.Int("sim-reps", service.DefaultSimReps, "default median-of-seeds repetitions")
		timeout    = flag.Duration("timeout", 0, "uniform per-request handling timeout (0 = per-kind defaults: 10s predict/compare, 30s simulate/plan/calibrate)")
		cacheTTL   = flag.Duration("cache-ttl", 0, "cache-entry freshness lifetime; expired entries are recomputed, or served stale under pool saturation (0 = never expire)")
		drainWait  = flag.Duration("drain-timeout", 15*time.Second, "grace period for in-flight requests after SIGTERM/SIGINT before forced exit")
		drainHold  = flag.Duration("drain-notice", time.Second, "how long the listener stays open (answering /readyz 503 draining, shedding POSTs) after SIGTERM/SIGINT before new connections are refused, so load balancers observe the flip")
		profileTTL = flag.Duration("profile-ttl", service.DefaultProfileTTL, "default calibrated-profile lifetime")
		pprofAddr  = flag.String("pprof-addr", "127.0.0.1:6060", "loopback /debug/pprof listener (empty = disabled)")
		rateLimit  = flag.Float64("rate-limit", 0, "per-client request rate over /v1/* in req/s (429 + Retry-After past it; 0 = unlimited)")
		rateBurst  = flag.Int("rate-burst", 0, "per-client burst depth (default 2x -rate-limit)")
		logFormat  = flag.String("log-format", obs.LogFormatText, "structured access-log format: text or json")
		slowReq    = flag.Duration("slow-request-threshold", 10*time.Second, "latency past which a request logs at Warn with its per-stage breakdown")
	)
	flag.Parse()

	accessLog, err := obs.NewLogger(os.Stderr, *logFormat, slog.LevelInfo)
	if err != nil {
		log.Fatal(err)
	}

	svc := service.New(service.Options{
		Workers:    *workers,
		CacheSize:  *cacheSize,
		CacheTTL:   *cacheTTL,
		SimReps:    *simReps,
		ProfileTTL: *profileTTL,
	})
	if *pprofAddr != "" {
		// Profile the live process under real traffic, on its own listener:
		// profiles burn CPU and expose memory contents, so they never ride
		// the public API port (see PERFORMANCE.md for recipes).
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			// No write timeout: second-long CPU/trace profiles are the point.
			err := (&http.Server{Addr: *pprofAddr, Handler: pmux, ReadHeaderTimeout: 10 * time.Second}).ListenAndServe()
			log.Printf("pprof listener: %v", err)
		}()
		log.Printf("pprof on http://%s/debug/pprof/", *pprofAddr)
	}
	srv := &http.Server{
		Addr: *addr,
		Handler: service.NewHandler(svc, service.ServerConfig{
			Timeout:              *timeout,
			RateLimit:            *rateLimit,
			RateBurst:            *rateBurst,
			AccessLog:            accessLog,
			SlowRequestThreshold: *slowReq,
		}),
		ReadHeaderTimeout: 10 * time.Second,
		// WriteTimeout outlives the handler timeout so slow requests get a
		// 504 body instead of a severed connection. With per-kind timeouts
		// (-timeout 0) the longest default is the expensive 30s class.
		WriteTimeout: writeTimeout(*timeout),
		IdleTimeout:  2 * time.Minute,
	}

	done := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (workers=%d cache=%d sim-reps=%d timeout=%s)",
			*addr, *workers, *cacheSize, *simReps, *timeout)
		done <- srv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-stop:
		// Drain: flip /readyz to 503 draining and shed new admissions so load
		// balancers stop routing here, then let in-flight requests finish
		// under the grace period. A second signal forces immediate exit.
		log.Printf("received %s, draining (grace %s)", sig, *drainWait)
		svc.StartDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		go func() {
			sig := <-stop
			log.Printf("received %s during drain, forcing exit", sig)
			cancel()
		}()
		// Shutdown closes the listener immediately, so hold it open briefly
		// first: readiness probes on fresh connections must be able to see
		// the 503 draining flip (and POSTs the structured shed) before new
		// connections start being refused outright.
		select {
		case <-time.After(*drainHold):
		case <-ctx.Done():
		}
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		m := svc.Metrics()
		log.Printf("served %d predict / %d simulate / %d compare / %d plan; cache hit rate %.0f%%; shed %d",
			m.PredictRequests, m.SimulateRequests, m.CompareRequests, m.PlanRequests, 100*m.HitRate,
			m.Admission.ShedQueueFull+m.Admission.ShedDeadline+m.Admission.ShedDraining)
	case err := <-done:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}
}

// writeTimeout pads the handler timeout so timed-out requests receive their
// 504 body. A zero flag means per-kind handler timeouts, whose longest
// default is the expensive class.
func writeTimeout(handler time.Duration) time.Duration {
	if handler <= 0 {
		handler = 30 * time.Second
	}
	return handler + 5*time.Second
}
